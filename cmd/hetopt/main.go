// Command hetopt estimates the optimal PE configuration and process
// allocation for a problem size, using either a saved model file (from
// modelfit -out) or a freshly built one.
//
// Usage:
//
//	hetopt -model models.json -n 9600
//	hetopt -campaign nl -n 9600 -verify    # also simulate every candidate
//	hetopt -campaign nl -n 9600 -heuristic # hill-climb instead of exhaustive
//	hetopt -campaign nl -n 9600 -topk 5    # ranked list instead of one winner
//	hetopt -campaign nl -n 9600 -space     # streaming search over the full grid
//
// With -space the search runs over the paper's full evaluation grid through
// the compiled-evaluator streaming search (ModelSet.OptimizeSpace) instead
// of materializing the candidate list, and reports how many candidates the
// monotone lower bound pruned; -noprune disables the bound pruning (the
// winners are identical either way, it only costs time). The -classes,
// -maxprocs and -maxbytes flags restrict the candidate set structurally —
// the kernel prunes whole subtrees that cannot satisfy them, and the ranking
// is bit-identical to filtering the unconstrained stream.
package main

import (
	"flag"
	"fmt"
	"log"
	"strconv"
	"strings"

	"hetmodel/internal/cluster"
	"hetmodel/internal/core"
	"hetmodel/internal/experiments"
	"hetmodel/internal/measure"
	"hetmodel/internal/parallel"
	"hetmodel/internal/profiling"
	"hetmodel/internal/stats"
	"hetmodel/internal/version"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("hetopt: ")
	var (
		modelPath = flag.String("model", "", "JSON model file written by modelfit")
		campaign  = flag.String("campaign", "nl", "campaign to build when -model is not given: basic, nl, or ns")
		n         = flag.Int("n", 6400, "problem size N to optimize for")
		heuristic = flag.Bool("heuristic", false, "use the hill-climbing search instead of exhaustive enumeration")
		verify    = flag.Bool("verify", false, "simulate every candidate and report the actual optimum")
		workers   = flag.Int("workers", 0, "concurrent simulations/evaluations (0 = GOMAXPROCS, 1 = sequential)")
		topk      = flag.Int("topk", 1, "report the K best configurations instead of only the winner")
		space     = flag.Bool("space", false, "stream the full evaluation grid through the compiled search instead of the 62-candidate list")
		noprune   = flag.Bool("noprune", false, "with -space: disable lower-bound pruning (same winners, more work)")
		classesCS = flag.String("classes", "", "with -space: comma-separated PE classes a candidate may use (empty = all)")
		maxprocs  = flag.Int("maxprocs", 0, "with -space: cap on the total process count P (0 = no cap)")
		maxbytes  = flag.Float64("maxbytes", 0, "with -space: cap on the per-PE resident set in bytes, M·8N²/P (0 = no cap)")
	)
	prof := profiling.AddFlags(nil)
	version.AddFlag()
	flag.Parse()
	version.MaybePrint("hetopt")
	stopProf, err := prof.Start()
	if err != nil {
		log.Fatal(err)
	}
	defer stopProf()

	ctx, err := experiments.NewPaperContext()
	if err != nil {
		log.Fatal(err)
	}
	ctx.Workers = *workers

	var models *core.ModelSet
	if *modelPath != "" {
		models, err = loadModelSet(*modelPath)
		if err != nil {
			log.Fatal(err)
		}
	} else {
		var camp measure.Campaign
		switch strings.ToLower(*campaign) {
		case "basic":
			camp = measure.BasicCampaign()
		case "nl":
			camp = measure.NLCampaign()
		case "ns":
			camp = measure.NSCampaign()
		default:
			log.Fatalf("unknown campaign %q", *campaign)
		}
		bm, err := ctx.BuildModel(camp)
		if err != nil {
			log.Fatal(err)
		}
		models = bm.Models
	}

	if *heuristic && (*space || *topk > 1) {
		log.Fatal("-heuristic tracks a single incumbent; it cannot be combined with -space or -topk")
	}
	cons, err := parseConstraints(*classesCS, *maxprocs, *maxbytes)
	if err != nil {
		log.Fatal(err)
	}
	if cons != nil && !*space {
		log.Fatal("-classes/-maxprocs/-maxbytes constrain the streaming search; combine them with -space")
	}
	candidates := experiments.EvalConfigs()
	var best cluster.Configuration
	var tau float64
	switch {
	case *heuristic:
		var evals int
		best, tau, evals, err = models.OptimizeHeuristic(cluster.PaperEvaluationSpace(), *n)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("heuristic search: %d model evaluations\n", evals)
	case *space:
		res, err := models.OptimizeSpace(cluster.PaperEvaluationSpace(), *n, core.SearchOptions{
			Workers: *workers, TopK: *topk, NoPrune: *noprune, Constraints: cons,
		})
		if err != nil {
			log.Fatal(err)
		}
		ratio := 0.0
		if res.Size > 0 {
			ratio = 100 * float64(res.Pruned) / float64(res.Size)
		}
		fmt.Printf("streaming search: %d candidates, %d scored, %d pruned (%.1f%% pruned)\n",
			res.Size, res.Scored, res.Pruned, ratio)
		if *topk > 1 {
			printRanked(res.Best, *n)
		}
		best, tau = res.Best[0].Config, res.Best[0].Tau
	case *topk > 1:
		ranked, err := rankCandidates(models, candidates, *n, *topk)
		if err != nil {
			log.Fatal(err)
		}
		printRanked(ranked, *n)
		best, tau = ranked[0].Config, ranked[0].Tau
	default:
		best, tau, err = models.OptimizeWorkers(candidates, *n, *workers)
		if err != nil {
			log.Fatal(err)
		}
	}
	if *topk <= 1 {
		fmt.Printf("N=%d estimated best configuration %s (P1,M1,P2,M2), tau = %.1f s\n", *n, best, tau)
	}

	if !*verify {
		return
	}
	run, err := ctx.Run(best, *n)
	if err != nil {
		log.Fatal(err)
	}
	act, tHat, err := ctx.ActualBest(candidates, *n)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("simulated: chosen config runs in %.1f s; actual best %s runs in %.1f s\n",
		run.WallTime, act, tHat)
	fmt.Printf("errors: (tau-That)/That = %+.3f, (tauHat-That)/That = %+.3f\n",
		stats.RelError(tau, tHat), stats.RelError(run.WallTime, tHat))
}

// rankCandidates scores a candidate list through a compiled evaluator and
// keeps the k best by (tau, first-seen order); unscorable candidates are
// skipped, and an error is returned only when nothing is scorable.
func rankCandidates(ms *core.ModelSet, candidates []cluster.Configuration, n, k int) ([]core.Estimate, error) {
	ev := ms.Compile(float64(n))
	tk := parallel.NewTopK(k)
	var lastErr error
	for i, cfg := range candidates {
		tau, err := ev.Estimate(cfg)
		if err != nil {
			lastErr = err
			continue
		}
		tk.Offer(int64(i), tau)
	}
	ranked := tk.Sorted()
	if len(ranked) == 0 {
		if lastErr == nil {
			lastErr = core.ErrNoModel
		}
		return nil, fmt.Errorf("no scorable candidate among %d: %w", len(candidates), lastErr)
	}
	out := make([]core.Estimate, len(ranked))
	for i, c := range ranked {
		out[i] = core.Estimate{Config: candidates[c.Index], Tau: c.Score}
	}
	return out, nil
}

func printRanked(best []core.Estimate, n int) {
	fmt.Printf("N=%d top %d configurations (P1,M1,P2,M2):\n", n, len(best))
	for i, e := range best {
		fmt.Printf("  %2d. %s  tau = %.1f s\n", i+1, e.Config, e.Tau)
	}
}

// loadModelSet reads and decodes a modelfit JSON file, rejecting files that
// decode cleanly but do not describe a usable estimator (e.g. an empty or
// truncated model list).
func loadModelSet(path string) (*core.ModelSet, error) {
	return core.LoadModelSetFile(path)
}

// parseConstraints assembles the structured search constraints from the
// -classes/-maxprocs/-maxbytes flags; nil when all three are unset.
func parseConstraints(classesCS string, maxProcs int, maxBytes float64) (*core.Constraints, error) {
	c := &core.Constraints{MaxTotalProcs: maxProcs, MaxBytesPerPE: maxBytes}
	if classesCS != "" {
		for _, f := range strings.Split(classesCS, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(f))
			if err != nil {
				return nil, fmt.Errorf("bad -classes entry %q: %v", f, err)
			}
			c.Classes = append(c.Classes, v)
		}
	}
	if len(c.Classes) == 0 && c.MaxTotalProcs == 0 && c.MaxBytesPerPE == 0 {
		return nil, nil
	}
	return c, nil
}
