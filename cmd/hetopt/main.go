// Command hetopt estimates the optimal PE configuration and process
// allocation for a problem size, using either a saved model file (from
// modelfit -out) or a freshly built one.
//
// Usage:
//
//	hetopt -model models.json -n 9600
//	hetopt -campaign nl -n 9600 -verify    # also simulate every candidate
//	hetopt -campaign nl -n 9600 -heuristic # hill-climb instead of exhaustive
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"hetmodel/internal/cluster"
	"hetmodel/internal/core"
	"hetmodel/internal/experiments"
	"hetmodel/internal/measure"
	"hetmodel/internal/profiling"
	"hetmodel/internal/stats"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("hetopt: ")
	var (
		modelPath = flag.String("model", "", "JSON model file written by modelfit")
		campaign  = flag.String("campaign", "nl", "campaign to build when -model is not given: basic, nl, or ns")
		n         = flag.Int("n", 6400, "problem size N to optimize for")
		heuristic = flag.Bool("heuristic", false, "use the hill-climbing search instead of exhaustive enumeration")
		verify    = flag.Bool("verify", false, "simulate every candidate and report the actual optimum")
		workers   = flag.Int("workers", 0, "concurrent simulations/evaluations (0 = GOMAXPROCS, 1 = sequential)")
	)
	prof := profiling.AddFlags(nil)
	flag.Parse()
	stopProf, err := prof.Start()
	if err != nil {
		log.Fatal(err)
	}
	defer stopProf()

	ctx, err := experiments.NewPaperContext()
	if err != nil {
		log.Fatal(err)
	}
	ctx.Workers = *workers

	var models *core.ModelSet
	if *modelPath != "" {
		models, err = loadModelSet(*modelPath)
		if err != nil {
			log.Fatal(err)
		}
	} else {
		var camp measure.Campaign
		switch strings.ToLower(*campaign) {
		case "basic":
			camp = measure.BasicCampaign()
		case "nl":
			camp = measure.NLCampaign()
		case "ns":
			camp = measure.NSCampaign()
		default:
			log.Fatalf("unknown campaign %q", *campaign)
		}
		bm, err := ctx.BuildModel(camp)
		if err != nil {
			log.Fatal(err)
		}
		models = bm.Models
	}

	candidates := experiments.EvalConfigs()
	var best cluster.Configuration
	var tau float64
	if *heuristic {
		var evals int
		best, tau, evals, err = models.OptimizeHeuristic(cluster.PaperEvaluationSpace(), *n)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("heuristic search: %d model evaluations\n", evals)
	} else {
		best, tau, err = models.OptimizeWorkers(candidates, *n, *workers)
		if err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("N=%d estimated best configuration %s (P1,M1,P2,M2), tau = %.1f s\n", *n, best, tau)

	if !*verify {
		return
	}
	run, err := ctx.Run(best, *n)
	if err != nil {
		log.Fatal(err)
	}
	act, tHat, err := ctx.ActualBest(candidates, *n)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("simulated: chosen config runs in %.1f s; actual best %s runs in %.1f s\n",
		run.WallTime, act, tHat)
	fmt.Printf("errors: (tau-That)/That = %+.3f, (tauHat-That)/That = %+.3f\n",
		stats.RelError(tau, tHat), stats.RelError(run.WallTime, tHat))
}

// loadModelSet reads and decodes a modelfit JSON file, rejecting files that
// decode cleanly but do not describe a usable estimator (e.g. an empty or
// truncated model list).
func loadModelSet(path string) (*core.ModelSet, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	models := &core.ModelSet{}
	if err := json.Unmarshal(data, models); err != nil {
		return nil, fmt.Errorf("parse %s: %v", path, err)
	}
	if err := models.Validate(); err != nil {
		return nil, fmt.Errorf("invalid model file %s: %v", path, err)
	}
	return models, nil
}
