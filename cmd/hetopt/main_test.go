package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"hetmodel/internal/core"
)

// TestLoadModelSetRejectsEmptyModel covers the fixture that bit us: a file
// that unmarshals cleanly into a ModelSet with no models must be rejected
// instead of being handed to the optimizer.
func TestLoadModelSetRejectsEmptyModel(t *testing.T) {
	_, err := loadModelSet(filepath.Join("testdata", "empty_model.json"))
	if err == nil {
		t.Fatal("loadModelSet accepted an empty model file")
	}
	if !strings.Contains(err.Error(), "invalid model file") {
		t.Errorf("error %q does not identify the file as invalid", err)
	}
}

func TestLoadModelSetRejectsGarbage(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "garbage.json")
	if err := os.WriteFile(path, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := loadModelSet(path); err == nil {
		t.Fatal("loadModelSet accepted malformed JSON")
	}
	if _, err := loadModelSet(filepath.Join(dir, "missing.json")); err == nil {
		t.Fatal("loadModelSet accepted a missing file")
	}
}

// TestLoadModelSetRoundTrip accepts a genuinely fitted model file.
func TestLoadModelSetRoundTrip(t *testing.T) {
	samples := syntheticSamples()
	ms, err := core.Build(1, samples)
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(ms)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "models.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	loaded, err := loadModelSet(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Classes != ms.Classes || len(loaded.NT) != len(ms.NT) {
		t.Errorf("round trip lost models: got %d classes, %d N-T bins", loaded.Classes, len(loaded.NT))
	}
}

// syntheticSamples builds one fittable single-PE bin (four sizes, the N-T
// minimum) with exactly cubic Ta and quadratic Tc.
func syntheticSamples() []core.Sample {
	var out []core.Sample
	for _, n := range []int{400, 800, 1200, 1600} {
		fn := float64(n)
		out = append(out, core.Sample{
			N: n, P: 1, M: 1, Class: 0,
			Ta: 1e-9*fn*fn*fn + 0.5,
			Tc: 1e-7*fn*fn + 0.1,
		})
	}
	return out
}
