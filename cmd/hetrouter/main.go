// Command hetrouter runs the fleet front end: it compiles the same
// configuration grid as its hetserve members, partitions the grid-index
// space into one contiguous range per healthy member, scatters each query as
// shard-restricted member queries, and merges the member top-K lists under
// the deterministic (τ, index) order. The merged answer is bit-identical to
// a single planner searching the whole grid — at any member count
// (DESIGN.md §14).
//
// Usage:
//
//	hetrouter -members http://m1:8080,http://m2:8080,http://m3:8080 -addr :8090
//
// Endpoints (see internal/fleet):
//
//	POST|GET /v1/query   scatter (or affinity-route) a query over the fleet
//	POST|GET /v1/topk    ranked K best, merged across members
//	POST     /v1/reload  coordinated two-phase reload: stage on every
//	                     member, commit only when every stage succeeded
//	POST     /v1/refit   coordinated two-phase refit (requires -refit-auth)
//	GET      /v1/healthz router liveness + per-member health and versions
//	GET      /v1/stats   router counters + per-member stats snapshots
//
// The router speaks the member dialect, so hetload (and any other client)
// can point at it unchanged.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"hetmodel/internal/cluster"
	"hetmodel/internal/fleet"
	"hetmodel/internal/version"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("hetrouter: ")
	var (
		addr        = flag.String("addr", ":8090", "listen address")
		members     = flag.String("members", "", "comma-separated member base URLs (required)")
		shardMin    = flag.Int64("shardmin", 4096, "smallest grid size worth scattering; below it queries route whole to the size-affine member (negative: always scatter)")
		maxInFlight = flag.Int("maxinflight", 0, "concurrent member requests (0 = 4x member count)")
		timeout     = flag.Duration("timeout", 15*time.Second, "per member-request timeout")
		healthEvery = flag.Duration("health-interval", 5*time.Second, "membership probe interval (0 = probe only on demand)")
		refitAuth   = flag.String("refit-auth", "", "members' shared refit secret; forwarded on POST /v1/refit (empty = fleet refit disabled)")
	)
	version.AddFlag()
	flag.Parse()
	version.MaybePrint("hetrouter")
	if *members == "" {
		log.Fatal("-members is required (comma-separated hetserve base URLs)")
	}
	var urls []string
	for _, u := range strings.Split(*members, ",") {
		if u = strings.TrimSpace(u); u != "" {
			urls = append(urls, strings.TrimRight(u, "/"))
		}
	}

	router, err := fleet.New(cluster.PaperEvaluationSpace(), fleet.Options{
		Members:     urls,
		ShardMin:    *shardMin,
		MaxInFlight: *maxInFlight,
		Timeout:     *timeout,
		RefitAuth:   *refitAuth,
	})
	if err != nil {
		log.Fatal(err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	healthy := router.CheckHealth(ctx)
	log.Printf("routing %d-candidate grid over %d members (%d healthy) on %s",
		router.Grid().Size(), len(urls), healthy, *addr)
	if *healthEvery > 0 {
		go router.HealthLoop(ctx, *healthEvery)
	}

	srv := &http.Server{Addr: *addr, Handler: router.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()

	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
	}
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Fatal(err)
	}
	log.Print("shut down")
}
