// Command hetload is the production traffic harness for hetserve: it
// generates deterministic workload traces and replays them open-loop
// against a live planner, reporting latency distributions instead of means.
//
// Generate a trace (a committed spec file, or the built-in CI smoke spec):
//
//	hetload -gen -spec spec.json -out trace.json
//	hetload -gen -smoke -out trace.json
//
// Replay a trace. Virtual-time mode fires the requests in order without
// pacing and defines each request's latency as its response's τ (the
// model-estimated execution time), so the summary is byte-identical across
// runs and worker counts — the CI load-smoke gate diffs it against a
// committed golden. Wall-clock mode paces requests on the real clock and
// measures real latency:
//
//	hetload -trace trace.json -target http://127.0.0.1:8080 -virtual -summary out.json
//	hetload -trace trace.json -target http://127.0.0.1:8080 -workers 256 -summary out.json
//
// Sweep offered load and find the admission-control knee (the first step
// where goodput flattens while the server sheds load with 429s):
//
//	hetload -saturate -target http://127.0.0.1:8080 \
//	    -rates 500,1000,2000,4000,8000 -step 2s -out saturation.json -svg saturation.svg
//
// Replay is open-loop: requests fire on schedule whether or not earlier
// responses have returned, so measured latency is free of coordinated
// omission (DESIGN.md §12).
//
// The target may be a hetserve planner or a hetrouter fleet front end — the
// two speak the same dialect. Against a router, hetload additionally reports
// per-member goodput after the run, computed from the delta of each member's
// completed-query counter in the router's aggregated /v1/stats.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"hetmodel/internal/fleet"
	"hetmodel/internal/version"
	"hetmodel/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("hetload: ")
	var (
		gen      = flag.Bool("gen", false, "generate a trace instead of replaying one")
		specPath = flag.String("spec", "", "with -gen: workload spec file (JSON)")
		smoke    = flag.Bool("smoke", false, "with -gen: use the built-in CI smoke spec")
		out      = flag.String("out", "", "output file (-gen: the trace; -saturate: the report); default stdout")

		tracePath = flag.String("trace", "", "trace file to replay")
		target    = flag.String("target", "", "base URL of a running hetserve or hetrouter (e.g. http://127.0.0.1:8080)")
		virtual   = flag.Bool("virtual", false, "virtual-time replay: no pacing, latency = response tau (deterministic)")
		workers   = flag.Int("workers", 64, "max in-flight requests")
		summary   = flag.String("summary", "", "write the replay summary JSON to this file; default stdout")

		saturate = flag.Bool("saturate", false, "sweep offered load against -target and detect the admission-control knee")
		rates    = flag.String("rates", "500,1000,2000,4000,8000,16000", "with -saturate: offered-load steps in qps, comma-separated, increasing")
		step     = flag.Duration("step", 2*time.Second, "with -saturate: duration of each load step")
		seed     = flag.Int64("seed", 1, "with -saturate: seed for the per-step trace generation")
		svg      = flag.String("svg", "", "with -saturate: also render the goodput-vs-offered-load curve to this SVG file")
	)
	version.AddFlag()
	flag.Parse()
	version.MaybePrint("hetload")

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	var err error
	switch {
	case *gen:
		err = runGen(*specPath, *smoke, *out)
	case *saturate:
		err = runSaturate(ctx, *target, *rates, *step, *seed, *workers, *out, *svg)
	case *tracePath != "":
		err = runReplay(ctx, *tracePath, *target, *virtual, *workers, *summary)
	default:
		err = fmt.Errorf("nothing to do: pass -gen, -trace, or -saturate (see -help)")
	}
	if err != nil {
		log.Fatal(err)
	}
}

func runGen(specPath string, smoke bool, out string) error {
	var spec workload.Spec
	switch {
	case smoke && specPath != "":
		return fmt.Errorf("-smoke and -spec are mutually exclusive")
	case smoke:
		spec = workload.SmokeSpec()
	case specPath != "":
		var err error
		if spec, err = workload.ReadSpecFile(specPath); err != nil {
			return err
		}
	default:
		return fmt.Errorf("-gen needs -spec or -smoke")
	}
	trace, err := workload.Generate(spec)
	if err != nil {
		return err
	}
	log.Printf("generated %q: %d requests over %gs (seed %d)",
		trace.Name, len(trace.Requests), float64(trace.DurationNs)/1e9, trace.Seed)
	return writeOut(out, func() ([]byte, error) { return trace.Marshal() })
}

func runReplay(ctx context.Context, tracePath, target string, virtual bool, workers int, summaryPath string) error {
	if target == "" {
		return fmt.Errorf("replay needs -target")
	}
	trace, err := workload.ReadTraceFile(tracePath)
	if err != nil {
		return err
	}
	opts := workload.ReplayOptions{Mode: workload.ModeWall, Workers: workers, Clock: wallClock{}}
	if virtual {
		opts = workload.ReplayOptions{Mode: workload.ModeVirtual, Workers: workers}
	}
	log.Printf("replaying %q (%d requests, %s mode) against %s",
		trace.Name, len(trace.Requests), opts.Mode, target)
	before, start := fleetSnapshot(ctx, target), time.Now()
	outcomes, err := workload.Replay(ctx, workload.NewHTTPClient(target), trace, opts)
	if err != nil {
		return err
	}
	sum := workload.Summarize(trace, outcomes, workload.SummarizeOptions{Mode: opts.Mode})
	log.Printf("done: %d ok, %d rejected (429), %d deadline (504), %d errors",
		sum.Total.OK, sum.Total.Rejected, sum.Total.Deadline, sum.Total.Errors)
	reportFleet(ctx, target, before, time.Since(start))
	return writeOut(summaryPath, func() ([]byte, error) { return sum.Marshal() })
}

// fleetSnapshot reads the target's /v1/stats and returns it when the target
// is a hetrouter (the answer nests per-member rows); nil for a plain
// hetserve, whose flat stats decode with no members.
func fleetSnapshot(ctx context.Context, target string) *fleet.Stats {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, target+"/v1/stats", nil)
	if err != nil {
		return nil
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return nil
	}
	defer resp.Body.Close()
	var st fleet.Stats
	if resp.StatusCode != http.StatusOK || json.NewDecoder(resp.Body).Decode(&st) != nil || len(st.Members) == 0 {
		return nil
	}
	return &st
}

// reportFleet logs per-member goodput over the run: the delta of each
// member's completed-query counter divided by the run's wall time — how the
// scatter (or affinity) load actually spread across the fleet.
func reportFleet(ctx context.Context, target string, before *fleet.Stats, elapsed time.Duration) {
	if before == nil {
		return
	}
	after := fleetSnapshot(ctx, target)
	if after == nil || elapsed <= 0 {
		return
	}
	prev := make(map[string]int64, len(before.Members))
	for _, m := range before.Members {
		if m.Stats != nil {
			prev[m.URL] = m.Stats.Completed
		}
	}
	log.Printf("fleet: %d scatters, %d affinity routes, %d re-scatters, %d retries",
		after.Scatters-before.Scatters, after.Affinity-before.Affinity,
		after.Rescatters-before.Rescatters, after.Retries-before.Retries)
	for _, m := range after.Members {
		if !m.Healthy || m.Stats == nil {
			log.Printf("fleet: member %s: unhealthy (%s)", m.URL, m.Error)
			continue
		}
		done := m.Stats.Completed - prev[m.URL]
		log.Printf("fleet: member %s: %d completed, %.1f qps goodput",
			m.URL, done, float64(done)/elapsed.Seconds())
	}
}

func runSaturate(ctx context.Context, target, rates string, step time.Duration, seed int64, workers int, out, svg string) error {
	if target == "" {
		return fmt.Errorf("-saturate needs -target")
	}
	rateSteps, err := parseRates(rates)
	if err != nil {
		return err
	}
	spec := workload.SaturationSpec{
		Seed:     seed,
		RatesQPS: rateSteps,
		StepNs:   step.Nanoseconds(),
		Cohorts:  workload.SaturationCohorts(),
		Workers:  workers,
	}
	log.Printf("sweeping %d load steps of %s each against %s", len(rateSteps), step, target)
	before, start := fleetSnapshot(ctx, target), time.Now()
	report, err := workload.RunSaturation(ctx, workload.NewHTTPClient(target), wallClock{}, spec)
	if err != nil {
		return err
	}
	reportFleet(ctx, target, before, time.Since(start))
	for i, s := range report.Steps {
		log.Printf("step %d: offered %.0f qps -> goodput %.0f qps, %d rejected, %d deadline, p99 %.2f ms",
			i, s.OfferedQPS, s.GoodputQPS, s.Rejected, s.Deadline, s.P99Ms)
	}
	if report.KneeIndex >= 0 {
		log.Printf("admission-control knee at step %d (offered %.0f qps)", report.KneeIndex, report.KneeQPS)
	} else {
		log.Printf("no knee detected: the server kept up with every step")
	}
	if svg != "" {
		rendered, err := report.SVG()
		if err != nil {
			return err
		}
		if err := os.WriteFile(svg, []byte(rendered), 0o644); err != nil {
			return err
		}
	}
	return writeOut(out, func() ([]byte, error) { return report.Marshal() })
}

func parseRates(s string) ([]float64, error) {
	parts := strings.Split(s, ",")
	rates := make([]float64, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, fmt.Errorf("bad rate %q: %v", p, err)
		}
		rates = append(rates, v)
	}
	return rates, nil
}

// writeOut writes render() to path, or stdout when path is empty.
func writeOut(path string, render func() ([]byte, error)) error {
	b, err := render()
	if err != nil {
		return err
	}
	if path == "" {
		_, err = os.Stdout.Write(b)
		return err
	}
	return os.WriteFile(path, b, 0o644)
}

// wallClock is the real clock behind wall-mode replay. Sub-millisecond
// inter-arrival gaps are shorter than the runtime's timer resolution; for
// those SleepUntil returns immediately and the dispatcher fires the due
// requests back to back, which preserves the offered rate at the cost of
// millisecond-scale micro-batching.
type wallClock struct{}

func (wallClock) NowNs() int64 { return time.Now().UnixNano() }

func (wallClock) SleepUntil(ctx context.Context, atNs int64) error {
	d := time.Duration(atNs - time.Now().UnixNano())
	if d <= 0 {
		return nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
