// Command hplsim runs the HPL reproduction for one cluster configuration
// and prints the detailed per-phase timing breakdown the estimation models
// are built from.
//
// Usage:
//
//	hplsim -n 6400 -p1 1 -m1 2 -p2 8 -m2 1
//	hplsim -n 128 -numeric            # small run with residual check
//	hplsim -n 2400 -lib mpich-1.2.1   # the slow-pipes library (Fig. 1(a))
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"hetmodel/internal/cluster"
	"hetmodel/internal/hpl"
	"hetmodel/internal/hpl2d"
	"hetmodel/internal/simnet"
	"hetmodel/internal/version"
	"hetmodel/internal/vmpi"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("hplsim: ")
	var (
		n       = flag.Int("n", 3200, "matrix order N")
		nb      = flag.Int("nb", hpl.DefaultNB, "panel block size NB")
		p1      = flag.Int("p1", 1, "Athlon PEs to use")
		m1      = flag.Int("m1", 1, "processes per Athlon PE")
		p2      = flag.Int("p2", 0, "Pentium-II PEs to use")
		m2      = flag.Int("m2", 1, "processes per Pentium-II PE")
		lib     = flag.String("lib", "mpich-1.2.2", "messaging library: mpich-1.2.1 or mpich-1.2.2")
		numeric = flag.Bool("numeric", false, "run real arithmetic and check the residual")
		seed    = flag.Int64("seed", 1, "matrix / noise seed")
		noNoise = flag.Bool("no-noise", false, "disable measurement noise")
		pr      = flag.Int("pr", 1, "process grid rows (Pr x Pc must equal total processes; Pr > 1 uses the 2D implementation)")
		pc      = flag.Int("pc", 0, "process grid columns (0 = P/Pr)")
		trace   = flag.String("trace", "", "write a Chrome trace-event timeline of the run to this file")
		look    = flag.Bool("lookahead", false, "enable depth-1 panel lookahead (1D grid only)")
	)
	version.AddFlag()
	flag.Parse()
	version.MaybePrint("hplsim")

	library, err := libraryByName(*lib)
	if err != nil {
		log.Fatal(err)
	}
	cl, err := cluster.NewPaper(library)
	if err != nil {
		log.Fatal(err)
	}
	cfg := cluster.Configuration{Use: []cluster.ClassUse{{PEs: *p1, Procs: *m1}, {PEs: *p2, Procs: *m2}}}
	params := hpl.Params{N: *n, NB: *nb, Numeric: *numeric, Seed: *seed, Lookahead: *look}
	if *noNoise {
		params.Noise = -1
		params.NoiseAbs = -1
	}
	var tracer *vmpi.Tracer
	if *trace != "" {
		tracer = vmpi.NewTracer()
		params.Tracer = tracer
	}
	var res *hpl.Result
	if *pr > 1 {
		cols := *pc
		if cols == 0 && *pr > 0 {
			cols = cfg.TotalProcs() / *pr
		}
		res, err = hpl2d.Run(cl, cfg, hpl2d.Params{Params: params, Pr: *pr, Pc: cols})
	} else {
		res, err = hpl.Run(cl, cfg, params)
	}
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("HPL %s N=%d NB=%d P=%d on %s\n", cfg, *n, *nb, res.P, library.Name)
	fmt.Printf("wall %.3f s, %.3f Gflops\n", res.WallTime, res.Gflops)
	if *numeric {
		status := "PASSED"
		if res.Residual > 16 {
			status = "FAILED"
		}
		fmt.Printf("residual %.3e (%s)\n", res.Residual, status)
	}
	fmt.Printf("%-6s %10s %10s %10s %10s %10s %10s %10s %10s %10s\n",
		"rank", "pfact", "mxswp", "bcast", "laswp", "update", "uptrsv", "Ta", "Tc", "wall")
	for r, rt := range res.PerRank {
		fmt.Printf("%-6d %10.3f %10.3f %10.3f %10.3f %10.3f %10.3f %10.3f %10.3f %10.3f\n",
			r, rt.Pfact, rt.Mxswp, rt.Bcast, rt.Laswp, rt.Update, rt.Uptrsv, rt.Ta(), rt.Tc(), rt.Wall)
	}
	for ci, ct := range res.PerClass {
		if !ct.Used {
			continue
		}
		fmt.Printf("class %d (%s): Ta %.3f  Tc %.3f  wall %.3f\n",
			ci, cl.Classes[ci].Name, ct.Ta, ct.Tc, ct.Wall)
	}
	if tracer != nil {
		f, err := os.Create(*trace)
		if err != nil {
			log.Fatal(err)
		}
		if err := tracer.WriteChromeTrace(f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("trace written to %s (%d events)\n", *trace, len(tracer.Events()))
	}
	if res.WallTime <= 0 {
		os.Exit(1)
	}
}

func libraryByName(name string) (*simnet.CommLibrary, error) {
	switch name {
	case "mpich-1.2.1", "1.2.1":
		return simnet.NewMPICH121(), nil
	case "mpich-1.2.2", "1.2.2":
		return simnet.NewMPICH122(), nil
	default:
		return nil, fmt.Errorf("unknown library %q (want mpich-1.2.1 or mpich-1.2.2)", name)
	}
}
