// Command hetsched plans a queue of HPL-style jobs on the paper cluster:
// it trains (or loads) the estimation models, picks the optimal PE
// configuration per job size, and reports the predicted schedule against
// the fixed fast-only and all-PEs policies.
//
// Usage:
//
//	hetsched -jobs 3200x5,6400x2,9600
//	hetsched -jobs 9600x10 -model models.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"hetmodel/internal/cluster"
	"hetmodel/internal/core"
	"hetmodel/internal/experiments"
	"hetmodel/internal/measure"
	"hetmodel/internal/sched"
	"hetmodel/internal/version"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("hetsched: ")
	var (
		jobsSpec  = flag.String("jobs", "3200x4,6400x2,9600", "job list as NxCount pairs, comma separated")
		modelPath = flag.String("model", "", "JSON model file written by modelfit (default: train the NL model)")
		campaign  = flag.String("campaign", "nl", "campaign to train when -model is not given")
	)
	version.AddFlag()
	flag.Parse()
	version.MaybePrint("hetsched")

	jobs, err := sched.ParseJobs(*jobsSpec)
	if err != nil {
		log.Fatal(err)
	}

	var models *core.ModelSet
	if *modelPath != "" {
		data, err := os.ReadFile(*modelPath)
		if err != nil {
			log.Fatal(err)
		}
		models = &core.ModelSet{}
		if err := json.Unmarshal(data, models); err != nil {
			log.Fatalf("parse %s: %v", *modelPath, err)
		}
	} else {
		ctx, err := experiments.NewPaperContext()
		if err != nil {
			log.Fatal(err)
		}
		var camp measure.Campaign
		switch strings.ToLower(*campaign) {
		case "basic":
			camp = measure.BasicCampaign()
		case "nl":
			camp = measure.NLCampaign()
		case "ns":
			camp = measure.NSCampaign()
		default:
			log.Fatalf("unknown campaign %q", *campaign)
		}
		bm, err := ctx.BuildModel(camp)
		if err != nil {
			log.Fatal(err)
		}
		models = bm.Models
	}

	policies := []sched.Policy{
		{Name: "fast-only", Config: cluster.Configuration{Use: []cluster.ClassUse{{PEs: 1, Procs: 1}, {}}}},
		{Name: "all-PEs", Config: cluster.Configuration{Use: []cluster.ClassUse{{PEs: 1, Procs: 1}, {PEs: 8, Procs: 1}}}},
	}
	plan, err := sched.Build(models, experiments.EvalConfigs(), jobs, policies)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(plan.Render())
}
