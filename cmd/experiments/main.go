// Command experiments regenerates every table and figure of the paper's
// evaluation section on the simulated testbed and writes the full report.
//
// Usage:
//
//	experiments               # report to stdout (takes a few seconds)
//	experiments -out report.txt
package main

import (
	"bufio"
	"flag"
	"log"
	"os"

	"hetmodel/internal/experiments"
	"hetmodel/internal/profiling"
	"hetmodel/internal/version"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("experiments: ")
	out := flag.String("out", "", "write the report to this file instead of stdout")
	svgDir := flag.String("svg", "", "also render every figure as SVG into this directory")
	workers := flag.Int("workers", 0, "concurrent simulations per campaign/sweep (0 = GOMAXPROCS, 1 = sequential)")
	prof := profiling.AddFlags(nil)
	version.AddFlag()
	flag.Parse()
	version.MaybePrint("experiments")
	stopProf, err := prof.Start()
	if err != nil {
		log.Fatal(err)
	}
	defer stopProf()

	ctx, err := experiments.NewPaperContext()
	if err != nil {
		log.Fatal(err)
	}
	ctx.Workers = *workers
	if *svgDir != "" {
		files, err := ctx.WriteFigureSVGs(*svgDir)
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("wrote %d figures to %s", len(files), *svgDir)
	}
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				log.Fatal(err)
			}
		}()
		w = f
	}
	bw := bufio.NewWriter(w)
	if err := ctx.WriteFullReport(bw); err != nil {
		log.Fatal(err)
	}
	if err := bw.Flush(); err != nil {
		log.Fatal(err)
	}
}
