package main

import "testing"

func TestCompareAgainstGates(t *testing.T) {
	base := map[string]result{
		"Fast":  {Name: "Fast", NsPerOp: 100},
		"Slow":  {Name: "Slow", NsPerOp: 100, AllocsPerOp: 7},
		"Clean": {Name: "Clean", NsPerOp: 100},
		// Amortized one-time setup: 0 allocs/op but nonzero B/op, so the
		// allocation gate must not arm for it.
		"Setup": {Name: "Setup", NsPerOp: 100, BytesPerOp: 13},
	}
	results := []result{
		{Name: "Fast", NsPerOp: 103, AllocsPerOp: 0},                  // within tolerance
		{Name: "Slow", NsPerOp: 120, AllocsPerOp: 7},                  // 20% slower
		{Name: "Clean", NsPerOp: 90, AllocsPerOp: 2},                  // faster but now allocates
		{Name: "Setup", NsPerOp: 100, BytesPerOp: 60, AllocsPerOp: 1}, // amortization artifact
		{Name: "Fresh", NsPerOp: 999, AllocsPerOp: 9},                 // not in baseline
	}

	regressed, allocFail := compareAgainst(results, base, 5, true)
	if len(regressed) != 1 || regressed[0] != "Slow" {
		t.Errorf("regressed = %v, want [Slow]", regressed)
	}
	if len(allocFail) != 1 || allocFail[0] != "Clean (2 allocs/op)" {
		t.Errorf("allocFail = %v, want [Clean (2 allocs/op)]", allocFail)
	}

	// Negative tolerance: timing is advisory, allocation gate still bites.
	regressed, allocFail = compareAgainst(results, base, -1, true)
	if len(regressed) != 0 {
		t.Errorf("advisory mode flagged timing regressions: %v", regressed)
	}
	if len(allocFail) != 1 {
		t.Errorf("advisory mode dropped the allocation gate: %v", allocFail)
	}

	// Gate off: allocations ignored.
	if _, allocFail = compareAgainst(results, base, 5, false); len(allocFail) != 0 {
		t.Errorf("alloc gate ran while disabled: %v", allocFail)
	}
}

func TestParseGoBenchLine(t *testing.T) {
	r, ok := parseGoBenchLine("BenchmarkEvaluatorTau-4   1000000   52.1 ns/op   0 B/op   0 allocs/op")
	if !ok {
		t.Fatal("line not recognized")
	}
	if r.Name != "EvaluatorTau" || r.NsPerOp != 52.1 || r.AllocsPerOp != 0 {
		t.Errorf("parsed %+v", r)
	}
	if _, ok := parseGoBenchLine("ok  \thetmodel\t1.2s"); ok {
		t.Error("non-benchmark line accepted")
	}
}
