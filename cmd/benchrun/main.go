// Command benchrun executes the tracked benchmark suite (internal/bench)
// outside the go-test harness and writes the results as JSON, so the
// repository can commit a machine-readable performance baseline
// (BENCH_2.json) and CI can archive one per build.
//
// Usage:
//
//	benchrun -out BENCH_2.json -benchtime 10x -rounds 5
//	benchrun -baseline old.json -baseline-ref cec594e   # merge speedups
//	benchrun -filter 'HPL' -rounds 1                    # quick subset
//	benchrun -compare BENCH_4.json -regress 5           # regression gate
//	benchrun -compare BENCH_4.json -regress -1 -gate-allocs  # allocation gate only
//
// The -compare mode runs the suite, prints a per-workload delta table
// against the given baseline, and exits non-zero when any workload present
// in both runs slowed down by more than -regress percent. Workloads new to
// the suite are listed but never fail the gate. A negative -regress makes
// the timing deltas advisory (printed, never fatal) — timing on shared CI
// runners is too noisy to block on, so CI gates on -gate-allocs instead:
// any workload whose baseline reports 0 allocs/op and 0 B/op must still
// report 0 allocs/op, which catches accidental allocations in the
// zero-alloc hot paths (EvaluatorTau) deterministically.
//
// The baseline file may be a previous benchrun JSON or the text output of
// `go test -bench .`, so a commit that predates this command can still be
// measured (with plain go test in a worktree) and merged as the baseline.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"testing"

	"hetmodel/internal/bench"
	"hetmodel/internal/version"
)

type result struct {
	Name        string  `json:"name"`
	Desc        string  `json:"desc,omitempty"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	// Extra carries custom b.ReportMetric metrics (e.g. coldCompiles/op,
	// p99Ns), from the same median round as NsPerOp. Keys are sorted in the
	// JSON by encoding/json's map ordering, so reports stay diffable.
	Extra map[string]float64 `json:"extra,omitempty"`

	// Populated when -baseline is given and names a matching benchmark.
	BaselineNsPerOp     float64 `json:"baseline_ns_per_op,omitempty"`
	BaselineBytesPerOp  int64   `json:"baseline_bytes_per_op,omitempty"`
	BaselineAllocsPerOp int64   `json:"baseline_allocs_per_op,omitempty"`
	Speedup             float64 `json:"speedup,omitempty"`
}

type report struct {
	Schema      string   `json:"schema"`
	GoVersion   string   `json:"go"`
	GOOS        string   `json:"goos"`
	GOARCH      string   `json:"goarch"`
	CPU         string   `json:"cpu,omitempty"`
	Benchtime   string   `json:"benchtime"`
	Rounds      int      `json:"rounds"`
	BaselineRef string   `json:"baseline_ref,omitempty"`
	Results     []result `json:"results"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchrun: ")
	testing.Init() // register test.* flags so testing.Benchmark honors benchtime
	var (
		out         = flag.String("out", "", "write the JSON report to this file (default stdout)")
		benchtime   = flag.String("benchtime", "5x", "per-round benchmark duration, as for go test -benchtime")
		rounds      = flag.Int("rounds", 3, "rounds per benchmark; the median ns/op round is reported")
		filter      = flag.String("filter", "", "only run benchmarks matching this regexp")
		baseline    = flag.String("baseline", "", "baseline file to merge: a benchrun JSON or `go test -bench` text output")
		baselineRef = flag.String("baseline-ref", "", "label for the baseline (e.g. the commit it was measured at)")
		list        = flag.Bool("list", false, "list the tracked benchmarks and exit")
		compare     = flag.String("compare", "", "baseline file to gate against: print a delta table and exit non-zero on regression")
		regress     = flag.Float64("regress", 5, "with -compare: tolerated slowdown in percent before the gate fails (negative = timing advisory only)")
		gateAllocs  = flag.Bool("gate-allocs", false, "with -compare: fail when a workload with 0 allocs/op and 0 B/op in the baseline now allocates")
	)
	version.AddFlag()
	flag.Parse()
	version.MaybePrint("benchrun")
	if *list {
		for _, c := range bench.Suite() {
			fmt.Printf("%-18s %s\n", c.Name, c.Desc)
		}
		return
	}
	if *rounds < 1 {
		log.Fatalf("-rounds must be >= 1, got %d", *rounds)
	}
	if err := flag.Set("test.benchtime", *benchtime); err != nil {
		log.Fatalf("bad -benchtime %q: %v", *benchtime, err)
	}
	var re *regexp.Regexp
	if *filter != "" {
		var err error
		if re, err = regexp.Compile(*filter); err != nil {
			log.Fatalf("bad -filter: %v", err)
		}
	}

	base := map[string]result{}
	if *baseline != "" {
		var err error
		if base, err = loadBaseline(*baseline); err != nil {
			log.Fatal(err)
		}
	}
	var gate map[string]result
	if *compare != "" {
		var err error
		if gate, err = loadBaseline(*compare); err != nil {
			log.Fatal(err)
		}
	}

	rep := report{
		Schema:      "hetmodel-bench/1",
		GoVersion:   runtime.Version(),
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		CPU:         cpuModel(),
		Benchtime:   *benchtime,
		Rounds:      *rounds,
		BaselineRef: *baselineRef,
	}
	for _, c := range bench.Suite() {
		if re != nil && !re.MatchString(c.Name) {
			continue
		}
		r := runCase(c, *rounds)
		if b, ok := base[c.Name]; ok {
			r.BaselineNsPerOp = b.NsPerOp
			r.BaselineBytesPerOp = b.BytesPerOp
			r.BaselineAllocsPerOp = b.AllocsPerOp
			if r.NsPerOp > 0 {
				r.Speedup = round3(b.NsPerOp / r.NsPerOp)
			}
		}
		fmt.Fprintf(os.Stderr, "%-18s %12.0f ns/op %12d B/op %8d allocs/op",
			r.Name, r.NsPerOp, r.BytesPerOp, r.AllocsPerOp)
		if r.Speedup != 0 {
			fmt.Fprintf(os.Stderr, "   %.2fx vs baseline", r.Speedup)
		}
		extraKeys := make([]string, 0, len(r.Extra))
		for k := range r.Extra {
			extraKeys = append(extraKeys, k)
		}
		sort.Strings(extraKeys)
		for _, k := range extraKeys {
			fmt.Fprintf(os.Stderr, "   %s=%g", k, r.Extra[k])
		}
		fmt.Fprintln(os.Stderr)
		rep.Results = append(rep.Results, r)
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	data = append(data, '\n')
	switch {
	case *out != "":
		if err := os.WriteFile(*out, data, 0o644); err != nil {
			log.Fatal(err)
		}
		log.Printf("wrote %s (%d benchmarks)", *out, len(rep.Results))
	case gate == nil:
		os.Stdout.Write(data)
	}
	if gate != nil {
		regressed, allocFail := compareAgainst(rep.Results, gate, *regress, *gateAllocs)
		if len(regressed) > 0 {
			log.Fatalf("regression gate failed (> %.1f%% slower than %s): %s",
				*regress, *compare, strings.Join(regressed, ", "))
		}
		if len(allocFail) > 0 {
			log.Fatalf("allocation gate failed (0 allocs/op in %s, now allocating): %s",
				*compare, strings.Join(allocFail, ", "))
		}
		log.Printf("gate passed vs %s", *compare)
	}
}

// compareAgainst prints the per-workload delta table for -compare mode and
// returns the names of workloads that slowed down by more than tolPct
// percent (none when tolPct is negative: timing advisory), plus the
// workloads that fail the allocation gate (baseline 0 allocs/op, now
// allocating). Workloads absent from the baseline are listed as "new" and
// never counted as regressions.
func compareAgainst(results []result, base map[string]result, tolPct float64, gateAllocs bool) (regressed, allocFail []string) {
	fmt.Printf("%-18s %14s %14s %9s\n", "workload", "old ns/op", "new ns/op", "delta")
	for _, r := range results {
		b, ok := base[r.Name]
		if !ok || b.NsPerOp <= 0 {
			fmt.Printf("%-18s %14s %14.0f %9s\n", r.Name, "-", r.NsPerOp, "new")
			continue
		}
		delta := (r.NsPerOp - b.NsPerOp) / b.NsPerOp * 100
		mark := ""
		if tolPct >= 0 && delta > tolPct {
			mark = "  REGRESSION"
			regressed = append(regressed, r.Name)
		}
		// Arm the gate only for workloads that are truly allocation-free in
		// the baseline (0 allocs AND 0 bytes): a workload with one-time
		// setup allocations amortized below 1 alloc/op at the baseline's
		// benchtime would flicker at shorter ones.
		if gateAllocs && b.AllocsPerOp == 0 && b.BytesPerOp == 0 && r.AllocsPerOp > 0 {
			mark += "  ALLOCS"
			allocFail = append(allocFail, fmt.Sprintf("%s (%d allocs/op)", r.Name, r.AllocsPerOp))
		}
		fmt.Printf("%-18s %14.0f %14.0f %+8.1f%%%s\n", r.Name, b.NsPerOp, r.NsPerOp, delta, mark)
	}
	return regressed, allocFail
}

// runCase runs one benchmark for the requested number of rounds and keeps
// the median-ns/op round, which is robust against scheduling noise on
// shared machines without averaging away cache effects.
func runCase(c bench.Case, rounds int) result {
	type round struct {
		ns, bytes, allocs float64
		extra             map[string]float64
	}
	rs := make([]round, 0, rounds)
	for i := 0; i < rounds; i++ {
		br := testing.Benchmark(c.F)
		if br.N == 0 {
			log.Fatalf("%s: benchmark failed (0 iterations)", c.Name)
		}
		r := round{
			ns:     float64(br.T.Nanoseconds()) / float64(br.N),
			bytes:  float64(br.AllocedBytesPerOp()),
			allocs: float64(br.AllocsPerOp()),
		}
		if len(br.Extra) > 0 {
			r.extra = make(map[string]float64, len(br.Extra))
			for k, v := range br.Extra {
				r.extra[k] = round3(v)
			}
		}
		rs = append(rs, r)
	}
	sort.Slice(rs, func(i, j int) bool { return rs[i].ns < rs[j].ns })
	m := rs[len(rs)/2]
	return result{
		Name:        c.Name,
		Desc:        c.Desc,
		NsPerOp:     round3(m.ns),
		BytesPerOp:  int64(m.bytes),
		AllocsPerOp: int64(m.allocs),
		Extra:       m.extra,
	}
}

func round3(v float64) float64 {
	s, err := strconv.ParseFloat(strconv.FormatFloat(v, 'g', 6, 64), 64)
	if err != nil {
		return v
	}
	return s
}

// loadBaseline reads either a benchrun JSON report or `go test -bench` text
// output, keyed by benchmark name with any Benchmark prefix and -N GOMAXPROCS
// suffix stripped.
func loadBaseline(path string) (map[string]result, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	byName := map[string]result{}
	trimmed := strings.TrimSpace(string(data))
	if strings.HasPrefix(trimmed, "{") {
		var rep report
		if err := json.Unmarshal(data, &rep); err != nil {
			return nil, fmt.Errorf("parse %s: %v", path, err)
		}
		for _, r := range rep.Results {
			byName[r.Name] = r
		}
		return byName, nil
	}
	perName := map[string][]result{}
	for _, line := range strings.Split(trimmed, "\n") {
		r, ok := parseGoBenchLine(line)
		if !ok {
			continue
		}
		perName[r.Name] = append(perName[r.Name], r)
	}
	// With `go test -count N` the same benchmark appears N times; keep the
	// median-ns/op line, matching runCase's noise handling.
	for name, rs := range perName {
		sort.Slice(rs, func(i, j int) bool { return rs[i].NsPerOp < rs[j].NsPerOp })
		byName[name] = rs[len(rs)/2]
	}
	if len(byName) == 0 {
		return nil, fmt.Errorf("%s: no benchmark results found", path)
	}
	return byName, nil
}

// parseGoBenchLine parses one result line of `go test -bench` output, e.g.
//
//	BenchmarkHPLPhantom-4   10   2922440 ns/op   404920 B/op   5341 allocs/op
func parseGoBenchLine(line string) (result, bool) {
	f := strings.Fields(line)
	if len(f) < 4 || !strings.HasPrefix(f[0], "Benchmark") {
		return result{}, false
	}
	name := strings.TrimPrefix(f[0], "Benchmark")
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	r := result{Name: name}
	seen := false
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			continue
		}
		switch f[i+1] {
		case "ns/op":
			r.NsPerOp, seen = v, true
		case "B/op":
			r.BytesPerOp = int64(v)
		case "allocs/op":
			r.AllocsPerOp = int64(v)
		}
	}
	return r, seen
}

// cpuModel best-effort identifies the host CPU for the report header.
func cpuModel() string {
	data, err := os.ReadFile("/proc/cpuinfo")
	if err != nil {
		return ""
	}
	for _, line := range strings.Split(string(data), "\n") {
		if name, ok := strings.CutPrefix(line, "model name"); ok {
			return strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(name), ":"))
		}
	}
	return ""
}
