// Command modelfit runs one of the paper's measurement campaigns on the
// simulated cluster, fits the N-T/P-T estimation models (with composition
// and adjustment), and writes them as JSON for later use by hetopt.
//
// Usage:
//
//	modelfit -campaign nl -out models.json
//	modelfit -campaign basic            # prints model summary to stdout
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"hetmodel/internal/core"
	"hetmodel/internal/experiments"
	"hetmodel/internal/measure"
	"hetmodel/internal/profiling"
	"hetmodel/internal/version"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("modelfit: ")
	var (
		campaign = flag.String("campaign", "basic", "campaign to run: basic, nl, or ns")
		out      = flag.String("out", "", "write the fitted models as JSON to this file")
		diag     = flag.Bool("diag", false, "print per-bin fit diagnostics")
		cv       = flag.Bool("cv", false, "leave-one-out cross-validation of the N-T fits")
		workers  = flag.Int("workers", 0, "concurrent campaign simulations (0 = GOMAXPROCS, 1 = sequential)")
	)
	prof := profiling.AddFlags(nil)
	version.AddFlag()
	flag.Parse()
	version.MaybePrint("modelfit")
	stopProf, err := prof.Start()
	if err != nil {
		log.Fatal(err)
	}
	defer stopProf()

	var camp measure.Campaign
	switch strings.ToLower(*campaign) {
	case "basic":
		camp = measure.BasicCampaign()
	case "nl":
		camp = measure.NLCampaign()
	case "ns":
		camp = measure.NSCampaign()
	default:
		log.Fatalf("unknown campaign %q (want basic, nl, or ns)", *campaign)
	}

	ctx, err := experiments.NewPaperContext()
	if err != nil {
		log.Fatal(err)
	}
	ctx.Workers = *workers
	bm, err := ctx.BuildModel(camp)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("campaign %s: %d runs, %.0f s simulated measurement time (%.1f h)\n",
		camp.Name, bm.Result.Runs, bm.Result.TotalCost(), bm.Result.TotalCost()/3600)
	fmt.Printf("models: %d N-T bins, %d P-T bins, composition Ta x%.3f Tc x%.2f\n",
		len(bm.Models.NT), len(bm.Models.PT), bm.TaScale, experiments.TcScaleDefault)
	for class := 0; class < bm.Models.Classes; class++ {
		if lt := bm.Models.Adjust[class]; lt != nil {
			fmt.Printf("adjustment class %d: Tc' = %.3f*Tc %+.3f\n", class, lt.A, lt.B)
		}
	}
	if *diag {
		fmt.Print(bm.Models.RenderDiagnostics())
	}
	if *cv {
		results, err := core.CrossValidateNT(bm.Result.Samples)
		if err != nil {
			log.Fatal(err)
		}
		if len(results) == 0 {
			fmt.Println("cross-validation: no validatable bins (zero degrees of freedom — distrust extrapolation)")
		} else {
			fmt.Printf("cross-validation: %d bins, worst held-out |Ta error| %.3f, worst per-bin median %.3f\n",
				len(results), core.WorstCVError(results), core.MedianCVError(results))
		}
	}

	if *out == "" {
		return
	}
	data, err := json.MarshalIndent(bm.Models, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s (%d bytes)\n", *out, len(data))
}
