// Command modelfit runs one of the paper's measurement campaigns on the
// simulated cluster, fits the N-T/P-T estimation models (with composition
// and adjustment), and writes them as JSON for later use by hetopt.
//
// Usage:
//
//	modelfit -campaign nl -out models.json
//	modelfit -campaign basic            # prints model summary to stdout
//
// A model file written by modelfit carries its training-sample bins, so it
// can also be rebuilt from scratch — optionally with a refit batch merged in
// — without re-running the campaign:
//
//	modelfit -rebuild models.json -batch batch.json -out models2.json
//
// The batch file holds {"samples": [...], "calibration": [...]} records in
// the same shape as hetserve's POST /v1/refit body. The rebuild path is the
// reference the refit-parity CI gate diffs the served answers against: a
// full Build over the concatenated samples must agree bit-for-bit with the
// server's incremental refit.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"hetmodel/internal/core"
	"hetmodel/internal/experiments"
	"hetmodel/internal/measure"
	"hetmodel/internal/profiling"
	"hetmodel/internal/version"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("modelfit: ")
	var (
		campaign = flag.String("campaign", "basic", "campaign to run: basic, nl, or ns")
		out      = flag.String("out", "", "write the fitted models as JSON to this file")
		diag     = flag.Bool("diag", false, "print per-bin fit diagnostics")
		cv       = flag.Bool("cv", false, "leave-one-out cross-validation of the N-T fits")
		workers  = flag.Int("workers", 0, "concurrent campaign simulations (0 = GOMAXPROCS, 1 = sequential)")
		rebuild  = flag.String("rebuild", "", "rebuild models from the sample bins of this model file instead of running a campaign")
		batch    = flag.String("batch", "", "with -rebuild: merge this refit batch file ({\"samples\":[...],\"calibration\":[...]}) before rebuilding")
	)
	prof := profiling.AddFlags(nil)
	version.AddFlag()
	flag.Parse()
	version.MaybePrint("modelfit")
	stopProf, err := prof.Start()
	if err != nil {
		log.Fatal(err)
	}
	defer stopProf()

	if *rebuild != "" {
		if err := runRebuild(*rebuild, *batch, *out); err != nil {
			log.Fatal(err)
		}
		return
	}
	if *batch != "" {
		log.Fatal("-batch requires -rebuild")
	}

	var camp measure.Campaign
	switch strings.ToLower(*campaign) {
	case "basic":
		camp = measure.BasicCampaign()
	case "nl":
		camp = measure.NLCampaign()
	case "ns":
		camp = measure.NSCampaign()
	default:
		log.Fatalf("unknown campaign %q (want basic, nl, or ns)", *campaign)
	}

	ctx, err := experiments.NewPaperContext()
	if err != nil {
		log.Fatal(err)
	}
	ctx.Workers = *workers
	bm, err := ctx.BuildModel(camp)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("campaign %s: %d runs, %.0f s simulated measurement time (%.1f h)\n",
		camp.Name, bm.Result.Runs, bm.Result.TotalCost(), bm.Result.TotalCost()/3600)
	fmt.Printf("models: %d N-T bins, %d P-T bins, composition Ta x%.3f Tc x%.2f\n",
		len(bm.Models.NT), len(bm.Models.PT), bm.TaScale, experiments.TcScaleDefault)
	for class := 0; class < bm.Models.Classes; class++ {
		if lt := bm.Models.Adjust[class]; lt != nil {
			fmt.Printf("adjustment class %d: Tc' = %.3f*Tc %+.3f\n", class, lt.A, lt.B)
		}
	}
	if *diag {
		fmt.Print(bm.Models.RenderDiagnostics())
	}
	if *cv {
		results, err := core.CrossValidateNT(bm.Result.Samples)
		if err != nil {
			log.Fatal(err)
		}
		if len(results) == 0 {
			fmt.Println("cross-validation: no validatable bins (zero degrees of freedom — distrust extrapolation)")
		} else {
			fmt.Printf("cross-validation: %d bins, worst held-out |Ta error| %.3f, worst per-bin median %.3f\n",
				len(results), core.WorstCVError(results), core.MedianCVError(results))
		}
	}

	if *out == "" {
		return
	}
	if err := writeModel(*out, bm.Models); err != nil {
		log.Fatal(err)
	}
}

// batchFile is the on-disk refit batch: the same shape as the JSON body of
// hetserve's POST /v1/refit.
type batchFile struct {
	Samples     []core.StoredSample `json:"samples"`
	Calibration []core.StoredSample `json:"calibration"`
}

// runRebuild loads a binned model file, optionally merges a refit batch into
// its bins (bookkeeping only), and refits everything from scratch over the
// concatenated samples — the reference answer the incremental-refit parity
// gate compares the server against.
func runRebuild(modelPath, batchPath, outPath string) error {
	ms, err := core.LoadModelSetFile(modelPath)
	if err != nil {
		return err
	}
	if ms.Bins == nil {
		return fmt.Errorf("%s carries no sample bins; refit a model written by a current modelfit", modelPath)
	}
	if batchPath != "" {
		data, err := os.ReadFile(batchPath)
		if err != nil {
			return err
		}
		var bf batchFile
		if err := json.Unmarshal(data, &bf); err != nil {
			return fmt.Errorf("parse %s: %v", batchPath, err)
		}
		var delta core.SampleDelta
		for _, s := range bf.Samples {
			delta.Samples = append(delta.Samples, s.Sample())
		}
		for _, s := range bf.Calibration {
			delta.Calibration = append(delta.Calibration, s.Sample())
		}
		merged, rep, err := ms.Bins.MergeDelta(delta, ms.Classes)
		if err != nil {
			return err
		}
		ms.Bins = merged
		fmt.Printf("merged %s: %d appended, %d replaced, %d bins touched\n",
			batchPath, rep.Appended+rep.CalibAppended, rep.Replaced+rep.CalibReplaced, len(rep.Touched))
	}
	rebuilt, err := ms.RebuildFromBins()
	if err != nil {
		return err
	}
	fmt.Printf("rebuilt from %d binned samples: %d N-T bins, %d P-T bins\n",
		rebuilt.Bins.Len(), len(rebuilt.NT), len(rebuilt.PT))
	if outPath == "" {
		return nil
	}
	return writeModel(outPath, rebuilt)
}

func writeModel(path string, ms *core.ModelSet) error {
	data, err := json.MarshalIndent(ms, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d bytes)\n", path, len(data))
	return nil
}
