// Command netpipesim reproduces the NetPIPE throughput measurement of the
// paper's Figure 2 on the simulated communication fabric.
//
// Usage:
//
//	netpipesim                      # intra-node, both MPICH presets
//	netpipesim -lib mpich-1.2.1 -internode
package main

import (
	"flag"
	"fmt"
	"log"

	"hetmodel/internal/netpipe"
	"hetmodel/internal/simnet"
	"hetmodel/internal/version"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("netpipesim: ")
	var (
		lib       = flag.String("lib", "", "library: mpich-1.2.1 or mpich-1.2.2 (default: both)")
		interNode = flag.Bool("internode", false, "measure the inter-node (100base-TX) path")
		minKB     = flag.Float64("min", 1, "smallest block size in KiB")
		maxKB     = flag.Float64("max", 256, "largest block size in KiB")
	)
	version.AddFlag()
	flag.Parse()
	version.MaybePrint("netpipesim")

	var libs []*simnet.CommLibrary
	switch *lib {
	case "":
		libs = []*simnet.CommLibrary{simnet.NewMPICH121(), simnet.NewMPICH122()}
	case "mpich-1.2.1", "1.2.1":
		libs = []*simnet.CommLibrary{simnet.NewMPICH121()}
	case "mpich-1.2.2", "1.2.2":
		libs = []*simnet.CommLibrary{simnet.NewMPICH122()}
	default:
		log.Fatalf("unknown library %q", *lib)
	}

	for _, l := range libs {
		fabric, err := simnet.NewFabric(l, simnet.NewFast100TX())
		if err != nil {
			log.Fatal(err)
		}
		points, err := netpipe.Run(fabric, netpipe.Sweep{
			MinBytes:       *minKB * 1024,
			MaxBytes:       *maxKB * 1024,
			StepsPerOctave: 2,
			SameNode:       !*interNode,
		})
		if err != nil {
			log.Fatal(err)
		}
		path := "intra-node"
		if *interNode {
			path = "inter-node"
		}
		fmt.Printf("%s, %s path:\n", l.Name, path)
		fmt.Printf("  %12s %12s %12s\n", "KBytes", "Gbps", "us")
		for _, p := range points {
			fmt.Printf("  %12.1f %12.3f %12.1f\n", p.Bytes/1024, p.Gbps, p.Seconds*1e6)
		}
		peak, at, err := netpipe.PeakThroughput(points)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  peak %.3f Gbps at %.0f KiB\n\n", peak, at/1024)
	}
}
