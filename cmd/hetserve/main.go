// Command hetserve runs the long-lived planner service: it loads a model
// file once, compiles the configuration grid, and answers "best
// configuration for size N" queries over HTTP/JSON until told to stop.
//
// Usage:
//
//	hetserve -model models.json -addr :8080
//
// Endpoints (see internal/serve):
//
//	POST|GET /v1/query   best configuration for a size under constraints
//	POST|GET /v1/topk    ranked K best
//	POST     /v1/reload  swap in a new model file without downtime
//	POST     /v1/refit   fold new measurements into the served model
//	                     incrementally (requires -refit-auth; disabled
//	                     by default)
//	GET      /v1/healthz liveness + current model version
//	GET      /v1/stats   cache/batch/admission counters, including the
//	                     completed/servedNs and rejection counters the
//	                     hetload saturation sweep reads to locate the
//	                     admission-control knee
//
// Answers are bit-identical to `hetopt -model models.json -space` at any
// concurrency; the server only adds caching, batching, and admission
// control around the same compiled search. Drive it with traffic from
// cmd/hetload (see README "Load testing").
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os/signal"
	"syscall"
	"time"

	"hetmodel/internal/cluster"
	"hetmodel/internal/core"
	"hetmodel/internal/serve"
	"hetmodel/internal/version"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("hetserve: ")
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		modelPath   = flag.String("model", "", "JSON model file written by modelfit (required)")
		cacheSize   = flag.Int("cache", 64, "evaluator cache capacity, (version, N) entries")
		maxInFlight = flag.Int("maxinflight", 0, "concurrent grid passes (0 = GOMAXPROCS)")
		maxQueue    = flag.Int("maxqueue", -1, "admission queue length (-1 = 4x maxinflight, 0 = reject when saturated)")
		timeout     = flag.Duration("timeout", 5*time.Second, "default per-query deadline (0 = none)")
		workers     = flag.Int("workers", 0, "search workers per grid pass (0 = GOMAXPROCS)")
		grind       = flag.Duration("grind", 0, "load testing: minimum service time per grid pass, slot held (0 = off)")
		refitAuth   = flag.String("refit-auth", "", "shared secret required in X-Refit-Auth for POST /v1/refit (empty = endpoint disabled)")
	)
	version.AddFlag()
	flag.Parse()
	version.MaybePrint("hetserve")
	if *modelPath == "" {
		log.Fatal("-model is required (write one with: modelfit -campaign nl -out models.json)")
	}

	models, err := core.LoadModelSetFile(*modelPath)
	if err != nil {
		log.Fatal(err)
	}
	planner, err := serve.New(models, cluster.PaperEvaluationSpace(), serve.Options{
		CacheSize:      *cacheSize,
		MaxInFlight:    *maxInFlight,
		MaxQueue:       *maxQueue,
		DefaultTimeout: *timeout,
		Workers:        *workers,
		Grind:          *grind,
		RefitAuth:      *refitAuth,
	})
	if err != nil {
		log.Fatal(err)
	}

	srv := &http.Server{Addr: *addr, Handler: planner.Handler()}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	log.Printf("serving %d-class model (version %d) on %s", models.Classes, planner.Version(), *addr)

	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
	}
	// Graceful shutdown: stop accepting, let in-flight queries finish.
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Fatal(err)
	}
	log.Print("shut down")
}
