package main

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"log"
	"os"

	"hetmodel/internal/analysis"
)

// unitConfig mirrors the JSON the go command writes for each compilation
// unit when invoking `go vet -vettool=hetlint`: the files of one package plus
// everything needed to type-check it against already-built export data.
// Unknown fields (fact-related ones we don't use) are ignored by the decoder.
type unitConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// runUnit executes one unitchecker invocation: parse the unit's files,
// type-check them via the compiler's export data, run the enabled analyzers,
// and print findings. The go command caches results keyed on our -V=full
// output, so clean packages are not re-analyzed between runs.
//
// The whole-program analyzers run over the unit as a one-package program:
// imported packages arrive as export data (no function bodies), so only
// intra-package call edges are visible here. The standalone driver provides
// the cross-package pass; this one still catches same-package propagation
// incrementally on every vet run.
func runUnit(cfgPath string, enabled []*analysis.Analyzer, enabledProg []*analysis.ProgramAnalyzer) {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		log.Fatal(err)
	}
	cfg := new(unitConfig)
	if err := json.Unmarshal(data, cfg); err != nil {
		log.Fatalf("cannot decode JSON config file %s: %v", cfgPath, err)
	}

	// The analyzers carry no cross-package facts, so the facts file the go
	// command expects is always empty — and a VetxOnly run (facts wanted,
	// diagnostics not) has nothing else to do. Writing it before the
	// type-check keeps dependency-only invocations effectively free.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			log.Fatal(err)
		}
	}
	if cfg.VetxOnly {
		return
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return
			}
			log.Fatal(err)
		}
		files = append(files, f)
	}

	compilerImporter := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		// The lookup function supports importing from export data files
		// named in the config, not the current build's install locations.
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no package file for %q", path)
		}
		return os.Open(file)
	})
	imp := importerFunc(func(importPath string) (*types.Package, error) {
		path, ok := cfg.ImportMap[importPath] // vendoring, etc.
		if !ok {
			return nil, fmt.Errorf("can't resolve import %q", importPath)
		}
		if path == "unsafe" {
			return types.Unsafe, nil
		}
		return compilerImporter.Import(path)
	})
	tc := &types.Config{
		Importer:  imp,
		GoVersion: cfg.GoVersion,
		Sizes:     types.SizesFor(cfg.Compiler, build.Default.GOARCH),
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	pkg, err := tc.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return
		}
		log.Fatal(err)
	}

	diags, err := analysis.RunPackage(fset, files, pkg, info, enabled)
	if err != nil {
		log.Fatal(err)
	}
	unit := &analysis.Package{Path: cfg.ImportPath, Fset: fset, Files: files, Pkg: pkg, Info: info}
	progDiags, err := analysis.RunProgram([]*analysis.Package{unit}, enabledProg)
	if err != nil {
		log.Fatal(err)
	}
	diags = append(diags, progDiags...)
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: [%s] %s\n", fset.Position(d.Pos), d.Analyzer, d.Message)
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
