// Command hetlint runs this repository's invariant analyzers — per-package
// (maporder, hotpath, nodeterm, floatorder, atomicfield) and whole-program
// (hotpathprop, allocfree, lockorder); see internal/analysis — in two modes:
//
//	hetlint ./...                 standalone: load, type-check, analyze
//	go vet -vettool=$(which hetlint) ./...
//
// The second form speaks the vet unitchecker protocol (-V=full, -flags, and
// per-package *.cfg configs), so the suite runs incrementally under the go
// command's build cache exactly like the built-in vet analyzers. Because the
// protocol hands over one package at a time, the whole-program analyzers see
// only intra-package call edges there; the standalone form loads every
// matched package into one program and checks the full cross-package call
// graph. make lint and the CI lint job run both.
//
// Individual analyzers toggle like vet passes: `hetlint -maporder ./...`
// runs only maporder; `hetlint -maporder=false ./...` runs all but.
//
// -json switches the standalone form to machine-readable output: a JSON
// array of {file, line, col, analyzer, message} objects on stdout (empty
// array when clean; exit status 1 when findings exist). CI uploads it as
// the lint job's artifact.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/token"
	"io"
	"log"
	"os"
	"path/filepath"
	"strings"

	"hetmodel/internal/analysis"
	"hetmodel/internal/version"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("hetlint: ")

	all := analysis.Analyzers()
	prog := analysis.ProgramAnalyzers()
	selected := make(map[string]*string, len(all)+len(prog))
	for _, a := range all {
		doc, _, _ := strings.Cut(a.Doc, "\n")
		selected[a.Name] = triStateFlag(a.Name, "enable "+a.Name+" analysis: "+doc)
	}
	for _, a := range prog {
		doc, _, _ := strings.Cut(a.Doc, "\n")
		selected[a.Name] = triStateFlag(a.Name, "enable "+a.Name+" analysis (whole-program): "+doc)
	}
	printflags := flag.Bool("flags", false, "print analyzer flags in JSON (vet protocol)")
	jsonOut := flag.Bool("json", false, "standalone mode: emit diagnostics as a JSON array on stdout")
	flag.Var(versionFlag{}, "V", "print version and exit (vet protocol)")
	version.AddFlag()
	flag.Parse()
	if *printflags {
		printFlags()
		return
	}
	version.MaybePrint("hetlint")

	enabled, enabledProg := enabledAnalyzers(all, prog, selected)
	args := flag.Args()
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		runUnit(args[0], enabled, enabledProg)
		return
	}
	if len(args) == 0 {
		args = []string{"./..."}
	}
	runStandalone(args, enabled, enabledProg, *jsonOut)
}

// enabledAnalyzers applies vet's selection semantics across both analyzer
// sets: naming any analyzer with -name runs only the named ones; -name=false
// runs all but those; otherwise everything runs.
func enabledAnalyzers(all []*analysis.Analyzer, prog []*analysis.ProgramAnalyzer, selected map[string]*string) ([]*analysis.Analyzer, []*analysis.ProgramAnalyzer) {
	hasTrue, hasFalse := false, false
	for _, v := range selected {
		switch *v {
		case "true":
			hasTrue = true
		case "false":
			hasFalse = true
		}
	}
	keepName := func(name string) bool {
		v := *selected[name]
		if hasTrue && v != "true" {
			return false
		}
		if !hasTrue && hasFalse && v == "false" {
			return false
		}
		return true
	}
	var keep []*analysis.Analyzer
	for _, a := range all {
		if keepName(a.Name) {
			keep = append(keep, a)
		}
	}
	var keepProg []*analysis.ProgramAnalyzer
	for _, a := range prog {
		if keepName(a.Name) {
			keepProg = append(keepProg, a)
		}
	}
	return keep, keepProg
}

// jsonDiagnostic is one finding in -json output.
type jsonDiagnostic struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func runStandalone(patterns []string, enabled []*analysis.Analyzer, enabledProg []*analysis.ProgramAnalyzer, jsonOut bool) {
	pkgs, err := analysis.Load(".", patterns)
	if err != nil {
		log.Fatal(err)
	}
	var all []jsonDiagnostic
	report := func(fset *token.FileSet, d analysis.Diagnostic) {
		p := fset.Position(d.Pos)
		if jsonOut {
			all = append(all, jsonDiagnostic{File: p.Filename, Line: p.Line, Col: p.Column, Analyzer: d.Analyzer, Message: d.Message})
			return
		}
		fmt.Fprintf(os.Stderr, "%s: [%s] %s\n", p, d.Analyzer, d.Message)
	}
	found := false
	for _, p := range pkgs {
		diags, err := analysis.RunPackage(p.Fset, p.Files, p.Pkg, p.Info, enabled)
		if err != nil {
			log.Fatal(err)
		}
		for _, d := range diags {
			found = true
			report(p.Fset, d)
		}
	}
	// Whole-program pass over everything the patterns matched: this is the
	// run with full cross-package call-graph coverage.
	if len(pkgs) > 0 {
		diags, err := analysis.RunProgram(pkgs, enabledProg)
		if err != nil {
			log.Fatal(err)
		}
		for _, d := range diags {
			found = true
			report(pkgs[0].Fset, d)
		}
	}
	if jsonOut {
		if all == nil {
			all = []jsonDiagnostic{}
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "\t")
		if err := enc.Encode(all); err != nil {
			log.Fatal(err)
		}
	}
	if found {
		os.Exit(1)
	}
}

// triStateFlag registers a string flag that accepts bare -name (implicit
// true) as well as -name=false, matching how go vet passes analyzer toggles.
func triStateFlag(name, usage string) *string {
	v := new(string)
	flag.Var(triState{v}, name, usage)
	return v
}

type triState struct{ v *string }

func (t triState) String() string {
	if t.v == nil {
		return ""
	}
	return *t.v
}
func (t triState) IsBoolFlag() bool { return true }
func (t triState) Set(s string) error {
	switch s {
	case "true", "false":
		*t.v = s
		return nil
	}
	return fmt.Errorf("invalid boolean value %q", s)
}

// printFlags emits the registered flags as JSON, the answer to the go
// command's `vettool -flags` query.
func printFlags() {
	type jsonFlag struct {
		Name  string
		Bool  bool
		Usage string
	}
	var flags []jsonFlag
	flag.VisitAll(func(f *flag.Flag) {
		b, ok := f.Value.(interface{ IsBoolFlag() bool })
		flags = append(flags, jsonFlag{f.Name, ok && b.IsBoolFlag(), f.Usage})
	})
	data, err := json.MarshalIndent(flags, "", "\t")
	if err != nil {
		log.Fatal(err)
	}
	os.Stdout.Write(data)
}

// versionFlag implements the -V=full protocol go vet uses to key its build
// cache: the output must identify this executable's exact contents, so the
// cache invalidates when the tool changes.
type versionFlag struct{}

func (versionFlag) IsBoolFlag() bool { return true }
func (versionFlag) String() string   { return "" }
func (versionFlag) Set(s string) error {
	if s != "full" {
		log.Fatalf("unsupported flag value: -V=%s (use -V=full)", s)
	}
	progname, err := os.Executable()
	if err != nil {
		return err
	}
	f, err := os.Open(progname)
	if err != nil {
		log.Fatal(err)
	}
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		log.Fatal(err)
	}
	f.Close()
	fmt.Printf("%s version devel comments-go-here buildID=%02x\n",
		filepath.Base(progname), string(h.Sum(nil)))
	os.Exit(0)
	return nil
}
