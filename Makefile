# Targets mirror the CI pipeline (.github/workflows/ci.yml) so local runs
# match what the gates enforce.

GO ?= go

.PHONY: all build vet fmt test race bench bench-json bench-compare cover ci

all: build test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Fails when any file needs reformatting (same gate as CI).
fmt:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:" >&2; echo "$$out" >&2; exit 1; \
	fi

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Compile and run every benchmark once (smoke), as CI does. For real
# numbers use e.g.: go test -bench 'Campaign|Sweep' -benchtime=10x .
bench:
	$(GO) test -run=NONE -bench=. -benchtime=1x ./...

# Run the tracked suite (internal/bench) and write a JSON report with
# speedups against the committed baseline. See EXPERIMENTS.md for the
# recipe used to regenerate the committed BENCH_2.json.
bench-json:
	$(GO) run ./cmd/benchrun -out bench.json -baseline BENCH_2.json -baseline-ref BENCH_2.json

# Regression gate: rerun the tracked suite and fail when any workload shared
# with the committed baseline is more than 5% slower. Workloads new since the
# baseline are reported but never fail the gate.
bench-compare:
	$(GO) run ./cmd/benchrun -compare BENCH_2.json -regress 5

cover:
	$(GO) test -coverprofile=coverage.out ./...
	$(GO) tool cover -func=coverage.out

ci: build vet fmt test race bench
