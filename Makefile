# Targets mirror the CI pipeline (.github/workflows/ci.yml) so local runs
# match what the gates enforce.

GO ?= go

.PHONY: all build vet fmt lint test race bench bench-json bench-compare serve serve-smoke router-smoke load-smoke saturation cover ci

all: build test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Fails when any file needs reformatting (same gate as CI).
fmt:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:" >&2; echo "$$out" >&2; exit 1; \
	fi

# Static analysis. The repo's own invariant analyzers (cmd/hetlint, see
# DESIGN.md §11 and §16) run twice: through go vet, so the per-package suite
# (maporder, hotpath, nodeterm, floatorder, atomicfield) is cached per
# package, and standalone, which loads the whole module into one program so
# the cross-package analyzers (hotpathprop, allocfree, lockorder) see the
# full call graph — the vet form only sees intra-package edges. staticcheck
# and shellcheck run when installed and are skipped otherwise (the CI lint
# job always has them, so skipping locally never hides a gate).
lint:
	@mkdir -p bin
	$(GO) build -o bin/hetlint ./cmd/hetlint
	$(GO) vet -vettool=bin/hetlint ./...
	bin/hetlint ./...
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipped (CI enforces it)"; \
	fi
	@if command -v shellcheck >/dev/null 2>&1; then \
		shellcheck scripts/*.sh; \
	else \
		echo "shellcheck not installed; skipped (CI enforces it)"; \
	fi

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Compile and run every benchmark once (smoke), as CI does. For real
# numbers use e.g.: go test -bench 'Campaign|Sweep' -benchtime=10x .
bench:
	$(GO) test -run=NONE -bench=. -benchtime=1x ./...

# Run the tracked suite (internal/bench) and write a JSON report with
# speedups against the committed baseline. See EXPERIMENTS.md for the
# recipe used to regenerate the committed BENCH_8.json.
bench-json:
	$(GO) run ./cmd/benchrun -out bench.json -baseline BENCH_8.json -baseline-ref BENCH_8.json

# Regression gate: rerun the tracked suite and fail when any workload shared
# with the committed baseline is more than 5% slower, or when a zero-alloc
# workload (EvaluatorTau, SearchKernel1M) starts allocating. Workloads new since the baseline
# are reported but never fail the gate.
bench-compare:
	$(GO) run ./cmd/benchrun -compare BENCH_8.json -regress 5 -gate-allocs

# Run the planner service against the committed model fixture (ctrl-C to
# stop). Query it with e.g.:
#   curl 'localhost:8080/v1/topk?n=9600&topk=3'
serve:
	$(GO) run ./cmd/hetserve -model cmd/hetserve/testdata/model_nl.json

# End-to-end smoke test: hetserve answers must match hetopt's direct search
# bit for bit (same gate as the CI serve-smoke job).
serve-smoke:
	sh scripts/serve_smoke.sh

# Fleet gate: 3 members + a hetrouter; the router's merged answers must be
# byte-identical to a whole-grid search, survive a member death via
# re-scatter, and the coordinated reload must be all-or-none (same gate as
# the CI router-smoke job).
router-smoke:
	sh scripts/router_smoke.sh

# Traffic-harness gate: regenerate the committed smoke trace and replay it
# in virtual time against a live hetserve; both must match the committed
# goldens byte for byte (same gate as the CI load-smoke job).
load-smoke:
	sh scripts/load_smoke.sh

# Saturation sweep against a capacity-constrained hetserve: writes
# saturation.json + saturation.svg and reports the admission-control knee
# (CI runs this non-blocking and uploads the artifacts). Strict by default;
# SATURATION_STRICT=0 tolerates a missing knee on slow machines.
saturation:
	sh scripts/saturation.sh

cover:
	$(GO) test -coverprofile=coverage.out ./...
	$(GO) tool cover -func=coverage.out

ci: build vet fmt lint test race bench serve-smoke router-smoke load-smoke
