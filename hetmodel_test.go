package hetmodel_test

import (
	"encoding/json"
	"math"
	"strings"
	"testing"

	"hetmodel"
)

func TestNewPaperClusterShape(t *testing.T) {
	cl, err := hetmodel.NewPaperCluster()
	if err != nil {
		t.Fatal(err)
	}
	if len(cl.Classes) != 2 {
		t.Fatalf("classes = %d", len(cl.Classes))
	}
	if cl.Classes[0].PEs() != 1 || cl.Classes[1].PEs() != 8 {
		t.Fatalf("PE counts: %d, %d", cl.Classes[0].PEs(), cl.Classes[1].PEs())
	}
}

func TestNewClusterCustom(t *testing.T) {
	nodes := []*hetmodel.Node{hetmodel.NewAthlonNode("a1"), hetmodel.NewAthlonNode("a2")}
	cl, err := hetmodel.NewCluster(
		[]hetmodel.Class{{Name: "athlons", Nodes: nodes}},
		hetmodel.NewMPICH122(),
		hetmodel.NewGigabit1000SX(),
	)
	if err != nil {
		t.Fatal(err)
	}
	if cl.Classes[0].PEs() != 2 {
		t.Fatalf("PEs = %d", cl.Classes[0].PEs())
	}
	// Invalid library must be rejected.
	bad := hetmodel.NewMPICH122()
	bad.BandwidthEfficiency = 2
	if _, err := hetmodel.NewCluster(
		[]hetmodel.Class{{Name: "x", Nodes: nodes}}, bad, hetmodel.NewFast100TX(),
	); err == nil {
		t.Fatal("invalid library accepted")
	}
}

func TestCampaignKinds(t *testing.T) {
	cases := map[hetmodel.CampaignKind]struct {
		name  string
		sizes int
	}{
		hetmodel.CampaignBasic: {"Basic", 9},
		hetmodel.CampaignNL:    {"NL", 4},
		hetmodel.CampaignNS:    {"NS", 4},
	}
	for kind, want := range cases {
		plan := kind.Plan()
		if plan.Name != want.name || len(plan.Ns) != want.sizes {
			t.Fatalf("%v plan = %s/%d", kind, plan.Name, len(plan.Ns))
		}
		if kind.String() != want.name {
			t.Fatalf("String() = %s", kind.String())
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("unknown kind should panic")
		}
	}()
	hetmodel.CampaignKind(99).Plan()
}

func TestRunHPLAndSamples(t *testing.T) {
	cl, _ := hetmodel.NewPaperCluster()
	cfg := hetmodel.Configuration{Use: []hetmodel.ClassUse{{PEs: 1, Procs: 1}, {PEs: 2, Procs: 1}}}
	res, err := hetmodel.RunHPL(cl, cfg, hetmodel.HPLParams{N: 512})
	if err != nil {
		t.Fatal(err)
	}
	if res.WallTime <= 0 || res.P != 3 {
		t.Fatalf("result: %+v", res)
	}
	samples := hetmodel.SamplesFromResult(res)
	if len(samples) != 2 {
		t.Fatalf("samples = %d", len(samples))
	}
}

func TestBuildModelsEndToEnd(t *testing.T) {
	cl, _ := hetmodel.NewPaperCluster()
	campaign := hetmodel.Campaign{
		Name: "mini",
		Ns:   []int{512, 1024, 1536, 2048, 3072},
		Groups: []hetmodel.Group{
			{Label: "Athlon", Space: hetmodel.Space{
				PEChoices:   [][]int{{1}, {0}},
				ProcChoices: [][]int{{1, 2}, {0}},
			}},
			{Label: "PII", Space: hetmodel.Space{
				PEChoices:   [][]int{{0}, {1, 2, 4, 8}},
				ProcChoices: [][]int{{0}, {1, 2}},
			}},
		},
	}
	result, err := hetmodel.RunCampaign(cl, campaign, hetmodel.HPLParams{})
	if err != nil {
		t.Fatal(err)
	}
	if result.Runs != (2+8)*5 {
		t.Fatalf("runs = %d", result.Runs)
	}
	// Calibration runs for the adjustment.
	var calib []hetmodel.Sample
	for _, m := range []int{1, 2} {
		cfg := hetmodel.Configuration{Use: []hetmodel.ClassUse{{PEs: 1, Procs: m}, {PEs: 8, Procs: 1}}}
		r, err := hetmodel.RunHPL(cl, cfg, hetmodel.HPLParams{N: 3072})
		if err != nil {
			t.Fatal(err)
		}
		calib = append(calib, hetmodel.SamplesFromResult(r)...)
	}
	models, err := hetmodel.BuildModels(cl, result.Samples, calib)
	if err != nil {
		t.Fatal(err)
	}
	// The Athlon class got composed P-T models.
	est, err := models.Estimate(hetmodel.Configuration{
		Use: []hetmodel.ClassUse{{PEs: 1, Procs: 2}, {PEs: 8, Procs: 1}},
	}, 3072)
	if err != nil {
		t.Fatal(err)
	}
	if est <= 0 || math.IsInf(est, 0) {
		t.Fatalf("estimate = %v", est)
	}
	// Models survive a JSON round trip.
	data, err := json.Marshal(models)
	if err != nil {
		t.Fatal(err)
	}
	var back hetmodel.ModelSet
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	est2, err := back.Estimate(hetmodel.Configuration{
		Use: []hetmodel.ClassUse{{PEs: 1, Procs: 2}, {PEs: 8, Procs: 1}},
	}, 3072)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(est-est2) > 1e-9 {
		t.Fatalf("round-trip estimate differs: %v vs %v", est, est2)
	}
}

func TestBuildModelsWithoutCalibration(t *testing.T) {
	cl, _ := hetmodel.NewPaperCluster()
	models, err := hetmodel.BuildPaperModels(cl, hetmodel.CampaignNS)
	if err != nil {
		t.Fatal(err)
	}
	if models.Adjust == nil {
		t.Fatal("paper pipeline should calibrate the adjustment")
	}
	if len(models.NT) != 30 {
		t.Fatalf("NS NT bins = %d, want 30", len(models.NT))
	}
}

func TestEvalConfigsFacade(t *testing.T) {
	if got := len(hetmodel.EvalConfigs()); got != 62 {
		t.Fatalf("eval configs = %d", got)
	}
}

func TestConfigurationString(t *testing.T) {
	cfg := hetmodel.Configuration{Use: []hetmodel.ClassUse{{PEs: 1, Procs: 4}, {PEs: 8, Procs: 1}}}
	if !strings.Contains(cfg.String(), "1,4,8,1") {
		t.Fatalf("String = %s", cfg.String())
	}
}
