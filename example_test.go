package hetmodel_test

import (
	"fmt"

	"hetmodel"
)

// The complete paper pipeline: simulate the testbed, train the NL model,
// and ask for the best configuration at a large problem size.
func Example() {
	cl, err := hetmodel.NewPaperCluster()
	if err != nil {
		panic(err)
	}
	models, err := hetmodel.BuildPaperModels(cl, hetmodel.CampaignNL)
	if err != nil {
		panic(err)
	}
	best, _, err := models.Optimize(hetmodel.EvalConfigs(), 9600)
	if err != nil {
		panic(err)
	}
	fmt.Println("best configuration (P1,M1,P2,M2):", best)
	// Output:
	// best configuration (P1,M1,P2,M2): (1,4,8,1)
}

// Running a single benchmark execution and reading the paper's timing
// decomposition.
func ExampleRunHPL() {
	cl, err := hetmodel.NewPaperCluster()
	if err != nil {
		panic(err)
	}
	cfg := hetmodel.Configuration{Use: []hetmodel.ClassUse{
		{PEs: 1, Procs: 1}, // the Athlon, one process
		{PEs: 4, Procs: 1}, // four Pentium-IIs
	}}
	res, err := hetmodel.RunHPL(cl, cfg, hetmodel.HPLParams{N: 2048})
	if err != nil {
		panic(err)
	}
	fmt.Println("ranks:", res.P)
	fmt.Println("both classes used:", res.PerClass[0].Used && res.PerClass[1].Used)
	fmt.Println("Ta and Tc positive:", res.PerClass[1].Ta > 0 && res.PerClass[1].Tc > 0)
	// Output:
	// ranks: 5
	// both classes used: true
	// Ta and Tc positive: true
}

// Numeric mode runs real arithmetic and checks the solution like HPL does.
func ExampleRunHPL_numeric() {
	cl, err := hetmodel.NewPaperCluster()
	if err != nil {
		panic(err)
	}
	cfg := hetmodel.Configuration{Use: []hetmodel.ClassUse{{PEs: 1, Procs: 1}, {PEs: 3, Procs: 1}}}
	res, err := hetmodel.RunHPL(cl, cfg, hetmodel.HPLParams{N: 96, NB: 16, Numeric: true, Seed: 1})
	if err != nil {
		panic(err)
	}
	fmt.Println("residual below HPL threshold:", res.Residual < 16)
	// Output:
	// residual below HPL threshold: true
}
