#!/bin/sh
# Saturation sweep: drive a deliberately capacity-constrained hetserve
# (one grid pass at a time, an 8-deep admission queue, a short per-query
# deadline) through increasing offered load with `hetload -saturate`, and
# write the goodput curve plus the detected admission-control knee to
# saturation.json / saturation.svg. CI uploads both as artifacts. Run from
# the repository root:
#
#	sh scripts/saturation.sh
#
# By default the script fails when no knee is detected (the sweep did not
# reach saturation — raise the rates); set SATURATION_STRICT=0 to keep the
# artifacts and exit 0 anyway, e.g. on underpowered local machines. Needs
# python3 and a free TCP port (default 18221, override with HETSERVE_PORT).
set -eu

PORT="${HETSERVE_PORT:-18221}"
MODEL=cmd/hetserve/testdata/model_nl.json
RATES="${SATURATION_RATES:-100,200,400,800,1600,3200}"
GRIND="${SATURATION_GRIND:-2ms}"
STEP="${SATURATION_STEP:-2s}"
STRICT="${SATURATION_STRICT:-1}"
OUT_JSON="${SATURATION_OUT:-saturation.json}"
OUT_SVG="${SATURATION_SVG:-saturation.svg}"
BIN=$(mktemp -d)
# SERVER_PID is empty until the server starts; the guard keeps the trap safe
# under `set -u` when a build step fails before that point.
SERVER_PID=""
trap 'if [ -n "$SERVER_PID" ]; then kill "$SERVER_PID" 2>/dev/null || true; fi; rm -rf "$BIN"' EXIT

echo "== build"
go build -o "$BIN/hetserve" ./cmd/hetserve
go build -o "$BIN/hetload" ./cmd/hetload

echo "== start capacity-constrained hetserve on :$PORT (grind $GRIND)"
# -maxinflight 1 -maxqueue 8 bounds admission; -grind pins the per-pass
# service time, so capacity is exactly 1/grind (500 qps at 2ms) and the
# knee lands inside the swept rates on any runner. The sweep mix draws from
# hundreds of distinct problem sizes so the batcher cannot coalesce its way
# past the admission limit (see workload.SaturationCohorts).
GOMAXPROCS=1 "$BIN/hetserve" -model "$MODEL" -addr "127.0.0.1:$PORT" \
	-maxinflight 1 -maxqueue 8 -timeout 250ms -grind "$GRIND" &
SERVER_PID=$!
for _ in $(seq 1 50); do
	if curl -fsS "http://127.0.0.1:$PORT/v1/healthz" >/dev/null 2>&1; then break; fi
	sleep 0.1
done
curl -fsS "http://127.0.0.1:$PORT/v1/healthz"

echo "== sweep offered load: $RATES qps, $STEP per step"
"$BIN/hetload" -saturate -target "http://127.0.0.1:$PORT" \
	-rates "$RATES" -step "$STEP" -out "$OUT_JSON" -svg "$OUT_SVG"

echo "== clean shutdown"
kill -TERM "$SERVER_PID"
wait "$SERVER_PID"

echo "== knee check"
python3 - "$OUT_JSON" "$STRICT" <<'EOF'
import json, sys
report = json.load(open(sys.argv[1]))
strict = sys.argv[2] != "0"
for s in report["steps"]:
    print(f"  offered {s['offeredQps']:>8.0f} qps  goodput {s['goodputQps']:>8.1f} qps  "
          f"rejected {s['rejected']:>6}  deadline {s['deadline']:>6}  p95 {s['p95Ms']:.1f} ms")
knee = report.get("kneeIndex", -1)
if knee < 0:
    msg = "no admission-control knee detected: the sweep never saturated the server"
    if strict:
        sys.exit(f"FAIL: {msg}")
    print(f"WARN: {msg} (SATURATION_STRICT=0, continuing)")
else:
    print(f"OK: knee at step {knee}: offered {report['kneeQps']:.0f} qps")
EOF
echo "wrote $OUT_JSON and $OUT_SVG"
