#!/bin/sh
# End-to-end smoke test of the fleet front end: build hetserve + hetrouter,
# start three members and a router over them, and drive the fleet invariants
# over real HTTP:
#
#   1. Scatter parity — the router's merged ranked answers are byte-identical
#      (full-precision JSON) to a member searching the whole grid, and match
#      hetopt -space to its printed precision.
#   2. Kill-one-member retry — with a member down, the dead range re-scatters
#      across the survivors and the answer bytes do not change.
#   3. Coordinated reload — the two-phase fleet reload moves every member's
#      version together; with a member dead it fails and no survivor moves.
#
# Run from the repository root:
#
#	sh scripts/router_smoke.sh
#
# Needs python3 (JSON parsing) and four free TCP ports (default 18220-18223,
# override with HETROUTER_PORT_BASE).
set -eu

BASE="${HETROUTER_PORT_BASE:-18220}"
P1=$BASE; P2=$((BASE + 1)); P3=$((BASE + 2)); RPORT=$((BASE + 3))
MODEL=cmd/hetserve/testdata/model_nl.json
N=9600
TOPK=7
BIN=$(mktemp -d)
# Every spawned server appends its PID; the trap kills whatever is still up.
PIDS=""
# shellcheck disable=SC2086 # word-splitting the PID list is the point
trap 'for pid in $PIDS; do kill "$pid" 2>/dev/null || true; done; rm -rf "$BIN"' EXIT

wait_up() {
	for _ in $(seq 1 50); do
		if curl -fsS "http://127.0.0.1:$1/v1/healthz" >/dev/null 2>&1; then return 0; fi
		sleep 0.1
	done
	echo "FAIL: server on :$1 never came up" >&2
	exit 1
}

echo "== build"
go build -o "$BIN/hetserve" ./cmd/hetserve
go build -o "$BIN/hetrouter" ./cmd/hetrouter
go build -o "$BIN/hetopt" ./cmd/hetopt

echo "== start 3 members + router"
for port in $P1 $P2 $P3; do
	"$BIN/hetserve" -model "$MODEL" -addr "127.0.0.1:$port" &
	PIDS="$PIDS $!"
done
for port in $P1 $P2 $P3; do wait_up "$port"; done
# -shardmin -1 forces the scatter path: the fixture grid (62 candidates) is
# far below the production default, which would route whole queries by
# affinity and leave the merge untested.
"$BIN/hetrouter" -members "http://127.0.0.1:$P1,http://127.0.0.1:$P2,http://127.0.0.1:$P3" \
	-addr "127.0.0.1:$RPORT" -shardmin -1 &
ROUTER_PID=$!
PIDS="$PIDS $ROUTER_PID"
wait_up "$RPORT"
curl -fsS "http://127.0.0.1:$RPORT/v1/healthz"

echo "== scatter parity: router vs whole-grid member vs hetopt"
"$BIN/hetopt" -model "$MODEL" -n "$N" -space -topk "$TOPK" | tee "$BIN/direct.txt"
grep -Eo '\([0-9,]+\) +tau = [0-9.]+' "$BIN/direct.txt" > "$BIN/direct.pairs"
[ -s "$BIN/direct.pairs" ] || { echo "FAIL: no candidates in hetopt output" >&2; exit 1; }
curl -fsS "http://127.0.0.1:$RPORT/v1/topk?n=$N&topk=$TOPK" > "$BIN/router_topk.json"
curl -fsS "http://127.0.0.1:$P1/v1/topk?n=$N&topk=$TOPK" > "$BIN/member_topk.json"

check_parity() {
	python3 - "$BIN" "$TOPK" "$1" "$2" <<'EOF'
import json, re, sys
bin_dir, topk, router_file, member_file = sys.argv[1], int(sys.argv[2]), sys.argv[3], sys.argv[4]

a = json.load(open(f"{bin_dir}/{router_file}"))
b = json.load(open(f"{bin_dir}/{member_file}"))
# Byte-identical ranked lists at full float precision: JSON float encoding
# is injective, so string equality is bit identity of every tau.
sa, sb = json.dumps(a["best"]), json.dumps(b["best"])
if sa != sb:
    sys.exit(f"FAIL: router answer diverges from whole-grid member:\n {sa}\n {sb}")
if len(a["best"]) != topk:
    sys.exit(f"FAIL: router returned {len(a['best'])} candidates, want {topk}")

direct = []
for line in open(f"{bin_dir}/direct.pairs"):
    m = re.match(r"(\([0-9,]+\)) +tau = ([0-9.]+)", line.strip())
    direct.append((m.group(1), float(m.group(2))))
served = [(c["config"], c["tau"]) for c in a["best"]]
for i, ((dc, dt), (sc, st)) in enumerate(zip(direct, served)):
    # hetopt prints tau rounded to one decimal: configs exact, taus to the
    # printed precision.
    if dc != sc or abs(dt - st) > 0.05:
        sys.exit(f"FAIL: rank {i+1}: hetopt {dc} tau={dt}, router {sc} tau={st}")
print(f"OK: router merge is byte-identical to the whole-grid search on {topk} candidates")
EOF
}
check_parity router_topk.json member_topk.json

echo "== coordinated reload: every member moves together"
curl -fsS -X POST -H 'Content-Type: application/json' \
	-d "{\"path\": \"$MODEL\"}" "http://127.0.0.1:$RPORT/v1/reload" | tee "$BIN/reload.json"
echo
python3 - "$BIN" <<'EOF'
import json, sys
res = json.load(open(f"{sys.argv[1]}/reload.json"))
versions = [m["version"] for m in res["members"]]
if len(versions) != 3 or versions != [2, 2, 2]:
    sys.exit(f"FAIL: coordinated reload versions {versions}, want [2, 2, 2]")
print("OK: all 3 members moved to version 2 together")
EOF

echo "== kill one member: dead range re-scatters, answers unchanged"
KILLED=$(echo "$PIDS" | awk '{print $2}') # member on port P2
kill "$KILLED"
wait "$KILLED" 2>/dev/null || true
curl -fsS "http://127.0.0.1:$RPORT/v1/topk?n=$N&topk=$TOPK" > "$BIN/router_topk2.json"
check_parity router_topk2.json member_topk.json
curl -fsS "http://127.0.0.1:$RPORT/v1/stats" > "$BIN/stats.json"
python3 - "$BIN" <<'EOF'
import json, sys
st = json.load(open(f"{sys.argv[1]}/stats.json"))
if st["rescatters"] < 1:
    sys.exit(f"FAIL: no re-scatter recorded after member death: {st}")
if st["healthyMembers"] != 2:
    sys.exit(f"FAIL: {st['healthyMembers']} healthy members, want 2")
print(f"OK: dead member's range re-scattered ({st['rescatters']} re-scatters), 2 survivors")
EOF

echo "== coordinated reload with a dead member: all-or-none"
CODE=$(curl -s -o "$BIN/reload_fail.json" -w '%{http_code}' -X POST \
	-H 'Content-Type: application/json' -d "{\"path\": \"$MODEL\"}" \
	"http://127.0.0.1:$RPORT/v1/reload")
[ "$CODE" != 200 ] || { echo "FAIL: fleet reload succeeded with a dead member" >&2; exit 1; }
echo "reload with dead member refused (HTTP $CODE)"
for port in $P1 $P3; do
	V=$(curl -fsS "http://127.0.0.1:$port/v1/healthz" | python3 -c 'import json,sys; print(json.load(sys.stdin)["version"])')
	[ "$V" = 2 ] || { echo "FAIL: survivor on :$port moved to version $V during failed reload" >&2; exit 1; }
done
echo "OK: no survivor moved (still version 2)"

echo "== clean shutdown"
kill -TERM "$ROUTER_PID"
wait "$ROUTER_PID"
echo "OK: hetrouter exited cleanly"
