#!/bin/sh
# CI load-smoke gate for the traffic harness: regenerate the committed smoke
# trace and require it byte-identical, then replay it in virtual time against
# a live hetserve (generous admission limits so nothing is shed) at two
# worker counts and require both summaries byte-identical to the committed
# golden. Any drift in the generator, the trace format, the replay driver,
# the summarizer, or the model's answers fails the diff. Run from the
# repository root:
#
#	sh scripts/load_smoke.sh
#
# Needs a free TCP port (default 18219, override with HETSERVE_PORT).
set -eu

PORT="${HETSERVE_PORT:-18219}"
MODEL=cmd/hetserve/testdata/model_nl.json
TRACE=internal/workload/testdata/trace_smoke.json
GOLDEN=internal/workload/testdata/summary_smoke.json
BIN=$(mktemp -d)
# SERVER_PID is empty until the server starts; the guard keeps the trap safe
# under `set -u` when a build step fails before that point.
SERVER_PID=""
trap 'if [ -n "$SERVER_PID" ]; then kill "$SERVER_PID" 2>/dev/null || true; fi; rm -rf "$BIN"' EXIT

echo "== build"
go build -o "$BIN/hetserve" ./cmd/hetserve
go build -o "$BIN/hetload" ./cmd/hetload

echo "== trace generation is deterministic"
"$BIN/hetload" -gen -smoke -out "$BIN/trace.json"
diff -u "$TRACE" "$BIN/trace.json" || {
	echo "FAIL: hetload -gen -smoke no longer reproduces $TRACE" >&2
	exit 1
}

echo "== start hetserve on :$PORT"
# Admission limits far above the smoke trace's concurrency so every request
# is served: statuses stay deterministic (all 200).
"$BIN/hetserve" -model "$MODEL" -addr "127.0.0.1:$PORT" -maxinflight 4 -maxqueue 1024 &
SERVER_PID=$!
for _ in $(seq 1 50); do
	if curl -fsS "http://127.0.0.1:$PORT/v1/healthz" >/dev/null 2>&1; then break; fi
	sleep 0.1
done
curl -fsS "http://127.0.0.1:$PORT/v1/healthz"

echo "== virtual-time replay, 4 workers"
"$BIN/hetload" -trace "$TRACE" -target "http://127.0.0.1:$PORT" -virtual -workers 4 -summary "$BIN/summary4.json"
diff -u "$GOLDEN" "$BIN/summary4.json" || {
	echo "FAIL: 4-worker replay summary differs from $GOLDEN" >&2
	exit 1
}

echo "== virtual-time replay, 1 worker (worker count must not matter)"
"$BIN/hetload" -trace "$TRACE" -target "http://127.0.0.1:$PORT" -virtual -workers 1 -summary "$BIN/summary1.json"
diff -u "$GOLDEN" "$BIN/summary1.json" || {
	echo "FAIL: 1-worker replay summary differs from $GOLDEN" >&2
	exit 1
}

echo "== server-side counters"
curl -fsS "http://127.0.0.1:$PORT/v1/stats"
echo

echo "== clean shutdown"
kill -TERM "$SERVER_PID"
wait "$SERVER_PID"
echo "OK: load smoke replay is byte-stable against the committed golden"
