#!/bin/sh
# End-to-end smoke test of the planner service: build hetserve, start it
# against the committed model fixture, run one query and one top-K over
# HTTP, and assert the answers are bit-identical to the direct search
# (hetopt -space over the same model file). Run from the repository root:
#
#	sh scripts/serve_smoke.sh
#
# Needs python3 (JSON parsing) and a free TCP port (default 18217,
# override with HETSERVE_PORT).
set -eu

PORT="${HETSERVE_PORT:-18217}"
MODEL=cmd/hetserve/testdata/model_nl.json
N=9600
TOPK=3
BIN=$(mktemp -d)
# SERVER_PID is empty until the server starts; the guard keeps the trap safe
# under `set -u` when a build step fails before that point.
SERVER_PID=""
trap 'if [ -n "$SERVER_PID" ]; then kill "$SERVER_PID" 2>/dev/null || true; fi; rm -rf "$BIN"' EXIT

echo "== build"
go build -o "$BIN/hetserve" ./cmd/hetserve
go build -o "$BIN/hetopt" ./cmd/hetopt

echo "== direct search (hetopt)"
"$BIN/hetopt" -model "$MODEL" -n "$N" -space -topk "$TOPK" | tee "$BIN/direct.txt"
# Extract "(config)  tau" pairs from the ranked list.
grep -Eo '\([0-9,]+\) +tau = [0-9.]+' "$BIN/direct.txt" > "$BIN/direct.pairs"
[ -s "$BIN/direct.pairs" ] || { echo "FAIL: no candidates in hetopt output" >&2; exit 1; }

echo "== start hetserve on :$PORT"
"$BIN/hetserve" -model "$MODEL" -addr "127.0.0.1:$PORT" &
SERVER_PID=$!
for _ in $(seq 1 50); do
	if curl -fsS "http://127.0.0.1:$PORT/v1/healthz" >/dev/null 2>&1; then break; fi
	sleep 0.1
done
curl -fsS "http://127.0.0.1:$PORT/v1/healthz"

echo "== query + top-K over HTTP"
curl -fsS "http://127.0.0.1:$PORT/v1/query?n=$N" > "$BIN/query.json"
curl -fsS "http://127.0.0.1:$PORT/v1/topk?n=$N&topk=$TOPK" > "$BIN/topk.json"

python3 - "$BIN" "$TOPK" <<'EOF'
import json, re, sys
bin_dir, topk = sys.argv[1], int(sys.argv[2])

direct = []
for line in open(f"{bin_dir}/direct.pairs"):
    m = re.match(r"(\([0-9,]+\)) +tau = ([0-9.]+)", line.strip())
    direct.append((m.group(1), float(m.group(2))))

topk_resp = json.load(open(f"{bin_dir}/topk.json"))
served = [(c["config"], c["tau"]) for c in topk_resp["best"]]
if len(served) != topk or len(direct) != topk:
    sys.exit(f"FAIL: expected {topk} candidates, hetopt={len(direct)} hetserve={len(served)}")
for i, ((dc, dt), (sc, st)) in enumerate(zip(direct, served)):
    # hetopt prints tau rounded to one decimal; the configs must match
    # exactly and the taus to the printed precision.
    if dc != sc or abs(dt - st) > 0.05:
        sys.exit(f"FAIL: rank {i+1}: hetopt {dc} tau={dt}, hetserve {sc} tau={st}")

query = json.load(open(f"{bin_dir}/query.json"))
best = query["best"][0]
if (best["config"], best["tau"]) != (served[0][0], served[0][1]):
    sys.exit(f"FAIL: /v1/query winner {best} != /v1/topk rank 1 {served[0]}")
print(f"OK: server matches direct search on {topk} ranked candidates at N={topk_resp['n']}")
EOF

echo "== stats"
curl -fsS "http://127.0.0.1:$PORT/v1/stats"

echo "== clean shutdown"
kill -TERM "$SERVER_PID"
wait "$SERVER_PID"
echo "OK: hetserve exited cleanly"
