#!/bin/sh
# End-to-end smoke test of the planner service: build hetserve, start it
# against the committed model fixture, run one query and one top-K over
# HTTP, and assert the answers are bit-identical to the direct search
# (hetopt -space over the same model file). Then the refit-parity gate:
# POST a measurement batch to /v1/refit (auth required) and assert the
# refit server's ranked answers are byte-for-byte identical to a fresh
# hetserve on the model that modelfit -rebuild produces from the same
# batch. Run from the repository root:
#
#	sh scripts/serve_smoke.sh
#
# Needs python3 (JSON parsing) and two free TCP ports (default 18217 and
# 18218, override with HETSERVE_PORT / HETSERVE_PORT2).
set -eu

PORT="${HETSERVE_PORT:-18217}"
PORT2="${HETSERVE_PORT2:-18218}"
MODEL=cmd/hetserve/testdata/model_nl.json
REFIT_SECRET=smoke-refit-secret
N=9600
TOPK=3
BIN=$(mktemp -d)
# Every spawned server appends its PID to this list, so the trap kills
# whatever is still running no matter where the script dies — adding a
# server cannot silently leak a process the way per-PID trap vars could.
PIDS=""
# shellcheck disable=SC2086 # word-splitting the PID list is the point
trap 'for pid in $PIDS; do kill "$pid" 2>/dev/null || true; done; rm -rf "$BIN"' EXIT

echo "== build"
go build -o "$BIN/hetserve" ./cmd/hetserve
go build -o "$BIN/hetopt" ./cmd/hetopt
go build -o "$BIN/modelfit" ./cmd/modelfit

echo "== direct search (hetopt)"
"$BIN/hetopt" -model "$MODEL" -n "$N" -space -topk "$TOPK" | tee "$BIN/direct.txt"
# Extract "(config)  tau" pairs from the ranked list.
grep -Eo '\([0-9,]+\) +tau = [0-9.]+' "$BIN/direct.txt" > "$BIN/direct.pairs"
[ -s "$BIN/direct.pairs" ] || { echo "FAIL: no candidates in hetopt output" >&2; exit 1; }

echo "== start hetserve on :$PORT"
"$BIN/hetserve" -model "$MODEL" -addr "127.0.0.1:$PORT" -refit-auth "$REFIT_SECRET" &
SERVER_PID=$!
PIDS="$PIDS $SERVER_PID"
for _ in $(seq 1 50); do
	if curl -fsS "http://127.0.0.1:$PORT/v1/healthz" >/dev/null 2>&1; then break; fi
	sleep 0.1
done
curl -fsS "http://127.0.0.1:$PORT/v1/healthz"

echo "== query + top-K over HTTP"
curl -fsS "http://127.0.0.1:$PORT/v1/query?n=$N" > "$BIN/query.json"
curl -fsS "http://127.0.0.1:$PORT/v1/topk?n=$N&topk=$TOPK" > "$BIN/topk.json"

python3 - "$BIN" "$TOPK" <<'EOF'
import json, re, sys
bin_dir, topk = sys.argv[1], int(sys.argv[2])

direct = []
for line in open(f"{bin_dir}/direct.pairs"):
    m = re.match(r"(\([0-9,]+\)) +tau = ([0-9.]+)", line.strip())
    direct.append((m.group(1), float(m.group(2))))

topk_resp = json.load(open(f"{bin_dir}/topk.json"))
served = [(c["config"], c["tau"]) for c in topk_resp["best"]]
if len(served) != topk or len(direct) != topk:
    sys.exit(f"FAIL: expected {topk} candidates, hetopt={len(direct)} hetserve={len(served)}")
for i, ((dc, dt), (sc, st)) in enumerate(zip(direct, served)):
    # hetopt prints tau rounded to one decimal; the configs must match
    # exactly and the taus to the printed precision.
    if dc != sc or abs(dt - st) > 0.05:
        sys.exit(f"FAIL: rank {i+1}: hetopt {dc} tau={dt}, hetserve {sc} tau={st}")

query = json.load(open(f"{bin_dir}/query.json"))
best = query["best"][0]
if (best["config"], best["tau"]) != (served[0][0], served[0][1]):
    sys.exit(f"FAIL: /v1/query winner {best} != /v1/topk rank 1 {served[0]}")
print(f"OK: server matches direct search on {topk} ranked candidates at N={topk_resp['n']}")
EOF

echo "== stats"
curl -fsS "http://127.0.0.1:$PORT/v1/stats"

echo "== refit parity gate"
# Synthesize a re-measurement batch from the model's own bins: the first
# sample of the first persisted bin with Ta scaled by 7%, i.e. a plausible
# re-calibration of one (class, M) cell.
python3 - "$MODEL" > "$BIN/batch.json" <<'EOF'
import json, sys
model = json.load(open(sys.argv[1]))
s = dict(model["bins"][0]["samples"][0])
s["ta"] *= 1.07
json.dump({"samples": [s]}, sys.stdout)
EOF

# Without the auth header the endpoint must refuse.
CODE=$(curl -s -o "$BIN/deny.json" -w '%{http_code}' -X POST \
	--data-binary @"$BIN/batch.json" "http://127.0.0.1:$PORT/v1/refit")
[ "$CODE" = 403 ] || { echo "FAIL: unauthenticated refit got HTTP $CODE, want 403" >&2; exit 1; }
echo "unauthenticated POST refused (403)"

# With the header the batch folds in and the model version advances.
curl -fsS -X POST -H "X-Refit-Auth: $REFIT_SECRET" \
	--data-binary @"$BIN/batch.json" "http://127.0.0.1:$PORT/v1/refit" | tee "$BIN/refit.json"
echo

# Reference path: rebuild the whole model from scratch on bins + batch.
"$BIN/modelfit" -rebuild "$MODEL" -batch "$BIN/batch.json" -out "$BIN/rebuilt.json"
"$BIN/hetopt" -model "$BIN/rebuilt.json" -n "$N" -space -topk "$TOPK" | tee "$BIN/direct2.txt"
grep -Eo '\([0-9,]+\) +tau = [0-9.]+' "$BIN/direct2.txt" > "$BIN/direct2.pairs"

# A second hetserve on the rebuilt model gives full-precision JSON answers
# to diff byte for byte against the refit server's.
"$BIN/hetserve" -model "$BIN/rebuilt.json" -addr "127.0.0.1:$PORT2" &
SERVER2_PID=$!
PIDS="$PIDS $SERVER2_PID"
for _ in $(seq 1 50); do
	if curl -fsS "http://127.0.0.1:$PORT2/v1/healthz" >/dev/null 2>&1; then break; fi
	sleep 0.1
done

curl -fsS "http://127.0.0.1:$PORT/v1/topk?n=$N&topk=$TOPK" > "$BIN/refit_topk.json"
curl -fsS "http://127.0.0.1:$PORT2/v1/topk?n=$N&topk=$TOPK" > "$BIN/rebuilt_topk.json"

python3 - "$BIN" "$TOPK" <<'EOF'
import json, re, sys
bin_dir, topk = sys.argv[1], int(sys.argv[2])

refit = json.load(open(f"{bin_dir}/refit.json"))
if refit.get("version") != 2 or not refit.get("report", {}).get("replaced"):
    sys.exit(f"FAIL: refit response {refit} — want version 2 with a replaced sample")

a = json.load(open(f"{bin_dir}/refit_topk.json"))
b = json.load(open(f"{bin_dir}/rebuilt_topk.json"))
# The ranked candidates must agree byte for byte at full float precision
# (JSON float encoding is injective, so byte equality is bit identity).
sa, sb = json.dumps(a["best"]), json.dumps(b["best"])
if sa != sb:
    sys.exit(f"FAIL: refit server answers differ from rebuilt model:\n {sa}\n {sb}")

direct = []
for line in open(f"{bin_dir}/direct2.pairs"):
    m = re.match(r"(\([0-9,]+\)) +tau = ([0-9.]+)", line.strip())
    direct.append((m.group(1), float(m.group(2))))
served = [(c["config"], c["tau"]) for c in a["best"]]
if len(served) != topk or len(direct) != topk:
    sys.exit(f"FAIL: expected {topk} candidates, hetopt={len(direct)} refit server={len(served)}")
for i, ((dc, dt), (sc, st)) in enumerate(zip(direct, served)):
    if dc != sc or abs(dt - st) > 0.05:
        sys.exit(f"FAIL: rank {i+1}: hetopt {dc} tau={dt}, refit server {sc} tau={st}")
print(f"OK: refit answers match modelfit -rebuild byte for byte on {topk} candidates")
EOF

kill -TERM "$SERVER2_PID"
wait "$SERVER2_PID"
SERVER2_PID=""

echo "== clean shutdown"
kill -TERM "$SERVER_PID"
wait "$SERVER_PID"
echo "OK: hetserve exited cleanly"
