module hetmodel

go 1.22
