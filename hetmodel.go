// Package hetmodel is the public facade of the reproduction of
// Kishimoto & Ichikawa, "An Execution-Time Estimation Model for
// Heterogeneous Clusters" (IPDPS 2004).
//
// It re-exports the library's primary types and provides the convenience
// pipeline a downstream user needs: build (or describe) a heterogeneous
// cluster, measure a model-construction campaign on it, fit the paper's
// N-T/P-T estimation models, and ask for the optimal PE configuration and
// process allocation for a given problem size.
//
//	cl, _ := hetmodel.NewPaperCluster()
//	models, _ := hetmodel.BuildPaperModels(cl, hetmodel.CampaignNL)
//	best, tau, _ := models.Optimize(hetmodel.EvalConfigs(), 9600)
//
// The full machinery (simulated machines, virtual-time MPI, the HPL
// reproduction, campaign runners and the experiment harness) lives in the
// internal packages; see DESIGN.md for the map.
package hetmodel

import (
	"fmt"

	"hetmodel/internal/cluster"
	"hetmodel/internal/core"
	"hetmodel/internal/experiments"
	"hetmodel/internal/hpl"
	"hetmodel/internal/machine"
	"hetmodel/internal/measure"
	"hetmodel/internal/simnet"
)

// Core model types (the paper's contribution).
type (
	// ModelSet bundles fitted N-T and P-T models with binning,
	// composition and adjustment.
	ModelSet = core.ModelSet
	// NTModel is the per-configuration polynomial model in N (§3.2).
	NTModel = core.NTModel
	// PTModel is the per-(class, M) model in N and P (§3.3).
	PTModel = core.PTModel
	// Sample is one measured per-class execution record.
	Sample = core.Sample
)

// Compiled-evaluation types: the query-compiled fast path for scoring
// many candidates at one problem size (see ModelSet.Compile and
// ModelSet.OptimizeSpace).
type (
	// Evaluator is a ModelSet compiled for one problem size n.
	Evaluator = core.Evaluator
	// SearchOptions tunes the streaming configuration search
	// (workers, top-K, pruning).
	SearchOptions = core.SearchOptions
	// SearchResult carries the ranked winners and search statistics.
	SearchResult = core.SearchResult
	// Constraints restricts a search structurally (allowed classes, total
	// process cap, per-PE memory bound); see SearchOptions.Constraints.
	Constraints = core.Constraints
)

// Cluster and configuration types.
type (
	// Cluster is a simulated heterogeneous cluster.
	Cluster = cluster.Cluster
	// Configuration selects PEs and process counts per class.
	Configuration = cluster.Configuration
	// ClassUse is the per-class (PEs, processes-per-PE) pair.
	ClassUse = cluster.ClassUse
	// Space is a grid of candidate configurations.
	Space = cluster.Space
)

// Hardware description types, for building custom clusters.
type (
	// PEType is a processor performance model.
	PEType = machine.PEType
	// Node is a physical machine (CPUs + shared memory).
	Node = machine.Node
	// Class groups identical nodes into one PE class.
	Class = cluster.Class
	// CommLibrary models the messaging software layer.
	CommLibrary = simnet.CommLibrary
	// Network models the physical interconnect.
	Network = simnet.Network
)

// Execution types.
type (
	// HPLParams configures one benchmark run.
	HPLParams = hpl.Params
	// HPLResult is the detailed outcome of one run.
	HPLResult = hpl.Result
	// Campaign is a model-construction measurement plan.
	Campaign = measure.Campaign
	// Group is one labelled configuration grid within a campaign.
	Group = measure.Group
	// CampaignResult carries samples and cost accounting.
	CampaignResult = measure.Result
)

// CampaignKind selects one of the paper's three training plans.
type CampaignKind int

const (
	// CampaignBasic is the paper's Table 2 plan (9 sizes, full grid).
	CampaignBasic CampaignKind = iota
	// CampaignNL is the Table 5 plan (4 large sizes, reduced grid).
	CampaignNL
	// CampaignNS is the Table 8 plan (4 small sizes, reduced grid).
	CampaignNS
)

// Plan returns the campaign definition for the kind.
func (k CampaignKind) Plan() Campaign {
	switch k {
	case CampaignBasic:
		return measure.BasicCampaign()
	case CampaignNL:
		return measure.NLCampaign()
	case CampaignNS:
		return measure.NSCampaign()
	default:
		panic(fmt.Sprintf("hetmodel: unknown campaign kind %d", int(k)))
	}
}

// String implements fmt.Stringer.
func (k CampaignKind) String() string { return k.Plan().Name }

// NewPaperCluster returns the paper's Table 1 testbed (one Athlon node plus
// four dual Pentium-II nodes on 100base-TX) with the MPICH-1.2.2-like
// messaging library.
func NewPaperCluster() (*Cluster, error) {
	return cluster.NewPaper(simnet.NewMPICH122())
}

// NewCluster assembles a custom heterogeneous cluster from node classes, a
// messaging library and a physical network.
func NewCluster(classes []Class, lib *CommLibrary, net *Network) (*Cluster, error) {
	fabric, err := simnet.NewFabric(lib, net)
	if err != nil {
		return nil, err
	}
	return cluster.New(classes, fabric)
}

// Hardware presets re-exported for custom cluster construction.
var (
	// NewAthlonNode returns the paper's Node 1 type.
	NewAthlonNode = machine.NewAthlonNode
	// NewPentiumIINode returns one of the paper's Nodes 2-5.
	NewPentiumIINode = machine.NewPentiumIINode
	// NewAthlon and NewPentiumII return the bare PE models.
	NewAthlon    = machine.NewAthlon
	NewPentiumII = machine.NewPentiumII
	// NewMPICH121 and NewMPICH122 return the messaging-library presets.
	NewMPICH121 = simnet.NewMPICH121
	NewMPICH122 = simnet.NewMPICH122
	// NewFast100TX and NewGigabit1000SX return the network presets.
	NewFast100TX     = simnet.NewFast100TX
	NewGigabit1000SX = simnet.NewGigabit1000SX
)

// RunHPL executes the HPL reproduction for one configuration.
func RunHPL(cl *Cluster, cfg Configuration, params HPLParams) (*HPLResult, error) {
	return hpl.Run(cl, cfg, params)
}

// RunCampaign measures a full model-construction campaign.
func RunCampaign(cl *Cluster, c Campaign, params HPLParams) (*CampaignResult, error) {
	return measure.Run(cl, c, params)
}

// BuildModels fits a complete ModelSet from campaign samples: all N-T and
// P-T models, composition for classes lacking P-T data (class 0 from class
// 1 with a fitted Ta factor and the paper's 0.85 Tc factor), and the §4.1
// adjustment when calibration samples are supplied.
func BuildModels(cl *Cluster, samples []Sample, calibration []Sample) (*ModelSet, error) {
	ms, err := core.Build(len(cl.Classes), samples)
	if err != nil {
		return nil, err
	}
	// Compose any class that lacks P-T models from the first class that
	// has them.
	source := -1
	for _, key := range ms.PTKeys() {
		source = key.Class
		break
	}
	if source >= 0 {
		for ci := range cl.Classes {
			if ci == source {
				continue
			}
			if hasPT(ms, ci) {
				continue
			}
			if _, err := ms.ComposeClassFitted(ci, source, experiments.TcScaleDefault); err != nil {
				return nil, err
			}
		}
	}
	if len(calibration) > 0 {
		if err := ms.FitAdjustment(calibration); err != nil {
			return nil, err
		}
	}
	// Persist the training and calibration samples in (class, M) bins so the
	// model can absorb new measurements incrementally (ModelSet.Refit) and
	// be rebuilt exactly (RebuildFromBins).
	ms.Bins = core.NewBinStore(samples, calibration)
	return ms, nil
}

func hasPT(ms *ModelSet, class int) bool {
	for _, key := range ms.PTKeys() {
		if key.Class == class {
			return true
		}
	}
	return false
}

// BuildPaperModels runs the full paper pipeline on a paper-shaped cluster:
// measurement campaign, model fitting, composition, and the adjustment
// calibrated at the campaign's largest size.
func BuildPaperModels(cl *Cluster, kind CampaignKind) (*ModelSet, error) {
	ctx := experiments.NewContext(cl, HPLParams{})
	bm, err := ctx.BuildModel(kind.Plan())
	if err != nil {
		return nil, err
	}
	return bm.Models, nil
}

// EvalConfigs returns the paper's 62 evaluation configurations for the
// two-class paper cluster.
func EvalConfigs() []Configuration {
	return experiments.EvalConfigs()
}

// SamplesFromResult converts one HPL run into model training samples.
func SamplesFromResult(r *HPLResult) []Sample {
	return measure.SamplesFromResult(r)
}
