// Upgrade advisor: the paper's motivating scenario. You enhanced an old
// PC cluster with one fast processor and now own a heterogeneous machine.
// For each problem size you plan to run, should you use the slow PEs at
// all, and how many processes should the fast PE get?
//
// This example trains the estimation model once and prints the recommended
// configuration schedule across problem sizes, including where the
// crossovers fall (fast-PE-alone → heterogeneous → heavier multiprocessing)
// and what each recommendation saves over the two naive policies.
package main

import (
	"fmt"
	"log"

	"hetmodel"
)

func main() {
	log.SetFlags(0)

	cl, err := hetmodel.NewPaperCluster()
	if err != nil {
		log.Fatal(err)
	}
	models, err := hetmodel.BuildPaperModels(cl, hetmodel.CampaignNL)
	if err != nil {
		log.Fatal(err)
	}
	candidates := hetmodel.EvalConfigs()

	fmt.Println("Recommended configuration schedule (paper cluster):")
	fmt.Printf("%8s %16s %10s %14s %14s\n",
		"N", "recommended", "est [s]", "vs fast-only", "vs all-PEs")

	fastOnly := hetmodel.Configuration{Use: []hetmodel.ClassUse{{PEs: 1, Procs: 1}, {}}}
	allPEs := hetmodel.Configuration{Use: []hetmodel.ClassUse{{PEs: 1, Procs: 1}, {PEs: 8, Procs: 1}}}

	for _, n := range []int{1600, 2400, 3200, 4800, 6400, 8000, 9600} {
		best, tau, err := models.Optimize(candidates, n)
		if err != nil {
			log.Fatal(err)
		}
		// Simulate the recommendation and both naive policies.
		rec, err := hetmodel.RunHPL(cl, best, hetmodel.HPLParams{N: n})
		if err != nil {
			log.Fatal(err)
		}
		fast, err := hetmodel.RunHPL(cl, fastOnly, hetmodel.HPLParams{N: n})
		if err != nil {
			log.Fatal(err)
		}
		all, err := hetmodel.RunHPL(cl, allPEs, hetmodel.HPLParams{N: n})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%8d %16s %10.1f %+13.1f%% %+13.1f%%\n",
			n, best.String(), tau,
			100*(rec.WallTime-fast.WallTime)/fast.WallTime,
			100*(rec.WallTime-all.WallTime)/all.WallTime)
	}
	fmt.Println("\nNegative percentages: the recommendation is faster than the policy.")
	fmt.Println("Small N: the fast PE alone wins (communication would dominate).")
	fmt.Println("Large N: heterogeneous multiprocessing wins (load imbalance solved).")
}
