// Beyond HPL: the paper's closing line — "this study examined one specific
// application (HPL), but other parallel applications should also be
// examined" — carried out. The estimation pipeline is trained on a
// distributed Cholesky factorization instead of LU: same 1xP block-cyclic
// distribution, same Ta/Tc decomposition, same model forms (Cholesky is
// also O(N^3) compute over O(N^2) panel broadcasts), zero changes to the
// model code.
package main

import (
	"fmt"
	"log"

	"hetmodel/internal/chol"
	"hetmodel/internal/cluster"
	"hetmodel/internal/core"
	"hetmodel/internal/measure"
	"hetmodel/internal/simnet"
)

func main() {
	log.SetFlags(0)
	cl, err := cluster.NewPaper(simnet.NewMPICH122())
	if err != nil {
		log.Fatal(err)
	}

	// First: validate the distributed Cholesky numerically.
	check, err := chol.Run(cl,
		cluster.Configuration{Use: []cluster.ClassUse{{PEs: 1, Procs: 2}, {PEs: 3, Procs: 1}}},
		chol.Params{N: 120, NB: 16, Numeric: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("distributed Cholesky, N=120 on 5 ranks: residual %.2e (PASSED < 16)\n\n", check.Residual)

	// Train the models from Cholesky measurements (NL-shaped campaign).
	athlonSpace, piiSpace := cluster.PaperConstructionSpace([]int{1, 2, 4, 8})
	var samples []core.Sample
	var cost float64
	for _, space := range []cluster.Space{athlonSpace, piiSpace} {
		cfgs, err := space.Enumerate()
		if err != nil {
			log.Fatal(err)
		}
		for _, n := range []int{1600, 3200, 4800, 6400} {
			for _, cfg := range cfgs {
				r, err := chol.Run(cl, cfg, chol.Params{N: n})
				if err != nil {
					log.Fatal(err)
				}
				cost += r.WallTime
				samples = append(samples, measure.SamplesFromResult(r)...)
			}
		}
	}
	fmt.Printf("Cholesky campaign: %d samples, %.0f s simulated measurement time\n", len(samples), cost)

	ms, err := core.Build(len(cl.Classes), samples)
	if err != nil {
		log.Fatal(err)
	}
	scale, err := ms.FitCompositionScale(0, 1)
	if err != nil {
		log.Fatal(err)
	}
	if err := ms.ComposeClass(0, 1, scale, 0.85); err != nil {
		log.Fatal(err)
	}
	var calib []core.Sample
	for m1 := 1; m1 <= 6; m1++ {
		cfg := cluster.Configuration{Use: []cluster.ClassUse{{PEs: 1, Procs: m1}, {PEs: 8, Procs: 1}}}
		r, err := chol.Run(cl, cfg, chol.Params{N: 6400})
		if err != nil {
			log.Fatal(err)
		}
		calib = append(calib, measure.SamplesFromResult(r)...)
	}
	if err := ms.FitAdjustment(calib); err != nil {
		log.Fatal(err)
	}

	// Recommend and verify at several sizes.
	candidates, err := cluster.PaperEvaluationSpace().Enumerate()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%8s %16s %10s %12s %12s %10s\n", "N", "recommended", "est [s]", "sim [s]", "best [s]", "penalty")
	for _, n := range []int{3200, 6400, 9600} {
		best, tau, err := ms.Optimize(candidates, n)
		if err != nil {
			log.Fatal(err)
		}
		rec, err := chol.Run(cl, best, chol.Params{N: n})
		if err != nil {
			log.Fatal(err)
		}
		actT := rec.WallTime
		for _, cfg := range candidates {
			r, err := chol.Run(cl, cfg, chol.Params{N: n})
			if err != nil {
				log.Fatal(err)
			}
			if r.WallTime < actT {
				actT = r.WallTime
			}
		}
		fmt.Printf("%8d %16s %10.1f %12.1f %12.1f %9.1f%%\n",
			n, best.String(), tau, rec.WallTime, actT, 100*(rec.WallTime-actT)/actT)
	}
	fmt.Println("\nThe same models, binning, composition and adjustment — new application.")
}
