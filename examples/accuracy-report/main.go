// Accuracy report: how much trust do the estimation models deserve?
// Reproduces the paper's correlation analysis (Figures 6-15) as numbers:
// for each training campaign, the estimate-vs-measurement scatter over all
// 62 evaluation configurations, before and after the adjustment, at an
// interpolated and an extrapolated problem size.
//
// The punchline is the paper's: Basic and NL stay tight; NS (trained only
// on small problems) falls apart when extrapolated.
package main

import (
	"fmt"
	"log"
	"math"

	"hetmodel"
	"hetmodel/internal/experiments"
	"hetmodel/internal/stats"
)

func main() {
	log.SetFlags(0)

	ctx, err := experiments.NewPaperContext()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Model accuracy over the 62 evaluation configurations")
	fmt.Printf("%-6s %6s %9s %12s %12s %12s\n",
		"model", "N", "variant", "Pearson r", "mean |err|", "max |err|")

	for _, kind := range []hetmodel.CampaignKind{
		hetmodel.CampaignBasic, hetmodel.CampaignNL, hetmodel.CampaignNS,
	} {
		bm, err := ctx.BuildModel(kind.Plan())
		if err != nil {
			log.Fatal(err)
		}
		for _, n := range []int{1600, 6400, 9600} {
			if kind == hetmodel.CampaignBasic && n == 1600 {
				continue // below the Basic evaluation range
			}
			for _, adjusted := range []bool{false, true} {
				points, err := ctx.Correlation(bm, n, adjusted)
				if err != nil {
					log.Fatal(err)
				}
				var ests, meas, errs []float64
				for _, p := range points {
					ests = append(ests, p.Est)
					meas = append(meas, p.Meas)
					errs = append(errs, math.Abs((p.Est-p.Meas)/p.Meas))
				}
				r, err := stats.Pearson(ests, meas)
				if err != nil {
					log.Fatal(err)
				}
				mean, _ := stats.Mean(errs)
				max, _ := stats.MaxAbs(errs)
				variant := "raw"
				if adjusted {
					variant = "adjusted"
				}
				fmt.Printf("%-6s %6d %9s %12.4f %11.1f%% %11.1f%%\n",
					kind, n, variant, r, mean*100, max*100)
			}
		}
	}
	fmt.Println("\nReading guide: NS at N >= 6400 shows the paper's Table 9 failure —")
	fmt.Println("training on N <= 1600 cannot see the cubic term well enough to extrapolate.")
}
