// Quickstart: build the paper's heterogeneous cluster, train the NL
// estimation model from a measurement campaign, and ask it for the optimal
// PE configuration and process allocation at a large problem size — the
// complete pipeline of the paper in a dozen lines of API.
package main

import (
	"fmt"
	"log"

	"hetmodel"
)

func main() {
	log.SetFlags(0)

	// The simulated testbed: 1x Athlon 1.33 GHz + 4x dual P-II 400 MHz.
	cl, err := hetmodel.NewPaperCluster()
	if err != nil {
		log.Fatal(err)
	}

	// One plain HPL run on the whole cluster, one process per PE.
	naive := hetmodel.Configuration{Use: []hetmodel.ClassUse{
		{PEs: 1, Procs: 1}, // the Athlon
		{PEs: 8, Procs: 1}, // all eight P-IIs
	}}
	res, err := hetmodel.RunHPL(cl, naive, hetmodel.HPLParams{N: 9600})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("naive %s at N=9600: %.1f s (%.2f Gflops)\n",
		naive, res.WallTime, res.Gflops)

	// Train the NL model (4 problem sizes, reduced grid — about 3 hours
	// of measurement on the real hardware, milliseconds here).
	models, err := hetmodel.BuildPaperModels(cl, hetmodel.CampaignNL)
	if err != nil {
		log.Fatal(err)
	}

	// Ask for the best configuration among the paper's 62 candidates.
	best, tau, err := models.Optimize(hetmodel.EvalConfigs(), 9600)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("model recommends %s (P1,M1,P2,M2), estimated %.1f s\n", best, tau)

	// Verify the recommendation by simulation.
	check, err := hetmodel.RunHPL(cl, best, hetmodel.HPLParams{N: 9600})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("simulated %s: %.1f s (%.2f Gflops) — %.1f%% faster than naive\n",
		best, check.WallTime, check.Gflops,
		100*(res.WallTime-check.WallTime)/res.WallTime)
}
