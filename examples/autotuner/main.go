// Autotuner on a custom cluster: the method is not tied to the paper's
// testbed. This example builds a different heterogeneous machine (two
// fast nodes plus six slow dual nodes on gigabit), runs its own
// model-construction campaign, fits the models through the public API, and
// validates the resulting recommendation against simulation.
package main

import (
	"fmt"
	"log"

	"hetmodel"
)

func main() {
	log.SetFlags(0)

	// A custom machine: class 0 = two fast single-CPU nodes, class 1 =
	// six slow dual-CPU nodes, all on 1000base-SX.
	fast := hetmodel.NewAthlon()
	fast.Name = "fast-2000"
	fast.GemmPeak *= 1.5
	slow := hetmodel.NewPentiumII()
	slow.Name = "slow-450"
	var fastNodes, slowNodes []*hetmodel.Node
	for i := 0; i < 2; i++ {
		fastNodes = append(fastNodes, &hetmodel.Node{
			Name: fmt.Sprintf("fast%d", i+1), Type: fast, CPUs: 1, MemoryBytes: 1 << 30,
		})
	}
	for i := 0; i < 6; i++ {
		slowNodes = append(slowNodes, &hetmodel.Node{
			Name: fmt.Sprintf("slow%d", i+1), Type: slow, CPUs: 2, MemoryBytes: 768 << 20,
		})
	}
	cl, err := hetmodel.NewCluster(
		[]hetmodel.Class{
			{Name: "fast", Nodes: fastNodes},
			{Name: "slow", Nodes: slowNodes},
		},
		hetmodel.NewMPICH122(),
		hetmodel.NewGigabit1000SX(),
	)
	if err != nil {
		log.Fatal(err)
	}

	// A custom construction campaign: homogeneous runs per class.
	campaign := hetmodel.Campaign{
		Name: "custom",
		Ns:   []int{1024, 2048, 3072, 4096, 6144},
		Groups: []hetmodel.Group{
			{Label: "fast", Space: hetmodel.Space{
				PEChoices:   [][]int{{1, 2}, {0}},
				ProcChoices: [][]int{{1, 2, 3}, {0}},
			}},
			{Label: "slow", Space: hetmodel.Space{
				PEChoices:   [][]int{{0}, {1, 2, 4, 8, 12}},
				ProcChoices: [][]int{{0}, {1, 2}},
			}},
		},
	}
	result, err := hetmodel.RunCampaign(cl, campaign, hetmodel.HPLParams{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("campaign: %d runs, %.0f s simulated measurement time\n",
		result.Runs, result.TotalCost())

	// Fit the models. Calibrate the adjustment on a few large mixed runs.
	var calib []hetmodel.Sample
	for _, m := range []int{1, 2} {
		cfg := hetmodel.Configuration{Use: []hetmodel.ClassUse{{PEs: 2, Procs: m}, {PEs: 12, Procs: 1}}}
		r, err := hetmodel.RunHPL(cl, cfg, hetmodel.HPLParams{N: 6144})
		if err != nil {
			log.Fatal(err)
		}
		calib = append(calib, hetmodel.SamplesFromResult(r)...)
	}
	models, err := hetmodel.BuildModels(cl, result.Samples, calib)
	if err != nil {
		log.Fatal(err)
	}

	// Enumerate this machine's own candidate space and optimize.
	space := hetmodel.Space{
		PEChoices:   [][]int{{0, 1, 2}, {0, 1, 2, 4, 8, 12}},
		ProcChoices: [][]int{{1, 2, 3}, {1, 2}},
	}
	candidates, err := space.Enumerate()
	if err != nil {
		log.Fatal(err)
	}
	for _, n := range []int{2048, 6144, 10240} {
		best, tau, err := models.Optimize(candidates, n)
		if err != nil {
			log.Fatal(err)
		}
		check, err := hetmodel.RunHPL(cl, best, hetmodel.HPLParams{N: n})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("N=%5d: recommend %s — estimated %.1f s, simulated %.1f s (%.2f Gflops)\n",
			n, best, tau, check.WallTime, check.Gflops)
	}
}
