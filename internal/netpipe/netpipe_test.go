package netpipe

import (
	"errors"
	"testing"

	"hetmodel/internal/simnet"
)

func fabric(t *testing.T, lib *simnet.CommLibrary) *simnet.Fabric {
	t.Helper()
	f, err := simnet.NewFabric(lib, simnet.NewFast100TX())
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestRunBasicSweep(t *testing.T) {
	f := fabric(t, simnet.NewMPICH122())
	pts, err := Run(f, Sweep{MinBytes: 1024, MaxBytes: 128 * 1024, SameNode: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 8 { // 1K,2K,...,128K
		t.Fatalf("points = %d, want 8", len(pts))
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Bytes <= pts[i-1].Bytes {
			t.Fatal("block sizes not ascending")
		}
	}
	for _, p := range pts {
		if p.Seconds <= 0 || p.Gbps <= 0 {
			t.Fatalf("bad point %+v", p)
		}
	}
}

func TestRunFinerResolution(t *testing.T) {
	f := fabric(t, simnet.NewMPICH122())
	pts, err := Run(f, Sweep{MinBytes: 1024, MaxBytes: 4096, StepsPerOctave: 2, SameNode: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 5 { // 1K, ~1.41K, 2K, ~2.83K, 4K
		t.Fatalf("points = %d, want 5", len(pts))
	}
}

func TestRunErrors(t *testing.T) {
	f := fabric(t, simnet.NewMPICH122())
	if _, err := Run(nil, Sweep{MinBytes: 1, MaxBytes: 2}); !errors.Is(err, ErrBadSweep) {
		t.Fatal("nil fabric accepted")
	}
	if _, err := Run(f, Sweep{MinBytes: 0, MaxBytes: 10}); !errors.Is(err, ErrBadSweep) {
		t.Fatal("zero min accepted")
	}
	if _, err := Run(f, Sweep{MinBytes: 100, MaxBytes: 10}); !errors.Is(err, ErrBadSweep) {
		t.Fatal("inverted bounds accepted")
	}
}

func TestFigure2Shape(t *testing.T) {
	// The reproduction criterion for Figure 2: MPICH-1.2.2-like intra-node
	// peak throughput is several times MPICH-1.2.1-like, and both curves
	// increase with block size up to their peaks.
	sweep := Sweep{MinBytes: 1024, MaxBytes: 256 * 1024, SameNode: true}
	p121, err := Run(fabric(t, simnet.NewMPICH121()), sweep)
	if err != nil {
		t.Fatal(err)
	}
	p122, err := Run(fabric(t, simnet.NewMPICH122()), sweep)
	if err != nil {
		t.Fatal(err)
	}
	peak121, _, err := PeakThroughput(p121)
	if err != nil {
		t.Fatal(err)
	}
	peak122, _, err := PeakThroughput(p122)
	if err != nil {
		t.Fatal(err)
	}
	if peak122 < 3*peak121 {
		t.Fatalf("Fig2 shape violated: 1.2.2 peak %.3f vs 1.2.1 peak %.3f Gbps", peak122, peak121)
	}
	if peak122 < 1.2 {
		t.Fatalf("1.2.2 peak %.3f Gbps, want ~2 (paper Fig 2(b))", peak122)
	}
	if peak121 > 1.0 {
		t.Fatalf("1.2.1 peak %.3f Gbps, want well under 1 (paper Fig 2(a))", peak121)
	}
}

func TestPeakThroughputEmpty(t *testing.T) {
	if _, _, err := PeakThroughput(nil); !errors.Is(err, ErrBadSweep) {
		t.Fatal("empty points accepted")
	}
}

func TestInterNodeSweepSlower(t *testing.T) {
	f := fabric(t, simnet.NewMPICH122())
	intra, _ := Run(f, Sweep{MinBytes: 65536, MaxBytes: 65536, SameNode: true})
	inter, _ := Run(f, Sweep{MinBytes: 65536, MaxBytes: 65536, SameNode: false})
	if inter[0].Gbps >= intra[0].Gbps {
		t.Fatal("inter-node sweep should be slower than intra-node")
	}
}
