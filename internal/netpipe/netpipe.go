// Package netpipe reimplements the NetPIPE measurement protocol (a ping-pong
// throughput sweep over exponentially growing block sizes) on top of the
// simulated communication fabric. The paper uses NetPIPE to explain why
// MPICH-1.2.1 cripples the multiprocessing approach (Figure 2).
package netpipe

import (
	"errors"
	"fmt"
	"math"

	"hetmodel/internal/simnet"
)

// Point is one measurement of the sweep.
type Point struct {
	// Bytes is the block size.
	Bytes float64
	// Seconds is the one-way transfer time for that block.
	Seconds float64
	// Gbps is the achieved throughput in gigabits per second, the unit of
	// the paper's Figure 2.
	Gbps float64
}

// Sweep describes a NetPIPE-style run.
type Sweep struct {
	// MinBytes and MaxBytes bound the block sizes (inclusive); block size
	// doubles each step, with PerDecade > 0 selecting finer sub-steps.
	MinBytes, MaxBytes float64
	// StepsPerOctave controls resolution: number of sizes per doubling
	// (1 = pure doubling).
	StepsPerOctave int
	// SameNode selects the intra-node path (the paper measures two
	// processes on the same Athlon).
	SameNode bool
}

// ErrBadSweep reports invalid sweep bounds.
var ErrBadSweep = errors.New("netpipe: invalid sweep bounds")

// Run performs the sweep on the fabric and returns the measured points in
// ascending block-size order.
func Run(f *simnet.Fabric, s Sweep) ([]Point, error) {
	if f == nil {
		return nil, fmt.Errorf("%w: nil fabric", ErrBadSweep)
	}
	if s.MinBytes <= 0 || s.MaxBytes < s.MinBytes {
		return nil, fmt.Errorf("%w: [%v, %v]", ErrBadSweep, s.MinBytes, s.MaxBytes)
	}
	steps := s.StepsPerOctave
	if steps <= 0 {
		steps = 1
	}
	factor := math.Exp2(1.0 / float64(steps))
	var out []Point
	for b := s.MinBytes; b <= s.MaxBytes*1.0000001; b *= factor {
		t := f.TransferTime(b, s.SameNode)
		out = append(out, Point{
			Bytes:   b,
			Seconds: t,
			Gbps:    b * 8 / t / 1e9,
		})
	}
	return out, nil
}

// PeakThroughput returns the maximum throughput over the sweep in Gbps and
// the block size at which it occurs.
func PeakThroughput(points []Point) (gbps, atBytes float64, err error) {
	if len(points) == 0 {
		return 0, 0, ErrBadSweep
	}
	for _, p := range points {
		if p.Gbps > gbps {
			gbps, atBytes = p.Gbps, p.Bytes
		}
	}
	return gbps, atBytes, nil
}
