package simnet

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCurveValidate(t *testing.T) {
	good := Curve{Latency: 1e-6, Bandwidth: 1e6}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Curve{
		{Bandwidth: 0},
		{Bandwidth: 1e6, Latency: -1},
		{Bandwidth: 1e6, HalfSize: -1},
		{Bandwidth: 1e6, EagerLimit: -1},
		{Bandwidth: 1e6, RendezvousLatency: -1},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Fatalf("bad curve %d accepted", i)
		}
	}
}

func TestCurveTimeZeroBytes(t *testing.T) {
	c := Curve{Latency: 5e-6, Bandwidth: 1e6}
	if got := c.Time(0); got != 5e-6 {
		t.Fatalf("zero-byte time = %v", got)
	}
	if got := c.Time(-10); got != 5e-6 {
		t.Fatalf("negative-byte time = %v", got)
	}
	if c.Throughput(0) != 0 {
		t.Fatal("zero-byte throughput should be 0")
	}
}

func TestCurveAsymptoticBandwidth(t *testing.T) {
	c := Curve{Latency: 1e-6, Bandwidth: 100e6, HalfSize: 1024}
	// A huge message should approach the asymptotic bandwidth.
	tp := c.Throughput(1e9)
	if tp < 0.98*c.Bandwidth || tp > c.Bandwidth {
		t.Fatalf("asymptotic throughput = %v, want ≈ %v", tp, c.Bandwidth)
	}
}

func TestCurveRendezvousKnee(t *testing.T) {
	c := Curve{Latency: 10e-6, Bandwidth: 100e6, EagerLimit: 1024, RendezvousLatency: 100e-6}
	below := c.Time(1024)
	above := c.Time(1025)
	if above-below < 90e-6 {
		t.Fatalf("rendezvous knee missing: below=%v above=%v", below, above)
	}
}

func TestPresetValidation(t *testing.T) {
	for _, lib := range []*CommLibrary{NewMPICH121(), NewMPICH122()} {
		if err := lib.Validate(); err != nil {
			t.Fatalf("%s: %v", lib.Name, err)
		}
	}
	for _, n := range []*Network{NewFast100TX(), NewGigabit1000SX()} {
		if err := n.Validate(); err != nil {
			t.Fatalf("%s: %v", n.Name, err)
		}
	}
}

func TestLibraryValidateRejects(t *testing.T) {
	var nilLib *CommLibrary
	if err := nilLib.Validate(); err == nil {
		t.Fatal("nil library accepted")
	}
	l := NewMPICH122()
	l.BandwidthEfficiency = 0
	if err := l.Validate(); err == nil {
		t.Fatal("zero efficiency accepted")
	}
	l = NewMPICH122()
	l.BandwidthEfficiency = 1.5
	if err := l.Validate(); err == nil {
		t.Fatal("efficiency > 1 accepted")
	}
	l = NewMPICH122()
	l.PerMessageOverhead = -1
	if err := l.Validate(); err == nil {
		t.Fatal("negative overhead accepted")
	}
	var nilNet *Network
	if err := nilNet.Validate(); err == nil {
		t.Fatal("nil network accepted")
	}
}

func TestNewFabricValidates(t *testing.T) {
	if _, err := NewFabric(NewMPICH122(), NewFast100TX()); err != nil {
		t.Fatal(err)
	}
	bad := NewMPICH122()
	bad.BandwidthEfficiency = -1
	if _, err := NewFabric(bad, NewFast100TX()); err == nil {
		t.Fatal("invalid library accepted")
	}
	badNet := NewFast100TX()
	badNet.Link.Bandwidth = 0
	if _, err := NewFabric(NewMPICH122(), badNet); err == nil {
		t.Fatal("invalid network accepted")
	}
}

func TestMPICH122IntraNodeMuchFasterThan121(t *testing.T) {
	// The core of paper Figure 2: at a 64 KiB block the 1.2.2-like library
	// must be several times faster intra-node.
	f121, _ := NewFabric(NewMPICH121(), NewFast100TX())
	f122, _ := NewFabric(NewMPICH122(), NewFast100TX())
	const block = 64 * 1024
	t121 := f121.Throughput(block, true)
	t122 := f122.Throughput(block, true)
	if t122 < 3*t121 {
		t.Fatalf("1.2.2 intra-node throughput %v not >> 1.2.1 %v", t122, t121)
	}
	// And the 1.2.2 peak should be in the ~2 Gbps regime of Figure 2(b).
	gbps := t122 * 8 / 1e9
	if gbps < 1.2 || gbps > 3.0 {
		t.Fatalf("1.2.2 intra-node at 64KiB = %.2f Gbps, want ~1.5-2.5", gbps)
	}
}

func TestInterNodeSlowerThanIntraNode(t *testing.T) {
	f, _ := NewFabric(NewMPICH122(), NewFast100TX())
	const block = 32 * 1024
	if f.TransferTime(block, false) <= f.TransferTime(block, true) {
		t.Fatal("inter-node should be slower than intra-node")
	}
}

func TestFabricInterNodeDerating(t *testing.T) {
	f, _ := NewFabric(NewMPICH122(), NewFast100TX())
	raw := f.Network.Link.Time(1e6)
	derated := f.TransferTime(1e6, false)
	if derated <= raw {
		t.Fatal("library must add overhead to the raw link")
	}
	if f.Throughput(0, false) != 0 {
		t.Fatal("zero-byte fabric throughput")
	}
}

// Property: transfer time is strictly increasing in message size and
// throughput never exceeds the configured bandwidth.
func TestCurveMonotoneProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := Curve{
			Latency:   rng.Float64() * 1e-4,
			Bandwidth: 1e6 + rng.Float64()*1e9,
			HalfSize:  rng.Float64() * 1e5,
		}
		a := 1 + rng.Float64()*1e6
		b := a + 1 + rng.Float64()*1e6
		if c.Time(b) <= c.Time(a) {
			return false
		}
		return c.Throughput(b) <= c.Bandwidth*1.0000001
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
