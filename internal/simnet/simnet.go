// Package simnet models the communication substrate of the simulated
// cluster: physical network links (100base-TX, 1000base-SX) and the
// messaging-library software layer (MPICH-1.2.1-like and MPICH-1.2.2-like
// presets), including the intra-node pipe/shared-memory path whose
// throughput difference between the two MPICH versions explains the paper's
// Figures 1 and 2.
//
// The transfer-time model is the classic piecewise latency/bandwidth form
//
//	T(s) = overhead + latency + s / effBW(s),   effBW(s) = BW · s/(s+s_half)
//
// with an optional eager→rendezvous protocol switch that adds a handshake
// latency above a threshold, producing the characteristic NetPIPE knee.
package simnet

import (
	"errors"
	"fmt"
)

// ErrBadCurve reports an invalid transfer curve.
var ErrBadCurve = errors.New("simnet: invalid curve parameters")

// Curve is a piecewise latency/bandwidth transfer-time model for one path.
type Curve struct {
	// Latency is the zero-byte one-way latency in seconds.
	Latency float64
	// Bandwidth is the asymptotic bandwidth in bytes/second.
	Bandwidth float64
	// HalfSize is the message size (bytes) at which half the asymptotic
	// bandwidth is reached (n_1/2 of the path).
	HalfSize float64
	// EagerLimit, when positive, is the eager-protocol threshold: messages
	// larger than this pay RendezvousLatency for the handshake.
	EagerLimit float64
	// RendezvousLatency is the extra handshake latency beyond EagerLimit.
	RendezvousLatency float64
}

// Validate reports whether the curve is usable.
func (c Curve) Validate() error {
	switch {
	case c.Bandwidth <= 0:
		return fmt.Errorf("%w: bandwidth %v", ErrBadCurve, c.Bandwidth)
	case c.Latency < 0 || c.HalfSize < 0 || c.EagerLimit < 0 || c.RendezvousLatency < 0:
		return fmt.Errorf("%w: negative parameter", ErrBadCurve)
	}
	return nil
}

// Time returns the one-way transfer time in seconds of a message of the
// given size in bytes. Zero and negative sizes cost the latency only.
func (c Curve) Time(bytes float64) float64 {
	t := c.Latency
	if bytes <= 0 {
		return t
	}
	if c.EagerLimit > 0 && bytes > c.EagerLimit {
		t += c.RendezvousLatency
	}
	bw := c.Bandwidth
	if c.HalfSize > 0 {
		bw *= bytes / (bytes + c.HalfSize)
	}
	return t + bytes/bw
}

// Throughput returns bytes/second achieved for a message of the given size.
func (c Curve) Throughput(bytes float64) float64 {
	if bytes <= 0 {
		return 0
	}
	return bytes / c.Time(bytes)
}

// CommLibrary models the messaging software (MPICH version): an intra-node
// path and a software tax applied to every inter-node message.
type CommLibrary struct {
	// Name identifies the library (e.g. "mpich-1.2.2").
	Name string
	// IntraNode is the curve for messages between processes on the same
	// node (pipes for MPICH-1.2.1-like, shared memory for 1.2.2-like).
	IntraNode Curve
	// PerMessageOverhead is the software latency added to every
	// inter-node message (matching, buffering).
	PerMessageOverhead float64
	// BandwidthEfficiency in (0, 1] derates the physical link bandwidth
	// for inter-node messages (protocol and copy costs).
	BandwidthEfficiency float64
	// InterEagerLimit is the eager-protocol threshold for inter-node
	// messages: larger messages use the rendezvous protocol (the sender
	// blocks until the receiver posts). Zero means always eager.
	InterEagerLimit float64
	// CoResidentDelay is the extra scheduling latency per message between
	// processes timesharing one CPU: with a busy-waiting library, the
	// receiver holds the CPU while the sender needs it, so each exchange
	// costs a scheduler intervention. Applied per extra resident process
	// by the placement layer. This is the effect Sasou et al. blamed for
	// poor multiprocessing performance; it is far larger for the
	// pipe-based 1.2.1-like library than the shared-memory 1.2.2-like.
	CoResidentDelay float64
}

// Validate reports whether the library model is usable.
func (l *CommLibrary) Validate() error {
	if l == nil {
		return fmt.Errorf("%w: nil library", ErrBadCurve)
	}
	if err := l.IntraNode.Validate(); err != nil {
		return fmt.Errorf("library %s intra-node: %w", l.Name, err)
	}
	if l.PerMessageOverhead < 0 || l.CoResidentDelay < 0 || l.InterEagerLimit < 0 {
		return fmt.Errorf("%w: library %s negative overhead", ErrBadCurve, l.Name)
	}
	if l.BandwidthEfficiency <= 0 || l.BandwidthEfficiency > 1 {
		return fmt.Errorf("%w: library %s efficiency %v", ErrBadCurve, l.Name, l.BandwidthEfficiency)
	}
	return nil
}

// Network models the physical interconnect between nodes.
type Network struct {
	// Name identifies the hardware (e.g. "100base-TX").
	Name string
	// Link is the node-to-node transfer curve at the hardware level.
	Link Curve
}

// Validate reports whether the network model is usable.
func (n *Network) Validate() error {
	if n == nil {
		return fmt.Errorf("%w: nil network", ErrBadCurve)
	}
	if err := n.Link.Validate(); err != nil {
		return fmt.Errorf("network %s: %w", n.Name, err)
	}
	return nil
}

// Fabric combines a physical network with a messaging library into the
// complete communication model the simulator consults.
type Fabric struct {
	Library *CommLibrary
	Network *Network
}

// NewFabric validates and assembles a fabric.
func NewFabric(lib *CommLibrary, net *Network) (*Fabric, error) {
	if err := lib.Validate(); err != nil {
		return nil, err
	}
	if err := net.Validate(); err != nil {
		return nil, err
	}
	return &Fabric{Library: lib, Network: net}, nil
}

// TransferTime returns the one-way time to move `bytes` between two ranks.
// sameNode selects the library's intra-node path; otherwise the physical
// link derated by the library is used.
func (f *Fabric) TransferTime(bytes float64, sameNode bool) float64 {
	if sameNode {
		return f.Library.IntraNode.Time(bytes)
	}
	c := f.Network.Link
	c.Latency += f.Library.PerMessageOverhead
	c.Bandwidth *= f.Library.BandwidthEfficiency
	return c.Time(bytes)
}

// NeedsRendezvous reports whether a message of the given size on the given
// path exceeds the library's eager threshold.
func (f *Fabric) NeedsRendezvous(bytes float64, sameNode bool) bool {
	limit := f.Library.InterEagerLimit
	if sameNode {
		limit = f.Library.IntraNode.EagerLimit
	}
	return limit > 0 && bytes > limit
}

// Throughput returns achieved bytes/second for a one-way transfer.
func (f *Fabric) Throughput(bytes float64, sameNode bool) float64 {
	if bytes <= 0 {
		return 0
	}
	return bytes / f.TransferTime(bytes, sameNode)
}

const (
	kib = 1024.0
	mib = 1024.0 * 1024.0
)

// NewMPICH121 returns an MPICH-1.2.1-like library: intra-node messages go
// through slow pipes obstructed by process scheduling (the behaviour Sasou
// et al. reported and paper Figure 2(a) shows).
func NewMPICH121() *CommLibrary {
	return &CommLibrary{
		Name: "mpich-1.2.1",
		IntraNode: Curve{
			Latency:           150e-6,
			Bandwidth:         16 * mib,
			HalfSize:          24 * kib,
			EagerLimit:        16 * kib,
			RendezvousLatency: 2e-3,
		},
		PerMessageOverhead:  35e-6,
		BandwidthEfficiency: 0.88,
		InterEagerLimit:     64 * kib,
		CoResidentDelay:     30e-3,
	}
}

// NewMPICH122 returns an MPICH-1.2.2-like library with a fast shared-memory
// intra-node path (paper Figure 2(b)).
func NewMPICH122() *CommLibrary {
	return &CommLibrary{
		Name: "mpich-1.2.2",
		IntraNode: Curve{
			Latency:           20e-6,
			Bandwidth:         330 * mib,
			HalfSize:          6 * kib,
			EagerLimit:        128 * kib,
			RendezvousLatency: 30e-6,
		},
		PerMessageOverhead:  25e-6,
		BandwidthEfficiency: 0.92,
		InterEagerLimit:     128 * kib,
		CoResidentDelay:     8e-3,
	}
}

// NewFast100TX returns the 100base-TX network the paper's measurements use
// (~11.7 MB/s effective).
func NewFast100TX() *Network {
	return &Network{
		Name: "100base-TX",
		Link: Curve{
			Latency:   70e-6,
			Bandwidth: 11.7 * mib,
			HalfSize:  2.5 * kib,
		},
	}
}

// NewGigabit1000SX returns the 1000base-SX network of the paper's Table 1
// (present in the testbed, unused in their measurements).
func NewGigabit1000SX() *Network {
	return &Network{
		Name: "1000base-SX",
		Link: Curve{
			Latency:   45e-6,
			Bandwidth: 88 * mib,
			HalfSize:  14 * kib,
		},
	}
}
