package vmpi

import (
	"runtime"
	"runtime/debug"
	"testing"
)

// TestSendRecvSteadyStateAllocs asserts the pooled messaging path: after a
// warm-up, a ping-pong exchange — eager and rendezvous — performs no heap
// allocation. AllocsPerRun cannot span goroutines, so the test reads the
// global malloc counter from rank 0 at points where rank 1 is quiescent
// (blocked in its receive): with strict ping-pong alternation, rank 1 cannot
// be executing user code while rank 0 holds the ball.
func TestSendRecvSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops puts under the race detector")
	}
	const (
		warmup   = 200
		measured = 1000
		// A strictly positive budget absorbs runtime internals (sudog and
		// notify-list growth) that are not under this package's control;
		// the regression being guarded against is one-or-more envelopes
		// per message, i.e. >= 2*measured mallocs.
		budget = 50
	)
	transfer := func(bytes float64, src, dst int) float64 { return 1e-6 }
	w, err := NewWorld(2, transfer)
	if err != nil {
		t.Fatal(err)
	}
	// Odd roundtrips are eager, even ones rendezvous, so both protocol
	// paths are covered by the same measurement.
	w.SetRendezvous(func(bytes float64, src, dst int) bool { return bytes > 10 })

	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	var delta uint64
	w.Run(func(p *Proc) {
		bytesFor := func(i int) float64 {
			if i%2 == 0 {
				return 100 // rendezvous
			}
			return 4 // eager
		}
		if p.Rank() == 0 {
			roundtrip := func(i int) {
				p.Send(1, 7, nil, bytesFor(i))
				p.Recv(1, 7)
			}
			for i := 0; i < warmup; i++ {
				roundtrip(i)
			}
			var before, after runtime.MemStats
			runtime.ReadMemStats(&before)
			for i := 0; i < measured; i++ {
				roundtrip(i)
			}
			runtime.ReadMemStats(&after)
			delta = after.Mallocs - before.Mallocs
		} else {
			for i := 0; i < warmup+measured; i++ {
				p.Recv(0, 7)
				p.Send(0, 7, nil, bytesFor(i))
			}
		}
	})
	if delta > budget {
		t.Fatalf("steady-state send/recv performed %d mallocs over %d roundtrips, want <= %d",
			delta, measured, budget)
	}
}

// TestScalarSendRecvSteadyStateAllocs covers the inline-scalar path used by
// the pivot reductions.
func TestScalarSendRecvSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops puts under the race detector")
	}
	const (
		warmup   = 200
		measured = 1000
		budget   = 50
	)
	transfer := func(bytes float64, src, dst int) float64 { return 1e-6 }
	w, err := NewWorld(2, transfer)
	if err != nil {
		t.Fatal(err)
	}
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	var delta uint64
	w.Run(func(p *Proc) {
		if p.Rank() == 0 {
			roundtrip := func(i int) {
				p.SendScalars(1, 3, float64(i), i, 16)
				x, y, _ := p.RecvScalars(1, 3)
				if x != float64(i+1) || y != i+1 {
					panic("scalar roundtrip mismatch")
				}
			}
			for i := 0; i < warmup; i++ {
				roundtrip(i)
			}
			var before, after runtime.MemStats
			runtime.ReadMemStats(&before)
			for i := 0; i < measured; i++ {
				roundtrip(i)
			}
			runtime.ReadMemStats(&after)
			delta = after.Mallocs - before.Mallocs
		} else {
			for i := 0; i < warmup+measured; i++ {
				x, y, _ := p.RecvScalars(0, 3)
				p.SendScalars(0, 3, x+1, y+1, 16)
			}
		}
	})
	if delta > budget {
		t.Fatalf("steady-state scalar send/recv performed %d mallocs over %d roundtrips, want <= %d",
			delta, measured, budget)
	}
}
