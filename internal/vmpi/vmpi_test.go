package vmpi

import (
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

// constTransfer returns a transfer model with fixed latency and bandwidth.
func constTransfer(latency, bandwidth float64) TransferTime {
	return func(bytes float64, src, dst int) float64 {
		return latency + bytes/bandwidth
	}
}

func TestNewWorldValidation(t *testing.T) {
	if _, err := NewWorld(0, constTransfer(0, 1)); err == nil {
		t.Fatal("size 0 accepted")
	}
	if _, err := NewWorld(2, nil); err == nil {
		t.Fatal("nil transfer accepted")
	}
	w, err := NewWorld(3, constTransfer(0, 1))
	if err != nil || w.Size() != 3 {
		t.Fatalf("world: %v %v", w, err)
	}
}

func TestPingPongClocks(t *testing.T) {
	w, _ := NewWorld(2, constTransfer(1, 100))
	clocks := w.Run(func(p *Proc) {
		switch p.Rank() {
		case 0:
			p.Advance(5)
			dt := p.Send(1, 1, "hello", 100) // transfer = 1 + 1 = 2
			if dt != 2 {
				t.Errorf("send dt = %v", dt)
			}
			// Clock after send: 7.
			msg, _ := p.Recv(1, 2)
			if msg.Data.(string) != "world" {
				t.Errorf("payload = %v", msg.Data)
			}
		case 1:
			msg, wait := p.Recv(0, 1)
			// Rank 1 was at t=0; data available at t=7 → waited 7.
			if wait != 7 {
				t.Errorf("wait = %v", wait)
			}
			if msg.Data.(string) != "hello" {
				t.Errorf("payload = %v", msg.Data)
			}
			p.Send(0, 2, "world", 100)
		}
	})
	// Rank1: recv at 7, send 2 → 9. Rank0: max(7, 9) = 9.
	if clocks[1] != 9 || clocks[0] != 9 {
		t.Fatalf("clocks = %v", clocks)
	}
}

func TestRecvAlreadyAvailableNoWait(t *testing.T) {
	w, _ := NewWorld(2, constTransfer(1, 1e9))
	w.Run(func(p *Proc) {
		switch p.Rank() {
		case 0:
			p.Send(1, 7, nil, 0)
		case 1:
			p.Advance(100) // rank 1 is far ahead; message already there
			_, wait := p.Recv(0, 7)
			if wait != 0 {
				t.Errorf("wait = %v, want 0", wait)
			}
		}
	})
}

func TestAdvanceIgnoresBadInput(t *testing.T) {
	w, _ := NewWorld(1, constTransfer(0, 1))
	w.Run(func(p *Proc) {
		if p.Advance(-1) != 0 || p.Advance(math.NaN()) != 0 {
			t.Error("bad Advance input not ignored")
		}
		p.Advance(3)
		if p.Clock() != 3 {
			t.Errorf("clock = %v", p.Clock())
		}
	})
}

func TestTagMatching(t *testing.T) {
	w, _ := NewWorld(2, constTransfer(0, 1e9))
	w.Run(func(p *Proc) {
		switch p.Rank() {
		case 0:
			p.Send(1, 1, "first", 0)
			p.Send(1, 2, "second", 0)
		case 1:
			// Receive in reverse tag order: matching must pick by tag.
			// (Messages alias per-Proc scratch, so grab the payload
			// before the next Recv.)
			m2, _ := p.Recv(0, 2)
			d2 := m2.Data
			m1, _ := p.Recv(0, 1)
			if d2.(string) != "second" || m1.Data.(string) != "first" {
				t.Errorf("tag matching broken: %v %v", m1.Data, d2)
			}
		}
	})
}

func TestFIFOWithinSameTag(t *testing.T) {
	w, _ := NewWorld(2, constTransfer(0, 1e9))
	w.Run(func(p *Proc) {
		switch p.Rank() {
		case 0:
			for i := 0; i < 5; i++ {
				p.Send(1, 9, i, 0)
			}
		case 1:
			for i := 0; i < 5; i++ {
				m, _ := p.Recv(0, 9)
				if m.Data.(int) != i {
					t.Errorf("out of order: got %v want %d", m.Data, i)
				}
			}
		}
	})
}

func TestTrafficAccounting(t *testing.T) {
	w, _ := NewWorld(2, constTransfer(0, 1e6))
	w.Run(func(p *Proc) {
		switch p.Rank() {
		case 0:
			p.Send(1, 1, nil, 500)
			if p.SentBytes != 500 || p.Sends != 1 {
				t.Errorf("sender accounting: %v %v", p.SentBytes, p.Sends)
			}
		case 1:
			p.Recv(0, 1)
			if p.RecvBytes != 500 || p.Recvs != 1 {
				t.Errorf("receiver accounting: %v %v", p.RecvBytes, p.Recvs)
			}
		}
	})
}

func TestSendSelfPanics(t *testing.T) {
	w, _ := NewWorld(1, constTransfer(0, 1))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	w.Run(func(p *Proc) {
		p.Send(0, 0, nil, 0)
	})
}

func TestSendInvalidRankPanics(t *testing.T) {
	w, _ := NewWorld(2, constTransfer(0, 1))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	w.Run(func(p *Proc) {
		if p.Rank() == 0 {
			p.Send(5, 0, nil, 0)
		}
	})
}

func TestNegativeBytesClamped(t *testing.T) {
	w, _ := NewWorld(2, constTransfer(1, 1))
	w.Run(func(p *Proc) {
		switch p.Rank() {
		case 0:
			dt := p.Send(1, 1, nil, -100)
			if dt != 1 { // latency only
				t.Errorf("negative bytes dt = %v", dt)
			}
		case 1:
			p.Recv(0, 1)
		}
	})
}

func TestManyRanksDeterministicClocks(t *testing.T) {
	// A chain of dependent sends must produce identical clocks run-to-run.
	run := func() []float64 {
		w, _ := NewWorld(8, constTransfer(0.5, 2000))
		return w.Run(func(p *Proc) {
			p.Advance(float64(p.Rank()))
			if p.Rank() > 0 {
				p.Recv(p.Rank()-1, 0)
			}
			if p.Rank() < p.Size()-1 {
				p.Send(p.Rank()+1, 0, nil, 1000)
			}
		})
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic clocks: %v vs %v", a, b)
		}
	}
	// The chain must be monotone along ranks (each waits for predecessor).
	for i := 1; i < len(a)-1; i++ {
		if a[i+1] < a[i] {
			t.Fatalf("chain clock not monotone: %v", a)
		}
	}
}

func TestConcurrentMailboxStress(t *testing.T) {
	// Many senders to one receiver with interleaved tags.
	const senders = 6
	const msgs = 200
	w, _ := NewWorld(senders+1, constTransfer(0, 1e12))
	var got sync.Map
	w.Run(func(p *Proc) {
		if p.Rank() == senders {
			for i := 0; i < senders*msgs; i++ {
				// Round-robin across sources to force queue scans.
				src := i % senders
				m, _ := p.Recv(src, i/senders)
				got.Store([2]int{src, i / senders}, m.Data)
			}
			return
		}
		for i := 0; i < msgs; i++ {
			p.Send(senders, i, i*1000+p.Rank(), 8)
		}
	})
	count := 0
	got.Range(func(k, v any) bool { count++; return true })
	if count != senders*msgs {
		t.Fatalf("received %d messages, want %d", count, senders*msgs)
	}
}

// Failure injection: when one rank panics, waiting siblings must be
// released (poisoned) and Run must re-raise the panic instead of hanging.
func TestWorldPoisonOnRankPanic(t *testing.T) {
	w, _ := NewWorld(3, constTransfer(0, 1e6))
	done := make(chan any, 1)
	go func() {
		defer func() { done <- recover() }()
		w.Run(func(p *Proc) {
			switch p.Rank() {
			case 0:
				panic("rank 0 exploded")
			default:
				// These would block forever without poisoning.
				p.Recv(0, 42)
			}
		})
		done <- nil
	}()
	select {
	case v := <-done:
		if v == nil {
			t.Fatal("Run returned without re-raising the panic")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("world deadlocked after rank panic")
	}
}

// Rendezvous semantics: a large send blocks the sender until the receiver
// posts; an eager send does not.
func TestRendezvousBlocksSender(t *testing.T) {
	const limit = 1024
	mk := func() *World {
		w, _ := NewWorld(2, constTransfer(1, 1024)) // 1s latency + 1s/KiB
		w.SetRendezvous(func(bytes float64, src, dst int) bool { return bytes > limit })
		return w
	}
	// Eager: sender's availability time is its own send completion; a
	// receiver that posts late still sees data available early.
	w := mk()
	clocks := w.Run(func(p *Proc) {
		switch p.Rank() {
		case 0:
			p.Send(1, 1, nil, 512) // eager
		case 1:
			p.Advance(100)
			_, wait := p.Recv(0, 1)
			if wait != 0 {
				t.Errorf("eager recv waited %v", wait)
			}
		}
	})
	if clocks[0] > 10 {
		t.Fatalf("eager sender clock = %v, should be small", clocks[0])
	}
	// Rendezvous: the sender cannot complete before the receiver posts at
	// t=100, so its clock ends past 100.
	w = mk()
	clocks = w.Run(func(p *Proc) {
		switch p.Rank() {
		case 0:
			p.Send(1, 1, nil, 4096) // rendezvous
		case 1:
			p.Advance(100)
			p.Recv(0, 1)
		}
	})
	if clocks[0] < 100 {
		t.Fatalf("rendezvous sender clock = %v, should wait for the receiver", clocks[0])
	}
}

func TestTracerRecordsTimeline(t *testing.T) {
	w, _ := NewWorld(2, constTransfer(1, 100))
	tr := NewTracer()
	w.SetTracer(tr)
	w.Run(func(p *Proc) {
		switch p.Rank() {
		case 0:
			p.Advance(5)
			p.Send(1, 1, nil, 100)
		case 1:
			p.Recv(0, 1)
		}
	})
	events := tr.Events()
	if len(events) != 3 {
		t.Fatalf("events = %v", events)
	}
	// Sorted by rank then start: compute, send (rank 0), recv (rank 1).
	if events[0].Name != "compute" || events[1].Name != "send" || events[2].Name != "recv" {
		t.Fatalf("event order: %v", events)
	}
	if events[1].Start != 5 || events[1].Dur != 2 || events[1].Peer != 1 {
		t.Fatalf("send event: %+v", events[1])
	}
	if events[2].Dur != 7 { // waited from 0 until 7
		t.Fatalf("recv event: %+v", events[2])
	}
	// Chrome trace export is valid JSON with microsecond times.
	var sb strings.Builder
	if err := tr.WriteChromeTrace(&sb); err != nil {
		t.Fatal(err)
	}
	var decoded []map[string]any
	if err := json.Unmarshal([]byte(sb.String()), &decoded); err != nil {
		t.Fatalf("invalid chrome trace: %v", err)
	}
	if len(decoded) != 3 || decoded[1]["ph"] != "X" {
		t.Fatalf("chrome trace: %v", decoded)
	}
	if decoded[1]["ts"].(float64) != 5e6 {
		t.Fatalf("ts = %v", decoded[1]["ts"])
	}
}

func TestNilTracerSafe(t *testing.T) {
	var tr *Tracer
	tr.record(TraceEvent{}) // must not panic
	w, _ := NewWorld(1, constTransfer(0, 1))
	w.SetTracer(nil)
	w.Run(func(p *Proc) { p.Advance(1) })
}
