package vmpi

import (
	"testing"
)

func TestBcastAlgString(t *testing.T) {
	if BcastRing.String() != "ring" || BcastBinomial.String() != "binomial" {
		t.Fatal("BcastAlg strings")
	}
	if BcastAlg(9).String() == "" {
		t.Fatal("unknown alg string empty")
	}
}

func testBcastDelivery(t *testing.T, alg BcastAlg, size, root int) {
	t.Helper()
	w, _ := NewWorld(size, constTransfer(1, 1e6))
	payload := "panel-42"
	w.Run(func(p *Proc) {
		var in any
		if p.Rank() == root {
			in = payload
		}
		out, elapsed := p.Bcast(root, 5, in, 4096, alg)
		if out.(string) != payload {
			t.Errorf("rank %d got %v", p.Rank(), out)
		}
		if size > 1 && elapsed < 0 {
			t.Errorf("rank %d negative elapsed %v", p.Rank(), elapsed)
		}
	})
}

func TestBcastRingDelivery(t *testing.T) {
	for _, size := range []int{1, 2, 3, 5, 8, 13} {
		for root := 0; root < size; root += 2 {
			testBcastDelivery(t, BcastRing, size, root)
		}
	}
}

func TestBcastBinomialDelivery(t *testing.T) {
	for _, size := range []int{1, 2, 3, 4, 5, 8, 9, 16} {
		for root := 0; root < size; root += 3 {
			testBcastDelivery(t, BcastBinomial, size, root)
		}
	}
}

func TestBcastInvalidRootPanics(t *testing.T) {
	w, _ := NewWorld(2, constTransfer(0, 1))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	w.Run(func(p *Proc) {
		p.Bcast(7, 0, nil, 0, BcastRing)
	})
}

func TestBcastRingCriticalPathGrowsWithP(t *testing.T) {
	// Ring broadcast's last receiver waits ~(P-1) transfers — the
	// (P−1)·O(N²) behaviour the paper's model assumes.
	lastClock := func(size int) float64 {
		w, _ := NewWorld(size, constTransfer(0.001, 1e6))
		clocks := w.Run(func(p *Proc) {
			var in any
			if p.Rank() == 0 {
				in = 1
			}
			p.Bcast(0, 0, in, 1e5, BcastRing)
		})
		max := 0.0
		for _, c := range clocks {
			if c > max {
				max = c
			}
		}
		return max
	}
	t4, t8 := lastClock(4), lastClock(8)
	if t8 < 1.8*t4 {
		t.Fatalf("ring critical path: P=4 %v, P=8 %v — want roughly linear growth", t4, t8)
	}
}

func TestBcastBinomialFasterThanRingForLargeP(t *testing.T) {
	maxClock := func(alg BcastAlg) float64 {
		w, _ := NewWorld(16, constTransfer(0.001, 1e6))
		clocks := w.Run(func(p *Proc) {
			var in any
			if p.Rank() == 0 {
				in = 1
			}
			p.Bcast(0, 0, in, 1e5, alg)
		})
		max := 0.0
		for _, c := range clocks {
			if c > max {
				max = c
			}
		}
		return max
	}
	ring, binom := maxClock(BcastRing), maxClock(BcastBinomial)
	if binom >= ring {
		t.Fatalf("binomial (%v) should beat ring (%v) at P=16", binom, ring)
	}
}

func TestBarrierSynchronizesClocks(t *testing.T) {
	w, _ := NewWorld(4, constTransfer(0.01, 1e9))
	clocks := w.Run(func(p *Proc) {
		p.Advance(float64(p.Rank() * 10)) // ranks wildly out of sync
		p.Barrier(100)
	})
	// After a barrier all clocks must be >= the max pre-barrier clock.
	for r, c := range clocks {
		if c < 30 {
			t.Fatalf("rank %d clock %v below slowest rank's 30", r, c)
		}
	}
}

func TestGather(t *testing.T) {
	w, _ := NewWorld(5, constTransfer(0.001, 1e6))
	w.Run(func(p *Proc) {
		out, _ := p.Gather(2, 9, p.Rank()*11, 8)
		if p.Rank() == 2 {
			for r := 0; r < 5; r++ {
				if out[r].(int) != r*11 {
					t.Errorf("gather[%d] = %v", r, out[r])
				}
			}
		} else if out != nil {
			t.Errorf("non-root got %v", out)
		}
	})
}

func TestGatherInvalidRootPanics(t *testing.T) {
	w, _ := NewWorld(2, constTransfer(0, 1))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	w.Run(func(p *Proc) {
		p.Gather(-1, 0, nil, 0)
	})
}

func TestBcastSingleRank(t *testing.T) {
	w, _ := NewWorld(1, constTransfer(0, 1))
	w.Run(func(p *Proc) {
		out, elapsed := p.Bcast(0, 0, "x", 100, BcastRing)
		if out.(string) != "x" || elapsed != 0 {
			t.Errorf("single-rank bcast: %v %v", out, elapsed)
		}
		if p.Barrier(1) != 0 {
			t.Error("single-rank barrier should be free")
		}
	})
}

func TestReduceSum(t *testing.T) {
	sum := func(a, b any) any { return a.(int) + b.(int) }
	for _, size := range []int{1, 2, 3, 5, 8, 13} {
		for root := 0; root < size; root += 2 {
			w, _ := NewWorld(size, constTransfer(0.001, 1e6))
			w.Run(func(p *Proc) {
				got, _ := p.Reduce(root, 3, p.Rank()+1, 8, sum)
				want := size * (size + 1) / 2
				if p.Rank() == root {
					if got.(int) != want {
						t.Errorf("size %d root %d: reduce = %v, want %d", size, root, got, want)
					}
				} else if got != nil {
					t.Errorf("non-root got %v", got)
				}
			})
		}
	}
}

func TestAllreduceMax(t *testing.T) {
	max := func(a, b any) any {
		if a.(float64) > b.(float64) {
			return a
		}
		return b
	}
	w, _ := NewWorld(7, constTransfer(0.001, 1e6))
	w.Run(func(p *Proc) {
		got, elapsed := p.Allreduce(11, float64(p.Rank()*10), 8, max)
		if got.(float64) != 60 {
			t.Errorf("rank %d allreduce = %v, want 60", p.Rank(), got)
		}
		if elapsed < 0 {
			t.Errorf("negative elapsed %v", elapsed)
		}
	})
}

func TestReduceInvalidArgsPanics(t *testing.T) {
	w, _ := NewWorld(2, constTransfer(0, 1))
	for _, tc := range []struct {
		name string
		body func(p *Proc)
	}{
		{"bad root", func(p *Proc) { p.Reduce(9, 0, 1, 0, func(a, b any) any { return a }) }},
		{"nil op", func(p *Proc) { p.Reduce(0, 0, 1, 0, nil) }},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", tc.name)
				}
			}()
			w.Run(tc.body)
		}()
		w, _ = NewWorld(2, constTransfer(0, 1))
	}
}
