package vmpi

import (
	"encoding/json"
	"io"
	"sort"
	"sync"
)

// TraceEvent is one timeline entry of a rank: a compute span, a send, or a
// receive (including its wait). Times are virtual seconds.
type TraceEvent struct {
	Rank  int     `json:"rank"`
	Name  string  `json:"name"`
	Start float64 `json:"start"`
	Dur   float64 `json:"dur"`
	Peer  int     `json:"peer"`
	Tag   int     `json:"tag"`
	Bytes float64 `json:"bytes"`
}

// Tracer collects per-rank timelines of a run. Install with
// World.SetTracer before Run; safe for concurrent ranks. A single Tracer
// may also be shared by concurrent Runs (e.g. a parallel measurement
// campaign): recording stays race-free behind the mutex, though events of
// different runs interleave in the buffer — Events() sorts by (rank,
// start), so same-rank events from different runs will mix.
type Tracer struct {
	mu     sync.Mutex
	events []TraceEvent
}

// NewTracer returns an empty tracer.
func NewTracer() *Tracer { return &Tracer{} }

func (t *Tracer) record(ev TraceEvent) {
	if t == nil {
		return
	}
	t.mu.Lock()
	// Tracing is opt-in: measured runs leave the tracer nil, so this growth
	// never lands on a path the allocation gate times.
	t.events = append(t.events, ev) //het:allow hotpathprop allocfree -- tracing-only buffer; tracer is nil on measured runs
	t.mu.Unlock()
}

// Events returns the collected events sorted by (rank, start).
func (t *Tracer) Events() []TraceEvent {
	t.mu.Lock()
	out := append([]TraceEvent(nil), t.events...)
	t.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Rank != out[j].Rank {
			return out[i].Rank < out[j].Rank
		}
		return out[i].Start < out[j].Start
	})
	return out
}

// chromeEvent is the Chrome trace-viewer "complete event" form.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// WriteChromeTrace writes the timeline in the Chrome trace-event JSON
// format (load via chrome://tracing or Perfetto); virtual seconds are
// mapped to microseconds.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	events := t.Events()
	out := make([]chromeEvent, 0, len(events))
	for _, ev := range events {
		ce := chromeEvent{
			Name: ev.Name,
			Ph:   "X",
			Ts:   ev.Start * 1e6,
			Dur:  ev.Dur * 1e6,
			Pid:  0,
			Tid:  ev.Rank,
		}
		if ev.Name != "compute" {
			ce.Args = map[string]any{"peer": ev.Peer, "tag": ev.Tag, "bytes": ev.Bytes}
		}
		out = append(out, ce)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

// SetTracer installs a tracer recording every Advance/Send/Recv of the next
// Run. Pass nil to disable.
func (w *World) SetTracer(t *Tracer) { w.tracer = t }
