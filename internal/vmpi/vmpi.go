// Package vmpi implements a virtual-time message-passing runtime: the MPI
// substitute on which the HPL reproduction runs.
//
// Each rank executes as a goroutine with its own virtual clock. Sends are
// eager and buffered: the sender pays the transfer time on its clock and the
// message records when its data is available; a receiver blocks (in real
// time) until a matching message exists, then advances its virtual clock to
// max(own clock, availability). This yields a deterministic, deadlock-free
// simulation of blocking MPI semantics without a global event queue, while
// still moving real payload data (used by the numeric HPL mode).
//
// Timing is injected via a TransferTime function, typically backed by
// internal/simnet, so intra-node and inter-node paths and library software
// costs are modelled by the fabric, not here.
package vmpi

import (
	"errors"
	"fmt"
	"math"
	"sync"
)

// TransferTime returns the one-way virtual seconds needed to move `bytes`
// from rank src to rank dst.
type TransferTime func(bytes float64, src, dst int) float64

// RendezvousFn decides whether a message uses the rendezvous protocol
// (sender blocks until the receiver posts the receive, as MPICH does above
// its eager threshold) instead of eager buffered delivery. nil means all
// messages are eager.
type RendezvousFn func(bytes float64, src, dst int) bool

// message kinds for protocol matching.
const (
	kindEager = 1 << iota
	kindRTS
	kindAck
)

// Message is a delivered point-to-point payload. The pointer returned by
// Recv aliases per-Proc scratch and is valid only until the next Recv on
// the same Proc; the Data payload it carries is never recycled and may be
// retained.
type Message struct {
	Src, Tag int
	// Data is the payload; nil in timing-only (phantom) runs.
	Data any
	// Bytes is the modelled payload size used for timing.
	Bytes float64
	// valF and valI carry a scalar pair inline for SendScalars/RecvScalars,
	// sparing the hot reduction paths the allocation of boxing into Data.
	valF float64
	valI int
	// availAt is the sender's virtual time at which the data exists.
	availAt float64
	// dt is the precomputed transfer duration a rendezvous RTS carries so
	// the receiver can stamp the completion time itself.
	dt float64
	// kind distinguishes eager payloads from rendezvous protocol steps.
	kind int
}

// World is one communicator: a fixed set of ranks and a transfer model.
type World struct {
	size       int
	transfer   TransferTime
	rendezvous RendezvousFn
	boxes      []*mailbox
	tracer     *Tracer
}

// ErrBadWorld reports invalid world construction parameters.
var ErrBadWorld = errors.New("vmpi: invalid world")

// NewWorld creates a communicator of `size` ranks with the given transfer
// model.
func NewWorld(size int, transfer TransferTime) (*World, error) {
	if size <= 0 {
		return nil, fmt.Errorf("%w: size %d", ErrBadWorld, size)
	}
	if transfer == nil {
		return nil, fmt.Errorf("%w: nil transfer model", ErrBadWorld)
	}
	w := &World{size: size, transfer: transfer, boxes: make([]*mailbox, size)}
	for i := range w.boxes {
		w.boxes[i] = newMailbox()
	}
	return w, nil
}

// SetRendezvous installs the protocol-selection predicate. Call before Run.
func (w *World) SetRendezvous(fn RendezvousFn) { w.rendezvous = fn }

// Size returns the number of ranks.
func (w *World) Size() int { return w.size }

// Run executes body once per rank concurrently and returns each rank's
// final virtual clock. It blocks until every rank returns. A panic in any
// rank is re-raised on the caller after all other ranks finish or block
// permanently; bodies must therefore not panic in normal operation.
func (w *World) Run(body func(p *Proc)) []float64 {
	clocks := make([]float64, w.size)
	var wg sync.WaitGroup
	panics := make(chan any, w.size)
	for r := 0; r < w.size; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			defer func() {
				if v := recover(); v != nil {
					panics <- v
					// Unblock any rank waiting on us forever.
					for _, b := range w.boxes {
						b.poison()
					}
				}
			}()
			p := &Proc{world: w, rank: rank}
			body(p)
			clocks[rank] = p.clock
		}(r)
	}
	wg.Wait()
	select {
	case v := <-panics:
		panic(v)
	default:
	}
	return clocks
}

// Proc is the per-rank handle passed to the Run body.
type Proc struct {
	world *World
	rank  int
	clock float64

	// last is the scratch the most recent receive was copied into; Recv
	// returns &last so the pooled envelope can be recycled immediately.
	last Message

	// SentBytes and RecvBytes accumulate modelled traffic volume.
	SentBytes, RecvBytes float64
	// Sends and Recvs count point-to-point operations.
	Sends, Recvs int
}

// Rank returns this process's rank in [0, Size).
func (p *Proc) Rank() int { return p.rank }

// Size returns the communicator size.
func (p *Proc) Size() int { return p.world.size }

// Clock returns the current virtual time of this rank.
func (p *Proc) Clock() float64 { return p.clock }

// Advance adds dt virtual seconds of local work to this rank's clock and
// returns dt for accounting convenience. Negative or NaN dt is ignored.
func (p *Proc) Advance(dt float64) float64 {
	if dt <= 0 || math.IsNaN(dt) {
		return 0
	}
	if tr := p.world.tracer; tr != nil {
		tr.record(TraceEvent{Rank: p.rank, Name: "compute", Start: p.clock, Dur: dt, Peer: -1})
	}
	p.clock += dt
	return dt
}

// Send transmits data to dst with the given tag, paying the modelled
// transfer time on the sender's clock (blocking-send semantics: no
// computation/communication overlap, matching the paper's assumption).
//
// Messages above the world's rendezvous threshold additionally block the
// sender until the receiver posts the matching receive (MPICH's rendezvous
// protocol), which couples sender progress to receiver scheduling — the
// effect that makes superfluous processes expensive.
//
// It returns the virtual seconds spent sending.
func (p *Proc) Send(dst, tag int, data any, bytes float64) float64 {
	return p.send(dst, tag, data, 0, 0, bytes)
}

// SendScalars transmits a (float64, int) pair inline in the envelope —
// no payload boxing — for scalar reductions such as pivot selection. The
// receiver must use RecvScalars.
func (p *Proc) SendScalars(dst, tag int, x float64, y int, bytes float64) float64 {
	return p.send(dst, tag, nil, x, y, bytes)
}

// send pays the modelled transfer on the per-message envelope path; it runs
// once per simulated MPI message, so it must not allocate beyond the pooled
// envelope (TestSendRecvSteadyStateAllocs asserts the steady state).
//
//het:hotpath
//het:allocfree
func (p *Proc) send(dst, tag int, data any, valF float64, valI int, bytes float64) float64 {
	if dst < 0 || dst >= p.world.size {
		panicBadRank("send to", dst, p.world.size)
	}
	if dst == p.rank {
		panic("vmpi: send to self is not supported; use local state")
	}
	if bytes < 0 {
		bytes = 0
	}
	w := p.world
	start := p.clock
	if w.rendezvous != nil && w.rendezvous(bytes, p.rank, dst) {
		// Rendezvous, collapsed to two envelopes: the request-to-send
		// carries the payload and the precomputed transfer duration
		// (transfer is a pure function, so sender and receiver agree on
		// it); the receiver stamps the completion time
		// max(sender, receiver) + dt — the same float operations the
		// three-step RTS/Ack/Data exchange performed, so virtual clocks
		// are bit-identical — and its clear-to-send releases the sender
		// at that time. The sender still blocks until the receive is
		// posted, the property that makes superfluous processes
		// expensive.
		dt := w.transfer(bytes, p.rank, dst)
		if dt < 0 || math.IsNaN(dt) {
			dt = 0
		}
		w.boxes[dst].post(Message{Src: p.rank, Tag: tag, Data: data, Bytes: bytes, valF: valF, valI: valI, availAt: p.clock, dt: dt, kind: kindRTS})
		var ack Message
		w.boxes[p.rank].take(&ack, dst, tag, kindAck)
		if ack.availAt > p.clock {
			p.clock = ack.availAt
		}
	} else {
		dt := w.transfer(bytes, p.rank, dst)
		if dt < 0 || math.IsNaN(dt) {
			dt = 0
		}
		p.clock += dt
		w.boxes[dst].post(Message{Src: p.rank, Tag: tag, Data: data, Bytes: bytes, valF: valF, valI: valI, availAt: p.clock, kind: kindEager})
	}
	p.SentBytes += bytes
	p.Sends++
	if tr := w.tracer; tr != nil {
		tr.record(TraceEvent{Rank: p.rank, Name: "send", Start: start, Dur: p.clock - start, Peer: dst, Tag: tag, Bytes: bytes})
	}
	return p.clock - start
}

// Recv blocks until a message with the given source and tag arrives,
// advances the virtual clock to the availability time, and returns the
// message along with the virtual seconds that elapsed on this rank
// (waiting time; zero if the data was already available). The returned
// pointer is valid until the next Recv on this Proc.
func (p *Proc) Recv(src, tag int) (*Message, float64) {
	elapsed := p.recv(src, tag)
	return &p.last, elapsed
}

// RecvScalars receives a message sent with SendScalars, returning the
// inline scalar pair and the elapsed virtual seconds.
func (p *Proc) RecvScalars(src, tag int) (x float64, y int, elapsed float64) {
	elapsed = p.recv(src, tag)
	return p.last.valF, p.last.valI, elapsed
}

// recv performs the protocol, copying the delivered envelope into p.last
// (the envelope itself is recycled inside the mailbox).
//
//het:hotpath
//het:allocfree
func (p *Proc) recv(src, tag int) float64 {
	if src < 0 || src >= p.world.size {
		panicBadRank("recv from", src, p.world.size)
	}
	w := p.world
	start := p.clock
	w.boxes[p.rank].take(&p.last, src, tag, kindEager|kindRTS)
	if p.last.kind == kindRTS {
		// Rendezvous: the RTS carries payload and transfer duration; stamp
		// the completion time and release the sender with it.
		if p.last.availAt > p.clock {
			p.clock = p.last.availAt
		}
		p.clock += p.last.dt
		w.boxes[src].post(Message{Src: p.rank, Tag: tag, availAt: p.clock, kind: kindAck})
	} else if p.last.availAt > p.clock {
		p.clock = p.last.availAt
	}
	p.RecvBytes += p.last.Bytes
	p.Recvs++
	if tr := w.tracer; tr != nil {
		tr.record(TraceEvent{Rank: p.rank, Name: "recv", Start: start, Dur: p.clock - start, Peer: src, Tag: tag, Bytes: p.last.Bytes})
	}
	return p.clock - start
}

// msgPool recycles Message envelopes across mailboxes and Worlds. Worlds are
// short-lived (one per simulated run), so a package-level pool is what makes
// the send/recv path allocation-free in the steady state of a campaign or
// sweep (asserted by TestSendRecvSteadyStateAllocs): each run draws warm
// envelopes left over from the previous one.
var msgPool = sync.Pool{New: func() any { return new(Message) }}

// mailbox is an unbounded buffered queue with (src, tag) matching.
type mailbox struct {
	mu       sync.Mutex
	cond     *sync.Cond
	msgs     []*Message
	waiting  bool
	poisoned bool
}

func newMailbox() *mailbox {
	b := &mailbox{}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// panicBadRank reports an out-of-range peer rank. It lives outside the hot
// send/recv bodies so their zero-allocation envelope paths carry no fmt
// calls; the formatting cost lands only on the panicking (cold) path.
func panicBadRank(op string, rank, size int) {
	panic(fmt.Sprintf("vmpi: %s invalid rank %d (size %d)", op, rank, size))
}

// post enqueues a copy of m in a pooled envelope.
//
//het:hotpath
//het:allocfree
func (b *mailbox) post(m Message) {
	env := msgPool.Get().(*Message)
	*env = m
	b.mu.Lock()
	// The queue's backing array reaches its high-water mark within the first
	// few messages of a run and is reused for the rest of it.
	b.msgs = append(b.msgs, env) //het:allow hotpath allocfree -- unbounded queue; capacity amortizes across the run
	// Only pay the wakeup when the owner is actually parked; on a busy
	// single-CPU host the receiver usually drains without ever waiting.
	wake := b.waiting
	b.mu.Unlock()
	if wake {
		b.cond.Broadcast()
	}
}

// poison wakes all waiters permanently (used when a sibling rank panics so
// Run can terminate instead of deadlocking).
func (b *mailbox) poison() {
	b.mu.Lock()
	b.poisoned = true
	b.mu.Unlock()
	b.cond.Broadcast()
}

// take blocks until a message matching (src, tag, kindMask) exists, copies it
// into dst, and recycles the envelope. The payload reference is cleared from
// the recycled envelope so the pool never keeps payloads alive.
//
//het:hotpath
//het:allocfree
func (b *mailbox) take(dst *Message, src, tag, kindMask int) {
	b.mu.Lock()
	for {
		for i, m := range b.msgs {
			if m.Src == src && m.Tag == tag && m.kind&kindMask != 0 {
				last := len(b.msgs) - 1
				copy(b.msgs[i:], b.msgs[i+1:])
				b.msgs[last] = nil // drop the stale tail reference
				b.msgs = b.msgs[:last]
				b.mu.Unlock()
				*dst = *m
				*m = Message{}
				msgPool.Put(m)
				return
			}
		}
		if b.poisoned {
			b.mu.Unlock()
			panic("vmpi: world poisoned by sibling rank failure")
		}
		b.waiting = true
		b.cond.Wait()
		b.waiting = false
	}
}
