// Package vmpi implements a virtual-time message-passing runtime: the MPI
// substitute on which the HPL reproduction runs.
//
// Each rank executes as a goroutine with its own virtual clock. Sends are
// eager and buffered: the sender pays the transfer time on its clock and the
// message records when its data is available; a receiver blocks (in real
// time) until a matching message exists, then advances its virtual clock to
// max(own clock, availability). This yields a deterministic, deadlock-free
// simulation of blocking MPI semantics without a global event queue, while
// still moving real payload data (used by the numeric HPL mode).
//
// Timing is injected via a TransferTime function, typically backed by
// internal/simnet, so intra-node and inter-node paths and library software
// costs are modelled by the fabric, not here.
package vmpi

import (
	"errors"
	"fmt"
	"math"
	"sync"
)

// TransferTime returns the one-way virtual seconds needed to move `bytes`
// from rank src to rank dst.
type TransferTime func(bytes float64, src, dst int) float64

// RendezvousFn decides whether a message uses the rendezvous protocol
// (sender blocks until the receiver posts the receive, as MPICH does above
// its eager threshold) instead of eager buffered delivery. nil means all
// messages are eager.
type RendezvousFn func(bytes float64, src, dst int) bool

// message kinds for protocol matching.
const (
	kindEager = 1 << iota
	kindRTS
	kindAck
	kindData
)

// Message is a delivered point-to-point payload.
type Message struct {
	Src, Tag int
	// Data is the payload; nil in timing-only (phantom) runs.
	Data any
	// Bytes is the modelled payload size used for timing.
	Bytes float64
	// availAt is the sender's virtual time at which the data exists.
	availAt float64
	// kind distinguishes eager payloads from rendezvous protocol steps.
	kind int
}

// World is one communicator: a fixed set of ranks and a transfer model.
type World struct {
	size       int
	transfer   TransferTime
	rendezvous RendezvousFn
	boxes      []*mailbox
	tracer     *Tracer
}

// ErrBadWorld reports invalid world construction parameters.
var ErrBadWorld = errors.New("vmpi: invalid world")

// NewWorld creates a communicator of `size` ranks with the given transfer
// model.
func NewWorld(size int, transfer TransferTime) (*World, error) {
	if size <= 0 {
		return nil, fmt.Errorf("%w: size %d", ErrBadWorld, size)
	}
	if transfer == nil {
		return nil, fmt.Errorf("%w: nil transfer model", ErrBadWorld)
	}
	w := &World{size: size, transfer: transfer, boxes: make([]*mailbox, size)}
	for i := range w.boxes {
		w.boxes[i] = newMailbox()
	}
	return w, nil
}

// SetRendezvous installs the protocol-selection predicate. Call before Run.
func (w *World) SetRendezvous(fn RendezvousFn) { w.rendezvous = fn }

// Size returns the number of ranks.
func (w *World) Size() int { return w.size }

// Run executes body once per rank concurrently and returns each rank's
// final virtual clock. It blocks until every rank returns. A panic in any
// rank is re-raised on the caller after all other ranks finish or block
// permanently; bodies must therefore not panic in normal operation.
func (w *World) Run(body func(p *Proc)) []float64 {
	clocks := make([]float64, w.size)
	var wg sync.WaitGroup
	panics := make(chan any, w.size)
	for r := 0; r < w.size; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			defer func() {
				if v := recover(); v != nil {
					panics <- v
					// Unblock any rank waiting on us forever.
					for _, b := range w.boxes {
						b.poison()
					}
				}
			}()
			p := &Proc{world: w, rank: rank}
			body(p)
			clocks[rank] = p.clock
		}(r)
	}
	wg.Wait()
	select {
	case v := <-panics:
		panic(v)
	default:
	}
	return clocks
}

// Proc is the per-rank handle passed to the Run body.
type Proc struct {
	world *World
	rank  int
	clock float64

	// SentBytes and RecvBytes accumulate modelled traffic volume.
	SentBytes, RecvBytes float64
	// Sends and Recvs count point-to-point operations.
	Sends, Recvs int
}

// Rank returns this process's rank in [0, Size).
func (p *Proc) Rank() int { return p.rank }

// Size returns the communicator size.
func (p *Proc) Size() int { return p.world.size }

// Clock returns the current virtual time of this rank.
func (p *Proc) Clock() float64 { return p.clock }

// Advance adds dt virtual seconds of local work to this rank's clock and
// returns dt for accounting convenience. Negative or NaN dt is ignored.
func (p *Proc) Advance(dt float64) float64 {
	if dt <= 0 || math.IsNaN(dt) {
		return 0
	}
	if tr := p.world.tracer; tr != nil {
		tr.record(TraceEvent{Rank: p.rank, Name: "compute", Start: p.clock, Dur: dt, Peer: -1})
	}
	p.clock += dt
	return dt
}

// Send transmits data to dst with the given tag, paying the modelled
// transfer time on the sender's clock (blocking-send semantics: no
// computation/communication overlap, matching the paper's assumption).
//
// Messages above the world's rendezvous threshold additionally block the
// sender until the receiver posts the matching receive (MPICH's rendezvous
// protocol), which couples sender progress to receiver scheduling — the
// effect that makes superfluous processes expensive.
//
// It returns the virtual seconds spent sending.
func (p *Proc) Send(dst, tag int, data any, bytes float64) float64 {
	if dst < 0 || dst >= p.world.size {
		panic(fmt.Sprintf("vmpi: send to invalid rank %d (size %d)", dst, p.world.size))
	}
	if dst == p.rank {
		panic("vmpi: send to self is not supported; use local state")
	}
	if bytes < 0 {
		bytes = 0
	}
	start := p.clock
	if p.world.rendezvous != nil && p.world.rendezvous(bytes, p.rank, dst) {
		// Request-to-send, wait for the receiver's clear-to-send, then
		// move the data.
		p.world.boxes[dst].put(&Message{Src: p.rank, Tag: tag, availAt: p.clock, kind: kindRTS})
		ack := p.world.boxes[p.rank].take(dst, tag, kindAck)
		if ack.availAt > p.clock {
			p.clock = ack.availAt
		}
		dt := p.world.transfer(bytes, p.rank, dst)
		if dt < 0 || math.IsNaN(dt) {
			dt = 0
		}
		p.clock += dt
		p.world.boxes[dst].put(&Message{Src: p.rank, Tag: tag, Data: data, Bytes: bytes, availAt: p.clock, kind: kindData})
	} else {
		dt := p.world.transfer(bytes, p.rank, dst)
		if dt < 0 || math.IsNaN(dt) {
			dt = 0
		}
		p.clock += dt
		p.world.boxes[dst].put(&Message{Src: p.rank, Tag: tag, Data: data, Bytes: bytes, availAt: p.clock, kind: kindEager})
	}
	p.SentBytes += bytes
	p.Sends++
	if tr := p.world.tracer; tr != nil {
		tr.record(TraceEvent{Rank: p.rank, Name: "send", Start: start, Dur: p.clock - start, Peer: dst, Tag: tag, Bytes: bytes})
	}
	return p.clock - start
}

// Recv blocks until a message with the given source and tag arrives,
// advances the virtual clock to the availability time, and returns the
// message along with the virtual seconds that elapsed on this rank
// (waiting time; zero if the data was already available).
func (p *Proc) Recv(src, tag int) (*Message, float64) {
	if src < 0 || src >= p.world.size {
		panic(fmt.Sprintf("vmpi: recv from invalid rank %d (size %d)", src, p.world.size))
	}
	start := p.clock
	msg := p.world.boxes[p.rank].take(src, tag, kindEager|kindRTS)
	if msg.kind == kindRTS {
		// Rendezvous: grant the clear-to-send stamped with our readiness,
		// then wait for the data.
		if msg.availAt > p.clock {
			p.clock = msg.availAt
		}
		p.world.boxes[src].put(&Message{Src: p.rank, Tag: tag, availAt: p.clock, kind: kindAck})
		msg = p.world.boxes[p.rank].take(src, tag, kindData)
	}
	if msg.availAt > p.clock {
		p.clock = msg.availAt
	}
	p.RecvBytes += msg.Bytes
	p.Recvs++
	if tr := p.world.tracer; tr != nil {
		tr.record(TraceEvent{Rank: p.rank, Name: "recv", Start: start, Dur: p.clock - start, Peer: src, Tag: tag, Bytes: msg.Bytes})
	}
	return msg, p.clock - start
}

// mailbox is an unbounded buffered queue with (src, tag) matching.
type mailbox struct {
	mu       sync.Mutex
	cond     *sync.Cond
	msgs     []*Message
	poisoned bool
}

func newMailbox() *mailbox {
	b := &mailbox{}
	b.cond = sync.NewCond(&b.mu)
	return b
}

func (b *mailbox) put(m *Message) {
	b.mu.Lock()
	b.msgs = append(b.msgs, m)
	b.mu.Unlock()
	b.cond.Broadcast()
}

// poison wakes all waiters permanently (used when a sibling rank panics so
// Run can terminate instead of deadlocking).
func (b *mailbox) poison() {
	b.mu.Lock()
	b.poisoned = true
	b.mu.Unlock()
	b.cond.Broadcast()
}

func (b *mailbox) take(src, tag, kindMask int) *Message {
	b.mu.Lock()
	defer b.mu.Unlock()
	for {
		for i, m := range b.msgs {
			if m.Src == src && m.Tag == tag && m.kind&kindMask != 0 {
				b.msgs = append(b.msgs[:i], b.msgs[i+1:]...)
				return m
			}
		}
		if b.poisoned {
			panic("vmpi: world poisoned by sibling rank failure")
		}
		b.cond.Wait()
	}
}
