//go:build race

package vmpi

// raceEnabled reports whether the race detector is active; sync.Pool
// deliberately drops puts under -race, so alloc assertions are skipped.
const raceEnabled = true
