package vmpi

import "fmt"

// BcastAlg selects the broadcast algorithm.
type BcastAlg int

const (
	// BcastRing forwards the payload around a ring starting at the root,
	// HPL's default ("increasing ring"): each rank receives once and
	// forwards once; the last rank waits ~ (P-1) transfer times. This is
	// the (P−1)·O(N²) behaviour the paper's model assumes.
	BcastRing BcastAlg = iota
	// BcastBinomial uses a binomial tree: log2(P) critical path. Kept as
	// an ablation of the paper's communication-order assumption.
	BcastBinomial
)

// String implements fmt.Stringer.
func (a BcastAlg) String() string {
	switch a {
	case BcastRing:
		return "ring"
	case BcastBinomial:
		return "binomial"
	default:
		return fmt.Sprintf("BcastAlg(%d)", int(a))
	}
}

// Bcast broadcasts data of the given modelled size from root to all ranks.
// Every rank must call it with the same root, tag, and algorithm. On the
// root, data is the payload; elsewhere the returned message's Data is the
// received payload. The returned elapsed is the virtual time this rank spent
// in the broadcast (send cost on forwarding ranks, wait+receive elsewhere).
func (p *Proc) Bcast(root, tag int, data any, bytes float64, alg BcastAlg) (any, float64) {
	size := p.world.size
	if root < 0 || root >= size {
		panic(fmt.Sprintf("vmpi: bcast with invalid root %d", root))
	}
	if size == 1 {
		return data, 0
	}
	switch alg {
	case BcastRing:
		return p.bcastRing(root, tag, data, bytes)
	case BcastBinomial:
		return p.bcastBinomial(root, tag, data, bytes)
	default:
		panic(fmt.Sprintf("vmpi: unknown broadcast algorithm %d", alg))
	}
}

func (p *Proc) bcastRing(root, tag int, data any, bytes float64) (any, float64) {
	size := p.world.size
	vrank := (p.rank - root + size) % size
	next := (p.rank + 1) % size
	var elapsed float64
	if vrank == 0 {
		elapsed += p.Send(next, tag, data, bytes)
		return data, elapsed
	}
	msg, wait := p.Recv((p.rank-1+size)%size, tag)
	elapsed += wait
	if vrank < size-1 {
		elapsed += p.Send(next, tag, msg.Data, bytes)
	}
	return msg.Data, elapsed
}

func (p *Proc) bcastBinomial(root, tag int, data any, bytes float64) (any, float64) {
	size := p.world.size
	vrank := (p.rank - root + size) % size
	toAbs := func(v int) int { return (v + root) % size }
	var elapsed float64
	payload := data
	// Receive from parent (non-root ranks): the lowest set bit of vrank
	// identifies the round in which this rank is reached.
	mask := 1
	if vrank != 0 {
		for vrank&mask == 0 {
			mask <<= 1
		}
		parent := vrank &^ mask
		msg, wait := p.Recv(toAbs(parent), tag)
		elapsed += wait
		payload = msg.Data
	} else {
		for mask < size {
			mask <<= 1
		}
	}
	// Send to children with decreasing masks (all bits below the bit on
	// which this rank received are zero, so vrank+mask is always a valid
	// child when it is in range).
	for mask >>= 1; mask > 0; mask >>= 1 {
		if vrank+mask < size {
			elapsed += p.Send(toAbs(vrank+mask), tag, payload, bytes)
		}
	}
	return payload, elapsed
}

// Barrier synchronizes all ranks: a gather to rank 0 followed by a
// zero-byte broadcast. All ranks must call it with the same tag. It returns
// the virtual time spent waiting.
func (p *Proc) Barrier(tag int) float64 {
	size := p.world.size
	if size == 1 {
		return 0
	}
	var elapsed float64
	if p.rank == 0 {
		// Gather: wait for everyone.
		for r := 1; r < size; r++ {
			_, w := p.Recv(r, tag)
			elapsed += w
		}
	} else {
		elapsed += p.Send(0, tag, nil, 0)
	}
	_, e := p.Bcast(0, tag+1, nil, 0, BcastBinomial)
	return elapsed + e
}

// Reduce combines each rank's contribution at the root with a binomial-tree
// reduction: op(a, b) must be associative and commutative. Non-root ranks
// receive the zero value. bytes models each partial result's size. It
// returns the reduced value (root only) and the rank's elapsed virtual time.
func (p *Proc) Reduce(root, tag int, contribution any, bytes float64, op func(a, b any) any) (any, float64) {
	size := p.world.size
	if root < 0 || root >= size {
		panic(fmt.Sprintf("vmpi: reduce with invalid root %d", root))
	}
	if op == nil {
		panic("vmpi: reduce with nil op")
	}
	if size == 1 {
		return contribution, 0
	}
	vrank := (p.rank - root + size) % size
	toAbs := func(v int) int { return (v + root) % size }
	acc := contribution
	var elapsed float64
	// Mirror image of the binomial broadcast: receive from children with
	// increasing masks, then send the accumulated value to the parent.
	mask := 1
	for mask < size {
		if vrank&mask != 0 {
			elapsed += p.Send(toAbs(vrank&^mask), tag, acc, bytes)
			return nil, elapsed
		}
		if peer := vrank | mask; peer < size {
			msg, wait := p.Recv(toAbs(peer), tag)
			elapsed += wait
			acc = op(acc, msg.Data)
		}
		mask <<= 1
	}
	return acc, elapsed
}

// Allreduce performs a Reduce to rank 0 followed by a broadcast of the
// result, so every rank returns the combined value.
func (p *Proc) Allreduce(tag int, contribution any, bytes float64, op func(a, b any) any) (any, float64) {
	reduced, e1 := p.Reduce(0, tag, contribution, bytes, op)
	out, e2 := p.Bcast(0, tag+1, reduced, bytes, BcastBinomial)
	return out, e1 + e2
}

// Gather collects each rank's contribution at the root. Non-root ranks pass
// their contribution and receive nil; the root receives a slice indexed by
// rank (its own entry set to its contribution). bytes models each
// contribution's size.
func (p *Proc) Gather(root, tag int, contribution any, bytes float64) ([]any, float64) {
	size := p.world.size
	if root < 0 || root >= size {
		panic(fmt.Sprintf("vmpi: gather with invalid root %d", root))
	}
	if p.rank != root {
		return nil, p.Send(root, tag, contribution, bytes)
	}
	out := make([]any, size)
	out[root] = contribution
	var elapsed float64
	for r := 0; r < size; r++ {
		if r == root {
			continue
		}
		msg, w := p.Recv(r, tag)
		elapsed += w
		out[r] = msg.Data
	}
	return out, elapsed
}
