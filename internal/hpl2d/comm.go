package hpl2d

import "hetmodel/internal/vmpi"

// comm provides group collectives over explicit member lists on the flat
// vmpi world — the role MPI sub-communicators play in ScaLAPACK. Members
// must be listed in the same order on every participant.
type comm struct {
	p *vmpi.Proc
}

// indexOf returns the caller's position in members, or -1.
func (c comm) indexOf(members []int) int {
	for i, m := range members {
		if m == c.p.Rank() {
			return i
		}
	}
	return -1
}

// bcastRing forwards data from members[rootIdx] around the member ring.
// Every member must call it. Returns the payload and elapsed virtual time.
func (c comm) bcastRing(members []int, rootIdx, tag int, data any, bytes float64) (any, float64) {
	n := len(members)
	if n <= 1 {
		return data, 0
	}
	me := c.indexOf(members)
	v := (me - rootIdx + n) % n
	next := members[(me+1)%n]
	prev := members[(me-1+n)%n]
	var elapsed float64
	if v == 0 {
		elapsed += c.p.Send(next, tag, data, bytes)
		return data, elapsed
	}
	msg, wait := c.p.Recv(prev, tag)
	elapsed += wait
	if v < n-1 {
		elapsed += c.p.Send(next, tag, msg.Data, bytes)
	}
	return msg.Data, elapsed
}

// bcastBinomial broadcasts from members[rootIdx] over a binomial tree.
func (c comm) bcastBinomial(members []int, rootIdx, tag int, data any, bytes float64) (any, float64) {
	n := len(members)
	if n <= 1 {
		return data, 0
	}
	me := c.indexOf(members)
	v := (me - rootIdx + n) % n
	toAbs := func(idx int) int { return members[(idx+rootIdx)%n] }
	payload := data
	var elapsed float64
	mask := 1
	if v != 0 {
		for v&mask == 0 {
			mask <<= 1
		}
		msg, wait := c.p.Recv(toAbs(v&^mask), tag)
		elapsed += wait
		payload = msg.Data
	} else {
		for mask < n {
			mask <<= 1
		}
	}
	for mask >>= 1; mask > 0; mask >>= 1 {
		if v+mask < n {
			elapsed += c.p.Send(toAbs(v+mask), tag, payload, bytes)
		}
	}
	return payload, elapsed
}

// allreduce reduces with op over all members (rooted at members[0]) and
// broadcasts the result back; every member returns the combined value.
func (c comm) allreduce(members []int, tag int, contribution any, bytes float64, op func(a, b any) any) (any, float64) {
	n := len(members)
	if n <= 1 {
		return contribution, 0
	}
	me := c.indexOf(members)
	acc := contribution
	var elapsed float64
	// Binomial reduce toward index 0.
	mask := 1
	for mask < n {
		if me&mask != 0 {
			elapsed += c.p.Send(members[me&^mask], tag, acc, bytes)
			break
		}
		if peer := me | mask; peer < n {
			msg, wait := c.p.Recv(members[peer], tag)
			elapsed += wait
			acc = op(acc, msg.Data)
		}
		mask <<= 1
	}
	out, e := c.bcastBinomial(members, 0, tag+1, acc, bytes)
	return out, elapsed + e
}

// allreduceMaxPivot is the scalar-specialized counterpart of allreduce for
// pivot selection: the candidate travels inline in the message envelope
// (SendScalars/RecvScalars), so the per-column reduction allocates nothing.
// The combine order matches allreduce(..., maxCand) exactly.
func (c comm) allreduceMaxPivot(members []int, tag int, cand pivotCand, bytes float64) (pivotCand, float64) {
	n := len(members)
	if n <= 1 {
		return cand, 0
	}
	me := c.indexOf(members)
	acc := cand
	var elapsed float64
	// Binomial reduce toward index 0.
	mask := 1
	for mask < n {
		if me&mask != 0 {
			elapsed += c.p.SendScalars(members[me&^mask], tag, acc.Abs, acc.Row, bytes)
			break
		}
		if peer := me | mask; peer < n {
			f, r, wait := c.p.RecvScalars(members[peer], tag)
			elapsed += wait
			if f > acc.Abs || (f == acc.Abs && r < acc.Row) {
				acc = pivotCand{Abs: f, Row: r}
			}
		}
		mask <<= 1
	}
	out, e := c.bcastBinomialPivot(members, 0, tag+1, acc, bytes)
	return out, elapsed + e
}

// bcastBinomialPivot broadcasts a pivotCand from members[rootIdx] over a
// binomial tree, carrying it inline in the envelope.
func (c comm) bcastBinomialPivot(members []int, rootIdx, tag int, cand pivotCand, bytes float64) (pivotCand, float64) {
	n := len(members)
	if n <= 1 {
		return cand, 0
	}
	me := c.indexOf(members)
	v := (me - rootIdx + n) % n
	toAbs := func(idx int) int { return members[(idx+rootIdx)%n] }
	var elapsed float64
	mask := 1
	if v != 0 {
		for v&mask == 0 {
			mask <<= 1
		}
		f, r, wait := c.p.RecvScalars(toAbs(v&^mask), tag)
		elapsed += wait
		cand = pivotCand{Abs: f, Row: r}
	} else {
		for mask < n {
			mask <<= 1
		}
	}
	for mask >>= 1; mask > 0; mask >>= 1 {
		if v+mask < n {
			elapsed += c.p.SendScalars(toAbs(v+mask), tag, cand.Abs, cand.Row, bytes)
		}
	}
	return cand, elapsed
}

// sendrecvSwap exchanges payloads with a peer in deadlock-safe order (the
// lower world rank sends first). Returns the peer's payload.
func (c comm) sendrecvSwap(peer, tag int, data any, bytes float64) (any, float64) {
	var elapsed float64
	if c.p.Rank() < peer {
		elapsed += c.p.Send(peer, tag, data, bytes)
		msg, wait := c.p.Recv(peer, tag)
		return msg.Data, elapsed + wait
	}
	msg, wait := c.p.Recv(peer, tag)
	elapsed += wait
	elapsed += c.p.Send(peer, tag, data, bytes)
	return msg.Data, elapsed
}
