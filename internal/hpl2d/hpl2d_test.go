package hpl2d

import (
	"errors"
	"math"
	"testing"

	"hetmodel/internal/cluster"
	"hetmodel/internal/hpl"
	"hetmodel/internal/simnet"
)

func paperCluster(t *testing.T) *cluster.Cluster {
	t.Helper()
	cl, err := cluster.NewPaper(simnet.NewMPICH122())
	if err != nil {
		t.Fatal(err)
	}
	return cl
}

func cfg(p1, m1, p2, m2 int) cluster.Configuration {
	return cluster.Configuration{Use: []cluster.ClassUse{{PEs: p1, Procs: m1}, {PEs: p2, Procs: m2}}}
}

func TestGridArithmetic(t *testing.T) {
	g := NewGrid(1000, 64, 2, 3)
	if g.Panels() != 16 {
		t.Fatalf("panels = %d", g.Panels())
	}
	// Block (0,0) at (0,0); block row 1 owned by grid row 1; block col 4
	// owned by grid col 1.
	if g.RowOwner(64) != 1 || g.ColOwner(4*64) != 1 {
		t.Fatalf("owners wrong: %d %d", g.RowOwner(64), g.ColOwner(4*64))
	}
	// Row 128 (block 2) lives on grid row 0, local block 1 → local row 64.
	if g.LocalRowIndex(128) != 64 {
		t.Fatalf("LocalRowIndex(128) = %d", g.LocalRowIndex(128))
	}
	// Totals across the grid must cover the matrix.
	rows := 0
	for r := 0; r < g.Pr(); r++ {
		rows += g.LocalRows(r)
	}
	cols := 0
	for c := 0; c < g.Pc(); c++ {
		cols += g.LocalCols(c)
	}
	if rows != 1000 || cols != 1000 {
		t.Fatalf("coverage: rows %d cols %d", rows, cols)
	}
	// RowsBelow is consistent with a manual count.
	manual := 0
	for b := 0; b < g.Panels(); b++ {
		if b%2 != 1 {
			continue
		}
		lo, hi := b*64, (b+1)*64
		if hi > 1000 {
			hi = 1000
		}
		if lo < 200 {
			lo = 200
		}
		if lo < hi {
			manual += hi - lo
		}
	}
	if got := g.RowsBelow(1, 200); got != manual {
		t.Fatalf("RowsBelow = %d, want %d", got, manual)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := NewGrid(100, 64, 4, 1).Validate(); err == nil {
		t.Fatal("undersized grid accepted")
	}
}

func TestRunValidatesGrid(t *testing.T) {
	cl := paperCluster(t)
	if _, err := Run(cl, cfg(0, 0, 6, 1), Params{Params: hpl.Params{N: 512}, Pr: 2, Pc: 2}); !errors.Is(err, hpl.ErrBadParams) {
		t.Fatal("grid/P mismatch accepted")
	}
	if _, err := Run(cl, cfg(0, 0, 4, 1), Params{Params: hpl.Params{N: 0}, Pr: 2, Pc: 2}); !errors.Is(err, hpl.ErrBadParams) {
		t.Fatal("N=0 accepted")
	}
}

// The central correctness check: a 2D-grid factorization of the same
// deterministic matrix solves the system correctly on several grid shapes.
func TestNumericResidualAcrossGrids(t *testing.T) {
	cl := paperCluster(t)
	cases := []struct {
		config cluster.Configuration
		pr, pc int
	}{
		{cfg(0, 0, 4, 1), 2, 2},
		{cfg(0, 0, 6, 1), 2, 3},
		{cfg(0, 0, 6, 1), 3, 2},
		{cfg(1, 1, 3, 1), 4, 1},
		{cfg(1, 2, 6, 1), 2, 4},
	}
	for _, tc := range cases {
		res, err := Run(cl, tc.config, Params{
			Params: hpl.Params{N: 128, NB: 16, Numeric: true, Seed: 9},
			Pr:     tc.pr, Pc: tc.pc,
		})
		if err != nil {
			t.Fatalf("%dx%d: %v", tc.pr, tc.pc, err)
		}
		if res.Residual > 16 {
			t.Fatalf("%dx%d residual = %v", tc.pr, tc.pc, res.Residual)
		}
	}
}

// 2D and 1D factorizations of the same matrix agree on the solution.
func TestMatches1DSolution(t *testing.T) {
	cl := paperCluster(t)
	oneD, err := hpl.Run(cl, cfg(0, 0, 4, 1), hpl.Params{N: 120, NB: 16, Numeric: true, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	twoD, err := Run(cl, cfg(0, 0, 4, 1), Params{
		Params: hpl.Params{N: 120, NB: 16, Numeric: true, Seed: 3},
		Pr:     2, Pc: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Different pivot search order can pick different (tied) pivots, so
	// compare solutions, not factors, with a numerical tolerance.
	for i := range oneD.Solution {
		if math.Abs(oneD.Solution[i]-twoD.Solution[i]) > 1e-6 {
			t.Fatalf("x[%d]: 1D %v vs 2D %v", i, oneD.Solution[i], twoD.Solution[i])
		}
	}
}

// On a 2D grid the pivot phases are real communication: Mxswp and Laswp
// are nonzero (they are identically zero or local-only on 1×P).
func TestPivotCommunicationIsReal(t *testing.T) {
	cl := paperCluster(t)
	res, err := Run(cl, cfg(0, 0, 8, 1), Params{
		Params: hpl.Params{N: 1024}, Pr: 4, Pc: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	var mxswp, laswp float64
	for _, rt := range res.PerRank {
		mxswp += rt.Mxswp
		laswp += rt.Laswp
	}
	if mxswp <= 0 {
		t.Fatal("2D grid should have real mxswp communication")
	}
	if laswp <= 0 {
		t.Fatal("2D grid should have real laswp communication")
	}
	// And compare with the 1×8 grid: its mxswp is zero by construction.
	oneD, err := hpl.Run(cl, cfg(0, 0, 8, 1), hpl.Params{N: 1024})
	if err != nil {
		t.Fatal(err)
	}
	var mxswp1 float64
	for _, rt := range oneD.PerRank {
		mxswp1 += rt.Mxswp
	}
	if mxswp1 >= mxswp {
		t.Fatalf("1D mxswp (%v) should be far below 2D (%v)", mxswp1, mxswp)
	}
}

func TestPhantomDeterministic(t *testing.T) {
	cl := paperCluster(t)
	p := Params{Params: hpl.Params{N: 1024}, Pr: 2, Pc: 4}
	a, err := Run(cl, cfg(0, 0, 8, 1), p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cl, cfg(0, 0, 8, 1), p)
	if err != nil {
		t.Fatal(err)
	}
	if a.WallTime != b.WallTime {
		t.Fatalf("nondeterministic: %v vs %v", a.WallTime, b.WallTime)
	}
}

// The paper's assumption check: on this small cluster the 1×P grid is a
// reasonable default — the 2D grid pays pivot communication on every panel
// column. (On huge clusters the tradeoff reverses; here we just verify both
// run and the difference is the pivot/broadcast structure, not a blowup.)
func TestGridShapeTradeoff(t *testing.T) {
	cl := paperCluster(t)
	flat, err := hpl.Run(cl, cfg(0, 0, 8, 1), hpl.Params{N: 2048})
	if err != nil {
		t.Fatal(err)
	}
	square, err := Run(cl, cfg(0, 0, 8, 1), Params{
		Params: hpl.Params{N: 2048}, Pr: 2, Pc: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	ratio := square.WallTime / flat.WallTime
	if ratio < 0.5 || ratio > 4 {
		t.Fatalf("grid tradeoff out of range: 2x4 %.1fs vs 1x8 %.1fs", square.WallTime, flat.WallTime)
	}
}

// Property: structural invariants hold across random grid shapes.
func TestStructuralInvariantsProperty(t *testing.T) {
	cl := paperCluster(t)
	shapes := [][3]int{ // {p1-procs..., pr, pc} choices over 8 PII PEs
		{8, 1, 8}, {8, 2, 4}, {8, 4, 2}, {8, 8, 1},
		{4, 2, 2}, {6, 2, 3}, {6, 3, 2},
	}
	for seed, s := range shapes {
		cfg := cfg(0, 0, s[0], 1)
		n := 768 + 128*seed
		res, err := Run(cl, cfg, Params{Params: hpl.Params{N: n}, Pr: s[1], Pc: s[2]})
		if err != nil {
			t.Fatalf("shape %v: %v", s, err)
		}
		maxWall := 0.0
		for r, rt := range res.PerRank {
			if rt.Pfact < 0 || rt.Mxswp < 0 || rt.Bcast < 0 || rt.Laswp < 0 || rt.Update < 0 || rt.Uptrsv < 0 {
				t.Fatalf("shape %v rank %d negative phases: %+v", s, r, rt)
			}
			if rt.Ta()+rt.Tc() > rt.Wall+1e-9 {
				t.Fatalf("shape %v rank %d phases exceed wall", s, r)
			}
			if rt.Wall > maxWall {
				maxWall = rt.Wall
			}
		}
		if math.Abs(maxWall-res.WallTime) > 1e-12 {
			t.Fatalf("shape %v wall mismatch", s)
		}
	}
}
