package hpl2d

import (
	"fmt"

	"hetmodel/internal/cluster"
	"hetmodel/internal/hpl"
	"hetmodel/internal/linalg"
	"hetmodel/internal/machine"
	"hetmodel/internal/vmpi"
)

// Params configures a 2D run: the shared HPL parameters plus the grid
// shape. Pr×Pc must equal the configuration's total process count.
type Params struct {
	hpl.Params
	Pr, Pc int
}

// Result reuses the HPL result layout (same timing buckets; on a 2D grid
// Mxswp and Laswp are real communication).
type Result = hpl.Result

// panelMsg is the row-broadcast payload: each grid row's share of the
// factored panel plus the pivot rows.
type panelMsg struct {
	L      *linalg.Matrix
	Pivots []int
}

// pivotCand is the column-allreduce payload for pivot selection.
type pivotCand struct {
	Abs float64
	Row int
}

// Run executes the 2D-grid LU factorization for the configuration.
func Run(cl *cluster.Cluster, cfg cluster.Configuration, params Params) (*Result, error) {
	params.Params = hpl.FillDefaults(params.Params)
	if err := hpl.ValidateParams(params.Params); err != nil {
		return nil, err
	}
	pl, err := cl.Place(cfg)
	if err != nil {
		return nil, err
	}
	P := pl.P()
	if params.Pr <= 0 || params.Pc <= 0 || params.Pr*params.Pc != P {
		return nil, fmt.Errorf("%w: grid %dx%d does not match P=%d", hpl.ErrBadParams, params.Pr, params.Pc, P)
	}
	g := NewGrid(params.N, params.NB, params.Pr, params.Pc)
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", hpl.ErrBadParams, err)
	}

	nodeBytes := pl.NodeResidentBytes(func(rank int) float64 {
		row, col := g.Coords(rank)
		return 8*float64(g.LocalRows(row))*float64(g.LocalCols(col)) +
			8*float64(params.N)*float64(params.NB) +
			params.WorkspaceBytes
	})
	mulBusy := make([]float64, P)
	mulSolo := make([]float64, P)
	cfgKey := fmt.Sprintf("2d%dx%d:%s", params.Pr, params.Pc, cfg.Key())
	for r := 0; r < P; r++ {
		rp := pl.Ranks[r]
		pressure := rp.Type.PressureFactor(nodeBytes[rp.NodeID], rp.Node.MemoryBytes)
		jitter, _ := hpl.RunNoise(params.Seed, params.N, cfgKey, r, params.Noise, params.NoiseAbs)
		mulBusy[r] = rp.Type.MultiprocFactor(rp.Resident) * pressure * jitter
		mulSolo[r] = rp.Type.SoloFactor(rp.Resident) * pressure * jitter
	}

	var states []*numState
	if params.Numeric {
		states = make([]*numState, P)
		for r := 0; r < P; r++ {
			row, col := g.Coords(r)
			states[r] = newNumState(g, row, col, params.Seed)
		}
	}
	pivotRecord := make([][]int, g.Panels())

	world, err := vmpi.NewWorld(P, pl.TransferTime)
	if err != nil {
		return nil, err
	}
	world.SetRendezvous(pl.Rendezvous)
	world.SetTracer(params.Tracer)
	res := hpl.NewResultShell(params.Params, cfg.Normalize(), P)

	// Tag windows: each panel J owns [J*tagStride, (J+1)*tagStride).
	const tagStride = 1 << 12
	chainBase := g.Panels() * tagStride

	world.Run(func(p *vmpi.Proc) {
		rank := p.Rank()
		rp := pl.Ranks[rank]
		myRow, myCol := g.Coords(rank)
		cm := comm{p: p}
		var st *numState
		if states != nil {
			st = states[rank]
		}
		var t hpl.RankTiming

		colMembers := make([]int, g.Pr())
		rowMembers := make([]int, g.Pc())
		for r := 0; r < g.Pr(); r++ {
			colMembers[r] = g.Rank(r, myCol)
		}
		for c := 0; c < g.Pc(); c++ {
			rowMembers[c] = g.Rank(myRow, c)
		}

		for J := 0; J < g.Panels(); J++ {
			col0 := J * params.NB
			nb := params.N - col0
			if nb > params.NB {
				nb = params.NB
			}
			pc0 := g.ColOwner(col0)
			base := J * tagStride

			var pivots []int
			var myPanel *panelMsg

			if myCol == pc0 {
				pivots = make([]int, nb)
				for k := 0; k < nb; k++ {
					gr := col0 + k
					tagK := base + k*8
					// Local pivot candidate over owned rows >= gr.
					cand := pivotCand{Abs: -1, Row: -1}
					if st != nil {
						cand = st.localPivot(gr, col0+k)
					} else {
						// Deterministic pseudo-candidate: spread winners
						// across grid rows so swap traffic is realistic.
						if g.RowsBelow(myRow, gr) > 0 {
							f, _ := hpl.RunNoise(params.Seed, gr, cfgKey, myRow, 0.5, 0)
							cand = pivotCand{Abs: f, Row: firstOwnedRow(g, myRow, gr)}
						}
					}
					win, e := cm.allreduceMaxPivot(colMembers, tagK, cand, 16)
					t.Mxswp += e
					piv := win.Row
					if piv < 0 {
						piv = gr
					}
					pivots[k] = piv
					// Swap rows gr <-> piv within the panel.
					if piv != gr {
						og, op := g.RowOwner(gr), g.RowOwner(piv)
						switch {
						case og == op && myRow == og:
							if st != nil {
								st.swapLocalRows(gr, piv, col0, col0+nb)
							}
							dt := rp.Type.KernelTime(machine.KindRowOp, 2*nb, nb, 0) * mulSolo[rank]
							p.Advance(dt)
							t.Mxswp += dt
						case myRow == og:
							var seg any
							if st != nil {
								seg = st.rowSegment(gr, col0, col0+nb)
							}
							got, e := cm.sendrecvSwap(g.Rank(op, myCol), tagK+2, seg, 8*float64(nb))
							t.Mxswp += e
							if st != nil {
								st.setRowSegment(gr, col0, got.([]float64))
							}
						case myRow == op:
							var seg any
							if st != nil {
								seg = st.rowSegment(piv, col0, col0+nb)
							}
							got, e := cm.sendrecvSwap(g.Rank(og, myCol), tagK+2, seg, 8*float64(nb))
							t.Mxswp += e
							if st != nil {
								st.setRowSegment(piv, col0, got.([]float64))
							}
						}
					}
					// Broadcast the pivot row segment (cols k..nb of the
					// panel) down the column, then scale and rank-1 update.
					var rowSeg any
					if st != nil && myRow == g.RowOwner(gr) {
						rowSeg = st.rowSegment(gr, col0+k, col0+nb)
					}
					rowSeg, e = cm.bcastBinomial(colMembers, g.RowOwner(gr), tagK+4, rowSeg, 8*float64(nb-k))
					t.Mxswp += e
					below := g.RowsBelow(myRow, gr+1)
					if below > 0 {
						if st != nil {
							st.panelEliminate(gr, col0+k, col0+nb, rowSeg.([]float64))
						}
						flops := float64(below) * float64(nb-k) * 2
						dt := rp.Type.KernelTime(machine.KindPanel, int(flops), below, 0) * mulSolo[rank]
						p.Advance(dt)
						t.Pfact += dt
					}
				}
				rows := g.RowsBelow(myRow, col0)
				myPanel = &panelMsg{Pivots: pivots}
				if st != nil {
					myPanel.L = st.extractPanel(col0, nb)
				}
				_ = rows
				if myRow == 0 {
					pivotRecord[J] = pivots
				}
			}

			// Panel broadcast along the process row.
			{
				rows := g.RowsBelow(myRow, col0)
				bytes := 8 * float64(rows*nb+nb)
				data, e := cm.bcastRing(rowMembers, pc0, base+900, myPanel, bytes)
				t.Bcast += e
				if pm, ok := data.(*panelMsg); ok && pm != nil {
					myPanel = pm
					pivots = pm.Pivots
				}
			}

			// Row interchanges on all local columns outside the panel.
			myTrailing := g.ColsRight(myCol, col0+nb)
			swapWidth := g.LocalCols(myCol)
			if myCol == pc0 {
				swapWidth -= nb
			}
			for k := 0; k < nb && pivots != nil; k++ {
				gr := col0 + k
				piv := pivots[k]
				if piv == gr || swapWidth <= 0 {
					continue
				}
				og, op := g.RowOwner(gr), g.RowOwner(piv)
				tagK := base + 910 + k*2
				switch {
				case og == op && myRow == og:
					if st != nil {
						st.swapLocalRowsOutsidePanel(gr, piv, col0, col0+nb)
					}
					dt := rp.Type.KernelTime(machine.KindRowOp, 2*swapWidth, swapWidth, 0) * mulBusy[rank]
					p.Advance(dt)
					t.Laswp += dt
				case myRow == og:
					var seg any
					if st != nil {
						seg = st.rowOutsidePanel(gr, col0, col0+nb)
					}
					got, e := cm.sendrecvSwap(g.Rank(op, myCol), tagK, seg, 8*float64(swapWidth))
					t.Laswp += e
					if st != nil {
						st.setRowOutsidePanel(gr, col0, col0+nb, got.([]float64))
					}
				case myRow == op:
					var seg any
					if st != nil {
						seg = st.rowOutsidePanel(piv, col0, col0+nb)
					}
					got, e := cm.sendrecvSwap(g.Rank(og, myCol), tagK, seg, 8*float64(swapWidth))
					t.Laswp += e
					if st != nil {
						st.setRowOutsidePanel(piv, col0, col0+nb, got.([]float64))
					}
				}
			}

			// U12 on the diagonal process row, broadcast down each column.
			rd := g.RowOwner(col0)
			var u12 any
			if myRow == rd && myTrailing > 0 {
				if st != nil && myPanel != nil && myPanel.L != nil {
					u12 = st.computeU12(col0, nb, myPanel.L)
				}
				dt := 0.5 * rp.Type.KernelTime(machine.KindGemm, nb, myTrailing, nb) * mulBusy[rank]
				p.Advance(dt)
				t.Update += dt
			}
			if myTrailing > 0 && g.Pr() > 1 {
				var e float64
				u12, e = cm.bcastBinomial(colMembers, rd, base+950, u12, 8*float64(nb*myTrailing))
				t.Bcast += e
			}

			// Trailing update: local rows below the panel x local trailing
			// columns.
			m2 := g.RowsBelow(myRow, col0+nb)
			if m2 > 0 && myTrailing > 0 {
				if st != nil && myPanel != nil && myPanel.L != nil {
					st.update(col0, nb, myPanel.L, u12.(*linalg.Matrix))
				}
				dt := rp.Type.KernelTime(machine.KindGemm, m2, myTrailing, nb) * mulBusy[rank]
				p.Advance(dt)
				t.Update += dt
			}
		}

		// Backward-substitution chain over diagonal-block owners.
		for J := g.Panels() - 1; J >= 0; J-- {
			col0 := J * params.NB
			owner := g.Rank(g.RowOwner(col0), g.ColOwner(col0))
			if owner != rank {
				continue
			}
			nb := params.N - col0
			if nb > params.NB {
				nb = params.NB
			}
			if J < g.Panels()-1 {
				prev := g.Rank(g.RowOwner(col0+params.NB), g.ColOwner(col0+params.NB))
				if prev != rank {
					_, wait := p.Recv(prev, chainBase+J+1)
					t.Uptrsv += wait
				}
			}
			elems := nb*nb + 2*col0*nb
			rowLen := col0
			if rowLen < nb {
				rowLen = nb
			}
			dt := rp.Type.KernelTime(machine.KindRowOp, elems, rowLen, 0) * mulSolo[rank]
			p.Advance(dt)
			t.Uptrsv += dt
			if J > 0 {
				next := g.Rank(g.RowOwner(col0-params.NB), g.ColOwner(col0-params.NB))
				if next != rank {
					t.Uptrsv += p.Send(next, chainBase+J, nil, 8*float64(params.N))
				}
			}
		}

		t.Wall = p.Clock()
		res.PerRank[rank] = t
		p.Barrier(chainBase + g.Panels() + 8)
	})

	hpl.FinalizeResult(res, pl, len(cl.Classes), hpl.FlopCount(params.N))
	if params.Numeric {
		if err := validate(res, g, states, pivotRecord); err != nil {
			return nil, err
		}
	}
	return res, nil
}

// firstOwnedRow returns the smallest global row >= from owned by grid row.
func firstOwnedRow(g Grid, row, from int) int {
	for b := from / g.NB(); b < g.Panels(); b++ {
		if b%g.Pr() != row {
			continue
		}
		lo := b * g.NB()
		if lo < from {
			lo = from
		}
		hi := (b + 1) * g.NB()
		if hi > g.N() {
			hi = g.N()
		}
		if lo < hi {
			return lo
		}
	}
	return -1
}
