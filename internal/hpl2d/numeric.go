package hpl2d

import (
	"fmt"
	"math"

	"hetmodel/internal/hpl"
	"hetmodel/internal/linalg"
)

// numState is the per-rank numeric storage: the block-cyclic (rows and
// columns) share of the matrix. Local indices are monotone in global
// indices, so global ranges map to contiguous local ranges — the hot paths
// below lean on that to work on row slices instead of per-element At/Set.
type numState struct {
	g            Grid
	myRow, myCol int
	local        *linalg.Matrix
}

func newNumState(g Grid, row, col int, seed int64) *numState {
	st := &numState{g: g, myRow: row, myCol: col,
		local: linalg.NewMatrix(g.LocalRows(row), g.LocalCols(col))}
	full := make([]float64, g.N())
	data, stride := st.local.Data, st.local.Stride
	for b := col; b < g.colPanes; b += g.pc {
		lo := b * g.nb
		hi := lo + g.nb
		if hi > g.n {
			hi = g.n
		}
		for gc := lo; gc < hi; gc++ {
			hpl.GenColumn(seed, gc, full)
			lc := g.LocalColIndex(gc)
			for lr := 0; lr < st.local.Rows; lr++ {
				data[lr*stride+lc] = full[st.globalRow(lr)]
			}
		}
	}
	return st
}

// globalRow maps a local row index back to its global row (the inverse of
// Grid.LocalRowIndex for rows this rank owns).
func (st *numState) globalRow(lr int) int {
	g := st.g
	return (st.myRow+(lr/g.nb)*g.pr)*g.nb + lr%g.nb
}

// localRowStart returns the local index of the first owned row >= from.
func (st *numState) localRowStart(from int) int {
	return st.g.LocalRows(st.myRow) - st.g.RowsBelow(st.myRow, from)
}

// localColStart returns the local index of the first owned column >= from.
func (st *numState) localColStart(from int) int {
	return st.g.LocalCols(st.myCol) - st.g.ColsRight(st.myCol, from)
}

// panelLocalCols returns the contiguous local column range [lo, hi)
// covering the panel's global columns [pLo, pHi) on this rank; lo == hi
// when this rank's grid column does not own the panel block.
func (st *numState) panelLocalCols(pLo, pHi int) (int, int) {
	g := st.g
	if (pLo/g.nb)%g.pc != st.myCol {
		return 0, 0
	}
	lo := g.LocalColIndex(pLo)
	return lo, lo + (pHi - pLo)
}

// localPivot scans owned rows >= gr of global column gc for the largest
// magnitude.
func (st *numState) localPivot(gr, gc int) pivotCand {
	lc := st.g.LocalColIndex(gc)
	data, stride := st.local.Data, st.local.Stride
	bestAbs, bestLr := -1.0, -1
	for lr := st.localRowStart(gr); lr < st.local.Rows; lr++ {
		if v := math.Abs(data[lr*stride+lc]); v > bestAbs {
			bestAbs, bestLr = v, lr
		}
	}
	if bestLr < 0 {
		return pivotCand{Abs: -1, Row: -1}
	}
	return pivotCand{Abs: bestAbs, Row: st.globalRow(bestLr)}
}

// rowSegment copies global row grow's entries for global columns
// [cLo, cHi) (all owned by this rank's grid column within one panel block,
// hence locally contiguous).
func (st *numState) rowSegment(grow, cLo, cHi int) []float64 {
	lr := st.g.LocalRowIndex(grow)
	lc := st.g.LocalColIndex(cLo)
	out := make([]float64, cHi-cLo)
	copy(out, st.local.RowView(lr)[lc:])
	return out
}

// setRowSegment writes seg into global row grow starting at column cLo.
func (st *numState) setRowSegment(grow, cLo int, seg []float64) {
	lr := st.g.LocalRowIndex(grow)
	lc := st.g.LocalColIndex(cLo)
	copy(st.local.RowView(lr)[lc:lc+len(seg)], seg)
}

// swapLocalRows exchanges rows gr and piv over global columns [cLo, cHi).
func (st *numState) swapLocalRows(gr, piv, cLo, cHi int) {
	lc := st.g.LocalColIndex(cLo)
	w := cHi - cLo
	ra := st.local.RowView(st.g.LocalRowIndex(gr))[lc : lc+w]
	rb := st.local.RowView(st.g.LocalRowIndex(piv))[lc : lc+w]
	for c, v := range ra {
		ra[c], rb[c] = rb[c], v
	}
}

// swapLocalRowsOutsidePanel exchanges rows gr and piv over every local
// column outside the panel range [pLo, pHi).
func (st *numState) swapLocalRowsOutsidePanel(gr, piv, pLo, pHi int) {
	ra := st.local.RowView(st.g.LocalRowIndex(gr))
	rb := st.local.RowView(st.g.LocalRowIndex(piv))
	lo, hi := st.panelLocalCols(pLo, pHi)
	for c := 0; c < lo; c++ {
		ra[c], rb[c] = rb[c], ra[c]
	}
	for c := hi; c < len(ra); c++ {
		ra[c], rb[c] = rb[c], ra[c]
	}
}

// rowOutsidePanel copies global row grow over the non-panel local columns
// (in increasing local column order).
func (st *numState) rowOutsidePanel(grow, pLo, pHi int) []float64 {
	row := st.local.RowView(st.g.LocalRowIndex(grow))
	lo, hi := st.panelLocalCols(pLo, pHi)
	out := make([]float64, len(row)-(hi-lo))
	n := copy(out, row[:lo])
	copy(out[n:], row[hi:])
	return out
}

// setRowOutsidePanel writes seg into global row grow's non-panel columns.
func (st *numState) setRowOutsidePanel(grow, pLo, pHi int, seg []float64) {
	row := st.local.RowView(st.g.LocalRowIndex(grow))
	lo, hi := st.panelLocalCols(pLo, pHi)
	n := copy(row[:lo], seg)
	copy(row[hi:], seg[n:])
}

// panelEliminate applies one elimination step below pivot row gr: the pivot
// row segment covers global columns [gcK, gcEnd) of the panel.
func (st *numState) panelEliminate(gr, gcK, gcEnd int, pivotRow []float64) {
	d := pivotRow[0]
	if d == 0 {
		return
	}
	inv := 1 / d
	lcK := st.g.LocalColIndex(gcK)
	w := gcEnd - gcK
	data, stride := st.local.Data, st.local.Stride
	for lr := st.localRowStart(gr + 1); lr < st.local.Rows; lr++ {
		row := data[lr*stride+lcK : lr*stride+lcK+w]
		l := row[0] * inv
		row[0] = l
		if l == 0 {
			continue
		}
		linalg.Axpy(-l, row[1:], pivotRow[1:w])
	}
}

// extractPanel copies this rank's rows >= col0 of the panel columns into a
// dense payload matrix (rows in increasing global order).
func (st *numState) extractPanel(col0, nb int) *linalg.Matrix {
	r0 := st.localRowStart(col0)
	lc0 := st.g.LocalColIndex(col0)
	m := st.local.Rows - r0
	out := linalg.NewMatrix(m, nb)
	for i := 0; i < m; i++ {
		copy(out.RowView(i), st.local.RowView(r0 + i)[lc0:lc0+nb])
	}
	return out
}

// computeU12 solves L11·U12 = A12 in place on the diagonal process row and
// returns a copy of U12 (nb x trailing local cols).
func (st *numState) computeU12(col0, nb int, panel *linalg.Matrix) *linalg.Matrix {
	l11 := panel.Slice(0, nb, 0, nb)
	r0 := st.localRowStart(col0)
	c0 := st.localColStart(col0 + nb)
	a12 := st.local.Slice(r0, r0+nb, c0, st.local.Cols)
	if err := linalg.SolveLowerUnit(l11, a12); err != nil {
		panic(fmt.Sprintf("hpl2d: trsm failed: %v", err))
	}
	return a12.Clone()
}

// update applies A22 -= L2·U12 on this rank's trailing block.
func (st *numState) update(col0, nb int, panel *linalg.Matrix, u12 *linalg.Matrix) {
	// L2: the payload rows with global index >= col0+nb.
	skip := st.localRowStart(col0+nb) - st.localRowStart(col0)
	if skip >= panel.Rows {
		return
	}
	l2 := panel.Slice(skip, panel.Rows, 0, nb)
	r0 := st.localRowStart(col0 + nb)
	c0 := st.localColStart(col0 + nb)
	a22 := st.local.Slice(r0, st.local.Rows, c0, st.local.Cols)
	if err := linalg.MulAdd(-1, l2, u12, a22); err != nil {
		panic(fmt.Sprintf("hpl2d: gemm failed: %v", err))
	}
}

// validate reassembles the packed LU, solves, and records the residual.
func validate(res *Result, g Grid, states []*numState, pivots [][]int) error {
	n := g.N()
	full := linalg.NewMatrix(n, n)
	for _, st := range states {
		data, stride := st.local.Data, st.local.Stride
		for lr := 0; lr < st.local.Rows; lr++ {
			gr := st.globalRow(lr)
			for b := st.myCol; b < g.colPanes; b += g.pc {
				lo := b * g.nb
				hi := lo + g.nb
				if hi > n {
					hi = n
				}
				lc := g.LocalColIndex(lo)
				copy(full.Data[gr*n+lo:gr*n+hi], data[lr*stride+lc:lr*stride+lc+(hi-lo)])
			}
		}
	}
	b := make([]float64, n)
	hpl.GenRHS(res.Params.Seed, b)
	pb := append([]float64(nil), b...)
	for J := 0; J < g.Panels(); J++ {
		col0 := J * g.NB()
		for k, piv := range pivots[J] {
			gr := col0 + k
			if piv != gr && piv >= 0 {
				pb[gr], pb[piv] = pb[piv], pb[gr]
			}
		}
	}
	y, err := linalg.SolveLowerUnitVec(full, pb)
	if err != nil {
		return fmt.Errorf("hpl2d: forward substitution: %w", err)
	}
	x, err := linalg.SolveUpperVec(full, y)
	if err != nil {
		return fmt.Errorf("hpl2d: backward substitution: %w", err)
	}
	a := linalg.NewMatrix(n, n)
	col := make([]float64, n)
	for gc := 0; gc < n; gc++ {
		hpl.GenColumn(res.Params.Seed, gc, col)
		for i, v := range col {
			a.Data[i*n+gc] = v
		}
	}
	resid, err := linalg.HPLResidual(a, x, b)
	if err != nil {
		return fmt.Errorf("hpl2d: residual: %w", err)
	}
	res.Solution = x
	res.Residual = resid
	return nil
}
