package hpl2d

import (
	"fmt"
	"math"

	"hetmodel/internal/hpl"
	"hetmodel/internal/linalg"
)

// numState is the per-rank numeric storage: the block-cyclic (rows and
// columns) share of the matrix. Local indices are monotone in global
// indices, so global ranges map to contiguous local ranges.
type numState struct {
	g            Grid
	myRow, myCol int
	local        *linalg.Matrix
}

func newNumState(g Grid, row, col int, seed int64) *numState {
	st := &numState{g: g, myRow: row, myCol: col,
		local: linalg.NewMatrix(g.LocalRows(row), g.LocalCols(col))}
	full := make([]float64, g.N())
	for b := col; b < g.colPanes; b += g.pc {
		lo := b * g.nb
		hi := lo + g.nb
		if hi > g.n {
			hi = g.n
		}
		for gc := lo; gc < hi; gc++ {
			hpl.GenColumn(seed, gc, full)
			lc := g.LocalColIndex(gc)
			for _, gr := range st.ownedRows(0) {
				st.local.Set(g.LocalRowIndex(gr), lc, full[gr])
			}
		}
	}
	return st
}

// ownedRows lists this rank's global rows >= from, in increasing order.
func (st *numState) ownedRows(from int) []int {
	g := st.g
	var out []int
	for b := st.myRow; b < g.rowPanes; b += g.pr {
		lo := b * g.nb
		hi := lo + g.nb
		if hi > g.n {
			hi = g.n
		}
		for i := lo; i < hi; i++ {
			if i >= from {
				out = append(out, i)
			}
		}
	}
	return out
}

// localRowStart returns the local index of the first owned row >= from.
func (st *numState) localRowStart(from int) int {
	return st.g.LocalRows(st.myRow) - st.g.RowsBelow(st.myRow, from)
}

// localColStart returns the local index of the first owned column >= from.
func (st *numState) localColStart(from int) int {
	return st.g.LocalCols(st.myCol) - st.g.ColsRight(st.myCol, from)
}

// localPivot scans owned rows >= gr of global column gc for the largest
// magnitude.
func (st *numState) localPivot(gr, gc int) pivotCand {
	lc := st.g.LocalColIndex(gc)
	best := pivotCand{Abs: -1, Row: -1}
	for _, i := range st.ownedRows(gr) {
		v := math.Abs(st.local.At(st.g.LocalRowIndex(i), lc))
		if v > best.Abs {
			best = pivotCand{Abs: v, Row: i}
		}
	}
	return best
}

// rowSegment copies global row grow's entries for global columns
// [cLo, cHi) (all owned by this rank's grid column within the panel).
func (st *numState) rowSegment(grow, cLo, cHi int) []float64 {
	lr := st.g.LocalRowIndex(grow)
	out := make([]float64, 0, cHi-cLo)
	for gc := cLo; gc < cHi; gc++ {
		out = append(out, st.local.At(lr, st.g.LocalColIndex(gc)))
	}
	return out
}

// setRowSegment writes seg into global row grow starting at column cLo.
func (st *numState) setRowSegment(grow, cLo int, seg []float64) {
	lr := st.g.LocalRowIndex(grow)
	for i, v := range seg {
		st.local.Set(lr, st.g.LocalColIndex(cLo+i), v)
	}
}

// swapLocalRows exchanges rows gr and piv over global columns [cLo, cHi).
func (st *numState) swapLocalRows(gr, piv, cLo, cHi int) {
	a, b := st.g.LocalRowIndex(gr), st.g.LocalRowIndex(piv)
	for gc := cLo; gc < cHi; gc++ {
		lc := st.g.LocalColIndex(gc)
		va, vb := st.local.At(a, lc), st.local.At(b, lc)
		st.local.Set(a, lc, vb)
		st.local.Set(b, lc, va)
	}
}

// outsidePanelCols lists this rank's local column indices whose global
// column lies outside [pLo, pHi).
func (st *numState) outsidePanelCols(pLo, pHi int) []int {
	g := st.g
	var out []int
	for b := st.myCol; b < g.colPanes; b += g.pc {
		lo := b * g.nb
		hi := lo + g.nb
		if hi > g.n {
			hi = g.n
		}
		for gc := lo; gc < hi; gc++ {
			if gc < pLo || gc >= pHi {
				out = append(out, g.LocalColIndex(gc))
			}
		}
	}
	return out
}

// swapLocalRowsOutsidePanel exchanges rows gr and piv over every local
// column outside the panel range.
func (st *numState) swapLocalRowsOutsidePanel(gr, piv, pLo, pHi int) {
	a, b := st.g.LocalRowIndex(gr), st.g.LocalRowIndex(piv)
	for _, lc := range st.outsidePanelCols(pLo, pHi) {
		va, vb := st.local.At(a, lc), st.local.At(b, lc)
		st.local.Set(a, lc, vb)
		st.local.Set(b, lc, va)
	}
}

// rowOutsidePanel copies global row grow over the non-panel local columns.
func (st *numState) rowOutsidePanel(grow, pLo, pHi int) []float64 {
	lr := st.g.LocalRowIndex(grow)
	cols := st.outsidePanelCols(pLo, pHi)
	out := make([]float64, len(cols))
	for i, lc := range cols {
		out[i] = st.local.At(lr, lc)
	}
	return out
}

// setRowOutsidePanel writes seg into global row grow's non-panel columns.
func (st *numState) setRowOutsidePanel(grow, pLo, pHi int, seg []float64) {
	lr := st.g.LocalRowIndex(grow)
	for i, lc := range st.outsidePanelCols(pLo, pHi) {
		st.local.Set(lr, lc, seg[i])
	}
}

// panelEliminate applies one elimination step below pivot row gr: the pivot
// row segment covers global columns [gcK, gcEnd) of the panel.
func (st *numState) panelEliminate(gr, gcK, gcEnd int, pivotRow []float64) {
	d := pivotRow[0]
	if d == 0 {
		return
	}
	inv := 1 / d
	lcK := st.g.LocalColIndex(gcK)
	for _, i := range st.ownedRows(gr + 1) {
		lr := st.g.LocalRowIndex(i)
		l := st.local.At(lr, lcK) * inv
		st.local.Set(lr, lcK, l)
		if l == 0 {
			continue
		}
		for gc := gcK + 1; gc < gcEnd; gc++ {
			lc := st.g.LocalColIndex(gc)
			st.local.Set(lr, lc, st.local.At(lr, lc)-l*pivotRow[gc-gcK])
		}
	}
}

// extractPanel copies this rank's rows >= col0 of the panel columns into a
// dense payload matrix (rows in increasing global order).
func (st *numState) extractPanel(col0, nb int) *linalg.Matrix {
	rows := st.ownedRows(col0)
	out := linalg.NewMatrix(len(rows), nb)
	for ri, gr := range rows {
		lr := st.g.LocalRowIndex(gr)
		for k := 0; k < nb; k++ {
			out.Set(ri, k, st.local.At(lr, st.g.LocalColIndex(col0+k)))
		}
	}
	return out
}

// computeU12 solves L11·U12 = A12 in place on the diagonal process row and
// returns a copy of U12 (nb x trailing local cols).
func (st *numState) computeU12(col0, nb int, panel *linalg.Matrix) *linalg.Matrix {
	l11 := panel.Slice(0, nb, 0, nb)
	r0 := st.localRowStart(col0)
	c0 := st.localColStart(col0 + nb)
	a12 := st.local.Slice(r0, r0+nb, c0, st.local.Cols)
	if err := linalg.SolveLowerUnit(l11, a12); err != nil {
		panic(fmt.Sprintf("hpl2d: trsm failed: %v", err))
	}
	return a12.Clone()
}

// update applies A22 -= L2·U12 on this rank's trailing block.
func (st *numState) update(col0, nb int, panel *linalg.Matrix, u12 *linalg.Matrix) {
	// L2: the payload rows with global index >= col0+nb.
	skip := len(st.ownedRows(col0)) - st.g.RowsBelow(st.myRow, col0+nb)
	if skip >= panel.Rows {
		return
	}
	l2 := panel.Slice(skip, panel.Rows, 0, nb)
	r0 := st.localRowStart(col0 + nb)
	c0 := st.localColStart(col0 + nb)
	a22 := st.local.Slice(r0, st.local.Rows, c0, st.local.Cols)
	if err := linalg.MulAdd(-1, l2, u12, a22); err != nil {
		panic(fmt.Sprintf("hpl2d: gemm failed: %v", err))
	}
}

// validate reassembles the packed LU, solves, and records the residual.
func validate(res *Result, g Grid, states []*numState, pivots [][]int) error {
	n := g.N()
	full := linalg.NewMatrix(n, n)
	for _, st := range states {
		for _, gr := range st.ownedRows(0) {
			lr := g.LocalRowIndex(gr)
			for b := st.myCol; b < g.colPanes; b += g.pc {
				lo := b * g.nb
				hi := lo + g.nb
				if hi > n {
					hi = n
				}
				for gc := lo; gc < hi; gc++ {
					full.Set(gr, gc, st.local.At(lr, g.LocalColIndex(gc)))
				}
			}
		}
	}
	b := make([]float64, n)
	hpl.GenRHS(res.Params.Seed, b)
	pb := append([]float64(nil), b...)
	for J := 0; J < g.Panels(); J++ {
		col0 := J * g.NB()
		for k, piv := range pivots[J] {
			gr := col0 + k
			if piv != gr && piv >= 0 {
				pb[gr], pb[piv] = pb[piv], pb[gr]
			}
		}
	}
	y, err := linalg.SolveLowerUnitVec(full, pb)
	if err != nil {
		return fmt.Errorf("hpl2d: forward substitution: %w", err)
	}
	x, err := linalg.SolveUpperVec(full, y)
	if err != nil {
		return fmt.Errorf("hpl2d: backward substitution: %w", err)
	}
	a := linalg.NewMatrix(n, n)
	col := make([]float64, n)
	for gc := 0; gc < n; gc++ {
		hpl.GenColumn(res.Params.Seed, gc, col)
		for i := 0; i < n; i++ {
			a.Set(i, gc, col[i])
		}
	}
	resid, err := linalg.HPLResidual(a, x, b)
	if err != nil {
		return fmt.Errorf("hpl2d: residual: %w", err)
	}
	res.Solution = x
	res.Residual = resid
	return nil
}
