// Package hpl2d extends the HPL reproduction to general Pr×Pc process
// grids. The paper evaluates only the 1×P grid ("our scheme is universally
// applicable to any other process grid", §3.1); this package makes that
// claim testable: with rows distributed, pivot selection (mxswp) and row
// interchanges (laswp) become real inter-process communication instead of
// the 1×P degenerate cases, while the Ta/Tc decomposition and the model
// pipeline stay unchanged.
//
// The implementation mirrors ScaLAPACK conventions: a column-major logical
// grid, block-cyclic distribution of both rows and columns, partial
// pivoting with a max-reduce over each process column, panel broadcast
// along process rows, and U12 broadcast down process columns.
//
// Like internal/hpl it runs numerically (residual-checked) or as a timing
// walk; the numeric path shares the deterministic matrix generator so 1×P
// and Pr×Pc factorizations of the same seed can be cross-checked.
package hpl2d

import "fmt"

// Grid is the logical Pr×Pc process arrangement with block-cyclic
// distribution of rows and columns (block size NB in both dimensions).
type Grid struct {
	n, nb    int
	pr, pc   int
	rowPanes int // number of block rows
	colPanes int // number of block columns
}

// NewGrid describes an n×n matrix on a pr×pc grid with nb×nb blocks.
func NewGrid(n, nb, pr, pc int) Grid {
	panes := (n + nb - 1) / nb
	return Grid{n: n, nb: nb, pr: pr, pc: pc, rowPanes: panes, colPanes: panes}
}

// N returns the matrix order; NB the block size; Pr/Pc the grid shape.
func (g Grid) N() int  { return g.n }
func (g Grid) NB() int { return g.nb }
func (g Grid) Pr() int { return g.pr }
func (g Grid) Pc() int { return g.pc }

// Panels returns the number of block columns (= block rows).
func (g Grid) Panels() int { return g.rowPanes }

// Rank returns the world rank of grid position (row, col), column-major.
func (g Grid) Rank(row, col int) int { return row + col*g.pr }

// Coords returns the grid position of a world rank.
func (g Grid) Coords(rank int) (row, col int) { return rank % g.pr, rank / g.pr }

// RowOwner returns the grid row owning global matrix row i.
func (g Grid) RowOwner(i int) int { return (i / g.nb) % g.pr }

// ColOwner returns the grid column owning global matrix column j.
func (g Grid) ColOwner(j int) int { return (j / g.nb) % g.pc }

// LocalRowIndex maps global row i to the local row index on its owner.
func (g Grid) LocalRowIndex(i int) int {
	block := i / g.nb
	return (block/g.pr)*g.nb + i%g.nb
}

// LocalColIndex maps global column j to the local column index on its owner.
func (g Grid) LocalColIndex(j int) int {
	block := j / g.nb
	return (block/g.pc)*g.nb + j%g.nb
}

// LocalRows returns how many matrix rows grid row `row` owns.
func (g Grid) LocalRows(row int) int {
	total := 0
	for b := row; b < g.rowPanes; b += g.pr {
		h := g.n - b*g.nb
		if h > g.nb {
			h = g.nb
		}
		total += h
	}
	return total
}

// LocalCols returns how many matrix columns grid column `col` owns.
func (g Grid) LocalCols(col int) int {
	total := 0
	for b := col; b < g.colPanes; b += g.pc {
		w := g.n - b*g.nb
		if w > g.nb {
			w = g.nb
		}
		total += w
	}
	return total
}

// RowsBelow returns how many of grid row `row`'s local rows have global
// index >= from.
func (g Grid) RowsBelow(row, from int) int {
	total := 0
	for b := row; b < g.rowPanes; b += g.pr {
		lo := b * g.nb
		hi := lo + g.nb
		if hi > g.n {
			hi = g.n
		}
		if hi <= from {
			continue
		}
		if lo < from {
			lo = from
		}
		total += hi - lo
	}
	return total
}

// ColsRight returns how many of grid column `col`'s local columns have
// global index >= from.
func (g Grid) ColsRight(col, from int) int {
	total := 0
	for b := col; b < g.colPanes; b += g.pc {
		lo := b * g.nb
		hi := lo + g.nb
		if hi > g.n {
			hi = g.n
		}
		if hi <= from {
			continue
		}
		if lo < from {
			lo = from
		}
		total += hi - lo
	}
	return total
}

// Validate reports whether the grid can hold the problem.
func (g Grid) Validate() error {
	switch {
	case g.n <= 0 || g.nb <= 0:
		return fmt.Errorf("hpl2d: invalid N=%d NB=%d", g.n, g.nb)
	case g.pr <= 0 || g.pc <= 0:
		return fmt.Errorf("hpl2d: invalid grid %dx%d", g.pr, g.pc)
	case g.n < g.pr*g.nb && g.pr > 1:
		return fmt.Errorf("hpl2d: N=%d too small for %d row blocks of %d", g.n, g.pr, g.nb)
	case g.n < g.pc*g.nb && g.pc > 1:
		return fmt.Errorf("hpl2d: N=%d too small for %d col blocks of %d", g.n, g.pc, g.nb)
	}
	return nil
}
