package bench

import (
	"context"
	"sync"
	"testing"

	"hetmodel/internal/serve"
)

// This file holds the serving-layer workloads: the planner's steady state
// (cache hit: snapshot + LRU lookup + pruned grid pass), its worst case
// (cold compile after a model reload), and sustained concurrent QPS through
// batching and admission control. All three run over the six-class
// million-configuration space so the numbers share a scale with
// Sweep1MSearch; the planner's overhead is the delta against it.

// servePlanner builds a warm planner over the sweep space. Queries run with
// one search worker, matching the sequential sweeps.
var servePlanner = sync.OnceValue(func() *serve.Planner {
	p, err := serve.New(sixClassModel(), sweepSpace(), serve.Options{
		CacheSize:   8,
		MaxInFlight: 64,
		Workers:     1,
	})
	if err != nil {
		panic(err)
	}
	return p
})

func serveCachedQuery(b *testing.B) {
	p := servePlanner()
	ctx := context.Background()
	// Warm the (version, N) evaluator entry so the loop measures the
	// steady-state path.
	if _, err := p.Query(ctx, serve.Query{N: 3200}); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := p.Query(ctx, serve.Query{N: 3200})
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Best) == 0 {
			b.Fatal("no winner")
		}
	}
}

func serveColdCompile(b *testing.B) {
	ms := sixClassModel()
	p, err := serve.New(ms, sweepSpace(), serve.Options{CacheSize: 8, Workers: 1})
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Each reload bumps the version and invalidates the cache, so every
		// query pays the full cold path: compile + grid pass.
		b.StopTimer()
		if _, err := p.Reload(ms); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		res, err := p.Query(ctx, serve.Query{N: 3200})
		if err != nil {
			b.Fatal(err)
		}
		if res.CacheHit {
			b.Fatal("cold query hit the cache")
		}
	}
}

func serveSustainedQPS(b *testing.B) {
	p := servePlanner()
	ctx := context.Background()
	// Rotate over a few sizes so the run exercises cache hits, batching,
	// and admission together rather than one degenerate key.
	sizes := []int{400, 800, 1600, 2400, 3200}
	for _, n := range sizes {
		if _, err := p.Query(ctx, serve.Query{N: n}); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			res, err := p.Query(ctx, serve.Query{N: sizes[i%len(sizes)]})
			if err != nil {
				b.Fatal(err)
			}
			if len(res.Best) == 0 {
				b.Fatal("no winner")
			}
			i++
		}
	})
}
