package bench

import (
	"context"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"hetmodel/internal/cluster"
	"hetmodel/internal/core"
	"hetmodel/internal/fleet"
	"hetmodel/internal/parallel"
	"hetmodel/internal/serve"
)

// This file holds the fleet workloads: the billion-candidate sharded sweep
// (FleetSweep1B) and the router's two serving paths (RouterCachedQuery,
// RouterScatterTopK) over real HTTP members.
//
// The container CI runs on has one core, so a fleet's members cannot be
// timed truly in parallel here (PR 1 established the same caveat for search
// workers). FleetSweep1B therefore times each member's shard sequentially
// and reports the scatter's critical-path speedup — the wall-clock ratio an
// N-member fleet achieves over one member executing the same N shards back
// to back: speedup = Σ shard time / max shard time. On multi-member
// hardware the max-shard term is the fleet's real wall clock.

// space1B is the six-class billion-candidate grid: per class, PE counts
// {0..8} × process counts {1..4} canonicalize to 33 distinct pairs, and
// 33^6 = 1,291,467,969 grid points.
func space1B() cluster.Space {
	s := cluster.Space{PEChoices: make([][]int, 6), ProcChoices: make([][]int, 6)}
	for ci := range s.PEChoices {
		s.PEChoices[ci] = []int{0, 1, 2, 3, 4, 5, 6, 7, 8}
		s.ProcChoices[ci] = []int{1, 2, 3, 4}
	}
	return s
}

// samples1B extends the sweep training set to the 1B space's reach: every
// class measured at M = 1..4 on 1, 2, 4 and 8 PEs (P up to 32 per class).
func samples1B() []core.Sample {
	var samples []core.Sample
	for class := 0; class < 6; class++ {
		speed := 1 + float64(class)/4
		for m := 1; m <= 4; m++ {
			for _, pe := range []int{1, 2, 4, 8} {
				p := pe * m
				for _, n := range []int{400, 800, 1600, 2400, 3200} {
					nf := float64(n)
					ta := 6e-10*nf*nf*nf/float64(p)*speed + 0.2
					tc := 1e-9 * nf * nf
					if pe > 1 {
						tc = 2e-9*nf*nf*float64(p) + 1e-8*nf*nf/float64(p) + 0.05
					}
					use := make([]cluster.ClassUse, 6)
					use[class] = cluster.ClassUse{PEs: pe, Procs: m}
					samples = append(samples, core.Sample{
						Config: cluster.Configuration{Use: use},
						N:      n, P: p, Class: class, M: m,
						Ta: ta, Tc: tc, Wall: ta + tc,
					})
				}
			}
		}
	}
	return samples
}

var model1B = sync.OnceValue(func() *core.ModelSet {
	ms, err := core.Build(6, samples1B())
	if err != nil {
		panic(err)
	}
	return ms
})

var grid1B = sync.OnceValue(func() *cluster.Grid {
	g, err := space1B().Compile()
	if err != nil {
		panic(err)
	}
	return g
})

func fleetSweep1B(b *testing.B) {
	const members = 6
	const topK = 5
	ms := model1B()
	space := space1B()
	size := grid1B().Size()
	var sumNs, maxNs, fullNs int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Single-planner reference: one unsharded pass over all 1.29e9
		// candidates.
		t0 := time.Now()
		full, err := ms.OptimizeSpace(space, 3200, core.SearchOptions{Workers: 1, TopK: topK})
		if err != nil {
			b.Fatal(err)
		}
		fullNs += time.Since(t0).Nanoseconds()

		// The fleet's work: one shard per member, timed individually. The
		// single core serializes them; a real fleet runs them concurrently
		// and its wall clock is the slowest shard.
		var opMax int64
		lists := make([][]parallel.Candidate, members)
		for s := int64(0); s < members; s++ {
			lo, hi := size*s/members, size*(s+1)/members
			ts := time.Now()
			res, err := ms.OptimizeSpace(space, 3200, core.SearchOptions{
				Workers: 1, TopK: topK, Range: &core.IndexRange{Lo: lo, Hi: hi},
			})
			if err != nil {
				b.Fatal(err)
			}
			d := time.Since(ts).Nanoseconds()
			sumNs += d
			if d > opMax {
				opMax = d
			}
			lists[s] = make([]parallel.Candidate, len(res.Best))
			for j := range res.Best {
				lists[s][j] = parallel.Candidate{Index: res.BestIndex[j], Score: res.Best[j].Tau}
			}
		}
		maxNs += opMax

		// Zero answer drift: the merged shard ranking must be bit-identical
		// to the unsharded reference.
		merged := parallel.MergeTopK(topK, lists)
		if len(merged) != len(full.Best) {
			b.Fatalf("merged %d candidates, unsharded %d", len(merged), len(full.Best))
		}
		for j, c := range merged {
			if c.Index != full.BestIndex[j] || c.Score != full.Best[j].Tau {
				b.Fatalf("rank %d: merged (%d, %v) != unsharded (%d, %v)",
					j, c.Index, c.Score, full.BestIndex[j], full.Best[j].Tau)
			}
		}
	}
	b.StopTimer()
	if maxNs > 0 {
		// Critical-path speedup of the 6-member scatter (see file comment).
		b.ReportMetric(float64(sumNs)/float64(maxNs), "speedup")
		// Fleet wall clock vs the unsharded single pass: below 1 when
		// pruning's shared global minimum beats sharding, above when the
		// shards' smaller spans win. Advisory — the honest single-core view.
		b.ReportMetric(float64(fullNs)/float64(maxNs), "vsUnsharded")
	}
}

// benchFleet builds a router over n in-process HTTP members, all serving the
// six-class million-configuration sweep space (the 1B grid would force the
// guarded per-candidate path on members; the 1M space exercises the same
// scatter machinery at serving scale).
func benchFleet(b *testing.B, n int, shardMin int64) (*fleet.Router, func()) {
	b.Helper()
	var (
		urls    []string
		closers []func()
	)
	for i := 0; i < n; i++ {
		p, err := serve.New(sixClassModel(), sweepSpace(), serve.Options{
			CacheSize: 16, MaxInFlight: 64, Workers: 1,
		})
		if err != nil {
			b.Fatal(err)
		}
		srv := httptest.NewServer(p.Handler())
		urls = append(urls, srv.URL)
		closers = append(closers, srv.Close)
	}
	r, err := fleet.New(sweepSpace(), fleet.Options{Members: urls, ShardMin: shardMin})
	if err != nil {
		b.Fatal(err)
	}
	return r, func() {
		for _, c := range closers {
			c()
		}
	}
}

func routerCachedQuery(b *testing.B) {
	// ShardMin above the grid size: the affinity path, one member, warm
	// evaluator cache — the router's overhead over ServeCachedQuery is the
	// HTTP round trip plus routing.
	r, done := benchFleet(b, 3, 1<<40)
	defer done()
	ctx := context.Background()
	req := serve.QueryRequest{N: 3200, TopK: 1}
	if _, err := r.Query(ctx, req); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := r.Query(ctx, req)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Best) == 0 {
			b.Fatal("no winner")
		}
	}
}

func routerScatterTopK(b *testing.B) {
	// Always scatter: 3 members each search a third of the 1M grid, the
	// router merges the three top-5 lists. After the first pass every
	// member answers its shard from cache, so steady state measures
	// fan-out + member grid passes + merge.
	r, done := benchFleet(b, 3, -1)
	defer done()
	ctx := context.Background()
	req := serve.QueryRequest{N: 3200, TopK: 5}
	if _, err := r.Query(ctx, req); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := r.Query(ctx, req)
		if err != nil {
			b.Fatal(err)
		}
		if res.Members != 3 || len(res.Best) != 5 {
			b.Fatalf("merged %d members, %d candidates", res.Members, len(res.Best))
		}
	}
}
