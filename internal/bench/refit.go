package bench

import (
	"context"
	"sync"
	"testing"
	"time"

	"hetmodel/internal/core"
	"hetmodel/internal/serve"
	"hetmodel/internal/stats"
	"hetmodel/internal/workload"
)

// This file holds the incremental-refit workloads. The pair RefitOneBin /
// RefitFullRebuild measures the fitting-cost asymmetry a refit exploits
// (delta-fit the touched bin vs refit every bin, which is what a reload
// path has to do). The Serve*Warm pair measures the cache consequence: a
// refit of a grid-unreachable bin re-keys the warm evaluator cache to the
// new version (coldCompiles/op stays 0), while a reload invalidates it and
// every warm size recompiles. The Replay*P99 pair shows the same effect as
// tail latency under a deterministic hetload-style replay with periodic
// model updates interleaved into query traffic.

// binnedSweepModel extends the sweep model to M = 1..5 and attaches its
// sample bins. sweepSpace's process choices stop at 3, so the M = 4 and
// M = 5 bins exist in the model but are unreachable by any grid candidate —
// refitting them must not cost the serving layer its warm cache.
var binnedSweepModel = sync.OnceValue(func() *core.ModelSet {
	samples := sweepSamples(5)
	ms, err := core.Build(6, samples)
	if err != nil {
		panic(err)
	}
	ms.Bins = core.NewBinStore(samples, nil)
	return ms
})

// unreachableDelta is a one-sample delta into the grid-unreachable class 0
// M = 5 bin, with the re-measured Ta scaled by factor.
func unreachableDelta(ms *core.ModelSet, factor float64) core.SampleDelta {
	s := ms.Bins.Samples(core.PTKey{Class: 0, M: 5})[0]
	s.Ta *= factor
	return core.SampleDelta{Samples: []core.Sample{s}}
}

func refitOneBin(b *testing.B) {
	ms := binnedSweepModel()
	delta := unreachableDelta(ms, 1.01)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		next, rep, err := ms.Refit(delta)
		if err != nil {
			b.Fatal(err)
		}
		if next == nil || len(rep.Touched) != 1 {
			b.Fatalf("touched %v, want one bin", rep.Touched)
		}
	}
}

func refitFullRebuild(b *testing.B) {
	ms := binnedSweepModel()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ms.RebuildFromBins(); err != nil {
			b.Fatal(err)
		}
	}
}

// refitWarmSizes are the problem sizes kept warm across model updates.
var refitWarmSizes = []int{400, 800, 1600, 2400, 3200}

func newRefitPlanner(b *testing.B) *serve.Planner {
	b.Helper()
	p, err := serve.New(binnedSweepModel(), sweepSpace(), serve.Options{
		CacheSize: 8,
		Workers:   1,
	})
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	for _, n := range refitWarmSizes {
		if _, err := p.Query(ctx, serve.Query{N: n}); err != nil {
			b.Fatal(err)
		}
	}
	return p
}

// serveUpdateWarm is one benchmark op: publish a model update through swap,
// then answer one query per warm size. The coldCompiles/op metric is the
// number of evaluator compiles those queries paid, and cacheRetention the
// fraction answered from the pre-update cache.
func serveUpdateWarm(b *testing.B, swap func(p *serve.Planner, i int) error) {
	p := newRefitPlanner(b)
	ctx := context.Background()
	compiles0 := p.Stats().Compiles
	hits := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := swap(p, i); err != nil {
			b.Fatal(err)
		}
		for _, n := range refitWarmSizes {
			res, err := p.Query(ctx, serve.Query{N: n})
			if err != nil {
				b.Fatal(err)
			}
			if res.CacheHit {
				hits++
			}
		}
	}
	b.StopTimer()
	queries := b.N * len(refitWarmSizes)
	b.ReportMetric(float64(p.Stats().Compiles-compiles0)/float64(b.N), "coldCompiles/op")
	b.ReportMetric(float64(hits)/float64(queries), "cacheRetention")
}

func serveRefitWarm(b *testing.B) {
	factors := []float64{1.01, 1.02, 1.03, 1.05, 1.08, 1.13}
	serveUpdateWarm(b, func(p *serve.Planner, i int) error {
		_, ms := p.Current()
		res, err := p.Refit(unreachableDelta(ms, factors[i%len(factors)]))
		if err != nil {
			return err
		}
		if res.CacheKept != len(refitWarmSizes) {
			b.Fatalf("refit kept %d evaluators, want %d", res.CacheKept, len(refitWarmSizes))
		}
		return nil
	})
}

func serveReloadWarm(b *testing.B) {
	serveUpdateWarm(b, func(p *serve.Planner, _ int) error {
		_, ms := p.Current()
		_, err := p.Reload(ms)
		return err
	})
}

// refitReplayTrace is a deterministic Poisson second at 2000 qps drawing
// uniformly from the warm sizes: ~2000 planner requests per replay.
var refitReplayTrace = sync.OnceValue(func() *workload.Trace {
	tr, err := workload.Generate(workload.Spec{
		Name:       "refit-replay",
		Seed:       1004,
		DurationNs: 1e9,
		Arrival:    workload.ArrivalSpec{Process: workload.ProcessPoisson, RateQPS: 2000},
		Cohorts: []workload.CohortSpec{
			{Name: "sweep", Weight: 1, Sizes: refitWarmSizes, SizeDist: workload.SizeUniform},
		},
	})
	if err != nil {
		panic(err)
	}
	return tr
})

// replayUpdateP99 is one benchmark op: replay the whole trace through the
// planner, publishing a model update every 200 requests, and report the p99
// per-query latency. The refit and reload variants replay the identical
// request sequence; the only difference is what each update does to the
// evaluator cache.
func replayUpdateP99(b *testing.B, swap func(p *serve.Planner, i int) error) {
	p := newRefitPlanner(b)
	tr := refitReplayTrace()
	ctx := context.Background()
	var p99 float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := stats.NewQuantileReservoir(4096, tr.Seed)
		for j, req := range tr.Requests {
			if j%200 == 100 {
				if err := swap(p, i*len(tr.Requests)+j); err != nil {
					b.Fatal(err)
				}
			}
			start := time.Now()
			if _, err := p.Query(ctx, serve.Query{N: req.N, TopK: req.TopK}); err != nil {
				b.Fatal(err)
			}
			res.Add(float64(time.Since(start)))
		}
		p99 = res.Quantile(0.99)
	}
	b.StopTimer()
	b.ReportMetric(p99, "p99Ns")
}

func replayRefitP99(b *testing.B) {
	factors := []float64{1.01, 1.02, 1.03, 1.05, 1.08, 1.13}
	replayUpdateP99(b, func(p *serve.Planner, i int) error {
		_, ms := p.Current()
		_, err := p.Refit(unreachableDelta(ms, factors[i%len(factors)]))
		return err
	})
}

func replayReloadP99(b *testing.B) {
	replayUpdateP99(b, func(p *serve.Planner, _ int) error {
		_, ms := p.Current()
		_, err := p.Reload(ms)
		return err
	})
}
