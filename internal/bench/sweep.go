package bench

import (
	"sync"
	"testing"

	"hetmodel/internal/cluster"
	"hetmodel/internal/core"
)

// This file holds the large-search-space workloads: a synthetic six-class
// model whose configuration space has exactly one million candidates, swept
// through the pre-evaluator per-candidate path (Sweep1MEstimate) and the
// compiled streaming search (Sweep1MSearch), plus the evaluator scoring
// micro-benchmark (EvaluatorTau). Both sweeps run sequentially so the ratio
// measures the algorithmic speedup (compilation + pruning), not parallelism.

// sweepSpace is the six-class million-configuration grid: per class,
// PE counts {0, 1, 2, 4} × process counts {1, 2, 3} canonicalize to 10
// distinct (PEs, Procs) pairs, and 10^6 grid points.
func sweepSpace() cluster.Space {
	s := cluster.Space{PEChoices: make([][]int, 6), ProcChoices: make([][]int, 6)}
	for ci := range s.PEChoices {
		s.PEChoices[ci] = []int{0, 1, 2, 4}
		s.ProcChoices[ci] = []int{1, 2, 3}
	}
	return s
}

// sweepSamples generates the six-class training set: every class measured at
// M = 1..maxM on 1, 2 and 4 PEs over five problem sizes, so each class has
// full single-PE N-T bins and directly-fitted P-T bins. Class c runs at a
// speed factor 1/(1 + c/4), making the τ landscape non-trivial.
func sweepSamples(maxM int) []core.Sample {
	var samples []core.Sample
	for class := 0; class < 6; class++ {
		speed := 1 + float64(class)/4
		for m := 1; m <= maxM; m++ {
			for _, pe := range []int{1, 2, 4} {
				p := pe * m
				for _, n := range []int{400, 800, 1600, 2400, 3200} {
					nf := float64(n)
					ta := 6e-10*nf*nf*nf/float64(p)*speed + 0.2
					tc := 1e-9 * nf * nf
					if pe > 1 {
						tc = 2e-9*nf*nf*float64(p) + 1e-8*nf*nf/float64(p) + 0.05
					}
					use := make([]cluster.ClassUse, 6)
					use[class] = cluster.ClassUse{PEs: pe, Procs: m}
					samples = append(samples, core.Sample{
						Config: cluster.Configuration{Use: use},
						N:      n, P: p, Class: class, M: m,
						Ta: ta, Tc: tc, Wall: ta + tc,
					})
				}
			}
		}
	}
	return samples
}

// sixClassModel fits the model set covering the sweep space (M = 1..3,
// matching sweepSpace's process choices).
var sixClassModel = sync.OnceValue(func() *core.ModelSet {
	ms, err := core.Build(6, sweepSamples(3))
	if err != nil {
		panic(err)
	}
	return ms
})

// sweepCandidates materializes the million configurations once, for the
// legacy path (which needs the slice the old EstimateAllWorkers took).
var sweepCandidates = sync.OnceValue(func() []cluster.Configuration {
	cfgs, err := sweepSpace().Enumerate()
	if err != nil {
		panic(err)
	}
	return cfgs
})

func sweep1MEstimate(b *testing.B) {
	ms := sixClassModel()
	cfgs := sweepCandidates()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// The pre-evaluator hot loop: per-candidate Normalize + map lookups
		// + polynomial evaluation through ModelSet.Estimate, winner by
		// sequential scan (what Optimize compiled down to before the
		// evaluator existed).
		bestTau := 0.0
		found := false
		for _, cfg := range cfgs {
			tau, err := ms.Estimate(cfg, 3200)
			if err != nil {
				continue
			}
			if !found || tau < bestTau {
				bestTau, found = tau, true
			}
		}
		if !found {
			b.Fatal("no scorable candidate")
		}
	}
}

func sweep1MSearch(b *testing.B) {
	ms := sixClassModel()
	space := sweepSpace()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := ms.OptimizeSpace(space, 3200, core.SearchOptions{Workers: 1})
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Best) == 0 {
			b.Fatal("no winner")
		}
	}
}

func evaluatorTau(b *testing.B) {
	ev := sixClassModel().Compile(3200)
	cfg := cluster.Configuration{Use: make([]cluster.ClassUse, 6)}
	cfg.Use[0] = cluster.ClassUse{PEs: 2, Procs: 2}
	cfg.Use[3] = cluster.ClassUse{PEs: 4, Procs: 1}
	cfg.Use[5] = cluster.ClassUse{PEs: 1, Procs: 3}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := ev.Tau(cfg); !ok {
			b.Fatal("unscorable")
		}
	}
}

func sweep1MTopK8(b *testing.B) {
	ms := sixClassModel()
	space := sweepSpace()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := ms.OptimizeSpace(space, 3200, core.SearchOptions{Workers: 1, TopK: 8})
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Best) != 8 {
			b.Fatalf("%d winners", len(res.Best))
		}
	}
}

func sweep1MConstrained(b *testing.B) {
	ms := sixClassModel()
	space := sweepSpace()
	// A realistic serving-layer restriction: four of the six classes allowed
	// and a total-process cap — the kernel prunes the excluded subtrees
	// structurally instead of decoding and filtering a million candidates.
	cons := &core.Constraints{Classes: []int{0, 1, 2, 3}, MaxTotalProcs: 24}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := ms.OptimizeSpace(space, 3200, core.SearchOptions{Workers: 1, Constraints: cons})
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Best) == 0 {
			b.Fatal("no winner")
		}
	}
}

func searchKernel1M(b *testing.B) {
	ev := sixClassModel().Compile(3200)
	grid, err := sweepSpace().Compile()
	if err != nil {
		b.Fatal(err)
	}
	var r core.Reusable
	opts := core.SearchOptions{TopK: 8}
	// Warm the reused buffers and the evaluator's grid-tables cache so the
	// timed loop measures the steady-state kernel (0 allocs/op, which the
	// benchrun alloc gate pins).
	if _, err := ev.SearchReuse(grid, opts, &r); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := ev.SearchReuse(grid, opts, &r)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Best) != 8 {
			b.Fatalf("%d winners", len(res.Best))
		}
	}
}
