// Package bench defines the tracked benchmark suite behind cmd/benchrun:
// the simulator and kernel workloads whose regressions the repository
// watches via the committed BENCH_2.json baseline. The parameters mirror
// the go-test benchmarks in bench_test.go at the module root, so numbers
// from `go test -bench` at any commit are directly comparable.
package bench

import (
	"math/rand"
	"testing"

	"hetmodel"
	"hetmodel/internal/chol"
	"hetmodel/internal/experiments"
	"hetmodel/internal/hpl"
	"hetmodel/internal/hpl2d"
	"hetmodel/internal/linalg"
	"hetmodel/internal/measure"
)

// Case is one tracked benchmark.
type Case struct {
	Name string
	// What the number means, for report readers.
	Desc string
	F    func(b *testing.B)
}

// Suite returns the tracked benchmarks in reporting order.
func Suite() []Case {
	return []Case{
		{"HPLPhantom", "timing-only HPL, N=9600, (1,4,8,1)", hplPhantom},
		{"HPLNumeric", "real-arithmetic HPL, N=192, NB=32", hplNumeric},
		{"HPL2DPhantom", "timing-only 2D-grid HPL, N=4096, 2x4", hpl2dPhantom},
		{"HPL2DNumeric", "real-arithmetic 2D-grid HPL, N=128, NB=16, 2x2", hpl2dNumeric},
		{"CholeskyPhantom", "timing-only Cholesky, N=6400", cholPhantom},
		{"CholeskyNumeric", "real-arithmetic Cholesky, N=160, NB=32", cholNumeric},
		{"GEMMSerial", "blocked MulAdd, 256x256x256", gemmSerial},
		{"CampaignWorkers1", "NL campaign (2 sizes), sequential", campaignW1},
		{"SweepWorkers1", "62-candidate sweep at N=2400, sequential", sweepW1},
		{"Sweep1MEstimate", "1M-config 6-class optimize via per-candidate ModelSet.Estimate (pre-evaluator path), sequential", sweep1MEstimate},
		{"Sweep1MSearch", "1M-config 6-class optimize via compiled evaluator + pruned streaming search, sequential", sweep1MSearch},
		{"Sweep1MTopK8", "1M-config 6-class top-8 via the shared-threshold pruned search, sequential", sweep1MTopK8},
		{"Sweep1MConstrained", "1M-config 6-class optimize under class-subset + total-process constraints (structural pruning), sequential", sweep1MConstrained},
		{"SearchKernel1M", "steady-state 1M-config top-8 through SearchReuse: odometer kernel only, zero allocs", searchKernel1M},
		{"EvaluatorTau", "score one 6-class candidate through a compiled evaluator", evaluatorTau},
		{"ServeCachedQuery", "warm planner query, 1M-config space, evaluator cache hit", serveCachedQuery},
		{"ServeColdCompile", "planner query after a model reload: compile + grid pass", serveColdCompile},
		{"ServeSustainedQPS", "concurrent planner queries over 5 sizes (batching + admission)", serveSustainedQPS},
		{"RefitOneBin", "incremental Refit of a one-sample delta into one bin of the 6-class binned model", refitOneBin},
		{"RefitFullRebuild", "from-scratch RebuildFromBins of the same model: the reload path's fitting cost", refitFullRebuild},
		{"ServeRefitWarm", "refit of a grid-unreachable bin + 5 warm queries: cache re-keyed (coldCompiles/op, cacheRetention)", serveRefitWarm},
		{"ServeReloadWarm", "reload + the same 5 queries: cache invalidated, every size recompiles", serveReloadWarm},
		{"ReplayRefitP99", "p99 query latency over a ~2k-request Poisson replay with a refit every 200 requests", replayRefitP99},
		{"ReplayReloadP99", "the same replay with reloads: each update recompiles the working set", replayReloadP99},
		{"WorkloadGen10k", "generate a ~10k-request Poisson trace over the smoke cohorts", workloadGen10k},
		{"ReplaySummarize10k", "summarize 10k replay outcomes (quantile reservoirs + goodput)", replaySummarize10k},
		{"FleetSweep1B", "1.29e9-candidate sweep sharded 6 ways vs unsharded; merged answers bit-identical (speedup = critical-path ratio)", fleetSweep1B},
		{"RouterCachedQuery", "hetrouter affinity query over warm HTTP members: routing + round trip + member cache hit", routerCachedQuery},
		{"RouterScatterTopK", "hetrouter 3-way scatter top-5 over the 1M grid: fan-out + member passes + deterministic merge", routerScatterTopK},
	}
}

func paperCluster(b *testing.B) *hetmodel.Cluster {
	b.Helper()
	cl, err := hetmodel.NewPaperCluster()
	if err != nil {
		b.Fatal(err)
	}
	return cl
}

func hplPhantom(b *testing.B) {
	cl := paperCluster(b)
	cfg := hetmodel.Configuration{Use: []hetmodel.ClassUse{{PEs: 1, Procs: 4}, {PEs: 8, Procs: 1}}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := hetmodel.RunHPL(cl, cfg, hetmodel.HPLParams{N: 9600}); err != nil {
			b.Fatal(err)
		}
	}
}

func hplNumeric(b *testing.B) {
	cl := paperCluster(b)
	cfg := hetmodel.Configuration{Use: []hetmodel.ClassUse{{PEs: 1, Procs: 1}, {PEs: 3, Procs: 1}}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := hetmodel.RunHPL(cl, cfg, hetmodel.HPLParams{N: 192, NB: 32, Numeric: true, Seed: int64(i)})
		if err != nil {
			b.Fatal(err)
		}
		if res.Residual > 16 {
			b.Fatalf("residual %v", res.Residual)
		}
	}
}

func hpl2dPhantom(b *testing.B) {
	cl := paperCluster(b)
	cfg := hetmodel.Configuration{Use: []hetmodel.ClassUse{{}, {PEs: 8, Procs: 1}}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := hpl2d.Run(cl, cfg, hpl2d.Params{Params: hetmodel.HPLParams{N: 4096}, Pr: 2, Pc: 4}); err != nil {
			b.Fatal(err)
		}
	}
}

func hpl2dNumeric(b *testing.B) {
	cl := paperCluster(b)
	cfg := hetmodel.Configuration{Use: []hetmodel.ClassUse{{}, {PEs: 4, Procs: 1}}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := hpl2d.Run(cl, cfg, hpl2d.Params{
			Params: hetmodel.HPLParams{N: 128, NB: 16, Numeric: true, Seed: int64(i)},
			Pr:     2, Pc: 2,
		})
		if err != nil {
			b.Fatal(err)
		}
		if res.Residual > 16 {
			b.Fatalf("residual %v", res.Residual)
		}
	}
}

func cholPhantom(b *testing.B) {
	cl := paperCluster(b)
	cfg := hetmodel.Configuration{Use: []hetmodel.ClassUse{{PEs: 1, Procs: 3}, {PEs: 8, Procs: 1}}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := chol.Run(cl, cfg, chol.Params{N: 6400}); err != nil {
			b.Fatal(err)
		}
	}
}

func cholNumeric(b *testing.B) {
	cl := paperCluster(b)
	cfg := hetmodel.Configuration{Use: []hetmodel.ClassUse{{PEs: 1, Procs: 1}, {PEs: 3, Procs: 1}}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := chol.Run(cl, cfg, chol.Params{N: 160, NB: 32, Numeric: true})
		if err != nil {
			b.Fatal(err)
		}
		if res.Residual > 16 {
			b.Fatalf("residual %v", res.Residual)
		}
	}
}

func gemmSerial(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	const n = 256
	a := linalg.NewMatrix(n, n)
	c := linalg.NewMatrix(n, n)
	for i := range a.Data {
		a.Data[i] = rng.NormFloat64()
		c.Data[i] = rng.NormFloat64()
	}
	out := linalg.NewMatrix(n, n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := linalg.MulAdd(1, a, c, out); err != nil {
			b.Fatal(err)
		}
	}
}

func campaignW1(b *testing.B) {
	cl := paperCluster(b)
	camp := measure.NLCampaign()
	camp.Ns = camp.Ns[:2]
	camp.Workers = 1
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := measure.Run(cl, camp, hpl.Params{}); err != nil {
			b.Fatal(err)
		}
	}
}

func sweepW1(b *testing.B) {
	candidates := experiments.EvalConfigs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		ctx, err := experiments.NewPaperContext()
		if err != nil {
			b.Fatal(err)
		}
		ctx.Workers = 1
		b.StartTimer()
		if _, _, err := ctx.ActualBest(candidates, 2400); err != nil {
			b.Fatal(err)
		}
	}
}
