package bench

import (
	"testing"

	"hetmodel/internal/workload"
)

// This file holds the traffic-harness workloads: generating a 10k-request
// deterministic trace (the hot path of `hetload -gen` and of every
// saturation step) and summarizing 10k replay outcomes into the canonical
// load summary (quantile reservoirs + goodput accounting).

// workloadGenSpec is a Poisson second at 10000 qps over the smoke cohorts:
// ~10k requests per Generate call.
func workloadGenSpec() workload.Spec {
	spec := workload.SmokeSpec()
	spec.Name = "bench-gen-10k"
	spec.DurationNs = 1e9
	spec.Arrival = workload.ArrivalSpec{Process: workload.ProcessPoisson, RateQPS: 10000}
	return spec
}

func workloadGen10k(b *testing.B) {
	spec := workloadGenSpec()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr, err := workload.Generate(spec)
		if err != nil {
			b.Fatal(err)
		}
		if len(tr.Requests) < 9000 {
			b.Fatalf("only %d requests", len(tr.Requests))
		}
	}
}

func replaySummarize10k(b *testing.B) {
	tr, err := workload.Generate(workloadGenSpec())
	if err != nil {
		b.Fatal(err)
	}
	// Pre-built outcomes: a pure-summarization benchmark, no HTTP or
	// dispatch cost. Statuses cycle so every outcome class is exercised.
	outcomes := make([]workload.Outcome, len(tr.Requests))
	for i := range tr.Requests {
		o := workload.Outcome{
			Index:  i,
			Cohort: tr.Requests[i].Cohort,
			AtNs:   tr.Requests[i].AtNs,
			Status: 200,
		}
		switch i % 50 {
		case 7:
			o.Status = 429
		case 23:
			o.Status = 504
		default:
			o.Tau = float64(tr.Requests[i].N) * 1e-3
			o.LatencyNs = int64(tr.Requests[i].N) * 1e6
		}
		outcomes[i] = o
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sum := workload.Summarize(tr, outcomes, workload.SummarizeOptions{Mode: workload.ModeVirtual})
		if sum.Requests != len(outcomes) || sum.Total.OK == 0 {
			b.Fatalf("bad summary: %d requests, %d ok", sum.Requests, sum.Total.OK)
		}
	}
}
