package machine

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestPresetValidate(t *testing.T) {
	for _, p := range []*PEType{NewAthlon(), NewPentiumII()} {
		if err := p.Validate(); err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
	}
	for _, n := range []*Node{NewAthlonNode("n1"), NewPentiumIINode("n2")} {
		if err := n.Validate(); err != nil {
			t.Fatalf("%s: %v", n.Name, err)
		}
	}
}

func TestValidateRejectsBadParams(t *testing.T) {
	var nilPE *PEType
	if err := nilPE.Validate(); err == nil {
		t.Fatal("nil PE must fail")
	}
	p := NewAthlon()
	p.GemmPeak = 0
	if err := p.Validate(); err == nil {
		t.Fatal("zero peak must fail")
	}
	p = NewAthlon()
	p.MPOverhead = -1
	if err := p.Validate(); err == nil {
		t.Fatal("negative overhead must fail")
	}
	n := NewAthlonNode("x")
	n.CPUs = 0
	if err := n.Validate(); err == nil {
		t.Fatal("zero CPUs must fail")
	}
	n = NewAthlonNode("x")
	n.MemoryBytes = 0
	if err := n.Validate(); err == nil {
		t.Fatal("no memory must fail")
	}
	var nilNode *Node
	if err := nilNode.Validate(); err == nil {
		t.Fatal("nil node must fail")
	}
}

func TestAthlonFasterThanPII(t *testing.T) {
	a, p2 := NewAthlon(), NewPentiumII()
	ta := a.KernelTime(KindGemm, 1000, 1000, 64)
	tp := p2.KernelTime(KindGemm, 1000, 1000, 64)
	ratio := tp / ta
	if ratio < 3.5 || ratio > 6 {
		t.Fatalf("Athlon/P-II speed ratio = %.2f, want ~4-5 (paper)", ratio)
	}
}

func TestGemmEfficiencyRampsWithSize(t *testing.T) {
	a := NewAthlon()
	rate := func(n int) float64 {
		tm := a.KernelTime(KindGemm, n, n, 64)
		return 2 * float64(n) * float64(n) * 64 / tm
	}
	small, mid, large := rate(100), rate(1000), rate(6000)
	if !(small < mid && mid < large) {
		t.Fatalf("efficiency not monotone: %v %v %v", small, mid, large)
	}
	if large > a.GemmPeak {
		t.Fatalf("rate %v exceeds peak %v", large, a.GemmPeak)
	}
	// Large problems should reach at least 85%% of peak.
	if large < 0.85*a.GemmPeak {
		t.Fatalf("large-problem rate %v below 85%% of peak %v", large, a.GemmPeak)
	}
}

func TestKernelTimeDegenerateDims(t *testing.T) {
	a := NewAthlon()
	if got := a.KernelTime(KindGemm, 0, 10, 10); got != a.CallOverhead {
		t.Fatalf("zero-dim GEMM = %v, want pure overhead", got)
	}
	if got := a.KernelTime(KindPanel, 0, 10, 0); got != a.CallOverhead {
		t.Fatalf("zero-flop panel = %v", got)
	}
	if got := a.KernelTime(KindRowOp, -5, 10, 0); got != a.CallOverhead {
		t.Fatalf("negative rowop = %v", got)
	}
}

func TestKernelTimeUnknownKindPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewAthlon().KernelTime(Kind(99), 1, 1, 1)
}

func TestKindString(t *testing.T) {
	if KindGemm.String() != "gemm" || KindPanel.String() != "panel" || KindRowOp.String() != "rowop" {
		t.Fatal("Kind strings wrong")
	}
	if !strings.Contains(Kind(7).String(), "7") {
		t.Fatal("unknown kind string")
	}
}

func TestMultiprocFactor(t *testing.T) {
	a := NewAthlon()
	if f := a.MultiprocFactor(1); f != 1 {
		t.Fatalf("single process factor = %v", f)
	}
	if f := a.MultiprocFactor(0); f != 1 {
		t.Fatalf("zero resident factor = %v", f)
	}
	f2 := a.MultiprocFactor(2)
	if f2 <= 2 {
		t.Fatalf("two processes must cost more than 2x, got %v", f2)
	}
	f4 := a.MultiprocFactor(4)
	if f4 <= f2 {
		t.Fatal("factor must grow with residency")
	}
	// Overhead should be modest (paper Fig. 1(b)): 4 processes lose less
	// than ~25% over perfect sharing.
	if f4 > 4*1.25 {
		t.Fatalf("4-process overhead too harsh: %v", f4)
	}
}

func TestPressureFactor(t *testing.T) {
	a := NewAthlon()
	if f := a.PressureFactor(100, 200); f != 1 {
		t.Fatalf("under-memory factor = %v", f)
	}
	if f := a.PressureFactor(100, 0); f != 1 {
		t.Fatalf("zero-memory guard = %v", f)
	}
	f := a.PressureFactor(240, 200) // 20% over
	if f <= 1 {
		t.Fatal("over-memory must slow down")
	}
	if f2 := a.PressureFactor(400, 200); f2 <= f {
		t.Fatal("more pressure must slow down more")
	}
}

// Property: kernel time is positive and monotone in each GEMM dimension.
func TestKernelTimeMonotoneProperty(t *testing.T) {
	pe := NewPentiumII()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, n, k := 1+rng.Intn(500), 1+rng.Intn(500), 1+rng.Intn(64)
		t0 := pe.KernelTime(KindGemm, m, n, k)
		if t0 <= 0 || math.IsNaN(t0) {
			return false
		}
		return pe.KernelTime(KindGemm, m+100, n, k) >= t0 &&
			pe.KernelTime(KindGemm, m, n+100, k) >= t0 &&
			pe.KernelTime(KindGemm, m, n, k+8) >= t0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: multiprocessing factor is superlinear but bounded by
// M·(1+MPOverhead·(M−1)).
func TestMultiprocFactorBoundsProperty(t *testing.T) {
	pe := NewAthlon()
	f := func(mRaw uint8) bool {
		m := int(mRaw%8) + 1
		got := pe.MultiprocFactor(m)
		want := float64(m) * (1 + pe.MPOverhead*float64(m-1))
		return math.Abs(got-want) < 1e-12 && got >= float64(m)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEffBounds(t *testing.T) {
	if eff(0, 10) != 0 {
		t.Fatal("eff(0) != 0")
	}
	if eff(10, 0) != 1 {
		t.Fatal("eff with zero half != 1")
	}
	if e := eff(10, 10); e != 0.5 {
		t.Fatalf("eff at half-dim = %v", e)
	}
	if eff(-4, 10) != 0 {
		t.Fatal("negative size should clamp to 0")
	}
}

func TestExtendedPresetsValid(t *testing.T) {
	for _, p := range []*PEType{NewPentiumIII(), NewAthlonMP()} {
		if err := p.Validate(); err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
	}
	for _, n := range []*Node{NewPentiumIIINode("p3"), NewAthlonMPNode("amp")} {
		if err := n.Validate(); err != nil {
			t.Fatalf("%s: %v", n.Name, err)
		}
	}
	// Speed ordering: P-II < P-III < AthlonMP <= Athlon.
	rate := func(p *PEType) float64 {
		return 2 * 1000 * 1000 * 64 / p.KernelTime(KindGemm, 1000, 1000, 64)
	}
	if !(rate(NewPentiumII()) < rate(NewPentiumIII()) &&
		rate(NewPentiumIII()) < rate(NewAthlonMP()) &&
		rate(NewAthlonMP()) <= rate(NewAthlon())) {
		t.Fatal("preset speed ordering violated")
	}
}
