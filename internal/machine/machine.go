// Package machine models the processing elements (PEs) and nodes of the
// simulated heterogeneous cluster. It substitutes for the paper's physical
// testbed (one Athlon 1.33 GHz node plus four dual Pentium-II 400 MHz nodes,
// 768 MB each — paper Table 1).
//
// The model is deliberately richer than the paper's estimation model: kernel
// efficiency depends on operand sizes (per-call overhead and a half-
// performance dimension n_1/2), multiprocessing incurs a super-linear
// overhead, and exceeding node memory incurs a severe swap penalty. These
// are exactly the second-order effects the paper's semi-empirical fit must
// absorb, so they are what make the reproduction non-trivial: the Basic/NL
// campaigns must average them out while the NS campaign is misled by them.
package machine

import (
	"errors"
	"fmt"
)

// Kind distinguishes computational kernel classes with different achievable
// rates.
type Kind int

const (
	// KindGemm is matrix-matrix multiply (the HPL update); compute bound.
	KindGemm Kind = iota
	// KindPanel is panel factorization (pfact); partially memory bound.
	KindPanel
	// KindRowOp is a row-wise O(N²) operation (laswp copies, uptrsv);
	// memory bound.
	KindRowOp
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindGemm:
		return "gemm"
	case KindPanel:
		return "panel"
	case KindRowOp:
		return "rowop"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// ErrBadPE reports an invalid PE specification.
var ErrBadPE = errors.New("machine: invalid PE parameters")

// PEType describes one processor model.
type PEType struct {
	// Name identifies the PE model (e.g. "Athlon-1333").
	Name string
	// GemmPeak is the asymptotic DGEMM rate in flop/s.
	GemmPeak float64
	// PanelPeak is the asymptotic panel-factorization rate in flop/s.
	PanelPeak float64
	// RowOpPeak is the asymptotic rate for memory-bound row operations.
	RowOpPeak float64
	// HalfDim is the operand dimension at which kernels reach half their
	// asymptotic rate (the classic n_1/2). Larger values mean efficiency
	// ramps up more slowly with problem size.
	HalfDim float64
	// KHalf is the n_1/2 for the inner (k) dimension of GEMM, controlling
	// how block size NB translates to efficiency.
	KHalf float64
	// CallOverhead is the fixed cost per kernel invocation in seconds
	// (library call, loop setup, TLB warmup).
	CallOverhead float64
	// MPOverhead is the extra relative cost per additional resident
	// process on the same CPU (scheduler and cache interference): running
	// M processes costs M·(1+MPOverhead·(M−1)) of single-process time.
	MPOverhead float64
	// YieldTax is the residual slowdown per co-resident process during
	// phases where only one process computes (panel factorization,
	// backward substitution) while its siblings wait in a yielding spin
	// loop: cache pollution and scheduler passes cost
	// 1 + YieldTax·(M−1) of single-process time.
	YieldTax float64
	// SwapSlope scales the slowdown when a node's resident set exceeds
	// its memory: time is multiplied by 1 + SwapSlope·(excess ratio).
	SwapSlope float64
}

// Validate reports whether the PE parameters are physically meaningful.
func (p *PEType) Validate() error {
	switch {
	case p == nil:
		return fmt.Errorf("%w: nil", ErrBadPE)
	case p.GemmPeak <= 0 || p.PanelPeak <= 0 || p.RowOpPeak <= 0:
		return fmt.Errorf("%w: %s has nonpositive peak rate", ErrBadPE, p.Name)
	case p.HalfDim < 0 || p.KHalf < 0 || p.CallOverhead < 0 || p.MPOverhead < 0 || p.YieldTax < 0 || p.SwapSlope < 0:
		return fmt.Errorf("%w: %s has negative parameter", ErrBadPE, p.Name)
	}
	return nil
}

// eff is the classic pipeline-efficiency ramp s/(s+half).
func eff(s, half float64) float64 {
	if half <= 0 {
		return 1
	}
	if s <= 0 {
		return 0
	}
	return s / (s + half)
}

// KernelTime returns the single-process execution time in seconds of one
// kernel invocation on an otherwise idle PE.
//
// For KindGemm, (m, n, k) are the GEMM dimensions (flops = 2·m·n·k) and the
// efficiency depends on both the outer size min(m, n) and the inner size k.
// For KindPanel and KindRowOp, flops are passed via m (n and k ignored by
// convention flops = m) and efficiency depends on the row length n.
func (p *PEType) KernelTime(kind Kind, m, n, k int) float64 {
	switch kind {
	case KindGemm:
		if m <= 0 || n <= 0 || k <= 0 {
			return p.CallOverhead
		}
		flops := 2 * float64(m) * float64(n) * float64(k)
		outer := float64(m)
		if n < m {
			outer = float64(n)
		}
		rate := p.GemmPeak * eff(outer, p.HalfDim) * eff(float64(k), p.KHalf)
		if rate <= 0 {
			return p.CallOverhead
		}
		return p.CallOverhead + flops/rate
	case KindPanel:
		if m <= 0 {
			return p.CallOverhead
		}
		rate := p.PanelPeak * eff(float64(n), p.HalfDim)
		if rate <= 0 {
			return p.CallOverhead
		}
		return p.CallOverhead + float64(m)/rate
	case KindRowOp:
		if m <= 0 {
			return p.CallOverhead
		}
		rate := p.RowOpPeak * eff(float64(n), p.HalfDim/4)
		if rate <= 0 {
			return p.CallOverhead
		}
		return p.CallOverhead + float64(m)/rate
	default:
		panic(fmt.Sprintf("machine: unknown kernel kind %d", kind))
	}
}

// MultiprocFactor returns the multiplier (>= resident) applied to kernel
// times during phases where all `resident` processes on this CPU compute
// concurrently (the HPL update): fair-share division by M plus the
// scheduling/cache interference overhead.
func (p *PEType) MultiprocFactor(resident int) float64 {
	if resident <= 1 {
		return 1
	}
	m := float64(resident)
	return m * (1 + p.MPOverhead*(m-1))
}

// SoloFactor returns the multiplier (>= 1) applied to kernel times during
// phases where one resident process computes while its siblings wait in a
// yielding spin loop (panel factorization, backward substitution).
func (p *PEType) SoloFactor(resident int) float64 {
	if resident <= 1 {
		return 1
	}
	return 1 + p.YieldTax*float64(resident-1)
}

// PressureFactor returns the multiplier (>= 1) applied to kernel times when
// a node's resident data set exceeds its physical memory (paging).
func (p *PEType) PressureFactor(residentBytes, memoryBytes float64) float64 {
	if memoryBytes <= 0 || residentBytes <= memoryBytes {
		return 1
	}
	excess := residentBytes/memoryBytes - 1
	return 1 + p.SwapSlope*excess
}

// Node is one physical machine: identical CPUs sharing memory and a network
// interface.
type Node struct {
	// Name identifies the node (e.g. "node1").
	Name string
	// Type is the CPU model installed in this node.
	Type *PEType
	// CPUs is the number of processors (the paper's P-II nodes are dual).
	CPUs int
	// MemoryBytes is the physical memory shared by all CPUs of the node.
	MemoryBytes float64
}

// Validate reports whether the node specification is usable.
func (n *Node) Validate() error {
	if n == nil {
		return fmt.Errorf("%w: nil node", ErrBadPE)
	}
	if err := n.Type.Validate(); err != nil {
		return fmt.Errorf("node %s: %w", n.Name, err)
	}
	if n.CPUs <= 0 {
		return fmt.Errorf("%w: node %s has %d CPUs", ErrBadPE, n.Name, n.CPUs)
	}
	if n.MemoryBytes <= 0 {
		return fmt.Errorf("%w: node %s has no memory", ErrBadPE, n.Name)
	}
	return nil
}

const mib = 1024 * 1024

// NewAthlon returns the PE model calibrated to the paper's AMD Athlon
// 1.33 GHz (effective HPL rate ≈ 1.0–1.2 Gflop/s, about 4–5× a P-II 400).
func NewAthlon() *PEType {
	return &PEType{
		Name:         "Athlon-1333",
		GemmPeak:     1.33e9,
		PanelPeak:    0.45e9,
		RowOpPeak:    0.30e9,
		HalfDim:      95,
		KHalf:        5,
		CallOverhead: 18e-6,
		MPOverhead:   0.055,
		YieldTax:     0.08,
		SwapSlope:    30,
	}
}

// NewPentiumII returns the PE model calibrated to the paper's Intel
// Pentium-II 400 MHz (effective HPL rate ≈ 0.24–0.27 Gflop/s).
func NewPentiumII() *PEType {
	return &PEType{
		Name:         "PentiumII-400",
		GemmPeak:     0.295e9,
		PanelPeak:    0.11e9,
		RowOpPeak:    0.085e9,
		HalfDim:      70,
		KHalf:        4,
		CallOverhead: 45e-6,
		MPOverhead:   0.06,
		YieldTax:     0.1,
		SwapSlope:    30,
	}
}

// NewAthlonNode returns the paper's Node 1 (single Athlon, 768 MB).
func NewAthlonNode(name string) *Node {
	return &Node{Name: name, Type: NewAthlon(), CPUs: 1, MemoryBytes: 768 * mib}
}

// NewPentiumIINode returns one of the paper's Nodes 2–5 (dual P-II, 768 MB).
func NewPentiumIINode(name string) *Node {
	return &Node{Name: name, Type: NewPentiumII(), CPUs: 2, MemoryBytes: 768 * mib}
}

// NewPentiumIII returns a Pentium-III 800 MHz model (a plausible mid-tier
// upgrade of the paper's era) for experiments beyond the paper's testbed.
func NewPentiumIII() *PEType {
	return &PEType{
		Name:         "PentiumIII-800",
		GemmPeak:     0.62e9,
		PanelPeak:    0.22e9,
		RowOpPeak:    0.16e9,
		HalfDim:      80,
		KHalf:        4,
		CallOverhead: 30e-6,
		MPOverhead:   0.05,
		YieldTax:     0.09,
		SwapSlope:    30,
	}
}

// NewAthlonMP returns a dual-capable Athlon MP 1.2 GHz model.
func NewAthlonMP() *PEType {
	return &PEType{
		Name:         "AthlonMP-1200",
		GemmPeak:     1.2e9,
		PanelPeak:    0.42e9,
		RowOpPeak:    0.28e9,
		HalfDim:      95,
		KHalf:        5,
		CallOverhead: 18e-6,
		MPOverhead:   0.055,
		YieldTax:     0.08,
		SwapSlope:    30,
	}
}

// NewPentiumIIINode returns a single-CPU P-III node with 512 MB.
func NewPentiumIIINode(name string) *Node {
	return &Node{Name: name, Type: NewPentiumIII(), CPUs: 1, MemoryBytes: 512 * mib}
}

// NewAthlonMPNode returns a dual Athlon MP node with 1 GiB.
func NewAthlonMPNode(name string) *Node {
	return &Node{Name: name, Type: NewAthlonMP(), CPUs: 2, MemoryBytes: 1024 * mib}
}
