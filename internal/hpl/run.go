package hpl

import (
	"fmt"
	"sync"
	"sync/atomic"

	"hetmodel/internal/cluster"
	"hetmodel/internal/machine"
	"hetmodel/internal/vmpi"
)

// Layout captures the 1×P block-cyclic column distribution arithmetic. It
// is shared with the other distributed applications built on the same
// distribution (internal/chol).
type Layout struct {
	n, nb, p  int
	numPanels int
}

// NewLayout returns the layout of an n-column matrix split into nb-wide
// panels dealt round-robin over p ranks.
func NewLayout(n, nb, p int) Layout {
	return Layout{n: n, nb: nb, p: p, numPanels: (n + nb - 1) / nb}
}

// N returns the matrix order.
func (l Layout) N() int { return l.n }

// NB returns the panel width.
func (l Layout) NB() int { return l.nb }

// P returns the rank count.
func (l Layout) P() int { return l.p }

// NumPanels returns the number of panels.
func (l Layout) NumPanels() int { return l.numPanels }

// Owner returns the rank owning global panel j.
func (l Layout) Owner(j int) int { return j % l.p }

// Width returns the column count of panel j (only the last may be partial).
func (l Layout) Width(j int) int {
	w := l.n - j*l.nb
	if w > l.nb {
		w = l.nb
	}
	return w
}

// LocalCols returns the number of columns rank r owns.
func (l Layout) LocalCols(r int) int {
	total := 0
	for j := r; j < l.numPanels; j += l.p {
		total += l.Width(j)
	}
	return total
}

// LocalOffset returns the local column offset of global panel j on its
// owner (all earlier owned panels are full width).
func (l Layout) LocalOffset(j int) int { return (j / l.p) * l.nb }

// TrailingLocalCols returns how many of rank r's columns lie strictly right
// of panel j.
func (l Layout) TrailingLocalCols(r, j int) int {
	total := 0
	for jj := r; jj < l.numPanels; jj += l.p {
		if jj > j {
			total += l.Width(jj)
		}
	}
	return total
}

// panelMsg is the broadcast payload: the factored panel and its pivot rows.
// In phantom mode both fields are nil — only the modelled byte size travels.
type panelMsg struct {
	// L holds the factored panel (m×nb): U in rows [0,nb), multipliers
	// below.
	L *matrixPayload
	// Pivots are the global pivot rows chosen for each panel column.
	Pivots []int

	// refs counts the ranks still reading L; the last release returns the
	// backing buffer to bufs so the next panel reuses it instead of
	// allocating. Panel sizes shrink monotonically, so recycled buffers
	// always fit. nil bufs (phantom mode) makes release a no-op.
	refs   atomic.Int32
	bufs   *sync.Pool
	bufPtr *[]float64
}

// release signals that this rank is done with the panel's matrix. Safe to
// call once per receiving rank; the atomic decrement plus sync.Pool give
// the happens-before edges reuse needs under the race detector.
func (pm *panelMsg) release() {
	if pm == nil || pm.bufs == nil {
		return
	}
	if pm.refs.Add(-1) == 0 {
		pm.bufs.Put(pm.bufPtr)
		pm.bufs = nil
	}
}

// Run executes HPL for the configuration on the cluster and returns the
// detailed result. It is safe for concurrent use across distinct runs.
func Run(cl *cluster.Cluster, cfg cluster.Configuration, params Params) (*Result, error) {
	params = params.withDefaults()
	if err := params.validate(); err != nil {
		return nil, err
	}
	pl, err := cl.Place(cfg)
	if err != nil {
		return nil, err
	}
	P := pl.P()
	lay := NewLayout(params.N, params.NB, P)
	if params.N < P {
		return nil, fmt.Errorf("%w: N=%d smaller than P=%d", ErrBadParams, params.N, P)
	}

	// Static compute multipliers: multiprocessing share and memory
	// pressure (resident set is constant across the run).
	nodeBytes := pl.NodeResidentBytes(func(rank int) float64 {
		return 8*float64(params.N)*float64(lay.LocalCols(rank)) +
			8*float64(params.N)*float64(params.NB) +
			params.WorkspaceBytes
	})
	// mulBusy applies to phases where all co-resident processes compute
	// (update, laswp); mulSolo to phases where one computes while siblings
	// yield (pfact, uptrsv).
	mulBusy := make([]float64, P)
	mulSolo := make([]float64, P)
	cfgKey := cfg.Key()
	offsets := make([]float64, P)
	for r := 0; r < P; r++ {
		rp := pl.Ranks[r]
		pressure := rp.Type.PressureFactor(nodeBytes[rp.NodeID], rp.Node.MemoryBytes)
		jitter, offset := RunNoise(params.Seed, params.N, cfgKey, r, params.Noise, params.NoiseAbs)
		mulBusy[r] = rp.Type.MultiprocFactor(rp.Resident) * pressure * jitter
		mulSolo[r] = rp.Type.SoloFactor(rp.Resident) * pressure * jitter
		offsets[r] = offset
	}

	// Numeric state per rank plus the pivot record (owner-written,
	// disjoint indices, read only after the world drains).
	var states []*numState
	pivots := make([][]int, lay.NumPanels())
	if params.Numeric {
		states = make([]*numState, P)
		panelBufs := new(sync.Pool)
		for r := 0; r < P; r++ {
			states[r] = newNumState(lay, r, params.Seed)
			states[r].bufs = panelBufs
		}
	}

	world, err := vmpi.NewWorld(P, pl.TransferTime)
	if err != nil {
		return nil, err
	}
	world.SetRendezvous(pl.Rendezvous)
	world.SetTracer(params.Tracer)
	res := NewResultShell(params, cfg.Normalize(), P)
	chainTag := func(j int) int { return lay.NumPanels() + j }
	barrierTag := 2*lay.NumPanels() + 16

	world.Run(func(p *vmpi.Proc) {
		rank := p.Rank()
		rp := pl.Ranks[rank]
		var st *numState
		if states != nil {
			st = states[rank]
		}
		var t RankTiming
		myCols := lay.LocalCols(rank)
		// Depth-1 lookahead state: a panel factored ahead of schedule and
		// whose broadcast this rank (as owner) already initiated.
		var pending *panelMsg
		pendingJ, earlySent := -1, -1

		for j := 0; j < lay.NumPanels(); j++ {
			o := lay.Owner(j)
			nb := lay.Width(j)
			row0 := j * params.NB
			m := params.N - row0

			var payload *panelMsg
			if rank == o {
				if pendingJ == j {
					// Factored ahead during the previous iteration.
					payload = pending
					pending, pendingJ = nil, -1
				} else {
					flops := float64(nb) * float64(nb) * (float64(m) - float64(nb)/3)
					dt := rp.Type.KernelTime(machine.KindPanel, int(flops), m, 0) * mulSolo[rank]
					p.Advance(dt)
					t.Pfact += dt
					if st != nil {
						payload = st.factorPanel(j)
						pivots[j] = payload.Pivots
					} else {
						payload = &panelMsg{}
					}
				}
			}

			var pm *panelMsg
			if rank == o && earlySent == j {
				// The owner's share of this broadcast already went out.
				pm = payload
				earlySent = -1
			} else {
				bytes := 8 * float64(m*nb+nb)
				data, elapsed := p.Bcast(o, j, payload, bytes, params.Bcast)
				pivFrac := 1.0 / float64(m+1)
				t.Mxswp += elapsed * pivFrac
				t.Bcast += elapsed * (1 - pivFrac)
				pm, _ = data.(*panelMsg)
			}

			// Row interchanges on every local column outside the panel.
			cOther := myCols
			if rank == o {
				cOther -= nb
			}
			if cOther > 0 {
				elems := 2 * nb * cOther
				dt := rp.Type.KernelTime(machine.KindRowOp, elems, cOther, 0) * mulBusy[rank]
				p.Advance(dt)
				t.Laswp += dt
				if st != nil && pm != nil {
					st.applySwaps(j, pm.Pivots)
				}
			}

			// Trailing update: dtrsm on the U12 strip plus dgemm. With
			// lookahead, the owner of the next panel updates and factors
			// it first, starts its broadcast, and only then finishes the
			// rest of the trailing update.
			ct := lay.TrailingLocalCols(rank, j)
			nextJ := j + 1
			if params.Lookahead && ct > 0 && nextJ < lay.NumPanels() && lay.Owner(nextJ) == rank {
				wNext := lay.Width(nextJ)
				charge := func(cols int) {
					if cols <= 0 {
						return
					}
					dtTrsm := 0.5 * rp.Type.KernelTime(machine.KindGemm, nb, cols, nb)
					dtGemm := rp.Type.KernelTime(machine.KindGemm, m-nb, cols, nb)
					dt := (dtTrsm + dtGemm) * mulBusy[rank]
					p.Advance(dt)
					t.Update += dt
				}
				charge(wNext)
				if st != nil && pm != nil {
					st.updateFiltered(j, pm, func(jj int) bool { return jj == nextJ })
				}
				mNext := params.N - nextJ*params.NB
				nbNext := lay.Width(nextJ)
				flops := float64(nbNext) * float64(nbNext) * (float64(mNext) - float64(nbNext)/3)
				dt := rp.Type.KernelTime(machine.KindPanel, int(flops), mNext, 0) * mulSolo[rank]
				p.Advance(dt)
				t.Pfact += dt
				if st != nil {
					pending = st.factorPanel(nextJ)
					pivots[nextJ] = pending.Pivots
				} else {
					pending = &panelMsg{}
				}
				pendingJ = nextJ
				// Initiate the next panel's broadcast early (the owner's
				// share only; receivers pick it up at their own pace).
				bytesNext := 8 * float64(mNext*nbNext+nbNext)
				_, e := p.Bcast(rank, nextJ, pending, bytesNext, params.Bcast)
				t.Bcast += e
				earlySent = nextJ
				charge(ct - wNext)
				if st != nil && pm != nil {
					st.updateFiltered(j, pm, func(jj int) bool { return jj != nextJ })
				}
			} else if ct > 0 {
				dtTrsm := 0.5 * rp.Type.KernelTime(machine.KindGemm, nb, ct, nb)
				dtGemm := rp.Type.KernelTime(machine.KindGemm, m-nb, ct, nb)
				dt := (dtTrsm + dtGemm) * mulBusy[rank]
				p.Advance(dt)
				t.Update += dt
				if st != nil && pm != nil {
					st.update(j, pm)
				}
			}

			// This rank is done reading the panel; the last releaser hands
			// the matrix buffer back for the next panel.
			pm.release()
		}

		// Backward substitution: a right-to-left chain over panel owners
		// carrying the running right-hand side (N doubles per hop).
		for j := lay.NumPanels() - 1; j >= 0; j-- {
			if lay.Owner(j) != rank {
				continue
			}
			nb := lay.Width(j)
			row0 := j * params.NB
			if j < lay.NumPanels()-1 && lay.Owner(j+1) != rank {
				_, wait := p.Recv(lay.Owner(j+1), chainTag(j+1))
				t.Uptrsv += wait
			}
			elems := nb*nb + 2*row0*nb
			rowLen := row0
			if rowLen < nb {
				rowLen = nb
			}
			dt := rp.Type.KernelTime(machine.KindRowOp, elems, rowLen, 0) * mulSolo[rank]
			p.Advance(dt)
			t.Uptrsv += dt
			if j > 0 && lay.Owner(j-1) != rank {
				t.Uptrsv += p.Send(lay.Owner(j-1), chainTag(j), nil, 8*float64(params.N))
			}
		}

		// Absolute measurement jitter lands in the dominant (update)
		// phase.
		if off := offsets[rank]; off > 0 {
			p.Advance(off)
			t.Update += off
		}
		t.Wall = p.Clock()
		res.PerRank[rank] = t
		p.Barrier(barrierTag) // drain the world; not timed
	})

	FinalizeResult(res, pl, len(cl.Classes), FlopCount(params.N))
	if params.Numeric {
		if err := res.validate(lay, states, pivots); err != nil {
			return nil, err
		}
	}
	return res, nil
}
