package hpl

import (
	"math/rand"
	"testing"
)

// TestNoisePairMatchesMathRand pins RunNoise's skip-ahead to the reference
// stream: for any seed, noisePair must reproduce the first two Float64
// draws of rand.New(rand.NewSource(seed)) bit-for-bit. The phantom-mode
// measurements — and through them the fitted models and selected optima the
// paper tables assert — depend on this exact stream.
func TestNoisePairMatchesMathRand(t *testing.T) {
	if !fastNoiseOK {
		t.Fatal("init cross-check disabled the skip-ahead; the math/rand stream changed")
	}
	check := func(s int64) {
		t.Helper()
		ref := rand.New(rand.NewSource(s))
		w1, w2 := ref.Float64(), ref.Float64()
		g1, g2, ok := noisePair(s)
		if !ok {
			t.Fatalf("seed %d: skip-ahead exhausted its draws", s)
		}
		if g1 != w1 || g2 != w2 {
			t.Fatalf("seed %d: noisePair = (%v, %v), want (%v, %v)", s, g1, g2, w1, w2)
		}
	}
	for _, s := range []int64{0, 1, -1, 89482311, lehmerM, lehmerM + 1, -lehmerM,
		1<<62 + 12345, -(1 << 62), 1<<63 - 1, -(1 << 63)} {
		check(s)
	}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 20000; i++ {
		check(int64(rng.Uint64()))
	}
}

// TestRunNoiseDeterministic asserts repeated calls agree and distinct run
// identities decorrelate.
func TestRunNoiseDeterministic(t *testing.T) {
	f1, o1 := RunNoise(42, 2400, "1,4;8,1", 3, 0.05, 1e-3)
	f2, o2 := RunNoise(42, 2400, "1,4;8,1", 3, 0.05, 1e-3)
	if f1 != f2 || o1 != o2 {
		t.Fatalf("RunNoise not reproducible: (%v,%v) vs (%v,%v)", f1, o1, f2, o2)
	}
	g, _ := RunNoise(42, 2400, "1,4;8,1", 4, 0.05, 1e-3)
	if f1 == g {
		t.Fatal("distinct ranks produced identical noise factors")
	}
	if f1 < 0.95 || f1 > 1.05 {
		t.Fatalf("factor %v outside 1±amp", f1)
	}
	if o1 < 0 || o1 >= 2e-3 {
		t.Fatalf("offset %v outside [0, 2·absAmp)", o1)
	}
}

// TestRunNoiseZeroAmpIdentity asserts the no-noise fast path.
func TestRunNoiseZeroAmpIdentity(t *testing.T) {
	f, o := RunNoise(1, 100, "k", 0, 0, 0)
	if f != 1 || o != 0 {
		t.Fatalf("zero-amplitude noise = (%v, %v), want (1, 0)", f, o)
	}
}
