package hpl

import (
	"hash/fnv"
	"math/rand"
)

// columnRNG returns a deterministic generator for global column gc, so any
// rank (and the validation step) can regenerate identical matrix columns
// without communication — the role HPL's pdmatgen plays.
func columnRNG(seed int64, gc int) *rand.Rand {
	return rand.New(rand.NewSource(seed*1_000_003 + int64(gc)*7919 + 17))
}

// GenColumn fills dst (length N) with the entries of global column gc.
// Entries are uniform in [-0.5, 0.5), HPL's distribution. Exported so the
// 2D-grid variant factorizes identical matrices.
func GenColumn(seed int64, gc int, dst []float64) {
	genColumn(seed, gc, dst)
}

// GenRHS fills dst with the shared right-hand-side vector.
func GenRHS(seed int64, dst []float64) {
	genRHS(seed, dst)
}

// genColumn fills dst (length N) with the entries of global column gc.
func genColumn(seed int64, gc int, dst []float64) {
	rng := columnRNG(seed, gc)
	for i := range dst {
		dst[i] = rng.Float64() - 0.5
	}
}

// genRHS fills dst (length N) with the right-hand-side vector, generated as
// pseudo-column index -1.
func genRHS(seed int64, dst []float64) {
	genColumn(seed, -1, dst)
}

// RunNoise returns the deterministic measurement perturbation of one rank
// of one run: a compute-rate factor 1 + amp·u (u uniform in [-1, 1)) and an
// absolute compute-time offset absAmp·u' in seconds. It hashes the run
// identity so repeated executions reproduce identical "measurements" while
// distinct (N, configuration, rank) triples decorrelate.
func RunNoise(seed int64, n int, cfgKey string, rank int, amp, absAmp float64) (factor, offset float64) {
	if amp <= 0 && absAmp <= 0 {
		return 1, 0
	}
	h := fnv.New64a()
	var buf [8]byte
	put := func(v uint64) {
		for i := 0; i < 8; i++ {
			buf[i] = byte(v >> (8 * i))
		}
		h.Write(buf[:])
	}
	put(uint64(seed))
	put(uint64(n))
	h.Write([]byte(cfgKey))
	put(uint64(rank))
	rng := rand.New(rand.NewSource(int64(h.Sum64())))
	factor = 1 + amp*(2*rng.Float64()-1)
	// Interference only ever adds time; the offset is uniform in
	// [0, 2·absAmp) so its mean is absAmp.
	offset = absAmp * 2 * rng.Float64()
	return factor, offset
}
