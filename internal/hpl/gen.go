package hpl

import (
	"hash/fnv"
	"math/rand"
	"sync"
)

// splitmix64 advances *state and returns the next value of the stream.
// It is the cheap, statistically solid generator from Steele et al.
// (SplitMix64); unlike math/rand's lagged-Fibonacci source it costs a
// handful of multiplies to seed, which matters because matrix generation
// seeds one independent stream per column so that any rank can regenerate
// any column without communication.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// unitFloat maps a uint64 to a float64 uniform in [0, 1).
func unitFloat(v uint64) float64 {
	return float64(v>>11) * (1.0 / (1 << 53))
}

// GenColumn fills dst (length N) with the entries of global column gc.
// Entries are uniform in [-0.5, 0.5), HPL's distribution. Exported so the
// 2D-grid variant factorizes identical matrices.
func GenColumn(seed int64, gc int, dst []float64) {
	genColumn(seed, gc, dst)
}

// GenRHS fills dst with the shared right-hand-side vector.
func GenRHS(seed int64, dst []float64) {
	genRHS(seed, dst)
}

// genColumn fills dst (length N) with the entries of global column gc. The
// stream is a pure function of (seed, gc), so any rank — and the validation
// step — regenerates identical columns without communication, the role
// HPL's pdmatgen plays.
func genColumn(seed int64, gc int, dst []float64) {
	state := uint64(seed)*0x9e3779b97f4a7c15 ^ uint64(int64(gc))*0xda942042e4dd58b5
	for i := range dst {
		dst[i] = unitFloat(splitmix64(&state)) - 0.5
	}
}

// genRHS fills dst (length N) with the right-hand-side vector, generated as
// pseudo-column index -1.
func genRHS(seed int64, dst []float64) {
	genColumn(seed, -1, dst)
}

// RunNoise returns the deterministic measurement perturbation of one rank
// of one run: a compute-rate factor 1 + amp·u (u uniform in [-1, 1)) and an
// absolute compute-time offset absAmp·u' in seconds. It hashes the run
// identity so repeated executions reproduce identical "measurements" while
// distinct (N, configuration, rank) triples decorrelate.
//
// The values deliberately match math/rand: the phantom-mode
// "measurements" — and thus the fitted models and the selected optima the
// paper tables assert — are a function of the exact stream of
// rand.New(rand.NewSource(h)). Seeding that generator builds a 607-word
// lagged-Fibonacci table (≈5 KB and ~1800 Lehmer steps) per rank per run,
// which dominated campaign cost, so the two draws RunNoise consumes are
// instead computed directly by noisePair's skip-ahead; an init-time
// cross-check falls back to full seeding if the streams ever diverge.
func RunNoise(seed int64, n int, cfgKey string, rank int, amp, absAmp float64) (factor, offset float64) {
	if amp <= 0 && absAmp <= 0 {
		return 1, 0
	}
	h := fnv.New64a()
	var buf [8]byte
	put := func(v uint64) {
		for i := 0; i < 8; i++ {
			buf[i] = byte(v >> (8 * i))
		}
		h.Write(buf[:])
	}
	put(uint64(seed))
	put(uint64(n))
	h.Write([]byte(cfgKey))
	put(uint64(rank))
	u1, u2 := noiseDraws(int64(h.Sum64()))
	factor = 1 + amp*(2*u1-1)
	// Interference only ever adds time; the offset is uniform in
	// [0, 2·absAmp) so its mean is absAmp.
	offset = absAmp * 2 * u2
	return factor, offset
}

// noiseDraws returns the first two Float64 values of
// rand.New(rand.NewSource(seed)), preferring the skip-ahead.
func noiseDraws(seed int64) (float64, float64) {
	if fastNoiseOK {
		if u1, u2, ok := noisePair(seed); ok {
			return u1, u2
		}
	}
	rng := noisePool.Get().(*rand.Rand)
	rng.Seed(seed)
	u1 := rng.Float64()
	u2 := rng.Float64()
	noisePool.Put(rng)
	return u1, u2
}

// noisePool recycles fallback generators across ranks and runs.
var noisePool = sync.Pool{New: func() any { return rand.New(rand.NewSource(1)) }}

// Lagged-Fibonacci skip-ahead for math/rand's rngSource.
//
// Seeding an rngSource fills vec[0..606] where vec[i] is assembled from
// three consecutive states of the Lehmer generator x ← 48271·x mod 2³¹-1
// (applications 21+3i, 22+3i, 23+3i on the normalized seed) XORed with the
// additive constant rngCooked[i]. The first Float64 draws read only
// vec[333]+vec[606], the second vec[332]+vec[605], and so on downward —
// writes cannot alias reads for the first 273 draws — so the handful of
// table entries RunNoise's two draws touch are reproduced directly:
// Lehmer states come from precomputed multipliers 48271^k mod 2³¹-1, and
// the cooked constants for indices 330–333/603–606 are mirrored below.
const (
	lehmerA = 48271
	lehmerM = 1<<31 - 1
)

// lfFeedCooked[j] = rngCooked[333-j]; lfTapCooked[j] = rngCooked[606-j].
var (
	lfFeedCooked = [4]int64{-4633371852008891965, 4287360518296753003, -1072987336855386047, 220828013409515943}
	lfTapCooked  = [4]int64{4152330101494654406, 9103922860780351547, 8382142935188824023, -2171292963361310674}

	// lfFeedPow[j][t] = 48271^(21+3·(333-j)+t) mod 2³¹-1 (tap: 606-j).
	lfFeedPow, lfTapPow [4][3]uint64

	// fastNoiseOK records whether the skip-ahead reproduces the reference
	// stream on this toolchain (verified at init; the stream is frozen by
	// the Go 1 compatibility promise, so this is a tripwire, not a branch
	// that is expected to ever go false).
	fastNoiseOK bool
)

func init() {
	pow := func(k int) uint64 {
		r, b := uint64(1), uint64(lehmerA)
		for ; k > 0; k >>= 1 {
			if k&1 == 1 {
				r = r * b % lehmerM
			}
			b = b * b % lehmerM
		}
		return r
	}
	for j := 0; j < 4; j++ {
		for t := 0; t < 3; t++ {
			lfFeedPow[j][t] = pow(21 + 3*(333-j) + t)
			lfTapPow[j][t] = pow(21 + 3*(606-j) + t)
		}
	}
	fastNoiseOK = true
	for _, s := range []int64{0, 1, -1, 89482311, lehmerM, 1<<62 + 12345, -9182736455463728190} {
		ref := rand.New(rand.NewSource(s))
		u1, u2, ok := noisePair(s)
		if !ok || u1 != ref.Float64() || u2 != ref.Float64() {
			fastNoiseOK = false
			break
		}
	}
}

// noisePair computes the first two Float64 draws of
// rand.New(rand.NewSource(seed)) via the skip-ahead. ok is false in the
// astronomically unlikely case that more than four Int63 draws are needed
// (Float64 resamples when a draw rounds to 1.0).
func noisePair(seed int64) (f1, f2 float64, ok bool) {
	s := seed % lehmerM
	if s < 0 {
		s += lehmerM
	}
	if s == 0 {
		s = 89482311
	}
	x0 := uint64(s)
	vec := func(pow *[3]uint64, cooked int64) int64 {
		u := int64(x0*pow[0]%lehmerM) << 40
		u ^= int64(x0*pow[1]%lehmerM) << 20
		u ^= int64(x0 * pow[2] % lehmerM)
		return u ^ cooked
	}
	j := 0
	draw := func() (float64, bool) {
		for ; j < 4; j++ {
			v := vec(&lfFeedPow[j], lfFeedCooked[j]) + vec(&lfTapPow[j], lfTapCooked[j])
			f := float64(int64(uint64(v)&(1<<63-1))) / (1 << 63)
			if f != 1 {
				j++
				return f, true
			}
		}
		return 0, false
	}
	f1, ok = draw()
	if !ok {
		return 0, 0, false
	}
	f2, ok = draw()
	return f1, f2, ok
}
