package hpl

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"hetmodel/internal/cluster"
	"hetmodel/internal/machine"
	"hetmodel/internal/simnet"
)

// randomConfig draws a valid paper-cluster configuration.
func randomConfig(rng *rand.Rand) cluster.Configuration {
	for {
		cfg := cluster.Configuration{Use: []cluster.ClassUse{
			{PEs: rng.Intn(2), Procs: 1 + rng.Intn(4)},
			{PEs: rng.Intn(9), Procs: 1 + rng.Intn(2)},
		}}
		if cfg.TotalProcs() > 0 {
			return cfg
		}
	}
}

// Property: for any valid configuration, the result is structurally sound —
// positive wall, phases non-negative, Wall = max rank wall, Gflops below
// the aggregate machine peak.
func TestRunStructuralInvariantsProperty(t *testing.T) {
	cl := paperCluster(t)
	peak := float64(1)*machine.NewAthlon().GemmPeak + 8*machine.NewPentiumII().GemmPeak
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cfg := randomConfig(rng)
		n := 512 + 128*rng.Intn(12)
		res, err := Run(cl, cfg, Params{N: n})
		if err != nil {
			return false
		}
		maxWall := 0.0
		for _, rt := range res.PerRank {
			if rt.Pfact < 0 || rt.Mxswp < 0 || rt.Bcast < 0 || rt.Laswp < 0 ||
				rt.Update < 0 || rt.Uptrsv < 0 || rt.Wall <= 0 {
				return false
			}
			if rt.Ta()+rt.Tc() > rt.Wall+1e-9 {
				return false
			}
			if rt.Wall > maxWall {
				maxWall = rt.Wall
			}
		}
		if math.Abs(maxWall-res.WallTime) > 1e-12 {
			return false
		}
		return res.Gflops > 0 && res.Gflops < peak/1e9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: adding Pentium-II PEs never makes the per-run traffic model
// produce a faster-than-physics result: the total time is bounded below by
// compute at the aggregate peak.
func TestRunSpeedOfLightProperty(t *testing.T) {
	cl := paperCluster(t)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cfg := randomConfig(rng)
		n := 1024 + 256*rng.Intn(8)
		res, err := Run(cl, cfg, Params{N: n, Noise: -1, NoiseAbs: -1})
		if err != nil {
			return false
		}
		var aggregate float64
		for ci, use := range cfg.Normalize().Use {
			if use.PEs == 0 {
				continue
			}
			aggregate += float64(use.PEs) * cl.Classes[ci].Type().GemmPeak
		}
		lightSpeed := FlopCount(n) / aggregate
		return res.WallTime > lightSpeed
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: the noise controls behave — disabling them makes repeated runs
// of different seeds identical; enabling them decorrelates seeds.
func TestNoiseControlProperty(t *testing.T) {
	cl := paperCluster(t)
	cfg := cluster.Configuration{Use: []cluster.ClassUse{{PEs: 1, Procs: 1}, {PEs: 4, Procs: 1}}}
	base, err := Run(cl, cfg, Params{N: 1024, Seed: 1, Noise: -1, NoiseAbs: -1})
	if err != nil {
		t.Fatal(err)
	}
	other, err := Run(cl, cfg, Params{N: 1024, Seed: 2, Noise: -1, NoiseAbs: -1})
	if err != nil {
		t.Fatal(err)
	}
	if base.WallTime != other.WallTime {
		t.Fatal("noise-free runs should not depend on the seed")
	}
	noisy1, _ := Run(cl, cfg, Params{N: 1024, Seed: 1})
	noisy2, _ := Run(cl, cfg, Params{N: 1024, Seed: 2})
	if noisy1.WallTime == noisy2.WallTime {
		t.Fatal("noisy runs should depend on the seed")
	}
}

// The bcast ablation invariant at scale: binomial never loses badly to ring
// on this small cluster, and both finish.
func TestBcastAlgorithmsComparable(t *testing.T) {
	cl := paperCluster(t)
	cfg := cluster.Configuration{Use: []cluster.ClassUse{{PEs: 1, Procs: 2}, {PEs: 8, Procs: 1}}}
	ring, err := Run(cl, cfg, Params{N: 2048})
	if err != nil {
		t.Fatal(err)
	}
	binom, err := Run(cl, cfg, Params{N: 2048, Bcast: 1})
	if err != nil {
		t.Fatal(err)
	}
	ratio := binom.WallTime / ring.WallTime
	if ratio < 0.5 || ratio > 2 {
		t.Fatalf("bcast algorithms diverge wildly: ratio %.2f", ratio)
	}
}

// Gigabit networking must beat 100base-TX for communication-heavy runs.
func TestGigabitBeatsFastEthernet(t *testing.T) {
	lib := simnet.NewMPICH122()
	mk := func(net *simnet.Network) *cluster.Cluster {
		fabric, err := simnet.NewFabric(lib, net)
		if err != nil {
			t.Fatal(err)
		}
		athlon := cluster.Class{Name: "Athlon", Nodes: []*machine.Node{machine.NewAthlonNode("n1")}}
		pii := cluster.Class{Name: "PII"}
		for i := 0; i < 4; i++ {
			pii.Nodes = append(pii.Nodes, machine.NewPentiumIINode("p"))
		}
		cl, err := cluster.New([]cluster.Class{athlon, pii}, fabric)
		if err != nil {
			t.Fatal(err)
		}
		return cl
	}
	cfg := cluster.Configuration{Use: []cluster.ClassUse{{PEs: 1, Procs: 2}, {PEs: 8, Procs: 1}}}
	fast, err := Run(mk(simnet.NewFast100TX()), cfg, Params{N: 3200})
	if err != nil {
		t.Fatal(err)
	}
	giga, err := Run(mk(simnet.NewGigabit1000SX()), cfg, Params{N: 3200})
	if err != nil {
		t.Fatal(err)
	}
	if giga.WallTime >= fast.WallTime {
		t.Fatalf("gigabit (%.1f) should beat 100TX (%.1f)", giga.WallTime, fast.WallTime)
	}
}

// Lookahead (the overlap the paper's model ignores) must preserve the
// numerics exactly and help a communication-bound configuration.
func TestLookaheadNumericMatches(t *testing.T) {
	cl := paperCluster(t)
	for _, c := range []cluster.Configuration{
		cfg(1, 1, 0, 0),
		cfg(1, 1, 4, 1),
		cfg(1, 2, 3, 1),
	} {
		plain, err := Run(cl, c, Params{N: 120, NB: 16, Numeric: true, Seed: 11})
		if err != nil {
			t.Fatal(err)
		}
		look, err := Run(cl, c, Params{N: 120, NB: 16, Numeric: true, Seed: 11, Lookahead: true})
		if err != nil {
			t.Fatal(err)
		}
		if look.Residual > 16 {
			t.Fatalf("%s lookahead residual = %v", c, look.Residual)
		}
		for i := range plain.Solution {
			if plain.Solution[i] != look.Solution[i] {
				t.Fatalf("%s x[%d] differs: %v vs %v", c, i, plain.Solution[i], look.Solution[i])
			}
		}
	}
}

func TestLookaheadReducesWallTime(t *testing.T) {
	cl := paperCluster(t)
	c := cfg(1, 1, 8, 1) // bcast-chain heavy
	plain, err := Run(cl, c, Params{N: 4800})
	if err != nil {
		t.Fatal(err)
	}
	look, err := Run(cl, c, Params{N: 4800, Lookahead: true})
	if err != nil {
		t.Fatal(err)
	}
	if look.WallTime >= plain.WallTime {
		t.Fatalf("lookahead (%.1f) should beat no-lookahead (%.1f)", look.WallTime, plain.WallTime)
	}
}
