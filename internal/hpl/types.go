// Package hpl reproduces the High-Performance Linpack benchmark on the
// simulated cluster: a right-looking LU factorization with partial row
// pivoting on a 1-by-P block-cyclic column distribution (the process grid
// the paper evaluates), followed by backward substitution, with the detailed
// per-phase timers the paper's models are built from (HPL's
// -DHPL_DETAILED_TIMING plus the bcast timer the authors added).
//
// Two execution modes share one driver:
//
//   - Numeric: ranks hold real float64 panels, factorize them, and the
//     solution is residual-checked (validates the algorithm).
//   - Phantom: only the flop/byte-accurate virtual clocks advance (makes the
//     paper's 486-run measurement campaigns cheap).
//
// Virtual time comes from internal/machine (kernel times, multiprocessing
// and memory-pressure factors) and internal/simnet (transfer times) through
// the internal/vmpi runtime.
package hpl

import (
	"errors"
	"fmt"
	"math"

	"hetmodel/internal/cluster"
	"hetmodel/internal/vmpi"
)

// ErrBadParams reports invalid benchmark parameters.
var ErrBadParams = errors.New("hpl: invalid parameters")

// DefaultNB is the panel block size used throughout the reproduction.
const DefaultNB = 64

// Params configures one HPL run.
type Params struct {
	// N is the matrix order.
	N int
	// NB is the panel width; 0 selects DefaultNB.
	NB int
	// Numeric enables real arithmetic and the residual check.
	Numeric bool
	// Bcast selects the panel broadcast algorithm (default ring, as HPL).
	Bcast vmpi.BcastAlg
	// Seed drives the deterministic matrix generator in numeric mode.
	Seed int64
	// WorkspaceBytes is the per-process non-matrix memory footprint used
	// by the memory-pressure model; 0 selects DefaultWorkspaceBytes.
	WorkspaceBytes float64
	// Noise is the relative amplitude of the deterministic run-to-run
	// variability applied to each rank's compute rate (daemons, cache
	// state, page placement — the measurement noise real campaigns see,
	// and the reason the paper's zero-degrees-of-freedom NS fits
	// extrapolate catastrophically). 0 selects DefaultNoise; negative
	// disables noise. The perturbation is a pure function of
	// (Seed, N, configuration, rank), so runs remain reproducible.
	Noise float64
	// NoiseAbs is the absolute run-to-run jitter in seconds added to each
	// rank's compute time (scheduler interventions, page faults —
	// independent of run length, so it dominates short runs exactly as it
	// does on real hardware). 0 selects DefaultNoiseAbs; negative
	// disables.
	NoiseAbs float64
	// Tracer, when non-nil, records every compute span and message of the
	// run for timeline inspection (vmpi.Tracer.WriteChromeTrace).
	Tracer *vmpi.Tracer
	// Lookahead enables depth-1 panel lookahead: the owner of the next
	// panel updates and factorizes it before finishing the rest of its
	// trailing update, and starts the broadcast early. This deliberately
	// violates the paper's "ignore the overlap of computation and
	// communication" assumption (§3.1) — the ablation that quantifies what
	// the assumption costs.
	Lookahead bool
}

// DefaultNoise is the default relative compute-time jitter (±2%).
const DefaultNoise = 0.02

// DefaultNoiseAbs is the default absolute per-rank jitter (±0.12 s).
const DefaultNoiseAbs = 0.12

// DefaultWorkspaceBytes approximates the per-process footprint beyond the
// local matrix: MPI buffers, code, OS share (≈24 MiB, tuned so that a lone
// Athlon process degrades at N = 10000 but not at 9600, as in Figure 3(a)).
const DefaultWorkspaceBytes = 24 * 1024 * 1024

// FillDefaults returns params with zero fields replaced by defaults; shared
// with the other applications reusing this parameter set.
func FillDefaults(p Params) Params { return p.withDefaults() }

// ValidateParams checks the shared parameter constraints.
func ValidateParams(p Params) error { return p.validate() }

func (p Params) withDefaults() Params {
	if p.NB == 0 {
		p.NB = DefaultNB
	}
	if p.WorkspaceBytes == 0 {
		p.WorkspaceBytes = DefaultWorkspaceBytes
	}
	switch {
	case p.Noise == 0:
		p.Noise = DefaultNoise
	case p.Noise < 0:
		p.Noise = 0
	}
	switch {
	case p.NoiseAbs == 0:
		p.NoiseAbs = DefaultNoiseAbs
	case p.NoiseAbs < 0:
		p.NoiseAbs = 0
	}
	return p
}

func (p Params) validate() error {
	if p.N <= 0 {
		return fmt.Errorf("%w: N = %d", ErrBadParams, p.N)
	}
	if p.NB < 0 || p.WorkspaceBytes < 0 {
		return fmt.Errorf("%w: negative NB or workspace", ErrBadParams)
	}
	return nil
}

// RankTiming is the detailed per-rank phase breakdown, mirroring HPL's
// detailed timing items (Figure 4 of the paper). All values are virtual
// seconds.
type RankTiming struct {
	// Pfact is panel factorization compute (rfact − mxswp in the paper's
	// accounting: recursion overhead is folded into the panel kernel).
	Pfact float64
	// Mxswp is the pivot-bookkeeping communication inside rfact.
	Mxswp float64
	// Bcast is panel broadcast communication including wait time.
	Bcast float64
	// Laswp is the row-interchange phase (classified as communication by
	// the paper even though it moves local memory).
	Laswp float64
	// Update is the trailing-matrix update compute (dtrsm + dgemm),
	// excluding laswp.
	Update float64
	// Uptrsv is the backward-substitution phase (compute and its chain
	// communication; the paper folds the whole phase into Ta).
	Uptrsv float64
	// Wall is the rank's total virtual time.
	Wall float64
}

// Ta returns the paper's computation time:
// (rfact − mxswp) + (update − laswp) + uptrsv.
func (t RankTiming) Ta() float64 { return t.Pfact + t.Update + t.Uptrsv }

// Tc returns the paper's communication time: mxswp + laswp + bcast.
func (t RankTiming) Tc() float64 { return t.Mxswp + t.Laswp + t.Bcast }

// add accumulates phase durations.
func (t *RankTiming) add(other RankTiming) {
	t.Pfact += other.Pfact
	t.Mxswp += other.Mxswp
	t.Bcast += other.Bcast
	t.Laswp += other.Laswp
	t.Update += other.Update
	t.Uptrsv += other.Uptrsv
}

// ClassTiming aggregates the critical (slowest) rank of one PE class, the
// quantity the paper's per-PE model Ti = Tai + Tci describes.
type ClassTiming struct {
	// Used reports whether the class hosts any rank in this run.
	Used bool
	// Ta and Tc are the maxima over the class's ranks.
	Ta, Tc float64
	// Wall is the maximum rank wall time in the class.
	Wall float64
}

// Result is the outcome of one HPL run.
type Result struct {
	Params   Params
	Config   cluster.Configuration
	P        int
	PerRank  []RankTiming
	PerClass []ClassTiming
	// WallTime is the benchmark execution time (max over ranks).
	WallTime float64
	// Gflops is the HPL performance figure (2N³/3 + 3N²/2)/t/1e9.
	Gflops float64
	// Residual is the HPL-scaled residual in numeric mode, NaN otherwise.
	Residual float64
	// Solution is the solve result in numeric mode (nil otherwise).
	Solution []float64
}

// FlopCount returns the nominal HPL operation count for order n.
func FlopCount(n int) float64 {
	nf := float64(n)
	return 2.0/3.0*nf*nf*nf + 1.5*nf*nf
}

// NewResultShell allocates a Result with an empty per-rank table (used by
// the distributed applications sharing this result layout).
func NewResultShell(p Params, cfg cluster.Configuration, nRanks int) *Result {
	return newResult(p, cfg, nRanks)
}

func newResult(p Params, cfg cluster.Configuration, nRanks int) *Result {
	return &Result{
		Params:   p,
		Config:   cfg,
		P:        nRanks,
		PerRank:  make([]RankTiming, nRanks),
		Residual: math.NaN(),
	}
}

// FinalizeResult computes the aggregates once PerRank is filled, reporting
// performance against the given nominal operation count.
func FinalizeResult(r *Result, pl *cluster.Placement, classes int, flops float64) {
	r.finalize(pl, classes, flops)
}

// finalize computes aggregates once PerRank is filled.
func (r *Result) finalize(pl *cluster.Placement, classes int, flops float64) {
	r.PerClass = make([]ClassTiming, classes)
	for rank, t := range r.PerRank {
		if t.Wall > r.WallTime {
			r.WallTime = t.Wall
		}
		ci := pl.Ranks[rank].Class
		ct := &r.PerClass[ci]
		ct.Used = true
		if ta := t.Ta(); ta > ct.Ta {
			ct.Ta = ta
		}
		if tc := t.Tc(); tc > ct.Tc {
			ct.Tc = tc
		}
		if t.Wall > ct.Wall {
			ct.Wall = t.Wall
		}
	}
	if r.WallTime > 0 {
		r.Gflops = flops / r.WallTime / 1e9
	}
}
