package hpl

import (
	"fmt"
	"math"

	"hetmodel/internal/linalg"
)

// matrixPayload aliases the dense matrix type used in broadcast payloads.
type matrixPayload = linalg.Matrix

// numState is the per-rank numeric storage for a real factorization run:
// the rank's block-cyclic share of the matrix, all N rows of each owned
// column block.
type numState struct {
	lay   Layout
	rank  int
	seed  int64
	local *linalg.Matrix
}

func newNumState(lay Layout, rank int, seed int64) *numState {
	cols := lay.LocalCols(rank)
	st := &numState{lay: lay, rank: rank, seed: seed, local: linalg.NewMatrix(lay.N(), cols)}
	// Generate owned columns deterministically (HPL's pdmatgen role).
	col := make([]float64, lay.N())
	for j := rank; j < lay.NumPanels(); j += lay.P() {
		off := lay.LocalOffset(j)
		for c := 0; c < lay.Width(j); c++ {
			genColumn(seed, j*lay.NB()+c, col)
			for i := 0; i < lay.N(); i++ {
				st.local.Set(i, off+c, col[i])
			}
		}
	}
	return st
}

// factorPanel performs the unblocked partial-pivoting factorization of the
// rank's panel j (which it must own) and returns the broadcast payload: the
// factored m×nb panel and the global pivot rows. Row swaps are applied to
// the panel columns only; other columns are swapped in the laswp phase.
func (st *numState) factorPanel(j int) *panelMsg {
	lay := st.lay
	nb := lay.Width(j)
	off := lay.LocalOffset(j)
	row0 := j * lay.NB()
	m := lay.N() - row0
	pivots := make([]int, nb)

	for k := 0; k < nb; k++ {
		gr := row0 + k
		lc := off + k
		// Partial pivoting over rows gr..N-1 of this column.
		piv := gr
		maxv := math.Abs(st.local.At(gr, lc))
		for i := gr + 1; i < lay.N(); i++ {
			if v := math.Abs(st.local.At(i, lc)); v > maxv {
				maxv, piv = v, i
			}
		}
		pivots[k] = piv
		if piv != gr {
			// Swap within the panel block only.
			for c := off; c < off+nb; c++ {
				a, b := st.local.At(gr, c), st.local.At(piv, c)
				st.local.Set(gr, c, b)
				st.local.Set(piv, c, a)
			}
		}
		d := st.local.At(gr, lc)
		if d == 0 {
			// Singular column: keep zeros (multipliers stay zero), as
			// HPL would produce a failed residual rather than crash.
			continue
		}
		inv := 1 / d
		for i := gr + 1; i < lay.N(); i++ {
			st.local.Set(i, lc, st.local.At(i, lc)*inv)
		}
		// Rank-1 update of the remaining panel columns.
		for c := k + 1; c < nb; c++ {
			ucv := st.local.At(gr, off+c)
			if ucv == 0 {
				continue
			}
			for i := gr + 1; i < lay.N(); i++ {
				st.local.Set(i, off+c, st.local.At(i, off+c)-st.local.At(i, lc)*ucv)
			}
		}
	}

	// Copy the factored panel (rows row0.., panel columns) for broadcast.
	l := linalg.NewMatrix(m, nb)
	for i := 0; i < m; i++ {
		for c := 0; c < nb; c++ {
			l.Set(i, c, st.local.At(row0+i, off+c))
		}
	}
	return &panelMsg{L: l, Pivots: pivots}
}

// applySwaps applies panel j's pivots to every local column block except
// panel j itself (the laswp phase).
func (st *numState) applySwaps(j int, pivots []int) {
	lay := st.lay
	row0 := j * lay.NB()
	for jj := st.rank; jj < lay.NumPanels(); jj += lay.P() {
		if jj == j {
			continue
		}
		off := lay.LocalOffset(jj)
		w := lay.Width(jj)
		for k, piv := range pivots {
			gr := row0 + k
			if piv == gr {
				continue
			}
			for c := off; c < off+w; c++ {
				a, b := st.local.At(gr, c), st.local.At(piv, c)
				st.local.Set(gr, c, b)
				st.local.Set(piv, c, a)
			}
		}
	}
}

// update applies panel j's factors to every trailing block of the rank.
func (st *numState) update(j int, pm *panelMsg) {
	st.updateFiltered(j, pm, func(int) bool { return true })
}

// updateFiltered applies panel j's factors (U12 ← L11⁻¹·A12 then
// A22 ← A22 − L2·U12) to the rank's trailing blocks selected by keep.
func (st *numState) updateFiltered(j int, pm *panelMsg, keep func(jj int) bool) {
	lay := st.lay
	nb := lay.Width(j)
	row0 := j * lay.NB()
	m := lay.N() - row0
	// L11: unit lower triangle of the first nb panel rows.
	l11 := pm.L.Slice(0, nb, 0, nb)
	var l2 *linalg.Matrix
	if m > nb {
		l2 = pm.L.Slice(nb, m, 0, nb)
	}
	for jj := st.rank; jj < lay.NumPanels(); jj += lay.P() {
		if jj <= j || !keep(jj) {
			continue
		}
		off := lay.LocalOffset(jj)
		w := lay.Width(jj)
		a12 := st.local.Slice(row0, row0+nb, off, off+w)
		if err := linalg.SolveLowerUnit(l11, a12); err != nil {
			panic(fmt.Sprintf("hpl: trsm failed: %v", err))
		}
		if l2 != nil {
			a22 := st.local.Slice(row0+nb, lay.N(), off, off+w)
			if err := linalg.MulAdd(-1, l2, a12, a22); err != nil {
				panic(fmt.Sprintf("hpl: gemm failed: %v", err))
			}
		}
	}
}

// validate reassembles the distributed packed LU, solves against the
// generated right-hand side, and records the solution and HPL residual in
// the result. It runs on the host after the virtual world drains.
func (r *Result) validate(lay Layout, states []*numState, pivots [][]int) error {
	n := lay.N()
	full := linalg.NewMatrix(n, n)
	for rank, st := range states {
		for j := rank; j < lay.NumPanels(); j += lay.P() {
			off := lay.LocalOffset(j)
			for c := 0; c < lay.Width(j); c++ {
				gc := j*lay.NB() + c
				for i := 0; i < n; i++ {
					full.Set(i, gc, st.local.At(i, off+c))
				}
			}
		}
	}
	// Apply the recorded pivots to the right-hand side in panel order.
	b := make([]float64, n)
	genRHS(r.Params.Seed, b)
	pb := append([]float64(nil), b...)
	for j := 0; j < lay.NumPanels(); j++ {
		row0 := j * lay.NB()
		for k, piv := range pivots[j] {
			gr := row0 + k
			if piv != gr {
				pb[gr], pb[piv] = pb[piv], pb[gr]
			}
		}
	}
	y, err := linalg.SolveLowerUnitVec(full, pb)
	if err != nil {
		return fmt.Errorf("hpl: forward substitution: %w", err)
	}
	x, err := linalg.SolveUpperVec(full, y)
	if err != nil {
		return fmt.Errorf("hpl: backward substitution: %w", err)
	}
	// Regenerate the original matrix for the residual check.
	a := linalg.NewMatrix(n, n)
	col := make([]float64, n)
	for gc := 0; gc < n; gc++ {
		genColumn(r.Params.Seed, gc, col)
		for i := 0; i < n; i++ {
			a.Set(i, gc, col[i])
		}
	}
	resid, err := linalg.HPLResidual(a, x, b)
	if err != nil {
		return fmt.Errorf("hpl: residual: %w", err)
	}
	r.Solution = x
	r.Residual = resid
	return nil
}
