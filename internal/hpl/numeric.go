package hpl

import (
	"fmt"
	"math"
	"sync"

	"hetmodel/internal/linalg"
)

// matrixPayload aliases the dense matrix type used in broadcast payloads.
type matrixPayload = linalg.Matrix

// numState is the per-rank numeric storage for a real factorization run:
// the rank's block-cyclic share of the matrix, all N rows of each owned
// column block.
type numState struct {
	lay   Layout
	rank  int
	seed  int64
	local *linalg.Matrix
	// bufs, when set, is the run-shared pool panel payload buffers are
	// drawn from (and returned to by panelMsg.release).
	bufs *sync.Pool
}

// newPanelMsg returns a panel payload whose m×nb matrix is drawn from the
// run's buffer pool when one is installed. The caller overwrites every
// element, so stale pooled contents never leak.
func (st *numState) newPanelMsg(m, nb int) *panelMsg {
	pm := &panelMsg{}
	if st.bufs == nil {
		pm.L = linalg.NewMatrix(m, nb)
		return pm
	}
	pm.bufs = st.bufs
	pm.refs.Store(int32(st.lay.P()))
	if v := st.bufs.Get(); v != nil {
		p := v.(*[]float64)
		if cap(*p) >= m*nb {
			*p = (*p)[:m*nb]
			pm.bufPtr = p
		}
	}
	if pm.bufPtr == nil {
		buf := make([]float64, m*nb)
		pm.bufPtr = &buf
	}
	pm.L = &linalg.Matrix{Rows: m, Cols: nb, Stride: nb, Data: *pm.bufPtr}
	return pm
}

func newNumState(lay Layout, rank int, seed int64) *numState {
	cols := lay.LocalCols(rank)
	st := &numState{lay: lay, rank: rank, seed: seed, local: linalg.NewMatrix(lay.N(), cols)}
	// Generate owned columns deterministically (HPL's pdmatgen role).
	n := lay.N()
	data, stride := st.local.Data, st.local.Stride
	col := make([]float64, n)
	for j := rank; j < lay.NumPanels(); j += lay.P() {
		off := lay.LocalOffset(j)
		for c := 0; c < lay.Width(j); c++ {
			genColumn(seed, j*lay.NB()+c, col)
			for i, v := range col {
				data[i*stride+off+c] = v
			}
		}
	}
	return st
}

// factorPanel performs the unblocked partial-pivoting factorization of the
// rank's panel j (which it must own) and returns the broadcast payload: the
// factored m×nb panel and the global pivot rows. Row swaps are applied to
// the panel columns only; other columns are swapped in the laswp phase.
func (st *numState) factorPanel(j int) *panelMsg {
	lay := st.lay
	nb := lay.Width(j)
	off := lay.LocalOffset(j)
	row0 := j * lay.NB()
	n := lay.N()
	m := n - row0
	pivots := make([]int, nb)
	data, stride := st.local.Data, st.local.Stride

	// panelRow returns the panel's nb-wide slice of local row i.
	panelRow := func(i int) []float64 {
		return data[i*stride+off : i*stride+off+nb]
	}
	for k := 0; k < nb; k++ {
		gr := row0 + k
		lc := off + k
		// Partial pivoting over rows gr..N-1 of this column.
		piv := gr
		maxv := math.Abs(data[gr*stride+lc])
		for i := gr + 1; i < n; i++ {
			if v := math.Abs(data[i*stride+lc]); v > maxv {
				maxv, piv = v, i
			}
		}
		pivots[k] = piv
		if piv != gr {
			// Swap within the panel block only.
			rg, rp := panelRow(gr), panelRow(piv)
			for c, v := range rg {
				rg[c], rp[c] = rp[c], v
			}
		}
		d := data[gr*stride+lc]
		if d == 0 {
			// Singular column: keep zeros (multipliers stay zero), as
			// HPL would produce a failed residual rather than crash.
			continue
		}
		inv := 1 / d
		for i := gr + 1; i < n; i++ {
			data[i*stride+lc] *= inv
		}
		// Rank-1 update of the remaining panel columns, one row at a time.
		urow := panelRow(gr)
		for i := gr + 1; i < n; i++ {
			ri := panelRow(i)
			lik := ri[k]
			if lik == 0 {
				continue
			}
			linalg.Axpy(-lik, ri[k+1:], urow[k+1:])
		}
	}

	// Copy the factored panel (rows row0.., panel columns) for broadcast.
	pm := st.newPanelMsg(m, nb)
	pm.Pivots = pivots
	for i := 0; i < m; i++ {
		copy(pm.L.RowView(i), panelRow(row0+i))
	}
	return pm
}

// applySwaps applies panel j's pivots to every local column block except
// panel j itself (the laswp phase).
func (st *numState) applySwaps(j int, pivots []int) {
	lay := st.lay
	row0 := j * lay.NB()
	data, stride := st.local.Data, st.local.Stride
	for jj := st.rank; jj < lay.NumPanels(); jj += lay.P() {
		if jj == j {
			continue
		}
		off := lay.LocalOffset(jj)
		w := lay.Width(jj)
		for k, piv := range pivots {
			gr := row0 + k
			if piv == gr {
				continue
			}
			rg := data[gr*stride+off : gr*stride+off+w]
			rp := data[piv*stride+off : piv*stride+off+w]
			for c, v := range rg {
				rg[c], rp[c] = rp[c], v
			}
		}
	}
}

// update applies panel j's factors to every trailing block of the rank.
func (st *numState) update(j int, pm *panelMsg) {
	st.updateFiltered(j, pm, func(int) bool { return true })
}

// updateFiltered applies panel j's factors (U12 ← L11⁻¹·A12 then
// A22 ← A22 − L2·U12) to the rank's trailing blocks selected by keep.
func (st *numState) updateFiltered(j int, pm *panelMsg, keep func(jj int) bool) {
	lay := st.lay
	nb := lay.Width(j)
	row0 := j * lay.NB()
	m := lay.N() - row0
	// L11: unit lower triangle of the first nb panel rows.
	l11 := pm.L.Slice(0, nb, 0, nb)
	var l2 *linalg.Matrix
	if m > nb {
		l2 = pm.L.Slice(nb, m, 0, nb)
	}
	for jj := st.rank; jj < lay.NumPanels(); jj += lay.P() {
		if jj <= j || !keep(jj) {
			continue
		}
		off := lay.LocalOffset(jj)
		w := lay.Width(jj)
		a12 := st.local.Slice(row0, row0+nb, off, off+w)
		if err := linalg.SolveLowerUnit(l11, a12); err != nil {
			panic(fmt.Sprintf("hpl: trsm failed: %v", err))
		}
		if l2 != nil {
			a22 := st.local.Slice(row0+nb, lay.N(), off, off+w)
			if err := linalg.MulAdd(-1, l2, a12, a22); err != nil {
				panic(fmt.Sprintf("hpl: gemm failed: %v", err))
			}
		}
	}
}

// validate reassembles the distributed packed LU, solves against the
// generated right-hand side, and records the solution and HPL residual in
// the result. It runs on the host after the virtual world drains.
func (r *Result) validate(lay Layout, states []*numState, pivots [][]int) error {
	n := lay.N()
	full := linalg.NewMatrix(n, n)
	for rank, st := range states {
		data, stride := st.local.Data, st.local.Stride
		for j := rank; j < lay.NumPanels(); j += lay.P() {
			off := lay.LocalOffset(j)
			for c := 0; c < lay.Width(j); c++ {
				gc := j*lay.NB() + c
				for i := 0; i < n; i++ {
					full.Data[i*n+gc] = data[i*stride+off+c]
				}
			}
		}
	}
	// Apply the recorded pivots to the right-hand side in panel order.
	b := make([]float64, n)
	genRHS(r.Params.Seed, b)
	pb := append([]float64(nil), b...)
	for j := 0; j < lay.NumPanels(); j++ {
		row0 := j * lay.NB()
		for k, piv := range pivots[j] {
			gr := row0 + k
			if piv != gr {
				pb[gr], pb[piv] = pb[piv], pb[gr]
			}
		}
	}
	y, err := linalg.SolveLowerUnitVec(full, pb)
	if err != nil {
		return fmt.Errorf("hpl: forward substitution: %w", err)
	}
	x, err := linalg.SolveUpperVec(full, y)
	if err != nil {
		return fmt.Errorf("hpl: backward substitution: %w", err)
	}
	// Regenerate the original matrix for the residual check.
	a := linalg.NewMatrix(n, n)
	col := make([]float64, n)
	for gc := 0; gc < n; gc++ {
		genColumn(r.Params.Seed, gc, col)
		for i, v := range col {
			a.Data[i*n+gc] = v
		}
	}
	resid, err := linalg.HPLResidual(a, x, b)
	if err != nil {
		return fmt.Errorf("hpl: residual: %w", err)
	}
	r.Solution = x
	r.Residual = resid
	return nil
}
