package hpl

import (
	"errors"
	"math"
	"testing"

	"hetmodel/internal/cluster"
	"hetmodel/internal/simnet"
	"hetmodel/internal/vmpi"
)

func paperCluster(t *testing.T) *cluster.Cluster {
	t.Helper()
	cl, err := cluster.NewPaper(simnet.NewMPICH122())
	if err != nil {
		t.Fatal(err)
	}
	return cl
}

func cfg(p1, m1, p2, m2 int) cluster.Configuration {
	return cluster.Configuration{Use: []cluster.ClassUse{{PEs: p1, Procs: m1}, {PEs: p2, Procs: m2}}}
}

func TestLayout(t *testing.T) {
	lay := NewLayout(1000, 64, 3)
	if lay.NumPanels() != 16 {
		t.Fatalf("numPanels = %d", lay.NumPanels())
	}
	if lay.Width(15) != 1000-15*64 {
		t.Fatalf("last width = %d", lay.Width(15))
	}
	if lay.Owner(4) != 1 {
		t.Fatalf("owner(4) = %d", lay.Owner(4))
	}
	total := 0
	for r := 0; r < 3; r++ {
		total += lay.LocalCols(r)
	}
	if total != 1000 {
		t.Fatalf("local cols sum = %d", total)
	}
	if lay.LocalOffset(7) != 2*64 { // blocks 1, 4 precede 7 for rank 1
		t.Fatalf("localOffset(7) = %d", lay.LocalOffset(7))
	}
	// Trailing columns of rank 0 after panel 0: blocks 3,6,9,12,15.
	want := 64*5 + (1000 - 15*64) - 64 // blocks 3,6,9,12 full + 15 partial... recompute below
	_ = want
	got := lay.TrailingLocalCols(0, 0)
	manual := 0
	for jj := 0; jj < lay.NumPanels(); jj += 3 {
		if jj > 0 {
			manual += lay.Width(jj)
		}
	}
	if got != manual {
		t.Fatalf("trailingLocalCols = %d, want %d", got, manual)
	}
}

func TestRunValidatesParams(t *testing.T) {
	cl := paperCluster(t)
	if _, err := Run(cl, cfg(1, 1, 0, 0), Params{N: 0}); !errors.Is(err, ErrBadParams) {
		t.Fatal("N=0 accepted")
	}
	if _, err := Run(cl, cfg(1, 6, 8, 6), Params{N: 10}); !errors.Is(err, ErrBadParams) {
		t.Fatal("N < P accepted")
	}
	if _, err := Run(cl, cfg(9, 1, 0, 0), Params{N: 100}); err == nil {
		t.Fatal("over-allocation accepted")
	}
}

func TestNumericSingleRankResidual(t *testing.T) {
	cl := paperCluster(t)
	res, err := Run(cl, cfg(1, 1, 0, 0), Params{N: 96, NB: 16, Numeric: true, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if res.Residual > 16 {
		t.Fatalf("residual = %v", res.Residual)
	}
	if len(res.Solution) != 96 {
		t.Fatalf("solution length %d", len(res.Solution))
	}
}

func TestNumericDistributedMatchesSingleRank(t *testing.T) {
	cl := paperCluster(t)
	single, err := Run(cl, cfg(1, 1, 0, 0), Params{N: 120, NB: 16, Numeric: true, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	multi, err := Run(cl, cfg(1, 1, 4, 1), Params{N: 120, NB: 16, Numeric: true, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if multi.Residual > 16 {
		t.Fatalf("distributed residual = %v", multi.Residual)
	}
	// Identical matrix and exact arithmetic path → solutions agree tightly.
	for i := range single.Solution {
		if math.Abs(single.Solution[i]-multi.Solution[i]) > 1e-8 {
			t.Fatalf("x[%d]: single %v vs multi %v", i, single.Solution[i], multi.Solution[i])
		}
	}
}

func TestNumericMultiprocessResidual(t *testing.T) {
	cl := paperCluster(t)
	// 2 processes on the Athlon + 2 P-II: 4 ranks, multiprocessing on.
	res, err := Run(cl, cfg(1, 2, 2, 1), Params{N: 128, NB: 16, Numeric: true, Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	if res.Residual > 16 {
		t.Fatalf("residual = %v", res.Residual)
	}
	if res.P != 4 {
		t.Fatalf("P = %d", res.P)
	}
}

func TestNumericBinomialBcastResidual(t *testing.T) {
	cl := paperCluster(t)
	res, err := Run(cl, cfg(1, 1, 3, 1), Params{
		N: 100, NB: 16, Numeric: true, Seed: 3, Bcast: vmpi.BcastBinomial,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Residual > 16 {
		t.Fatalf("residual = %v", res.Residual)
	}
}

func TestNumericPartialLastPanel(t *testing.T) {
	cl := paperCluster(t)
	// N not a multiple of NB exercises the partial final panel.
	res, err := Run(cl, cfg(1, 1, 2, 1), Params{N: 101, NB: 16, Numeric: true, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Residual > 16 {
		t.Fatalf("residual = %v", res.Residual)
	}
}

func TestPhantomDeterministic(t *testing.T) {
	cl := paperCluster(t)
	a, err := Run(cl, cfg(1, 2, 8, 1), Params{N: 1600})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cl, cfg(1, 2, 8, 1), Params{N: 1600})
	if err != nil {
		t.Fatal(err)
	}
	if a.WallTime != b.WallTime {
		t.Fatalf("wall: %v vs %v", a.WallTime, b.WallTime)
	}
	for r := range a.PerRank {
		if a.PerRank[r] != b.PerRank[r] {
			t.Fatalf("rank %d timings differ", r)
		}
	}
}

func TestPhantomTimingStructure(t *testing.T) {
	cl := paperCluster(t)
	res, err := Run(cl, cfg(1, 1, 8, 1), Params{N: 1600})
	if err != nil {
		t.Fatal(err)
	}
	if res.WallTime <= 0 {
		t.Fatal("nonpositive wall time")
	}
	maxWall := 0.0
	for r, rt := range res.PerRank {
		if rt.Pfact < 0 || rt.Mxswp < 0 || rt.Bcast < 0 || rt.Laswp < 0 || rt.Update < 0 || rt.Uptrsv < 0 {
			t.Fatalf("rank %d has negative phase: %+v", r, rt)
		}
		if rt.Update <= 0 {
			t.Fatalf("rank %d did no update work", r)
		}
		if rt.Wall > maxWall {
			maxWall = rt.Wall
		}
		// Phases are disjoint and cover the rank's clock.
		sum := rt.Pfact + rt.Mxswp + rt.Bcast + rt.Laswp + rt.Update + rt.Uptrsv
		if sum > rt.Wall+1e-9 {
			t.Fatalf("rank %d phases (%v) exceed wall (%v)", r, sum, rt.Wall)
		}
	}
	if math.Abs(maxWall-res.WallTime) > 1e-12 {
		t.Fatalf("WallTime %v != max rank wall %v", res.WallTime, maxWall)
	}
	// Both classes used; class aggregates populated.
	if !res.PerClass[0].Used || !res.PerClass[1].Used {
		t.Fatalf("classes not marked used: %+v", res.PerClass)
	}
	if res.PerClass[0].Ta <= 0 || res.PerClass[1].Tc <= 0 {
		t.Fatalf("class aggregates: %+v", res.PerClass)
	}
	if res.Gflops <= 0 {
		t.Fatal("no Gflops")
	}
	if !math.IsNaN(res.Residual) {
		t.Fatal("phantom run should have NaN residual")
	}
}

func TestSinglePEHasOnlyLocalComm(t *testing.T) {
	cl := paperCluster(t)
	res, err := Run(cl, cfg(1, 1, 0, 0), Params{N: 800})
	if err != nil {
		t.Fatal(err)
	}
	rt := res.PerRank[0]
	// No broadcasts or pivot exchange with P=1...
	if rt.Bcast != 0 || rt.Mxswp != 0 {
		t.Fatalf("single PE has comm: %+v", rt)
	}
	// ...but laswp (local row interchange) still happens.
	if rt.Laswp <= 0 {
		t.Fatal("laswp missing")
	}
}

func TestAthlonAboutFourTimesFasterThanPII(t *testing.T) {
	cl := paperCluster(t)
	a, err := Run(cl, cfg(1, 1, 0, 0), Params{N: 1600})
	if err != nil {
		t.Fatal(err)
	}
	p, err := Run(cl, cfg(0, 0, 1, 1), Params{N: 1600})
	if err != nil {
		t.Fatal(err)
	}
	ratio := p.WallTime / a.WallTime
	if ratio < 3.5 || ratio > 6 {
		t.Fatalf("P-II/Athlon time ratio = %.2f, want ~4-5 (paper §4.1)", ratio)
	}
}

// Calibration: the simulated Athlon's HPL performance should land in the
// paper's ballpark (≈ 1.0–1.2 Gflops for mid-size N, Table 4: N=3200 in
// ≈ 20 s).
func TestAthlonCalibration(t *testing.T) {
	cl := paperCluster(t)
	res, err := Run(cl, cfg(1, 1, 0, 0), Params{N: 3200})
	if err != nil {
		t.Fatal(err)
	}
	if res.WallTime < 14 || res.WallTime > 30 {
		t.Fatalf("Athlon N=3200 wall = %.1f s, want ≈ 20 s", res.WallTime)
	}
	if res.Gflops < 0.8 || res.Gflops > 1.4 {
		t.Fatalf("Athlon Gflops = %.2f, want ≈ 1.0-1.2", res.Gflops)
	}
}

// Figure 3(a) load imbalance: with one process everywhere, adding the Athlon
// to four P-IIs barely helps because HPL distributes work equally.
func TestLoadImbalanceShape(t *testing.T) {
	cl := paperCluster(t)
	const n = 4800
	hetero, err := Run(cl, cfg(1, 1, 4, 1), Params{N: n})
	if err != nil {
		t.Fatal(err)
	}
	fiveP2, err := Run(cl, cfg(0, 0, 5, 1), Params{N: n})
	if err != nil {
		t.Fatal(err)
	}
	// Paper: "Ath x 1 + P2 x 4" ≈ "P2 x 5" — within ~25%.
	ratio := hetero.WallTime / fiveP2.WallTime
	if ratio < 0.7 || ratio > 1.3 {
		t.Fatalf("hetero/homo ratio = %.2f, want ≈ 1 (Fig 3(a))", ratio)
	}
}

// Figure 3(b): multiprocessing on the Athlon relieves the imbalance at
// large N but hurts at small N.
func TestMultiprocessingCrossover(t *testing.T) {
	cl := paperCluster(t)
	wall := func(n, m1 int) float64 {
		res, err := Run(cl, cfg(1, m1, 4, 1), Params{N: n})
		if err != nil {
			t.Fatal(err)
		}
		return res.WallTime
	}
	// Large N: n=3 beats n=1.
	if w3, w1 := wall(8000, 3), wall(8000, 1); w3 >= w1 {
		t.Fatalf("N=8000: M1=3 (%.1f) should beat M1=1 (%.1f)", w3, w1)
	}
	// Small N: n=4 loses to n=1 (multiprocessing overhead dominates).
	if w4, w1 := wall(1200, 4), wall(1200, 1); w4 <= w1 {
		t.Fatalf("N=1200: M1=4 (%.1f) should lose to M1=1 (%.1f)", w4, w1)
	}
}

// Athlon-alone memory exhaustion at N=10000 (Fig 3(a)): Gflops drop vs 9600.
func TestAthlonMemoryWall(t *testing.T) {
	cl := paperCluster(t)
	r96, err := Run(cl, cfg(1, 1, 0, 0), Params{N: 9600})
	if err != nil {
		t.Fatal(err)
	}
	r100, err := Run(cl, cfg(1, 1, 0, 0), Params{N: 10000})
	if err != nil {
		t.Fatal(err)
	}
	if r100.Gflops >= 0.8*r96.Gflops {
		t.Fatalf("no memory wall: 9600 → %.2f Gf, 10000 → %.2f Gf", r96.Gflops, r100.Gflops)
	}
	// Five P-IIs have aggregate memory and do not degrade.
	p96, _ := Run(cl, cfg(0, 0, 5, 1), Params{N: 9600})
	p100, _ := Run(cl, cfg(0, 0, 5, 1), Params{N: 10000})
	if p100.Gflops < 0.9*p96.Gflops {
		t.Fatalf("P2 x 5 should not degrade: %.2f → %.2f Gf", p96.Gflops, p100.Gflops)
	}
}

// MPICH version contrast (Fig 1): multiprocessing on one Athlon is crippled
// by the 1.2.1-like library but cheap with the 1.2.2-like one.
func TestMPICHVersionMultiprocessingContrast(t *testing.T) {
	run := func(lib *simnet.CommLibrary, m1 int) float64 {
		cl, err := cluster.NewPaper(lib)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(cl, cfg(1, m1, 0, 0), Params{N: 2400})
		if err != nil {
			t.Fatal(err)
		}
		return res.Gflops
	}
	loss121 := 1 - run(simnet.NewMPICH121(), 4)/run(simnet.NewMPICH121(), 1)
	loss122 := 1 - run(simnet.NewMPICH122(), 4)/run(simnet.NewMPICH122(), 1)
	if loss121 < 1.5*loss122 {
		t.Fatalf("Fig 1 contrast missing: loss 1.2.1 = %.1f%%, 1.2.2 = %.1f%%",
			loss121*100, loss122*100)
	}
	if loss121 < 0.5 {
		t.Fatalf("1.2.1 multiprocessing loss %.1f%% not drastic (paper Fig 1(a))", loss121*100)
	}
	if loss122 > 0.5 {
		t.Fatalf("1.2.2 multiprocessing loss %.1f%% too harsh (paper: much smaller)", loss122*100)
	}
	// Degradation grows with the number of co-resident processes (Fig 1).
	prev := run(simnet.NewMPICH121(), 1)
	for m := 2; m <= 4; m++ {
		cur := run(simnet.NewMPICH121(), m)
		if cur >= prev {
			t.Fatalf("1.2.1 Gflops should fall with n: n=%d %.2f >= n=%d %.2f", m, cur, m-1, prev)
		}
		prev = cur
	}
}

func TestWallTimeGrowsWithN(t *testing.T) {
	cl := paperCluster(t)
	prev := 0.0
	for _, n := range []int{400, 800, 1600, 3200} {
		res, err := Run(cl, cfg(1, 1, 8, 1), Params{N: n})
		if err != nil {
			t.Fatal(err)
		}
		if res.WallTime <= prev {
			t.Fatalf("wall time not increasing at N=%d", n)
		}
		prev = res.WallTime
	}
}

func TestFlopCount(t *testing.T) {
	if got := FlopCount(100); math.Abs(got-(2.0/3.0*1e6+1.5e4)) > 1 {
		t.Fatalf("FlopCount(100) = %v", got)
	}
}
