package linalg

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// spdMatrix builds a random SPD matrix B·Bᵀ + n·I.
func spdMatrix(rng *rand.Rand, n int) *Matrix {
	b := randMatrix(rng, n, n)
	bt := b.Transpose()
	a, _ := Mul(b, bt)
	for i := 0; i < n; i++ {
		a.Set(i, i, a.At(i, i)+float64(n))
	}
	return a
}

func TestCholeskyKnown(t *testing.T) {
	a, _ := FromRows([][]float64{
		{4, 12, -16},
		{12, 37, -43},
		{-16, -43, 98},
	})
	c, err := FactorizeCholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := FromRows([][]float64{
		{2, 0, 0},
		{6, 1, 0},
		{-8, 5, 3},
	})
	if !c.L.Equal(want, 1e-12) {
		t.Fatalf("L = %v", c.L)
	}
	if math.Abs(c.Det()-36) > 1e-9 {
		t.Fatalf("det = %v, want 36", c.Det())
	}
}

func TestCholeskyRejects(t *testing.T) {
	if _, err := FactorizeCholesky(NewMatrix(2, 3)); !errors.Is(err, ErrShape) {
		t.Fatal("non-square accepted")
	}
	notPD, _ := FromRows([][]float64{{1, 2}, {2, 1}}) // eigenvalues 3, -1
	if _, err := FactorizeCholesky(notPD); !errors.Is(err, ErrSingular) {
		t.Fatal("indefinite matrix accepted")
	}
}

func TestCholeskySolve(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := spdMatrix(rng, 12)
	c, err := FactorizeCholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	b := make([]float64, 12)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	x, err := c.Solve(b)
	if err != nil {
		t.Fatal(err)
	}
	res, err := HPLResidual(a, x, b)
	if err != nil {
		t.Fatal(err)
	}
	if res > 16 {
		t.Fatalf("residual = %v", res)
	}
	if _, err := c.Solve([]float64{1}); !errors.Is(err, ErrShape) {
		t.Fatal("wrong RHS length accepted")
	}
}

func TestKMSMatrixSPD(t *testing.T) {
	a := KMSMatrix(20, 0.9)
	if a.At(3, 3) != 1 || math.Abs(a.At(0, 19)-math.Pow(0.9, 19)) > 1e-15 {
		t.Fatalf("KMS entries wrong")
	}
	if a.At(2, 7) != a.At(7, 2) {
		t.Fatal("KMS not symmetric")
	}
	if _, err := FactorizeCholesky(a); err != nil {
		t.Fatalf("KMS(0.9) should be SPD: %v", err)
	}
	if got := KMSEntry(0.9, 2, 7); math.Abs(got-a.At(2, 7)) > 1e-15 {
		t.Fatalf("KMSEntry = %v", got)
	}
}

// Property: L·Lᵀ reconstructs A.
func TestCholeskyReconstructionProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(15)
		a := spdMatrix(rng, n)
		c, err := FactorizeCholesky(a)
		if err != nil {
			return false
		}
		lt := c.L.Transpose()
		llt, _ := Mul(c.L, lt)
		return llt.Equal(a, 1e-7*float64(n))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: Cholesky agrees with LU on SPD systems.
func TestCholeskyAgreesWithLUProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(10)
		a := spdMatrix(rng, n)
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		c, err := FactorizeCholesky(a)
		if err != nil {
			return false
		}
		xc, err := c.Solve(b)
		if err != nil {
			return false
		}
		xl, err := SolveLinear(a, b)
		if err != nil {
			return false
		}
		for i := range xc {
			if math.Abs(xc[i]-xl[i]) > 1e-7 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
