// Package linalg provides the dense linear-algebra substrate used throughout
// the repository: matrices, blocked matrix multiplication, LU factorization
// with partial pivoting, triangular solves, Householder QR, and the norms
// needed for HPL-style residual checks.
//
// The package replaces the roles ATLAS (BLAS) and parts of GSL played in the
// paper's toolchain. It is written for clarity and reasonable performance
// with the standard library only; it is not a tuned BLAS.
package linalg

import (
	"errors"
	"fmt"
	"math"
)

// Matrix is a dense, row-major matrix of float64 values.
//
// The zero value is an empty (0x0) matrix. Use NewMatrix or FromRows to
// create sized matrices. Data is stored in a single backing slice; Row i
// occupies Data[i*Stride : i*Stride+Cols].
type Matrix struct {
	Rows   int
	Cols   int
	Stride int
	Data   []float64
}

// ErrShape reports an operation on matrices whose shapes do not conform.
var ErrShape = errors.New("linalg: dimension mismatch")

// ErrSingular reports a factorization that encountered an (exactly) singular
// pivot.
var ErrSingular = errors.New("linalg: matrix is singular")

// NewMatrix returns a zeroed r-by-c matrix.
func NewMatrix(r, c int) *Matrix {
	if r < 0 || c < 0 {
		panic(fmt.Sprintf("linalg: negative dimension %dx%d", r, c))
	}
	return &Matrix{Rows: r, Cols: c, Stride: c, Data: make([]float64, r*c)}
}

// FromRows builds a matrix from a slice of equal-length rows. The data is
// copied.
func FromRows(rows [][]float64) (*Matrix, error) {
	r := len(rows)
	if r == 0 {
		return NewMatrix(0, 0), nil
	}
	c := len(rows[0])
	m := NewMatrix(r, c)
	for i, row := range rows {
		if len(row) != c {
			return nil, fmt.Errorf("%w: row %d has %d entries, want %d", ErrShape, i, len(row), c)
		}
		copy(m.RowView(i), row)
	}
	return m, nil
}

// Identity returns the n-by-n identity matrix.
func Identity(n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// At returns element (i, j). It panics when out of range, mirroring slice
// indexing semantics.
func (m *Matrix) At(i, j int) float64 {
	m.check(i, j)
	return m.Data[i*m.Stride+j]
}

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) {
	m.check(i, j)
	m.Data[i*m.Stride+j] = v
}

func (m *Matrix) check(i, j int) {
	if i < 0 || i >= m.Rows || j < 0 || j >= m.Cols {
		panic(fmt.Sprintf("linalg: index (%d,%d) out of range %dx%d", i, j, m.Rows, m.Cols))
	}
}

// RowView returns row i as a slice sharing the matrix's backing store.
func (m *Matrix) RowView(i int) []float64 {
	if i < 0 || i >= m.Rows {
		panic(fmt.Sprintf("linalg: row %d out of range %d", i, m.Rows))
	}
	return m.Data[i*m.Stride : i*m.Stride+m.Cols]
}

// Clone returns a deep copy with a compact stride.
func (m *Matrix) Clone() *Matrix {
	out := NewMatrix(m.Rows, m.Cols)
	for i := 0; i < m.Rows; i++ {
		copy(out.RowView(i), m.RowView(i))
	}
	return out
}

// Slice returns a view of the submatrix rows [r0, r1) x cols [c0, c1)
// sharing backing storage with m.
func (m *Matrix) Slice(r0, r1, c0, c1 int) *Matrix {
	if r0 < 0 || r1 > m.Rows || r0 > r1 || c0 < 0 || c1 > m.Cols || c0 > c1 {
		panic(fmt.Sprintf("linalg: slice [%d:%d,%d:%d] out of range %dx%d", r0, r1, c0, c1, m.Rows, m.Cols))
	}
	return &Matrix{
		Rows:   r1 - r0,
		Cols:   c1 - c0,
		Stride: m.Stride,
		Data:   m.Data[r0*m.Stride+c0 : (r1-1)*m.Stride+c1],
	}
}

// CopyFrom copies src into m; shapes must match.
func (m *Matrix) CopyFrom(src *Matrix) error {
	if m.Rows != src.Rows || m.Cols != src.Cols {
		return fmt.Errorf("%w: copy %dx%d into %dx%d", ErrShape, src.Rows, src.Cols, m.Rows, m.Cols)
	}
	for i := 0; i < m.Rows; i++ {
		copy(m.RowView(i), src.RowView(i))
	}
	return nil
}

// SwapRows exchanges rows i and j in place.
func (m *Matrix) SwapRows(i, j int) {
	if i == j {
		return
	}
	ri, rj := m.RowView(i), m.RowView(j)
	for k := range ri {
		ri[k], rj[k] = rj[k], ri[k]
	}
}

// Scale multiplies every element by s.
func (m *Matrix) Scale(s float64) {
	for i := 0; i < m.Rows; i++ {
		row := m.RowView(i)
		for k := range row {
			row[k] *= s
		}
	}
}

// Add stores a+b into m (which may alias a or b). Shapes must match.
func (m *Matrix) Add(a, b *Matrix) error {
	if a.Rows != b.Rows || a.Cols != b.Cols || m.Rows != a.Rows || m.Cols != a.Cols {
		return ErrShape
	}
	for i := 0; i < m.Rows; i++ {
		ra, rb, rm := a.RowView(i), b.RowView(i), m.RowView(i)
		for k := range rm {
			rm[k] = ra[k] + rb[k]
		}
	}
	return nil
}

// Sub stores a-b into m (which may alias a or b). Shapes must match.
func (m *Matrix) Sub(a, b *Matrix) error {
	if a.Rows != b.Rows || a.Cols != b.Cols || m.Rows != a.Rows || m.Cols != a.Cols {
		return ErrShape
	}
	for i := 0; i < m.Rows; i++ {
		ra, rb, rm := a.RowView(i), b.RowView(i), m.RowView(i)
		for k := range rm {
			rm[k] = ra[k] - rb[k]
		}
	}
	return nil
}

// Transpose returns a newly allocated transpose of m.
func (m *Matrix) Transpose() *Matrix {
	out := NewMatrix(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.RowView(i)
		for j, v := range row {
			out.Data[j*out.Stride+i] = v
		}
	}
	return out
}

// Equal reports whether m and b have the same shape and elements within tol
// (absolute difference).
func (m *Matrix) Equal(b *Matrix, tol float64) bool {
	if m.Rows != b.Rows || m.Cols != b.Cols {
		return false
	}
	for i := 0; i < m.Rows; i++ {
		ra, rb := m.RowView(i), b.RowView(i)
		for k := range ra {
			if math.Abs(ra[k]-rb[k]) > tol {
				return false
			}
		}
	}
	return true
}

// String renders small matrices for debugging; large matrices are abridged.
func (m *Matrix) String() string {
	const maxShow = 8
	s := fmt.Sprintf("Matrix %dx%d", m.Rows, m.Cols)
	if m.Rows > maxShow || m.Cols > maxShow {
		return s
	}
	for i := 0; i < m.Rows; i++ {
		s += "\n"
		for j := 0; j < m.Cols; j++ {
			s += fmt.Sprintf(" %10.4g", m.At(i, j))
		}
	}
	return s
}
