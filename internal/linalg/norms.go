package linalg

import "math"

// Norm1 returns the maximum absolute column sum of a (the matrix 1-norm).
func Norm1(a *Matrix) float64 {
	sums := make([]float64, a.Cols)
	for i := 0; i < a.Rows; i++ {
		row := a.RowView(i)
		for j, v := range row {
			sums[j] += math.Abs(v)
		}
	}
	var mx float64
	for _, s := range sums {
		if s > mx {
			mx = s
		}
	}
	return mx
}

// NormInf returns the maximum absolute row sum of a (the matrix inf-norm).
func NormInf(a *Matrix) float64 {
	var mx float64
	for i := 0; i < a.Rows; i++ {
		var s float64
		for _, v := range a.RowView(i) {
			s += math.Abs(v)
		}
		if s > mx {
			mx = s
		}
	}
	return mx
}

// NormFrob returns the Frobenius norm of a.
func NormFrob(a *Matrix) float64 {
	var s float64
	for i := 0; i < a.Rows; i++ {
		for _, v := range a.RowView(i) {
			s += v * v
		}
	}
	return math.Sqrt(s)
}

// VecNormInf returns max_i |x_i|.
func VecNormInf(x []float64) float64 {
	var mx float64
	for _, v := range x {
		if a := math.Abs(v); a > mx {
			mx = a
		}
	}
	return mx
}

// VecNorm2 returns the Euclidean norm of x.
func VecNorm2(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += v * v
	}
	return math.Sqrt(s)
}

// VecNorm1 returns sum_i |x_i|.
func VecNorm1(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += math.Abs(v)
	}
	return s
}

// HPLResidual computes the scaled residual HPL reports for a solve A*x = b:
//
//	||A*x - b||_inf / (eps * (||A||_inf * ||x||_inf + ||b||_inf) * n)
//
// Values of O(1) (HPL's threshold is 16) indicate a numerically correct
// solution.
func HPLResidual(a *Matrix, x, b []float64) (float64, error) {
	ax, err := MulVec(a, x)
	if err != nil {
		return 0, err
	}
	for i := range ax {
		ax[i] -= b[i]
	}
	n := float64(a.Rows)
	eps := math.Nextafter(1, 2) - 1
	denom := eps * (NormInf(a)*VecNormInf(x) + VecNormInf(b)) * n
	if denom == 0 {
		return 0, nil
	}
	return VecNormInf(ax) / denom, nil
}
