package linalg

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestQRSquareSolve(t *testing.T) {
	a, _ := FromRows([][]float64{
		{4, 1},
		{1, 3},
	})
	f, err := FactorizeQR(a)
	if err != nil {
		t.Fatal(err)
	}
	x, err := f.SolveLS([]float64{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	// Exact solution of [[4,1],[1,3]] x = [1,2] is x = [1/11, 7/11].
	if math.Abs(x[0]-1.0/11) > 1e-12 || math.Abs(x[1]-7.0/11) > 1e-12 {
		t.Fatalf("x = %v", x)
	}
}

func TestQRUnderdetermined(t *testing.T) {
	if _, err := FactorizeQR(NewMatrix(2, 3)); !errors.Is(err, ErrShape) {
		t.Fatalf("want ErrShape, got %v", err)
	}
}

func TestQRLeastSquaresOverdetermined(t *testing.T) {
	// Fit y = 2x + 1 exactly through three collinear points.
	a, _ := FromRows([][]float64{
		{1, 0},
		{1, 1},
		{1, 2},
	})
	f, err := FactorizeQR(a)
	if err != nil {
		t.Fatal(err)
	}
	x, err := f.SolveLS([]float64{1, 3, 5})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-1) > 1e-12 || math.Abs(x[1]-2) > 1e-12 {
		t.Fatalf("fit = %v, want [1 2]", x)
	}
	res, err := f.ResidualNorm([]float64{1, 3, 5})
	if err != nil {
		t.Fatal(err)
	}
	if res > 1e-10 {
		t.Fatalf("residual = %v, want ~0", res)
	}
}

func TestQRResidualNonzero(t *testing.T) {
	// Points not on a line: residual must be positive and equal to
	// ||Ax* - b|| of the normal-equations solution.
	a, _ := FromRows([][]float64{
		{1, 0},
		{1, 1},
		{1, 2},
	})
	b := []float64{0, 1, 0}
	f, _ := FactorizeQR(a)
	x, _ := f.SolveLS(b)
	ax, _ := MulVec(a, x)
	var s float64
	for i := range ax {
		d := ax[i] - b[i]
		s += d * d
	}
	direct := math.Sqrt(s)
	viaQ, _ := f.ResidualNorm(b)
	if math.Abs(direct-viaQ) > 1e-12 {
		t.Fatalf("residual mismatch: direct %v vs Q %v", direct, viaQ)
	}
}

func TestQRWrongRHSLength(t *testing.T) {
	f, _ := FactorizeQR(Identity(3))
	if _, err := f.SolveLS([]float64{1}); !errors.Is(err, ErrShape) {
		t.Fatalf("want ErrShape, got %v", err)
	}
	if _, err := f.ResidualNorm([]float64{1}); !errors.Is(err, ErrShape) {
		t.Fatalf("want ErrShape, got %v", err)
	}
}

func TestQRRankDeficient(t *testing.T) {
	a, _ := FromRows([][]float64{
		{1, 1},
		{1, 1},
		{1, 1},
	})
	f, err := FactorizeQR(a)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.SolveLS([]float64{1, 2, 3}); !errors.Is(err, ErrSingular) {
		t.Fatalf("want ErrSingular, got %v", err)
	}
}

// Property: QR least-squares solution satisfies the normal equations
// A^T A x = A^T b within tolerance.
func TestQRNormalEquationsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := 3 + rng.Intn(20)
		n := 1 + rng.Intn(3)
		if n > m {
			n = m
		}
		a := randMatrix(rng, m, n)
		b := make([]float64, m)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		qr, err := FactorizeQR(a)
		if err != nil {
			return false
		}
		x, err := qr.SolveLS(b)
		if err != nil {
			return true // rank-deficient random draw; acceptable to refuse
		}
		at := a.Transpose()
		ax, _ := MulVec(a, x)
		r := make([]float64, m)
		for i := range r {
			r[i] = ax[i] - b[i]
		}
		atr, _ := MulVec(at, r)
		return VecNormInf(atr) < 1e-8*float64(m)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: QR on a square nonsingular matrix reproduces the LU solution.
func TestQRAgreesWithLUProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(10)
		a := randMatrix(rng, n, n)
		for i := 0; i < n; i++ {
			a.Set(i, i, a.At(i, i)+float64(n))
		}
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		xlu, err := SolveLinear(a, b)
		if err != nil {
			return false
		}
		qr, err := FactorizeQR(a)
		if err != nil {
			return false
		}
		xqr, err := qr.SolveLS(b)
		if err != nil {
			return false
		}
		for i := range xlu {
			if math.Abs(xlu[i]-xqr[i]) > 1e-7 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
