package linalg

import "sync/atomic"

// Kernel selects the implementation backing MulAdd, SolveLowerUnit, and
// SolveUpper: the cache-blocked, panel-packed production kernels or the
// naive reference loops kept for equivalence testing.
type Kernel int32

const (
	// KernelBlocked is the production implementation: cache-blocked,
	// panel-packed GEMM and row-sliced, unrolled triangular solves.
	KernelBlocked Kernel = iota
	// KernelReference is the clarity-first implementation operating
	// per-element through At/Set. It exists so property tests can assert
	// the blocked kernels agree with an independently simple oracle.
	KernelReference
)

// activeKernel holds the package-wide kernel selection (atomic so tests can
// flip it under -race).
var activeKernel atomic.Int32

// SetKernel selects the kernel implementation for subsequent calls and
// returns the previous selection. The default is KernelBlocked.
func SetKernel(k Kernel) Kernel {
	return Kernel(activeKernel.Swap(int32(k)))
}

// ActiveKernel returns the current kernel selection.
func ActiveKernel() Kernel { return Kernel(activeKernel.Load()) }

// axpy computes dst[t] += a*src[t] over len(dst) elements with a 4-way
// unrolled loop. src must be at least as long as dst. Each element is an
// independent multiply-then-add, so the result is bit-identical to the
// rolled loop; the explicit float64 conversions round every product before
// the add, which forbids FMA fusion on platforms that would otherwise fuse
// (the spec only permits fusion of unrounded intermediates), keeping the
// kernel bit-identical across architectures too.
//
//het:hotpath
//het:bitexact
func axpy(a float64, dst, src []float64) {
	src = src[:len(dst)]
	for len(dst) >= 4 {
		d, s := dst[:4:4], src[:4:4]
		d[0] += float64(a * s[0])
		d[1] += float64(a * s[1])
		d[2] += float64(a * s[2])
		d[3] += float64(a * s[3])
		dst, src = dst[4:], src[4:]
	}
	for i := range dst {
		dst[i] += float64(a * src[i])
	}
}

// dot returns Σ a[t]·b[t] with a single accumulator in index order, so the
// summation order (and therefore the rounding) matches the naive loop.
// Unrolling hoists the bounds checks; the dependency chain is kept so
// callers relying on reproducible sums across refactors stay byte-stable.
// Each product is rounded via float64 before it joins the sum, forbidding
// FMA fusion so the bits also match across architectures.
//
//het:hotpath
//het:bitexact
func dot(a, b []float64) float64 {
	b = b[:len(a)]
	var s float64
	for len(a) >= 4 {
		x, y := a[:4:4], b[:4:4]
		s += float64(x[0] * y[0])
		s += float64(x[1] * y[1])
		s += float64(x[2] * y[2])
		s += float64(x[3] * y[3])
		a, b = a[4:], b[4:]
	}
	for i := range a {
		s += float64(a[i] * b[i])
	}
	return s
}

// Axpy computes dst[i] += a*src[i] over min(len(dst), len(src)) elements —
// BLAS daxpy on raw slices, exported for the distributed kernels' panel
// factorizations which work on row views of their local storage.
func Axpy(a float64, dst, src []float64) { axpy(a, dst, src) }

// Dot returns the inner product of a and b over min(len(a), len(b))
// elements, accumulating in index order with a single accumulator.
func Dot(a, b []float64) float64 { return dot(a, b) }
