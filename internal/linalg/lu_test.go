package linalg

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFactorizeKnown(t *testing.T) {
	a, _ := FromRows([][]float64{
		{2, 1, 1},
		{4, -6, 0},
		{-2, 7, 2},
	})
	f, err := Factorize(a)
	if err != nil {
		t.Fatal(err)
	}
	x, err := f.Solve([]float64{5, -2, 9})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 1, 2}
	for i := range want {
		if math.Abs(x[i]-want[i]) > 1e-12 {
			t.Fatalf("x[%d] = %v, want %v", i, x[i], want[i])
		}
	}
}

func TestFactorizeNonSquare(t *testing.T) {
	if _, err := Factorize(NewMatrix(2, 3)); !errors.Is(err, ErrShape) {
		t.Fatalf("want ErrShape, got %v", err)
	}
}

func TestFactorizeSingular(t *testing.T) {
	a, _ := FromRows([][]float64{{1, 2}, {2, 4}})
	if _, err := Factorize(a); !errors.Is(err, ErrSingular) {
		t.Fatalf("want ErrSingular, got %v", err)
	}
}

func TestSolveWrongLength(t *testing.T) {
	f, err := Factorize(Identity(3))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Solve([]float64{1, 2}); !errors.Is(err, ErrShape) {
		t.Fatalf("want ErrShape, got %v", err)
	}
}

func TestDet(t *testing.T) {
	a, _ := FromRows([][]float64{{0, 1}, {1, 0}}) // det = -1, forces a swap
	f, err := Factorize(a)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(f.Det()+1) > 1e-14 {
		t.Fatalf("det = %v, want -1", f.Det())
	}
	if f.Swaps != 1 {
		t.Fatalf("swaps = %d, want 1", f.Swaps)
	}
}

func TestDetIdentity(t *testing.T) {
	f, _ := Factorize(Identity(5))
	if math.Abs(f.Det()-1) > 1e-14 {
		t.Fatalf("det(I) = %v", f.Det())
	}
}

func TestFactorizeDoesNotModifyInput(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := randMatrix(rng, 5, 5)
	orig := a.Clone()
	if _, err := Factorize(a); err != nil {
		t.Fatal(err)
	}
	if !a.Equal(orig, 0) {
		t.Fatal("Factorize modified its input")
	}
}

// Property: for random well-conditioned systems, the HPL-scaled residual of
// the LU solve is O(1).
func TestSolveResidualProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(30)
		a := randMatrix(rng, n, n)
		// Diagonal boost keeps the condition number moderate.
		for i := 0; i < n; i++ {
			a.Set(i, i, a.At(i, i)+float64(n))
		}
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		x, err := SolveLinear(a, b)
		if err != nil {
			return false
		}
		res, err := HPLResidual(a, x, b)
		return err == nil && res < 16
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: P*A = L*U reconstructs A (after applying the pivots).
func TestLUReconstructionProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(12)
		a := randMatrix(rng, n, n)
		for i := 0; i < n; i++ {
			a.Set(i, i, a.At(i, i)+float64(n))
		}
		f, err := Factorize(a)
		if err != nil {
			return false
		}
		// Build L and U from the packed factorization.
		l := Identity(n)
		u := NewMatrix(n, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if j < i {
					l.Set(i, j, f.LU.At(i, j))
				} else {
					u.Set(i, j, f.LU.At(i, j))
				}
			}
		}
		lu, _ := Mul(l, u)
		// Apply the same pivots to a copy of A.
		pa := a.Clone()
		for k := 0; k < n; k++ {
			if p := f.Pivot[k]; p != k {
				pa.SwapRows(k, p)
			}
		}
		return lu.Equal(pa, 1e-8*float64(n))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestSolveLinearPropagatesError(t *testing.T) {
	if _, err := SolveLinear(NewMatrix(3, 3), []float64{1, 2, 3}); err == nil {
		t.Fatal("expected singular error")
	}
}
