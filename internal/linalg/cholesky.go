package linalg

import (
	"fmt"
	"math"
)

// Cholesky holds the lower-triangular factor of a symmetric positive
// definite matrix: A = L·Lᵀ.
type Cholesky struct {
	L *Matrix
}

// FactorizeCholesky computes the Cholesky factorization of a (copied; only
// the lower triangle of a is read). It returns ErrSingular when a is not
// positive definite.
func FactorizeCholesky(a *Matrix) (*Cholesky, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("%w: Cholesky requires square matrix, got %dx%d", ErrShape, a.Rows, a.Cols)
	}
	n := a.Rows
	l := NewMatrix(n, n)
	for j := 0; j < n; j++ {
		// Diagonal entry.
		d := a.At(j, j)
		lj := l.RowView(j)
		for k := 0; k < j; k++ {
			d -= lj[k] * lj[k]
		}
		if d <= 0 {
			return nil, fmt.Errorf("%w: not positive definite at column %d (pivot %v)", ErrSingular, j, d)
		}
		d = math.Sqrt(d)
		l.Set(j, j, d)
		inv := 1 / d
		// Column below the diagonal.
		for i := j + 1; i < n; i++ {
			s := a.At(i, j)
			li := l.RowView(i)
			for k := 0; k < j; k++ {
				s -= li[k] * lj[k]
			}
			l.Set(i, j, s*inv)
		}
	}
	return &Cholesky{L: l}, nil
}

// Solve solves A·x = b using the factorization (forward then backward
// substitution with L and Lᵀ).
func (c *Cholesky) Solve(b []float64) ([]float64, error) {
	n := c.L.Rows
	if len(b) != n {
		return nil, ErrShape
	}
	// Forward: L·y = b.
	y := make([]float64, n)
	copy(y, b)
	for i := 0; i < n; i++ {
		row := c.L.RowView(i)
		s := y[i]
		for k := 0; k < i; k++ {
			s -= row[k] * y[k]
		}
		d := row[i]
		if d == 0 {
			return nil, fmt.Errorf("%w: zero diagonal at %d", ErrSingular, i)
		}
		y[i] = s / d
	}
	// Backward: Lᵀ·x = y.
	x := y
	for i := n - 1; i >= 0; i-- {
		s := x[i]
		for k := i + 1; k < n; k++ {
			s -= c.L.At(k, i) * x[k]
		}
		x[i] = s / c.L.At(i, i)
	}
	return x, nil
}

// Det returns the determinant of the factored matrix (∏ L_ii²).
func (c *Cholesky) Det() float64 {
	d := 1.0
	for i := 0; i < c.L.Rows; i++ {
		v := c.L.At(i, i)
		d *= v * v
	}
	return d
}

// KMSMatrix returns the n×n Kac–Murdock–Szegő matrix A_ij = rho^|i-j|,
// symmetric positive definite for |rho| < 1 — the deterministic SPD test
// matrix used by the distributed Cholesky benchmark (any rank can generate
// any entry without communication).
func KMSMatrix(n int, rho float64) *Matrix {
	a := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		// Row i equals column i by symmetry.
		KMSColumn(rho, i, a.RowView(i))
	}
	return a
}

// KMSColumn fills dst (length n) with column j of the KMS matrix:
// dst[i] = rho^|i-j|, computed by the multiplicative recurrence outward
// from the unit diagonal. The result is a pure function of (rho, j, i), so
// distributed ranks generating disjoint columns and a validator rebuilding
// the full matrix agree bitwise.
func KMSColumn(rho float64, j int, dst []float64) {
	n := len(dst)
	if j >= 0 && j < n {
		dst[j] = 1
	}
	v := 1.0
	for i := j - 1; i >= 0; i-- {
		v *= rho
		dst[i] = v
	}
	v = 1.0
	for i := j + 1; i < n; i++ {
		v *= rho
		dst[i] = v
	}
}

// KMSEntry returns one entry of the KMS matrix without materializing it.
// It uses the same repeated-multiplication recurrence as KMSColumn so
// scattered lookups and bulk fills agree bitwise.
func KMSEntry(rho float64, i, j int) float64 {
	d := i - j
	if d < 0 {
		d = -d
	}
	v := 1.0
	for ; d > 0; d-- {
		v *= rho
	}
	return v
}
