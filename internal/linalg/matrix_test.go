package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randMatrix(rng *rand.Rand, r, c int) *Matrix {
	m := NewMatrix(r, c)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	return m
}

func TestNewMatrixZeroed(t *testing.T) {
	m := NewMatrix(3, 4)
	if m.Rows != 3 || m.Cols != 4 || m.Stride != 4 {
		t.Fatalf("bad shape: %+v", m)
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 4; j++ {
			if m.At(i, j) != 0 {
				t.Fatalf("element (%d,%d) not zero", i, j)
			}
		}
	}
}

func TestNewMatrixNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for negative dimension")
		}
	}()
	NewMatrix(-1, 2)
}

func TestFromRows(t *testing.T) {
	m, err := FromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	if err != nil {
		t.Fatal(err)
	}
	if m.Rows != 3 || m.Cols != 2 {
		t.Fatalf("bad shape %dx%d", m.Rows, m.Cols)
	}
	if m.At(2, 1) != 6 || m.At(0, 0) != 1 {
		t.Fatalf("bad contents: %v", m)
	}
}

func TestFromRowsRagged(t *testing.T) {
	if _, err := FromRows([][]float64{{1, 2}, {3}}); err == nil {
		t.Fatal("expected error on ragged rows")
	}
}

func TestFromRowsEmpty(t *testing.T) {
	m, err := FromRows(nil)
	if err != nil || m.Rows != 0 || m.Cols != 0 {
		t.Fatalf("empty FromRows: %v %v", m, err)
	}
}

func TestIdentity(t *testing.T) {
	id := Identity(4)
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if id.At(i, j) != want {
				t.Fatalf("identity(%d,%d) = %v", i, j, id.At(i, j))
			}
		}
	}
}

func TestAtOutOfRangePanics(t *testing.T) {
	m := NewMatrix(2, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m.At(2, 0)
}

func TestSliceSharesStorage(t *testing.T) {
	m := NewMatrix(4, 4)
	v := m.Slice(1, 3, 1, 3)
	v.Set(0, 0, 42)
	if m.At(1, 1) != 42 {
		t.Fatal("slice does not alias parent")
	}
	if v.Rows != 2 || v.Cols != 2 {
		t.Fatalf("bad slice shape %dx%d", v.Rows, v.Cols)
	}
}

func TestSliceOutOfRangePanics(t *testing.T) {
	m := NewMatrix(2, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m.Slice(0, 3, 0, 1)
}

func TestCloneIndependent(t *testing.T) {
	m, _ := FromRows([][]float64{{1, 2}, {3, 4}})
	c := m.Clone()
	c.Set(0, 0, 99)
	if m.At(0, 0) != 1 {
		t.Fatal("clone aliases original")
	}
}

func TestSwapRows(t *testing.T) {
	m, _ := FromRows([][]float64{{1, 2}, {3, 4}})
	m.SwapRows(0, 1)
	if m.At(0, 0) != 3 || m.At(1, 1) != 2 {
		t.Fatalf("swap failed: %v", m)
	}
	m.SwapRows(1, 1) // no-op must be safe
	if m.At(1, 0) != 1 {
		t.Fatal("self-swap corrupted data")
	}
}

func TestAddSub(t *testing.T) {
	a, _ := FromRows([][]float64{{1, 2}, {3, 4}})
	b, _ := FromRows([][]float64{{10, 20}, {30, 40}})
	c := NewMatrix(2, 2)
	if err := c.Add(a, b); err != nil {
		t.Fatal(err)
	}
	if c.At(1, 1) != 44 {
		t.Fatalf("add: %v", c)
	}
	if err := c.Sub(c, b); err != nil {
		t.Fatal(err)
	}
	if !c.Equal(a, 0) {
		t.Fatalf("sub did not invert add: %v", c)
	}
	if err := c.Add(a, NewMatrix(1, 2)); err == nil {
		t.Fatal("expected shape error")
	}
}

func TestTranspose(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := randMatrix(rng, 3, 5)
	at := a.Transpose()
	if at.Rows != 5 || at.Cols != 3 {
		t.Fatalf("bad transpose shape %dx%d", at.Rows, at.Cols)
	}
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < a.Cols; j++ {
			if a.At(i, j) != at.At(j, i) {
				t.Fatalf("transpose mismatch at (%d,%d)", i, j)
			}
		}
	}
	// Property: (A^T)^T == A.
	if !at.Transpose().Equal(a, 0) {
		t.Fatal("double transpose is not identity")
	}
}

func TestScale(t *testing.T) {
	a, _ := FromRows([][]float64{{1, -2}, {3, 4}})
	a.Scale(2)
	if a.At(0, 1) != -4 || a.At(1, 0) != 6 {
		t.Fatalf("scale: %v", a)
	}
}

func TestCopyFrom(t *testing.T) {
	a, _ := FromRows([][]float64{{1, 2}, {3, 4}})
	b := NewMatrix(2, 2)
	if err := b.CopyFrom(a); err != nil {
		t.Fatal(err)
	}
	if !b.Equal(a, 0) {
		t.Fatal("copy mismatch")
	}
	if err := b.CopyFrom(NewMatrix(3, 2)); err == nil {
		t.Fatal("expected shape error")
	}
}

func TestEqualShapes(t *testing.T) {
	if NewMatrix(2, 2).Equal(NewMatrix(2, 3), 1) {
		t.Fatal("different shapes must not be equal")
	}
}

func TestStringSmallAndLarge(t *testing.T) {
	small, _ := FromRows([][]float64{{1, 2}})
	if s := small.String(); len(s) == 0 {
		t.Fatal("empty string rendering")
	}
	big := NewMatrix(20, 20)
	if s := big.String(); len(s) > 40 {
		t.Fatalf("large matrix should be abridged, got %q", s)
	}
}

// Property: row swap is an involution.
func TestSwapRowsInvolutionProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(6)
		m := randMatrix(rng, n, n)
		orig := m.Clone()
		i, j := rng.Intn(n), rng.Intn(n)
		m.SwapRows(i, j)
		m.SwapRows(i, j)
		return m.Equal(orig, 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: transpose preserves the Frobenius norm.
func TestTransposeNormProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := randMatrix(rng, 1+rng.Intn(8), 1+rng.Intn(8))
		return math.Abs(NormFrob(m)-NormFrob(m.Transpose())) < 1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
