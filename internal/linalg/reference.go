package linalg

// This file holds the naive reference kernels selected by
// SetKernel(KernelReference): straightforward per-element loops through
// At/Set, written for obviousness rather than speed. They are the oracle
// the property tests compare the blocked kernels against and double as
// executable documentation of what the fast paths compute.

// refMulAdd computes C += alpha*A*B one element at a time (ijp order).
func refMulAdd(alpha float64, a, b, c *Matrix) {
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < b.Cols; j++ {
			acc := c.At(i, j)
			for p := 0; p < a.Cols; p++ {
				aip := alpha * a.At(i, p)
				if aip == 0 {
					continue
				}
				acc += aip * b.At(p, j)
			}
			c.Set(i, j, acc)
		}
	}
}

// refSolveLowerUnit solves L*X = B in place, per element.
func refSolveLowerUnit(l, b *Matrix) {
	n := l.Rows
	for i := 1; i < n; i++ {
		for k := 0; k < i; k++ {
			lik := l.At(i, k)
			if lik == 0 {
				continue
			}
			for j := 0; j < b.Cols; j++ {
				b.Set(i, j, b.At(i, j)-lik*b.At(k, j))
			}
		}
	}
}

// refSolveUpper solves U*X = B in place, per element. Returns false on a
// zero diagonal.
func refSolveUpper(u, b *Matrix) bool {
	n := u.Rows
	for i := n - 1; i >= 0; i-- {
		for k := i + 1; k < n; k++ {
			uik := u.At(i, k)
			if uik == 0 {
				continue
			}
			for j := 0; j < b.Cols; j++ {
				b.Set(i, j, b.At(i, j)-uik*b.At(k, j))
			}
		}
		d := u.At(i, i)
		if d == 0 {
			return false
		}
		inv := 1 / d
		for j := 0; j < b.Cols; j++ {
			b.Set(i, j, b.At(i, j)*inv)
		}
	}
	return true
}
