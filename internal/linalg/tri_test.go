package linalg

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func lowerUnitFrom(rng *rand.Rand, n int) *Matrix {
	l := Identity(n)
	for i := 1; i < n; i++ {
		for j := 0; j < i; j++ {
			l.Set(i, j, rng.NormFloat64())
		}
	}
	return l
}

func upperFrom(rng *rand.Rand, n int) *Matrix {
	u := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			u.Set(i, j, rng.NormFloat64())
		}
		u.Set(i, i, u.At(i, i)+3) // keep well away from zero
	}
	return u
}

func TestSolveLowerUnitMatrixRHS(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	l := lowerUnitFrom(rng, 6)
	x := randMatrix(rng, 6, 3)
	b, _ := Mul(l, x)
	if err := SolveLowerUnit(l, b); err != nil {
		t.Fatal(err)
	}
	if !b.Equal(x, 1e-9) {
		t.Fatal("lower solve wrong")
	}
}

func TestSolveUpperMatrixRHS(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	u := upperFrom(rng, 6)
	x := randMatrix(rng, 6, 4)
	b, _ := Mul(u, x)
	if err := SolveUpper(u, b); err != nil {
		t.Fatal(err)
	}
	if !b.Equal(x, 1e-9) {
		t.Fatal("upper solve wrong")
	}
}

func TestSolveUpperZeroDiagonal(t *testing.T) {
	u := NewMatrix(2, 2)
	u.Set(0, 0, 1)
	// u[1][1] stays 0
	b := NewMatrix(2, 1)
	if err := SolveUpper(u, b); !errors.Is(err, ErrSingular) {
		t.Fatalf("want ErrSingular, got %v", err)
	}
}

func TestTriShapeErrors(t *testing.T) {
	if err := SolveLowerUnit(NewMatrix(2, 3), NewMatrix(2, 2)); !errors.Is(err, ErrShape) {
		t.Fatal("lower: want shape error")
	}
	if err := SolveUpper(NewMatrix(3, 3), NewMatrix(2, 2)); !errors.Is(err, ErrShape) {
		t.Fatal("upper: want shape error")
	}
	if _, err := SolveUpperVec(NewMatrix(3, 3), []float64{1}); !errors.Is(err, ErrShape) {
		t.Fatal("upper vec: want shape error")
	}
	if _, err := SolveLowerUnitVec(NewMatrix(3, 3), []float64{1}); !errors.Is(err, ErrShape) {
		t.Fatal("lower vec: want shape error")
	}
}

func TestSolveUpperVecKnown(t *testing.T) {
	u, _ := FromRows([][]float64{
		{2, 1},
		{0, 4},
	})
	x, err := SolveUpperVec(u, []float64{4, 8})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[1]-2) > 1e-14 || math.Abs(x[0]-1) > 1e-14 {
		t.Fatalf("x = %v", x)
	}
}

func TestSolveUpperVecSingular(t *testing.T) {
	u := NewMatrix(2, 2)
	u.Set(0, 0, 1)
	if _, err := SolveUpperVec(u, []float64{1, 1}); !errors.Is(err, ErrSingular) {
		t.Fatalf("want ErrSingular, got %v", err)
	}
}

// Property: vector triangular solves invert multiplication.
func TestTriangularSolveInverseProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(15)
		l := lowerUnitFrom(rng, n)
		u := upperFrom(rng, n)
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		lb, _ := MulVec(l, x)
		xl, err := SolveLowerUnitVec(l, lb)
		if err != nil {
			return false
		}
		ub, _ := MulVec(u, x)
		xu, err := SolveUpperVec(u, ub)
		if err != nil {
			return false
		}
		for i := range x {
			if math.Abs(xl[i]-x[i]) > 1e-7 || math.Abs(xu[i]-x[i]) > 1e-7 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestNorms(t *testing.T) {
	a, _ := FromRows([][]float64{
		{1, -2},
		{-3, 4},
	})
	if got := Norm1(a); got != 6 {
		t.Fatalf("Norm1 = %v, want 6", got)
	}
	if got := NormInf(a); got != 7 {
		t.Fatalf("NormInf = %v, want 7", got)
	}
	if got := NormFrob(a); math.Abs(got-math.Sqrt(30)) > 1e-14 {
		t.Fatalf("NormFrob = %v", got)
	}
	if got := VecNormInf([]float64{1, -5, 2}); got != 5 {
		t.Fatalf("VecNormInf = %v", got)
	}
	if got := VecNorm1([]float64{1, -5, 2}); got != 8 {
		t.Fatalf("VecNorm1 = %v", got)
	}
	if got := VecNorm2([]float64{3, 4}); math.Abs(got-5) > 1e-14 {
		t.Fatalf("VecNorm2 = %v", got)
	}
}

func TestHPLResidualPerfect(t *testing.T) {
	a := Identity(3)
	x := []float64{1, 2, 3}
	r, err := HPLResidual(a, x, x)
	if err != nil {
		t.Fatal(err)
	}
	if r != 0 {
		t.Fatalf("residual of exact solve = %v", r)
	}
}

func TestHPLResidualZeroDenominator(t *testing.T) {
	a := NewMatrix(2, 2)
	r, err := HPLResidual(a, []float64{0, 0}, []float64{0, 0})
	if err != nil || r != 0 {
		t.Fatalf("r=%v err=%v", r, err)
	}
}
