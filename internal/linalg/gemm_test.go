package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// naiveMul is the reference triple loop used to validate the blocked kernel.
func naiveMul(a, b *Matrix) *Matrix {
	c := NewMatrix(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < b.Cols; j++ {
			var s float64
			for k := 0; k < a.Cols; k++ {
				s += a.At(i, k) * b.At(k, j)
			}
			c.Set(i, j, s)
		}
	}
	return c
}

func TestMulMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, dims := range [][3]int{{1, 1, 1}, {3, 4, 5}, {64, 64, 64}, {65, 63, 70}, {130, 20, 7}} {
		a := randMatrix(rng, dims[0], dims[1])
		b := randMatrix(rng, dims[1], dims[2])
		got, err := Mul(a, b)
		if err != nil {
			t.Fatal(err)
		}
		want := naiveMul(a, b)
		if !got.Equal(want, 1e-9) {
			t.Fatalf("Mul mismatch for dims %v", dims)
		}
	}
}

func TestMulShapeError(t *testing.T) {
	if _, err := Mul(NewMatrix(2, 3), NewMatrix(2, 3)); err == nil {
		t.Fatal("expected shape error")
	}
}

func TestMulAddAlphaZeroNoop(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a, b := randMatrix(rng, 4, 4), randMatrix(rng, 4, 4)
	c := randMatrix(rng, 4, 4)
	orig := c.Clone()
	if err := MulAdd(0, a, b, c); err != nil {
		t.Fatal(err)
	}
	if !c.Equal(orig, 0) {
		t.Fatal("alpha=0 modified C")
	}
}

func TestMulAddAccumulates(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a, b := randMatrix(rng, 8, 8), randMatrix(rng, 8, 8)
	c := NewMatrix(8, 8)
	if err := MulAdd(2, a, b, c); err != nil {
		t.Fatal(err)
	}
	want := naiveMul(a, b)
	want.Scale(2)
	if !c.Equal(want, 1e-9) {
		t.Fatal("alpha scaling wrong")
	}
	// Accumulate again: C should double.
	if err := MulAdd(2, a, b, c); err != nil {
		t.Fatal(err)
	}
	want.Scale(2)
	if !c.Equal(want, 1e-9) {
		t.Fatal("accumulation wrong")
	}
}

func TestParallelMulAddMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, workers := range []int{0, 1, 2, 3, 8, 100} {
		a := randMatrix(rng, 37, 29)
		b := randMatrix(rng, 29, 41)
		c1 := NewMatrix(37, 41)
		c2 := NewMatrix(37, 41)
		if err := MulAdd(1.5, a, b, c1); err != nil {
			t.Fatal(err)
		}
		if err := ParallelMulAdd(1.5, a, b, c2, workers); err != nil {
			t.Fatal(err)
		}
		if !c1.Equal(c2, 1e-10) {
			t.Fatalf("parallel(%d) disagrees with serial", workers)
		}
	}
}

func TestParallelMulAddShapeError(t *testing.T) {
	if err := ParallelMulAdd(1, NewMatrix(2, 3), NewMatrix(2, 3), NewMatrix(2, 3), 2); err == nil {
		t.Fatal("expected shape error")
	}
}

func TestMulVec(t *testing.T) {
	a, _ := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	y, err := MulVec(a, []float64{1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if y[0] != 6 || y[1] != 15 {
		t.Fatalf("MulVec: %v", y)
	}
	if _, err := MulVec(a, []float64{1}); err == nil {
		t.Fatal("expected shape error")
	}
}

// Property: matrix multiplication is associative within tolerance.
func TestMulAssociativityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(10)
		a, b, c := randMatrix(rng, n, n), randMatrix(rng, n, n), randMatrix(rng, n, n)
		ab, _ := Mul(a, b)
		abc1, _ := Mul(ab, c)
		bc, _ := Mul(b, c)
		abc2, _ := Mul(a, bc)
		return abc1.Equal(abc2, 1e-8*float64(n))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: A*I == A.
func TestMulIdentityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r, c := 1+rng.Intn(9), 1+rng.Intn(9)
		a := randMatrix(rng, r, c)
		ai, _ := Mul(a, Identity(c))
		return ai.Equal(a, 1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestMulVecLinearity(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	a := randMatrix(rng, 6, 6)
	x := make([]float64, 6)
	y := make([]float64, 6)
	for i := range x {
		x[i], y[i] = rng.NormFloat64(), rng.NormFloat64()
	}
	xy := make([]float64, 6)
	for i := range xy {
		xy[i] = x[i] + y[i]
	}
	ax, _ := MulVec(a, x)
	ay, _ := MulVec(a, y)
	axy, _ := MulVec(a, xy)
	for i := range axy {
		if math.Abs(axy[i]-ax[i]-ay[i]) > 1e-10 {
			t.Fatalf("linearity violated at %d", i)
		}
	}
}
