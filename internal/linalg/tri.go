package linalg

import "fmt"

// SolveLowerUnit solves L*X = B in place where L is unit lower triangular
// (diagonal implicitly one; only the strict lower triangle of l is read).
// B is overwritten with X. This mirrors BLAS dtrsm('L','L','N','U').
func SolveLowerUnit(l, b *Matrix) error {
	if l.Rows != l.Cols || l.Rows != b.Rows {
		return fmt.Errorf("%w: trsm lower %dx%d with rhs %dx%d", ErrShape, l.Rows, l.Cols, b.Rows, b.Cols)
	}
	if ActiveKernel() == KernelReference {
		refSolveLowerUnit(l, b)
		return nil
	}
	n := l.Rows
	for i := 1; i < n; i++ {
		li := l.RowView(i)
		bi := b.RowView(i)
		for k := 0; k < i; k++ {
			lik := li[k]
			if lik == 0 {
				continue
			}
			axpy(-lik, bi, b.RowView(k))
		}
	}
	return nil
}

// SolveUpper solves U*X = B in place where U is upper triangular with a
// nonzero diagonal. B is overwritten with X (dtrsm('L','U','N','N')).
func SolveUpper(u, b *Matrix) error {
	if u.Rows != u.Cols || u.Rows != b.Rows {
		return fmt.Errorf("%w: trsm upper %dx%d with rhs %dx%d", ErrShape, u.Rows, u.Cols, b.Rows, b.Cols)
	}
	if ActiveKernel() == KernelReference {
		if !refSolveUpper(u, b) {
			return fmt.Errorf("%w: zero diagonal", ErrSingular)
		}
		return nil
	}
	n := u.Rows
	for i := n - 1; i >= 0; i-- {
		ui := u.RowView(i)
		bi := b.RowView(i)
		for k := i + 1; k < n; k++ {
			uik := ui[k]
			if uik == 0 {
				continue
			}
			axpy(-uik, bi, b.RowView(k))
		}
		d := ui[i]
		if d == 0 {
			return fmt.Errorf("%w: zero diagonal at %d", ErrSingular, i)
		}
		inv := 1 / d
		for j := range bi {
			bi[j] *= inv
		}
	}
	return nil
}

// SolveUpperVec solves U*x = b for a single right-hand side, returning x.
func SolveUpperVec(u *Matrix, b []float64) ([]float64, error) {
	if u.Rows != u.Cols || len(b) != u.Rows {
		return nil, ErrShape
	}
	n := u.Rows
	x := make([]float64, n)
	copy(x, b)
	for i := n - 1; i >= 0; i-- {
		row := u.RowView(i)
		if row[i] == 0 {
			return nil, fmt.Errorf("%w: zero diagonal at %d", ErrSingular, i)
		}
		x[i] = (x[i] - dot(row[i+1:], x[i+1:])) / row[i]
	}
	return x, nil
}

// SolveLowerUnitVec solves L*x = b (unit diagonal) for one right-hand side.
func SolveLowerUnitVec(l *Matrix, b []float64) ([]float64, error) {
	if l.Rows != l.Cols || len(b) != l.Rows {
		return nil, ErrShape
	}
	n := l.Rows
	x := make([]float64, n)
	copy(x, b)
	for i := 1; i < n; i++ {
		row := l.RowView(i)
		x[i] -= dot(row[:i], x[:i])
	}
	return x, nil
}
