package linalg

import (
	"runtime"
	"sync"
)

// gemmBlock is the cache-blocking factor for MulAdd. 64 keeps three
// 64x64 float64 tiles (~96 KiB) near L2 on typical hardware.
const gemmBlock = 64

// MulAdd computes C += alpha * A * B using cache-blocked loops.
// A is m-by-k, B is k-by-n, C is m-by-n.
func MulAdd(alpha float64, a, b, c *Matrix) error {
	if a.Cols != b.Rows || c.Rows != a.Rows || c.Cols != b.Cols {
		return ErrShape
	}
	if alpha == 0 {
		return nil
	}
	m, k, n := a.Rows, a.Cols, b.Cols
	for i0 := 0; i0 < m; i0 += gemmBlock {
		i1 := min(i0+gemmBlock, m)
		for p0 := 0; p0 < k; p0 += gemmBlock {
			p1 := min(p0+gemmBlock, k)
			for j0 := 0; j0 < n; j0 += gemmBlock {
				j1 := min(j0+gemmBlock, n)
				gemmTile(alpha, a, b, c, i0, i1, p0, p1, j0, j1)
			}
		}
	}
	return nil
}

// gemmTile computes the (i0:i1, j0:j1) tile contribution from the
// (p0:p1) panel with an ikj loop order that streams rows of B and C.
func gemmTile(alpha float64, a, b, c *Matrix, i0, i1, p0, p1, j0, j1 int) {
	for i := i0; i < i1; i++ {
		arow := a.Data[i*a.Stride:]
		crow := c.Data[i*c.Stride:]
		for p := p0; p < p1; p++ {
			aip := alpha * arow[p]
			if aip == 0 {
				continue
			}
			brow := b.Data[p*b.Stride:]
			cj := crow[j0:j1]
			bj := brow[j0:j1]
			for t := range cj {
				cj[t] += aip * bj[t]
			}
		}
	}
}

// Mul returns A*B as a new matrix.
func Mul(a, b *Matrix) (*Matrix, error) {
	if a.Cols != b.Rows {
		return nil, ErrShape
	}
	c := NewMatrix(a.Rows, b.Cols)
	if err := MulAdd(1, a, b, c); err != nil {
		return nil, err
	}
	return c, nil
}

// ParallelMulAdd computes C += alpha*A*B splitting row blocks of C across
// workers goroutines (workers <= 0 selects GOMAXPROCS). Distinct goroutines
// write disjoint row ranges of C, so no synchronization of C is needed.
func ParallelMulAdd(alpha float64, a, b, c *Matrix, workers int) error {
	if a.Cols != b.Rows || c.Rows != a.Rows || c.Cols != b.Cols {
		return ErrShape
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	m := a.Rows
	if workers > m {
		workers = m
	}
	if workers <= 1 {
		return MulAdd(alpha, a, b, c)
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		r0 := w * m / workers
		r1 := (w + 1) * m / workers
		if r0 == r1 {
			continue
		}
		wg.Add(1)
		go func(r0, r1 int) {
			defer wg.Done()
			av := a.Slice(r0, r1, 0, a.Cols)
			cv := c.Slice(r0, r1, 0, c.Cols)
			_ = MulAdd(alpha, av, b, cv) // shapes verified above
		}(r0, r1)
	}
	wg.Wait()
	return nil
}

// MulVec returns A*x for a vector x of length A.Cols.
func MulVec(a *Matrix, x []float64) ([]float64, error) {
	if a.Cols != len(x) {
		return nil, ErrShape
	}
	y := make([]float64, a.Rows)
	for i := 0; i < a.Rows; i++ {
		row := a.RowView(i)
		var s float64
		for j, v := range row {
			s += v * x[j]
		}
		y[i] = s
	}
	return y, nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
