package linalg

import (
	"runtime"
	"sync"
)

// gemmBlock is the cache-blocking factor for MulAdd. 64 keeps three
// 64x64 float64 tiles (~96 KiB) near L2 on typical hardware.
const gemmBlock = 64

// packPool recycles the B-tile packing buffers so steady-state MulAdd calls
// allocate nothing.
var packPool = sync.Pool{
	New: func() any {
		buf := make([]float64, gemmBlock*gemmBlock)
		return &buf
	},
}

// MulAdd computes C += alpha * A * B using cache-blocked, panel-packed
// loops. A is m-by-k, B is k-by-n, C is m-by-n.
//
// Terms still accumulate into each C element in increasing-p order exactly
// as the reference kernel does, so the result is bit-identical to
// KernelReference up to the associativity the two share (element order is
// preserved; see TestMulAddMatchesReference).
func MulAdd(alpha float64, a, b, c *Matrix) error {
	if a.Cols != b.Rows || c.Rows != a.Rows || c.Cols != b.Cols {
		return ErrShape
	}
	if alpha == 0 {
		return nil
	}
	if ActiveKernel() == KernelReference {
		refMulAdd(alpha, a, b, c)
		return nil
	}
	m, k, n := a.Rows, a.Cols, b.Cols
	if m == 0 || k == 0 || n == 0 {
		return nil
	}
	packPtr := packPool.Get().(*[]float64)
	pack := *packPtr
	// Loop order p0 -> j0 -> i0: each B tile is packed contiguously once
	// and then streamed by every row block of A, while each C element still
	// receives its rank-1 contributions in increasing p order.
	for p0 := 0; p0 < k; p0 += gemmBlock {
		p1 := min(p0+gemmBlock, k)
		for j0 := 0; j0 < n; j0 += gemmBlock {
			j1 := min(j0+gemmBlock, n)
			pw := j1 - j0
			for p := p0; p < p1; p++ {
				copy(pack[(p-p0)*pw:(p-p0+1)*pw], b.Data[p*b.Stride+j0:p*b.Stride+j1])
			}
			for i0 := 0; i0 < m; i0 += gemmBlock {
				i1 := min(i0+gemmBlock, m)
				gemmTile(alpha, a, c, pack, i0, i1, p0, p1, j0, j1)
			}
		}
	}
	packPool.Put(packPtr)
	return nil
}

// gemmTile accumulates the packed B tile's contribution into the
// (i0:i1, j0:j1) tile of C: for every row of A, one unrolled AXPY per
// nonzero A element against the packed row of B.
func gemmTile(alpha float64, a, c *Matrix, pack []float64, i0, i1, p0, p1, j0, j1 int) {
	pw := j1 - j0
	for i := i0; i < i1; i++ {
		arow := a.Data[i*a.Stride+p0 : i*a.Stride+p1]
		crow := c.Data[i*c.Stride+j0 : i*c.Stride+j1]
		for p, ap := range arow {
			aip := alpha * ap
			if aip == 0 {
				continue
			}
			axpy(aip, crow, pack[p*pw:(p+1)*pw])
		}
	}
}

// Mul returns A*B as a new matrix.
func Mul(a, b *Matrix) (*Matrix, error) {
	if a.Cols != b.Rows {
		return nil, ErrShape
	}
	c := NewMatrix(a.Rows, b.Cols)
	if err := MulAdd(1, a, b, c); err != nil {
		return nil, err
	}
	return c, nil
}

// ParallelMulAdd computes C += alpha*A*B splitting row blocks of C across
// workers goroutines (workers <= 0 selects GOMAXPROCS). Distinct goroutines
// write disjoint row ranges of C, so no synchronization of C is needed.
func ParallelMulAdd(alpha float64, a, b, c *Matrix, workers int) error {
	if a.Cols != b.Rows || c.Rows != a.Rows || c.Cols != b.Cols {
		return ErrShape
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	m := a.Rows
	if workers > m {
		workers = m
	}
	if workers <= 1 {
		return MulAdd(alpha, a, b, c)
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		r0 := w * m / workers
		r1 := (w + 1) * m / workers
		if r0 == r1 {
			continue
		}
		wg.Add(1)
		go func(r0, r1 int) {
			defer wg.Done()
			av := a.Slice(r0, r1, 0, a.Cols)
			cv := c.Slice(r0, r1, 0, c.Cols)
			_ = MulAdd(alpha, av, b, cv) // shapes verified above
		}(r0, r1)
	}
	wg.Wait()
	return nil
}

// MulVec returns A*x for a vector x of length A.Cols.
func MulVec(a *Matrix, x []float64) ([]float64, error) {
	if a.Cols != len(x) {
		return nil, ErrShape
	}
	y := make([]float64, a.Rows)
	for i := 0; i < a.Rows; i++ {
		y[i] = dot(a.RowView(i), x)
	}
	return y, nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
