package linalg

import (
	"fmt"
	"math"
)

// LU holds an in-place LU factorization with partial (row) pivoting:
// P*A = L*U where L is unit lower triangular and U upper triangular, both
// packed into LU. Pivot[k] records the row swapped into position k at step k.
type LU struct {
	LU    *Matrix
	Pivot []int
	// Swaps counts the number of actual row exchanges (useful for the
	// determinant sign and for instrumentation).
	Swaps int
}

// Factorize computes the LU decomposition of a (copied; a is not modified).
// It returns ErrSingular when a zero pivot column is encountered.
func Factorize(a *Matrix) (*LU, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("%w: LU requires square matrix, got %dx%d", ErrShape, a.Rows, a.Cols)
	}
	m := a.Clone()
	n := m.Rows
	piv := make([]int, n)
	swaps := 0
	data, stride := m.Data, m.Stride
	for k := 0; k < n; k++ {
		// Partial pivoting: pick the largest magnitude in column k.
		p := k
		maxv := math.Abs(data[k*stride+k])
		for i := k + 1; i < n; i++ {
			if v := math.Abs(data[i*stride+k]); v > maxv {
				maxv, p = v, i
			}
		}
		piv[k] = p
		if maxv == 0 {
			return nil, fmt.Errorf("%w: zero pivot at column %d", ErrSingular, k)
		}
		if p != k {
			m.SwapRows(p, k)
			swaps++
		}
		pivVal := data[k*stride+k]
		rk := data[k*stride+k+1 : k*stride+n]
		for i := k + 1; i < n; i++ {
			ri := data[i*stride : i*stride+n]
			l := ri[k] / pivVal
			ri[k] = l
			if l == 0 {
				continue
			}
			axpy(-l, ri[k+1:], rk)
		}
	}
	return &LU{LU: m, Pivot: piv, Swaps: swaps}, nil
}

// Solve solves A*x = b using the factorization. b is not modified.
func (f *LU) Solve(b []float64) ([]float64, error) {
	n := f.LU.Rows
	if len(b) != n {
		return nil, ErrShape
	}
	x := make([]float64, n)
	copy(x, b)
	// Apply the pivot permutation.
	for k := 0; k < n; k++ {
		if p := f.Pivot[k]; p != k {
			x[k], x[p] = x[p], x[k]
		}
	}
	// Forward substitution with unit lower triangle.
	for i := 1; i < n; i++ {
		row := f.LU.RowView(i)
		var s float64
		for j := 0; j < i; j++ {
			s += row[j] * x[j]
		}
		x[i] -= s
	}
	// Backward substitution with the upper triangle.
	for i := n - 1; i >= 0; i-- {
		row := f.LU.RowView(i)
		s := x[i]
		for j := i + 1; j < n; j++ {
			s -= row[j] * x[j]
		}
		x[i] = s / row[i]
	}
	return x, nil
}

// Det returns the determinant of the factored matrix.
func (f *LU) Det() float64 {
	d := 1.0
	if f.Swaps%2 == 1 {
		d = -1
	}
	for i := 0; i < f.LU.Rows; i++ {
		d *= f.LU.At(i, i)
	}
	return d
}

// SolveLinear is a convenience wrapper: factorizes a and solves a*x = b.
func SolveLinear(a *Matrix, b []float64) ([]float64, error) {
	f, err := Factorize(a)
	if err != nil {
		return nil, err
	}
	return f.Solve(b)
}
