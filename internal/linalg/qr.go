package linalg

import (
	"fmt"
	"math"
)

// QR holds a Householder QR factorization A = Q*R of an m-by-n matrix with
// m >= n. The factors are stored compactly: R in the upper triangle of QR,
// the Householder vectors below the diagonal with scaling factors in Tau.
type QR struct {
	QR  *Matrix
	Tau []float64
}

// FactorizeQR computes the Householder QR factorization of a (copied).
// Requires a.Rows >= a.Cols.
func FactorizeQR(a *Matrix) (*QR, error) {
	if a.Rows < a.Cols {
		return nil, fmt.Errorf("%w: QR requires rows >= cols, got %dx%d", ErrShape, a.Rows, a.Cols)
	}
	m := a.Clone()
	rows, cols := m.Rows, m.Cols
	tau := make([]float64, cols)
	for k := 0; k < cols; k++ {
		// Compute the Householder reflector for column k below row k.
		var norm float64
		for i := k; i < rows; i++ {
			v := m.At(i, k)
			norm += v * v
		}
		norm = math.Sqrt(norm)
		if norm == 0 {
			tau[k] = 0
			continue
		}
		alpha := m.At(k, k)
		if alpha > 0 {
			norm = -norm
		}
		// v = x - norm*e1, normalized so v[0] = 1.
		v0 := alpha - norm
		tau[k] = -v0 / norm // standard LAPACK tau = (beta - alpha)/beta with sign handling
		invV0 := 1 / v0
		for i := k + 1; i < rows; i++ {
			m.Set(i, k, m.At(i, k)*invV0)
		}
		m.Set(k, k, norm)
		// Apply the reflector H = I - tau*v*v^T to the trailing columns.
		for j := k + 1; j < cols; j++ {
			// w = v^T * col_j
			w := m.At(k, j) // v[0] == 1
			for i := k + 1; i < rows; i++ {
				w += m.At(i, k) * m.At(i, j)
			}
			w *= tau[k]
			m.Set(k, j, m.At(k, j)-w)
			for i := k + 1; i < rows; i++ {
				m.Set(i, j, m.At(i, j)-w*m.At(i, k))
			}
		}
	}
	return &QR{QR: m, Tau: tau}, nil
}

// applyQT overwrites b with Q^T * b.
func (f *QR) applyQT(b []float64) {
	rows, cols := f.QR.Rows, f.QR.Cols
	for k := 0; k < cols; k++ {
		if f.Tau[k] == 0 {
			continue
		}
		w := b[k]
		for i := k + 1; i < rows; i++ {
			w += f.QR.At(i, k) * b[i]
		}
		w *= f.Tau[k]
		b[k] -= w
		for i := k + 1; i < rows; i++ {
			b[i] -= w * f.QR.At(i, k)
		}
	}
}

// SolveLS returns the least-squares solution x minimizing ||A*x - b||_2.
// b is not modified. Requires len(b) == A.Rows.
func (f *QR) SolveLS(b []float64) ([]float64, error) {
	rows, cols := f.QR.Rows, f.QR.Cols
	if len(b) != rows {
		return nil, ErrShape
	}
	qtb := make([]float64, rows)
	copy(qtb, b)
	f.applyQT(qtb)
	// Back-substitute against R (upper cols x cols block).
	x := make([]float64, cols)
	for i := cols - 1; i >= 0; i-- {
		s := qtb[i]
		row := f.QR.RowView(i)
		for j := i + 1; j < cols; j++ {
			s -= row[j] * x[j]
		}
		d := row[i]
		if d == 0 {
			return nil, fmt.Errorf("%w: rank-deficient least squares (R[%d,%d]=0)", ErrSingular, i, i)
		}
		x[i] = s / d
	}
	return x, nil
}

// ResidualNorm returns ||A*x - b||_2 given the original A is not retained:
// it uses the stored factors, computing || (Q^T b)[cols:] ||_2 which equals
// the least-squares residual norm for the optimal x.
func (f *QR) ResidualNorm(b []float64) (float64, error) {
	rows, cols := f.QR.Rows, f.QR.Cols
	if len(b) != rows {
		return 0, ErrShape
	}
	qtb := make([]float64, rows)
	copy(qtb, b)
	f.applyQT(qtb)
	var s float64
	for i := cols; i < rows; i++ {
		s += qtb[i] * qtb[i]
	}
	return math.Sqrt(s), nil
}
