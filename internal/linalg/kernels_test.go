package linalg

import (
	"math/rand"
	"testing"
)

// withKernel runs f under the given kernel selection, restoring the previous
// selection afterwards.
func withKernel(k Kernel, f func()) {
	prev := SetKernel(k)
	defer SetKernel(prev)
	f()
}

// kernelShapes covers the blocking edge cases: empty, single element,
// sub-block, exact multiples of gemmBlock, one-off-a-multiple, and long
// skinny panels like the HPL trailing updates.
var kernelShapes = [][3]int{
	{0, 0, 0}, {0, 5, 3}, {4, 0, 6}, {7, 3, 0},
	{1, 1, 1}, {3, 5, 2},
	{gemmBlock, gemmBlock, gemmBlock},
	{gemmBlock - 1, gemmBlock + 1, gemmBlock},
	{2*gemmBlock + 3, gemmBlock - 2, gemmBlock + 5},
	{130, 7, 99}, {5, 200, 3},
}

func TestMulAddMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, dims := range kernelShapes {
		m, k, n := dims[0], dims[1], dims[2]
		a := randMatrix(rng, m, k)
		b := randMatrix(rng, k, n)
		c0 := randMatrix(rng, m, n)
		got := c0.Clone()
		if err := MulAdd(1.5, a, b, got); err != nil {
			t.Fatal(err)
		}
		want := c0.Clone()
		withKernel(KernelReference, func() {
			if err := MulAdd(1.5, a, b, want); err != nil {
				t.Fatal(err)
			}
		})
		// The blocked kernel preserves the reference's per-element
		// accumulation order, so agreement is exact, not approximate.
		if !equalExact(got, want) {
			t.Fatalf("MulAdd mismatch for dims %v", dims)
		}
	}
}

func TestMulAddMatchesReferenceOnStridedViews(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for _, dims := range [][3]int{{5, 9, 7}, {gemmBlock + 2, gemmBlock - 3, 17}} {
		m, k, n := dims[0], dims[1], dims[2]
		// Interior slices of larger parents: Stride > Cols on every operand.
		ap := randMatrix(rng, m+4, k+6)
		bp := randMatrix(rng, k+3, n+5)
		cp := randMatrix(rng, m+2, n+8)
		a := ap.Slice(2, 2+m, 3, 3+k)
		b := bp.Slice(1, 1+k, 4, 4+n)
		c := cp.Slice(1, 1+m, 2, 2+n)
		want := c.Clone()
		withKernel(KernelReference, func() {
			if err := MulAdd(-0.75, a, b, want); err != nil {
				t.Fatal(err)
			}
		})
		if err := MulAdd(-0.75, a, b, c); err != nil {
			t.Fatal(err)
		}
		if !equalExact(c.Clone(), want) {
			t.Fatalf("strided MulAdd mismatch for dims %v", dims)
		}
	}
}

func TestTriangularSolvesMatchReference(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for _, dims := range [][2]int{{1, 1}, {5, 3}, {gemmBlock, 7}, {gemmBlock + 9, gemmBlock - 1}, {97, 31}} {
		n, m := dims[0], dims[1]
		tri := randMatrix(rng, n, n)
		for i := 0; i < n; i++ {
			tri.Set(i, i, 1+rng.Float64()) // well away from zero
		}
		rhs := randMatrix(rng, n, m)

		gotL := rhs.Clone()
		if err := SolveLowerUnit(tri, gotL); err != nil {
			t.Fatal(err)
		}
		wantL := rhs.Clone()
		withKernel(KernelReference, func() {
			if err := SolveLowerUnit(tri, wantL); err != nil {
				t.Fatal(err)
			}
		})
		if !equalExact(gotL, wantL) {
			t.Fatalf("SolveLowerUnit mismatch for n=%d m=%d", n, m)
		}

		gotU := rhs.Clone()
		if err := SolveUpper(tri, gotU); err != nil {
			t.Fatal(err)
		}
		wantU := rhs.Clone()
		withKernel(KernelReference, func() {
			if err := SolveUpper(tri, wantU); err != nil {
				t.Fatal(err)
			}
		})
		if !equalExact(gotU, wantU) {
			t.Fatalf("SolveUpper mismatch for n=%d m=%d", n, m)
		}
	}
}

func TestSolveUpperZeroDiagonalBothKernels(t *testing.T) {
	u := NewMatrix(3, 3)
	u.Set(0, 0, 1)
	u.Set(1, 1, 0) // singular
	u.Set(2, 2, 2)
	b := NewMatrix(3, 1)
	if err := SolveUpper(u, b.Clone()); err == nil {
		t.Fatal("blocked kernel accepted zero diagonal")
	}
	withKernel(KernelReference, func() {
		if err := SolveUpper(u, b.Clone()); err == nil {
			t.Fatal("reference kernel accepted zero diagonal")
		}
	})
}

func TestSetKernelRoundTrip(t *testing.T) {
	if got := ActiveKernel(); got != KernelBlocked {
		t.Fatalf("default kernel = %v, want KernelBlocked", got)
	}
	prev := SetKernel(KernelReference)
	if prev != KernelBlocked {
		t.Fatalf("SetKernel returned %v, want KernelBlocked", prev)
	}
	if got := ActiveKernel(); got != KernelReference {
		t.Fatalf("ActiveKernel = %v after SetKernel(KernelReference)", got)
	}
	SetKernel(prev)
}

func TestMulAddSteadyStateAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	a := randMatrix(rng, gemmBlock+5, gemmBlock)
	b := randMatrix(rng, gemmBlock, gemmBlock+3)
	c := randMatrix(rng, gemmBlock+5, gemmBlock+3)
	// Warm the pack pool, then assert the hot loop allocates nothing.
	if err := MulAdd(1, a, b, c); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(20, func() {
		if err := MulAdd(1, a, b, c); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("MulAdd allocates %.1f objects per call in steady state, want 0", allocs)
	}
}

func TestAxpyDotAgreeWithRolledLoops(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	for _, n := range []int{0, 1, 2, 3, 4, 5, 7, 8, 9, 16, 33, 100} {
		src := make([]float64, n)
		dst := make([]float64, n)
		want := make([]float64, n)
		for i := range src {
			src[i] = rng.NormFloat64()
			dst[i] = rng.NormFloat64()
			want[i] = dst[i]
		}
		alpha := rng.NormFloat64()
		var wantDot float64
		for i := range want {
			want[i] += alpha * src[i]
			wantDot += dst[i] * src[i]
		}
		if got := Dot(dst, src); got != wantDot {
			t.Fatalf("n=%d: Dot = %v, want %v", n, got, wantDot)
		}
		Axpy(alpha, dst, src)
		for i := range dst {
			if dst[i] != want[i] {
				t.Fatalf("n=%d: Axpy[%d] = %v, want %v", n, i, dst[i], want[i])
			}
		}
	}
}

// equalExact reports bitwise equality of two same-shape matrices.
func equalExact(a, b *Matrix) bool {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return false
	}
	for i := 0; i < a.Rows; i++ {
		ra, rb := a.RowView(i), b.RowView(i)
		for j := range ra {
			if ra[j] != rb[j] {
				return false
			}
		}
	}
	return true
}
