package stats

import (
	"math"
	"math/rand"
	"sort"
)

// QuantileReservoir estimates quantiles of a stream in bounded memory. Up to
// its capacity it holds every value and quantiles are exact; past capacity
// it switches to Vitter's algorithm R (uniform reservoir sampling) driven by
// an explicitly seeded generator, so the estimate — like everything else in
// this repository — is a pure function of (seed, feed order). Feeding values
// in a fixed order (the replay summarizer uses request-index order) makes
// the reported quantiles byte-stable across runs and worker counts.
type QuantileReservoir struct {
	vals   []float64
	n      int64
	rng    *rand.Rand
	sorted bool
}

// NewQuantileReservoir returns a reservoir holding at most capacity values
// (<= 0 selects 4096). The seed drives the sampling once the stream exceeds
// the capacity; streams at or below it never consume randomness.
func NewQuantileReservoir(capacity int, seed int64) *QuantileReservoir {
	if capacity <= 0 {
		capacity = 4096
	}
	return &QuantileReservoir{
		vals: make([]float64, 0, capacity),
		rng:  rand.New(rand.NewSource(seed)),
	}
}

// Add feeds one value. It allocates nothing after construction: the append
// below is guarded by len < cap, so it only ever reuses the reservation made
// in NewQuantileReservoir (the allocfree analyzer certifies this statically).
//
//het:allocfree
func (r *QuantileReservoir) Add(v float64) {
	r.n++
	if len(r.vals) < cap(r.vals) {
		r.vals = append(r.vals, v)
		r.sorted = false
		return
	}
	// Algorithm R: the i-th value (1-based) replaces a uniformly random
	// slot with probability cap/i.
	if j := r.rng.Int63n(r.n); j < int64(cap(r.vals)) {
		r.vals[j] = v
		r.sorted = false
	}
}

// Count returns the number of values fed so far.
func (r *QuantileReservoir) Count() int64 { return r.n }

// Exact reports whether the reservoir still holds the complete stream.
func (r *QuantileReservoir) Exact() bool { return r.n <= int64(cap(r.vals)) }

// Quantile returns the nearest-rank q-quantile (0 < q <= 1) of the held
// sample: exact when the stream fits the capacity, a uniform-sample estimate
// otherwise. It returns NaN on an empty reservoir.
func (r *QuantileReservoir) Quantile(q float64) float64 {
	if len(r.vals) == 0 {
		return math.NaN()
	}
	if !r.sorted {
		sort.Float64s(r.vals)
		r.sorted = true
	}
	idx := int(math.Ceil(q*float64(len(r.vals)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(r.vals) {
		idx = len(r.vals) - 1
	}
	return r.vals[idx]
}

// Max returns the largest held value (NaN when empty). Past capacity this is
// the sample maximum, a lower bound on the stream maximum.
func (r *QuantileReservoir) Max() float64 { return r.Quantile(1) }
