package stats

import (
	"math"
	"math/rand"
	"testing"
)

func TestQuantileReservoirExactSmall(t *testing.T) {
	r := NewQuantileReservoir(1000, 1)
	// Feed 1..100 shuffled deterministically: quantiles must be exact
	// nearest-rank values regardless of feed order while under capacity.
	perm := rand.New(rand.NewSource(5)).Perm(100)
	for _, i := range perm {
		r.Add(float64(i + 1))
	}
	if !r.Exact() {
		t.Fatal("100 values in a 1000-slot reservoir should be exact")
	}
	if r.Count() != 100 {
		t.Fatalf("Count = %d, want 100", r.Count())
	}
	for _, tc := range []struct{ q, want float64 }{
		{0.50, 50}, {0.95, 95}, {0.99, 99}, {1, 100}, {0.001, 1},
	} {
		if got := r.Quantile(tc.q); got != tc.want {
			t.Errorf("Quantile(%g) = %g, want %g", tc.q, got, tc.want)
		}
	}
	if got := r.Max(); got != 100 {
		t.Errorf("Max = %g, want 100", got)
	}
}

func TestQuantileReservoirEmpty(t *testing.T) {
	r := NewQuantileReservoir(8, 1)
	if !math.IsNaN(r.Quantile(0.5)) || !math.IsNaN(r.Max()) {
		t.Error("empty reservoir should return NaN quantiles")
	}
	if r.Count() != 0 {
		t.Errorf("Count = %d, want 0", r.Count())
	}
}

func TestQuantileReservoirDeterministicSampling(t *testing.T) {
	feed := func(seed int64) *QuantileReservoir {
		r := NewQuantileReservoir(256, seed)
		for i := 0; i < 100000; i++ {
			r.Add(float64(i))
		}
		return r
	}
	a, b := feed(7), feed(7)
	if a.Exact() {
		t.Fatal("100k values must overflow a 256-slot reservoir")
	}
	for _, q := range []float64{0.5, 0.9, 0.95, 0.99} {
		if a.Quantile(q) != b.Quantile(q) {
			t.Fatalf("same seed, same feed: Quantile(%g) differs (%g vs %g)", q, a.Quantile(q), b.Quantile(q))
		}
	}
	// A uniform 0..100k stream sampled into 256 slots: the median estimate
	// should land near the middle (a weak bound keeps this robust to the
	// fixed seed while still catching a broken sampler).
	if med := a.Quantile(0.5); med < 30000 || med > 70000 {
		t.Errorf("sampled median %g wildly off the true 50000", med)
	}
}

func TestQuantileReservoirAddNoAllocs(t *testing.T) {
	r := NewQuantileReservoir(128, 3)
	allocs := testing.AllocsPerRun(10000, func() { r.Add(1.5) })
	if allocs != 0 {
		t.Errorf("Add allocates %v times per call, want 0", allocs)
	}
}
