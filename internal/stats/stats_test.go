package stats

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestRelError(t *testing.T) {
	if got := RelError(102, 100); !approx(got, 0.02, 1e-12) {
		t.Fatalf("RelError = %v", got)
	}
	if got := RelError(95, 100); !approx(got, -0.05, 1e-12) {
		t.Fatalf("RelError = %v", got)
	}
	if got := RelError(0, 0); got != 0 {
		t.Fatalf("RelError(0,0) = %v", got)
	}
	if got := RelError(1, 0); !math.IsInf(got, 1) {
		t.Fatalf("RelError(1,0) = %v", got)
	}
}

func TestMeanVarianceStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	m, err := Mean(xs)
	if err != nil || m != 5 {
		t.Fatalf("mean = %v, %v", m, err)
	}
	v, _ := Variance(xs)
	if v != 4 {
		t.Fatalf("variance = %v", v)
	}
	sd, _ := StdDev(xs)
	if sd != 2 {
		t.Fatalf("stddev = %v", sd)
	}
}

func TestEmptyInputs(t *testing.T) {
	if _, err := Mean(nil); !errors.Is(err, ErrEmpty) {
		t.Fatal("Mean(nil) should fail")
	}
	if _, err := Variance(nil); !errors.Is(err, ErrEmpty) {
		t.Fatal("Variance(nil) should fail")
	}
	if _, err := Median(nil); !errors.Is(err, ErrEmpty) {
		t.Fatal("Median(nil) should fail")
	}
	if _, err := MaxAbs(nil); !errors.Is(err, ErrEmpty) {
		t.Fatal("MaxAbs(nil) should fail")
	}
	if _, err := Pearson(nil, nil); !errors.Is(err, ErrEmpty) {
		t.Fatal("Pearson(nil) should fail")
	}
	if _, err := Summarize(nil); !errors.Is(err, ErrEmpty) {
		t.Fatal("Summarize(nil) should fail")
	}
}

func TestPearsonPerfectCorrelation(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{10, 20, 30, 40}
	r, err := Pearson(xs, ys)
	if err != nil || !approx(r, 1, 1e-12) {
		t.Fatalf("r = %v, %v", r, err)
	}
	neg := []float64{-1, -2, -3, -4}
	r, _ = Pearson(xs, neg)
	if !approx(r, -1, 1e-12) {
		t.Fatalf("r = %v", r)
	}
}

func TestPearsonDegenerate(t *testing.T) {
	r, err := Pearson([]float64{1, 1, 1}, []float64{1, 2, 3})
	if err != nil || r != 0 {
		t.Fatalf("degenerate r = %v, %v", r, err)
	}
}

func TestMedian(t *testing.T) {
	if m, _ := Median([]float64{3, 1, 2}); m != 2 {
		t.Fatalf("median odd = %v", m)
	}
	if m, _ := Median([]float64{4, 1, 3, 2}); m != 2.5 {
		t.Fatalf("median even = %v", m)
	}
	// Input must not be reordered.
	xs := []float64{3, 1, 2}
	Median(xs)
	if xs[0] != 3 {
		t.Fatal("Median mutated input")
	}
}

func TestMaxAbs(t *testing.T) {
	m, _ := MaxAbs([]float64{1, -9, 4})
	if m != 9 {
		t.Fatalf("MaxAbs = %v", m)
	}
}

func TestSummarize(t *testing.T) {
	s, err := Summarize([]float64{-1, 0, 3})
	if err != nil {
		t.Fatal(err)
	}
	if s.N != 3 || s.Min != -1 || s.Max != 3 {
		t.Fatalf("summary = %+v", s)
	}
	if !approx(s.MeanAbs, 4.0/3, 1e-12) || s.MaxAb != 3 {
		t.Fatalf("abs stats = %+v", s)
	}
}

func TestLinearTransformFitExact(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ts := make([]float64, len(xs))
	for i, x := range xs {
		ts[i] = 2.5*x - 3
	}
	lt, err := FitLinearTransform(xs, ts)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(lt.A, 2.5, 1e-12) || !approx(lt.B, -3, 1e-12) {
		t.Fatalf("lt = %+v", lt)
	}
	if !approx(lt.Apply(10), 22, 1e-12) {
		t.Fatalf("apply = %v", lt.Apply(10))
	}
}

func TestLinearTransformEdgeCases(t *testing.T) {
	lt, err := FitLinearTransform(nil, nil)
	if err != nil || lt.A != 1 || lt.B != 0 {
		t.Fatalf("empty fit = %+v, %v", lt, err)
	}
	lt, err = FitLinearTransform([]float64{2}, []float64{6})
	if err != nil || !approx(lt.A, 3, 1e-12) || lt.B != 0 {
		t.Fatalf("single fit = %+v, %v", lt, err)
	}
	lt, err = FitLinearTransform([]float64{0}, []float64{6})
	if err != nil || lt.A != 1 || lt.B != 6 {
		t.Fatalf("single zero-x fit = %+v", lt)
	}
	// Constant x: fall back to offset.
	lt, err = FitLinearTransform([]float64{2, 2}, []float64{5, 7})
	if err != nil || lt.A != 1 || !approx(lt.B, 4, 1e-12) {
		t.Fatalf("constant-x fit = %+v", lt)
	}
	if _, err := FitLinearTransform([]float64{1}, []float64{1, 2}); !errors.Is(err, ErrEmpty) {
		t.Fatal("length mismatch should fail")
	}
}

// Property: Pearson is invariant under positive affine transforms.
func TestPearsonAffineInvarianceProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(20)
		xs := make([]float64, n)
		ys := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64()
			ys[i] = rng.NormFloat64()
		}
		r1, err := Pearson(xs, ys)
		if err != nil {
			return false
		}
		sx := make([]float64, n)
		for i := range xs {
			sx[i] = 3*xs[i] + 11
		}
		r2, err := Pearson(sx, ys)
		if err != nil {
			return false
		}
		return approx(r1, r2, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: the fitted linear transform minimizes squared error (perturbing
// A or B never helps).
func TestLinearTransformOptimalityProperty(t *testing.T) {
	sse := func(lt LinearTransform, xs, ts []float64) float64 {
		var s float64
		for i := range xs {
			d := lt.Apply(xs[i]) - ts[i]
			s += d * d
		}
		return s
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(10)
		xs := make([]float64, n)
		ts := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64() * 10
			ts[i] = rng.NormFloat64() * 10
		}
		lt, err := FitLinearTransform(xs, ts)
		if err != nil {
			return false
		}
		base := sse(lt, xs, ts)
		for _, d := range []float64{1e-3, -1e-3} {
			if sse(LinearTransform{lt.A + d, lt.B}, xs, ts) < base-1e-9 {
				return false
			}
			if sse(LinearTransform{lt.A, lt.B + d}, xs, ts) < base-1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
