// Package stats provides the small statistical toolkit used by the
// evaluation harness: relative errors, correlation, and summary statistics
// over measurement/estimation pairs.
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrEmpty reports a statistic requested over no data.
var ErrEmpty = errors.New("stats: empty input")

// RelError returns (estimated - actual) / actual, the paper's error metric
// (τ - T̂)/T̂. It returns +Inf when actual is zero and estimated is not.
func RelError(estimated, actual float64) float64 {
	if actual == 0 {
		if estimated == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return (estimated - actual) / actual
}

// Mean returns the arithmetic mean of xs.
func Mean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs)), nil
}

// Variance returns the population variance of xs.
func Variance(xs []float64) (float64, error) {
	m, err := Mean(xs)
	if err != nil {
		return 0, err
	}
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs)), nil
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) (float64, error) {
	v, err := Variance(xs)
	if err != nil {
		return 0, err
	}
	return math.Sqrt(v), nil
}

// Pearson returns the Pearson correlation coefficient of paired samples.
// It returns 0 for degenerate (zero-variance) inputs.
func Pearson(xs, ys []float64) (float64, error) {
	if len(xs) == 0 || len(xs) != len(ys) {
		return 0, ErrEmpty
	}
	mx, _ := Mean(xs)
	my, _ := Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0, nil
	}
	return sxy / math.Sqrt(sxx*syy), nil
}

// MaxAbs returns max_i |xs_i|.
func MaxAbs(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	var mx float64
	for _, x := range xs {
		if a := math.Abs(x); a > mx {
			mx = a
		}
	}
	return mx, nil
}

// Median returns the median of xs (average of the two central elements for
// even lengths). The input is not modified.
func Median(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2], nil
	}
	return (s[n/2-1] + s[n/2]) / 2, nil
}

// Summary bundles the descriptive statistics of one sample.
type Summary struct {
	N              int
	Mean, Median   float64
	StdDev         float64
	Min, Max       float64
	MeanAbs, MaxAb float64
}

// Summarize computes a Summary of xs.
func Summarize(xs []float64) (Summary, error) {
	if len(xs) == 0 {
		return Summary{}, ErrEmpty
	}
	m, _ := Mean(xs)
	md, _ := Median(xs)
	sd, _ := StdDev(xs)
	mn, mx := xs[0], xs[0]
	var sumAbs, maxAbs float64
	for _, x := range xs {
		if x < mn {
			mn = x
		}
		if x > mx {
			mx = x
		}
		a := math.Abs(x)
		sumAbs += a
		if a > maxAbs {
			maxAbs = a
		}
	}
	return Summary{
		N: len(xs), Mean: m, Median: md, StdDev: sd,
		Min: mn, Max: mx,
		MeanAbs: sumAbs / float64(len(xs)), MaxAb: maxAbs,
	}, nil
}

// LinearTransform is an affine correction t = A*x + B, the paper's
// "adjustment by linear transformation" (§4.1).
type LinearTransform struct {
	A, B float64
}

// Apply evaluates the transform.
func (lt LinearTransform) Apply(x float64) float64 { return lt.A*x + lt.B }

// FitScale fits the pure scaling t ≈ A·x (B = 0) by least squares:
// A = Σ x·t / Σ x². Unlike the affine fit it cannot go negative for
// positive inputs, which makes it safe to extrapolate far from the
// calibration points. Degenerate input (no pairs, all-zero x) yields the
// identity.
func FitScale(xs, ts []float64) (LinearTransform, error) {
	if len(xs) != len(ts) {
		return LinearTransform{A: 1}, ErrEmpty
	}
	var sxx, sxt float64
	for i := range xs {
		sxx += xs[i] * xs[i]
		sxt += xs[i] * ts[i]
	}
	if sxx == 0 {
		return LinearTransform{A: 1}, nil
	}
	return LinearTransform{A: sxt / sxx}, nil
}

// FitLinearTransform fits t ≈ A·x + B by least squares over paired samples.
// With a single pair it returns a pure scaling (B = 0); with none, identity.
func FitLinearTransform(xs, ts []float64) (LinearTransform, error) {
	if len(xs) != len(ts) {
		return LinearTransform{A: 1}, ErrEmpty
	}
	switch len(xs) {
	case 0:
		return LinearTransform{A: 1}, nil
	case 1:
		if xs[0] == 0 {
			return LinearTransform{A: 1, B: ts[0]}, nil
		}
		return LinearTransform{A: ts[0] / xs[0]}, nil
	}
	mx, _ := Mean(xs)
	mt, _ := Mean(ts)
	var sxx, sxt float64
	for i := range xs {
		dx := xs[i] - mx
		sxx += dx * dx
		sxt += dx * (ts[i] - mt)
	}
	if sxx == 0 {
		return LinearTransform{A: 1, B: mt - mx}, nil
	}
	a := sxt / sxx
	return LinearTransform{A: a, B: mt - a*mx}, nil
}
