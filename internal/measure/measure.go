// Package measure runs the paper's measurement campaigns on the simulated
// cluster: grids of HPL executions whose per-class timings become the
// training samples for the estimation models, with the wall-clock cost
// accounting of the paper's Tables 3 and 6.
package measure

import (
	"errors"
	"fmt"
	"sort"

	"hetmodel/internal/cluster"
	"hetmodel/internal/core"
	"hetmodel/internal/hpl"
	"hetmodel/internal/parallel"
)

// ErrBadCampaign reports an invalid campaign description.
var ErrBadCampaign = errors.New("measure: invalid campaign")

// Group is one homogeneous sub-campaign: a labelled configuration grid
// (the paper measures the Athlon and Pentium-II grids separately, §3.5).
type Group struct {
	Label string
	Space cluster.Space
}

// Runner executes one measurement of an application (HPL by default; any
// application producing the shared result layout works, e.g. the
// distributed Cholesky in internal/chol).
type Runner func(*cluster.Cluster, cluster.Configuration, hpl.Params) (*hpl.Result, error)

// Campaign is a full model-construction measurement plan.
type Campaign struct {
	// Name identifies the campaign ("Basic", "NL", "NS").
	Name string
	// Ns are the problem sizes measured.
	Ns []int
	// Groups are the configuration grids, each measured at every N.
	Groups []Group
	// Runner executes each measurement; nil selects hpl.Run.
	Runner Runner
	// Workers bounds the concurrent measurements (<= 0 selects GOMAXPROCS,
	// 1 forces sequential execution). Each measurement is an independent
	// simulation, and results are accumulated in the campaign's enumeration
	// order either way, so the output is byte-identical at any setting.
	Workers int
}

// Result carries the campaign's samples and cost accounting.
type Result struct {
	Campaign Campaign
	// Samples hold one entry per (run, used class): the model training set.
	Samples []core.Sample
	// Cost[label][N] is the total simulated execution time (seconds) spent
	// measuring that group at that size — the content of Tables 3 and 6.
	Cost map[string]map[int]float64
	// Runs is the number of HPL executions performed.
	Runs int
}

// TotalCost returns the campaign's total measurement time in seconds.
// Summation follows a deterministic order so the result is bit-stable.
func (r *Result) TotalCost() float64 {
	labels := make([]string, 0, len(r.Cost))
	for label := range r.Cost {
		labels = append(labels, label)
	}
	sort.Strings(labels)
	var total float64
	for _, label := range labels {
		ns, costs := r.GroupCost(label)
		for i := range ns {
			total += costs[i]
		}
	}
	return total
}

// GroupCost returns the per-N costs of one group, sorted by N.
func (r *Result) GroupCost(label string) ([]int, []float64) {
	byN := r.Cost[label]
	ns := make([]int, 0, len(byN))
	for n := range byN {
		ns = append(ns, n)
	}
	sort.Ints(ns)
	costs := make([]float64, len(ns))
	for i, n := range ns {
		costs[i] = byN[n]
	}
	return ns, costs
}

// cell is one campaign measurement: a (group, N, configuration) grid point.
type cell struct {
	label string
	n     int
	cfg   cluster.Configuration
}

// Run executes the campaign on the cluster. Params supplies the HPL
// settings shared by all runs (N is overridden per measurement).
//
// The campaign cells are independent simulations, so Run fans them out
// across c.Workers goroutines; samples, costs, and the run count are then
// accumulated in the sequential enumeration order (groups, then Ns, then
// configurations), making the result byte-identical to a sequential run —
// including the floating-point summation order of the cost tables.
func Run(cl *cluster.Cluster, c Campaign, params hpl.Params) (*Result, error) {
	if len(c.Ns) == 0 || len(c.Groups) == 0 {
		return nil, fmt.Errorf("%w: %s has no sizes or groups", ErrBadCampaign, c.Name)
	}
	runner := c.Runner
	if runner == nil {
		runner = hpl.Run
	}
	res := &Result{Campaign: c, Cost: make(map[string]map[int]float64)}
	var cells []cell
	for _, g := range c.Groups {
		cfgs, err := g.Space.Enumerate()
		if err != nil {
			return nil, fmt.Errorf("measure: %s/%s: %w", c.Name, g.Label, err)
		}
		res.Cost[g.Label] = make(map[int]float64, len(c.Ns))
		for _, n := range c.Ns {
			for _, cfg := range cfgs {
				cells = append(cells, cell{label: g.Label, n: n, cfg: cfg})
			}
		}
	}
	runs, err := parallel.Map(len(cells), c.Workers, func(i int) (*hpl.Result, error) {
		p := params
		p.N = cells[i].n
		run, err := runner(cl, cells[i].cfg, p)
		if err != nil {
			return nil, fmt.Errorf("measure: %s/%s %s N=%d: %w", c.Name, cells[i].label, cells[i].cfg, cells[i].n, err)
		}
		return run, nil
	})
	if err != nil {
		return nil, err
	}
	for i, run := range runs {
		res.Runs++
		res.Cost[cells[i].label][cells[i].n] += run.WallTime
		res.Samples = append(res.Samples, SamplesFromResult(run)...)
	}
	return res, nil
}

// SamplesFromResult converts one HPL result into per-class model samples.
func SamplesFromResult(run *hpl.Result) []core.Sample {
	var out []core.Sample
	for ci, ct := range run.PerClass {
		if !ct.Used {
			continue
		}
		out = append(out, core.Sample{
			Config: run.Config,
			N:      run.Params.N,
			P:      run.P,
			Class:  ci,
			M:      run.Config.Use[ci].Procs,
			Ta:     ct.Ta,
			Tc:     ct.Tc,
			Wall:   run.WallTime,
		})
	}
	return out
}

// Paper campaign presets (Tables 2, 5, 8). The P-II construction grid of the
// Basic campaign uses all eight processors; NL and NS use {1, 2, 4, 8}.

// BasicCampaign returns the paper's Table 2 model-construction plan:
// nine sizes, full P-II grid.
func BasicCampaign() Campaign {
	athlon, pii := cluster.PaperConstructionSpace([]int{1, 2, 3, 4, 5, 6, 7, 8})
	return Campaign{
		Name: "Basic",
		Ns:   []int{400, 600, 800, 1200, 1600, 2400, 3200, 4800, 6400},
		Groups: []Group{
			{Label: "Athlon", Space: athlon},
			{Label: "PentiumII", Space: pii},
		},
	}
}

// NLCampaign returns the paper's Table 5 plan: four large sizes, reduced
// P-II grid.
func NLCampaign() Campaign {
	athlon, pii := cluster.PaperConstructionSpace([]int{1, 2, 4, 8})
	return Campaign{
		Name: "NL",
		Ns:   []int{1600, 3200, 4800, 6400},
		Groups: []Group{
			{Label: "Athlon", Space: athlon},
			{Label: "PentiumII", Space: pii},
		},
	}
}

// NSCampaign returns the paper's Table 8 plan: four small sizes, reduced
// P-II grid.
func NSCampaign() Campaign {
	athlon, pii := cluster.PaperConstructionSpace([]int{1, 2, 4, 8})
	return Campaign{
		Name: "NS",
		Ns:   []int{400, 800, 1200, 1600},
		Groups: []Group{
			{Label: "Athlon", Space: athlon},
			{Label: "PentiumII", Space: pii},
		},
	}
}

// EvaluationNs returns the paper's evaluation sizes for each campaign.
func EvaluationNs(name string) []int {
	switch name {
	case "Basic":
		return []int{3200, 4800, 6400, 8000, 9600}
	default:
		return []int{1600, 3200, 4800, 6400, 8000, 9600}
	}
}
