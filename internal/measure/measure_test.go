package measure

import (
	"errors"
	"reflect"
	"testing"

	"hetmodel/internal/chol"

	"hetmodel/internal/cluster"
	"hetmodel/internal/core"
	"hetmodel/internal/hpl"
	"hetmodel/internal/simnet"
)

func paperCluster(t *testing.T) *cluster.Cluster {
	t.Helper()
	cl, err := cluster.NewPaper(simnet.NewMPICH122())
	if err != nil {
		t.Fatal(err)
	}
	return cl
}

// tinyCampaign keeps unit tests fast: two sizes, small grids.
func tinyCampaign() Campaign {
	athlon, pii := cluster.PaperConstructionSpace([]int{1, 2})
	athlon.ProcChoices[0] = []int{1, 2}
	pii.ProcChoices[1] = []int{1}
	return Campaign{
		Name:   "tiny",
		Ns:     []int{256, 512},
		Groups: []Group{{Label: "Athlon", Space: athlon}, {Label: "PentiumII", Space: pii}},
	}
}

func TestRunTinyCampaign(t *testing.T) {
	cl := paperCluster(t)
	res, err := Run(cl, tinyCampaign(), hpl.Params{})
	if err != nil {
		t.Fatal(err)
	}
	// 2 Athlon configs + 2 P-II configs, 2 sizes = 8 runs.
	if res.Runs != 8 {
		t.Fatalf("runs = %d, want 8", res.Runs)
	}
	if len(res.Samples) != 8 {
		t.Fatalf("samples = %d, want 8 (one class per homogeneous run)", len(res.Samples))
	}
	if res.TotalCost() <= 0 {
		t.Fatal("no cost recorded")
	}
	ns, costs := res.GroupCost("Athlon")
	if len(ns) != 2 || ns[0] != 256 || ns[1] != 512 {
		t.Fatalf("group sizes = %v", ns)
	}
	if costs[0] <= 0 || costs[1] <= costs[0] {
		t.Fatalf("costs not increasing: %v", costs)
	}
	// Every sample describes the class its group measured.
	for _, s := range res.Samples {
		if s.Ta <= 0 {
			t.Fatalf("sample without compute time: %+v", s)
		}
		if s.P != s.Config.TotalProcs() {
			t.Fatalf("sample P mismatch: %+v", s)
		}
	}
}

func TestRunValidation(t *testing.T) {
	cl := paperCluster(t)
	if _, err := Run(cl, Campaign{Name: "x"}, hpl.Params{}); !errors.Is(err, ErrBadCampaign) {
		t.Fatal("empty campaign accepted")
	}
	bad := tinyCampaign()
	bad.Groups[0].Space = cluster.Space{PEChoices: [][]int{{1}}, ProcChoices: [][]int{{1}, {1}}}
	if _, err := Run(cl, bad, hpl.Params{}); err == nil {
		t.Fatal("bad space accepted")
	}
}

func TestSamplesFromResultHeterogeneous(t *testing.T) {
	cl := paperCluster(t)
	cfg := cluster.Configuration{Use: []cluster.ClassUse{{PEs: 1, Procs: 2}, {PEs: 2, Procs: 1}}}
	run, err := hpl.Run(cl, cfg, hpl.Params{N: 512})
	if err != nil {
		t.Fatal(err)
	}
	samples := SamplesFromResult(run)
	if len(samples) != 2 {
		t.Fatalf("samples = %d, want 2 (both classes used)", len(samples))
	}
	byClass := map[int]core.Sample{}
	for _, s := range samples {
		byClass[s.Class] = s
	}
	if byClass[0].M != 2 || byClass[1].M != 1 {
		t.Fatalf("per-class M wrong: %+v", byClass)
	}
	if byClass[0].P != 4 || byClass[1].P != 4 {
		t.Fatalf("per-class P wrong: %+v", byClass)
	}
}

func TestPaperCampaignShapes(t *testing.T) {
	basic := BasicCampaign()
	if len(basic.Ns) != 9 || basic.Ns[0] != 400 || basic.Ns[8] != 6400 {
		t.Fatalf("basic sizes = %v", basic.Ns)
	}
	aCfgs, _ := basic.Groups[0].Space.Enumerate()
	pCfgs, _ := basic.Groups[1].Space.Enumerate()
	// Paper: (6 + 48) × 9 = 486 measurement sets.
	if len(aCfgs) != 6 || len(pCfgs) != 48 {
		t.Fatalf("basic grid = %d + %d, want 6 + 48", len(aCfgs), len(pCfgs))
	}
	nl := NLCampaign()
	if len(nl.Ns) != 4 || nl.Ns[0] != 1600 {
		t.Fatalf("NL sizes = %v", nl.Ns)
	}
	nlP, _ := nl.Groups[1].Space.Enumerate()
	// Paper: (6 + 24) × 4 = 120 sets.
	if len(nlP) != 24 {
		t.Fatalf("NL P-II grid = %d, want 24", len(nlP))
	}
	ns := NSCampaign()
	if len(ns.Ns) != 4 || ns.Ns[3] != 1600 {
		t.Fatalf("NS sizes = %v", ns.Ns)
	}
}

func TestEvaluationNs(t *testing.T) {
	if got := EvaluationNs("Basic"); len(got) != 5 || got[0] != 3200 {
		t.Fatalf("Basic eval sizes = %v", got)
	}
	if got := EvaluationNs("NL"); len(got) != 6 || got[0] != 1600 {
		t.Fatalf("NL eval sizes = %v", got)
	}
}

func TestCampaignCostDeterministic(t *testing.T) {
	cl := paperCluster(t)
	a, err := Run(cl, tinyCampaign(), hpl.Params{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cl, tinyCampaign(), hpl.Params{})
	if err != nil {
		t.Fatal(err)
	}
	if a.TotalCost() != b.TotalCost() {
		t.Fatalf("campaign cost not deterministic: %v vs %v", a.TotalCost(), b.TotalCost())
	}
}

func TestCampaignCustomRunner(t *testing.T) {
	cl := paperCluster(t)
	calls := 0
	camp := tinyCampaign()
	camp.Runner = func(c *cluster.Cluster, cfg cluster.Configuration, p hpl.Params) (*hpl.Result, error) {
		calls++
		return hpl.Run(c, cfg, p)
	}
	res, err := Run(cl, camp, hpl.Params{})
	if err != nil {
		t.Fatal(err)
	}
	if calls != res.Runs || calls == 0 {
		t.Fatalf("runner called %d times for %d runs", calls, res.Runs)
	}
}

// A campaign measured with the Cholesky runner produces valid samples —
// the application abstraction behind the "beyond HPL" extension.
func TestCampaignWithCholeskyRunner(t *testing.T) {
	cl := paperCluster(t)
	camp := tinyCampaign()
	camp.Runner = chol.Run
	res, err := Run(cl, camp, hpl.Params{})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range res.Samples {
		if s.Ta <= 0 {
			t.Fatalf("bad Cholesky sample: %+v", s)
		}
		// Cholesky has no pivoting; its Tc is pure broadcast/wait and can
		// be zero for single-PE runs.
		if s.Tc < 0 {
			t.Fatalf("negative Tc: %+v", s)
		}
	}
}

// TestRunParallelDeterminism asserts the tentpole contract: a campaign run
// with concurrent workers produces byte-identical samples, costs, and run
// counts to the sequential execution.
func TestRunParallelDeterminism(t *testing.T) {
	cl := paperCluster(t)
	seqCamp := tinyCampaign()
	seqCamp.Workers = 1
	seq, err := Run(cl, seqCamp, hpl.Params{})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 0} {
		parCamp := tinyCampaign()
		parCamp.Workers = workers
		par, err := Run(cl, parCamp, hpl.Params{})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if par.Runs != seq.Runs {
			t.Fatalf("workers=%d: runs %d != %d", workers, par.Runs, seq.Runs)
		}
		if !reflect.DeepEqual(par.Samples, seq.Samples) {
			t.Fatalf("workers=%d: sample streams differ", workers)
		}
		// Costs must match to the bit (same float summation order).
		if !reflect.DeepEqual(par.Cost, seq.Cost) {
			t.Fatalf("workers=%d: cost tables differ: %v vs %v", workers, par.Cost, seq.Cost)
		}
		if par.TotalCost() != seq.TotalCost() {
			t.Fatalf("workers=%d: total cost %v != %v", workers, par.TotalCost(), seq.TotalCost())
		}
	}
}

// TestRunParallelErrorMatchesSequential asserts the failing cell reported
// by a concurrent campaign is the same one the sequential loop stops on.
func TestRunParallelErrorMatchesSequential(t *testing.T) {
	cl := paperCluster(t)
	boom := errors.New("boom")
	failingRunner := func(c *cluster.Cluster, cfg cluster.Configuration, p hpl.Params) (*hpl.Result, error) {
		if p.N == 512 && cfg.Use[0].Procs == 2 {
			return nil, boom
		}
		return hpl.Run(c, cfg, p)
	}
	var msgs []string
	for _, workers := range []int{1, 4} {
		camp := tinyCampaign()
		camp.Workers = workers
		camp.Runner = failingRunner
		_, err := Run(cl, camp, hpl.Params{})
		if !errors.Is(err, boom) {
			t.Fatalf("workers=%d: got %v, want boom", workers, err)
		}
		msgs = append(msgs, err.Error())
	}
	if msgs[0] != msgs[1] {
		t.Fatalf("parallel error %q != sequential error %q", msgs[1], msgs[0])
	}
}
