package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// FloatOrderPackages scopes the kernel-wide FloatOrder rules (math.FMA and
// map-ordered reductions) to the numeric packages whose outputs are asserted
// bit-identical across kernels and releases.
var FloatOrderPackages = []string{
	"internal/lsq",
	"internal/linalg",
}

// FloatOrder guards the floating-point summation order that the bitwise
// equality property tests (blocked kernel == reference kernel, committed SVG
// figures byte-stable) depend on. Floating-point addition is not
// associative: PR 2 rejected a Horner rewrite of lsq.EvalPolynomial for
// exactly this — one multiply-add less, different last-ULP rounding,
// regenerated figures no longer byte-identical.
//
// Three rules:
//
//   - math.FMA anywhere in the scoped packages: a fused multiply-add rounds
//     once where the model arithmetic rounds twice, so it can never be a
//     drop-in replacement in a bit-exact kernel;
//   - floating-point accumulation (s += x, s = s + x) inside a map range:
//     map order is random, so the reduction order — and the rounding — varies
//     per run;
//   - in functions annotated //het:bitexact: any a*b±c multiply-add written
//     as a single expression. The Go spec allows the compiler to fuse such
//     expressions into one FMA instruction (and does, on arm64 and ppc64),
//     which silently changes the rounding between platforms. Writing
//     float64(a*b)±c inserts an explicit rounding step that forbids fusion.
var FloatOrder = &Analyzer{
	Name: "floatorder",
	Doc: `guard bit-exact float kernels against reassociation and FMA fusion

In internal/{lsq,linalg}: no math.FMA, no float accumulation in map order. In
//het:bitexact functions, multiply-adds must be written float64(a*b)+c so the
compiler cannot fuse them into an FMA and change the rounding per platform.`,
	Run: runFloatOrder,
}

func runFloatOrder(pass *Pass) error {
	inScope := pathMatches(pass.Pkg.Path(), FloatOrderPackages)
	for _, f := range pass.Files {
		if isTestFile(pass.Fset, f) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if inScope {
				checkFMACalls(pass, fd)
				checkMapReductions(pass, fd)
			}
			if hasDirective(fd.Doc, "bitexact") {
				checkFusableMulAdd(pass, fd)
			}
		}
	}
	return nil
}

func checkFMACalls(pass *Pass, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if fn := calleeFunc(pass.TypesInfo, call); fn != nil && fn.Pkg() != nil &&
			fn.Pkg().Path() == "math" && fn.Name() == "FMA" {
			pass.Reportf(call.Pos(), "math.FMA rounds once where separate multiply and add round twice; bit-exact kernels in %s must keep the two roundings", pass.Pkg.Path())
		}
		return true
	})
}

// checkMapReductions flags floating-point accumulations whose order is the
// map iteration order.
func checkMapReductions(pass *Pass, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		if t := pass.TypesInfo.TypeOf(rng.X); t == nil {
			return true
		} else if _, isMap := t.Underlying().(*types.Map); !isMap {
			return true
		}
		ast.Inspect(rng.Body, func(m ast.Node) bool {
			as, ok := m.(*ast.AssignStmt)
			if !ok {
				return true
			}
			if isFloatAccumulation(pass.TypesInfo, as, rng) {
				pass.Reportf(as.Pos(), "floating-point accumulation in map iteration order is nondeterministic (addition is not associative); iterate sorted keys instead")
			}
			return true
		})
		return true
	})
}

// isFloatAccumulation recognizes s += x / s -= x and s = s + x / s = s - x
// on a float-typed variable declared outside the loop.
func isFloatAccumulation(info *types.Info, as *ast.AssignStmt, rng *ast.RangeStmt) bool {
	if len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return false
	}
	id, ok := ast.Unparen(as.Lhs[0]).(*ast.Ident)
	if !ok {
		return false
	}
	obj := info.Uses[id]
	if obj == nil || !isFloat(obj.Type()) || !declaredOutside(obj, rng) {
		return false
	}
	switch as.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN:
		return true
	case token.ASSIGN:
		// s = s + x (or s - x): the accumulator appears on both sides.
		bin, ok := ast.Unparen(as.Rhs[0]).(*ast.BinaryExpr)
		if !ok || (bin.Op != token.ADD && bin.Op != token.SUB) {
			return false
		}
		return usesObject(info, bin, obj)
	}
	return false
}

// checkFusableMulAdd flags a*b+c shapes the compiler may fuse into an FMA.
func checkFusableMulAdd(pass *Pass, fd *ast.FuncDecl) {
	info := pass.TypesInfo
	report := func(pos token.Pos) {
		pass.Reportf(pos, "multiply-add in //het:bitexact function %s may be fused into one FMA on some platforms, changing the rounding; write float64(a*b) + c to force the intermediate rounding", fd.Name.Name)
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.BinaryExpr:
			if n.Op != token.ADD && n.Op != token.SUB {
				return true
			}
			if !isFloat(info.TypeOf(n)) {
				return true
			}
			if isBareFloatMul(info, n.X) || isBareFloatMul(info, n.Y) {
				report(n.Pos())
			}
		case *ast.AssignStmt:
			// s += a*b is s = s + a*b: equally fusable.
			if n.Tok != token.ADD_ASSIGN && n.Tok != token.SUB_ASSIGN {
				return true
			}
			if len(n.Rhs) == 1 && isFloat(info.TypeOf(n.Rhs[0])) && isBareFloatMul(info, n.Rhs[0]) {
				report(n.Pos())
			}
		}
		return true
	})
}

// isBareFloatMul reports whether e is a float multiplication not guarded by
// an explicit conversion. Parentheses do not stop fusion, so they are looked
// through; a float64(...) conversion is an explicit rounding boundary and
// does.
func isBareFloatMul(info *types.Info, e ast.Expr) bool {
	bin, ok := ast.Unparen(e).(*ast.BinaryExpr)
	return ok && bin.Op == token.MUL && isFloat(info.TypeOf(bin))
}

func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}
