package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// LockOrder derives the program's lock-acquisition order from observed
// lock→lock edges and reports every edge that participates in a cycle: two
// code paths taking the same pair of mutexes in opposite orders is the
// classic recipe for deadlock between serve's swap/cache/batcher locks and
// the fleet router's connection pool.
//
// The analysis is a per-function linear scan tracking the set of locks held
// (x.Lock()/x.RLock() pushes, x.Unlock()/x.RUnlock() pops, deferred unlocks
// hold to function end), combined with transitive may-acquire summaries
// over the static call graph: calling f() while holding L adds an edge
// L→M for every lock M that f may take, directly or transitively.
//
// Locks are identified at type granularity — a field mutex keys as
// "pkg.Type.field", a package-level mutex as "pkg.var" — so two instances
// of the same struct are indistinguishable and same-key self-edges are
// skipped rather than reported (instance-level aliasing is out of reach
// statically). Branches fork the held-set and re-join; goroutine and
// deferred closure bodies scan as fresh scopes (a new goroutine holds
// nothing). Cycles are found by SCC over the edge graph; every edge inside
// a multi-node SCC is a diagnostic at the edge's first observed call site.
var LockOrder = &ProgramAnalyzer{
	Name: "lockorder",
	Doc: `require a consistent global mutex acquisition order

Observed lock→lock edges (including through static calls) must form no
cycle: if one path locks A then B, no path may lock B then A. Each edge in
a cycle is reported where it is first observed. Suppress a deliberate
exception with //het:allow lockorder -- <reason>.`,
	Run: runLockOrder,
}

func runLockOrder(pass *ProgramPass) error {
	g := buildCallGraph(pass.Pkgs)

	// Transitive may-acquire summaries by fixpoint over the call graph.
	may := map[string]map[string]bool{}
	for _, key := range g.order {
		n := g.nodes[key]
		acq := map[string]bool{}
		ast.Inspect(n.decl.Body, func(node ast.Node) bool {
			if call, ok := node.(*ast.CallExpr); ok {
				if k, op := lockCall(n, call); op == lockAcquire && k != "" {
					acq[k] = true
				}
			}
			return true
		})
		may[key] = acq
	}
	for changed := true; changed; {
		changed = false
		for _, key := range g.order {
			n := g.nodes[key]
			for _, e := range n.callees {
				callee := g.nodes[e.key]
				if callee == nil || callee.panicOnly {
					continue
				}
				for k := range may[e.key] {
					if !may[key][k] {
						may[key][k] = true
						changed = true
					}
				}
			}
		}
	}

	// Scan every function, collecting first-observed lock→lock edges.
	edges := map[[2]string]token.Pos{}
	emit := func(from, to string, pos token.Pos) {
		if from == to {
			return // same type-level key: instance aliasing is unknowable here
		}
		if _, seen := edges[[2]string{from, to}]; !seen {
			edges[[2]string{from, to}] = pos
		}
	}
	for _, key := range g.order {
		n := g.nodes[key]
		s := &lockScanner{g: g, node: n, may: may, emit: emit}
		held := []string{}
		s.scanStmts(n.decl.Body.List, &held)
		// Closure bodies scan as fresh scopes; they may queue further
		// closures of their own, so index (not range) over the queue.
		for i := 0; i < len(s.deferred); i++ {
			fresh := []string{}
			s.scanStmts(s.deferred[i].Body.List, &fresh)
		}
	}

	// SCC over the edge graph; every edge inside a multi-node SCC is part
	// of at least one cycle.
	cyclic := sccMembers(edges)
	type finding struct {
		pos      token.Pos
		from, to string
		cycle    string
	}
	var findings []finding
	for e, pos := range edges {
		comp, ok := cyclic[e[0]]
		if !ok || comp != cyclic[e[1]] {
			continue
		}
		var members []string
		for k, c := range cyclic {
			if c == comp {
				members = append(members, k)
			}
		}
		sort.Strings(members)
		findings = append(findings, finding{pos: pos, from: e[0], to: e[1], cycle: strings.Join(members, ", ")})
	}
	sort.Slice(findings, func(i, j int) bool {
		if findings[i].pos != findings[j].pos {
			return findings[i].pos < findings[j].pos
		}
		return findings[i].to < findings[j].to
	})
	for _, f := range findings {
		pass.Reportf(f.pos, "inconsistent lock order: %s acquired while holding %s, but another path acquires them in the reverse order (cycle: %s)", f.to, f.from, f.cycle)
	}
	return nil
}

const (
	lockNone = iota
	lockAcquire
	lockRelease
)

// lockCall classifies call as a mutex acquire/release and derives the lock
// key, when the callee is sync.(RW)Mutex.Lock/RLock/Unlock/RUnlock
// (including through embedding).
func lockCall(n *funcNode, call *ast.CallExpr) (string, int) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", lockNone
	}
	fn, ok := n.pkg.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", lockNone
	}
	var op int
	switch fn.Name() {
	case "Lock", "RLock":
		op = lockAcquire
	case "Unlock", "RUnlock":
		op = lockRelease
	default:
		return "", lockNone
	}
	return lockKeyOf(n, sel.X), op
}

// lockKeyOf names the mutex behind a receiver expression at type
// granularity: field selection → "pkg.Type.field", package-level var →
// "pkg.var", local embedding receiver → "pkg.Type", plain local → scoped to
// the enclosing function (cross-function edges through a local are
// meaningless). Unresolvable receivers return "".
func lockKeyOf(n *funcNode, expr ast.Expr) string {
	info := n.pkg.Info
	switch e := ast.Unparen(expr).(type) {
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[e]; ok && sel.Kind() == types.FieldVal {
			if named := namedOf(sel.Recv()); named != nil && named.Obj().Pkg() != nil {
				return named.Obj().Pkg().Name() + "." + named.Obj().Name() + "." + sel.Obj().Name()
			}
		}
		if v, ok := info.Uses[e.Sel].(*types.Var); ok && v.Pkg() != nil {
			return v.Pkg().Name() + "." + v.Name() // pkg-qualified global
		}
	case *ast.Ident:
		obj := info.Uses[e]
		if obj == nil {
			return ""
		}
		// Receiver whose type embeds the mutex: key by the named type.
		if named := namedOf(obj.Type()); named != nil && named.Obj().Pkg() != nil && named.Obj().Pkg().Path() != "sync" {
			return named.Obj().Pkg().Name() + "." + named.Obj().Name()
		}
		if v, ok := obj.(*types.Var); ok && v.Pkg() != nil {
			if v.Parent() == v.Pkg().Scope() {
				return v.Pkg().Name() + "." + v.Name()
			}
			return n.displayName() + "." + v.Name()
		}
	}
	return ""
}

// namedOf unwraps pointers to reach a named type, nil otherwise.
func namedOf(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named
	}
	if p, ok := t.(*types.Pointer); ok {
		if named, ok := p.Elem().(*types.Named); ok {
			return named
		}
	}
	return nil
}

// lockScanner walks one function's statements in order, tracking held locks.
type lockScanner struct {
	g    *callGraph
	node *funcNode
	may  map[string]map[string]bool
	emit func(from, to string, pos token.Pos)
	// deferred collects go/defer closure bodies to scan as fresh scopes.
	deferred []*ast.FuncLit
}

func (s *lockScanner) scanStmts(stmts []ast.Stmt, held *[]string) {
	for _, st := range stmts {
		s.scanStmt(st, held)
	}
}

// scanStmt threads the held-set through one statement. Control-flow forks
// copy the set and restore after the branch, so sibling branches do not see
// each other's acquisitions.
func (s *lockScanner) scanStmt(stmt ast.Stmt, held *[]string) {
	branch := func(sub ast.Stmt) {
		if sub == nil {
			return
		}
		forked := append([]string(nil), *held...)
		s.scanStmt(sub, &forked)
	}
	switch st := stmt.(type) {
	case *ast.BlockStmt:
		s.scanStmts(st.List, held)
	case *ast.LabeledStmt:
		s.scanStmt(st.Stmt, held)
	case *ast.IfStmt:
		if st.Init != nil {
			s.scanStmt(st.Init, held)
		}
		s.scanExpr(st.Cond, held)
		branch(st.Body)
		branch(st.Else)
	case *ast.ForStmt:
		if st.Init != nil {
			s.scanStmt(st.Init, held)
		}
		if st.Cond != nil {
			s.scanExpr(st.Cond, held)
		}
		branch(st.Body)
	case *ast.RangeStmt:
		s.scanExpr(st.X, held)
		branch(st.Body)
	case *ast.SwitchStmt:
		if st.Init != nil {
			s.scanStmt(st.Init, held)
		}
		if st.Tag != nil {
			s.scanExpr(st.Tag, held)
		}
		for _, c := range st.Body.List {
			branch(c)
		}
	case *ast.TypeSwitchStmt:
		if st.Init != nil {
			s.scanStmt(st.Init, held)
		}
		for _, c := range st.Body.List {
			branch(c)
		}
	case *ast.CaseClause:
		for _, e := range st.List {
			s.scanExpr(e, held)
		}
		s.scanStmts(st.Body, held)
	case *ast.SelectStmt:
		for _, c := range st.Body.List {
			branch(c)
		}
	case *ast.CommClause:
		if st.Comm != nil {
			s.scanStmt(st.Comm, held)
		}
		s.scanStmts(st.Body, held)
	case *ast.DeferStmt:
		// defer x.Unlock(): held to function end — no state change now.
		// Deferred closures run at exit with an unknowable held-set; scan
		// their bodies as fresh scopes for the edges internal to them.
		if lit, ok := ast.Unparen(st.Call.Fun).(*ast.FuncLit); ok {
			s.deferred = append(s.deferred, lit)
		}
	case *ast.GoStmt:
		// A new goroutine holds none of our locks.
		if lit, ok := ast.Unparen(st.Call.Fun).(*ast.FuncLit); ok {
			s.deferred = append(s.deferred, lit)
		}
	default:
		s.scanExpr(stmt, held)
	}
}

// scanExpr visits the call expressions under node in source order, applying
// lock operations and call-summary edges. Function literals are deferred to
// a fresh scan: their bodies do not execute at this point in the statement
// stream.
func (s *lockScanner) scanExpr(node ast.Node, held *[]string) {
	if node == nil {
		return
	}
	ast.Inspect(node, func(m ast.Node) bool {
		if lit, ok := m.(*ast.FuncLit); ok {
			s.deferred = append(s.deferred, lit)
			return false
		}
		call, ok := m.(*ast.CallExpr)
		if !ok {
			return true
		}
		if key, op := lockCall(s.node, call); op != lockNone {
			switch op {
			case lockAcquire:
				if key != "" {
					for _, h := range *held {
						s.emit(h, key, call.Pos())
					}
					*held = append(*held, key)
				}
			case lockRelease:
				if key != "" {
					for i := len(*held) - 1; i >= 0; i-- {
						if (*held)[i] == key {
							*held = append((*held)[:i], (*held)[i+1:]...)
							break
						}
					}
				}
			}
			return true
		}
		if len(*held) == 0 {
			return true
		}
		if fn := staticCallee(s.node.pkg.Info, call); fn != nil {
			callee := s.g.nodes[funcKey(fn)]
			if callee != nil && !callee.panicOnly {
				var keys []string
				for k := range s.may[callee.key] {
					keys = append(keys, k)
				}
				sort.Strings(keys)
				for _, k := range keys {
					for _, h := range *held {
						s.emit(h, k, call.Pos())
					}
				}
			}
		}
		return true
	})
}

// sccMembers runs Tarjan's SCC over the lock-edge graph and returns, for
// every key inside a strongly connected component of size ≥ 2 (i.e. on a
// cycle), its component id.
func sccMembers(edges map[[2]string]token.Pos) map[string]int {
	adj := map[string][]string{}
	nodes := map[string]bool{}
	for e := range edges {
		adj[e[0]] = append(adj[e[0]], e[1])
		nodes[e[0]] = true
		nodes[e[1]] = true
	}
	var order []string
	for n := range nodes {
		order = append(order, n)
	}
	sort.Strings(order)
	for _, vs := range adj {
		sort.Strings(vs)
	}

	index := map[string]int{}
	low := map[string]int{}
	onStack := map[string]bool{}
	var stack []string
	next := 0
	compID := 0
	comps := map[string]int{}
	sizes := map[int]int{}

	var strongconnect func(v string)
	strongconnect = func(v string) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for _, w := range adj[v] {
			if _, seen := index[w]; !seen {
				strongconnect(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				comps[w] = compID
				sizes[compID]++
				if w == v {
					break
				}
			}
			compID++
		}
	}
	for _, v := range order {
		if _, seen := index[v]; !seen {
			strongconnect(v)
		}
	}
	out := map[string]int{}
	for k, c := range comps {
		if sizes[c] >= 2 {
			out[k] = c
		}
	}
	return out
}
