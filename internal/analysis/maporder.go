package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// MapOrder flags `range` over a map whose iteration feeds ordered output:
// writes to an io.Writer or string builder, fmt print calls, channel sends,
// or accumulation into a slice that outlives the loop. Go randomizes map
// iteration order, so any of these makes the output differ run to run — the
// class of bug PR 1 fixed three times by hand (FitCompositionScale,
// GridTable.Render, the adjustment printouts).
//
// The one blessed pattern is collect-then-sort: a loop that only appends the
// keys (or values) to a slice is allowed when a sort.* or slices.Sort* call
// over that slice follows in the same block before any other use. Anything
// else needs an explicit //het:allow maporder -- <reason>.
var MapOrder = &Analyzer{
	Name: "maporder",
	Doc: `flag map iteration that feeds ordered output without sorting

A range over a map may print, write, send, or append into an outer slice only
if the accumulated slice is sorted immediately after the loop. Map order is
randomized per run; everything observable must be deterministic.`,
	Run: runMapOrder,
}

func runMapOrder(pass *Pass) error {
	for _, f := range pass.Files {
		if isTestFile(pass.Fset, f) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if ok && fd.Body != nil {
				checkMapRanges(pass, fd.Body)
			}
		}
	}
	return nil
}

// checkMapRanges finds every map-range loop in the function body (however
// deeply nested, closures included) and hands each one the statements that
// follow it in its enclosing block, which the collect-then-sort allowance
// inspects.
func checkMapRanges(pass *Pass, body *ast.BlockStmt) {
	parents := map[ast.Node]ast.Node{}
	var stack []ast.Node
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return false
		}
		if len(stack) > 0 {
			parents[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})
	ast.Inspect(body, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		if t := pass.TypesInfo.TypeOf(rng.X); t != nil {
			if _, isMap := t.Underlying().(*types.Map); isMap {
				checkMapRange(pass, rng, stmtsAfter(parents, rng))
			}
		}
		return true
	})
}

// stmtsAfter returns the statements that follow stmt in its innermost
// enclosing statement list (block body or switch/select case body).
func stmtsAfter(parents map[ast.Node]ast.Node, stmt ast.Stmt) []ast.Stmt {
	var child ast.Node = stmt
	for parent := parents[child]; parent != nil; child, parent = parent, parents[parent] {
		var list []ast.Stmt
		switch p := parent.(type) {
		case *ast.BlockStmt:
			list = p.List
		case *ast.CaseClause:
			list = p.Body
		case *ast.CommClause:
			list = p.Body
		default:
			continue
		}
		for i, s := range list {
			if s == child {
				return list[i+1:]
			}
		}
		return nil
	}
	return nil
}

// checkMapRange inspects one map-range loop. after holds the statements that
// follow the loop in its enclosing block, used by the sort allowance.
func checkMapRange(pass *Pass, rng *ast.RangeStmt, after []ast.Stmt) {
	var sinks []Diagnostic         // ordered sinks other than slice accumulation
	var accumulated []types.Object // outer slices appended to inside the loop

	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.RangeStmt:
			// Descend into nested loops over slices (their sinks still run
			// once per outer map key), but let a nested map range report on
			// its own instead of double-counting its body here.
			if t := pass.TypesInfo.TypeOf(n.X); t != nil {
				if _, isMap := t.Underlying().(*types.Map); isMap {
					return false
				}
			}
			return true
		case *ast.SendStmt:
			sinks = append(sinks, Diagnostic{Pos: n.Pos(), Message: "channel send inside map iteration publishes values in nondeterministic order"})
		case *ast.CallExpr:
			if name, ok := writerSink(pass.TypesInfo, n); ok {
				sinks = append(sinks, Diagnostic{Pos: n.Pos(), Message: "call to " + name + " inside map iteration emits output in nondeterministic order"})
				return true
			}
			if obj := appendTarget(pass.TypesInfo, n); obj != nil {
				if declaredOutside(obj, rng) {
					accumulated = append(accumulated, obj)
				}
			}
		}
		return true
	})

	for _, d := range sinks {
		pass.Reportf(d.Pos, "%s; sort the keys first (the map is ranged at %s)",
			d.Message, pass.Fset.Position(rng.Pos()))
	}
	if len(sinks) > 0 {
		return // accumulation findings would be noise on top
	}
	for _, obj := range accumulated {
		if !sortedAfter(pass.TypesInfo, obj, after) {
			pass.Reportf(rng.Pos(), "map iteration accumulates into %q, which is not sorted before use; map order is random — sort %q after the loop or collect sorted keys first", obj.Name(), obj.Name())
		}
	}
}

// writerSink reports whether a call writes to an ordered output stream:
// fmt's Print/Fprint families, any Write* method (io.Writer, strings.Builder,
// bytes.Buffer, bufio.Writer, ...), or Print* methods on loggers and alike.
func writerSink(info *types.Info, call *ast.CallExpr) (string, bool) {
	fn := calleeFunc(info, call)
	if fn == nil {
		return "", false
	}
	name := fn.Name()
	if fn.Pkg() != nil && fn.Pkg().Path() == "fmt" &&
		(strings.HasPrefix(name, "Print") || strings.HasPrefix(name, "Fprint")) {
		return "fmt." + name, true
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return "", false
	}
	if strings.HasPrefix(name, "Write") || strings.HasPrefix(name, "Print") {
		return recvName(sig) + "." + name, true
	}
	return "", false
}

func recvName(sig *types.Signature) string {
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return t.String()
}

// calleeFunc resolves the called function or method, nil for builtins,
// conversions, and calls through function-typed values.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// appendTarget returns the object a builtin append call grows, when the
// slice expression is a plain identifier (x = append(x, ...)); nil otherwise.
func appendTarget(info *types.Info, call *ast.CallExpr) types.Object {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || len(call.Args) == 0 {
		return nil
	}
	if b, ok := info.Uses[id].(*types.Builtin); !ok || b.Name() != "append" {
		return nil
	}
	arg, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
	if !ok {
		return nil
	}
	return info.Uses[arg]
}

// declaredOutside reports whether obj's declaration lies outside the range
// statement (so appends to it survive the loop).
func declaredOutside(obj types.Object, rng *ast.RangeStmt) bool {
	return obj.Pos() < rng.Pos() || obj.Pos() >= rng.End()
}

// sortedAfter reports whether, among the statements following the loop, obj
// is passed to a sort.* or slices.Sort* call before any other use of it.
// Seeing the sort first is what makes collect-then-sort deterministic; any
// other use first (printing it, returning it) observes random order.
func sortedAfter(info *types.Info, obj types.Object, after []ast.Stmt) bool {
	for _, s := range after {
		verdict := 0 // 0: obj untouched, 1: sorted, -1: other use
		ast.Inspect(s, func(n ast.Node) bool {
			if verdict != 0 {
				return false
			}
			call, ok := n.(*ast.CallExpr)
			if ok && isSortCall(info, call) && usesObject(info, call, obj) {
				verdict = 1
				return false
			}
			if id, ok := n.(*ast.Ident); ok && info.Uses[id] == obj {
				verdict = -1
				return false
			}
			return true
		})
		switch verdict {
		case 1:
			return true
		case -1:
			return false
		}
	}
	return false
}

func isSortCall(info *types.Info, call *ast.CallExpr) bool {
	fn := calleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	switch fn.Pkg().Path() {
	case "sort":
		return true
	case "slices":
		return strings.HasPrefix(fn.Name(), "Sort")
	}
	return false
}

func usesObject(info *types.Info, root ast.Node, obj types.Object) bool {
	found := false
	ast.Inspect(root, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && info.Uses[id] == obj {
			found = true
		}
		return !found
	})
	return found
}
