package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// This file builds the static call graph the whole-program analyzers
// (hotpathprop, allocfree, lockorder) share.
//
// Construction and soundness:
//
//   - Nodes are function and method declarations with bodies, excluding
//     _test.go files. Function literals are not separate nodes: a FuncLit's
//     body belongs to the enclosing declaration, matching how the hotpath
//     rules treat closures (the closure runs on whatever path its maker
//     runs on).
//   - Edges come from statically resolvable call sites only: direct calls to
//     package-level functions, qualified pkg.Func calls, and method calls on
//     concrete (non-interface) receivers. Calls through interfaces, function
//     values, and method values produce NO edge — the analysis is
//     deliberately unsound there rather than wildly over-approximate, and
//     DESIGN.md §16 documents the caveat. The per-package hotpath analyzer
//     still flags closures on hot paths, which is what makes the dynamic
//     hole narrow in practice.
//   - Identity is by canonical string key, not *types.Func pointer: the
//     standalone loader type-checks each package from source while its
//     imports resolve through a separate source-importer pass, so the same
//     function materializes as distinct objects on the two sides. FullName
//     (package-path-qualified, receiver included) is stable across both.
//   - Functions whose body is a single panic statement are "panic-only":
//     cold paths by definition (vmpi.panicBadRank exists precisely to hoist
//     panic formatting off the hot path), so reachability never traverses
//     an edge into one.

// funcNode is one declared function in the program.
type funcNode struct {
	key  string // canonical identity, see funcKey
	fn   *types.Func
	decl *ast.FuncDecl
	pkg  *Package
	// callees lists statically resolved out-edges in source order, deduped.
	callees []callEdge
	// panicOnly marks cold panic-hoisting helpers; edges into them are
	// never traversed.
	panicOnly bool
}

// callEdge is one resolved call site.
type callEdge struct {
	key string    // callee funcKey
	pos token.Pos // call position in the caller
}

// callGraph indexes every declared function in the loaded program.
type callGraph struct {
	nodes map[string]*funcNode
	// order holds keys sorted by source position so every traversal of
	// "all nodes" is deterministic.
	order []string
}

// funcKey returns the canonical cross-package identity of a function:
// FullName is package-path-qualified for both plain functions
// ("mod/pkg.Fn") and methods ("(*mod/pkg.T).M").
func funcKey(fn *types.Func) string {
	return fn.FullName()
}

// buildCallGraph constructs the program call graph over all non-test files.
func buildCallGraph(pkgs []*Package) *callGraph {
	g := &callGraph{nodes: map[string]*funcNode{}}
	for _, p := range pkgs {
		for _, f := range p.Files {
			if isTestFile(p.Fset, f) {
				continue
			}
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := p.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				node := &funcNode{
					key:       funcKey(fn),
					fn:        fn,
					decl:      fd,
					pkg:       p,
					panicOnly: isPanicOnly(p.Info, fd.Body),
				}
				node.callees = collectCallees(p.Info, fd.Body)
				if _, dup := g.nodes[node.key]; !dup {
					g.nodes[node.key] = node
					g.order = append(g.order, node.key)
				}
			}
		}
	}
	sort.Slice(g.order, func(i, j int) bool {
		a, b := g.nodes[g.order[i]], g.nodes[g.order[j]]
		return a.decl.Pos() < b.decl.Pos()
	})
	return g
}

// collectCallees resolves every statically bindable call site in body,
// including call sites inside nested function literals (a closure's calls
// happen on the enclosing function's path).
func collectCallees(info *types.Info, body *ast.BlockStmt) []callEdge {
	var edges []callEdge
	seen := map[string]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := staticCallee(info, call)
		if fn == nil {
			return true
		}
		key := funcKey(fn)
		if !seen[key] {
			seen[key] = true
			edges = append(edges, callEdge{key: key, pos: call.Pos()})
		}
		return true
	})
	return edges
}

// staticCallee resolves call's target when it binds statically: a direct
// function call, a qualified pkg.Func call, or a method call on a concrete
// receiver. Interface-method calls, struct-field function values, and local
// function values return nil.
func staticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if sel.Kind() != types.MethodVal {
				return nil // field holding a func value: dynamic
			}
			fn, ok := sel.Obj().(*types.Func)
			if !ok {
				return nil
			}
			sig, ok := fn.Type().(*types.Signature)
			if !ok {
				return nil
			}
			if recv := sig.Recv(); recv != nil && types.IsInterface(recv.Type()) {
				return nil // dynamic dispatch: no static edge
			}
			return fn
		}
		// No selection entry: a package-qualified call (fmt.Sprintf).
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// isPanicOnly reports whether body consists of a single panic(...) call —
// the panic-hoisting helper shape used to keep formatting off hot paths.
func isPanicOnly(info *types.Info, body *ast.BlockStmt) bool {
	if len(body.List) != 1 {
		return false
	}
	es, ok := body.List[0].(*ast.ExprStmt)
	if !ok {
		return false
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "panic"
}

// reached records how the taint walk arrived at a function.
type reached struct {
	node *funcNode
	root *funcNode // the annotated root whose taint reached it first
}

// reachableFrom runs a breadth-first taint walk from the given roots and
// returns every non-root function reachable through traversable edges
// (edges into panic-only functions and into functions without bodies in the
// program are skipped), in deterministic first-reached order. When several
// roots reach the same function, the attribution goes to the root earliest
// in the deterministic root order.
func (g *callGraph) reachableFrom(roots []*funcNode) []reached {
	rootSet := map[string]bool{}
	for _, r := range roots {
		rootSet[r.key] = true
	}
	visited := map[string]bool{}
	var out []reached
	for _, root := range roots {
		queue := []*funcNode{root}
		seen := map[string]bool{root.key: true}
		for len(queue) > 0 {
			cur := queue[0]
			queue = queue[1:]
			for _, e := range cur.callees {
				callee := g.nodes[e.key]
				if callee == nil || callee.panicOnly || seen[e.key] {
					continue
				}
				seen[e.key] = true
				if !rootSet[e.key] && !visited[e.key] {
					visited[e.key] = true
					out = append(out, reached{node: callee, root: root})
				}
				queue = append(queue, callee)
			}
		}
	}
	return out
}

// annotatedRoots returns the nodes whose declaration carries the given
// //het: directive, in source order.
func (g *callGraph) annotatedRoots(directive string) []*funcNode {
	var roots []*funcNode
	for _, key := range g.order {
		n := g.nodes[key]
		if hasDirective(n.decl.Doc, directive) {
			roots = append(roots, n)
		}
	}
	return roots
}

// displayName renders a node for diagnostics: method receivers keep their
// type ("(*Evaluator).Tau"), plain functions their bare name, with the
// package name prefixed when the reader could be looking at another package.
func (n *funcNode) displayName() string {
	name := n.decl.Name.Name
	if n.decl.Recv != nil && len(n.decl.Recv.List) > 0 {
		if t := recvTypeName(n.decl.Recv.List[0].Type); t != "" {
			name = t + "." + name
		}
	}
	return name
}

// qualifiedFrom renders a node's display name as seen from pkg: same
// package → bare, other package → "pkgname.Name".
func (n *funcNode) qualifiedFrom(pkg *Package) string {
	name := n.displayName()
	if n.pkg != pkg && n.fn.Pkg() != nil {
		return n.fn.Pkg().Name() + "." + name
	}
	return name
}

func recvTypeName(expr ast.Expr) string {
	switch t := expr.(type) {
	case *ast.StarExpr:
		if inner := recvTypeName(t.X); inner != "" {
			return "(*" + inner + ")"
		}
	case *ast.Ident:
		return t.Name
	case *ast.IndexExpr: // generic receiver T[P]
		return recvTypeName(t.X)
	case *ast.IndexListExpr:
		return recvTypeName(t.X)
	}
	return ""
}
