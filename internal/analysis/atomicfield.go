package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// AtomicField enforces that a field accessed through sync/atomic anywhere
// in a package is never read or written plainly elsewhere in it — mixing
// the two is a data race the race detector only catches on the interleaving
// that happens to run. The motivating shapes are serve.Planner's counter
// block and parallel.SharedThreshold: a whole struct of atomics is only as
// safe as its least-careful access site.
//
// Two styles are covered:
//
//   - classic fields: if &x.f is ever passed to a sync/atomic function
//     (atomic.AddInt64(&x.f, 1)), every other access to that field must go
//     through sync/atomic too; a bare read `x.f` or write `x.f = 0` is
//     flagged. Taking the address outside an atomic call is also flagged —
//     laundering the pointer through a variable defeats the analysis, so it
//     is treated as a plain access.
//   - typed atomics (atomic.Int64, atomic.Pointer[T], ...): the field may
//     only appear as the receiver of a method call/value (x.f.Load()) or
//     under & (passing the atomic by pointer); a plain copy or assignment
//     of the atomic value bypasses the protocol and is flagged.
//
// Deliberate exceptions (e.g. a constructor writing before the value is
// shared) carry //het:allow atomicfield -- <reason>.
var AtomicField = &Analyzer{
	Name: "atomicfield",
	Doc: `forbid plain access to fields used with sync/atomic

A field accessed via sync/atomic (either &f passed to atomic.* or a typed
atomic.Int64-style field) must be accessed atomically everywhere: plain
reads, writes, and copies race with the atomic sites. Suppress with
//het:allow atomicfield -- <reason>.`,
	Run: runAtomicField,
}

func runAtomicField(pass *Pass) error {
	info := pass.TypesInfo

	// Pass 1: collect objects whose address flows into a sync/atomic call,
	// and remember those blessed identifier uses.
	atomicObjs := map[types.Object]bool{}
	blessed := map[*ast.Ident]bool{}
	for _, f := range pass.Files {
		if isTestFile(pass.Fset, f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(info, call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
				return true
			}
			if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
				return true // methods on typed atomics are style two
			}
			for _, arg := range call.Args {
				ue, ok := ast.Unparen(arg).(*ast.UnaryExpr)
				if !ok || ue.Op != token.AND {
					continue
				}
				if id := addressedIdent(ue.X); id != nil {
					if obj := info.Uses[id]; obj != nil {
						atomicObjs[obj] = true
						blessed[id] = true
					}
				}
			}
			return true
		})
	}

	// Pass 2: flag every other use of those objects, and every non-method,
	// non-address use of a typed atomic field.
	for _, f := range pass.Files {
		if isTestFile(pass.Fset, f) {
			continue
		}
		walkWithStack(f, func(n ast.Node, stack []ast.Node) {
			switch n := n.(type) {
			case *ast.Ident:
				obj := info.Uses[n]
				if obj == nil || !atomicObjs[obj] || blessed[n] {
					return
				}
				pass.Reportf(n.Pos(), "field %s is accessed via sync/atomic elsewhere in this package; this plain access races with the atomic sites — use atomic loads/stores here too", obj.Name())
			case *ast.SelectorExpr:
				sel, ok := info.Selections[n]
				if !ok || sel.Kind() != types.FieldVal {
					return
				}
				// Exactly a value of a sync/atomic named type: a field of
				// type *atomic.Int64 is a plain pointer and copies safely.
				named, ok := sel.Obj().Type().(*types.Named)
				if !ok || named.Obj().Pkg() == nil || named.Obj().Pkg().Path() != "sync/atomic" {
					return
				}
				if typedAtomicUseOK(info, n, stack) {
					return
				}
				pass.Reportf(n.Pos(), "field %s has atomic type %s and must be used through its methods; a plain copy or assignment bypasses the atomic protocol", sel.Obj().Name(), named.Obj().Name())
			}
		})
	}
	return nil
}

// addressedIdent returns the identifier naming the addressed variable or
// field in &x / &x.f / &x.y.f, nil for anything more exotic (index
// expressions, calls).
func addressedIdent(expr ast.Expr) *ast.Ident {
	switch e := ast.Unparen(expr).(type) {
	case *ast.Ident:
		return e
	case *ast.SelectorExpr:
		return e.Sel
	}
	return nil
}

// typedAtomicUseOK reports whether a typed-atomic field selection appears in
// one of the two sanctioned positions: receiver of a method selection
// (x.f.Load(), or a method value), or operand of unary & (passing the
// atomic by pointer).
func typedAtomicUseOK(info *types.Info, n *ast.SelectorExpr, stack []ast.Node) bool {
	// Nearest non-paren ancestor.
	for i := len(stack) - 1; i >= 0; i-- {
		switch p := stack[i].(type) {
		case *ast.ParenExpr:
			continue
		case *ast.SelectorExpr:
			if sel, ok := info.Selections[p]; ok && sel.Kind() == types.MethodVal {
				return true
			}
			return false
		case *ast.UnaryExpr:
			return p.Op == token.AND
		default:
			return false
		}
	}
	return false
}

// walkWithStack visits every node with the stack of its ancestors
// (outermost first, the node itself excluded).
func walkWithStack(root ast.Node, visit func(n ast.Node, stack []ast.Node)) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		visit(n, stack)
		stack = append(stack, n)
		return true
	})
}
