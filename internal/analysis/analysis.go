// Package analysis is a self-contained static-analysis framework plus the
// hetlint analyzer suite that machine-checks this repository's two load-bearing
// invariants:
//
//   - determinism: outputs are bit-identical at any worker count, so nothing
//     may iterate a map into ordered output (maporder), draw entropy outside
//     an explicit seed (nodeterm), or leave a bit-exact float kernel open to
//     reassociation or FMA fusion (floatorder);
//   - zero-alloc hot paths: functions annotated //het:hotpath must not
//     contain the allocation patterns the runtime benchmark gate
//     (benchrun -gate-allocs) exists to catch after the fact (hotpath), and
//     the same rules propagate through the static call graph to every
//     function reachable from a hotpath root (hotpathprop); functions
//     annotated //het:allocfree are statically certified to contain no
//     allocation site along any reachable path (allocfree);
//   - concurrency discipline: mutexes must be acquired in one global order —
//     lock→lock edges observed across the program must form no cycle
//     (lockorder) — and a field accessed through sync/atomic must never be
//     read or written plainly elsewhere (atomicfield).
//
// Per-package analyzers implement the Analyzer interface; interprocedural
// ones implement ProgramAnalyzer and run over a call graph built from every
// loaded package (see callgraph.go for construction and soundness caveats).
//
// The API mirrors golang.org/x/tools/go/analysis — Analyzer, Pass, Diagnostic
// — but is built on the standard library only (go/ast, go/types, go/importer),
// because this repository vendors nothing and builds offline. cmd/hetlint
// drives the suite either standalone (hetlint ./...) or as a `go vet
// -vettool` backend speaking the unitchecker *.cfg protocol.
//
// Suppressions are explicit and carry a reason:
//
//	b.msgs = append(b.msgs, env) //het:allow hotpath -- amortized queue growth
//
// An //het:allow directive naming the analyzer on the flagged line (or the
// line above it) silences the diagnostic; a directive without a reason is
// itself a diagnostic.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer describes one invariant checker.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in //het:allow
	// directives. It must be a valid Go identifier.
	Name string
	// Doc is a one-paragraph description, shown by hetlint help.
	Doc string
	// Run inspects one package and reports diagnostics via pass.Report.
	Run func(pass *Pass) error
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// Report delivers one diagnostic. The driver filters suppressed
	// diagnostics afterwards, so analyzers never inspect //het:allow
	// directives themselves.
	Report func(Diagnostic)
}

// Reportf reports a diagnostic at pos with a formatted message.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one finding, positioned inside the analyzed package.
type Diagnostic struct {
	Pos      token.Pos
	Message  string
	Analyzer string // filled by the driver
}

// Analyzers returns the per-package hetlint suite in stable order. These
// analyzers need only one type-checked package at a time, so they run under
// both driver modes (standalone and `go vet -vettool`) with identical results.
func Analyzers() []*Analyzer {
	return []*Analyzer{MapOrder, HotPath, NoDeterm, FloatOrder, AtomicField}
}

// ProgramAnalyzers returns the whole-program hetlint suite in stable order.
// These analyzers reason over the call graph spanning every loaded package
// (hotpath taint propagation, allocation-freedom certification, lock-order
// cycles), so their coverage grows with the program handed to RunProgram:
// the standalone driver loads the entire module, while the vet protocol
// type-checks one package per invocation and therefore sees only
// intra-package edges. CI runs both.
func ProgramAnalyzers() []*ProgramAnalyzer {
	return []*ProgramAnalyzer{HotPathProp, AllocFree, LockOrder}
}

// ProgramAnalyzer describes one whole-program invariant checker.
type ProgramAnalyzer struct {
	// Name identifies the analyzer in diagnostics and //het:allow directives.
	Name string
	// Doc is a one-paragraph description, shown by hetlint help.
	Doc string
	// Run inspects the whole program and reports diagnostics via pass.Report.
	Run func(pass *ProgramPass) error
}

// ProgramPass carries the full set of loaded packages through one
// whole-program analyzer.
type ProgramPass struct {
	Analyzer *ProgramAnalyzer
	Fset     *token.FileSet
	Pkgs     []*Package
	Report   func(Diagnostic)
}

// Reportf reports a diagnostic at pos with a formatted message.
func (p *ProgramPass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// RunProgram executes the whole-program analyzers over the loaded packages
// and returns the surviving diagnostics sorted by position. //het:allow
// filtering spans every file of every package; malformed allow directives are
// NOT re-reported here — RunPackage owns that finding, and the same files
// pass through it in both driver modes.
func RunProgram(pkgs []*Package, analyzers []*ProgramAnalyzer) ([]Diagnostic, error) {
	if len(pkgs) == 0 {
		return nil, nil
	}
	fset := pkgs[0].Fset
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &ProgramPass{Analyzer: a, Fset: fset, Pkgs: pkgs}
		name := a.Name
		pass.Report = func(d Diagnostic) {
			d.Analyzer = name
			diags = append(diags, d)
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %v", a.Name, err)
		}
	}
	var allFiles []*ast.File
	for _, p := range pkgs {
		allFiles = append(allFiles, p.Files...)
	}
	allows, _ := collectAllows(fset, allFiles)
	kept := diags[:0]
	for _, d := range diags {
		if allows.covers(fset.Position(d.Pos), d.Analyzer) {
			continue
		}
		kept = append(kept, d)
	}
	diags = kept
	sortDiagnostics(fset, diags)
	return diags, nil
}

// RunPackage executes the analyzers over one loaded package and returns the
// surviving diagnostics sorted by position: suppressed findings are removed,
// and malformed //het:allow directives (no analyzer name, or no reason) are
// reported as findings of their own.
func RunPackage(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     files,
			Pkg:       pkg,
			TypesInfo: info,
		}
		name := a.Name
		pass.Report = func(d Diagnostic) {
			d.Analyzer = name
			diags = append(diags, d)
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %v", a.Name, err)
		}
	}
	allows, bad := collectAllows(fset, files)
	kept := diags[:0]
	for _, d := range diags {
		if allows.covers(fset.Position(d.Pos), d.Analyzer) {
			continue
		}
		kept = append(kept, d)
	}
	diags = append(kept, bad...)
	sortDiagnostics(fset, diags)
	return diags, nil
}

// sortDiagnostics orders findings by (file, line, message) so driver output
// is stable across runs and analyzer orderings.
func sortDiagnostics(fset *token.FileSet, diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		pi, pj := fset.Position(diags[i].Pos), fset.Position(diags[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		return diags[i].Message < diags[j].Message
	})
}

// allowSet records which (file, line) positions carry an //het:allow for
// which analyzer names. A directive covers its own line and the line below
// it, so it can sit either trailing the flagged statement or on its own line
// directly above.
type allowSet map[string]map[int][]string

func (s allowSet) covers(pos token.Position, analyzer string) bool {
	lines := s[pos.Filename]
	for _, l := range [2]int{pos.Line, pos.Line - 1} {
		for _, name := range lines[l] {
			if name == analyzer {
				return true
			}
		}
	}
	return false
}

// allowPrefix introduces a suppression: //het:allow <analyzer> -- <reason>.
const allowPrefix = "//het:allow"

func collectAllows(fset *token.FileSet, files []*ast.File) (allowSet, []Diagnostic) {
	set := allowSet{}
	var bad []Diagnostic
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, allowPrefix) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, allowPrefix)
				name, reason, _ := strings.Cut(rest, "--")
				name = strings.TrimSpace(name)
				reason = strings.TrimSpace(reason)
				if name == "" || reason == "" {
					bad = append(bad, Diagnostic{
						Pos:      c.Pos(),
						Message:  "het:allow directive needs an analyzer name and a reason: //het:allow <analyzer> -- <why this is safe>",
						Analyzer: "directive",
					})
					continue
				}
				pos := fset.Position(c.Pos())
				lines := set[pos.Filename]
				if lines == nil {
					lines = map[int][]string{}
					set[pos.Filename] = lines
				}
				for _, n := range strings.Fields(name) {
					lines[pos.Line] = append(lines[pos.Line], n)
				}
			}
		}
	}
	return set, bad
}

// funcDirectives reports whether a function's doc comment carries the given
// //het: directive (e.g. "hotpath", "bitexact"). Directives are whole-line
// comments in the doc block, in the style of //go:noinline.
func hasDirective(doc *ast.CommentGroup, directive string) bool {
	if doc == nil {
		return false
	}
	want := "//het:" + directive
	for _, c := range doc.List {
		text := strings.TrimSpace(c.Text)
		if text == want || strings.HasPrefix(text, want+" ") {
			return true
		}
	}
	return false
}

// isTestFile reports whether the file belongs to the package's tests. The
// invariants guard production code; tests exercise nondeterminism (timeouts,
// randomized fuzzing) on purpose.
func isTestFile(fset *token.FileSet, f *ast.File) bool {
	return strings.HasSuffix(fset.Position(f.Package).Filename, "_test.go")
}

// pathMatches reports whether a package path is covered by a scope list:
// an exact match or a suffix match on a "/"-boundary, so "internal/core"
// covers "hetmodel/internal/core" in-repo and "core" fixtures under test.
func pathMatches(pkgPath string, scope []string) bool {
	for _, s := range scope {
		if pkgPath == s || strings.HasSuffix(pkgPath, "/"+s) {
			return true
		}
	}
	return false
}
