// Fixture for the floatorder analyzer, in scope via the internal/lsq suffix.
package lsq

import "math"

// UseFMA fuses where the model arithmetic rounds twice.
func UseFMA(a, b, c float64) float64 {
	return math.FMA(a, b, c) // want `math.FMA rounds once`
}

// SumMapValues reduces in map iteration order.
func SumMapValues(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v // want `floating-point accumulation in map iteration order`
	}
	return sum
}

// SumMapLongForm spells the same reduction without +=.
func SumMapLongForm(m map[int]float64) float64 {
	total := 0.0
	for _, v := range m {
		total = total + v // want `floating-point accumulation in map iteration order`
	}
	return total
}

// CountMapValues accumulates an int: order-free, exact arithmetic.
func CountMapValues(m map[string]float64) int {
	n := 0
	for range m {
		n++
	}
	for _, v := range m {
		if v > 0 {
			n += 1
		}
	}
	return n
}

// SumSorted is the blessed reduction: sorted keys fix the order.
func SumSorted(keys []string, m map[string]float64) float64 {
	var sum float64
	for _, k := range keys {
		sum += m[k]
	}
	return sum
}

// DotBitexact carries the bitwise-equality property tests: the fusable
// multiply-add shapes must carry explicit rounding conversions.
//
//het:bitexact
func DotBitexact(a, b []float64) float64 {
	var s float64
	for i := range a {
		s += a[i] * b[i] // want `may be fused into one FMA`
	}
	return s
}

// AxpyBitexact shows the compliant form: float64 conversions forbid fusion.
//
//het:bitexact
func AxpyBitexact(alpha float64, dst, src []float64) {
	for i := range dst {
		dst[i] += float64(alpha * src[i])
	}
}

//het:bitexact
func ExprBitexact(a, b, c float64) (float64, float64, float64) {
	bad := a*b + c // want `may be fused into one FMA`
	sub := c - a*b // want `may be fused into one FMA`
	good := float64(a*b) + c
	return bad, sub, good
}

//het:bitexact
func PlainSumBitexact(a, b float64) float64 {
	return a + b // additions without an embedded product cannot fuse
}

// DotUnmarked is not annotated: fusable shapes are only reported where the
// bit-exactness contract is declared.
func DotUnmarked(a, b []float64) float64 {
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// AllowedFMA demonstrates the escape hatch.
func AllowedFMA(a, b, c float64) float64 {
	return math.FMA(a, b, c) //het:allow floatorder -- fixture: precision experiment, not a kernel
}
