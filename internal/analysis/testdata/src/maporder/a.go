// Fixture for the maporder analyzer: map iteration feeding ordered output.
package maporder

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// PrintDirect writes table rows straight from map iteration.
func PrintDirect(m map[string]int) {
	for k, v := range m {
		fmt.Printf("%s=%d\n", k, v) // want `call to fmt.Printf inside map iteration`
	}
}

// FprintToWriter is the renderer shape: fmt.Fprintf into a builder.
func FprintToWriter(w io.Writer, m map[string]int) {
	for k := range m {
		fmt.Fprintf(w, "%s\n", k) // want `call to fmt.Fprintf inside map iteration`
	}
}

// BuilderWrite uses strings.Builder methods rather than fmt.
func BuilderWrite(m map[string]float64) string {
	var b strings.Builder
	for k := range m {
		b.WriteString(k) // want `call to Builder.WriteString inside map iteration`
	}
	return b.String()
}

// NestedSliceLoop still emits once per outer map key.
func NestedSliceLoop(m map[string][]int, w io.Writer) {
	for _, vs := range m {
		for _, v := range vs {
			fmt.Fprintln(w, v) // want `call to fmt.Fprintln inside map iteration`
		}
	}
}

// ChannelSend publishes map entries in random order.
func ChannelSend(m map[int]int, ch chan int) {
	for k := range m {
		ch <- k // want `channel send inside map iteration`
	}
}

// AccumulateUnsorted collects keys but never sorts them.
func AccumulateUnsorted(m map[string]int) []string {
	var keys []string
	for k := range m { // want `accumulates into "keys", which is not sorted`
		keys = append(keys, k)
	}
	return keys
}

// UsedBeforeSort observes random order before the sort repairs it.
func UsedBeforeSort(m map[string]int) string {
	var keys []string
	for k := range m { // want `accumulates into "keys", which is not sorted`
		keys = append(keys, k)
	}
	first := keys[0]
	sort.Strings(keys)
	return first
}

// CollectThenSort is the blessed pattern: keys out, sort, then render.
func CollectThenSort(m map[string]int) string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&b, "%s=%d\n", k, m[k])
	}
	return b.String()
}

// CollectThenSortSlice also counts: sort.Slice mentions the slice.
func CollectThenSortSlice(m map[int]string) []int {
	var ks []int
	for k := range m {
		ks = append(ks, k)
	}
	sort.Slice(ks, func(i, j int) bool { return ks[i] < ks[j] })
	return ks
}

// InnerAppend grows a slice that dies inside the loop body: order-free.
func InnerAppend(m map[string][]int) int {
	total := 0
	for _, vs := range m {
		var local []int
		local = append(local, vs...)
		total += len(local)
	}
	return total
}

// OrderFreeAggregation neither prints nor accumulates into a slice.
func OrderFreeAggregation(m map[string]int) int {
	max := 0
	for _, v := range m {
		if v > max {
			max = v
		}
	}
	return max
}

// Allowed demonstrates the escape hatch: an explicit reasoned suppression.
func Allowed(m map[string]int, w io.Writer) {
	for k := range m {
		fmt.Fprintln(w, k) //het:allow maporder -- fixture: order observed by no test
	}
}

// BadDirective lacks a reason and is itself diagnosed.
func BadDirective(m map[string]int, w io.Writer) {
	for k := range m {
		fmt.Fprintln(w, k) //het:allow maporder // want `needs an analyzer name and a reason` // want `call to fmt.Fprintln inside map iteration`
	}
}
