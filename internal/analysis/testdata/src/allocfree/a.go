// Fixture for the allocfree analyzer: //het:allocfree functions must
// contain no allocation site along any statically reachable path, with the
// len<cap escape-lite whitelist admitting provably reused buffers.
package allocfree

type vec struct{ x, y float64 }

//het:allocfree
func Grow(xs []int, v int) []int {
	return append(xs, v) // want `append may grow its backing array in //het:allocfree function Grow`
}

// Guarded matches the reservoir shape: the append provably reuses capacity.
//
//het:allocfree
func Guarded(xs []float64, v float64) []float64 {
	if len(xs) < cap(xs) {
		xs = append(xs, v)
	}
	return xs
}

//het:allocfree
func Fresh(n int) []int {
	return make([]int, n) // want `make allocates in //het:allocfree function Fresh`
}

//het:allocfree
func Boxed() *int {
	return new(int) // want `new allocates in //het:allocfree function Boxed`
}

//het:allocfree
func SliceLit(a float64) []float64 {
	return []float64{a} // want `composite literal allocates in //het:allocfree function SliceLit`
}

// Value composite literals of struct type live on the stack: legal.
//
//het:allocfree
func Value(a float64) vec {
	return vec{x: a, y: -a}
}

//het:allocfree
func Escaping(a float64) *vec {
	return &vec{x: a} // want `address-taken composite literal escapes to the heap in //het:allocfree function Escaping`
}

//het:allocfree
func Closure(n int) int {
	f := func() int { return n } // want `closure allocation in //het:allocfree function Closure`
	return f()
}

//het:allocfree
func Concat(a, b string) string {
	return a + b // want `string concatenation allocates in //het:allocfree function Concat`
}

//het:allocfree
func Convert(b []byte) string {
	return string(b) // want `conversion between string and byte/rune slice copies its contents in //het:allocfree function Convert`
}

//het:allocfree
func MapWrite(m map[int]int, k int) {
	m[k] = k // want `map assignment may allocate a bucket in //het:allocfree function MapWrite`
}

// Transitivity: the root is clean but its helper allocates.
//
//het:allocfree
func Kernel(a, b float64) float64 {
	return helperAlloc(a) + b
}

func helperAlloc(a float64) float64 {
	buf := []float64{a, a} // want `composite literal allocates in function helperAlloc, reachable from //het:allocfree root Kernel`
	return buf[0]
}

// cleanHelper is pure arithmetic: reachable and fine.
func cleanHelper(a float64) float64 { return a * a }

//het:allocfree
func KernelClean(a float64) float64 { return cleanHelper(a) }

// Suppression carries through the program pass.
//
//het:allocfree
func Amortized(xs []int, v int) []int {
	return append(xs, v) //het:allow allocfree -- fixture: growth amortizes across the run
}

// panic-only helpers stay cold: the boxing in the panic call is exempt and
// edges into panicBad are not traversed.
func panicBad(code int) {
	panic(code)
}

//het:allocfree
func Checked(n int) int {
	if n < 0 {
		panicBad(n)
	}
	return n + 1
}
