// Fixture for the hotpathprop analyzer: the hotpath allocation rules
// propagate through the static call graph to every function reachable from
// a //het:hotpath root, annotated or not.
package hotpathprop

import "fmt"

//het:hotpath
func Root(n int) int {
	return helper(n) + deep(n)
}

// helper is unannotated but called directly from a hotpath root: extracting
// it must not launder the fmt call.
func helper(n int) int {
	s := fmt.Sprintf("n=%d", n) // want `call to fmt.Sprintf allocates in function helper, reachable from //het:hotpath root Root`
	return len(s)
}

// deep is one more hop away; taint is transitive.
func deep(n int) int { return deeper(n) }

func deeper(n int) int {
	m := make(map[int]int) // want `make\(map\) allocates in function deeper, reachable from //het:hotpath root Root`
	m[n] = n
	return len(m)
}

// coldPanic is panic-only: formatting hoisted off the hot path on purpose.
// Edges into it are not traversed, so its fmt call stays legal.
func coldPanic(n int) {
	panic(fmt.Sprintf("bad input %d", n))
}

//het:hotpath
func Guarded(n int) int {
	if n < 0 {
		coldPanic(n)
	}
	return n * 2
}

// notReached allocates freely: nothing on a hot path calls it.
func notReached(n int) string {
	return fmt.Sprintf("%d", n)
}

type doer interface{ Do(int) int }

// Dyn calls through an interface: no static edge, so implementations are
// not tainted (the documented soundness hole).
//
//het:hotpath
func Dyn(d doer, n int) int { return d.Do(n) }

type impl struct{}

func (impl) Do(n int) int {
	return len(fmt.Sprint(n)) // untainted: reached only dynamically
}

// allowed demonstrates suppression on a propagated finding.
func allowed(n int) int {
	s := fmt.Sprint(n) //het:allow hotpathprop -- fixture: cold in practice
	return len(s)
}

//het:hotpath
func RootAllowed(n int) int { return allowed(n) }

// selfAnnotated is reachable from Root2 but carries its own annotation:
// the per-package hotpath analyzer owns it, hotpathprop must not double-
// report. (The hotpath analyzer is not loaded in this fixture, so a
// double report would surface as an unexpected diagnostic.)
//
//het:hotpath
func selfAnnotated(n int) string {
	return fmt.Sprintf("%d", n) //het:allow hotpath -- fixture: direct finding owned by hotpath
}

//het:hotpath
func Root2(n int) int { return len(selfAnnotated(n)) }

// Methods on concrete receivers resolve statically and are tainted too.
type kernel struct {
	buf []int
	acc int
}

//het:hotpath
func RootMethod(k *kernel, n int) int {
	k.step(n)
	return k.acc
}

func (k *kernel) step(n int) {
	k.buf = append(k.buf, n) // want `append without visible preallocation in function \(\*kernel\).step, reachable from //het:hotpath root RootMethod`
	k.acc += n
}
