// Fixture: internal/fleet joined the nodeterm scope — the scatter-gather
// merge must rank shard results identically on every run. Durations and
// tickers are fine; wall-clock reads and global randomness are not.
package fleet

import (
	"math/rand"
	"time"
)

// tick uses duration plumbing only: legal.
func tick(d time.Duration) *time.Ticker {
	return time.NewTicker(d)
}

func elapsed(t0 time.Time) time.Duration {
	return time.Since(t0) // want `time.Since reads the wall clock`
}

func shuffleSeedless(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { // want `global random source`
		xs[i], xs[j] = xs[j], xs[i]
	})
}
