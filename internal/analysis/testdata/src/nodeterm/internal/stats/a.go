// Fixture: internal/stats joined the nodeterm scope — summary statistics
// feed golden files, so entropy must flow from explicit seeds.
package stats

import (
	"math/rand"
	"time"
)

// seeded is the sanctioned shape: an explicit seed threads the stream.
func seeded(seed int64) float64 {
	return rand.New(rand.NewSource(seed)).Float64()
}

func wall() int64 {
	return time.Now().UnixNano() // want `time.Now reads the wall clock`
}

func jitter() float64 {
	return rand.Float64() // want `global random source`
}
