// Fixture for the nodeterm analyzer, in scope via the internal/core suffix.
package core

import (
	crand "crypto/rand"
	"math/rand"
	"time"
)

// WallClock reads ambient time.
func WallClock() int64 {
	t := time.Now() // want `time.Now reads the wall clock`
	return t.Unix()
}

// Elapsed measures with the wall clock too.
func Elapsed(since time.Time) time.Duration {
	return time.Since(since) // want `time.Since reads the wall clock`
}

// GlobalRand draws from the shared generator.
func GlobalRand() float64 {
	return rand.Float64() // want `math/rand.Float64 uses the global random source`
}

// GlobalShuffle mutates order from the global source.
func GlobalShuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want `math/rand.Shuffle uses the global random source`
}

// CryptoRand can never be reproduced from a seed.
func CryptoRand(buf []byte) {
	crand.Read(buf) // want `crypto/rand is inherently nondeterministic`
}

// SeededRand is the blessed pattern: entropy flows from the explicit seed.
func SeededRand(seed int64) float64 {
	rng := rand.New(rand.NewSource(seed))
	return rng.Float64()
}

// VirtualTime threads time explicitly instead of reading a clock.
func VirtualTime(clock float64, dt float64) float64 {
	return clock + dt
}

// AllowedClock demonstrates a reasoned exemption.
func AllowedClock() int64 {
	return time.Now().UnixNano() //het:allow nodeterm -- fixture: diagnostics-only timestamp
}
