// Fixture proving nodeterm keeps quiet outside the deterministic packages.
package outofscope

import (
	"math/rand"
	"time"
)

// Timestamp may read the wall clock: this package is not in scope.
func Timestamp() int64 {
	return time.Now().UnixNano()
}

// Jitter may use global randomness here.
func Jitter() float64 {
	return rand.Float64()
}
