// Fixture for the hotpath analyzer: allocation patterns in annotated
// functions.
package hotpath

import "fmt"

// consume takes an interface, so scalar arguments box.
func consume(v any) { _ = v }

// consumePtr takes a pointer: storing a pointer in an interface is free.
func consumePair(p *int, f func() int) { _ = p; _ = f }

//het:hotpath
func SprintfHot(n int) string {
	return fmt.Sprintf("n=%d", n) // want `call to fmt.Sprintf allocates`
}

//het:hotpath
func ErrorfHot(n int) error {
	return fmt.Errorf("bad n %d", n) // want `call to fmt.Errorf allocates`
}

//het:hotpath
func ClosureHot(xs []float64) float64 {
	f := func(x float64) float64 { return x * x } // want `closure allocation`
	total := 0.0
	for _, x := range xs {
		total += f(x)
	}
	return total
}

//het:hotpath
func MapLiteralHot() int {
	m := map[string]int{"a": 1} // want `map literal allocates`
	return len(m)
}

//het:hotpath
func MakeMapHot(n int) int {
	m := make(map[int]int, n) // want `make\(map\) allocates`
	return len(m)
}

//het:hotpath
func AppendBareHot(xs []int, x int) []int {
	return append(xs, x) // want `append without visible preallocation`
}

//het:hotpath
func AppendPreallocHot(n int) []int {
	out := make([]int, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, i)
	}
	return out
}

//het:hotpath
func BoxingHot(n int) {
	consume(n) // want `passing int to interface parameter boxes the value`
}

//het:hotpath
func NoBoxingHot(p *int) {
	consume(p)               // pointers ride in the interface word: free
	consumePair(p, identity) // func values are pointers too
	if p == nil {
		panic("nil input") // panic is the cold path: exempt
	}
}

func identity() int { return 0 }

//het:hotpath
func AllowedHot(n int) string {
	return fmt.Sprintf("n=%d", n) //het:allow hotpath -- fixture: called once per process
}

// ColdPath is unannotated: the same patterns are fine here.
func ColdPath(n int) (string, error) {
	m := map[int]string{}
	f := func() string { return fmt.Sprintf("%d", n) }
	m[n] = f()
	var out []string
	out = append(out, m[n])
	consume(n)
	return out[0], fmt.Errorf("no error")
}
