// Fixture for the atomicfield analyzer: a field accessed via sync/atomic
// must never be read or written plainly elsewhere.
package atomicfield

import "sync/atomic"

type counters struct {
	hits  int64
	reads int64
	typed atomic.Int64
	gauge atomic.Uint64
	ptr   *atomic.Int64 // pointer to an atomic: the pointer itself copies freely
}

// bump establishes that hits is an atomic field.
func bump(c *counters) {
	atomic.AddInt64(&c.hits, 1)
}

func readPlain(c *counters) int64 {
	return c.hits // want `field hits is accessed via sync/atomic elsewhere`
}

func writePlain(c *counters) {
	c.hits = 0 // want `field hits is accessed via sync/atomic elsewhere`
}

func readAtomic(c *counters) int64 {
	return atomic.LoadInt64(&c.hits)
}

// launder takes the address outside an atomic call: treated as a plain
// access, because the analysis cannot follow the pointer.
func launder(c *counters) *int64 {
	return &c.hits // want `field hits is accessed via sync/atomic elsewhere`
}

// reads is never touched atomically: plain access everywhere is fine.
func plainOnly(c *counters) int64 {
	c.reads++
	return c.reads
}

// Typed atomics: method calls and address-taking are the protocol.
func typedOK(c *counters) int64 {
	c.typed.Store(1)
	c.gauge.Add(2)
	return c.typed.Load()
}

func typedPtrOK(c *counters) *atomic.Int64 {
	return &c.typed
}

func typedCopy(c *counters) int64 {
	v := c.typed // want `field typed has atomic type Int64 and must be used through its methods`
	return v.Load()
}

func typedAssign(c *counters, v atomic.Int64) {
	c.typed = v // want `field typed has atomic type Int64 and must be used through its methods`
}

// The pointer-to-atomic field copies as a plain pointer; the pointee is
// still driven through methods.
func ptrFieldOK(c *counters) int64 {
	p := c.ptr
	return p.Load()
}

// Suppression: constructors may initialize before the value is shared.
func fresh() *counters {
	c := &counters{}
	c.hits = 0 //het:allow atomicfield -- fixture: not yet shared with any other goroutine
	return c
}
