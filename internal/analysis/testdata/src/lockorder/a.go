// Fixture for the lockorder analyzer: lock→lock edges across the program
// must form no cycle.
package lockorder

import "sync"

type pair struct {
	a  sync.Mutex
	b  sync.Mutex
	n  int
	mu sync.RWMutex
}

// lockAB and lockBA take the same two mutexes in opposite orders: both
// edges sit on a cycle and both are reported at the inner acquisition.
func lockAB(p *pair) {
	p.a.Lock()
	defer p.a.Unlock()
	p.b.Lock() // want `inconsistent lock order: lockorder.pair.b acquired while holding lockorder.pair.a`
	p.n++
	p.b.Unlock()
}

func lockBA(p *pair) {
	p.b.Lock()
	defer p.b.Unlock()
	p.a.Lock() // want `inconsistent lock order: lockorder.pair.a acquired while holding lockorder.pair.b`
	p.n++
	p.a.Unlock()
}

// sequential is balanced: unlocking a before taking b creates no edge.
func sequential(p *pair) {
	p.a.Lock()
	p.n++
	p.a.Unlock()
	p.b.Lock()
	p.n--
	p.b.Unlock()
}

// Consistent nesting elsewhere: mu→a everywhere, never a→mu. No cycle, no
// diagnostics, and RLock counts as an acquisition of the same lock.
func readThenA(p *pair) int {
	p.mu.RLock()
	defer p.mu.RUnlock()
	p.a.Lock()
	defer p.a.Unlock()
	return p.n
}

func writeThenA(p *pair) {
	p.mu.Lock()
	p.a.Lock()
	p.n++
	p.a.Unlock()
	p.mu.Unlock()
}

// Interprocedural inversion: withTree holds tree.mu and calls into a helper
// that takes leaf.mu; reversed does the opposite directly. The edge through
// the call is reported at the call site.
type tree struct {
	mu sync.Mutex
	n  int
}

type leaf struct {
	mu sync.Mutex
	n  int
}

func (t *tree) withTree(l *leaf) {
	t.mu.Lock()
	defer t.mu.Unlock()
	l.bump() // want `inconsistent lock order: lockorder.leaf.mu acquired while holding lockorder.tree.mu`
}

func (l *leaf) bump() {
	l.mu.Lock()
	l.n++
	l.mu.Unlock()
}

func (l *leaf) reversed(t *tree) {
	l.mu.Lock()
	defer l.mu.Unlock()
	t.mu.Lock() // want `inconsistent lock order: lockorder.tree.mu acquired while holding lockorder.leaf.mu`
	t.n++
	t.mu.Unlock()
}

// Branches fork the held-set: the two arms each hold only their own lock,
// so no a→b or b→a edge arises from sibling branches.
func forked(p *pair, left bool) {
	if left {
		p.a.Lock()
		p.n++
		p.a.Unlock()
	} else {
		p.b.Lock()
		p.n--
		p.b.Unlock()
	}
}

// A goroutine starts with an empty held-set: no edge from a to b here.
func spawned(p *pair, wg *sync.WaitGroup) {
	p.a.Lock()
	defer p.a.Unlock()
	wg.Add(1)
	go func() {
		defer wg.Done()
		p.b.Lock()
		p.n++
		p.b.Unlock()
	}()
}

// Suppression: the directive silences the edge it covers.
type quiet struct {
	x sync.Mutex
	y sync.Mutex
	n int
}

func quietXY(q *quiet) {
	q.x.Lock()
	defer q.x.Unlock()
	q.y.Lock() //het:allow lockorder -- fixture: x.y inversion is guarded by a singleton elsewhere
	q.n++
	q.y.Unlock()
}

func quietYX(q *quiet) {
	q.y.Lock()
	defer q.y.Unlock()
	q.x.Lock() //het:allow lockorder -- fixture: see quietXY
	q.n++
	q.x.Unlock()
}
