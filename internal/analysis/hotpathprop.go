package analysis

// HotPathProp propagates the hotpath allocation rules through the static
// call graph: every function reachable from a //het:hotpath root is on the
// hot path whether or not it carries the annotation itself, so extracting a
// helper out of Evaluator.Tau or the odometer walk cannot silently
// reintroduce fmt calls, closures, map allocation, unpreallocated appends,
// or interface boxing.
//
// Functions that carry //het:hotpath themselves are skipped here — the
// per-package hotpath analyzer already checks them directly, with the same
// rules. Edges into panic-only helpers are not traversed (panics are the
// cold path), and dynamic calls (interfaces, function values) produce no
// edge; see callgraph.go for the soundness discussion.
var HotPathProp = &ProgramAnalyzer{
	Name: "hotpathprop",
	Doc: `propagate hotpath allocation rules through the call graph

Every function statically reachable from a //het:hotpath root must satisfy
the same allocation discipline as the root itself: no fmt calls, closures,
map literals, unpreallocated appends, or scalar-to-interface boxing.
Suppress a deliberate exception with //het:allow hotpathprop -- <reason>.`,
	Run: runHotPathProp,
}

func runHotPathProp(pass *ProgramPass) error {
	g := buildCallGraph(pass.Pkgs)
	roots := g.annotatedRoots("hotpath")
	for _, r := range g.reachableFrom(roots) {
		if hasDirective(r.node.decl.Doc, "hotpath") {
			continue // checked directly by the per-package hotpath analyzer
		}
		c := &hotChecker{
			info: r.node.pkg.Info,
			where: "function " + r.node.displayName() +
				", reachable from //het:hotpath root " + r.root.qualifiedFrom(r.node.pkg),
			reportf: pass.Reportf,
		}
		c.check(r.node.decl.Body)
	}
	return nil
}
