package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// HotPath enforces allocation discipline in functions annotated
// //het:hotpath — the static complement of the runtime allocation gate
// (benchrun -gate-allocs). Those functions sit on per-candidate and
// per-message paths: Evaluator.Tau scores millions of configurations per
// search, vmpi moves an envelope per MPI message, the serve cache hit path
// runs once per query. A single fmt call or escaping closure turns "0
// allocs/op" into garbage-collector pressure that the benchmark gate only
// catches after the fact, on the machine that happens to run it.
//
// Inside an annotated function the analyzer flags:
//
//   - any call into package fmt (Sprintf, Errorf, ... — all allocate);
//   - function literals (closure allocation; hoist or pass state explicitly);
//   - map literals and make(map...) (always heap-allocated);
//   - append to a slice with no visible 3-arg make preallocation;
//   - interface boxing of scalars: passing an int/float/bool/string to an
//     interface-typed parameter allocates to box the value (panic argument
//     excepted — panics are the cold path by definition).
//
// Deliberate exceptions carry //het:allow hotpath -- <reason>.
var HotPath = &Analyzer{
	Name: "hotpath",
	Doc: `forbid allocation patterns in //het:hotpath functions

Functions annotated //het:hotpath must stay free of fmt calls, closures, map
literals, unpreallocated appends, and scalar-to-interface boxing; they are the
paths the zero-alloc benchmark gate protects at runtime.`,
	Run: runHotPath,
}

func runHotPath(pass *Pass) error {
	for _, f := range pass.Files {
		if isTestFile(pass.Fset, f) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !hasDirective(fd.Doc, "hotpath") {
				continue
			}
			c := &hotChecker{
				info:    pass.TypesInfo,
				where:   "//het:hotpath function " + fd.Name.Name,
				reportf: pass.Reportf,
			}
			c.check(fd.Body)
		}
	}
	return nil
}

// hotChecker applies the hotpath allocation rules to one function body.
// The where label names the function and, for the interprocedural analyzer
// (hotpathprop), the //het:hotpath root whose taint reached it — the rules
// themselves are shared verbatim between the direct and propagated cases.
type hotChecker struct {
	info    *types.Info
	where   string
	reportf func(pos token.Pos, format string, args ...any)
}

func (c *hotChecker) check(body *ast.BlockStmt) {
	prealloc := preallocated(c.info, body)
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			c.reportf(n.Pos(), "closure allocation in %s; hoist the function or pass state explicitly", c.where)
			return true // still check the closure's body: it runs on the hot path
		case *ast.CompositeLit:
			if t := c.info.TypeOf(n); t != nil {
				if _, isMap := t.Underlying().(*types.Map); isMap {
					c.reportf(n.Pos(), "map literal allocates in %s", c.where)
				}
			}
		case *ast.CallExpr:
			c.checkCall(n, prealloc)
		}
		return true
	})
}

func (c *hotChecker) checkCall(call *ast.CallExpr, prealloc map[types.Object]bool) {
	info := c.info
	// Builtins: make(map...) and append without preallocation.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				if t := info.TypeOf(call); t != nil {
					if _, isMap := t.Underlying().(*types.Map); isMap {
						c.reportf(call.Pos(), "make(map) allocates in %s", c.where)
					}
				}
			case "append":
				if obj := appendTarget(info, call); obj == nil || !prealloc[obj] {
					c.reportf(call.Pos(), "append without visible preallocation in %s; make the slice with explicit capacity in this function, or justify with //het:allow", c.where)
				}
			}
			return
		}
	}
	fn := calleeFunc(info, call)
	if fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
		c.reportf(call.Pos(), "call to fmt.%s allocates in %s; move formatting to the cold path", fn.Name(), c.where)
		return // boxing findings on the same call would be noise
	}
	reportBoxing(info, call, c.where, c.reportf)
}

// reportBoxing flags scalar-to-interface boxing at a call boundary: passing
// an int/float/bool/string argument to an interface-typed parameter
// allocates to box the value. Shared by the hotpath and allocfree rule sets.
func reportBoxing(info *types.Info, call *ast.CallExpr, where string, reportf func(pos token.Pos, format string, args ...any)) {
	tv, ok := info.Types[call.Fun]
	if !ok || tv.IsType() { // conversion, not a call
		return
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // s... passes the slice through, no boxing
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if !types.IsInterface(pt) {
			continue
		}
		at := info.TypeOf(arg)
		if at == nil || types.IsInterface(at) {
			continue
		}
		if b, ok := at.Underlying().(*types.Basic); ok && b.Info()&types.IsUntyped == 0 {
			reportf(arg.Pos(), "passing %s to interface parameter boxes the value in %s", at, where)
		}
	}
}

// preallocated collects local slice variables created via the 3-argument
// make (explicit capacity) anywhere in the function: appends to those are
// assumed amortized-free and allowed on hot paths.
func preallocated(info *types.Info, body *ast.BlockStmt) map[types.Object]bool {
	out := map[types.Object]bool{}
	record := func(lhs ast.Expr, rhs ast.Expr) {
		id, ok := ast.Unparen(lhs).(*ast.Ident)
		if !ok {
			return
		}
		call, ok := ast.Unparen(rhs).(*ast.CallExpr)
		if !ok || len(call.Args) != 3 {
			return
		}
		fid, ok := ast.Unparen(call.Fun).(*ast.Ident)
		if !ok {
			return
		}
		if b, ok := info.Uses[fid].(*types.Builtin); !ok || b.Name() != "make" {
			return
		}
		if obj := info.Defs[id]; obj != nil {
			out[obj] = true
		} else if obj := info.Uses[id]; obj != nil {
			out[obj] = true
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) == len(n.Rhs) {
				for i := range n.Lhs {
					record(n.Lhs[i], n.Rhs[i])
				}
			}
		case *ast.ValueSpec:
			if len(n.Names) == len(n.Values) {
				for i := range n.Names {
					record(n.Names[i], n.Values[i])
				}
			}
		}
		return true
	})
	return out
}
