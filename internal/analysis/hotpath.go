package analysis

import (
	"go/ast"
	"go/types"
)

// HotPath enforces allocation discipline in functions annotated
// //het:hotpath — the static complement of the runtime allocation gate
// (benchrun -gate-allocs). Those functions sit on per-candidate and
// per-message paths: Evaluator.Tau scores millions of configurations per
// search, vmpi moves an envelope per MPI message, the serve cache hit path
// runs once per query. A single fmt call or escaping closure turns "0
// allocs/op" into garbage-collector pressure that the benchmark gate only
// catches after the fact, on the machine that happens to run it.
//
// Inside an annotated function the analyzer flags:
//
//   - any call into package fmt (Sprintf, Errorf, ... — all allocate);
//   - function literals (closure allocation; hoist or pass state explicitly);
//   - map literals and make(map...) (always heap-allocated);
//   - append to a slice with no visible 3-arg make preallocation;
//   - interface boxing of scalars: passing an int/float/bool/string to an
//     interface-typed parameter allocates to box the value (panic argument
//     excepted — panics are the cold path by definition).
//
// Deliberate exceptions carry //het:allow hotpath -- <reason>.
var HotPath = &Analyzer{
	Name: "hotpath",
	Doc: `forbid allocation patterns in //het:hotpath functions

Functions annotated //het:hotpath must stay free of fmt calls, closures, map
literals, unpreallocated appends, and scalar-to-interface boxing; they are the
paths the zero-alloc benchmark gate protects at runtime.`,
	Run: runHotPath,
}

func runHotPath(pass *Pass) error {
	for _, f := range pass.Files {
		if isTestFile(pass.Fset, f) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !hasDirective(fd.Doc, "hotpath") {
				continue
			}
			checkHotFunc(pass, fd)
		}
	}
	return nil
}

func checkHotFunc(pass *Pass, fd *ast.FuncDecl) {
	prealloc := preallocated(pass.TypesInfo, fd.Body)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			pass.Reportf(n.Pos(), "closure allocation in //het:hotpath function %s; hoist the function or pass state explicitly", fd.Name.Name)
			return true // still check the closure's body: it runs on the hot path
		case *ast.CompositeLit:
			if t := pass.TypesInfo.TypeOf(n); t != nil {
				if _, isMap := t.Underlying().(*types.Map); isMap {
					pass.Reportf(n.Pos(), "map literal allocates in //het:hotpath function %s", fd.Name.Name)
				}
			}
		case *ast.CallExpr:
			checkHotCall(pass, fd, n, prealloc)
		}
		return true
	})
}

func checkHotCall(pass *Pass, fd *ast.FuncDecl, call *ast.CallExpr, prealloc map[types.Object]bool) {
	info := pass.TypesInfo
	// Builtins: make(map...) and append without preallocation.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				if t := info.TypeOf(call); t != nil {
					if _, isMap := t.Underlying().(*types.Map); isMap {
						pass.Reportf(call.Pos(), "make(map) allocates in //het:hotpath function %s", fd.Name.Name)
					}
				}
			case "append":
				if obj := appendTarget(info, call); obj == nil || !prealloc[obj] {
					pass.Reportf(call.Pos(), "append without visible preallocation in //het:hotpath function %s; make the slice with explicit capacity in this function, or justify with //het:allow", fd.Name.Name)
				}
			}
			return
		}
	}
	fn := calleeFunc(info, call)
	if fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
		pass.Reportf(call.Pos(), "call to fmt.%s allocates in //het:hotpath function %s; move formatting to the cold path", fn.Name(), fd.Name.Name)
		return // boxing findings on the same call would be noise
	}
	// Interface boxing of scalars at the call boundary.
	tv, ok := info.Types[call.Fun]
	if !ok || tv.IsType() { // conversion, not a call
		return
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // s... passes the slice through, no boxing
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if !types.IsInterface(pt) {
			continue
		}
		at := info.TypeOf(arg)
		if at == nil || types.IsInterface(at) {
			continue
		}
		if b, ok := at.Underlying().(*types.Basic); ok && b.Info()&types.IsUntyped == 0 {
			pass.Reportf(arg.Pos(), "passing %s to interface parameter boxes the value in //het:hotpath function %s", at, fd.Name.Name)
		}
	}
}

// preallocated collects local slice variables created via the 3-argument
// make (explicit capacity) anywhere in the function: appends to those are
// assumed amortized-free and allowed on hot paths.
func preallocated(info *types.Info, body *ast.BlockStmt) map[types.Object]bool {
	out := map[types.Object]bool{}
	record := func(lhs ast.Expr, rhs ast.Expr) {
		id, ok := ast.Unparen(lhs).(*ast.Ident)
		if !ok {
			return
		}
		call, ok := ast.Unparen(rhs).(*ast.CallExpr)
		if !ok || len(call.Args) != 3 {
			return
		}
		fid, ok := ast.Unparen(call.Fun).(*ast.Ident)
		if !ok {
			return
		}
		if b, ok := info.Uses[fid].(*types.Builtin); !ok || b.Name() != "make" {
			return
		}
		if obj := info.Defs[id]; obj != nil {
			out[obj] = true
		} else if obj := info.Uses[id]; obj != nil {
			out[obj] = true
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) == len(n.Rhs) {
				for i := range n.Lhs {
					record(n.Lhs[i], n.Rhs[i])
				}
			}
		case *ast.ValueSpec:
			if len(n.Names) == len(n.Values) {
				for i := range n.Names {
					record(n.Names[i], n.Values[i])
				}
			}
		}
		return true
	})
	return out
}
