package analysis

import (
	"path/filepath"
	"testing"
)

// fixture runs one analyzer over a testdata fixture package and reports
// every mismatch between produced diagnostics and // want expectations.
func fixture(t *testing.T, a *Analyzer, elems ...string) {
	t.Helper()
	dir := filepath.Join(append([]string{"testdata", "src"}, elems...)...)
	for _, err := range RunFixture(dir, a) {
		t.Error(err)
	}
}

func TestMapOrderFixture(t *testing.T) {
	fixture(t, MapOrder, "maporder")
}

func TestHotPathFixture(t *testing.T) {
	fixture(t, HotPath, "hotpath")
}

// programFixture is the whole-program analogue of fixture.
func programFixture(t *testing.T, a *ProgramAnalyzer, elems ...string) {
	t.Helper()
	dir := filepath.Join(append([]string{"testdata", "src"}, elems...)...)
	for _, err := range RunProgramFixture(dir, a) {
		t.Error(err)
	}
}

func TestNoDetermFixture(t *testing.T) {
	fixture(t, NoDeterm, "nodeterm", "internal", "core")
}

func TestNoDetermOutOfScope(t *testing.T) {
	fixture(t, NoDeterm, "nodeterm", "outofscope")
}

func TestNoDetermStatsFixture(t *testing.T) {
	fixture(t, NoDeterm, "nodeterm", "internal", "stats")
}

func TestNoDetermFleetFixture(t *testing.T) {
	fixture(t, NoDeterm, "nodeterm", "internal", "fleet")
}

func TestHotPathPropFixture(t *testing.T) {
	programFixture(t, HotPathProp, "hotpathprop")
}

func TestAllocFreeFixture(t *testing.T) {
	programFixture(t, AllocFree, "allocfree")
}

func TestLockOrderFixture(t *testing.T) {
	programFixture(t, LockOrder, "lockorder")
}

func TestAtomicFieldFixture(t *testing.T) {
	fixture(t, AtomicField, "atomicfield")
}

func TestFloatOrderFixture(t *testing.T) {
	fixture(t, FloatOrder, "floatorder", "internal", "lsq")
}

// TestSuiteOverOwnModule runs the full suite over this repository: the tree
// must be clean. This is the same check `make lint` enforces via go vet, kept
// as a plain test so `go test ./...` (tier 1) already guards the invariants.
func TestSuiteOverOwnModule(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	pkgs, err := Load("../..", []string{"./..."})
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if len(pkgs) < 20 {
		t.Fatalf("expected to load the whole module, got %d packages", len(pkgs))
	}
	for _, p := range pkgs {
		diags, err := RunPackage(p.Fset, p.Files, p.Pkg, p.Info, Analyzers())
		if err != nil {
			t.Fatalf("%s: %v", p.Path, err)
		}
		for _, d := range diags {
			t.Errorf("%s: [%s] %s", p.Fset.Position(d.Pos), d.Analyzer, d.Message)
		}
	}
	// The whole-program pass sees the full cross-package call graph here —
	// this is the most complete coverage the suite gets (the vet protocol
	// only ever hands it one package at a time).
	diags, err := RunProgram(pkgs, ProgramAnalyzers())
	if err != nil {
		t.Fatalf("program analyzers: %v", err)
	}
	for _, d := range diags {
		t.Errorf("%s: [%s] %s", pkgs[0].Fset.Position(d.Pos), d.Analyzer, d.Message)
	}
}

func TestAnalyzerNamesStable(t *testing.T) {
	want := []string{"maporder", "hotpath", "nodeterm", "floatorder", "atomicfield"}
	got := Analyzers()
	if len(got) != len(want) {
		t.Fatalf("got %d analyzers, want %d", len(got), len(want))
	}
	for i, a := range got {
		if a.Name != want[i] {
			t.Errorf("analyzer %d: name %q, want %q", i, a.Name, want[i])
		}
		if a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %q: missing Doc or Run", a.Name)
		}
	}
	wantProg := []string{"hotpathprop", "allocfree", "lockorder"}
	gotProg := ProgramAnalyzers()
	if len(gotProg) != len(wantProg) {
		t.Fatalf("got %d program analyzers, want %d", len(gotProg), len(wantProg))
	}
	for i, a := range gotProg {
		if a.Name != wantProg[i] {
			t.Errorf("program analyzer %d: name %q, want %q", i, a.Name, wantProg[i])
		}
		if a.Doc == "" || a.Run == nil {
			t.Errorf("program analyzer %q: missing Doc or Run", a.Name)
		}
	}
}
