package analysis

import (
	"path/filepath"
	"testing"
)

// fixture runs one analyzer over a testdata fixture package and reports
// every mismatch between produced diagnostics and // want expectations.
func fixture(t *testing.T, a *Analyzer, elems ...string) {
	t.Helper()
	dir := filepath.Join(append([]string{"testdata", "src"}, elems...)...)
	for _, err := range RunFixture(dir, a) {
		t.Error(err)
	}
}

func TestMapOrderFixture(t *testing.T) {
	fixture(t, MapOrder, "maporder")
}

func TestHotPathFixture(t *testing.T) {
	fixture(t, HotPath, "hotpath")
}

func TestNoDetermFixture(t *testing.T) {
	fixture(t, NoDeterm, "nodeterm", "internal", "core")
}

func TestNoDetermOutOfScope(t *testing.T) {
	fixture(t, NoDeterm, "nodeterm", "outofscope")
}

func TestFloatOrderFixture(t *testing.T) {
	fixture(t, FloatOrder, "floatorder", "internal", "lsq")
}

// TestSuiteOverOwnModule runs the full suite over this repository: the tree
// must be clean. This is the same check `make lint` enforces via go vet, kept
// as a plain test so `go test ./...` (tier 1) already guards the invariants.
func TestSuiteOverOwnModule(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	pkgs, err := Load("../..", []string{"./..."})
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if len(pkgs) < 20 {
		t.Fatalf("expected to load the whole module, got %d packages", len(pkgs))
	}
	for _, p := range pkgs {
		diags, err := RunPackage(p.Fset, p.Files, p.Pkg, p.Info, Analyzers())
		if err != nil {
			t.Fatalf("%s: %v", p.Path, err)
		}
		for _, d := range diags {
			t.Errorf("%s: [%s] %s", p.Fset.Position(d.Pos), d.Analyzer, d.Message)
		}
	}
}

func TestAnalyzerNamesStable(t *testing.T) {
	want := []string{"maporder", "hotpath", "nodeterm", "floatorder"}
	got := Analyzers()
	if len(got) != len(want) {
		t.Fatalf("got %d analyzers, want %d", len(got), len(want))
	}
	for i, a := range got {
		if a.Name != want[i] {
			t.Errorf("analyzer %d: name %q, want %q", i, a.Name, want[i])
		}
		if a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %q: missing Doc or Run", a.Name)
		}
	}
}
