package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// DeterministicPackages scopes NoDeterm: the simulation and numerics core,
// where every result must be a pure function of explicit inputs and seeds.
// Matching is by path suffix so the fixture packages under testdata can
// exercise the analyzer without carrying the module prefix.
var DeterministicPackages = []string{
	"internal/core",
	"internal/linalg",
	"internal/lsq",
	"internal/vmpi",
	"internal/des",
	// The workload generator and replay summarizer must be byte-stable so
	// committed traces and golden summaries can gate CI; wall time only
	// enters replay through the injected Clock (cmd/hetload owns the real
	// one).
	"internal/workload",
	// Summary statistics feed golden files and refit decisions; reservoir
	// sampling already threads explicit seeds (rand.New(rand.NewSource)),
	// and this scope keeps it that way.
	"internal/stats",
	// The fleet router's scatter-gather merge must rank shard results
	// identically on every run; durations for timeouts are fine
	// (time.Duration, NewTicker), wall-clock reads are not.
	"internal/fleet",
}

// NoDeterm forbids ambient entropy — wall-clock reads and unseeded global
// randomness — inside the deterministic core packages. Virtual time comes
// from the simulation clocks, and every random stream flows from an explicit
// seed (rand.New(rand.NewSource(seed))), so reruns, refits and the committed
// figures are bit-reproducible. time.Now for profiling, or a global
// rand.Float64 for jitter, silently breaks that contract without failing any
// test until outputs are compared across runs.
var NoDeterm = &Analyzer{
	Name: "nodeterm",
	Doc: `forbid wall-clock and unseeded randomness in deterministic packages

Inside internal/{core,linalg,lsq,vmpi,des,workload,stats,fleet},
time.Now/Since/Until, the global math/rand and math/rand/v2 top-level
generators, and crypto/rand are all banned: entropy must flow from explicit
seeds, time from virtual or injected clocks.`,
	Run: runNoDeterm,
}

func runNoDeterm(pass *Pass) error {
	if !pathMatches(pass.Pkg.Path(), DeterministicPackages) {
		return nil
	}
	for _, f := range pass.Files {
		if isTestFile(pass.Fset, f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil {
				return true
			}
			switch fn.Pkg().Path() {
			case "time":
				switch fn.Name() {
				case "Now", "Since", "Until":
					pass.Reportf(sel.Pos(), "time.%s reads the wall clock in deterministic package %s; derive time from the simulation clock or pass it in", fn.Name(), pass.Pkg.Path())
				}
			case "math/rand", "math/rand/v2":
				// Top-level functions draw from the shared global generator;
				// methods on an explicitly seeded *rand.Rand are fine, as are
				// the New* constructors that build one from a seed.
				sig, ok := fn.Type().(*types.Signature)
				if ok && sig.Recv() == nil && !strings.HasPrefix(fn.Name(), "New") {
					pass.Reportf(sel.Pos(), "%s.%s uses the global random source in deterministic package %s; use rand.New(rand.NewSource(seed)) and thread the seed explicitly", fn.Pkg().Path(), fn.Name(), pass.Pkg.Path())
				}
			case "crypto/rand":
				pass.Reportf(sel.Pos(), "crypto/rand is inherently nondeterministic; package %s must draw randomness from explicit seeds", pass.Pkg.Path())
			}
			return true
		})
	}
	return nil
}
