package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

// RunFixture loads the fixture package at testdata/src/<name>, runs the
// analyzers over it, and checks the diagnostics against the fixture's
// expectations, in the style of x/tools' analysistest: a comment
//
//	code under test // want `regexp`
//
// demands exactly one diagnostic on that line whose message matches the
// (backquoted) regular expression; lines without a want comment must stay
// clean. Errors describe every mismatch. The fixture's package path is its
// directory name, so scoped analyzers match fixtures via suffix patterns.
func RunFixture(dir string, analyzers ...*Analyzer) []error {
	fset := token.NewFileSet()
	files, names, errs := parseFixture(fset, dir)
	if errs != nil {
		return errs
	}
	pkg, info, err := TypeCheck(fset, fixturePath(dir), files, importer.ForCompiler(fset, "source", nil))
	if err != nil {
		return []error{fmt.Errorf("typecheck fixture %s: %v", dir, err)}
	}
	diags, err := RunPackage(fset, files, pkg, info, analyzers)
	if err != nil {
		return []error{err}
	}
	return matchWants(fset, diags, names)
}

// RunProgramFixture loads the fixture package at testdata/src/<name> as a
// one-package program, runs the whole-program analyzers over it, and checks
// the diagnostics against // want expectations, exactly like RunFixture.
// Interprocedural fixtures keep all their functions in one package: the
// propagation machinery is identical across package boundaries (the call
// graph keys functions by package-qualified name), so single-package
// fixtures exercise every rule.
func RunProgramFixture(dir string, analyzers ...*ProgramAnalyzer) []error {
	fset := token.NewFileSet()
	files, names, errs := parseFixture(fset, dir)
	if errs != nil {
		return errs
	}
	pkg, info, err := TypeCheck(fset, fixturePath(dir), files, importer.ForCompiler(fset, "source", nil))
	if err != nil {
		return []error{fmt.Errorf("typecheck fixture %s: %v", dir, err)}
	}
	p := &Package{Path: fixturePath(dir), Fset: fset, Files: files, Pkg: pkg, Info: info}
	diags, err := RunProgram([]*Package{p}, analyzers)
	if err != nil {
		return []error{err}
	}
	return matchWants(fset, diags, names)
}

// parseFixture parses every .go file directly under dir into fset. The
// error slice is non-nil only on failure.
func parseFixture(fset *token.FileSet, dir string) ([]*ast.File, []string, []error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, []error{err}
	}
	var files []*ast.File
	var names []string
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return nil, nil, []error{err}
		}
		files = append(files, f)
		names = append(names, path)
	}
	if len(files) == 0 {
		return nil, nil, []error{fmt.Errorf("no fixture files in %s", dir)}
	}
	return files, names, nil
}

// matchWants checks diagnostics against the fixtures' // want expectations
// line by line and returns every mismatch.
func matchWants(fset *token.FileSet, diags []Diagnostic, names []string) []error {
	wants, errs := parseWants(names)
	type key struct {
		file string
		line int
	}
	byLine := map[key][]Diagnostic{}
	for _, d := range diags {
		p := fset.Position(d.Pos)
		k := key{p.Filename, p.Line}
		byLine[k] = append(byLine[k], d)
	}
	for _, w := range wants {
		k := key{w.file, w.line}
		got := byLine[k]
		matched := false
		for i, d := range got {
			if w.re.MatchString(d.Message) {
				byLine[k] = append(got[:i:i], got[i+1:]...)
				matched = true
				break
			}
		}
		if !matched {
			errs = append(errs, fmt.Errorf("%s:%d: no diagnostic matching %q (got %s)", w.file, w.line, w.re, messagesAt(got)))
		}
	}
	var keys []key
	for k, ds := range byLine {
		if len(ds) > 0 {
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].file != keys[j].file {
			return keys[i].file < keys[j].file
		}
		return keys[i].line < keys[j].line
	})
	for _, k := range keys {
		for _, d := range byLine[k] {
			errs = append(errs, fmt.Errorf("%s:%d: unexpected diagnostic [%s] %s", k.file, k.line, d.Analyzer, d.Message))
		}
	}
	return errs
}

// fixturePath derives the fixture's package path from its directory: the
// slash-separated tail after testdata/src, so a fixture living at
// testdata/src/nodeterm/internal/core type-checks as package path
// "nodeterm/internal/core" and is in scope for suffix-matched analyzers.
func fixturePath(dir string) string {
	slashed := filepath.ToSlash(dir)
	if _, rest, ok := strings.Cut(slashed, "testdata/src/"); ok {
		return rest
	}
	return filepath.Base(dir)
}

type want struct {
	file string
	line int
	re   *regexp.Regexp
}

// wantRE matches `// want` followed by a backquoted regular expression.
var wantRE = regexp.MustCompile("// want `([^`]*)`")

func parseWants(paths []string) ([]want, []error) {
	var wants []want
	var errs []error
	for _, path := range paths {
		data, err := os.ReadFile(path)
		if err != nil {
			errs = append(errs, err)
			continue
		}
		for i, line := range strings.Split(string(data), "\n") {
			for _, m := range wantRE.FindAllStringSubmatch(line, -1) {
				re, err := regexp.Compile(m[1])
				if err != nil {
					errs = append(errs, fmt.Errorf("%s:%d: bad want pattern: %v", path, i+1, err))
					continue
				}
				wants = append(wants, want{file: path, line: i + 1, re: re})
			}
		}
	}
	return wants, errs
}

func messagesAt(ds []Diagnostic) string {
	if len(ds) == 0 {
		return "no diagnostics"
	}
	var parts []string
	for _, d := range ds {
		parts = append(parts, fmt.Sprintf("[%s] %s", d.Analyzer, d.Message))
	}
	return strings.Join(parts, "; ")
}
