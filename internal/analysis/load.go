package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"os/exec"
	"path/filepath"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
}

// Load resolves package patterns with `go list` and parses + type-checks
// every match from source. Imports (standard library and module-local alike)
// are resolved through the compiler's source importer, so the loader works
// offline with no dependency on export data or golang.org/x/tools.
//
// This is the standalone driver path (hetlint ./...). Under `go vet
// -vettool` the build system supplies per-unit configs with precompiled
// export data instead, which cmd/hetlint consumes directly.
func Load(dir string, patterns []string) ([]*Package, error) {
	metas, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "source", nil)
	var pkgs []*Package
	for _, m := range metas {
		if len(m.GoFiles) == 0 {
			continue
		}
		var files []*ast.File
		for _, name := range m.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(m.Dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, err
			}
			files = append(files, f)
		}
		pkg, info, err := TypeCheck(fset, m.ImportPath, files, imp)
		if err != nil {
			return nil, fmt.Errorf("typecheck %s: %v", m.ImportPath, err)
		}
		pkgs = append(pkgs, &Package{Path: m.ImportPath, Fset: fset, Files: files, Pkg: pkg, Info: info})
	}
	return pkgs, nil
}

// TypeCheck runs the type checker over one package's parsed files with a
// fully populated types.Info (analyzers rely on Uses/Defs/Types/Scopes).
func TypeCheck(fset *token.FileSet, path string, files []*ast.File, imp types.Importer) (*types.Package, *types.Info, error) {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := &types.Config{Importer: imp}
	pkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, nil, err
	}
	return pkg, info, nil
}

// listedPackage is the subset of `go list -json` output the loader needs.
type listedPackage struct {
	ImportPath string
	Dir        string
	GoFiles    []string
}

func goList(dir string, patterns []string) ([]listedPackage, error) {
	args := append([]string{"list", "-json=ImportPath,Dir,GoFiles"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	cmd.Stderr = os.Stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %v: %v", patterns, err)
	}
	dec := json.NewDecoder(bytes.NewReader(out))
	var metas []listedPackage
	for dec.More() {
		var m listedPackage
		if err := dec.Decode(&m); err != nil {
			return nil, fmt.Errorf("go list output: %v", err)
		}
		metas = append(metas, m)
	}
	return metas, nil
}
