package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// AllocFree statically certifies that //het:allocfree functions — the kernel
// paths the runtime 0-alloc benchmark gate tracks dynamically (the
// SearchReuse walk, tailRun/leafRun, Evaluator.Tau/classTau, the vmpi
// envelope path, QuantileReservoir.Add) — contain no allocation site along
// any statically reachable path. Where the hotpath rules forbid a curated
// list of expensive patterns, allocfree is stricter: every construct the
// compiler may lower to a heap allocation is banned.
//
// Flagged in the annotated function and everything reachable from it:
//
//   - make and new (any type: slices, maps, channels, pointers);
//   - composite literals of slice or map type, and address-taken composite
//     literals (&T{} escapes); plain struct and array values are fine;
//   - append, unless the call sits under an `if len(x) < cap(x)` guard for
//     the same slice — the escape-lite whitelist proving the buffer is
//     reused, never grown (QuantileReservoir.Add's reservoir shape);
//   - function literals (closure allocation);
//   - calls into package fmt, and scalar-to-interface boxing at call
//     boundaries (panic arguments excepted: panics are the cold path);
//   - non-constant string concatenation and string<->[]byte/[]rune
//     conversions;
//   - map index assignment (may trigger bucket growth).
//
// Calls whose bodies lie outside the loaded program (standard library,
// excluding fmt) are not traversed — sync.Pool.Get, math.*, and atomic
// operations are the intended uses, and DESIGN.md §16 records the caveat.
// Edges into panic-only helpers are cold and skipped. Deliberate exceptions
// carry //het:allow allocfree -- <reason>.
var AllocFree = &ProgramAnalyzer{
	Name: "allocfree",
	Doc: `certify //het:allocfree functions allocate nothing, transitively

Functions annotated //het:allocfree must contain no allocation site — no
make/new, no slice/map/escaping literals, no growing append, no closures,
no fmt, no boxing, no string building — along any statically reachable call
path. The escape-lite whitelist admits appends guarded by len(x) < cap(x)
(reused buffers). Suppress with //het:allow allocfree -- <reason>.`,
	Run: runAllocFree,
}

func runAllocFree(pass *ProgramPass) error {
	g := buildCallGraph(pass.Pkgs)
	roots := g.annotatedRoots("allocfree")
	for _, r := range roots {
		c := &allocChecker{
			info:    r.pkg.Info,
			where:   "//het:allocfree function " + r.displayName(),
			reportf: pass.Reportf,
		}
		c.check(r.decl.Body)
	}
	for _, r := range g.reachableFrom(roots) {
		c := &allocChecker{
			info: r.node.pkg.Info,
			where: "function " + r.node.displayName() +
				", reachable from //het:allocfree root " + r.root.qualifiedFrom(r.node.pkg),
			reportf: pass.Reportf,
		}
		c.check(r.node.decl.Body)
	}
	return nil
}

// allocChecker applies the allocfree rules to one function body.
type allocChecker struct {
	info    *types.Info
	where   string
	reportf func(pos token.Pos, format string, args ...any)
}

func (c *allocChecker) check(body *ast.BlockStmt) {
	guarded := guardedAppends(c.info, body)
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			c.reportf(n.Pos(), "closure allocation in %s; hoist the function or pass state explicitly", c.where)
			return true // the closure body still runs here: keep checking it
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if lit, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
					if t := c.info.TypeOf(lit); t != nil {
						switch t.Underlying().(type) {
						case *types.Struct, *types.Array:
							c.reportf(n.Pos(), "address-taken composite literal escapes to the heap in %s", c.where)
						}
					}
				}
			}
		case *ast.CompositeLit:
			if t := c.info.TypeOf(n); t != nil {
				switch t.Underlying().(type) {
				case *types.Slice, *types.Map:
					c.reportf(n.Pos(), "composite literal allocates in %s", c.where)
				}
			}
		case *ast.BinaryExpr:
			c.checkConcat(n)
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if ix, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok {
					if t := c.info.TypeOf(ix.X); t != nil {
						if _, isMap := t.Underlying().(*types.Map); isMap {
							c.reportf(lhs.Pos(), "map assignment may allocate a bucket in %s", c.where)
						}
					}
				}
			}
		case *ast.CallExpr:
			c.checkCall(n, guarded)
		}
		return true
	})
}

func (c *allocChecker) checkCall(call *ast.CallExpr, guarded map[*ast.CallExpr]bool) {
	info := c.info
	// Conversions: string <-> []byte/[]rune copy their contents.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		dst, src := tv.Type, info.TypeOf(call.Args[0])
		if stringByteConversion(dst, src) {
			c.reportf(call.Pos(), "conversion between string and byte/rune slice copies its contents in %s", c.where)
		}
		return
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				c.reportf(call.Pos(), "make allocates in %s", c.where)
			case "new":
				c.reportf(call.Pos(), "new allocates in %s", c.where)
			case "append":
				if !guarded[call] {
					c.reportf(call.Pos(), "append may grow its backing array in %s; guard with `if len(x) < cap(x)` to prove the buffer is reused, or justify with //het:allow", c.where)
				}
			}
			return // panic arguments are cold-path: no boxing check on builtins
		}
	}
	if fn := calleeFunc(info, call); fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
		c.reportf(call.Pos(), "call to fmt.%s allocates in %s; move formatting to the cold path", fn.Name(), c.where)
		return
	}
	reportBoxing(info, call, c.where, c.reportf)
}

// checkConcat flags non-constant string concatenation (allocates the result).
func (c *allocChecker) checkConcat(n *ast.BinaryExpr) {
	if n.Op != token.ADD {
		return
	}
	tv, ok := c.info.Types[n]
	if !ok || tv.Value != nil { // constant-folded at compile time
		return
	}
	if b, ok := tv.Type.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
		c.reportf(n.Pos(), "string concatenation allocates in %s", c.where)
	}
}

// stringByteConversion reports whether a conversion between dst and src
// crosses the string/[]byte (or string/[]rune) boundary, which copies.
func stringByteConversion(dst, src types.Type) bool {
	return (isStringType(dst) && isByteOrRuneSlice(src)) ||
		(isByteOrRuneSlice(dst) && isStringType(src))
}

func isStringType(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	if t == nil {
		return false
	}
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	e, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (e.Kind() == types.Byte || e.Kind() == types.Rune ||
		e.Kind() == types.Uint8 || e.Kind() == types.Int32)
}

// guardedAppends implements the escape-lite whitelist: an append whose call
// sits inside the then-branch of `if len(x) < cap(x)` (for syntactically the
// same x as the append target) provably reuses existing capacity and never
// grows. This is the reservoir-sampling shape (QuantileReservoir.Add).
func guardedAppends(info *types.Info, body *ast.BlockStmt) map[*ast.CallExpr]bool {
	out := map[*ast.CallExpr]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		ifs, ok := n.(*ast.IfStmt)
		if !ok {
			return true
		}
		target := lenCapGuard(info, ifs.Cond)
		if target == "" {
			return true
		}
		ast.Inspect(ifs.Body, func(m ast.Node) bool {
			call, ok := m.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			id, ok := ast.Unparen(call.Fun).(*ast.Ident)
			if !ok {
				return true
			}
			if b, ok := info.Uses[id].(*types.Builtin); !ok || b.Name() != "append" {
				return true
			}
			if types.ExprString(ast.Unparen(call.Args[0])) == target {
				out[call] = true
			}
			return true
		})
		return true
	})
	return out
}

// lenCapGuard matches the condition `len(x) < cap(x)` and returns x's
// expression string, or "" when the condition has another shape.
func lenCapGuard(info *types.Info, cond ast.Expr) string {
	be, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok || be.Op != token.LSS {
		return ""
	}
	lenArg := builtinArg(info, be.X, "len")
	capArg := builtinArg(info, be.Y, "cap")
	if lenArg == nil || capArg == nil {
		return ""
	}
	ls, cs := types.ExprString(lenArg), types.ExprString(capArg)
	if ls != cs {
		return ""
	}
	return ls
}

// builtinArg returns the single argument of a call to the named builtin,
// or nil when expr is anything else.
func builtinArg(info *types.Info, expr ast.Expr, name string) ast.Expr {
	call, ok := ast.Unparen(expr).(*ast.CallExpr)
	if !ok || len(call.Args) != 1 {
		return nil
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return nil
	}
	if b, ok := info.Uses[id].(*types.Builtin); !ok || b.Name() != name {
		return nil
	}
	return ast.Unparen(call.Args[0])
}
