package experiments

import (
	"fmt"
	"sort"
	"strings"

	"hetmodel/internal/cluster"
	"hetmodel/internal/measure"
	"hetmodel/internal/stats"
)

// Table1 renders the execution environment (paper Table 1) from the
// cluster's machine models.
func (c *Context) Table1() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 1: HPL execution environment (simulated)\n")
	nodeID := 1
	for _, class := range c.Cluster.Classes {
		for _, node := range class.Nodes {
			fmt.Fprintf(&b, "  Node %d: %s x%d, memory %.0f MB, gemm peak %.2f Gflop/s\n",
				nodeID, node.Type.Name, node.CPUs, node.MemoryBytes/(1<<20), node.Type.GemmPeak/1e9)
			nodeID++
		}
	}
	fmt.Fprintf(&b, "  Network: %s (%.1f MB/s), library %s\n",
		c.Cluster.Fabric.Network.Name,
		c.Cluster.Fabric.Network.Link.Bandwidth/(1<<20),
		c.Cluster.Fabric.Library.Name)
	return b.String()
}

// GridTable describes a campaign's parameter grid (paper Tables 2, 5, 8).
type GridTable struct {
	Campaign     string
	Ns           []int
	GroupConfigs map[string]int
	TotalRuns    int
	EvaluationNs []int
	EvalConfigs  int
}

// GridFor summarizes the construction grid of a campaign (Tables 2/5/8).
func GridFor(camp measure.Campaign) (*GridTable, error) {
	g := &GridTable{
		Campaign:     camp.Name,
		Ns:           camp.Ns,
		GroupConfigs: map[string]int{},
		EvaluationNs: measure.EvaluationNs(camp.Name),
		EvalConfigs:  len(EvalConfigs()),
	}
	perN := 0
	for _, group := range camp.Groups {
		cfgs, err := group.Space.Enumerate()
		if err != nil {
			return nil, err
		}
		g.GroupConfigs[group.Label] = len(cfgs)
		perN += len(cfgs)
	}
	g.TotalRuns = perN * len(camp.Ns)
	return g, nil
}

// Render prints the grid table.
func (g *GridTable) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Campaign %s: sizes %v\n", g.Campaign, g.Ns)
	labels := make([]string, 0, len(g.GroupConfigs))
	for label := range g.GroupConfigs {
		labels = append(labels, label)
	}
	sort.Strings(labels)
	for _, label := range labels {
		fmt.Fprintf(&b, "  %-10s %d configurations\n", label, g.GroupConfigs[label])
	}
	fmt.Fprintf(&b, "  total measurement runs: %d\n", g.TotalRuns)
	fmt.Fprintf(&b, "  evaluation: sizes %v over %d configurations\n", g.EvaluationNs, g.EvalConfigs)
	return b.String()
}

// CostRow is one line of a measurement-cost table (paper Tables 3 and 6).
type CostRow struct {
	N       int
	Seconds map[string]float64
}

// CostTable is the per-size measurement cost of a campaign.
type CostTable struct {
	Campaign string
	Labels   []string
	Rows     []CostRow
	Total    float64
}

// CostTableFor runs the campaign and produces its cost table.
func (c *Context) CostTableFor(camp measure.Campaign) (*CostTable, error) {
	if camp.Workers == 0 {
		camp.Workers = c.Workers
	}
	res, err := measure.Run(c.Cluster, camp, c.Params)
	if err != nil {
		return nil, err
	}
	return costTableFromResult(res), nil
}

func costTableFromResult(res *measure.Result) *CostTable {
	t := &CostTable{Campaign: res.Campaign.Name, Total: res.TotalCost()}
	for _, g := range res.Campaign.Groups {
		t.Labels = append(t.Labels, g.Label)
	}
	for _, n := range res.Campaign.Ns {
		row := CostRow{N: n, Seconds: map[string]float64{}}
		for _, label := range t.Labels {
			row.Seconds[label] = res.Cost[label][n]
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// Render prints the cost table in the paper's Table 3/6 layout.
func (t *CostTable) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Measurement cost, campaign %s [seconds]\n", t.Campaign)
	fmt.Fprintf(&b, "  %8s", "N")
	for _, label := range t.Labels {
		fmt.Fprintf(&b, " %12s", label)
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		fmt.Fprintf(&b, "  %8d", row.N)
		for _, label := range t.Labels {
			fmt.Fprintf(&b, " %12.1f", row.Seconds[label])
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "  %8s %12.1f (total, ≈ %.1f hours)\n", "Total", t.Total, t.Total/3600)
	return b.String()
}

// EvalRow is one line of an estimated-vs-actual optimum table
// (paper Tables 4, 7, 9).
type EvalRow struct {
	N int
	// EstConfig is the configuration the model estimates to be optimal;
	// Tau its estimated time (τ), TauHat its measured time (τ̂).
	EstConfig cluster.Configuration
	Tau       float64
	TauHat    float64
	// ActConfig is the measured optimum with time THat (T̂).
	ActConfig cluster.Configuration
	THat      float64
	// ErrEst is (τ − T̂)/T̂; ErrExec is (τ̂ − T̂)/T̂, the execution-time
	// penalty of trusting the model.
	ErrEst, ErrExec float64
}

// EvalTable is the full estimated-vs-actual comparison for one model.
type EvalTable struct {
	Model string
	Rows  []EvalRow
}

// EvaluationTable reproduces the paper's Tables 4/7/9 for a built model:
// estimated optimum vs measured optimum over the 62 evaluation
// configurations at the campaign's evaluation sizes.
func (c *Context) EvaluationTable(bm *BuiltModel) (*EvalTable, error) {
	candidates := EvalConfigs()
	t := &EvalTable{Model: bm.Campaign.Name}
	for _, n := range measure.EvaluationNs(bm.Campaign.Name) {
		est, tau, err := bm.EvaluatorAt(n).Optimize(candidates, c.Workers)
		if err != nil {
			return nil, fmt.Errorf("experiments: optimize %s N=%d: %w", bm.Campaign.Name, n, err)
		}
		estRun, err := c.Run(est, n)
		if err != nil {
			return nil, err
		}
		act, tHat, err := c.ActualBest(candidates, n)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, EvalRow{
			N:         n,
			EstConfig: est, Tau: tau, TauHat: estRun.WallTime,
			ActConfig: act, THat: tHat,
			ErrEst:  stats.RelError(tau, tHat),
			ErrExec: stats.RelError(estRun.WallTime, tHat),
		})
	}
	return t, nil
}

// Render prints the evaluation table in the paper's layout.
func (t *EvalTable) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Estimated vs actual best configurations (%s model)\n", t.Model)
	fmt.Fprintf(&b, "  %6s %14s %8s %8s %14s %8s %8s %8s\n",
		"N", "est(P1,M1,P2,M2)", "tau", "tauHat", "act(P1,M1,P2,M2)", "That", "errEst", "errExec")
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "  %6d %14s %8.1f %8.1f %14s %8.1f %+8.3f %+8.3f\n",
			r.N, r.EstConfig, r.Tau, r.TauHat, r.ActConfig, r.THat, r.ErrEst, r.ErrExec)
	}
	return b.String()
}

// MaxExecError returns the largest execution-time penalty in the table.
func (t *EvalTable) MaxExecError() float64 {
	max := 0.0
	for _, r := range t.Rows {
		if r.ErrExec > max {
			max = r.ErrExec
		}
	}
	return max
}
