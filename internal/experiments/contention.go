package experiments

import (
	"fmt"
	"strings"

	"hetmodel/internal/des"
)

// ContentionAblation quantifies what the paper's homogeneous-network
// assumption ignores: when several panel transfers cross one shared uplink
// simultaneously (e.g., a node fanning a panel out to k peers at once), the
// transfers share bandwidth instead of proceeding independently.
type ContentionAblation struct {
	// PanelBytes is the transfer size examined.
	PanelBytes float64
	// Streams is the number of simultaneous transfers.
	Streams int
	// Independent is the finish time under the paper's assumption
	// (each transfer gets the full link).
	Independent float64
	// Shared is the last finish time under max-min fair sharing of one
	// link (simulated with the discrete-event SharedLink).
	Shared float64
}

// Slowdown returns Shared/Independent (>= 1).
func (a *ContentionAblation) Slowdown() float64 {
	if a.Independent <= 0 {
		return 1
	}
	return a.Shared / a.Independent
}

// AblationContention simulates `streams` simultaneous transfers of
// panelBytes each over one link of the context's physical network.
func (c *Context) AblationContention(panelBytes float64, streams int) (*ContentionAblation, error) {
	bw := c.Cluster.Fabric.Network.Link.Bandwidth * c.Cluster.Fabric.Library.BandwidthEfficiency
	link, err := des.NewSharedLink(bw)
	if err != nil {
		return nil, err
	}
	var last float64
	for i := 0; i < streams; i++ {
		if err := link.Start(0, panelBytes, func(finish float64) {
			if finish > last {
				last = finish
			}
		}); err != nil {
			return nil, err
		}
	}
	link.Drain()
	return &ContentionAblation{
		PanelBytes:  panelBytes,
		Streams:     streams,
		Independent: panelBytes / bw,
		Shared:      last,
	}, nil
}

// Render prints the contention ablation.
func (a *ContentionAblation) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation: shared-link contention — %d simultaneous %.0f KiB transfers\n",
		a.Streams, a.PanelBytes/1024)
	fmt.Fprintf(&b, "  independent links (paper assumption): %.3f s each\n", a.Independent)
	fmt.Fprintf(&b, "  one shared link (fair sharing):       %.3f s to drain (%.1fx)\n",
		a.Shared, a.Slowdown())
	return b.String()
}
