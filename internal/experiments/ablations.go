package experiments

import (
	"fmt"
	"strings"

	"hetmodel/internal/cluster"
	"hetmodel/internal/hpl"
	"hetmodel/internal/hpl2d"
	"hetmodel/internal/measure"
	"hetmodel/internal/stats"
	"hetmodel/internal/vmpi"
)

// AdjustmentAblation compares a model's evaluation errors with and without
// the §4.1 correction (the design choice behind paper Figures 6 vs 7).
type AdjustmentAblation struct {
	Model           string
	WithAdjust      []float64 // |errEst| per evaluation size
	WithoutAdjust   []float64
	MeanAbsWith     float64
	MeanAbsWithout  float64
	EvaluationSizes []int
}

// AblationAdjustment runs the evaluation at each size with the adjustment
// enabled and disabled, reporting the absolute estimation errors of the
// estimated optimum.
func (c *Context) AblationAdjustment(bm *BuiltModel) (*AdjustmentAblation, error) {
	out := &AdjustmentAblation{Model: bm.Campaign.Name}
	candidates := EvalConfigs()
	for _, adjusted := range []bool{true, false} {
		models := bm.Models
		saved := models.Adjust
		if !adjusted {
			models.Adjust = nil
		}
		var errs []float64
		for _, n := range measure.EvaluationNs(bm.Campaign.Name) {
			if adjusted {
				out.EvaluationSizes = append(out.EvaluationSizes, n)
			}
			est, tau, err := models.Optimize(candidates, n)
			if err != nil {
				models.Adjust = saved
				return nil, err
			}
			_, tHat, err := c.ActualBest(candidates, n)
			if err != nil {
				models.Adjust = saved
				return nil, err
			}
			_ = est
			e := stats.RelError(tau, tHat)
			if e < 0 {
				e = -e
			}
			errs = append(errs, e)
		}
		models.Adjust = saved
		mean, err := stats.Mean(errs)
		if err != nil {
			return nil, err
		}
		if adjusted {
			out.WithAdjust, out.MeanAbsWith = errs, mean
		} else {
			out.WithoutAdjust, out.MeanAbsWithout = errs, mean
		}
	}
	return out, nil
}

// Render prints the ablation.
func (a *AdjustmentAblation) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation: §4.1 adjustment (%s model), |tau - That|/That\n", a.Model)
	fmt.Fprintf(&b, "  %8s %12s %12s\n", "N", "adjusted", "raw")
	for i, n := range a.EvaluationSizes {
		fmt.Fprintf(&b, "  %8d %12.3f %12.3f\n", n, a.WithAdjust[i], a.WithoutAdjust[i])
	}
	fmt.Fprintf(&b, "  %8s %12.3f %12.3f\n", "mean", a.MeanAbsWith, a.MeanAbsWithout)
	return b.String()
}

// BcastAblation compares the ring (HPL-like) and binomial panel broadcasts,
// probing the paper's (P−1)·O(N²) communication-order assumption.
type BcastAblation struct {
	N         int
	Config    cluster.Configuration
	RingTime  float64
	BinomTime float64
}

// AblationBcast measures one configuration under both broadcast algorithms.
// It bypasses the memo cache since the parameters differ from the
// context's.
func (c *Context) AblationBcast(cfg cluster.Configuration, n int) (*BcastAblation, error) {
	params := c.Params
	params.N = n
	params.Bcast = vmpi.BcastRing
	rr, err := hpl.Run(c.Cluster, cfg, params)
	if err != nil {
		return nil, err
	}
	params.Bcast = vmpi.BcastBinomial
	rb, err := hpl.Run(c.Cluster, cfg, params)
	if err != nil {
		return nil, err
	}
	return &BcastAblation{N: n, Config: cfg, RingTime: rr.WallTime, BinomTime: rb.WallTime}, nil
}

// GridAblation compares process-grid shapes for one configuration — the
// paper's §3.1 restriction ("we examine only the case of a 1-by-P process
// grid") made quantitative: 2D grids trade smaller panel broadcasts for
// pivot communication on every panel column.
type GridAblation struct {
	N      int
	Config cluster.Configuration
	Shapes [][2]int
	Walls  []float64
}

// AblationGrid measures the configuration on each Pr×Pc shape (Pr·Pc must
// equal the configuration's process count; 1×P uses the production 1D
// implementation).
func (c *Context) AblationGrid(cfg cluster.Configuration, n int, shapes [][2]int) (*GridAblation, error) {
	out := &GridAblation{N: n, Config: cfg, Shapes: shapes}
	for _, shape := range shapes {
		params := c.Params
		params.N = n
		var wall float64
		if shape[0] == 1 {
			r, err := hpl.Run(c.Cluster, cfg, params)
			if err != nil {
				return nil, err
			}
			wall = r.WallTime
		} else {
			r, err := hpl2d.Run(c.Cluster, cfg, hpl2d.Params{Params: params, Pr: shape[0], Pc: shape[1]})
			if err != nil {
				return nil, err
			}
			wall = r.WallTime
		}
		out.Walls = append(out.Walls, wall)
	}
	return out, nil
}

// Render prints the grid-shape sweep.
func (a *GridAblation) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation: process grid at N=%d %s\n", a.N, a.Config)
	for i, s := range a.Shapes {
		fmt.Fprintf(&b, "  %dx%-3d %8.1f s\n", s[0], s[1], a.Walls[i])
	}
	return b.String()
}

// NBAblation sweeps the HPL panel width for one configuration: the knob the
// paper holds fixed but every HPL tuning guide sweeps. Small NB starves the
// update kernel (low per-call efficiency, many broadcasts); large NB bloats
// the serial panel factorization.
type NBAblation struct {
	N      int
	Config cluster.Configuration
	NBs    []int
	Walls  []float64
}

// AblationNB measures the configuration across panel widths.
func (c *Context) AblationNB(cfg cluster.Configuration, n int, nbs []int) (*NBAblation, error) {
	out := &NBAblation{N: n, Config: cfg, NBs: nbs}
	for _, nb := range nbs {
		params := c.Params
		params.N = n
		params.NB = nb
		r, err := hpl.Run(c.Cluster, cfg, params)
		if err != nil {
			return nil, err
		}
		out.Walls = append(out.Walls, r.WallTime)
	}
	return out, nil
}

// Best returns the fastest panel width of the sweep.
func (a *NBAblation) Best() (nb int, wall float64) {
	for i, w := range a.Walls {
		if i == 0 || w < wall {
			nb, wall = a.NBs[i], w
		}
	}
	return nb, wall
}

// Render prints the sweep.
func (a *NBAblation) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation: panel width NB at N=%d %s\n", a.N, a.Config)
	for i, nb := range a.NBs {
		fmt.Fprintf(&b, "  NB=%-4d %8.1f s\n", nb, a.Walls[i])
	}
	best, wall := a.Best()
	fmt.Fprintf(&b, "  best NB=%d (%.1f s)\n", best, wall)
	return b.String()
}

// LookaheadAblation quantifies the paper's "ignore the overlap of
// computation and communication" assumption (§3.1): depth-1 panel lookahead
// overlaps the next panel's factorization and broadcast with the trailing
// update.
type LookaheadAblation struct {
	N       int
	Config  cluster.Configuration
	Plain   float64
	Overlap float64
}

// Gain returns the relative improvement of lookahead.
func (a *LookaheadAblation) Gain() float64 {
	if a.Plain <= 0 {
		return 0
	}
	return (a.Plain - a.Overlap) / a.Plain
}

// AblationLookahead measures one configuration with and without lookahead.
func (c *Context) AblationLookahead(cfg cluster.Configuration, n int) (*LookaheadAblation, error) {
	params := c.Params
	params.N = n
	plain, err := hpl.Run(c.Cluster, cfg, params)
	if err != nil {
		return nil, err
	}
	params.Lookahead = true
	overlap, err := hpl.Run(c.Cluster, cfg, params)
	if err != nil {
		return nil, err
	}
	return &LookaheadAblation{N: n, Config: cfg, Plain: plain.WallTime, Overlap: overlap.WallTime}, nil
}

// Render prints the lookahead ablation.
func (a *LookaheadAblation) Render() string {
	return fmt.Sprintf(
		"Ablation: lookahead at N=%d %s — no overlap %.1fs vs depth-1 overlap %.1fs (%.1f%% gained; the paper's no-overlap assumption costs this much)\n",
		a.N, a.Config, a.Plain, a.Overlap, 100*a.Gain())
}

// OptimizerAblation compares exhaustive and heuristic search
// (the paper's §5 future work).
type OptimizerAblation struct {
	N               int
	ExhaustiveTau   float64
	ExhaustiveEvals int
	HeuristicTau    float64
	HeuristicEvals  int
	SameConfig      bool
}

// AblationOptimizer runs both search strategies on a built model.
func AblationOptimizer(bm *BuiltModel, n int) (*OptimizerAblation, error) {
	candidates := EvalConfigs()
	exBest, exTau, err := bm.Models.Optimize(candidates, n)
	if err != nil {
		return nil, err
	}
	space := cluster.PaperEvaluationSpace()
	heurBest, heurTau, evals, err := bm.Models.OptimizeHeuristic(space, n)
	if err != nil {
		return nil, err
	}
	return &OptimizerAblation{
		N:               n,
		ExhaustiveTau:   exTau,
		ExhaustiveEvals: len(candidates),
		HeuristicTau:    heurTau,
		HeuristicEvals:  evals,
		SameConfig:      exBest.Key() == heurBest.Key(),
	}, nil
}

// Render prints the optimizer ablation.
func (a *OptimizerAblation) Render() string {
	return fmt.Sprintf(
		"Ablation: optimizer at N=%d — exhaustive tau=%.1f (%d evals), heuristic tau=%.1f (%d evals), same pick: %v\n",
		a.N, a.ExhaustiveTau, a.ExhaustiveEvals, a.HeuristicTau, a.HeuristicEvals, a.SameConfig)
}
