package experiments

import (
	"math"
	"testing"

	"hetmodel/internal/cluster"
	"hetmodel/internal/core"
	"hetmodel/internal/hpl"
	"hetmodel/internal/machine"
	"hetmodel/internal/measure"
	"hetmodel/internal/simnet"
)

// threeClassCluster builds a machine beyond the paper's two classes: one
// fast node, two mid dual nodes, three slow dual nodes.
func threeClassCluster(t *testing.T) *cluster.Cluster {
	t.Helper()
	fast := machine.NewAthlon()
	mid := machine.NewPentiumII()
	mid.Name = "Mid-600"
	mid.GemmPeak *= 2
	mid.PanelPeak *= 2
	mid.RowOpPeak *= 1.5
	slow := machine.NewPentiumII()

	mkNodes := func(pe *machine.PEType, cpus, count int, prefix string) []*machine.Node {
		var out []*machine.Node
		for i := 0; i < count; i++ {
			out = append(out, &machine.Node{
				Name: prefix, Type: pe, CPUs: cpus, MemoryBytes: 768 << 20,
			})
		}
		return out
	}
	fabric, err := simnet.NewFabric(simnet.NewMPICH122(), simnet.NewFast100TX())
	if err != nil {
		t.Fatal(err)
	}
	cl, err := cluster.New([]cluster.Class{
		{Name: "fast", Nodes: mkNodes(fast, 1, 1, "fast1")},
		{Name: "mid", Nodes: mkNodes(mid, 2, 2, "mid")},
		{Name: "slow", Nodes: mkNodes(slow, 2, 3, "slow")},
	}, fabric)
	if err != nil {
		t.Fatal(err)
	}
	return cl
}

// TestThreeClassPipeline exercises the whole method on a three-class
// cluster: homogeneous campaigns per class, N-T/P-T fits, composition for
// the class with a single PE, optimization, and verification against
// simulation — the paper's formalism with nothing hard-coded to two
// classes.
func TestThreeClassPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("three-class campaign")
	}
	cl := threeClassCluster(t)
	ns := []int{1024, 2048, 3072, 4096}

	use := func(class, pes, procs int) cluster.Configuration {
		cfg := cluster.Configuration{Use: make([]cluster.ClassUse, 3)}
		cfg.Use[class] = cluster.ClassUse{PEs: pes, Procs: procs}
		return cfg
	}

	var samples []core.Sample
	run := func(cfg cluster.Configuration, n int) *hpl.Result {
		t.Helper()
		r, err := hpl.Run(cl, cfg, hpl.Params{N: n})
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	// Fast class: single PE only (composition target), M = 1..3.
	for _, m := range []int{1, 2, 3} {
		for _, n := range ns {
			samples = append(samples, measure.SamplesFromResult(run(use(0, 1, m), n))...)
		}
	}
	// Mid and slow classes: homogeneous multi-PE grids.
	for class, peList := range map[int][]int{1: {1, 2, 4}, 2: {1, 2, 4, 6}} {
		for _, pes := range peList {
			for _, m := range []int{1, 2, 3} {
				for _, n := range ns {
					samples = append(samples, measure.SamplesFromResult(run(use(class, pes, m), n))...)
				}
			}
		}
	}

	ms, err := core.Build(3, samples)
	if err != nil {
		t.Fatal(err)
	}
	// Mid and slow have their own P-T models; fast is composed from slow.
	if _, ok := ms.PT[core.PTKey{Class: 1, M: 1}]; !ok {
		t.Fatal("mid class has no P-T model")
	}
	if _, ok := ms.PT[core.PTKey{Class: 2, M: 1}]; !ok {
		t.Fatal("slow class has no P-T model")
	}
	scale, err := ms.FitCompositionScale(0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if scale <= 0 || scale >= 1 {
		t.Fatalf("fast/slow composition scale = %v, want in (0,1)", scale)
	}
	if err := ms.ComposeClass(0, 2, scale, 0.85); err != nil {
		t.Fatal(err)
	}

	// Candidate space over all three classes.
	space := cluster.Space{
		PEChoices:   [][]int{{0, 1}, {0, 2, 4}, {0, 3, 6}},
		ProcChoices: [][]int{{1, 2, 3}, {1}, {1}},
	}
	candidates, err := space.Enumerate()
	if err != nil {
		t.Fatal(err)
	}
	const evalN = 6144
	best, tau, err := ms.Optimize(candidates, evalN)
	if err != nil {
		t.Fatal(err)
	}
	if tau <= 0 {
		t.Fatalf("tau = %v", tau)
	}
	bestTime := run(best, evalN).WallTime
	actT := math.Inf(1)
	var actBest cluster.Configuration
	for _, cfg := range candidates {
		w := run(cfg, evalN).WallTime
		if w < actT {
			actT, actBest = w, cfg
		}
	}
	penalty := (bestTime - actT) / actT
	if penalty > 0.15 {
		t.Fatalf("three-class pick %s costs %.1f%% over optimal %s", best, penalty*100, actBest)
	}
}
