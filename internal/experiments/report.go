package experiments

import (
	"fmt"
	"io"

	"hetmodel/internal/cluster"
	"hetmodel/internal/core"
	"hetmodel/internal/measure"
	"hetmodel/internal/simnet"
)

// WriteFullReport regenerates every table and figure of the paper's
// evaluation section and writes them, in paper order, to w. This is the
// entry point of cmd/experiments and the source of EXPERIMENTS.md's
// measured numbers.
func (c *Context) WriteFullReport(w io.Writer) error {
	p := func(format string, args ...any) { fmt.Fprintf(w, format, args...) }

	p("== Reproduction report: Kishimoto & Ichikawa, IPDPS 2004 ==\n\n")
	p("%s\n", c.Table1())

	// Figures 1 and 2: the MPICH version contrast.
	for _, lib := range []*simnet.CommLibrary{simnet.NewMPICH121(), simnet.NewMPICH122()} {
		series, err := Figure1(lib, c.Params)
		if err != nil {
			return err
		}
		p("%s\n", RenderSeries(
			fmt.Sprintf("Figure 1 (%s): single-Athlon multiprocessing", lib.Name),
			"N", "Gflops", series))
		points, err := Figure2(lib)
		if err != nil {
			return err
		}
		p("%s\n", RenderFigure2(lib.Name, points))
	}

	// Figure 3: load imbalance and multiprocessing on the heterogeneous
	// cluster.
	f3a, err := c.Figure3a()
	if err != nil {
		return err
	}
	p("%s\n", RenderSeries("Figure 3(a): load imbalance", "N", "Gflops", f3a))
	f3b, err := c.Figure3b()
	if err != nil {
		return err
	}
	p("%s\n", RenderSeries("Figure 3(b): multiprocessing", "N", "Gflops", f3b))

	// The three campaigns: grid, cost, models, evaluation, correlations.
	campaigns := []measure.Campaign{
		measure.BasicCampaign(),
		measure.NLCampaign(),
		measure.NSCampaign(),
	}
	corrTargets := map[string][]int{
		"Basic": {6400},       // Figures 6, 7
		"NL":    {1600, 6400}, // Figures 8–11
		"NS":    {1600, 6400}, // Figures 12–15
	}
	figNo := map[string]map[int][2]int{
		"Basic": {6400: {6, 7}},
		"NL":    {1600: {8, 10}, 6400: {9, 11}},
		"NS":    {1600: {12, 13}, 6400: {14, 15}},
	}
	for _, camp := range campaigns {
		grid, err := GridFor(camp)
		if err != nil {
			return err
		}
		p("%s\n", grid.Render())

		bm, err := c.BuildModel(camp)
		if err != nil {
			return err
		}
		p("%s model: %d N-T bins, %d P-T bins, composition Ta x%.3f Tc x%.2f\n",
			camp.Name, len(bm.Models.NT), len(bm.Models.PT), bm.TaScale, TcScaleDefault)
		for class := 0; class < bm.Models.Classes; class++ {
			if lt := bm.Models.Adjust[class]; lt != nil {
				p("  adjustment class %d: Tc' = %.3f*Tc %+.3f\n", class, lt.A, lt.B)
			}
		}
		p("\n%s\n", costTableFromResult(bm.Result).Render())

		for _, n := range corrTargets[camp.Name] {
			nums := figNo[camp.Name][n]
			raw, err := c.Correlation(bm, n, false)
			if err != nil {
				return err
			}
			p("%s\n", RenderCorrelation(
				fmt.Sprintf("Figure %d (%s, N=%d, raw estimates)", nums[0], camp.Name, n), raw))
			adj, err := c.Correlation(bm, n, true)
			if err != nil {
				return err
			}
			p("%s\n", RenderCorrelation(
				fmt.Sprintf("Figure %d (%s, N=%d, after adjustment)", nums[1], camp.Name, n), adj))
		}

		table, err := c.EvaluationTable(bm)
		if err != nil {
			return err
		}
		p("%s\n", table.Render())

		abl, err := c.AblationAdjustment(bm)
		if err != nil {
			return err
		}
		p("%s\n", abl.Render())
		if camp.Name == "Basic" {
			opt, err := AblationOptimizer(bm, 6400)
			if err != nil {
				return err
			}
			p("%s", opt.Render())
			bc, err := c.AblationBcast(cluster.Configuration{
				Use: []cluster.ClassUse{{PEs: 1, Procs: 2}, {PEs: 8, Procs: 1}},
			}, 4800)
			if err != nil {
				return err
			}
			p("Ablation: bcast at N=%d %s — ring %.1fs vs binomial %.1fs\n\n",
				bc.N, bc.Config, bc.RingTime, bc.BinomTime)
			nbAbl, err := c.AblationNB(cluster.Configuration{
				Use: []cluster.ClassUse{{PEs: 1, Procs: 1}, {PEs: 8, Procs: 1}},
			}, 3200, []int{16, 32, 64, 128, 256})
			if err != nil {
				return err
			}
			p("%s\n", nbAbl.Render())
			gridAbl, err := c.AblationGrid(cluster.Configuration{
				Use: []cluster.ClassUse{{}, {PEs: 8, Procs: 1}},
			}, 3200, [][2]int{{1, 8}, {2, 4}, {4, 2}, {8, 1}})
			if err != nil {
				return err
			}
			p("%s\n", gridAbl.Render())
			la, err := c.AblationLookahead(cluster.Configuration{
				Use: []cluster.ClassUse{{PEs: 1, Procs: 1}, {PEs: 8, Procs: 1}},
			}, 4800)
			if err != nil {
				return err
			}
			p("%s\n", la.Render())
			cont, err := c.AblationContention(2<<20, 8)
			if err != nil {
				return err
			}
			p("%s\n", cont.Render())
			cv, err := core.CrossValidateNT(bm.Result.Samples)
			if err != nil {
				return err
			}
			p("Cross-validation (Basic): %d bins validatable, worst held-out |Ta err| = %.3f, worst per-bin median = %.3f\n\n",
				len(cv), core.WorstCVError(cv), core.MedianCVError(cv))
		}
	}
	return nil
}
