package experiments

import (
	"sync"
	"testing"

	"hetmodel/internal/cluster"
	"hetmodel/internal/measure"
)

// TestRunConcurrentSingleFlight hammers the memoized cache from many
// goroutines: every caller must get the same *hpl.Result for the same key
// (one shared simulation, not a race of duplicates). Run under -race this
// is also the audit of the Context cache locking.
func TestRunConcurrentSingleFlight(t *testing.T) {
	ctx, err := NewPaperContext()
	if err != nil {
		t.Fatal(err)
	}
	cfg := cluster.Configuration{Use: []cluster.ClassUse{{PEs: 1, Procs: 1}, {}}}
	const callers = 16
	results := make([]any, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r, err := ctx.Run(cfg, 800)
			if err != nil {
				t.Error(err)
				return
			}
			results[i] = r
		}(i)
	}
	wg.Wait()
	for i := 1; i < callers; i++ {
		if results[i] != results[0] {
			t.Fatalf("caller %d got a different result pointer: duplicate simulation", i)
		}
	}
	ctx.mu.Lock()
	entries := len(ctx.cache)
	ctx.mu.Unlock()
	if entries != 1 {
		t.Fatalf("cache holds %d entries, want 1", entries)
	}
}

// TestActualBestWorkersDeterminism asserts the parallel candidate sweep
// returns the identical winner and wall time as the sequential sweep.
func TestActualBestWorkersDeterminism(t *testing.T) {
	candidates := EvalConfigs()[:10]
	seqCtx, err := NewPaperContext()
	if err != nil {
		t.Fatal(err)
	}
	seqCtx.Workers = 1
	seqBest, seqT, err := seqCtx.ActualBest(candidates, 800)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{4, 0} {
		parCtx, err := NewPaperContext()
		if err != nil {
			t.Fatal(err)
		}
		parCtx.Workers = workers
		best, tHat, err := parCtx.ActualBest(candidates, 800)
		if err != nil {
			t.Fatal(err)
		}
		if best.Key() != seqBest.Key() || tHat != seqT {
			t.Fatalf("workers=%d: got %s (%v), sequential %s (%v)", workers, best, tHat, seqBest, seqT)
		}
	}
}

// TestBuildModelWorkersDeterminism builds the same model on fresh contexts
// at different worker counts and requires identical fitted estimators.
func TestBuildModelWorkersDeterminism(t *testing.T) {
	build := func(workers int) *BuiltModel {
		t.Helper()
		ctx, err := NewPaperContext()
		if err != nil {
			t.Fatal(err)
		}
		ctx.Workers = workers
		bm, err := ctx.BuildModel(tinyBuildCampaign())
		if err != nil {
			t.Fatal(err)
		}
		return bm
	}
	seq := build(1)
	par := build(4)
	if par.TaScale != seq.TaScale {
		t.Fatalf("TaScale %v != %v", par.TaScale, seq.TaScale)
	}
	if par.Result.Runs != seq.Result.Runs || par.Result.TotalCost() != seq.Result.TotalCost() {
		t.Fatalf("campaign accounting differs: %d/%v vs %d/%v",
			par.Result.Runs, par.Result.TotalCost(), seq.Result.Runs, seq.Result.TotalCost())
	}
	for _, k := range seq.Models.Keys() {
		a, b := seq.Models.NT[k], par.Models.NT[k]
		if b == nil {
			t.Fatalf("parallel build lost N-T bin %v", k)
		}
		for i := range a.TaCoeff {
			if a.TaCoeff[i] != b.TaCoeff[i] {
				t.Fatalf("N-T %v TaCoeff[%d]: %v != %v", k, i, a.TaCoeff[i], b.TaCoeff[i])
			}
		}
	}
}

// tinyBuildCampaign is the smallest campaign BuildModel accepts: both
// classes measured at four sizes (the N-T fit minimum).
func tinyBuildCampaign() measure.Campaign {
	athlon, pii := cluster.PaperConstructionSpace([]int{1, 2, 4, 8})
	return measure.Campaign{
		Name: "tinybuild",
		Ns:   []int{400, 800, 1200, 1600},
		Groups: []measure.Group{
			{Label: "Athlon", Space: athlon},
			{Label: "PentiumII", Space: pii},
		},
	}
}
