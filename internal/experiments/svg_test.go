package experiments

import (
	"encoding/xml"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestWriteFigureSVGs(t *testing.T) {
	if testing.Short() {
		t.Skip("figure rendering builds all three models")
	}
	ctx, _ := ctxAndModels(t)
	dir := t.TempDir()
	files, err := ctx.WriteFigureSVGs(dir)
	if err != nil {
		t.Fatal(err)
	}
	// 2 (fig 1) + 2 (fig 2) + 2 (fig 3) + 10 (fig 6-15) = 16 figures.
	if len(files) != 16 {
		t.Fatalf("wrote %d figures, want 16: %v", len(files), files)
	}
	for _, name := range files {
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		// Every figure is well-formed XML containing drawable marks.
		dec := xml.NewDecoder(strings.NewReader(string(data)))
		for {
			if _, err := dec.Token(); err != nil {
				if err.Error() == "EOF" {
					break
				}
				t.Fatalf("%s: invalid XML: %v", name, err)
			}
		}
		s := string(data)
		if !strings.Contains(s, "<polyline") && !strings.Contains(s, "<circle") {
			t.Fatalf("%s has no marks", name)
		}
	}
	// Correlation figures carry the diagonal.
	d, _ := os.ReadFile(filepath.Join(dir, "figure6.svg"))
	if !strings.Contains(string(d), "stroke-dasharray") {
		t.Fatal("figure6 missing the T=t diagonal")
	}
}
