package experiments

import (
	"strings"
	"testing"

	"hetmodel/internal/cluster"
	"hetmodel/internal/core"
	"hetmodel/internal/measure"
	"hetmodel/internal/netpipe"
	"hetmodel/internal/simnet"
	"hetmodel/internal/stats"
)

// The context and Basic/NL/NS models are expensive enough to share across
// tests in this package.
var (
	sharedCtx    *Context
	sharedModels map[string]*BuiltModel
)

func ctxAndModels(t *testing.T) (*Context, map[string]*BuiltModel) {
	t.Helper()
	if sharedCtx != nil {
		return sharedCtx, sharedModels
	}
	ctx, err := NewPaperContext()
	if err != nil {
		t.Fatal(err)
	}
	models := map[string]*BuiltModel{}
	for _, camp := range []measure.Campaign{
		measure.BasicCampaign(), measure.NLCampaign(), measure.NSCampaign(),
	} {
		bm, err := ctx.BuildModel(camp)
		if err != nil {
			t.Fatal(err)
		}
		models[camp.Name] = bm
	}
	sharedCtx, sharedModels = ctx, models
	return ctx, models
}

func TestEvalConfigsCount(t *testing.T) {
	if got := len(EvalConfigs()); got != 62 {
		t.Fatalf("evaluation configurations = %d, want 62 (paper)", got)
	}
}

func TestRunMemoization(t *testing.T) {
	ctx, _ := ctxAndModels(t)
	cfg := cluster.Configuration{Use: []cluster.ClassUse{{PEs: 1, Procs: 1}, {}}}
	a, err := ctx.Run(cfg, 1000)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ctx.Run(cfg, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("memoization returned distinct results")
	}
}

func TestCompositionScaleNearPaper(t *testing.T) {
	_, models := ctxAndModels(t)
	// The paper's hand-chosen Athlon←P-II Ta factor is 0.27; our fitted
	// value should land in the same regime (the speed ratio is ~4-5x).
	scale := models["Basic"].TaScale
	if scale < 0.15 || scale > 0.45 {
		t.Fatalf("composition Ta scale = %.3f, want ≈ 0.27 (paper §4.1)", scale)
	}
}

// Table 4: the Basic model must pick optimal or near-optimal
// configurations; the paper reports 0-3.6% execution penalties.
func TestTable4BasicModelShape(t *testing.T) {
	ctx, models := ctxAndModels(t)
	table, err := ctx.EvaluationTable(models["Basic"])
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Rows) != 5 {
		t.Fatalf("rows = %d, want 5", len(table.Rows))
	}
	if table.Rows[0].N != 3200 || table.Rows[4].N != 9600 {
		t.Fatalf("sizes wrong: %+v", table.Rows)
	}
	if max := table.MaxExecError(); max > 0.12 {
		t.Fatalf("Basic max exec penalty %.1f%%, want ≤ 12%% (paper ≤ 3.6%%)", max*100)
	}
	// Small N: a lone-Athlon optimum (paper: (1,1,0,0) at N=3200).
	r3200 := table.Rows[0]
	if r3200.ActConfig.Use[1].PEs != 0 {
		t.Fatalf("N=3200 actual best should be Athlon-only, got %s", r3200.ActConfig)
	}
	// Large N: heterogeneous multiprocess optimum with all eight P-IIs.
	r9600 := table.Rows[4]
	if r9600.ActConfig.Use[1].PEs != 8 || r9600.ActConfig.Use[0].Procs < 3 {
		t.Fatalf("N=9600 actual best should be (1,3+,8,1), got %s", r9600.ActConfig)
	}
	if r9600.EstConfig.Use[1].PEs != 8 {
		t.Fatalf("N=9600 estimate should use all P-IIs, got %s", r9600.EstConfig)
	}
}

// Table 7: the NL model (4 large sizes) stays accurate; paper 0-4.3%.
func TestTable7NLModelShape(t *testing.T) {
	ctx, models := ctxAndModels(t)
	table, err := ctx.EvaluationTable(models["NL"])
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Rows) != 6 {
		t.Fatalf("rows = %d, want 6", len(table.Rows))
	}
	if max := table.MaxExecError(); max > 0.12 {
		t.Fatalf("NL max exec penalty %.1f%%, want ≤ 12%% (paper ≤ 4.3%%)", max*100)
	}
}

// Table 9: the NS model (small-size training) must fail for large N:
// large underestimation and significant execution penalties (paper
// 28-82%).
func TestTable9NSModelFails(t *testing.T) {
	ctx, models := ctxAndModels(t)
	table, err := ctx.EvaluationTable(models["NS"])
	if err != nil {
		t.Fatal(err)
	}
	// Within its training range it is fine (paper: N=1600 error 0).
	if e := table.Rows[0].ErrExec; e > 0.05 {
		t.Fatalf("NS at N=1600 exec penalty %.1f%%, want small", e*100)
	}
	// Beyond: estimates collapse below reality and the picks cost real
	// time. Require both signatures on the largest sizes.
	worstUnder, worstExec := 0.0, 0.0
	for _, r := range table.Rows {
		if r.N >= 4800 {
			if -r.ErrEst > worstUnder {
				worstUnder = -r.ErrEst
			}
			if r.ErrExec > worstExec {
				worstExec = r.ErrExec
			}
		}
	}
	if worstUnder < 0.10 {
		t.Fatalf("NS should underestimate large N (paper τ << T̂); worst underestimation %.1f%%", worstUnder*100)
	}
	if worstExec < 0.15 {
		t.Fatalf("NS exec penalty %.1f%%, want ≥ 15%% (paper 28-82%%)", worstExec*100)
	}
}

// The NS failure must grow with N (paper: 28% → 82%).
func TestNSUnderestimationGrowsWithN(t *testing.T) {
	ctx, models := ctxAndModels(t)
	table, err := ctx.EvaluationTable(models["NS"])
	if err != nil {
		t.Fatal(err)
	}
	var last, first float64
	for _, r := range table.Rows {
		if r.N == 4800 {
			first = -r.ErrEst
		}
		if r.N == 9600 {
			last = -r.ErrEst
		}
	}
	if last <= first {
		t.Fatalf("NS underestimation should grow with N: %.3f at 4800 vs %.3f at 9600", first, last)
	}
}

// Campaign cost ordering (Tables 3 and 6): Basic > NL > NS, with NS tiny.
func TestMeasurementCostOrdering(t *testing.T) {
	_, models := ctxAndModels(t)
	basic := models["Basic"].Result.TotalCost()
	nl := models["NL"].Result.TotalCost()
	ns := models["NS"].Result.TotalCost()
	if !(basic > nl && nl > ns) {
		t.Fatalf("cost ordering violated: basic %.0f, NL %.0f, NS %.0f", basic, nl, ns)
	}
	// Paper: Basic ≈ 6 h, NL ≈ 3 h, NS ≈ 10 min — NS is >10x cheaper
	// than NL.
	if ns*10 > nl {
		t.Fatalf("NS (%.0fs) should be ≥10x cheaper than NL (%.0fs)", ns, nl)
	}
	// Basic total in the hours regime like the paper's 22869 s.
	if basic < 3600 || basic > 20*3600 {
		t.Fatalf("Basic campaign cost %.0fs out of the paper's regime", basic)
	}
}

// Figure 1: multiprocessing loss drastic under 1.2.1-like, mild under
// 1.2.2-like.
func TestFigure1Shape(t *testing.T) {
	ctx, _ := ctxAndModels(t)
	s121, err := Figure1(simnet.NewMPICH121(), ctx.Params)
	if err != nil {
		t.Fatal(err)
	}
	s122, err := Figure1(simnet.NewMPICH122(), ctx.Params)
	if err != nil {
		t.Fatal(err)
	}
	last := len(figure1Ns) - 1
	loss121 := 1 - s121[3].Y[last]/s121[0].Y[last]
	loss122 := 1 - s122[3].Y[last]/s122[0].Y[last]
	if loss121 < 0.4 {
		t.Fatalf("1.2.1 n=4 loss %.2f, want drastic", loss121)
	}
	if loss122 > loss121/1.5 {
		t.Fatalf("1.2.2 loss %.2f not much smaller than 1.2.1 %.2f", loss122, loss121)
	}
}

// Figure 2: 1.2.2-like intra-node peak several times the 1.2.1-like one.
func TestFigure2Shape(t *testing.T) {
	p121, err := Figure2(simnet.NewMPICH121())
	if err != nil {
		t.Fatal(err)
	}
	p122, err := Figure2(simnet.NewMPICH122())
	if err != nil {
		t.Fatal(err)
	}
	peak121, _, _ := netpipe.PeakThroughput(p121)
	peak122, _, _ := netpipe.PeakThroughput(p122)
	if peak122 < 3*peak121 {
		t.Fatalf("Fig 2 contrast: 1.2.2 peak %.2f vs 1.2.1 %.2f Gbps", peak122, peak121)
	}
}

// Figure 3(a): heterogeneous-naive ≈ five P-IIs; lone Athlon degrades at
// N=10000 while P2 x 5 does not.
func TestFigure3aShape(t *testing.T) {
	ctx, _ := ctxAndModels(t)
	series, err := ctx.Figure3a()
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]Series{}
	for _, s := range series {
		byName[s.Name] = s
	}
	last := len(figure3Ns) - 1 // N=10000
	athlon, hetero, p2x5 := byName["Athlon x 1"], byName["Ath+P2x4"], byName["P2 x 5"]
	ratio := hetero.Y[last] / p2x5.Y[last]
	if ratio < 0.7 || ratio > 1.35 {
		t.Fatalf("Ath+P2x4 / P2x5 at N=10000 = %.2f, want ≈ 1 (load imbalance)", ratio)
	}
	// Athlon memory wall at 10000: below its own N=9000 value.
	if athlon.Y[last] >= athlon.Y[last-1] {
		t.Fatalf("Athlon should degrade at N=10000: %.2f vs %.2f", athlon.Y[last], athlon.Y[last-1])
	}
	if p2x5.Y[last] < p2x5.Y[last-1]*0.95 {
		t.Fatalf("P2 x 5 should not degrade at N=10000")
	}
}

// Figure 3(b): the best n grows with N; n=4 reaches well past the lone
// Athlon at N=10000 (paper: 77% of the 2.2 Gflops peak).
func TestFigure3bShape(t *testing.T) {
	ctx, _ := ctxAndModels(t)
	series, err := ctx.Figure3b()
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]Series{}
	for _, s := range series {
		byName[s.Name] = s
	}
	last := len(figure3Ns) - 1
	n4, n1, lone := byName["n = 4"], byName["n = 1"], byName["Athlon x 1"]
	if n4.Y[last] <= n1.Y[last] {
		t.Fatalf("at N=10000 n=4 (%.2f) should beat n=1 (%.2f)", n4.Y[last], n1.Y[last])
	}
	if n4.Y[last] <= lone.Y[last] {
		t.Fatal("at N=10000 multiprocessing should beat the lone Athlon")
	}
	// At the smallest size the ordering reverses (overhead dominates).
	if n4.Y[0] >= n1.Y[0] {
		t.Fatalf("at N=1000 n=4 (%.2f) should lose to n=1 (%.2f)", n4.Y[0], n1.Y[0])
	}
}

// Figures 6/7: the adjustment tightens the correlation for M1 >= 3 configs.
func TestCorrelationAdjustmentImproves(t *testing.T) {
	ctx, models := ctxAndModels(t)
	bm := models["Basic"]
	raw, err := ctx.Correlation(bm, 6400, false)
	if err != nil {
		t.Fatal(err)
	}
	adj, err := ctx.Correlation(bm, 6400, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(raw) != len(adj) || len(raw) < 50 {
		t.Fatalf("correlation points: raw %d adj %d", len(raw), len(adj))
	}
	sse := func(points []CorrPoint) float64 {
		var s float64
		for _, p := range points {
			d := (p.Est - p.Meas) / p.Meas
			s += d * d
		}
		return s
	}
	if sse(adj) >= sse(raw) {
		t.Fatalf("adjustment did not improve fit: sse adj %.3f vs raw %.3f", sse(adj), sse(raw))
	}
	// Correlation should be strong after adjustment.
	var xs, ys []float64
	for _, p := range adj {
		xs = append(xs, p.Est)
		ys = append(ys, p.Meas)
	}
	r, err := stats.Pearson(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if r < 0.95 {
		t.Fatalf("adjusted correlation r = %.3f, want ≥ 0.95", r)
	}
}

func TestAblationAdjustment(t *testing.T) {
	ctx, models := ctxAndModels(t)
	abl, err := ctx.AblationAdjustment(models["Basic"])
	if err != nil {
		t.Fatal(err)
	}
	if abl.MeanAbsWith >= abl.MeanAbsWithout {
		t.Fatalf("adjustment should reduce mean |error|: %.3f vs %.3f",
			abl.MeanAbsWith, abl.MeanAbsWithout)
	}
	if !strings.Contains(abl.Render(), "Ablation") {
		t.Fatal("render broken")
	}
}

func TestAblationOptimizer(t *testing.T) {
	_, models := ctxAndModels(t)
	abl, err := AblationOptimizer(models["Basic"], 6400)
	if err != nil {
		t.Fatal(err)
	}
	if abl.HeuristicEvals >= abl.ExhaustiveEvals {
		t.Fatalf("heuristic used %d evals vs %d exhaustive — no savings",
			abl.HeuristicEvals, abl.ExhaustiveEvals)
	}
	if abl.HeuristicTau > abl.ExhaustiveTau*1.25 {
		t.Fatalf("heuristic tau %.1f far from exhaustive %.1f", abl.HeuristicTau, abl.ExhaustiveTau)
	}
}

func TestAblationBcast(t *testing.T) {
	ctx, _ := ctxAndModels(t)
	cfg := cluster.Configuration{Use: []cluster.ClassUse{{PEs: 1, Procs: 2}, {PEs: 8, Procs: 1}}}
	abl, err := ctx.AblationBcast(cfg, 2400)
	if err != nil {
		t.Fatal(err)
	}
	if abl.RingTime <= 0 || abl.BinomTime <= 0 {
		t.Fatalf("ablation times: %+v", abl)
	}
}

func TestGridTables(t *testing.T) {
	grid, err := GridFor(measure.BasicCampaign())
	if err != nil {
		t.Fatal(err)
	}
	// Paper: (6 + 48) x 9 = 486 sets.
	if grid.TotalRuns != 486 {
		t.Fatalf("Basic runs = %d, want 486", grid.TotalRuns)
	}
	nlGrid, _ := GridFor(measure.NLCampaign())
	// Paper: (6 + 24) x 4 = 120 sets.
	if nlGrid.TotalRuns != 120 {
		t.Fatalf("NL runs = %d, want 120", nlGrid.TotalRuns)
	}
	if !strings.Contains(grid.Render(), "486") {
		t.Fatal("grid render missing total")
	}
}

func TestRenderers(t *testing.T) {
	ctx, models := ctxAndModels(t)
	if !strings.Contains(ctx.Table1(), "Athlon-1333") {
		t.Fatal("Table 1 missing Athlon")
	}
	table, err := ctx.EvaluationTable(models["Basic"])
	if err != nil {
		t.Fatal(err)
	}
	out := table.Render()
	if !strings.Contains(out, "errExec") || !strings.Contains(out, "9600") {
		t.Fatalf("evaluation render incomplete:\n%s", out)
	}
	cost := costTableFromResult(models["Basic"].Result)
	if !strings.Contains(cost.Render(), "Total") {
		t.Fatal("cost render incomplete")
	}
	if RenderSeries("t", "x", "y", nil) == "" {
		t.Fatal("empty series render")
	}
}

func TestWriteFullReport(t *testing.T) {
	if testing.Short() {
		t.Skip("full report is expensive")
	}
	ctx, _ := ctxAndModels(t)
	var sb strings.Builder
	if err := ctx.WriteFullReport(&sb); err != nil {
		t.Fatal(err)
	}
	report := sb.String()
	for _, want := range []string{
		"Figure 1", "Figure 2", "Figure 3(a)", "Figure 3(b)",
		"Figure 6", "Figure 7", "Figure 8", "Figure 11", "Figure 12", "Figure 15",
		"Campaign Basic", "Campaign NL", "Campaign NS",
		"Estimated vs actual best configurations (Basic model)",
		"Estimated vs actual best configurations (NL model)",
		"Estimated vs actual best configurations (NS model)",
		"Measurement cost, campaign Basic",
		"Ablation",
	} {
		if !strings.Contains(report, want) {
			t.Fatalf("report missing %q", want)
		}
	}
}

func TestAblationNB(t *testing.T) {
	ctx, _ := ctxAndModels(t)
	cfg := cluster.Configuration{Use: []cluster.ClassUse{{PEs: 1, Procs: 1}, {PEs: 8, Procs: 1}}}
	abl, err := ctx.AblationNB(cfg, 3200, []int{16, 32, 64, 128, 256})
	if err != nil {
		t.Fatal(err)
	}
	if len(abl.Walls) != 5 {
		t.Fatalf("walls = %v", abl.Walls)
	}
	best, wall := abl.Best()
	if wall <= 0 {
		t.Fatalf("best wall = %v", wall)
	}
	// The sweep must not be monotone: both extremes lose to the middle
	// (tiny NB pays per-call and per-panel costs; huge NB serializes the
	// panel factorization).
	if best == 16 || best == 256 {
		t.Fatalf("best NB = %d; expected an interior optimum (walls %v)", best, abl.Walls)
	}
	if !strings.Contains(abl.Render(), "best NB=") {
		t.Fatal("render broken")
	}
}

func TestAblationGrid(t *testing.T) {
	ctx, _ := ctxAndModels(t)
	cfg := cluster.Configuration{Use: []cluster.ClassUse{{}, {PEs: 8, Procs: 1}}}
	abl, err := ctx.AblationGrid(cfg, 2048, [][2]int{{1, 8}, {2, 4}, {4, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if len(abl.Walls) != 3 {
		t.Fatalf("walls = %v", abl.Walls)
	}
	for i, w := range abl.Walls {
		if w <= 0 {
			t.Fatalf("shape %v wall = %v", abl.Shapes[i], w)
		}
	}
	if !strings.Contains(abl.Render(), "process grid") {
		t.Fatal("render broken")
	}
}

func TestAblationContention(t *testing.T) {
	ctx, _ := ctxAndModels(t)
	abl, err := ctx.AblationContention(2<<20, 8)
	if err != nil {
		t.Fatal(err)
	}
	// Eight equal streams through one link drain in exactly 8x the
	// independent time (work conservation), so the slowdown is 8.
	if s := abl.Slowdown(); s < 7.99 || s > 8.01 {
		t.Fatalf("slowdown = %v, want 8", s)
	}
	if !strings.Contains(abl.Render(), "contention") {
		t.Fatal("render broken")
	}
	if _, err := ctx.AblationContention(-1, 2); err == nil {
		t.Fatal("bad bytes accepted")
	}
}

// Cross-validation across campaigns: Basic (9 sizes) is validatable with
// small held-out errors; NL and NS (4 sizes, zero degrees of freedom)
// cannot be validated at all — the statistical fingerprint of the paper's
// NS failure.
func TestCrossValidationAcrossCampaigns(t *testing.T) {
	_, models := ctxAndModels(t)
	basicCV, err := core.CrossValidateNT(models["Basic"].Result.Samples)
	if err != nil {
		t.Fatal(err)
	}
	if len(basicCV) == 0 {
		t.Fatal("Basic campaign should be cross-validatable")
	}
	for _, name := range []string{"NL", "NS"} {
		cv, err := core.CrossValidateNT(models[name].Result.Samples)
		if err != nil {
			t.Fatal(err)
		}
		if len(cv) != 0 {
			t.Fatalf("%s has zero DoF and should be unvalidatable, got %d results", name, len(cv))
		}
	}
}

func TestAblationLookahead(t *testing.T) {
	ctx, _ := ctxAndModels(t)
	cfg := cluster.Configuration{Use: []cluster.ClassUse{{PEs: 1, Procs: 1}, {PEs: 8, Procs: 1}}}
	abl, err := ctx.AblationLookahead(cfg, 4800)
	if err != nil {
		t.Fatal(err)
	}
	if abl.Gain() <= 0 {
		t.Fatalf("lookahead should help a bcast-heavy config: %+v", abl)
	}
	if !strings.Contains(abl.Render(), "lookahead") {
		t.Fatal("render broken")
	}
}
