// Package experiments regenerates every table and figure of the paper's
// evaluation on the simulated testbed: the measurement-cost tables (3, 6),
// the estimated-vs-actual optimal configuration tables (4, 7, 9), the
// multiprocessing and load-imbalance figures (1, 3), the NetPIPE throughput
// figure (2), and the correlation scatter plots (6–15), plus the ablations
// DESIGN.md calls out.
package experiments

import (
	"sync"

	"hetmodel/internal/cluster"
	"hetmodel/internal/core"
	"hetmodel/internal/hpl"
	"hetmodel/internal/measure"
	"hetmodel/internal/parallel"
	"hetmodel/internal/simnet"
)

// Context carries the simulated testbed and a memoized run cache so tables
// and figures that revisit the same configurations don't resimulate them.
// All methods are safe for concurrent callers: the cache deduplicates
// in-flight simulations, so two goroutines asking for the same
// (configuration, N) share one run instead of racing to compute it twice.
type Context struct {
	Cluster *cluster.Cluster
	Params  hpl.Params
	// Workers bounds the concurrency of campaign measurements (BuildModel)
	// and candidate sweeps (ActualBest): <= 0 selects GOMAXPROCS, 1 forces
	// sequential execution. Results are identical at any setting.
	Workers int

	mu    sync.Mutex
	cache map[runKey]*runEntry
}

// runKey identifies one memoized simulation: the configuration's canonical
// key plus the problem size. A comparable struct, so cache probes don't
// build a formatted string per lookup.
type runKey struct {
	cfg string
	n   int
}

// runEntry is one memoized simulation; ready closes when res/err are set,
// so concurrent requests for the same key wait instead of resimulating.
type runEntry struct {
	ready chan struct{}
	res   *hpl.Result
	err   error
}

// NewPaperContext returns the paper's evaluation platform: the Table 1
// cluster with the MPICH-1.2.2-like library (the paper measures with
// MPICH-1.2.5, which shares its fast shared-memory intra-node path).
func NewPaperContext() (*Context, error) {
	cl, err := cluster.NewPaper(simnet.NewMPICH122())
	if err != nil {
		return nil, err
	}
	return &Context{Cluster: cl, cache: make(map[runKey]*runEntry)}, nil
}

// NewContext builds a context over an arbitrary cluster.
func NewContext(cl *cluster.Cluster, params hpl.Params) *Context {
	return &Context{Cluster: cl, Params: params, cache: make(map[runKey]*runEntry)}
}

// Run simulates one configuration at one size, memoized. Concurrent calls
// with the same key block on one shared simulation; failed runs are not
// cached (waiters receive the error, later callers retry).
func (c *Context) Run(cfg cluster.Configuration, n int) (*hpl.Result, error) {
	key := runKey{cfg: cfg.Key(), n: n}
	c.mu.Lock()
	if e, ok := c.cache[key]; ok {
		c.mu.Unlock()
		<-e.ready
		return e.res, e.err
	}
	e := &runEntry{ready: make(chan struct{})}
	c.cache[key] = e
	c.mu.Unlock()
	p := c.Params
	p.N = n
	e.res, e.err = hpl.Run(c.Cluster, cfg, p)
	if e.err != nil {
		c.mu.Lock()
		delete(c.cache, key)
		c.mu.Unlock()
	}
	close(e.ready)
	return e.res, e.err
}

// BuiltModel bundles one campaign's models with their training data.
type BuiltModel struct {
	Campaign measure.Campaign
	Result   *measure.Result
	Models   *core.ModelSet
	// TaScale is the fitted Athlon←P-II composition factor (paper: 0.27).
	TaScale float64

	evalMu sync.Mutex
	evals  map[float64]*core.Evaluator
}

// EvaluatorAt returns Models compiled for problem size n, memoized per
// size and safe for concurrent callers. The evaluator snapshots the model
// set, so callers that mutate Models (the ablations) must compile their
// own instead of going through the cache.
func (bm *BuiltModel) EvaluatorAt(n int) *core.Evaluator {
	nf := float64(n)
	bm.evalMu.Lock()
	defer bm.evalMu.Unlock()
	if bm.evals == nil {
		bm.evals = make(map[float64]*core.Evaluator)
	}
	ev, ok := bm.evals[nf]
	if !ok {
		ev = bm.Models.Compile(nf)
		bm.evals[nf] = ev
	}
	return ev
}

// TcScaleDefault is the communication composition factor, hand-chosen as in
// the paper (§3.5, they use 0.85): single-PE runs cannot anchor it.
const TcScaleDefault = 0.85

// BuildModel runs the campaign, fits all models, composes the Athlon P-T
// models from the Pentium-II ones, and calibrates the §4.1 adjustment on
// the campaign's largest size with the full P-II set and M1 = 1..6 (the
// paper uses N = 6400, P2 = 8; see core.ModelSet.Adjust for why the sweep
// starts at M1 = 1 here).
func (c *Context) BuildModel(camp measure.Campaign) (*BuiltModel, error) {
	if camp.Workers == 0 {
		camp.Workers = c.Workers
	}
	res, err := measure.Run(c.Cluster, camp, c.Params)
	if err != nil {
		return nil, err
	}
	ms, err := core.Build(len(c.Cluster.Classes), res.Samples)
	if err != nil {
		return nil, err
	}
	taScale, err := ms.ComposeClassFitted(0, 1, TcScaleDefault)
	if err != nil {
		return nil, err
	}
	adjN := camp.Ns[len(camp.Ns)-1]
	calibRuns, err := parallel.Map(6, camp.Workers, func(i int) (*hpl.Result, error) {
		cfg := cluster.Configuration{Use: []cluster.ClassUse{{PEs: 1, Procs: i + 1}, {PEs: 8, Procs: 1}}}
		return c.Run(cfg, adjN)
	})
	if err != nil {
		return nil, err
	}
	var calib []core.Sample
	for _, r := range calibRuns {
		calib = append(calib, measure.SamplesFromResult(r)...)
	}
	if err := ms.FitAdjustment(calib); err != nil {
		return nil, err
	}
	// Persist the campaign and calibration samples in (class, M) bins: a
	// model file written from this set is incrementally refittable
	// (core.ModelSet.Refit) and exactly rebuildable (RebuildFromBins).
	ms.Bins = core.NewBinStore(res.Samples, calib)
	// Memory binning (§3.4): exclude configurations whose predetermined
	// per-node requirement exceeds physical memory — no training data
	// exists in the paging regime.
	nb := c.Params.NB
	if nb == 0 {
		nb = hpl.DefaultNB
	}
	ws := c.Params.WorkspaceBytes
	if ws == 0 {
		ws = hpl.DefaultWorkspaceBytes
	}
	ms.Memory = c.Cluster.MemoryGuard(func(n float64) float64 {
		return 8*n*float64(nb) + ws
	})
	return &BuiltModel{Campaign: camp, Result: res, Models: ms, TaScale: taScale}, nil
}

// EvalConfigs returns the paper's 62 evaluation configurations.
func EvalConfigs() []cluster.Configuration {
	cfgs, err := cluster.PaperEvaluationSpace().Enumerate()
	if err != nil {
		// The paper space is a constant; enumeration cannot fail.
		panic(err)
	}
	return cfgs
}

// ActualBest simulates every candidate and returns the measured optimum.
// Candidates are simulated on c.Workers goroutines; the winner is chosen by
// a sequential scan over the candidate order (strictly smaller wall time
// wins, ties keep the earliest candidate), so the result is identical to
// the sequential sweep at any worker count.
func (c *Context) ActualBest(candidates []cluster.Configuration, n int) (cluster.Configuration, float64, error) {
	runs, err := parallel.Map(len(candidates), c.Workers, func(i int) (*hpl.Result, error) {
		return c.Run(candidates[i], n)
	})
	if err != nil {
		return cluster.Configuration{}, 0, err
	}
	best := cluster.Configuration{}
	bestT := 0.0
	for i, r := range runs {
		if i == 0 || r.WallTime < bestT {
			best, bestT = candidates[i], r.WallTime
		}
	}
	return best, bestT, nil
}
