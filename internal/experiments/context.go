// Package experiments regenerates every table and figure of the paper's
// evaluation on the simulated testbed: the measurement-cost tables (3, 6),
// the estimated-vs-actual optimal configuration tables (4, 7, 9), the
// multiprocessing and load-imbalance figures (1, 3), the NetPIPE throughput
// figure (2), and the correlation scatter plots (6–15), plus the ablations
// DESIGN.md calls out.
package experiments

import (
	"fmt"
	"sync"

	"hetmodel/internal/cluster"
	"hetmodel/internal/core"
	"hetmodel/internal/hpl"
	"hetmodel/internal/measure"
	"hetmodel/internal/simnet"
)

// Context carries the simulated testbed and a memoized run cache so tables
// and figures that revisit the same configurations don't resimulate them.
type Context struct {
	Cluster *cluster.Cluster
	Params  hpl.Params

	mu    sync.Mutex
	cache map[string]*hpl.Result
}

// NewPaperContext returns the paper's evaluation platform: the Table 1
// cluster with the MPICH-1.2.2-like library (the paper measures with
// MPICH-1.2.5, which shares its fast shared-memory intra-node path).
func NewPaperContext() (*Context, error) {
	cl, err := cluster.NewPaper(simnet.NewMPICH122())
	if err != nil {
		return nil, err
	}
	return &Context{Cluster: cl, cache: make(map[string]*hpl.Result)}, nil
}

// NewContext builds a context over an arbitrary cluster.
func NewContext(cl *cluster.Cluster, params hpl.Params) *Context {
	return &Context{Cluster: cl, Params: params, cache: make(map[string]*hpl.Result)}
}

// Run simulates one configuration at one size, memoized.
func (c *Context) Run(cfg cluster.Configuration, n int) (*hpl.Result, error) {
	key := fmt.Sprintf("%s@%d", cfg.Normalize().Key(), n)
	c.mu.Lock()
	if r, ok := c.cache[key]; ok {
		c.mu.Unlock()
		return r, nil
	}
	c.mu.Unlock()
	p := c.Params
	p.N = n
	r, err := hpl.Run(c.Cluster, cfg, p)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	c.cache[key] = r
	c.mu.Unlock()
	return r, nil
}

// BuiltModel bundles one campaign's models with their training data.
type BuiltModel struct {
	Campaign measure.Campaign
	Result   *measure.Result
	Models   *core.ModelSet
	// TaScale is the fitted Athlon←P-II composition factor (paper: 0.27).
	TaScale float64
}

// TcScaleDefault is the communication composition factor, hand-chosen as in
// the paper (§3.5, they use 0.85): single-PE runs cannot anchor it.
const TcScaleDefault = 0.85

// BuildModel runs the campaign, fits all models, composes the Athlon P-T
// models from the Pentium-II ones, and calibrates the §4.1 adjustment on
// the campaign's largest size with the full P-II set and M1 = 1..6 (the
// paper uses N = 6400, P2 = 8; see core.ModelSet.Adjust for why the sweep
// starts at M1 = 1 here).
func (c *Context) BuildModel(camp measure.Campaign) (*BuiltModel, error) {
	res, err := measure.Run(c.Cluster, camp, c.Params)
	if err != nil {
		return nil, err
	}
	ms, err := core.Build(len(c.Cluster.Classes), res.Samples)
	if err != nil {
		return nil, err
	}
	taScale, err := ms.FitCompositionScale(0, 1)
	if err != nil {
		return nil, err
	}
	if err := ms.ComposeClass(0, 1, taScale, TcScaleDefault); err != nil {
		return nil, err
	}
	adjN := camp.Ns[len(camp.Ns)-1]
	var calib []core.Sample
	for m1 := 1; m1 <= 6; m1++ {
		cfg := cluster.Configuration{Use: []cluster.ClassUse{{PEs: 1, Procs: m1}, {PEs: 8, Procs: 1}}}
		r, err := c.Run(cfg, adjN)
		if err != nil {
			return nil, err
		}
		calib = append(calib, measure.SamplesFromResult(r)...)
	}
	if err := ms.FitAdjustment(calib); err != nil {
		return nil, err
	}
	// Memory binning (§3.4): exclude configurations whose predetermined
	// per-node requirement exceeds physical memory — no training data
	// exists in the paging regime.
	nb := c.Params.NB
	if nb == 0 {
		nb = hpl.DefaultNB
	}
	ws := c.Params.WorkspaceBytes
	if ws == 0 {
		ws = hpl.DefaultWorkspaceBytes
	}
	ms.Memory = c.Cluster.MemoryGuard(func(n float64) float64 {
		return 8*n*float64(nb) + ws
	})
	return &BuiltModel{Campaign: camp, Result: res, Models: ms, TaScale: taScale}, nil
}

// EvalConfigs returns the paper's 62 evaluation configurations.
func EvalConfigs() []cluster.Configuration {
	cfgs, err := cluster.PaperEvaluationSpace().Enumerate()
	if err != nil {
		// The paper space is a constant; enumeration cannot fail.
		panic(err)
	}
	return cfgs
}

// ActualBest simulates every candidate and returns the measured optimum.
func (c *Context) ActualBest(candidates []cluster.Configuration, n int) (cluster.Configuration, float64, error) {
	best := cluster.Configuration{}
	bestT := 0.0
	for i, cfg := range candidates {
		r, err := c.Run(cfg, n)
		if err != nil {
			return best, 0, err
		}
		if i == 0 || r.WallTime < bestT {
			best, bestT = cfg, r.WallTime
		}
	}
	return best, bestT, nil
}
