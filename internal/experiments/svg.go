package experiments

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"hetmodel/internal/measure"
	"hetmodel/internal/plot"
	"hetmodel/internal/simnet"
)

// WriteFigureSVGs renders every figure of the paper as an SVG file in dir
// (created if needed) and returns the written file names in order. It
// builds the three models itself, reusing the context's run cache.
func (c *Context) WriteFigureSVGs(dir string) ([]string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	var written []string
	write := func(name string, ch *plot.Chart) error {
		svg, err := ch.SVG()
		if err != nil {
			return fmt.Errorf("experiments: render %s: %w", name, err)
		}
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, []byte(svg), 0o644); err != nil {
			return err
		}
		written = append(written, name)
		return nil
	}

	// Figures 1(a)/1(b): multiprocessing under the two libraries.
	for _, lf := range []struct {
		lib  *simnet.CommLibrary
		file string
		sub  string
	}{
		{simnet.NewMPICH121(), "figure1a.svg", "(a) MPICH-1.2.1-like"},
		{simnet.NewMPICH122(), "figure1b.svg", "(b) MPICH-1.2.2-like"},
	} {
		series, err := Figure1(lf.lib, c.Params)
		if err != nil {
			return written, err
		}
		ch := plot.New("Figure 1 "+lf.sub+": Athlon multiprocessing", "N (matrix order)", "Gflops")
		for _, s := range series {
			ch.Line(s.Name, s.X, s.Y)
		}
		if err := write(lf.file, ch); err != nil {
			return written, err
		}
	}

	// Figures 2(a)/2(b): intra-node throughput (log-x).
	for _, lf := range []struct {
		lib  *simnet.CommLibrary
		file string
		sub  string
	}{
		{simnet.NewMPICH121(), "figure2a.svg", "(a) MPICH-1.2.1-like"},
		{simnet.NewMPICH122(), "figure2b.svg", "(b) MPICH-1.2.2-like"},
	} {
		points, err := Figure2(lf.lib)
		if err != nil {
			return written, err
		}
		ch := plot.New("Figure 2 "+lf.sub+": intra-node throughput", "Block size [KBytes]", "Throughput [Gbps]")
		ch.LogX = true
		var xs, ys []float64
		for _, p := range points {
			xs = append(xs, p.Bytes/1024)
			ys = append(ys, p.Gbps)
		}
		ch.Line("Athlon", xs, ys)
		if err := write(lf.file, ch); err != nil {
			return written, err
		}
	}

	// Figures 3(a)/3(b).
	f3a, err := c.Figure3a()
	if err != nil {
		return written, err
	}
	ch := plot.New("Figure 3(a): load imbalance", "N (matrix order)", "Gflops")
	for _, s := range f3a {
		ch.Line(s.Name, s.X, s.Y)
	}
	if err := write("figure3a.svg", ch); err != nil {
		return written, err
	}
	f3b, err := c.Figure3b()
	if err != nil {
		return written, err
	}
	ch = plot.New("Figure 3(b): multiprocessing", "N (matrix order)", "Gflops")
	for _, s := range f3b {
		ch.Line(s.Name, s.X, s.Y)
	}
	if err := write("figure3b.svg", ch); err != nil {
		return written, err
	}

	// Figures 6-15: correlation scatters per campaign/size/adjustment.
	type corrSpec struct {
		fig      int
		campaign string
		n        int
		adjusted bool
	}
	specs := []corrSpec{
		{6, "Basic", 6400, false}, {7, "Basic", 6400, true},
		{8, "NL", 1600, false}, {9, "NL", 6400, false},
		{10, "NL", 1600, true}, {11, "NL", 6400, true},
		{12, "NS", 1600, false}, {13, "NS", 1600, true},
		{14, "NS", 6400, false}, {15, "NS", 6400, true},
	}
	built := map[string]*BuiltModel{}
	for _, spec := range specs {
		bm, ok := built[spec.campaign]
		if !ok {
			var camp measure.Campaign
			switch spec.campaign {
			case "Basic":
				camp = measure.BasicCampaign()
			case "NL":
				camp = measure.NLCampaign()
			case "NS":
				camp = measure.NSCampaign()
			}
			var err error
			bm, err = c.BuildModel(camp)
			if err != nil {
				return written, err
			}
			built[spec.campaign] = bm
		}
		points, err := c.Correlation(bm, spec.n, spec.adjusted)
		if err != nil {
			return written, err
		}
		variant := "original estimations"
		if spec.adjusted {
			variant = "after adjustment"
		}
		ch := plot.New(
			fmt.Sprintf("Figure %d: %s model, N = %d, %s", spec.fig, spec.campaign, spec.n, variant),
			"T [sec.] : Estimation", "t [sec.] : Measurement")
		ch.ShowDiagonal = true
		// Group points by M1, the paper's legend.
		byM1 := map[int][][2]float64{}
		for _, p := range points {
			byM1[p.M1] = append(byM1[p.M1], [2]float64{p.Est, p.Meas})
		}
		m1s := make([]int, 0, len(byM1))
		for m1 := range byM1 {
			m1s = append(m1s, m1)
		}
		sort.Ints(m1s)
		for _, m1 := range m1s {
			var xs, ys []float64
			for _, pt := range byM1[m1] {
				xs = append(xs, pt[0])
				ys = append(ys, pt[1])
			}
			ch.Scatter(fmt.Sprintf("M1=%d", m1), xs, ys)
		}
		if err := write(fmt.Sprintf("figure%d.svg", spec.fig), ch); err != nil {
			return written, err
		}
	}
	return written, nil
}
