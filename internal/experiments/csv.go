package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// WriteSeriesCSV exports figure curves as CSV: one X column followed by one
// column per series. Series are aligned by index (figure sweeps share their
// X grid).
func WriteSeriesCSV(w io.Writer, xLabel string, series []Series) error {
	cw := csv.NewWriter(w)
	header := []string{xLabel}
	for _, s := range series {
		header = append(header, s.Name)
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	if len(series) > 0 {
		for i := range series[0].X {
			row := []string{formatFloat(series[0].X[i])}
			for _, s := range series {
				if i < len(s.Y) {
					row = append(row, formatFloat(s.Y[i]))
				} else {
					row = append(row, "")
				}
			}
			if err := cw.Write(row); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteEvalTableCSV exports an estimated-vs-actual table (Tables 4/7/9).
func WriteEvalTableCSV(w io.Writer, t *EvalTable) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{
		"n", "est_config", "tau", "tau_hat", "actual_config", "t_hat", "err_est", "err_exec",
	}); err != nil {
		return err
	}
	for _, r := range t.Rows {
		if err := cw.Write([]string{
			strconv.Itoa(r.N),
			r.EstConfig.String(),
			formatFloat(r.Tau),
			formatFloat(r.TauHat),
			r.ActConfig.String(),
			formatFloat(r.THat),
			formatFloat(r.ErrEst),
			formatFloat(r.ErrExec),
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteCostTableCSV exports a measurement-cost table (Tables 3/6).
func WriteCostTableCSV(w io.Writer, t *CostTable) error {
	cw := csv.NewWriter(w)
	header := []string{"n"}
	header = append(header, t.Labels...)
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, row := range t.Rows {
		rec := []string{strconv.Itoa(row.N)}
		for _, label := range t.Labels {
			rec = append(rec, formatFloat(row.Seconds[label]))
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteCorrelationCSV exports a correlation scatter (Figures 6-15).
func WriteCorrelationCSV(w io.Writer, points []CorrPoint) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"config", "m1", "estimated", "measured"}); err != nil {
		return err
	}
	for _, p := range points {
		if err := cw.Write([]string{
			p.Config.String(),
			strconv.Itoa(p.M1),
			formatFloat(p.Est),
			formatFloat(p.Meas),
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

func formatFloat(v float64) string {
	return fmt.Sprintf("%g", v)
}
