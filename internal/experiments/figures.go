package experiments

import (
	"fmt"
	"math"
	"strings"

	"hetmodel/internal/cluster"
	"hetmodel/internal/hpl"
	"hetmodel/internal/netpipe"
	"hetmodel/internal/simnet"
)

// Series is one labelled curve of a figure.
type Series struct {
	Name string
	X, Y []float64
}

// RenderSeries prints a set of curves as aligned columns (X, then one
// column per series).
func RenderSeries(title, xLabel, yLabel string, series []Series) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "  %10s", xLabel)
	for _, s := range series {
		fmt.Fprintf(&b, " %14s", s.Name)
	}
	fmt.Fprintf(&b, "   [%s]\n", yLabel)
	if len(series) == 0 {
		return b.String()
	}
	for i := range series[0].X {
		fmt.Fprintf(&b, "  %10.0f", series[0].X[i])
		for _, s := range series {
			if i < len(s.Y) {
				fmt.Fprintf(&b, " %14.3f", s.Y[i])
			} else {
				fmt.Fprintf(&b, " %14s", "-")
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// figure1Ns are the sizes swept in Figures 1 and 3.
var figure1Ns = []int{1000, 2000, 3000, 4000, 5000, 6000, 7000}

// Figure1 reproduces the multiprocessing performance of a single Athlon
// under one messaging library: Gflops vs N for n = 1..4 processes
// (paper Figure 1(a): MPICH-1.2.1-like; 1(b): 1.2.2-like).
func Figure1(lib *simnet.CommLibrary, params hpl.Params) ([]Series, error) {
	cl, err := cluster.NewPaper(lib)
	if err != nil {
		return nil, err
	}
	ctx := NewContext(cl, params)
	var out []Series
	for n := 1; n <= 4; n++ {
		s := Series{Name: fmt.Sprintf("%dP/CPU", n)}
		cfg := cluster.Configuration{Use: []cluster.ClassUse{{PEs: 1, Procs: n}, {}}}
		for _, size := range figure1Ns {
			r, err := ctx.Run(cfg, size)
			if err != nil {
				return nil, err
			}
			s.X = append(s.X, float64(size))
			s.Y = append(s.Y, r.Gflops)
		}
		out = append(out, s)
	}
	return out, nil
}

// Figure2 reproduces the NetPIPE throughput sweep between two processes on
// the same node for one messaging library (paper Figure 2).
func Figure2(lib *simnet.CommLibrary) ([]netpipe.Point, error) {
	fabric, err := simnet.NewFabric(lib, simnet.NewFast100TX())
	if err != nil {
		return nil, err
	}
	return netpipe.Run(fabric, netpipe.Sweep{
		MinBytes:       1024,
		MaxBytes:       256 * 1024,
		StepsPerOctave: 2,
		SameNode:       true,
	})
}

// RenderFigure2 prints a NetPIPE sweep in the paper's units.
func RenderFigure2(name string, points []netpipe.Point) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 2 (%s): intra-node throughput vs block size\n", name)
	fmt.Fprintf(&b, "  %12s %12s\n", "KBytes", "Gbps")
	for _, p := range points {
		fmt.Fprintf(&b, "  %12.1f %12.3f\n", p.Bytes/1024, p.Gbps)
	}
	return b.String()
}

// figure3Ns extends the sweep to the memory wall at N = 10000.
var figure3Ns = []int{1000, 2000, 3000, 4000, 5000, 6000, 7000, 8000, 9000, 10000}

// Figure3a reproduces the load-imbalance comparison: a single Athlon,
// the naive heterogeneous set (Athlon + 4 P-II), and five P-IIs.
func (c *Context) Figure3a() ([]Series, error) {
	configs := []struct {
		name string
		cfg  cluster.Configuration
	}{
		{"Athlon x 1", cluster.Configuration{Use: []cluster.ClassUse{{PEs: 1, Procs: 1}, {}}}},
		{"Ath+P2x4", cluster.Configuration{Use: []cluster.ClassUse{{PEs: 1, Procs: 1}, {PEs: 4, Procs: 1}}}},
		{"P2 x 5", cluster.Configuration{Use: []cluster.ClassUse{{}, {PEs: 5, Procs: 1}}}},
	}
	var out []Series
	for _, cc := range configs {
		s := Series{Name: cc.name}
		for _, n := range figure3Ns {
			r, err := c.Run(cc.cfg, n)
			if err != nil {
				return nil, err
			}
			s.X = append(s.X, float64(n))
			s.Y = append(s.Y, r.Gflops)
		}
		out = append(out, s)
	}
	return out, nil
}

// Figure3b reproduces the multiprocessing sweep on the heterogeneous set:
// n = 1..4 processes on the Athlon plus four single-process P-IIs, with the
// lone Athlon for contrast.
func (c *Context) Figure3b() ([]Series, error) {
	var out []Series
	athlon := Series{Name: "Athlon x 1"}
	lone := cluster.Configuration{Use: []cluster.ClassUse{{PEs: 1, Procs: 1}, {}}}
	for _, n := range figure3Ns {
		r, err := c.Run(lone, n)
		if err != nil {
			return nil, err
		}
		athlon.X = append(athlon.X, float64(n))
		athlon.Y = append(athlon.Y, r.Gflops)
	}
	out = append(out, athlon)
	for m1 := 1; m1 <= 4; m1++ {
		s := Series{Name: fmt.Sprintf("n = %d", m1)}
		cfg := cluster.Configuration{Use: []cluster.ClassUse{{PEs: 1, Procs: m1}, {PEs: 4, Procs: 1}}}
		for _, n := range figure3Ns {
			r, err := c.Run(cfg, n)
			if err != nil {
				return nil, err
			}
			s.X = append(s.X, float64(n))
			s.Y = append(s.Y, r.Gflops)
		}
		out = append(out, s)
	}
	return out, nil
}

// CorrPoint is one point of a correlation scatter (paper Figures 6–15):
// estimated vs measured execution time for one evaluation configuration.
type CorrPoint struct {
	Config cluster.Configuration
	// M1 is the Athlon process count (the paper's legend key; 0 when the
	// Athlon is unused).
	M1 int
	// Est is the model estimate (T), Meas the simulated measurement (t).
	Est, Meas float64
}

// Correlation computes the estimate-vs-measurement scatter of a built model
// at one size over the 62 evaluation configurations. adjusted selects
// whether the §4.1 correction is applied (Figures 6/8/9/12/14 are raw,
// 7/10/11/13/15 adjusted). Configurations the model cannot score are
// skipped, as in the paper's plots.
func (c *Context) Correlation(bm *BuiltModel, n int, adjusted bool) ([]CorrPoint, error) {
	models := bm.Models
	saved := models.Adjust
	if !adjusted {
		models.Adjust = nil
	}
	defer func() { models.Adjust = saved }()

	var out []CorrPoint
	for _, cfg := range EvalConfigs() {
		est, err := models.Estimate(cfg, float64(n))
		if err != nil || math.IsInf(est, 0) {
			continue
		}
		r, err := c.Run(cfg, n)
		if err != nil {
			return nil, err
		}
		out = append(out, CorrPoint{
			Config: cfg,
			M1:     cfg.Use[0].Procs,
			Est:    est,
			Meas:   r.WallTime,
		})
	}
	return out, nil
}

// RenderCorrelation prints a correlation scatter with its Pearson r.
func RenderCorrelation(title string, points []CorrPoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "  %14s %4s %12s %12s\n", "config", "M1", "T(est)", "t(meas)")
	for _, p := range points {
		fmt.Fprintf(&b, "  %14s %4d %12.2f %12.2f\n", p.Config, p.M1, p.Est, p.Meas)
	}
	return b.String()
}
