package experiments

import (
	"encoding/csv"
	"strings"
	"testing"

	"hetmodel/internal/cluster"
)

func parseCSV(t *testing.T, s string) [][]string {
	t.Helper()
	records, err := csv.NewReader(strings.NewReader(s)).ReadAll()
	if err != nil {
		t.Fatalf("invalid CSV: %v", err)
	}
	return records
}

func TestWriteSeriesCSV(t *testing.T) {
	series := []Series{
		{Name: "a", X: []float64{1, 2, 3}, Y: []float64{10, 20, 30}},
		{Name: "b", X: []float64{1, 2, 3}, Y: []float64{11, 21}}, // short
	}
	var sb strings.Builder
	if err := WriteSeriesCSV(&sb, "N", series); err != nil {
		t.Fatal(err)
	}
	recs := parseCSV(t, sb.String())
	if len(recs) != 4 {
		t.Fatalf("rows = %d", len(recs))
	}
	if recs[0][0] != "N" || recs[0][1] != "a" || recs[0][2] != "b" {
		t.Fatalf("header = %v", recs[0])
	}
	if recs[3][2] != "" {
		t.Fatalf("short series should pad empty, got %q", recs[3][2])
	}
	// Empty series set still yields a header.
	var sb2 strings.Builder
	if err := WriteSeriesCSV(&sb2, "N", nil); err != nil {
		t.Fatal(err)
	}
	if len(parseCSV(t, sb2.String())) != 1 {
		t.Fatal("empty export should have a header row")
	}
}

func TestWriteEvalTableCSV(t *testing.T) {
	table := &EvalTable{
		Model: "Basic",
		Rows: []EvalRow{{
			N:         3200,
			EstConfig: cluster.Configuration{Use: []cluster.ClassUse{{PEs: 1, Procs: 1}, {}}},
			Tau:       19.8, TauHat: 19.4,
			ActConfig: cluster.Configuration{Use: []cluster.ClassUse{{PEs: 1, Procs: 1}, {}}},
			THat:      19.4, ErrEst: 0.024, ErrExec: 0,
		}},
	}
	var sb strings.Builder
	if err := WriteEvalTableCSV(&sb, table); err != nil {
		t.Fatal(err)
	}
	recs := parseCSV(t, sb.String())
	if len(recs) != 2 || recs[1][0] != "3200" || recs[1][1] != "(1,1,0,0)" {
		t.Fatalf("records = %v", recs)
	}
}

func TestWriteCostTableCSV(t *testing.T) {
	table := &CostTable{
		Campaign: "NS",
		Labels:   []string{"Athlon", "PentiumII"},
		Rows: []CostRow{
			{N: 400, Seconds: map[string]float64{"Athlon": 4.4, "PentiumII": 31}},
		},
	}
	var sb strings.Builder
	if err := WriteCostTableCSV(&sb, table); err != nil {
		t.Fatal(err)
	}
	recs := parseCSV(t, sb.String())
	if len(recs) != 2 || recs[1][2] != "31" {
		t.Fatalf("records = %v", recs)
	}
}

func TestWriteCorrelationCSV(t *testing.T) {
	points := []CorrPoint{{
		Config: cluster.Configuration{Use: []cluster.ClassUse{{PEs: 1, Procs: 2}, {PEs: 8, Procs: 1}}},
		M1:     2, Est: 100.5, Meas: 98.2,
	}}
	var sb strings.Builder
	if err := WriteCorrelationCSV(&sb, points); err != nil {
		t.Fatal(err)
	}
	recs := parseCSV(t, sb.String())
	if len(recs) != 2 || recs[1][0] != "(1,2,8,1)" || recs[1][1] != "2" {
		t.Fatalf("records = %v", recs)
	}
}
