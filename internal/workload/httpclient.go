package workload

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
)

// HTTPClient executes trace requests against a live hetserve over its
// /v1/query endpoint and reads the admission counters the knee detector
// wants from /v1/stats. It is safe for concurrent use; the embedded
// transport keeps enough idle connections for a large replay worker pool.
type HTTPClient struct {
	base string
	hc   *http.Client
}

// NewHTTPClient returns a client for the planner at base
// (e.g. "http://127.0.0.1:8080").
func NewHTTPClient(base string) *HTTPClient {
	return &HTTPClient{
		base: strings.TrimRight(base, "/"),
		hc: &http.Client{
			Transport: &http.Transport{
				MaxIdleConns:        512,
				MaxIdleConnsPerHost: 512,
			},
		},
	}
}

// queryBody mirrors serve.QueryRequest.
type queryBody struct {
	N             int     `json:"n"`
	TopK          int     `json:"topk,omitempty"`
	Classes       []int   `json:"classes,omitempty"`
	MaxTotalProcs int     `json:"maxTotalProcs,omitempty"`
	MaxBytesPerPE float64 `json:"maxBytesPerPE,omitempty"`
	TimeoutMs     int     `json:"timeoutMs,omitempty"`
}

// queryReply is the subset of serve's response the replayer reads.
type queryReply struct {
	Best []struct {
		Tau float64 `json:"tau"`
	} `json:"best"`
}

// Query implements Client: POST /v1/query, returning the HTTP status and
// the rank-1 τ on success. Transport failures come back as Status 0.
func (c *HTTPClient) Query(ctx context.Context, r TraceRequest) QueryOutcome {
	body, err := json.Marshal(queryBody{
		N:             r.N,
		TopK:          r.TopK,
		Classes:       r.Classes,
		MaxTotalProcs: r.MaxTotalProcs,
		MaxBytesPerPE: r.MaxBytesPerPE,
		TimeoutMs:     r.TimeoutMs,
	})
	if err != nil {
		return QueryOutcome{Err: err.Error()}
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/v1/query", bytes.NewReader(body))
	if err != nil {
		return QueryOutcome{Err: err.Error()}
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.hc.Do(req)
	if err != nil {
		return QueryOutcome{Err: err.Error()}
	}
	defer resp.Body.Close()
	out := QueryOutcome{Status: resp.StatusCode}
	if resp.StatusCode >= 200 && resp.StatusCode < 300 {
		var reply queryReply
		if err := json.NewDecoder(resp.Body).Decode(&reply); err != nil {
			return QueryOutcome{Err: fmt.Sprintf("decode response: %v", err)}
		}
		if len(reply.Best) > 0 {
			out.Tau = reply.Best[0].Tau
		}
	} else {
		// Drain so the connection is reusable.
		io.Copy(io.Discard, resp.Body) //nolint:errcheck
	}
	return out
}

// ServerStats is the subset of hetserve's /v1/stats counters the saturation
// sweep snapshots around each load step.
type ServerStats struct {
	Queries          int64 `json:"queries"`
	Completed        int64 `json:"completed"`
	RejectedQueue    int64 `json:"rejectedQueue"`
	RejectedDeadline int64 `json:"rejectedDeadline"`
}

// StatsReader is implemented by clients that can snapshot server-side
// counters; RunSaturation uses it when available.
type StatsReader interface {
	ServerStats(ctx context.Context) (ServerStats, error)
}

// ServerStats implements StatsReader via GET /v1/stats.
func (c *HTTPClient) ServerStats(ctx context.Context) (ServerStats, error) {
	var s ServerStats
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/stats", nil)
	if err != nil {
		return s, fmt.Errorf("workload: %w", err)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return s, fmt.Errorf("workload: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return s, fmt.Errorf("workload: /v1/stats returned %s", resp.Status)
	}
	if err := json.NewDecoder(resp.Body).Decode(&s); err != nil {
		return s, fmt.Errorf("workload: decode /v1/stats: %w", err)
	}
	return s, nil
}
