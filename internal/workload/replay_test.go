package workload_test

import (
	"bytes"
	"context"
	"net/http/httptest"
	"os"
	"sync"
	"testing"

	"hetmodel/internal/cluster"
	"hetmodel/internal/core"
	"hetmodel/internal/serve"
	"hetmodel/internal/workload"
)

// fakeClient answers deterministically from the request payload: tau is a
// pure function of (n, topk), and cohorts can be forced to fixed statuses.
type fakeClient struct {
	statusByCohort map[string]int
	serviceNs      int64 // advance applied to clk per query, when set
	clk            *fakeClock
}

func (f *fakeClient) Query(_ context.Context, r workload.TraceRequest) workload.QueryOutcome {
	if f.clk != nil && f.serviceNs > 0 {
		f.clk.advance(f.serviceNs)
	}
	if s, ok := f.statusByCohort[r.Cohort]; ok && s != 200 {
		return workload.QueryOutcome{Status: s}
	}
	return workload.QueryOutcome{Status: 200, Tau: float64(r.N)*1e-3 + float64(r.TopK)}
}

// fakeClock is a deterministic Clock: SleepUntil jumps straight to the
// target, and the fake client advances it to model service time. Only safe
// with Workers = 1.
type fakeClock struct {
	mu sync.Mutex
	ns int64
}

func (c *fakeClock) NowNs() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ns
}

func (c *fakeClock) advance(d int64) {
	c.mu.Lock()
	c.ns += d
	c.mu.Unlock()
}

func (c *fakeClock) SleepUntil(_ context.Context, atNs int64) error {
	c.mu.Lock()
	if atNs > c.ns {
		c.ns = atNs
	}
	c.mu.Unlock()
	return nil
}

func smokeTrace(t *testing.T) *workload.Trace {
	t.Helper()
	tr, err := workload.Generate(workload.SmokeSpec())
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestVirtualReplayByteStableAcrossWorkers(t *testing.T) {
	tr := smokeTrace(t)
	client := &fakeClient{}
	var golden []byte
	for _, workers := range []int{1, 2, 8, 32} {
		outcomes, err := workload.Replay(context.Background(), client, tr,
			workload.ReplayOptions{Mode: workload.ModeVirtual, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		sum := workload.Summarize(tr, outcomes, workload.SummarizeOptions{Mode: workload.ModeVirtual})
		b, err := sum.Marshal()
		if err != nil {
			t.Fatal(err)
		}
		if golden == nil {
			golden = b
			continue
		}
		if !bytes.Equal(golden, b) {
			t.Fatalf("summary with %d workers differs from 1 worker", workers)
		}
	}
}

// TestSmokeSummaryMatchesCommitted is the in-process version of the CI
// load-smoke gate: replay the committed trace in virtual time against a
// planner serving the committed hetserve fixture model, and require the
// summary to match the committed golden byte for byte.
func TestSmokeSummaryMatchesCommitted(t *testing.T) {
	ms, err := core.LoadModelSetFile("../../cmd/hetserve/testdata/model_nl.json")
	if err != nil {
		t.Fatal(err)
	}
	planner, err := serve.New(ms, cluster.PaperEvaluationSpace(), serve.Options{
		MaxInFlight: 4,
		MaxQueue:    1024,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(planner.Handler())
	defer srv.Close()

	tr, err := workload.ReadTraceFile("testdata/trace_smoke.json")
	if err != nil {
		t.Fatal(err)
	}
	client := workload.NewHTTPClient(srv.URL)
	for _, workers := range []int{1, 8} {
		outcomes, err := workload.Replay(context.Background(), client, tr,
			workload.ReplayOptions{Mode: workload.ModeVirtual, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		got, err := workload.Summarize(tr, outcomes, workload.SummarizeOptions{Mode: workload.ModeVirtual}).Marshal()
		if err != nil {
			t.Fatal(err)
		}
		want, err := os.ReadFile("testdata/summary_smoke.json")
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("workers=%d: replayed summary differs from testdata/summary_smoke.json:\n%s", workers, got)
		}
	}
}

func TestWallReplayPacingAndLatency(t *testing.T) {
	tr := smokeTrace(t)
	clk := &fakeClock{}
	client := &fakeClient{clk: clk, serviceNs: 3e6}
	outcomes, err := workload.Replay(context.Background(), client, tr,
		workload.ReplayOptions{Mode: workload.ModeWall, Workers: 1, Clock: clk})
	if err != nil {
		t.Fatal(err)
	}
	for i := range outcomes {
		if outcomes[i].Status != 200 {
			t.Fatalf("request %d: status %d", i, outcomes[i].Status)
		}
		if outcomes[i].LatencyNs != 3e6 {
			t.Fatalf("request %d: latency %d ns, want the fake 3ms service time", i, outcomes[i].LatencyNs)
		}
	}
	// The clock never runs ahead of schedule by more than the accumulated
	// service time, and the last request fired at or after its offset.
	last := tr.Requests[len(tr.Requests)-1]
	if now := clk.NowNs(); now < last.AtNs {
		t.Errorf("clock %d ns ended before the last arrival %d ns", now, last.AtNs)
	}
	sum := workload.Summarize(tr, outcomes, workload.SummarizeOptions{Mode: workload.ModeWall})
	if sum.Total.P50Ms != 3 || sum.Total.MaxMs != 3 {
		t.Errorf("p50=%g max=%g ms, want 3", sum.Total.P50Ms, sum.Total.MaxMs)
	}
	if sum.Mode != workload.ModeWall {
		t.Errorf("mode %q, want wall", sum.Mode)
	}
}

func TestSummarizeStatusClasses(t *testing.T) {
	tr := smokeTrace(t)
	client := &fakeClient{statusByCohort: map[string]int{
		"batch-topk":  429,
		"constrained": 504,
	}}
	outcomes, err := workload.Replay(context.Background(), client, tr,
		workload.ReplayOptions{Mode: workload.ModeVirtual, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	sum := workload.Summarize(tr, outcomes, workload.SummarizeOptions{Mode: workload.ModeVirtual})
	for _, c := range sum.Cohorts {
		switch c.Cohort {
		case "interactive":
			if c.OK != c.Requests || c.Rejected+c.Deadline+c.Errors != 0 {
				t.Errorf("interactive: %+v, want all ok", c)
			}
		case "batch-topk":
			if c.Rejected != c.Requests || c.OK != 0 {
				t.Errorf("batch-topk: %+v, want all rejected", c)
			}
			if c.P50Ms != 0 {
				t.Errorf("batch-topk: p50 %g over zero successes, want 0", c.P50Ms)
			}
		case "constrained":
			if c.Deadline != c.Requests || c.OK != 0 {
				t.Errorf("constrained: %+v, want all deadline", c)
			}
		}
	}
	if got := sum.Total.OK + sum.Total.Rejected + sum.Total.Deadline; got != sum.Requests {
		t.Errorf("outcome classes sum to %d, want %d", got, sum.Requests)
	}
	if sum.GoodputQPS >= sum.OfferedQPS {
		t.Errorf("goodput %g should fall below offered %g when requests are shed", sum.GoodputQPS, sum.OfferedQPS)
	}
}

func TestReplayRejectsBadOptions(t *testing.T) {
	tr := smokeTrace(t)
	if _, err := workload.Replay(context.Background(), &fakeClient{}, tr,
		workload.ReplayOptions{Mode: "warp"}); err == nil {
		t.Error("unknown mode accepted")
	}
	if _, err := workload.Replay(context.Background(), &fakeClient{}, tr,
		workload.ReplayOptions{Mode: workload.ModeWall}); err == nil {
		t.Error("wall mode without a clock accepted")
	}
}
