package workload

import (
	"bytes"
	"math/rand"
	"os"
	"strings"
	"testing"
)

func testSpec() Spec {
	return Spec{
		Name:       "test",
		Seed:       42,
		DurationNs: 2e9,
		Arrival:    ArrivalSpec{Process: ProcessPoisson, RateQPS: 200},
		Cohorts: []CohortSpec{
			{Name: "a", Weight: 2, Sizes: []int{400, 800, 1600}, SizeDist: SizeZipf, ZipfS: 1.5},
			{Name: "b", Weight: 1, Sizes: []int{3200}, SizeDist: SizeUniform, TopK: 5, TopKRatio: 0.5},
		},
	}
}

func TestTraceRoundTripByteStable(t *testing.T) {
	tr, err := Generate(testSpec())
	if err != nil {
		t.Fatal(err)
	}
	b1, err := tr.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	parsed, err := ParseTrace(b1)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := parsed.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b2) {
		t.Error("marshal -> parse -> re-marshal changed the bytes")
	}
}

func TestGeneratePropertyDeterministic(t *testing.T) {
	// Property: the same (seed, mix, duration) always generates an
	// identical trace, over a randomized family of specs; a different seed
	// changes the requests.
	metaRng := rand.New(rand.NewSource(99))
	processes := []string{ProcessPoisson, ProcessOnOff, ProcessDiurnal}
	for i := 0; i < 25; i++ {
		spec := testSpec()
		spec.Seed = metaRng.Int63n(1 << 30)
		spec.DurationNs = 1e9 + metaRng.Int63n(2e9)
		spec.Arrival.Process = processes[metaRng.Intn(len(processes))]
		spec.Arrival.RateQPS = 50 + 400*metaRng.Float64()
		spec.Arrival.OnNs, spec.Arrival.OffNs = 3e8, 2e8
		spec.Arrival.OffRateQPS = 5
		spec.Arrival.Periods = []PeriodSpec{{PeriodNs: 1e9, Amplitude: 0.8}}
		spec.Cohorts[0].ZipfS = 0.5 + 2*metaRng.Float64()
		spec.Cohorts[1].TopKRatio = metaRng.Float64()

		a, err := Generate(spec)
		if err != nil {
			t.Fatalf("spec %d: %v", i, err)
		}
		b, err := Generate(spec)
		if err != nil {
			t.Fatalf("spec %d: %v", i, err)
		}
		ab, _ := a.Marshal()
		bb, _ := b.Marshal()
		if !bytes.Equal(ab, bb) {
			t.Fatalf("spec %d (process %s): same spec generated different traces", i, spec.Arrival.Process)
		}

		reseeded := spec
		reseeded.Seed++
		c, err := Generate(reseeded)
		if err != nil {
			t.Fatalf("spec %d: %v", i, err)
		}
		cb, _ := c.Marshal()
		if bytes.Equal(ab, cb) {
			t.Fatalf("spec %d: seed change left the trace identical", i)
		}
	}
}

func TestSmokeTraceMatchesCommitted(t *testing.T) {
	committed, err := os.ReadFile("testdata/trace_smoke.json")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ParseTrace(committed); err != nil {
		t.Fatalf("committed smoke trace does not validate: %v", err)
	}
	tr, err := Generate(SmokeSpec())
	if err != nil {
		t.Fatal(err)
	}
	regen, err := tr.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(committed, regen) {
		t.Error("Generate(SmokeSpec()) no longer reproduces testdata/trace_smoke.json; regenerate it with `hetload -gen -smoke` and refresh the golden summary")
	}
}

func TestParseTraceRejects(t *testing.T) {
	valid, err := Generate(testSpec())
	if err != nil {
		t.Fatal(err)
	}
	validBytes, _ := valid.Marshal()

	corrupt := func(from, to string) []byte {
		s := string(validBytes)
		if !strings.Contains(s, from) {
			t.Fatalf("fixture lacks %q", from)
		}
		return []byte(strings.Replace(s, from, to, 1))
	}
	cases := []struct {
		name string
		data []byte
		want string
	}{
		{"not json", []byte("{"), "parse trace"},
		{"wrong schema", corrupt(`"schema": "hetmodel-trace/1"`, `"schema": "hetmodel-trace/999"`), "schema"},
		{"unknown field", corrupt(`"name": "test"`, `"name": "test", "bogus": 1`), "bogus"},
		{"bad size", corrupt(`"n": 3200`, `"n": -3200`), "size"},
		{"trailing data", append(append([]byte{}, validBytes...), []byte("{}")...), "trailing"},
	}
	for _, tc := range cases {
		_, err := ParseTrace(tc.data)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %v, want mention of %q", tc.name, err, tc.want)
		}
	}

	// Out-of-order arrivals reject.
	disordered := *valid
	disordered.Requests = append([]TraceRequest(nil), valid.Requests...)
	if len(disordered.Requests) < 2 {
		t.Fatal("need at least two requests")
	}
	disordered.Requests[0], disordered.Requests[1] = disordered.Requests[1], disordered.Requests[0]
	db, _ := disordered.Marshal()
	if _, err := ParseTrace(db); err == nil || !strings.Contains(err.Error(), "arrives before") {
		t.Errorf("out-of-order arrivals: error %v, want ordering complaint", err)
	}
}

func TestSpecValidate(t *testing.T) {
	bad := []func(*Spec){
		func(s *Spec) { s.Name = "" },
		func(s *Spec) { s.DurationNs = 0 },
		func(s *Spec) { s.Arrival.Process = "lunar" },
		func(s *Spec) { s.Arrival.RateQPS = 0 },
		func(s *Spec) { s.Cohorts = nil },
		func(s *Spec) { s.Cohorts[0].Weight = -1 },
		func(s *Spec) { s.Cohorts[0].Sizes = nil },
		func(s *Spec) { s.Cohorts[0].Sizes = []int{0} },
		func(s *Spec) { s.Cohorts[0].SizeDist = "normal" },
		func(s *Spec) { s.Cohorts[0].ZipfS = 0 },
		func(s *Spec) { s.Cohorts[1].TopKRatio = 1.5 },
		func(s *Spec) { s.Cohorts[1].TopK = 1 },
		func(s *Spec) { s.Cohorts[1].Name = "a" },
	}
	for i, mutate := range bad {
		spec := testSpec()
		mutate(&spec)
		if err := spec.Validate(); err == nil {
			t.Errorf("mutation %d: invalid spec validated", i)
		}
	}
	spec := testSpec()
	if err := spec.Validate(); err != nil {
		t.Errorf("valid spec rejected: %v", err)
	}
}
