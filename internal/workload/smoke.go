package workload

// SmokeSpec is the committed CI workload: a small bursty trace over the
// hetserve fixture model (cmd/hetserve/testdata/model_nl.json) exercising
// all three cohort features — Zipf hot-N skew, best-vs-top-K mixing, and a
// constraint profile. Generate(SmokeSpec()) must reproduce
// internal/workload/testdata/trace_smoke.json byte for byte (tested, and
// cross-checked end-to-end by scripts/load_smoke.sh); regenerate the
// fixture with `hetload -gen -smoke` after changing anything here.
func SmokeSpec() Spec {
	return Spec{
		Name:       "smoke",
		Seed:       1004, // the paper's conference year, like the repo's other fixtures
		DurationNs: 4e9,
		Arrival: ArrivalSpec{
			Process:    ProcessOnOff,
			RateQPS:    50,
			OffRateQPS: 5,
			OnNs:       1e9,
			OffNs:      1e9,
		},
		Cohorts: []CohortSpec{
			{
				// Interactive lookups: hot small sizes, single best.
				Name:     "interactive",
				Weight:   0.6,
				Sizes:    []int{1600, 3200, 4800, 6400, 9600},
				SizeDist: SizeZipf,
				ZipfS:    1.2,
			},
			{
				// Capacity planning: large sizes, always ranked top-5.
				Name:      "batch-topk",
				Weight:    0.3,
				Sizes:     []int{6400, 9600},
				SizeDist:  SizeUniform,
				TopK:      5,
				TopKRatio: 1,
			},
			{
				// Constrained placement: Pentium-only sub-cluster, capped
				// process count, half the requests ranked.
				Name:          "constrained",
				Weight:        0.1,
				Sizes:         []int{3200, 6400},
				SizeDist:      SizeUniform,
				TopK:          3,
				TopKRatio:     0.5,
				Classes:       []int{1},
				MaxTotalProcs: 8,
			},
		},
	}
}

// SaturationCohorts is the query mix for saturation sweeps: a single cohort
// drawing uniformly from hundreds of distinct problem sizes. The high size
// cardinality keeps the planner's batcher from coalescing concurrent
// queries, so every request costs a full admission slot and the
// admission-control knee reflects per-query capacity rather than batch
// amplification (pair it with hetserve's -grind knob; see
// scripts/saturation.sh).
func SaturationCohorts() []CohortSpec {
	sizes := make([]int, 768)
	for i := range sizes {
		sizes[i] = 400 + 16*i
	}
	return []CohortSpec{{
		Name:     "sweep",
		Weight:   1,
		Sizes:    sizes,
		SizeDist: SizeUniform,
	}}
}
