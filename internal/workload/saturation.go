package workload

import (
	"context"
	"encoding/json"
	"fmt"
	"os"

	"hetmodel/internal/plot"
)

// SaturationSchema versions the saturation report format.
const SaturationSchema = "hetmodel-saturation/1"

// SaturationSpec configures a saturation sweep: the same query mix replayed
// wall-clock at each offered-load step, lowest rate first.
type SaturationSpec struct {
	// Seed drives the per-step trace generation (step i uses Seed+i).
	Seed int64 `json:"seed"`
	// RatesQPS are the offered-load steps, strictly increasing (> 0).
	RatesQPS []float64 `json:"ratesQps"`
	// StepNs is the duration of each step (> 0).
	StepNs int64 `json:"stepNs"`
	// Cohorts shape the query mix of every step.
	Cohorts []CohortSpec `json:"cohorts"`
	// Workers bounds in-flight requests per step (<= 0 selects 256 — the
	// pool must never pace the trace, see ReplayOptions.Workers).
	Workers int `json:"workers,omitempty"`
}

// Validate checks the sweep parameters.
func (s *SaturationSpec) Validate() error {
	if len(s.RatesQPS) == 0 {
		return fmt.Errorf("workload: saturation needs at least one rate")
	}
	prev := 0.0
	for i, r := range s.RatesQPS {
		if r <= prev {
			return fmt.Errorf("workload: saturation rates must be strictly increasing and positive (step %d: %g after %g)", i, r, prev)
		}
		prev = r
	}
	if s.StepNs <= 0 {
		return fmt.Errorf("workload: saturation step %d ns, want > 0", s.StepNs)
	}
	probe := Spec{
		Name:       "saturation-probe",
		Seed:       s.Seed,
		DurationNs: s.StepNs,
		Arrival:    ArrivalSpec{Process: ProcessPoisson, RateQPS: s.RatesQPS[0]},
		Cohorts:    s.Cohorts,
	}
	return probe.Validate()
}

// SaturationStep is one offered-load measurement.
type SaturationStep struct {
	OfferedQPS float64 `json:"offeredQps"`
	Requests   int     `json:"requests"`
	OK         int     `json:"ok"`
	Rejected   int     `json:"rejected"`
	Deadline   int     `json:"deadline"`
	Errors     int     `json:"errors"`
	GoodputQPS float64 `json:"goodputQps"`
	P50Ms      float64 `json:"p50Ms"`
	P95Ms      float64 `json:"p95Ms"`
	P99Ms      float64 `json:"p99Ms"`
	// Server-side deltas over the step from /v1/stats, when the client
	// implements StatsReader: completed queries and admission rejections
	// (queue-full plus deadline-expired). They cross-check the client view.
	ServerCompleted int64 `json:"serverCompleted,omitempty"`
	ServerRejected  int64 `json:"serverRejected,omitempty"`
}

// SaturationReport is the sweep result: the goodput-vs-offered-load curve
// plus the detected admission-control knee.
type SaturationReport struct {
	Schema string           `json:"schema"`
	Seed   int64            `json:"seed"`
	StepNs int64            `json:"stepNs"`
	Steps  []SaturationStep `json:"steps"`
	// KneeIndex is the first step where goodput flattens while rejections
	// rise (-1 when the sweep never saturates); KneeQPS is that step's
	// offered load.
	KneeIndex int     `json:"kneeIndex"`
	KneeQPS   float64 `json:"kneeQps,omitempty"`
}

// kneeGrowth is the relative goodput gain below which a step counts as
// "flat": the knee is the first step that gains less than 5% goodput over
// its predecessor while rejections rise, even though offered load grew.
const kneeGrowth = 0.05

// DetectKnee returns the index of the admission-control knee in a sweep
// ordered by increasing offered load, or -1. The knee is the first step
// whose goodput gain over the previous step falls under kneeGrowth while
// its rejection count (client-observed 429s plus deadline 504s) exceeds the
// previous step's — i.e. the server is shedding the added load instead of
// serving it.
func DetectKnee(steps []SaturationStep) int {
	for i := 1; i < len(steps); i++ {
		prev, cur := &steps[i-1], &steps[i]
		flat := cur.GoodputQPS < prev.GoodputQPS*(1+kneeGrowth)
		shedding := cur.Rejected+cur.Deadline > prev.Rejected+prev.Deadline
		if flat && shedding {
			return i
		}
	}
	return -1
}

// RunSaturation sweeps the offered-load steps: per step it generates a
// Poisson trace of the spec's mix at that rate, replays it open-loop on the
// clock, and records goodput, rejection counts, and latency quantiles. When
// the client also implements StatsReader, server-side admission counters
// are snapshotted around each step. Steps run lowest rate first so earlier
// steps warm caches for later ones, not the reverse.
func RunSaturation(ctx context.Context, client Client, clock Clock, spec SaturationSpec) (*SaturationReport, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if clock == nil {
		return nil, fmt.Errorf("workload: saturation needs a clock")
	}
	report := &SaturationReport{
		Schema:    SaturationSchema,
		Seed:      spec.Seed,
		StepNs:    spec.StepNs,
		Steps:     make([]SaturationStep, 0, len(spec.RatesQPS)),
		KneeIndex: -1,
	}
	statsReader, _ := client.(StatsReader)
	for i, rate := range spec.RatesQPS {
		trace, err := Generate(Spec{
			Name:       fmt.Sprintf("saturation-step-%d", i),
			Seed:       spec.Seed + int64(i),
			DurationNs: spec.StepNs,
			Arrival:    ArrivalSpec{Process: ProcessPoisson, RateQPS: rate},
			Cohorts:    spec.Cohorts,
		})
		if err != nil {
			return nil, err
		}
		var before ServerStats
		if statsReader != nil {
			if before, err = statsReader.ServerStats(ctx); err != nil {
				return nil, err
			}
		}
		outcomes, err := Replay(ctx, client, trace, ReplayOptions{
			Mode:    ModeWall,
			Workers: spec.Workers,
			Clock:   clock,
		})
		if err != nil {
			return nil, err
		}
		sum := Summarize(trace, outcomes, SummarizeOptions{Mode: ModeWall})
		step := SaturationStep{
			OfferedQPS: rate,
			Requests:   sum.Requests,
			OK:         sum.Total.OK,
			Rejected:   sum.Total.Rejected,
			Deadline:   sum.Total.Deadline,
			Errors:     sum.Total.Errors,
			GoodputQPS: sum.GoodputQPS,
			P50Ms:      sum.Total.P50Ms,
			P95Ms:      sum.Total.P95Ms,
			P99Ms:      sum.Total.P99Ms,
		}
		if statsReader != nil {
			after, err := statsReader.ServerStats(ctx)
			if err != nil {
				return nil, err
			}
			step.ServerCompleted = after.Completed - before.Completed
			step.ServerRejected = (after.RejectedQueue + after.RejectedDeadline) -
				(before.RejectedQueue + before.RejectedDeadline)
		}
		report.Steps = append(report.Steps, step)
	}
	report.KneeIndex = DetectKnee(report.Steps)
	if report.KneeIndex >= 0 {
		report.KneeQPS = report.Steps[report.KneeIndex].OfferedQPS
	}
	return report, nil
}

// Marshal renders the report in canonical byte form.
func (r *SaturationReport) Marshal() ([]byte, error) {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("workload: marshal saturation report: %w", err)
	}
	return append(b, '\n'), nil
}

// WriteFile writes the canonical report.
func (r *SaturationReport) WriteFile(path string) error {
	b, err := r.Marshal()
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, b, 0o644); err != nil {
		return fmt.Errorf("workload: %w", err)
	}
	return nil
}

// SVG renders the goodput-vs-offered-load curve with the per-second
// rejection rate on the same axes and the knee, when detected, marked as a
// scatter point.
func (r *SaturationReport) SVG() (string, error) {
	c := plot.New("Goodput vs offered load", "offered load [qps]", "rate [qps]")
	stepSec := float64(r.StepNs) / 1e9
	offered := make([]float64, len(r.Steps))
	goodput := make([]float64, len(r.Steps))
	rejected := make([]float64, len(r.Steps))
	for i := range r.Steps {
		offered[i] = r.Steps[i].OfferedQPS
		goodput[i] = r.Steps[i].GoodputQPS
		if stepSec > 0 {
			rejected[i] = float64(r.Steps[i].Rejected+r.Steps[i].Deadline) / stepSec
		}
	}
	c.Line("goodput", offered, goodput)
	c.Line("rejected/s", offered, rejected)
	if r.KneeIndex >= 0 {
		c.Scatter("knee", []float64{r.KneeQPS}, []float64{r.Steps[r.KneeIndex].GoodputQPS})
	}
	return c.SVG()
}
