package workload_test

import (
	"context"
	"strings"
	"sync"
	"testing"

	"hetmodel/internal/workload"
)

func step(offered, goodput float64, rejected int) workload.SaturationStep {
	return workload.SaturationStep{OfferedQPS: offered, GoodputQPS: goodput, Rejected: rejected}
}

func TestDetectKnee(t *testing.T) {
	cases := []struct {
		name  string
		steps []workload.SaturationStep
		want  int
	}{
		{"classic knee", []workload.SaturationStep{
			step(100, 100, 0), step(200, 198, 0), step(400, 390, 2), step(800, 395, 350), step(1600, 396, 1100),
		}, 3},
		{"never saturates", []workload.SaturationStep{
			step(100, 100, 0), step(200, 199, 0), step(400, 398, 0),
		}, -1},
		{"flat but not shedding", []workload.SaturationStep{
			// Goodput stalls without rejections (a client-side bottleneck):
			// not an admission knee.
			step(100, 100, 0), step(200, 101, 0),
		}, -1},
		{"shedding but still scaling", []workload.SaturationStep{
			// A few rejections while goodput keeps growing > 5%.
			step(100, 100, 0), step(200, 190, 5),
		}, -1},
		{"empty", nil, -1},
		{"single step", []workload.SaturationStep{step(100, 100, 0)}, -1},
	}
	for _, tc := range cases {
		if got := workload.DetectKnee(tc.steps); got != tc.want {
			t.Errorf("%s: knee %d, want %d", tc.name, got, tc.want)
		}
	}
}

// capacityClient models a server with a hard service capacity: it serves
// the first capacity requests of each step and rejects the rest with 429.
// Replayed at increasing rates this produces a textbook saturation curve.
type capacityClient struct {
	mu       sync.Mutex
	capacity int
	inStep   int
	stats    workload.ServerStats
}

func (c *capacityClient) Query(_ context.Context, r workload.TraceRequest) workload.QueryOutcome {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.stats.Queries++
	c.inStep++
	if c.inStep > c.capacity {
		c.stats.RejectedQueue++
		return workload.QueryOutcome{Status: 429}
	}
	c.stats.Completed++
	return workload.QueryOutcome{Status: 200, Tau: float64(r.N) * 1e-3}
}

func (c *capacityClient) ServerStats(context.Context) (workload.ServerStats, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.inStep = 0 // stats are read between steps; reset the per-step budget
	return c.stats, nil
}

func TestRunSaturationFindsKnee(t *testing.T) {
	client := &capacityClient{capacity: 300}
	spec := workload.SaturationSpec{
		Seed:     5,
		RatesQPS: []float64{100, 200, 400, 800, 1600},
		StepNs:   1e9,
		Cohorts:  []workload.CohortSpec{{Name: "c", Weight: 1, Sizes: []int{400}, SizeDist: workload.SizeUniform}},
		Workers:  1,
	}
	report, err := workload.RunSaturation(context.Background(), client, &fakeClock{}, spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Steps) != 5 {
		t.Fatalf("%d steps, want 5", len(report.Steps))
	}
	for i, s := range report.Steps {
		if s.Requests == 0 {
			t.Fatalf("step %d replayed no requests", i)
		}
		if s.OK > 300 {
			t.Fatalf("step %d served %d > capacity 300", i, s.OK)
		}
		if s.ServerCompleted != int64(s.OK) || s.ServerRejected != int64(s.Rejected) {
			t.Errorf("step %d: server deltas (%d, %d) disagree with client view (%d, %d)",
				i, s.ServerCompleted, s.ServerRejected, s.OK, s.Rejected)
		}
	}
	if report.KneeIndex < 0 {
		t.Fatal("no knee over a hard 300-request capacity")
	}
	knee := report.Steps[report.KneeIndex]
	if knee.Rejected == 0 {
		t.Error("knee step saw no rejections")
	}
	if report.KneeQPS != knee.OfferedQPS {
		t.Errorf("KneeQPS %g != knee step offered %g", report.KneeQPS, knee.OfferedQPS)
	}

	// The report renders: curve with a knee marker.
	svg, err := report.SVG()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"goodput", "rejected/s", "knee"} {
		if !strings.Contains(svg, want) {
			t.Errorf("SVG lacks %q series", want)
		}
	}
}

func TestSaturationSpecValidate(t *testing.T) {
	good := workload.SaturationSpec{
		RatesQPS: []float64{10, 20},
		StepNs:   1e9,
		Cohorts:  []workload.CohortSpec{{Name: "c", Weight: 1, Sizes: []int{400}, SizeDist: workload.SizeUniform}},
	}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	bad := []workload.SaturationSpec{
		{StepNs: 1e9, Cohorts: good.Cohorts},                              // no rates
		{RatesQPS: []float64{20, 10}, StepNs: 1e9, Cohorts: good.Cohorts}, // decreasing
		{RatesQPS: []float64{10, 20}, Cohorts: good.Cohorts},              // no step
		{RatesQPS: []float64{10, 20}, StepNs: 1e9},                        // no cohorts
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("bad spec %d validated", i)
		}
	}
}
