package workload

import (
	"math"
	"math/rand"
)

// This file holds the seeded arrival processes. Each generator returns
// sorted arrival offsets in nanoseconds within [0, durationNs), driven
// entirely by the provided *rand.Rand — no wall clock, no global source —
// so the same seed always yields the same arrivals.

// arrivals dispatches on the (already validated) spec.
func arrivals(rng *rand.Rand, a ArrivalSpec, durationNs int64) []int64 {
	switch a.Process {
	case ProcessOnOff:
		return onOffArrivals(rng, a, durationNs)
	case ProcessDiurnal:
		return diurnalArrivals(rng, a, durationNs)
	default:
		return poissonArrivals(rng, a.RateQPS, 0, durationNs)
	}
}

// poissonArrivals generates a homogeneous Poisson process at rate qps over
// [startNs, endNs): exponential inter-arrival times accumulated in float
// seconds, converted to integer offsets at the end of each step.
func poissonArrivals(rng *rand.Rand, qps float64, startNs, endNs int64) []int64 {
	if qps <= 0 || endNs <= startNs {
		return nil
	}
	var out []int64
	t := float64(startNs) / 1e9
	end := float64(endNs) / 1e9
	for {
		t += rng.ExpFloat64() / qps
		if t >= end {
			return out
		}
		out = append(out, int64(math.Round(t*1e9)))
	}
}

// onOffArrivals alternates fixed-length on/off phases starting with an on
// phase at t = 0; each phase is an independent Poisson window at that
// phase's rate (a piecewise-homogeneous Poisson process).
func onOffArrivals(rng *rand.Rand, a ArrivalSpec, durationNs int64) []int64 {
	var out []int64
	on := true
	for start := int64(0); start < durationNs; {
		phaseLen := a.OnNs
		rate := a.RateQPS
		if !on {
			phaseLen = a.OffNs
			rate = a.OffRateQPS
		}
		end := start + phaseLen
		if end > durationNs {
			end = durationNs
		}
		out = append(out, poissonArrivals(rng, rate, start, end)...)
		start = end
		on = !on
	}
	return out
}

// diurnalRate evaluates the instantaneous rate of the diurnal profile at
// offset tNs: the base rate modulated by the sum of sinusoidal components,
// clamped at zero.
func diurnalRate(a ArrivalSpec, tNs int64) float64 {
	mod := 1.0
	for _, p := range a.Periods {
		mod += p.Amplitude * math.Sin(2*math.Pi*float64(tNs)/float64(p.PeriodNs)+p.PhaseRad)
	}
	if mod < 0 {
		mod = 0
	}
	return a.RateQPS * mod
}

// diurnalArrivals generates an inhomogeneous Poisson process whose rate is
// the multi-period diurnal profile, by Lewis–Shedler thinning: homogeneous
// candidates at the profile's peak rate, each accepted with probability
// rate(t)/peak.
func diurnalArrivals(rng *rand.Rand, a ArrivalSpec, durationNs int64) []int64 {
	peakMod := 1.0
	for _, p := range a.Periods {
		peakMod += p.Amplitude
	}
	peak := a.RateQPS * peakMod
	if peak <= 0 {
		return nil
	}
	var out []int64
	t := 0.0
	end := float64(durationNs) / 1e9
	for {
		t += rng.ExpFloat64() / peak
		if t >= end {
			return out
		}
		atNs := int64(math.Round(t * 1e9))
		// The acceptance draw is taken unconditionally so the stream of
		// random numbers consumed is a pure function of the candidate count.
		u := rng.Float64()
		if u*peak < diurnalRate(a, atNs) {
			out = append(out, atNs)
		}
	}
}
