package workload

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"sync"

	"hetmodel/internal/stats"
)

// SummarySchema versions the replay summary format.
const SummarySchema = "hetmodel-loadsummary/1"

// Replay modes.
const (
	// ModeVirtual replays without pacing or a clock: requests fire in
	// arrival order through the worker pool and each request's latency is
	// defined as its response's τ — the model-estimated execution time —
	// converted to nanoseconds. Every field of the resulting summary is a
	// pure function of (trace, model), byte-identical across runs and
	// worker counts, which is what lets a replayed summary gate CI.
	ModeVirtual = "virtual"
	// ModeWall replays open-loop on the injected clock: each request fires
	// at start + AtNs regardless of whether earlier responses returned
	// (no coordinated omission), and latency is measured on the clock.
	ModeWall = "wall"
)

// Clock paces wall-mode replay. cmd/hetload supplies the real clock; tests
// supply a virtual one, which keeps the package itself free of wall-clock
// reads (hetlint nodeterm scope).
type Clock interface {
	// NowNs returns the current time in nanoseconds. Only differences and
	// orderings matter; any epoch works.
	NowNs() int64
	// SleepUntil blocks until NowNs() >= atNs or the context ends. A
	// target already in the past returns immediately.
	SleepUntil(ctx context.Context, atNs int64) error
}

// QueryOutcome is what a Client observed for one request.
type QueryOutcome struct {
	// Status is the HTTP status code, or 0 for a transport error.
	Status int
	// Tau is the response's rank-1 estimated execution time in seconds
	// (0 unless Status is 2xx).
	Tau float64
	// Err carries the transport error text (diagnostics only; summaries
	// count it under errors).
	Err string
}

// Client executes one trace request against a planner. Implementations must
// be safe for concurrent use; HTTPClient is the live-server implementation.
type Client interface {
	Query(ctx context.Context, r TraceRequest) QueryOutcome
}

// Outcome is one replayed request: the trace request identity plus what
// happened to it.
type Outcome struct {
	Index     int
	Cohort    string
	AtNs      int64
	Status    int
	LatencyNs int64
	Tau       float64
}

// ReplayOptions configures Replay.
type ReplayOptions struct {
	// Mode is ModeVirtual or ModeWall (empty selects ModeVirtual).
	Mode string
	// Workers bounds in-flight requests (<= 0 selects 1). Open-loop
	// measurement wants this well above the expected in-flight count so
	// the pool never paces the trace; virtual-mode summaries do not depend
	// on it (tested).
	Workers int
	// Clock is required in ModeWall and ignored in ModeVirtual.
	Clock Clock
}

// Replay fires every request of the trace through the client and returns
// the outcomes indexed exactly like trace.Requests. In wall mode the
// dispatch is open-loop: request i fires at start + AtNs even while earlier
// requests are still in flight, so overload shows up as server rejections
// and growing latency, never as silently reduced offered load. Replay stops
// early (returning the error) only when the context ends.
func Replay(ctx context.Context, client Client, trace *Trace, opts ReplayOptions) ([]Outcome, error) {
	mode := opts.Mode
	if mode == "" {
		mode = ModeVirtual
	}
	if mode != ModeVirtual && mode != ModeWall {
		return nil, fmt.Errorf("workload: unknown replay mode %q", mode)
	}
	if mode == ModeWall && opts.Clock == nil {
		return nil, fmt.Errorf("workload: wall-mode replay needs a clock")
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = 1
	}

	outcomes := make([]Outcome, len(trace.Requests))
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	var startNs int64
	if mode == ModeWall {
		startNs = opts.Clock.NowNs()
	}

	for i := range trace.Requests {
		req := &trace.Requests[i]
		if mode == ModeWall {
			if err := opts.Clock.SleepUntil(ctx, startNs+req.AtNs); err != nil {
				wg.Wait()
				return outcomes, fmt.Errorf("workload: replay interrupted at request %d: %w", i, err)
			}
		}
		select {
		case sem <- struct{}{}:
		case <-ctx.Done():
			wg.Wait()
			return outcomes, fmt.Errorf("workload: replay interrupted at request %d: %w", i, ctx.Err())
		}
		wg.Add(1)
		go func(i int, req TraceRequest) {
			defer wg.Done()
			defer func() { <-sem }()
			var sentNs int64
			if mode == ModeWall {
				sentNs = opts.Clock.NowNs()
			}
			q := client.Query(ctx, req)
			var latency int64
			if mode == ModeWall {
				latency = opts.Clock.NowNs() - sentNs
			} else if q.Status >= 200 && q.Status < 300 {
				latency = int64(math.Round(q.Tau * 1e9))
			}
			outcomes[i] = Outcome{
				Index:     i,
				Cohort:    req.Cohort,
				AtNs:      req.AtNs,
				Status:    q.Status,
				LatencyNs: latency,
				Tau:       q.Tau,
			}
		}(i, *req)
	}
	wg.Wait()
	return outcomes, nil
}

// CohortSummary aggregates one cohort's outcomes (or, for the total row,
// every outcome). Latency quantiles are over successful requests only, in
// milliseconds: measured in wall mode, τ-derived in virtual mode.
type CohortSummary struct {
	Cohort   string `json:"cohort"`
	Requests int    `json:"requests"`
	// Outcome classes: OK is any 2xx, Rejected is 429 (admission queue
	// full), Deadline is 504 (deadline expired in queue), Errors is
	// everything else including transport failures.
	OK       int `json:"ok"`
	Rejected int `json:"rejected"`
	Deadline int `json:"deadline"`
	Errors   int `json:"errors"`
	// Nearest-rank latency quantiles in milliseconds (0 when no request
	// succeeded).
	P50Ms float64 `json:"p50Ms"`
	P95Ms float64 `json:"p95Ms"`
	P99Ms float64 `json:"p99Ms"`
	MaxMs float64 `json:"maxMs"`
}

// Summary is the deterministic end-of-replay report: per-cohort sections in
// name order plus a total row, with offered load and goodput computed
// against the trace horizon (not wall time), so the same trace and model
// always produce identical bytes in virtual mode.
type Summary struct {
	Schema   string `json:"schema"`
	Trace    string `json:"trace"`
	Seed     int64  `json:"seed"`
	Mode     string `json:"mode"`
	Requests int    `json:"requests"`
	// OfferedQPS is Requests over the trace horizon; GoodputQPS counts
	// only successful requests.
	OfferedQPS float64         `json:"offeredQps"`
	GoodputQPS float64         `json:"goodputQps"`
	Cohorts    []CohortSummary `json:"cohorts"`
	Total      CohortSummary   `json:"total"`
}

// SummarizeOptions configures Summarize.
type SummarizeOptions struct {
	// Mode labels the summary (ModeVirtual or ModeWall; empty selects
	// ModeVirtual). It must match the mode the outcomes were replayed in.
	Mode string
	// ReservoirCap bounds the per-cohort quantile reservoirs (<= 0 selects
	// 4096). Streams within the cap give exact quantiles; the smoke traces
	// CI diffs stay far below it.
	ReservoirCap int
}

// Summarize reduces replay outcomes to the deterministic Summary. Outcomes
// are consumed in request-index order regardless of how many workers
// produced them, so the result never depends on replay concurrency.
func Summarize(trace *Trace, outcomes []Outcome, opts SummarizeOptions) *Summary {
	mode := opts.Mode
	if mode == "" {
		mode = ModeVirtual
	}
	names := make([]string, 0, 8)
	seen := make(map[string]bool, 8)
	for i := range trace.Requests {
		if c := trace.Requests[i].Cohort; !seen[c] {
			seen[c] = true
			names = append(names, c)
		}
	}
	// Cohorts report in first-appearance order of the trace, which is
	// itself deterministic; the map above only dedups.
	agg := make(map[string]*cohortAgg, len(names))
	for i, name := range names {
		agg[name] = newCohortAgg(name, opts.ReservoirCap, trace.Seed+int64(i)+1)
	}
	total := newCohortAgg("total", opts.ReservoirCap, trace.Seed)
	for i := range outcomes {
		o := &outcomes[i]
		agg[o.Cohort].add(o)
		total.add(o)
	}

	s := &Summary{
		Schema:   SummarySchema,
		Trace:    trace.Name,
		Seed:     trace.Seed,
		Mode:     mode,
		Requests: len(outcomes),
		Cohorts:  make([]CohortSummary, len(names)),
		Total:    total.summary(),
	}
	durationSec := float64(trace.DurationNs) / 1e9
	if durationSec > 0 {
		s.OfferedQPS = float64(len(outcomes)) / durationSec
		s.GoodputQPS = float64(s.Total.OK) / durationSec
	}
	for i, name := range names {
		s.Cohorts[i] = agg[name].summary()
	}
	return s
}

type cohortAgg struct {
	out CohortSummary
	res *stats.QuantileReservoir
}

func newCohortAgg(name string, capacity int, seed int64) *cohortAgg {
	return &cohortAgg{
		out: CohortSummary{Cohort: name},
		res: stats.NewQuantileReservoir(capacity, seed),
	}
}

func (a *cohortAgg) add(o *Outcome) {
	a.out.Requests++
	switch {
	case o.Status >= 200 && o.Status < 300:
		a.out.OK++
		a.res.Add(float64(o.LatencyNs) / 1e6)
	case o.Status == 429:
		a.out.Rejected++
	case o.Status == 504:
		a.out.Deadline++
	default:
		a.out.Errors++
	}
}

func (a *cohortAgg) summary() CohortSummary {
	s := a.out
	if a.res.Count() > 0 {
		s.P50Ms = a.res.Quantile(0.50)
		s.P95Ms = a.res.Quantile(0.95)
		s.P99Ms = a.res.Quantile(0.99)
		s.MaxMs = a.res.Max()
	}
	return s
}

// Marshal renders the summary in its canonical byte form (two-space
// indented JSON, trailing newline) — the form load_smoke.sh diffs against
// the committed golden.
func (s *Summary) Marshal() ([]byte, error) {
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("workload: marshal summary: %w", err)
	}
	return append(b, '\n'), nil
}
