package workload

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"os"
)

// TraceSchema is the versioned identifier every trace carries. Bump the
// suffix when the format changes shape; ParseTrace rejects anything else.
const TraceSchema = "hetmodel-trace/1"

// TraceRequest is one scheduled planner request: an arrival offset plus the
// query payload a replay driver sends to /v1/query. Field names match the
// serve.QueryRequest JSON they are forwarded into.
type TraceRequest struct {
	// AtNs is the arrival offset from the start of the trace (>= 0,
	// non-decreasing across the trace).
	AtNs int64 `json:"atNs"`
	// Cohort names the CohortSpec that generated the request; summaries
	// aggregate by it.
	Cohort string `json:"cohort"`
	// N is the problem size (> 0).
	N int `json:"n"`
	// TopK asks for the ranked K best when > 0 (0 = single best).
	TopK int `json:"topk,omitempty"`
	// Constraint profile (see serve.Constraints).
	Classes       []int   `json:"classes,omitempty"`
	MaxTotalProcs int     `json:"maxTotalProcs,omitempty"`
	MaxBytesPerPE float64 `json:"maxBytesPerPE,omitempty"`
	// TimeoutMs bounds the server-side admission wait.
	TimeoutMs int `json:"timeoutMs,omitempty"`
}

// Trace is a replayable workload: a header identifying how it was made and
// the scheduled requests in arrival order.
type Trace struct {
	Schema string `json:"schema"`
	Name   string `json:"name"`
	Seed   int64  `json:"seed"`
	// DurationNs is the trace horizon; offered load is Requests/Duration.
	DurationNs int64 `json:"durationNs"`
	// Spec records the generator input when the trace was generated (nil
	// for hand-written traces).
	Spec     *Spec          `json:"spec,omitempty"`
	Requests []TraceRequest `json:"requests"`
}

// Generate expands a Spec into a Trace. The result is a pure function of the
// spec: the same (seed, arrival, mix, duration) always yields byte-identical
// Marshal output. Arrival times and mix draws come from two independent
// seeded streams so reshaping the mix never moves the arrivals.
func Generate(spec Spec) (*Trace, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	// splitmix64-style derivation keeps the two streams decorrelated even
	// for adjacent seeds.
	arrivalRng := rand.New(rand.NewSource(spec.Seed))
	mixRng := rand.New(rand.NewSource(spec.Seed ^ 0x61c8864680b583eb))

	ats := arrivals(arrivalRng, spec.Arrival, spec.DurationNs)
	mix := newMixer(spec.Cohorts)
	reqs := make([]TraceRequest, len(ats))
	for i, at := range ats {
		reqs[i] = mix.draw(mixRng, at)
	}
	specCopy := spec
	return &Trace{
		Schema:     TraceSchema,
		Name:       spec.Name,
		Seed:       spec.Seed,
		DurationNs: spec.DurationNs,
		Spec:       &specCopy,
		Requests:   reqs,
	}, nil
}

// mixer precomputes the cumulative cohort weights and per-cohort size CDFs
// so each draw is a few uniform variates.
type mixer struct {
	cohorts []CohortSpec
	cumW    []float64 // cumulative cohort weights, normalized to 1
	sizeCDF [][]float64
}

func newMixer(cohorts []CohortSpec) *mixer {
	m := &mixer{cohorts: cohorts}
	var total float64
	for i := range cohorts {
		total += cohorts[i].Weight
	}
	m.cumW = make([]float64, len(cohorts))
	acc := 0.0
	for i := range cohorts {
		acc += cohorts[i].Weight / total
		m.cumW[i] = acc
	}
	m.cumW[len(m.cumW)-1] = 1
	m.sizeCDF = make([][]float64, len(cohorts))
	for i := range cohorts {
		c := &cohorts[i]
		cdf := make([]float64, len(c.Sizes))
		var sum float64
		for j := range c.Sizes {
			w := 1.0
			if c.SizeDist == SizeZipf {
				// Rank-based Zipf: Sizes[0] is the hot size.
				w = 1 / math.Pow(float64(j+1), c.ZipfS)
			}
			sum += w
			cdf[j] = sum
		}
		for j := range cdf {
			cdf[j] /= sum
		}
		cdf[len(cdf)-1] = 1
		m.sizeCDF[i] = cdf
	}
	return m
}

func (m *mixer) draw(rng *rand.Rand, atNs int64) TraceRequest {
	ci := searchCDF(m.cumW, rng.Float64())
	c := &m.cohorts[ci]
	si := searchCDF(m.sizeCDF[ci], rng.Float64())
	// The top-K draw is taken unconditionally so request payloads of one
	// cohort never shift when another cohort's ratio changes.
	topDraw := rng.Float64()
	topk := 0
	if c.TopKRatio > 0 && topDraw < c.TopKRatio {
		topk = c.TopK
	}
	return TraceRequest{
		AtNs:          atNs,
		Cohort:        c.Name,
		N:             c.Sizes[si],
		TopK:          topk,
		Classes:       c.Classes,
		MaxTotalProcs: c.MaxTotalProcs,
		MaxBytesPerPE: c.MaxBytesPerPE,
		TimeoutMs:     c.TimeoutMs,
	}
}

// searchCDF returns the first index whose cumulative value exceeds u.
func searchCDF(cdf []float64, u float64) int {
	for i, c := range cdf {
		if u < c {
			return i
		}
	}
	return len(cdf) - 1
}

// Marshal renders the trace in its canonical byte form: two-space indented
// JSON with a trailing newline. Parse followed by Marshal reproduces the
// input byte for byte (tested), which is what lets committed traces and
// golden summaries gate CI with a plain diff.
func (t *Trace) Marshal() ([]byte, error) {
	b, err := json.MarshalIndent(t, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("workload: marshal trace: %w", err)
	}
	return append(b, '\n'), nil
}

// ParseTrace reads and validates a trace: schema version, unknown fields,
// non-decreasing arrival offsets, positive sizes, named cohorts. A trace
// that parses is safe to replay.
func ParseTrace(data []byte) (*Trace, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var t Trace
	if err := dec.Decode(&t); err != nil {
		return nil, fmt.Errorf("workload: parse trace: %w", err)
	}
	if dec.More() {
		return nil, fmt.Errorf("workload: parse trace: trailing data after the JSON document")
	}
	if t.Schema != TraceSchema {
		return nil, fmt.Errorf("workload: trace schema %q, this build reads %q", t.Schema, TraceSchema)
	}
	if t.Name == "" {
		return nil, fmt.Errorf("workload: trace has no name")
	}
	if t.DurationNs <= 0 {
		return nil, fmt.Errorf("workload: trace %q: duration %d ns, want > 0", t.Name, t.DurationNs)
	}
	if t.Spec != nil {
		if err := t.Spec.Validate(); err != nil {
			return nil, fmt.Errorf("workload: trace %q: embedded spec: %w", t.Name, err)
		}
	}
	prev := int64(0)
	for i := range t.Requests {
		r := &t.Requests[i]
		if r.AtNs < prev {
			return nil, fmt.Errorf("workload: trace %q: request %d at %d ns arrives before request %d at %d ns", t.Name, i, r.AtNs, i-1, prev)
		}
		prev = r.AtNs
		if r.Cohort == "" {
			return nil, fmt.Errorf("workload: trace %q: request %d has no cohort", t.Name, i)
		}
		if r.N <= 0 {
			return nil, fmt.Errorf("workload: trace %q: request %d: size %d, want > 0", t.Name, i, r.N)
		}
		if r.TopK < 0 {
			return nil, fmt.Errorf("workload: trace %q: request %d: topk %d, want >= 0", t.Name, i, r.TopK)
		}
	}
	return &t, nil
}

// ReadTraceFile loads and validates a trace file.
func ReadTraceFile(path string) (*Trace, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("workload: %w", err)
	}
	return ParseTrace(data)
}

// WriteTraceFile writes the trace in canonical form.
func (t *Trace) WriteTraceFile(path string) error {
	b, err := t.Marshal()
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, b, 0o644); err != nil {
		return fmt.Errorf("workload: %w", err)
	}
	return nil
}

// ReadSpecFile loads and validates a generator spec file.
func ReadSpecFile(path string) (Spec, error) {
	var spec Spec
	data, err := os.ReadFile(path)
	if err != nil {
		return spec, fmt.Errorf("workload: %w", err)
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		return spec, fmt.Errorf("workload: parse spec %s: %w", path, err)
	}
	if err := spec.Validate(); err != nil {
		return spec, err
	}
	return spec, nil
}
