// Package workload generates and replays production-shaped planner traffic.
//
// The paper's model — and the planner service built on it — answers "which
// configuration is fastest for one query". This package answers the question
// a production deployment faces next: what do the latency *distributions*
// look like at a given offered load, with bursty arrivals and a skewed query
// mix? It provides
//
//   - seeded arrival processes (Poisson, bursty on/off, multi-period
//     diurnal) composed with query-mix cohorts over problem size N
//     (uniform or Zipf hot-N skew), constraint profiles, and best-vs-top-K
//     ratios (Spec, Generate);
//   - a versioned JSON trace format with a writer, a validating reader,
//     and a byte-stable re-marshal (Trace, ParseTrace);
//   - an open-loop replay driver that fires a trace against a live planner
//     on schedule and summarizes per-request outcomes into per-cohort
//     p50/p95/p99 and goodput (Replay, Summarize);
//   - a saturation sweep over offered-load steps with admission-control
//     knee detection (RunSaturation, DetectKnee).
//
// Everything here is deterministic: randomness flows from explicit seeds,
// time from an injectable Clock (virtual-time replay touches no clock at
// all), so generated traces and virtual-mode replay summaries are
// byte-stable and can gate CI. The package is in hetlint's nodeterm scope —
// wall-clock reads and global randomness are compile-gated out.
package workload

import (
	"fmt"
	"sort"
)

// Arrival process kinds accepted by ArrivalSpec.Process.
const (
	ProcessPoisson = "poisson"
	ProcessOnOff   = "onoff"
	ProcessDiurnal = "diurnal"
)

// Size distributions accepted by CohortSpec.SizeDist.
const (
	SizeUniform = "uniform"
	SizeZipf    = "zipf"
)

// PeriodSpec is one sinusoidal component of a diurnal rate profile.
type PeriodSpec struct {
	// PeriodNs is the component's period in nanoseconds (> 0).
	PeriodNs int64 `json:"periodNs"`
	// Amplitude scales the component as a fraction of the base rate
	// (0.5 swings the rate by ±50%).
	Amplitude float64 `json:"amplitude"`
	// PhaseRad shifts the component (radians).
	PhaseRad float64 `json:"phaseRad,omitempty"`
}

// ArrivalSpec selects and parameterizes an arrival process. Rates are in
// requests per second; the process runs over the Spec's duration.
type ArrivalSpec struct {
	// Process is one of ProcessPoisson, ProcessOnOff, ProcessDiurnal.
	Process string `json:"process"`
	// RateQPS is the mean rate: the Poisson rate, the on-phase rate of the
	// on/off process, or the base rate the diurnal components modulate.
	RateQPS float64 `json:"rateQps"`
	// OffRateQPS is the off-phase rate of the on/off process (>= 0).
	OffRateQPS float64 `json:"offRateQps,omitempty"`
	// OnNs and OffNs are the fixed on/off phase lengths in nanoseconds.
	OnNs  int64 `json:"onNs,omitempty"`
	OffNs int64 `json:"offNs,omitempty"`
	// Periods are the diurnal components (required for ProcessDiurnal).
	Periods []PeriodSpec `json:"periods,omitempty"`
}

// CohortSpec is one slice of the query mix: a weighted class of requests
// sharing a size distribution, a constraint profile, and a best-vs-top-K
// ratio. Cohort names key the per-cohort sections of the replay summary.
type CohortSpec struct {
	// Name identifies the cohort (non-empty, unique within a Spec).
	Name string `json:"name"`
	// Weight is the cohort's share of the mix (> 0; weights are relative).
	Weight float64 `json:"weight"`
	// Sizes lists the problem sizes N the cohort draws from (each > 0).
	Sizes []int `json:"sizes"`
	// SizeDist is SizeUniform or SizeZipf over Sizes. Zipf makes Sizes[0]
	// the hot size: P(Sizes[i]) ∝ 1/(i+1)^ZipfS.
	SizeDist string `json:"sizeDist"`
	// ZipfS is the Zipf exponent (> 0, required for SizeZipf).
	ZipfS float64 `json:"zipfS,omitempty"`
	// TopK is the K requested when a draw lands on the top-K side of
	// TopKRatio (>= 2 when TopKRatio > 0).
	TopK int `json:"topk,omitempty"`
	// TopKRatio is the fraction of the cohort's requests that ask for the
	// ranked top-K instead of the single best (0..1).
	TopKRatio float64 `json:"topkRatio,omitempty"`
	// Constraint profile, forwarded verbatim onto every request.
	Classes       []int   `json:"classes,omitempty"`
	MaxTotalProcs int     `json:"maxTotalProcs,omitempty"`
	MaxBytesPerPE float64 `json:"maxBytesPerPE,omitempty"`
	// TimeoutMs bounds each request's server-side admission wait.
	TimeoutMs int `json:"timeoutMs,omitempty"`
}

// Spec fully determines a trace: the same (seed, arrival, cohorts, duration)
// always generates byte-identical output (tested). A Spec embeds into the
// trace header so a trace documents its own provenance.
type Spec struct {
	// Name labels the workload; it becomes the trace name.
	Name string `json:"name"`
	// Seed drives every random draw of the generation.
	Seed int64 `json:"seed"`
	// DurationNs is the trace horizon in nanoseconds (> 0).
	DurationNs int64 `json:"durationNs"`
	// Arrival shapes when requests fire.
	Arrival ArrivalSpec `json:"arrival"`
	// Cohorts shape what each request asks (at least one).
	Cohorts []CohortSpec `json:"cohorts"`
}

// Validate checks the spec's invariants and reports the first violation.
func (s *Spec) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("workload: spec needs a name")
	}
	if s.DurationNs <= 0 {
		return fmt.Errorf("workload: spec %q: duration %d ns, want > 0", s.Name, s.DurationNs)
	}
	if err := s.Arrival.validate(); err != nil {
		return fmt.Errorf("workload: spec %q: %w", s.Name, err)
	}
	if len(s.Cohorts) == 0 {
		return fmt.Errorf("workload: spec %q has no cohorts", s.Name)
	}
	seen := make(map[string]bool, len(s.Cohorts))
	for i := range s.Cohorts {
		c := &s.Cohorts[i]
		if err := c.validate(); err != nil {
			return fmt.Errorf("workload: spec %q: %w", s.Name, err)
		}
		if seen[c.Name] {
			return fmt.Errorf("workload: spec %q: duplicate cohort %q", s.Name, c.Name)
		}
		seen[c.Name] = true
	}
	return nil
}

func (a *ArrivalSpec) validate() error {
	if a.RateQPS <= 0 {
		return fmt.Errorf("arrival rate %g qps, want > 0", a.RateQPS)
	}
	switch a.Process {
	case ProcessPoisson:
	case ProcessOnOff:
		if a.OnNs <= 0 || a.OffNs <= 0 {
			return fmt.Errorf("onoff arrivals need onNs and offNs > 0 (got %d, %d)", a.OnNs, a.OffNs)
		}
		if a.OffRateQPS < 0 {
			return fmt.Errorf("negative off rate %g qps", a.OffRateQPS)
		}
	case ProcessDiurnal:
		if len(a.Periods) == 0 {
			return fmt.Errorf("diurnal arrivals need at least one period")
		}
		for _, p := range a.Periods {
			if p.PeriodNs <= 0 {
				return fmt.Errorf("diurnal period %d ns, want > 0", p.PeriodNs)
			}
			if p.Amplitude < 0 {
				return fmt.Errorf("negative diurnal amplitude %g", p.Amplitude)
			}
		}
	default:
		return fmt.Errorf("unknown arrival process %q", a.Process)
	}
	return nil
}

func (c *CohortSpec) validate() error {
	if c.Name == "" {
		return fmt.Errorf("cohort needs a name")
	}
	if c.Weight <= 0 {
		return fmt.Errorf("cohort %q: weight %g, want > 0", c.Name, c.Weight)
	}
	if len(c.Sizes) == 0 {
		return fmt.Errorf("cohort %q has no sizes", c.Name)
	}
	for _, n := range c.Sizes {
		if n <= 0 {
			return fmt.Errorf("cohort %q: size %d, want > 0", c.Name, n)
		}
	}
	switch c.SizeDist {
	case SizeUniform:
	case SizeZipf:
		if c.ZipfS <= 0 {
			return fmt.Errorf("cohort %q: zipf exponent %g, want > 0", c.Name, c.ZipfS)
		}
	default:
		return fmt.Errorf("cohort %q: unknown size distribution %q", c.Name, c.SizeDist)
	}
	if c.TopKRatio < 0 || c.TopKRatio > 1 {
		return fmt.Errorf("cohort %q: topkRatio %g outside [0, 1]", c.Name, c.TopKRatio)
	}
	if c.TopKRatio > 0 && c.TopK < 2 {
		return fmt.Errorf("cohort %q: topkRatio %g needs topk >= 2 (got %d)", c.Name, c.TopKRatio, c.TopK)
	}
	return nil
}

// cohortNames returns the spec's cohort names sorted, for deterministic
// summary sections.
func cohortNames(cohorts []CohortSpec) []string {
	names := make([]string, len(cohorts))
	for i := range cohorts {
		names[i] = cohorts[i].Name
	}
	sort.Strings(names)
	return names
}
