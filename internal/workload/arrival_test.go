package workload

import (
	"math/rand"
	"testing"
)

func sortedWithin(t *testing.T, ats []int64, durationNs int64) {
	t.Helper()
	prev := int64(0)
	for i, at := range ats {
		if at < prev {
			t.Fatalf("arrival %d at %d before %d", i, at, prev)
		}
		if at < 0 || at >= durationNs {
			t.Fatalf("arrival %d at %d outside [0, %d)", i, at, durationNs)
		}
		prev = at
	}
}

func TestPoissonArrivals(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	const qps, durNs = 1000.0, int64(10e9)
	ats := poissonArrivals(rng, qps, 0, durNs)
	sortedWithin(t, ats, durNs)
	// 10000 expected arrivals, sd = 100: ±5 sd is a safe deterministic
	// bound for the fixed seed.
	if n := len(ats); n < 9500 || n > 10500 {
		t.Errorf("%d arrivals, want ~10000", n)
	}
}

func TestOnOffArrivalsBursty(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := ArrivalSpec{Process: ProcessOnOff, RateQPS: 1000, OffRateQPS: 10, OnNs: 1e9, OffNs: 1e9}
	const durNs = int64(8e9)
	ats := onOffArrivals(rng, a, durNs)
	sortedWithin(t, ats, durNs)
	var on, off int
	for _, at := range ats {
		if (at/1e9)%2 == 0 {
			on++
		} else {
			off++
		}
	}
	// 4 on-seconds at 1000 qps vs 4 off-seconds at 10 qps.
	if on < 3500 || off > 100 {
		t.Errorf("on=%d off=%d, want a ~100:1 split", on, off)
	}
}

func TestDiurnalArrivalsModulated(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := ArrivalSpec{
		Process: ProcessDiurnal,
		RateQPS: 500,
		Periods: []PeriodSpec{{PeriodNs: 2e9, Amplitude: 0.9}},
	}
	const durNs = int64(2e9)
	ats := diurnalArrivals(rng, a, durNs)
	sortedWithin(t, ats, durNs)
	// sin over one full 2s period: the first half carries the peak
	// (rate up to 950 qps), the second the trough (down to 50 qps).
	var peak, trough int
	for _, at := range ats {
		if at < durNs/2 {
			peak++
		} else {
			trough++
		}
	}
	if peak < 2*trough {
		t.Errorf("peak=%d trough=%d, want a clear diurnal skew", peak, trough)
	}
	// The mean rate stays near the base rate.
	if n := len(ats); n < 700 || n > 1300 {
		t.Errorf("%d arrivals over 2s, want ~1000", n)
	}
}

func TestZipfHotSkewAndWeights(t *testing.T) {
	spec := Spec{
		Name:       "skew",
		Seed:       7,
		DurationNs: 20e9,
		Arrival:    ArrivalSpec{Process: ProcessPoisson, RateQPS: 500},
		Cohorts: []CohortSpec{
			{Name: "hot", Weight: 3, Sizes: []int{100, 200, 300, 400}, SizeDist: SizeZipf, ZipfS: 1.5},
			{Name: "cold", Weight: 1, Sizes: []int{500}, SizeDist: SizeUniform},
		},
	}
	tr, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	sizeCount := map[int]int{}
	cohortCount := map[string]int{}
	for i := range tr.Requests {
		sizeCount[tr.Requests[i].N]++
		cohortCount[tr.Requests[i].Cohort]++
	}
	// Zipf s=1.5 over 4 ranks: P(rank 1) ~ 0.64, P(rank 4) ~ 0.08.
	if sizeCount[100] < 4*sizeCount[400] {
		t.Errorf("hot size drawn %d times vs cold rank %d: want a strong Zipf skew", sizeCount[100], sizeCount[400])
	}
	// Cohort weights 3:1 over ~10000 draws.
	ratio := float64(cohortCount["hot"]) / float64(cohortCount["cold"])
	if ratio < 2.5 || ratio > 3.6 {
		t.Errorf("cohort ratio %.2f, want ~3", ratio)
	}
}

func TestTopKRatio(t *testing.T) {
	spec := Spec{
		Name:       "topk",
		Seed:       11,
		DurationNs: 20e9,
		Arrival:    ArrivalSpec{Process: ProcessPoisson, RateQPS: 500},
		Cohorts: []CohortSpec{
			{Name: "mixed", Weight: 1, Sizes: []int{100}, SizeDist: SizeUniform, TopK: 5, TopKRatio: 0.25},
		},
	}
	tr, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	var topk int
	for i := range tr.Requests {
		switch tr.Requests[i].TopK {
		case 5:
			topk++
		case 0:
		default:
			t.Fatalf("request %d: topk %d, want 0 or 5", i, tr.Requests[i].TopK)
		}
	}
	frac := float64(topk) / float64(len(tr.Requests))
	if frac < 0.20 || frac > 0.30 {
		t.Errorf("top-K fraction %.3f, want ~0.25", frac)
	}
}
