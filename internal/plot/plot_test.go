package plot

import (
	"encoding/xml"
	"errors"
	"math"
	"strings"
	"testing"
)

func TestEmptyChartFails(t *testing.T) {
	c := New("t", "x", "y")
	if _, err := c.SVG(); !errors.Is(err, ErrNoData) {
		t.Fatal("empty chart rendered")
	}
	// All-NaN data is also empty.
	c.Line("nan", []float64{math.NaN()}, []float64{math.NaN()})
	if _, err := c.SVG(); !errors.Is(err, ErrNoData) {
		t.Fatal("all-NaN chart rendered")
	}
}

func TestLineChartWellFormed(t *testing.T) {
	c := New("Figure 1", "N", "Gflops")
	c.Line("1P/CPU", []float64{1000, 2000, 3000}, []float64{0.9, 1.0, 1.1})
	c.Line("2P/CPU", []float64{1000, 2000, 3000}, []float64{0.5, 0.8, 0.95})
	out, err := c.SVG()
	if err != nil {
		t.Fatal(err)
	}
	// Must be well-formed XML.
	dec := xml.NewDecoder(strings.NewReader(out))
	for {
		_, err := dec.Token()
		if err != nil {
			if err.Error() == "EOF" {
				break
			}
			t.Fatalf("invalid XML: %v", err)
		}
	}
	if strings.Count(out, "<polyline") != 2 {
		t.Fatalf("want 2 polylines:\n%s", out)
	}
	for _, want := range []string{"Figure 1", "Gflops", "1P/CPU", "2P/CPU"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q", want)
		}
	}
}

func TestScatterWithDiagonal(t *testing.T) {
	c := New("Figure 6", "T (est)", "t (meas)")
	c.ShowDiagonal = true
	c.Scatter("M1=1", []float64{100, 200, 300}, []float64{110, 190, 310})
	out, err := c.SVG()
	if err != nil {
		t.Fatal(err)
	}
	if strings.Count(out, "<circle") != 3 {
		t.Fatal("want 3 scatter points")
	}
	if !strings.Contains(out, "stroke-dasharray") {
		t.Fatal("diagonal missing")
	}
}

func TestLogXChart(t *testing.T) {
	c := New("Figure 2", "bytes", "Gbps")
	c.LogX = true
	c.Line("lib", []float64{1024, 16384, 262144}, []float64{0.2, 1.5, 2.5})
	out, err := c.SVG()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "<polyline") {
		t.Fatal("no polyline")
	}
	// Nonpositive x points are dropped on a log axis, not rendered at -Inf.
	c2 := New("t", "x", "y")
	c2.LogX = true
	c2.Scatter("s", []float64{0, -5, 100}, []float64{1, 2, 3})
	out2, err := c2.SVG()
	if err != nil {
		t.Fatal(err)
	}
	if strings.Count(out2, "<circle") != 1 {
		t.Fatal("nonpositive log-x points not dropped")
	}
}

func TestEscaping(t *testing.T) {
	c := New(`a < b & "c"`, "x", "y")
	c.Line("s<1>", []float64{1, 2}, []float64{1, 2})
	out, err := c.SVG()
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out, `a < b &`) {
		t.Fatal("title not escaped")
	}
	if !strings.Contains(out, "a &lt; b &amp;") {
		t.Fatal("escape output wrong")
	}
}

func TestTicks(t *testing.T) {
	ts := ticks(0, 10, 6)
	if len(ts) < 4 || ts[0] != 0 {
		t.Fatalf("ticks(0,10) = %v", ts)
	}
	for i := 1; i < len(ts); i++ {
		if ts[i] <= ts[i-1] {
			t.Fatalf("ticks not increasing: %v", ts)
		}
	}
	if got := ticks(5, 5, 4); len(got) != 1 {
		t.Fatalf("degenerate ticks = %v", got)
	}
	lt := logTicks(1024, 262144)
	if len(lt) < 2 {
		t.Fatalf("logTicks = %v", lt)
	}
}

func TestFormatTick(t *testing.T) {
	cases := map[float64]string{
		0:       "0",
		2:       "2",
		2.5:     "2.5",
		150:     "150",
		2000000: "2e+06",
		0.25:    "0.25",
	}
	for v, want := range cases {
		if got := formatTick(v); got != want {
			t.Fatalf("formatTick(%v) = %q, want %q", v, got, want)
		}
	}
}

func TestMismatchedLengthsSafe(t *testing.T) {
	c := New("t", "x", "y")
	c.Line("s", []float64{1, 2, 3}, []float64{1, 2}) // ys shorter
	if _, err := c.SVG(); err != nil {
		t.Fatal(err)
	}
}

func TestZeroDimensionsDefaulted(t *testing.T) {
	c := &Chart{Title: "t"}
	c.Line("s", []float64{1, 2}, []float64{3, 4})
	out, err := c.SVG()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, `width="720"`) {
		t.Fatal("default width not applied")
	}
}
