// Package plot is a small, dependency-free SVG chart writer used to render
// the paper's figures from the regenerated data: line charts (Figures 1-3),
// log-x throughput curves (Figure 2), and estimate-vs-measurement scatter
// plots with the T = t diagonal (Figures 6-15).
package plot

import (
	"errors"
	"fmt"
	"math"
	"strings"
)

// ErrNoData reports a chart rendered without any points.
var ErrNoData = errors.New("plot: no data")

// markKind selects how a series is drawn.
type markKind int

const (
	markLine markKind = iota
	markScatter
)

type series struct {
	name string
	xs   []float64
	ys   []float64
	kind markKind
}

// Chart accumulates series and renders them as a standalone SVG.
type Chart struct {
	Title  string
	XLabel string
	YLabel string
	// Width and Height are the SVG dimensions in pixels (defaults 720x480).
	Width, Height int
	// LogX plots the X axis on a log10 scale (all x must be positive).
	LogX bool
	// ShowDiagonal draws the y = x reference line (correlation plots).
	ShowDiagonal bool

	series []series
}

// New returns an empty chart.
func New(title, xLabel, yLabel string) *Chart {
	return &Chart{Title: title, XLabel: xLabel, YLabel: yLabel, Width: 720, Height: 480}
}

// Line adds a polyline series. xs and ys must have equal length; extra
// entries are ignored.
func (c *Chart) Line(name string, xs, ys []float64) {
	c.series = append(c.series, series{name: name, xs: xs, ys: ys, kind: markLine})
}

// Scatter adds a point series.
func (c *Chart) Scatter(name string, xs, ys []float64) {
	c.series = append(c.series, series{name: name, xs: xs, ys: ys, kind: markScatter})
}

// palette holds distinguishable series colors (Okabe–Ito).
var palette = []string{
	"#0072B2", "#D55E00", "#009E73", "#CC79A7",
	"#E69F00", "#56B4E9", "#F0E442", "#000000",
}

const (
	marginLeft   = 64.0
	marginRight  = 16.0
	marginTop    = 40.0
	marginBottom = 52.0
	legendRow    = 16.0
)

// SVG renders the chart. It fails only when no finite data points exist.
func (c *Chart) SVG() (string, error) {
	w, h := float64(c.Width), float64(c.Height)
	if w <= 0 || h <= 0 {
		w, h = 720, 480
	}
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	points := 0
	for _, s := range c.series {
		n := len(s.xs)
		if len(s.ys) < n {
			n = len(s.ys)
		}
		for i := 0; i < n; i++ {
			x, y := s.xs[i], s.ys[i]
			if !finite(x) || !finite(y) || (c.LogX && x <= 0) {
				continue
			}
			points++
			minX, maxX = math.Min(minX, x), math.Max(maxX, x)
			minY, maxY = math.Min(minY, y), math.Max(maxY, y)
		}
	}
	if points == 0 {
		return "", ErrNoData
	}
	if c.ShowDiagonal {
		// The diagonal spans the shared range of both axes.
		lo := math.Min(minX, minY)
		hi := math.Max(maxX, maxY)
		minX, maxX, minY, maxY = lo, hi, lo, hi
	}
	// Pad degenerate ranges; anchor linear Y at zero when close.
	if minY > 0 && minY < maxY/3 {
		minY = 0
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}

	tx := func(x float64) float64 {
		if c.LogX {
			return marginLeft + (math.Log10(x)-math.Log10(minX))/(math.Log10(maxX)-math.Log10(minX))*(w-marginLeft-marginRight)
		}
		return marginLeft + (x-minX)/(maxX-minX)*(w-marginLeft-marginRight)
	}
	ty := func(y float64) float64 {
		return h - marginBottom - (y-minY)/(maxY-minY)*(h-marginTop-marginBottom)
	}

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n",
		int(w), int(h), int(w), int(h))
	b.WriteString(`<rect width="100%" height="100%" fill="white"/>` + "\n")
	fmt.Fprintf(&b, `<text x="%g" y="22" font-family="sans-serif" font-size="15" font-weight="bold">%s</text>`+"\n",
		marginLeft, escape(c.Title))

	// Axes.
	fmt.Fprintf(&b, `<line x1="%g" y1="%g" x2="%g" y2="%g" stroke="black"/>`+"\n",
		marginLeft, h-marginBottom, w-marginRight, h-marginBottom)
	fmt.Fprintf(&b, `<line x1="%g" y1="%g" x2="%g" y2="%g" stroke="black"/>`+"\n",
		marginLeft, marginTop, marginLeft, h-marginBottom)
	fmt.Fprintf(&b, `<text x="%g" y="%g" font-family="sans-serif" font-size="12" text-anchor="middle">%s</text>`+"\n",
		(marginLeft+w-marginRight)/2, h-10, escape(c.XLabel))
	fmt.Fprintf(&b, `<text x="14" y="%g" font-family="sans-serif" font-size="12" text-anchor="middle" transform="rotate(-90 14 %g)">%s</text>`+"\n",
		(marginTop+h-marginBottom)/2, (marginTop+h-marginBottom)/2, escape(c.YLabel))

	// Ticks and grid.
	for _, t := range ticks(minY, maxY, 6) {
		y := ty(t)
		fmt.Fprintf(&b, `<line x1="%g" y1="%g" x2="%g" y2="%g" stroke="#ddd"/>`+"\n",
			marginLeft, y, w-marginRight, y)
		fmt.Fprintf(&b, `<text x="%g" y="%g" font-family="sans-serif" font-size="11" text-anchor="end">%s</text>`+"\n",
			marginLeft-6, y+4, formatTick(t))
	}
	var xs []float64
	if c.LogX {
		xs = logTicks(minX, maxX)
	} else {
		xs = ticks(minX, maxX, 7)
	}
	for _, t := range xs {
		x := tx(t)
		fmt.Fprintf(&b, `<line x1="%g" y1="%g" x2="%g" y2="%g" stroke="#eee"/>`+"\n",
			x, marginTop, x, h-marginBottom)
		fmt.Fprintf(&b, `<text x="%g" y="%g" font-family="sans-serif" font-size="11" text-anchor="middle">%s</text>`+"\n",
			x, h-marginBottom+16, formatTick(t))
	}

	// Diagonal reference.
	if c.ShowDiagonal {
		fmt.Fprintf(&b, `<line x1="%g" y1="%g" x2="%g" y2="%g" stroke="#888" stroke-dasharray="5,4"/>`+"\n",
			tx(minX), ty(minX), tx(maxX), ty(maxX))
	}

	// Series.
	for si, s := range c.series {
		color := palette[si%len(palette)]
		n := len(s.xs)
		if len(s.ys) < n {
			n = len(s.ys)
		}
		switch s.kind {
		case markLine:
			var pts []string
			for i := 0; i < n; i++ {
				if !finite(s.xs[i]) || !finite(s.ys[i]) || (c.LogX && s.xs[i] <= 0) {
					continue
				}
				pts = append(pts, fmt.Sprintf("%.1f,%.1f", tx(s.xs[i]), ty(s.ys[i])))
			}
			if len(pts) > 0 {
				fmt.Fprintf(&b, `<polyline fill="none" stroke="%s" stroke-width="1.8" points="%s"/>`+"\n",
					color, strings.Join(pts, " "))
			}
		case markScatter:
			for i := 0; i < n; i++ {
				if !finite(s.xs[i]) || !finite(s.ys[i]) || (c.LogX && s.xs[i] <= 0) {
					continue
				}
				fmt.Fprintf(&b, `<circle cx="%.1f" cy="%.1f" r="3.2" fill="%s" fill-opacity="0.75"/>`+"\n",
					tx(s.xs[i]), ty(s.ys[i]), color)
			}
		}
		// Legend entry.
		lx := w - marginRight - 150
		lyy := marginTop + 4 + legendRow*float64(si)
		fmt.Fprintf(&b, `<rect x="%g" y="%g" width="10" height="10" fill="%s"/>`+"\n", lx, lyy, color)
		fmt.Fprintf(&b, `<text x="%g" y="%g" font-family="sans-serif" font-size="11">%s</text>`+"\n",
			lx+14, lyy+9, escape(s.name))
	}
	b.WriteString("</svg>\n")
	return b.String(), nil
}

func finite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

// ticks returns up to n "nice" tick positions covering [lo, hi].
func ticks(lo, hi float64, n int) []float64 {
	if n < 2 {
		n = 2
	}
	span := hi - lo
	if span <= 0 {
		return []float64{lo}
	}
	raw := span / float64(n-1)
	mag := math.Pow(10, math.Floor(math.Log10(raw)))
	// Smallest "nice" step (1/2/5 ladder) not below the raw spacing.
	var step float64
	switch {
	case raw/mag > 5:
		step = 10 * mag
	case raw/mag > 2:
		step = 5 * mag
	case raw/mag > 1:
		step = 2 * mag
	default:
		step = mag
	}
	var out []float64
	for t := math.Ceil(lo/step) * step; t <= hi+step/1e6; t += step {
		out = append(out, t)
	}
	return out
}

// logTicks returns decade ticks covering [lo, hi] (positive).
func logTicks(lo, hi float64) []float64 {
	var out []float64
	for e := math.Floor(math.Log10(lo)); e <= math.Ceil(math.Log10(hi)); e++ {
		t := math.Pow(10, e)
		if t >= lo/1.0001 && t <= hi*1.0001 {
			out = append(out, t)
		}
	}
	if len(out) < 2 {
		return []float64{lo, hi}
	}
	return out
}

// formatTick renders a tick label compactly.
func formatTick(v float64) string {
	a := math.Abs(v)
	switch {
	case v == 0:
		return "0"
	case a >= 1e6 || a < 1e-3:
		return fmt.Sprintf("%.0e", v)
	case a >= 100:
		return fmt.Sprintf("%.0f", v)
	case a >= 1:
		return strings.TrimRight(strings.TrimRight(fmt.Sprintf("%.2f", v), "0"), ".")
	default:
		return strings.TrimRight(strings.TrimRight(fmt.Sprintf("%.3f", v), "0"), ".")
	}
}

// escape makes text safe inside SVG elements.
func escape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}
