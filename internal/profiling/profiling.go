// Package profiling wires pprof CPU and heap profiles into the CLIs with two
// standard flags, so performance investigations of campaigns, sweeps, and
// fits don't require a bespoke harness:
//
//	hetopt -campaign nl -n 9600 -cpuprofile cpu.out -memprofile mem.out
//	go tool pprof -top cpu.out
package profiling

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Flags holds the destinations registered by AddFlags.
type Flags struct {
	cpu *string
	mem *string
}

// AddFlags registers -cpuprofile and -memprofile on the given FlagSet (or
// flag.CommandLine when fs is nil). Call before flag.Parse.
func AddFlags(fs *flag.FlagSet) *Flags {
	if fs == nil {
		fs = flag.CommandLine
	}
	return &Flags{
		cpu: fs.String("cpuprofile", "", "write a pprof CPU profile to this file"),
		mem: fs.String("memprofile", "", "write a pprof heap profile to this file on exit"),
	}
}

// Start begins CPU profiling if requested and returns a stop function that
// finishes the CPU profile and writes the heap profile. Callers must invoke
// stop on every exit path that should produce profiles — typically:
//
//	stop, err := prof.Start()
//	if err != nil { log.Fatal(err) }
//	defer stop()
//
// Note that log.Fatal (os.Exit) skips deferred calls; commands that fail
// after Start lose at most the profile of the failed run.
func (f *Flags) Start() (stop func(), err error) {
	var cpuFile *os.File
	if *f.cpu != "" {
		cpuFile, err = os.Create(*f.cpu)
		if err != nil {
			return nil, fmt.Errorf("profiling: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("profiling: %w", err)
		}
	}
	memPath := *f.mem
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if memPath != "" {
			out, err := os.Create(memPath)
			if err != nil {
				fmt.Fprintf(os.Stderr, "profiling: %v\n", err)
				return
			}
			defer out.Close()
			runtime.GC() // materialize the final live set before the heap dump
			if err := pprof.WriteHeapProfile(out); err != nil {
				fmt.Fprintf(os.Stderr, "profiling: %v\n", err)
			}
		}
	}, nil
}
