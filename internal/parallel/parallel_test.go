package parallel

import (
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestWorkers(t *testing.T) {
	if got := Workers(0, 100); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(0, 100) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(-3, 100); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(-3, 100) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(8, 3); got != 3 {
		t.Errorf("Workers(8, 3) = %d, want 3 (capped at n)", got)
	}
	if got := Workers(4, 0); got != 1 {
		t.Errorf("Workers(4, 0) = %d, want 1", got)
	}
}

func TestForEachRunsAll(t *testing.T) {
	for _, workers := range []int{1, 2, 7, 0} {
		var hits [100]atomic.Int32
		err := ForEach(len(hits), workers, func(i int) error {
			hits[i].Add(1)
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, got)
			}
		}
	}
}

func TestForEachEmpty(t *testing.T) {
	if err := ForEach(0, 4, func(int) error { return errors.New("must not run") }); err != nil {
		t.Fatal(err)
	}
}

func TestForEachLowestIndexError(t *testing.T) {
	// Indices 30 and 60 fail; the sequential loop would stop on 30, so the
	// parallel run must report 30 too, at every worker count.
	for _, workers := range []int{1, 3, 16} {
		err := ForEach(100, workers, func(i int) error {
			if i == 30 || i == 60 {
				return fmt.Errorf("fail at %d", i)
			}
			return nil
		})
		if err == nil || err.Error() != "fail at 30" {
			t.Errorf("workers=%d: got %v, want fail at 30", workers, err)
		}
	}
}

func TestForEachStopsIssuingAfterError(t *testing.T) {
	var ran atomic.Int32
	err := ForEach(1_000_000, 2, func(i int) error {
		ran.Add(1)
		return errors.New("immediate")
	})
	if err == nil {
		t.Fatal("want error")
	}
	if n := ran.Load(); n > 100 {
		t.Errorf("ran %d items after an immediate error; early stop is broken", n)
	}
}

func TestMapOrder(t *testing.T) {
	for _, workers := range []int{1, 4, 0} {
		out, err := Map(50, workers, func(i int) (int, error) { return i * i, nil })
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestMapError(t *testing.T) {
	out, err := Map(10, 4, func(i int) (int, error) {
		if i == 5 {
			return 0, errors.New("boom")
		}
		return i, nil
	})
	if err == nil || out != nil {
		t.Fatalf("got (%v, %v), want (nil, boom)", out, err)
	}
}
