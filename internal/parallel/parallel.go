// Package parallel is the shared worker-pool execution engine behind the
// concurrent hot paths: measurement campaigns (internal/measure), candidate
// sweeps (internal/core, internal/experiments), and any future fan-out over
// an indexed work list.
//
// The design contract is determinism: work items are identified by index,
// results are delivered by index, and error selection is by lowest index —
// so a parallel execution is observationally identical to the sequential
// loop it replaces, regardless of scheduling. Worker counts follow the
// linalg.ParallelMulAdd convention: <= 0 selects GOMAXPROCS.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers resolves a requested worker count: values <= 0 select
// runtime.GOMAXPROCS(0), and the result never exceeds n work items.
func Workers(requested, n int) int {
	w := requested
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// ForEach invokes fn(i) for i in [0, n) using up to `workers` concurrent
// goroutines (workers <= 0 selects GOMAXPROCS). Indices are claimed in
// ascending order. On failure no new indices are started, and the returned
// error is the one with the lowest index — because indices are claimed in
// order, every index below the first failing one also ran, so the error
// returned is exactly the error a sequential loop would have stopped on
// (for deterministic fn). ForEach returns only after all started fn calls
// finished.
func ForEach(n, workers int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	workers = Workers(workers, n)
	if workers == 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		next    atomic.Int64
		stop    atomic.Bool
		mu      sync.Mutex
		firstI  = n
		firstEr error
		wg      sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || stop.Load() {
					return
				}
				if err := fn(i); err != nil {
					mu.Lock()
					if i < firstI {
						firstI, firstEr = i, err
					}
					mu.Unlock()
					stop.Store(true)
				}
			}
		}()
	}
	wg.Wait()
	return firstEr
}

// Map invokes fn(i) for i in [0, n) on up to `workers` goroutines and
// returns the results in index order. Error semantics match ForEach: the
// lowest-index error is returned (with a nil slice), identical to what a
// sequential loop would report.
func Map[T any](n, workers int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	err := ForEach(n, workers, func(i int) error {
		v, err := fn(i)
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
