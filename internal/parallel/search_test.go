package parallel

import (
	"math"
	"math/rand"
	"sort"
	"sync/atomic"
	"testing"
)

func TestTopKKeepsBestByScoreThenIndex(t *testing.T) {
	tk := NewTopK(3)
	for idx, score := range []float64{5, 1, 4, 1, 3, 2} {
		tk.Offer(int64(idx), score)
	}
	got := tk.Sorted()
	want := []Candidate{{Index: 1, Score: 1}, {Index: 3, Score: 1}, {Index: 5, Score: 2}}
	if len(got) != len(want) {
		t.Fatalf("Sorted() = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("rank %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestTopKRejectsInfAndNaN(t *testing.T) {
	tk := NewTopK(2)
	tk.Offer(0, math.Inf(1))
	tk.Offer(1, math.NaN())
	if got := tk.Sorted(); len(got) != 0 {
		t.Fatalf("kept unrankable scores: %v", got)
	}
	if !math.IsInf(tk.Threshold(), 1) {
		t.Fatal("threshold moved")
	}
	tk.Offer(2, math.Inf(-1)) // -Inf is an ordinary (very good) score
	if got := tk.Sorted(); len(got) != 1 || !math.IsInf(got[0].Score, -1) {
		t.Fatalf("-Inf not kept: %v", got)
	}
}

func TestTopKThreshold(t *testing.T) {
	tk := NewTopK(2)
	if !math.IsInf(tk.Threshold(), 1) {
		t.Fatal("unfilled selector must not bound anything")
	}
	tk.Offer(0, 7)
	if !math.IsInf(tk.Threshold(), 1) {
		t.Fatal("threshold must stay +Inf until k candidates are held")
	}
	tk.Offer(1, 3)
	if tk.Threshold() != 7 {
		t.Fatalf("Threshold() = %v, want 7", tk.Threshold())
	}
	tk.Offer(2, 5)
	if tk.Threshold() != 5 {
		t.Fatalf("Threshold() = %v after eviction, want 5", tk.Threshold())
	}
}

// TestMergeTopKMatchesGlobalSort: merging arbitrary partitions of a
// candidate stream equals the global (score, index) sort.
func TestMergeTopKMatchesGlobalSort(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	const n, k = 500, 7
	all := make([]Candidate, n)
	for i := range all {
		all[i] = Candidate{Index: int64(i), Score: float64(rng.Intn(40))} // many ties
	}
	ref := append([]Candidate(nil), all...)
	sort.Slice(ref, func(i, j int) bool { return ref[j].ranksAfter(ref[i]) })
	ref = ref[:k]
	for trial := 0; trial < 20; trial++ {
		nshards := 1 + rng.Intn(8)
		shards := make([]*TopK, nshards)
		for i := range shards {
			shards[i] = NewTopK(k)
		}
		perm := rng.Perm(n)
		for _, i := range perm {
			shards[rng.Intn(nshards)].Offer(all[i].Index, all[i].Score)
		}
		lists := make([][]Candidate, nshards)
		for i, sh := range shards {
			lists[i] = sh.Sorted()
		}
		got := MergeTopK(k, lists)
		if len(got) != k {
			t.Fatalf("trial %d: merged %d candidates", trial, len(got))
		}
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("trial %d rank %d: %v, want %v", trial, i, got[i], ref[i])
			}
		}
	}
}

func TestSharedMin(t *testing.T) {
	m := NewSharedMin()
	if !math.IsInf(m.Load(), 1) {
		t.Fatal("fresh SharedMin must be +Inf")
	}
	m.Update(5)
	m.Update(9)          // larger: ignored
	m.Update(math.NaN()) // NaN: ignored
	if m.Load() != 5 {
		t.Fatalf("Load() = %v, want 5", m.Load())
	}
	done := make(chan struct{})
	for g := 0; g < 8; g++ {
		go func(g int) {
			for i := 0; i < 1000; i++ {
				m.Update(float64(g*1000+i) / 1e6)
			}
			done <- struct{}{}
		}(g)
	}
	for g := 0; g < 8; g++ {
		<-done
	}
	if m.Load() != 0 {
		t.Fatalf("concurrent min = %v, want 0", m.Load())
	}
}

// TestChunksCoversRangeOnce: every index appears in exactly one chunk,
// chunks are aligned, and worker ids are in range.
func TestChunksCoversRangeOnce(t *testing.T) {
	for _, tc := range []struct {
		n, chunk int64
		workers  int
	}{
		{n: 10, chunk: 3, workers: 1},
		{n: 10, chunk: 3, workers: 4},
		{n: 1000, chunk: 7, workers: 0},
		{n: 5, chunk: 100, workers: 8},
		{n: 0, chunk: 4, workers: 2},
	} {
		var mu atomicBitmap
		mu.init(tc.n)
		used := Chunks(tc.n, tc.chunk, tc.workers, func(worker int, lo, hi int64) {
			if lo < 0 || hi > tc.n || lo >= hi {
				t.Errorf("bad chunk [%d, %d)", lo, hi)
			}
			if lo%tc.chunk != 0 {
				t.Errorf("chunk start %d not aligned to %d", lo, tc.chunk)
			}
			for i := lo; i < hi; i++ {
				if !mu.setOnce(i) {
					t.Errorf("index %d covered twice", i)
				}
			}
		})
		if tc.n == 0 {
			if used != 0 {
				t.Fatalf("n=0 used %d workers", used)
			}
			continue
		}
		if used < 1 {
			t.Fatalf("no workers used for n=%d", tc.n)
		}
		if miss := mu.firstUnset(tc.n); miss >= 0 {
			t.Fatalf("index %d never covered (n=%d chunk=%d workers=%d)", miss, tc.n, tc.chunk, tc.workers)
		}
	}
}

func TestChunksSingleWorkerInline(t *testing.T) {
	calls := 0
	used := Chunks(100, 10, 1, func(worker int, lo, hi int64) {
		calls++
		if worker != 0 || lo != 0 || hi != 100 {
			t.Fatalf("inline call got (%d, %d, %d)", worker, lo, hi)
		}
	})
	if used != 1 || calls != 1 {
		t.Fatalf("used=%d calls=%d", used, calls)
	}
}

// atomicBitmap tracks per-index coverage race-free.
type atomicBitmap struct{ bits []atomic.Bool }

func (b *atomicBitmap) init(n int64)         { b.bits = make([]atomic.Bool, n) }
func (b *atomicBitmap) setOnce(i int64) bool { return b.bits[i].CompareAndSwap(false, true) }
func (b *atomicBitmap) firstUnset(n int64) int64 {
	for i := int64(0); i < n; i++ {
		if !b.bits[i].Load() {
			return i
		}
	}
	return -1
}

func TestSharedThreshold(t *testing.T) {
	th := NewSharedThreshold()
	if !math.IsInf(th.Load(), 1) {
		t.Fatal("fresh SharedThreshold must be +Inf (no bound)")
	}
	th.Update(math.Inf(1)) // unfilled selectors publish +Inf: no-op
	if !math.IsInf(th.Load(), 1) {
		t.Fatal("+Inf publish moved the bound")
	}
	th.Update(8)
	th.Update(12)         // weaker bound: ignored
	th.Update(math.NaN()) // ignored
	if th.Load() != 8 {
		t.Fatalf("Load() = %v, want 8", th.Load())
	}
	th.Update(3)
	if th.Load() != 3 {
		t.Fatalf("Load() = %v, want 3", th.Load())
	}
	th.Reset()
	if !math.IsInf(th.Load(), 1) {
		t.Fatal("Reset must clear the bound")
	}
}

func TestSharedThresholdConcurrentTightensMonotonically(t *testing.T) {
	th := NewSharedThreshold()
	done := make(chan struct{})
	for g := 0; g < 8; g++ {
		go func(g int) {
			prev := math.Inf(1)
			for i := 0; i < 2000; i++ {
				th.Update(float64((g*2000+i)%977) + 1)
				if v := th.Load(); v > prev {
					t.Errorf("bound loosened: %v after %v", v, prev)
					break
				} else {
					prev = v
				}
			}
			done <- struct{}{}
		}(g)
	}
	for g := 0; g < 8; g++ {
		<-done
	}
	if th.Load() != 1 {
		t.Fatalf("final bound = %v, want 1", th.Load())
	}
}

func TestTopKOfferReportsAcceptance(t *testing.T) {
	tk := NewTopK(2)
	if !tk.Offer(0, 5) || !tk.Offer(1, 3) {
		t.Fatal("offers into an unfilled selector must be accepted")
	}
	if tk.Offer(2, 9) {
		t.Fatal("score above the threshold must be rejected")
	}
	if tk.Offer(3, 5) {
		t.Fatal("tie with higher index must be rejected (ranks after)")
	}
	if !tk.Offer(4, 4) {
		t.Fatal("improving score must be accepted")
	}
	if tk.Offer(5, math.NaN()) || tk.Offer(6, math.Inf(1)) {
		t.Fatal("unrankable scores must be rejected")
	}
}

func TestTopKResetAndK(t *testing.T) {
	tk := NewTopK(3)
	if tk.K() != 3 {
		t.Fatalf("K() = %d", tk.K())
	}
	tk.Offer(0, 1)
	tk.Offer(1, 2)
	tk.Reset()
	if got := tk.Sorted(); len(got) != 0 {
		t.Fatalf("Reset left %v", got)
	}
	if !math.IsInf(tk.Threshold(), 1) {
		t.Fatal("Reset must restore the unfilled threshold")
	}
	tk.Offer(7, 4)
	if got := tk.Sorted(); len(got) != 1 || got[0] != (Candidate{Index: 7, Score: 4}) {
		t.Fatalf("post-Reset selection = %v", got)
	}
}

func TestTopKSortInto(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		k := 1 + rng.Intn(6)
		tk := NewTopK(k)
		n := rng.Intn(40)
		for i := 0; i < n; i++ {
			tk.Offer(int64(i), float64(rng.Intn(8)))
		}
		want := tk.Sorted()
		buf := make([]Candidate, 0, k)
		got := tk.SortInto(buf[:0])
		if len(got) != len(want) {
			t.Fatalf("trial %d: SortInto %v, Sorted %v", trial, got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d rank %d: %v, want %v", trial, i, got[i], want[i])
			}
		}
		if len(got) > 0 && len(got) <= cap(buf) && &got[0] != &buf[:1][0] {
			t.Fatalf("trial %d: SortInto reallocated despite sufficient capacity", trial)
		}
	}
}

// TestTopKContains pins the membership scan the seeded-threshold dedup path
// depends on: present exactly for held candidates, false before any offer,
// false after eviction, and a re-offer of an evicted index must be rejected
// (the property that lets Contains scan only held entries).
func TestTopKContains(t *testing.T) {
	tk := NewTopK(2)
	if tk.Contains(1) {
		t.Fatal("empty selection claims to contain 1")
	}
	tk.Offer(1, 5)
	tk.Offer(2, 3)
	for _, idx := range []int64{1, 2} {
		if !tk.Contains(idx) {
			t.Fatalf("selection lost held index %d", idx)
		}
	}
	if tk.Contains(3) {
		t.Fatal("selection claims an index never offered")
	}
	// A better candidate evicts index 1 (the current worst).
	if !tk.Offer(3, 1) {
		t.Fatal("improving offer rejected")
	}
	if tk.Contains(1) {
		t.Fatal("evicted index still reported as held")
	}
	if !tk.Contains(3) {
		t.Fatal("accepted candidate not reported as held")
	}
	// Re-offering the evicted candidate with its old score must fail: it
	// ranks after every survivor, so Contains need not remember evictions.
	if tk.Offer(1, 5) {
		t.Fatal("re-offer of an evicted candidate was accepted")
	}
	if tk.Contains(1) {
		t.Fatal("rejected re-offer entered the selection")
	}
	tk.Reset()
	if tk.Contains(2) || tk.Contains(3) {
		t.Fatal("Reset left stale membership")
	}
}

// TestTopKContainsDuplicateOffers drives the exact hazard Contains guards
// against in seedThreshold: offering one index twice on a duplicate-score
// stream. Without dedup, the same configuration occupies two of k slots and
// drags the threshold below the true k-th best.
func TestTopKContainsDuplicateOffers(t *testing.T) {
	const k = 3
	tk := NewTopK(k)
	// Adversarial duplicate-τ stream: every candidate scores 7.0.
	for _, idx := range []int64{10, 20, 30} {
		tk.Offer(idx, 7)
	}
	// The k-th best over distinct candidates is 7; a duplicate of a held
	// index must be skipped via Contains, keeping the threshold honest.
	if !tk.Contains(20) {
		t.Fatal("held index not found")
	}
	if got := tk.Threshold(); got != 7 {
		t.Fatalf("threshold %v, want 7", got)
	}
	// The seeding pattern: only offer when not already held.
	if !tk.Contains(10) {
		t.Fatal("dedup scan missed index 10")
	}
	held := tk.Sorted()
	if len(held) != k {
		t.Fatalf("selection holds %d candidates, want %d", len(held), k)
	}
	seen := map[int64]bool{}
	for _, c := range held {
		if seen[c.Index] {
			t.Fatalf("index %d held twice", c.Index)
		}
		seen[c.Index] = true
	}
}
