package parallel

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// This file holds the sharded streaming-search primitives: ascending chunk
// claiming over an int64 index range, per-worker top-K selection with a
// deterministic (score, index) order, and an atomic shared minimum for
// cross-worker pruning bounds. The determinism contract matches ForEach:
// the merged result of a search is a pure function of the scores, not of
// goroutine scheduling, because candidates are ranked by (score, index) —
// a total order — and pruning (done by callers against Threshold/SharedMin)
// may only discard candidates that rank strictly worse than any result.

// Candidate couples a score with the index that produced it; the index is
// the deterministic tie-break.
type Candidate struct {
	Index int64
	Score float64
}

// ranksAfter reports whether a ranks strictly after b: higher score loses,
// equal scores lose to the lower index.
func (a Candidate) ranksAfter(b Candidate) bool {
	if a.Score != b.Score {
		return a.Score > b.Score
	}
	return a.Index > b.Index
}

// TopK keeps the k best (lowest-score, then lowest-index) candidates seen
// so far. The zero value is unusable; call NewTopK. Not safe for concurrent
// use — each worker owns one and the owner merges them with MergeTopK.
type TopK struct {
	k int
	// h is a binary max-heap by (score, index): h[0] is the candidate that
	// the next better offer evicts.
	h []Candidate
}

// NewTopK returns a selector for the k best candidates (k >= 1).
func NewTopK(k int) *TopK {
	if k < 1 {
		k = 1
	}
	return &TopK{k: k, h: make([]Candidate, 0, k)}
}

// Offer considers one candidate and reports whether it entered the
// selection (so callers know the Threshold may have tightened). Scores of
// +Inf and NaN are never kept (+Inf means "excluded" and NaN is unordered,
// so neither can ever win the optimizer's strict-improvement scan).
func (t *TopK) Offer(idx int64, score float64) bool {
	if math.IsInf(score, 1) || math.IsNaN(score) {
		return false
	}
	c := Candidate{Index: idx, Score: score}
	if len(t.h) < t.k {
		// NewTopK reserves capacity k and this branch runs only while
		// len < k, so the append reuses that reservation — but the guard
		// compares against k, not cap, which is beyond the analyzers'
		// len<cap whitelist.
		t.h = append(t.h, c) //het:allow hotpathprop allocfree -- heap bounded by k: NewTopK pre-reserves cap k and this append runs only while len < k
		t.up(len(t.h) - 1)
		return true
	}
	if !t.h[0].ranksAfter(c) {
		return false
	}
	t.h[0] = c
	t.down(0)
	return true
}

// K returns the selection size the selector was built for.
func (t *TopK) K() int { return t.k }

// Reset empties the selection, keeping the heap's capacity, so
// buffer-reusing searches (core's SearchReuse) stay allocation-free across
// calls.
func (t *TopK) Reset() { t.h = t.h[:0] }

// Threshold returns the score of the current k-th best candidate, or +Inf
// while fewer than k candidates are held. A candidate whose score is
// strictly greater than Threshold cannot enter the selection, so it is a
// safe pruning bound.
func (t *TopK) Threshold() float64 {
	if len(t.h) < t.k {
		return math.Inf(1)
	}
	return t.h[0].Score
}

// Sorted returns the held candidates best-first.
func (t *TopK) Sorted() []Candidate {
	out := append([]Candidate(nil), t.h...)
	sort.Slice(out, func(i, j int) bool { return out[j].ranksAfter(out[i]) })
	return out
}

// SortInto appends the held candidates best-first to dst and returns the
// extended slice. Unlike Sorted it allocates only when dst must grow, so
// buffer-reusing callers extract results allocation-free; the insertion
// sort is O(k²) with the small k a selection is built for. The (score,
// index) ranking is a total order over distinct candidates, so the output
// order matches Sorted exactly.
func (t *TopK) SortInto(dst []Candidate) []Candidate {
	start := len(dst)
	dst = append(dst, t.h...)
	out := dst[start:]
	for i := 1; i < len(out); i++ {
		c := out[i]
		j := i - 1
		for j >= 0 && out[j].ranksAfter(c) {
			out[j+1] = out[j]
			j--
		}
		out[j+1] = c
	}
	return dst
}

// Contains reports whether a candidate with the given index is currently
// held — a linear scan over at most k entries. Threshold seeding uses it to
// avoid offering one candidate twice: a duplicate would let a single
// configuration fill two selection slots and push the k-th score below the
// true subset k-th, breaking the pruning-bound guarantee. The scan covers
// only held entries, which suffices: a candidate evicted once can never
// re-enter (it ranked after every survivor, and the selection only
// tightens), so a re-offer of an evicted index is rejected by Offer anyway.
func (t *TopK) Contains(idx int64) bool {
	for i := range t.h {
		if t.h[i].Index == idx {
			return true
		}
	}
	return false
}

func (t *TopK) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !t.h[i].ranksAfter(t.h[parent]) {
			return
		}
		t.h[i], t.h[parent] = t.h[parent], t.h[i]
		i = parent
	}
}

func (t *TopK) down(i int) {
	for {
		l, r := 2*i+1, 2*i+2
		worst := i
		if l < len(t.h) && t.h[l].ranksAfter(t.h[worst]) {
			worst = l
		}
		if r < len(t.h) && t.h[r].ranksAfter(t.h[worst]) {
			worst = r
		}
		if worst == i {
			return
		}
		t.h[i], t.h[worst] = t.h[worst], t.h[i]
		i = worst
	}
}

// MergeTopK combines per-worker selections into the global k best,
// best-first. The result is independent of the list order and of how
// candidates were distributed across lists.
func MergeTopK(k int, lists [][]Candidate) []Candidate {
	if k < 1 {
		k = 1
	}
	merged := NewTopK(k)
	for _, l := range lists {
		for _, c := range l {
			merged.Offer(c.Index, c.Score)
		}
	}
	return merged.Sorted()
}

// SharedMin is an atomic, monotonically decreasing float64, used as the
// cross-worker incumbent bound of a pruned search. NewSharedMin starts it
// at +Inf.
type SharedMin struct{ bits atomic.Uint64 }

// NewSharedMin returns a shared minimum initialized to +Inf.
func NewSharedMin() *SharedMin {
	m := &SharedMin{}
	m.bits.Store(math.Float64bits(math.Inf(1)))
	return m
}

// Load returns the current minimum.
func (m *SharedMin) Load() float64 { return math.Float64frombits(m.bits.Load()) }

// Update lowers the minimum to v if v is smaller. NaN is ignored.
func (m *SharedMin) Update(v float64) {
	for {
		old := m.bits.Load()
		if !(v < math.Float64frombits(old)) {
			return
		}
		if m.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// Reset returns the bound to +Inf, so buffer-reusing sequential searches can
// recycle one instance. Never call it while workers still publish.
func (m *SharedMin) Reset() { m.bits.Store(math.Float64bits(math.Inf(1))) }

// SharedThreshold is the cross-worker pruning bound of a sharded top-K
// search: an atomic minimum over the per-worker k-th-best thresholds the
// workers publish after each accepted offer. Load is an upper bound on the
// global k-th best score — some single worker already holds k candidates at
// or below it — so a subtree whose τ lower bound is strictly greater than
// Load holds only candidates that rank strictly after at least k others
// globally and can never enter the merged top-K. Strict-compare pruning
// against it is therefore result-identical at any worker count; with k == 1
// it degenerates to SharedMin's incumbent bound. Publishing +Inf (a worker
// holding fewer than k candidates) never lowers the bound, and per-worker
// thresholds are monotone non-increasing, so the bound only tightens.
type SharedThreshold struct{ SharedMin }

// NewSharedThreshold returns a shared top-K threshold initialized to +Inf.
func NewSharedThreshold() *SharedThreshold {
	t := &SharedThreshold{}
	t.bits.Store(math.Float64bits(math.Inf(1)))
	return t
}

// Chunks runs fn over ascending chunks of [0, n) on up to `workers`
// goroutines (<= 0 selects GOMAXPROCS, 1 runs fn(0, 0, n) inline). Chunks
// are claimed in ascending order; fn receives the claiming worker's index
// in [0, workers) so callers can keep per-worker accumulators without
// locking. Chunks returns after every fn call has finished.
func Chunks(n, chunk int64, workers int, fn func(worker int, lo, hi int64)) int {
	if n <= 0 {
		return 0
	}
	if chunk <= 0 {
		chunk = 1
	}
	nchunks := (n + chunk - 1) / chunk
	wmax := nchunks
	if wmax > int64(1<<20) {
		wmax = 1 << 20
	}
	w := Workers(workers, int(wmax))
	if w == 1 {
		fn(0, 0, n)
		return 1
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < w; i++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for {
				c := next.Add(1) - 1
				if c >= nchunks {
					return
				}
				lo := c * chunk
				hi := lo + chunk
				if hi > n {
					hi = n
				}
				fn(worker, lo, hi)
			}
		}(i)
	}
	wg.Wait()
	return w
}
