package sched

import (
	"errors"
	"math"
	"strings"
	"testing"

	"hetmodel/internal/cluster"
	"hetmodel/internal/core"
)

func TestParseJobs(t *testing.T) {
	jobs, err := ParseJobs("3200x5, 9600x2, 1600")
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 3 {
		t.Fatalf("jobs = %v", jobs)
	}
	if jobs[0] != (Job{N: 3200, Count: 5}) || jobs[2] != (Job{N: 1600, Count: 1}) {
		t.Fatalf("jobs = %v", jobs)
	}
	for _, bad := range []string{"", "x5", "3200x", "0x3", "3200x0", "abc", ","} {
		if _, err := ParseJobs(bad); !errors.Is(err, ErrBadJobs) {
			t.Fatalf("ParseJobs(%q) accepted", bad)
		}
	}
}

// synthetic model world reused from core's tests (rebuilt here: class 1
// measured at P = 1,2,4,8; class 0 composed).
func testModels(t *testing.T) *core.ModelSet {
	t.Helper()
	var samples []core.Sample
	for _, m := range []int{1, 2} {
		for _, pe := range []int{1, 2, 4, 8} {
			p := pe * m
			for _, n := range []int{400, 800, 1600, 3200, 6400} {
				nf := float64(n)
				ta := 6e-10*nf*nf*nf/float64(p) + 0.2
				tc := 1e-9 * nf * nf
				if pe > 1 {
					tc = 2e-9*nf*nf*float64(p) + 0.05
				}
				samples = append(samples, core.Sample{
					Config: cluster.Configuration{Use: []cluster.ClassUse{{}, {PEs: pe, Procs: m}}},
					N:      n, P: p, Class: 1, M: m, Ta: ta, Tc: tc, Wall: ta + tc,
				})
			}
		}
	}
	for _, m := range []int{1, 2} {
		for _, n := range []int{400, 800, 1600, 3200, 6400} {
			nf := float64(n)
			ta := 1.5e-10*nf*nf*nf/float64(m) + 0.1
			tc := 0.25e-9 * nf * nf
			samples = append(samples, core.Sample{
				Config: cluster.Configuration{Use: []cluster.ClassUse{{PEs: 1, Procs: m}, {}}},
				N:      n, P: m, Class: 0, M: m, Ta: ta, Tc: tc, Wall: ta + tc,
			})
		}
	}
	ms, err := core.Build(2, samples)
	if err != nil {
		t.Fatal(err)
	}
	if err := ms.ComposeClass(0, 1, 0.25, 0.85); err != nil {
		t.Fatal(err)
	}
	return ms
}

func candidates() []cluster.Configuration {
	space := cluster.Space{
		PEChoices:   [][]int{{0, 1}, {0, 1, 2, 4, 8}},
		ProcChoices: [][]int{{1, 2}, {1, 2}},
	}
	cfgs, _ := space.Enumerate()
	return cfgs
}

func TestBuildPlan(t *testing.T) {
	ms := testModels(t)
	jobs := []Job{{N: 6400, Count: 2}, {N: 800, Count: 10}}
	policies := []Policy{
		{Name: "all-PEs", Config: cluster.Configuration{Use: []cluster.ClassUse{{PEs: 1, Procs: 1}, {PEs: 8, Procs: 1}}}},
		{Name: "fast-only", Config: cluster.Configuration{Use: []cluster.ClassUse{{PEs: 1, Procs: 1}, {}}}},
	}
	plan, err := Build(ms, candidates(), jobs, policies)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Entries) != 2 {
		t.Fatalf("entries = %v", plan.Entries)
	}
	// Entries are sorted by N.
	if plan.Entries[0].Job.N != 800 || plan.Entries[1].Job.N != 6400 {
		t.Fatalf("order: %v", plan.Entries)
	}
	// Totals add up.
	var sum float64
	for _, e := range plan.Entries {
		if math.Abs(e.Total-e.Tau*float64(e.Job.Count)) > 1e-9 {
			t.Fatalf("entry total mismatch: %+v", e)
		}
		sum += e.Total
	}
	if math.Abs(sum-plan.TotalEstimated) > 1e-9 {
		t.Fatalf("plan total mismatch: %v vs %v", sum, plan.TotalEstimated)
	}
	// The plan can never predict worse than any scorable fixed policy.
	for name, total := range plan.PolicyTotals {
		if plan.TotalEstimated > total+1e-9 {
			t.Fatalf("plan (%v) worse than policy %s (%v)", plan.TotalEstimated, name, total)
		}
	}
	out := plan.Render()
	for _, want := range []string{"Planned schedule", "estimated total", "vs all-PEs"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestBuildRejectsEmpty(t *testing.T) {
	ms := testModels(t)
	if _, err := Build(ms, candidates(), nil, nil); !errors.Is(err, ErrBadJobs) {
		t.Fatal("empty jobs accepted")
	}
}

func TestBuildDropsUnscorablePolicy(t *testing.T) {
	ms := testModels(t)
	policies := []Policy{
		{Name: "impossible", Config: cluster.Configuration{Use: []cluster.ClassUse{{}, {PEs: 1, Procs: 6}}}},
	}
	plan, err := Build(ms, candidates(), []Job{{N: 1600, Count: 1}}, policies)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := plan.PolicyTotals["impossible"]; ok {
		t.Fatal("unscorable policy kept")
	}
}
