// Package sched plans production workloads with the estimation models: for
// a mix of job sizes it selects the per-size optimal PE configuration and
// totals the predicted time, with comparisons against fixed policies.
// This is the operational wrapper around the paper's method — its stated
// purpose is "to execute conventional parallel applications efficiently on
// heterogeneous clusters without rewriting them" (§1), which in practice
// means planning a queue of runs.
package sched

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"hetmodel/internal/cluster"
	"hetmodel/internal/core"
)

// ErrBadJobs reports an unusable job list.
var ErrBadJobs = errors.New("sched: invalid job list")

// Job is one class of work: Count runs of problem size N.
type Job struct {
	N     int
	Count int
}

// ParseJobs parses a "3200x5,9600x2" style specification (NxCount pairs;
// a bare N means one run).
func ParseJobs(spec string) ([]Job, error) {
	if strings.TrimSpace(spec) == "" {
		return nil, fmt.Errorf("%w: empty specification", ErrBadJobs)
	}
	var out []Job
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		nStr, cStr, found := strings.Cut(part, "x")
		n, err := strconv.Atoi(strings.TrimSpace(nStr))
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("%w: bad size in %q", ErrBadJobs, part)
		}
		count := 1
		if found {
			count, err = strconv.Atoi(strings.TrimSpace(cStr))
			if err != nil || count <= 0 {
				return nil, fmt.Errorf("%w: bad count in %q", ErrBadJobs, part)
			}
		}
		out = append(out, Job{N: n, Count: count})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("%w: no jobs in %q", ErrBadJobs, spec)
	}
	return out, nil
}

// Entry is the planned execution of one job class.
type Entry struct {
	Job    Job
	Config cluster.Configuration
	// Tau is the estimated time of a single run; Total of all Count runs.
	Tau, Total float64
}

// Plan is a complete schedule with policy comparisons.
type Plan struct {
	Entries []Entry
	// TotalEstimated is the predicted time of the whole schedule.
	TotalEstimated float64
	// PolicyTotals maps fixed-policy names to their predicted totals
	// (only policies the model can score appear).
	PolicyTotals map[string]float64
}

// Policy is a fixed configuration applied to every job.
type Policy struct {
	Name   string
	Config cluster.Configuration
}

// Build selects the best candidate per job size and totals the schedule.
// Policies are scored for comparison; a policy unscorable at any size is
// dropped.
func Build(models *core.ModelSet, candidates []cluster.Configuration, jobs []Job, policies []Policy) (*Plan, error) {
	if len(jobs) == 0 {
		return nil, fmt.Errorf("%w: no jobs", ErrBadJobs)
	}
	sorted := append([]Job(nil), jobs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].N < sorted[j].N })

	plan := &Plan{PolicyTotals: map[string]float64{}}
	policyOK := map[string]bool{}
	for _, p := range policies {
		policyOK[p.Name] = true
	}
	for _, job := range sorted {
		best, tau, err := models.Optimize(candidates, job.N)
		if err != nil {
			return nil, fmt.Errorf("sched: N=%d: %w", job.N, err)
		}
		total := tau * float64(job.Count)
		plan.Entries = append(plan.Entries, Entry{Job: job, Config: best, Tau: tau, Total: total})
		plan.TotalEstimated += total
		for _, p := range policies {
			if !policyOK[p.Name] {
				continue
			}
			est, err := models.Estimate(p.Config, float64(job.N))
			if err != nil {
				policyOK[p.Name] = false
				delete(plan.PolicyTotals, p.Name)
				continue
			}
			plan.PolicyTotals[p.Name] += est * float64(job.Count)
		}
	}
	return plan, nil
}

// Render prints the schedule.
func (p *Plan) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Planned schedule (%d job classes)\n", len(p.Entries))
	fmt.Fprintf(&b, "  %8s %6s %16s %10s %12s\n", "N", "count", "config", "tau [s]", "total [s]")
	for _, e := range p.Entries {
		fmt.Fprintf(&b, "  %8d %6d %16s %10.1f %12.1f\n",
			e.Job.N, e.Job.Count, e.Config, e.Tau, e.Total)
	}
	fmt.Fprintf(&b, "  estimated total: %.1f s (%.2f h)\n", p.TotalEstimated, p.TotalEstimated/3600)
	names := make([]string, 0, len(p.PolicyTotals))
	for name := range p.PolicyTotals {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		total := p.PolicyTotals[name]
		fmt.Fprintf(&b, "  vs %-16s %.1f s (%+.1f%%)\n",
			name+":", total, 100*(p.TotalEstimated-total)/total)
	}
	return b.String()
}
