package lsq

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"hetmodel/internal/linalg"
)

func TestMultifitLinearExactLine(t *testing.T) {
	xs := []float64{0, 1, 2, 3, 4}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 3*x + 7
	}
	fit, err := FitPolynomial(xs, ys, []int{1, 0})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Coeff[0]-3) > 1e-10 || math.Abs(fit.Coeff[1]-7) > 1e-10 {
		t.Fatalf("coeff = %v", fit.Coeff)
	}
	if fit.ChiSq > 1e-18 {
		t.Fatalf("chisq = %v", fit.ChiSq)
	}
	if math.Abs(fit.RSquared-1) > 1e-12 {
		t.Fatalf("R² = %v", fit.RSquared)
	}
	if fit.DoF != 3 {
		t.Fatalf("dof = %d", fit.DoF)
	}
}

func TestMultifitCubicRecovery(t *testing.T) {
	// The paper's Ta basis: k0 N³ + k1 N² + k2 N + k3.
	want := []float64{2e-9, 3e-6, 4e-4, 0.5}
	degrees := []int{3, 2, 1, 0}
	xs := []float64{400, 600, 800, 1200, 1600, 2400, 3200, 4800, 6400}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = EvalPolynomial(want, degrees, x)
	}
	fit, err := FitPolynomial(xs, ys, degrees)
	if err != nil {
		t.Fatal(err)
	}
	for j := range want {
		if rel := math.Abs(fit.Coeff[j]-want[j]) / math.Abs(want[j]); rel > 1e-6 {
			t.Fatalf("coeff[%d] = %v want %v", j, fit.Coeff[j], want[j])
		}
	}
}

func TestMultifitTooFewObservations(t *testing.T) {
	x := linalg.NewMatrix(2, 3)
	if _, err := MultifitLinear(x, []float64{1, 2}); !errors.Is(err, ErrBadInput) {
		t.Fatalf("want ErrBadInput, got %v", err)
	}
}

func TestMultifitDimensionMismatch(t *testing.T) {
	x := linalg.NewMatrix(3, 2)
	if _, err := MultifitLinear(x, []float64{1, 2}); !errors.Is(err, ErrBadInput) {
		t.Fatalf("want ErrBadInput, got %v", err)
	}
}

func TestPredict(t *testing.T) {
	fit := &Fit{Coeff: []float64{2, 1}}
	y, err := fit.Predict([]float64{3, 1})
	if err != nil || y != 7 {
		t.Fatalf("predict = %v, %v", y, err)
	}
	if _, err := fit.Predict([]float64{1}); err == nil {
		t.Fatal("expected length error")
	}
}

func TestWeightedFitIgnoresZeroWeightOutlier(t *testing.T) {
	xs := []float64{0, 1, 2, 3}
	ys := []float64{1, 3, 5, 1000} // last point is garbage
	w := []float64{1, 1, 1, 0}
	design := PolynomialDesign(xs, []int{1, 0})
	fit, err := MultifitWeighted(design, w, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Coeff[0]-2) > 1e-9 || math.Abs(fit.Coeff[1]-1) > 1e-9 {
		t.Fatalf("weighted coeff = %v", fit.Coeff)
	}
}

func TestWeightedNegativeWeight(t *testing.T) {
	design := PolynomialDesign([]float64{1, 2, 3}, []int{1, 0})
	if _, err := MultifitWeighted(design, []float64{1, -1, 1}, []float64{1, 2, 3}); !errors.Is(err, ErrBadInput) {
		t.Fatalf("want ErrBadInput, got %v", err)
	}
}

func TestWeightedDimensionMismatch(t *testing.T) {
	design := PolynomialDesign([]float64{1, 2, 3}, []int{1, 0})
	if _, err := MultifitWeighted(design, []float64{1, 1}, []float64{1, 2, 3}); !errors.Is(err, ErrBadInput) {
		t.Fatal("want ErrBadInput")
	}
}

func TestNormalEquationsAgreeWithQR(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	x := linalg.NewMatrix(20, 4)
	y := make([]float64, 20)
	for i := 0; i < 20; i++ {
		row := x.RowView(i)
		for j := range row {
			row[j] = rng.NormFloat64()
		}
		y[i] = rng.NormFloat64()
	}
	qr, err := MultifitLinear(x, y)
	if err != nil {
		t.Fatal(err)
	}
	ne, err := MultifitNormalEquations(x, y)
	if err != nil {
		t.Fatal(err)
	}
	for j := range qr.Coeff {
		if math.Abs(qr.Coeff[j]-ne.Coeff[j]) > 1e-8 {
			t.Fatalf("coeff[%d]: qr %v vs ne %v", j, qr.Coeff[j], ne.Coeff[j])
		}
	}
}

func TestNormalEquationsBadInput(t *testing.T) {
	if _, err := MultifitNormalEquations(linalg.NewMatrix(2, 3), []float64{1, 2}); !errors.Is(err, ErrBadInput) {
		t.Fatal("want ErrBadInput")
	}
	if _, err := MultifitNormalEquations(linalg.NewMatrix(3, 2), []float64{1, 2}); !errors.Is(err, ErrBadInput) {
		t.Fatal("want ErrBadInput for length mismatch")
	}
}

func TestFitPolynomialLengthMismatch(t *testing.T) {
	if _, err := FitPolynomial([]float64{1, 2}, []float64{1}, []int{1, 0}); !errors.Is(err, ErrBadInput) {
		t.Fatal("want ErrBadInput")
	}
}

func TestRSquaredConstantData(t *testing.T) {
	// Constant observations, intercept-only model: exact fit, R² = 1.
	fit, err := FitPolynomial([]float64{1, 2, 3}, []float64{5, 5, 5}, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	if fit.RSquared != 1 {
		t.Fatalf("R² = %v, want 1", fit.RSquared)
	}
}

// Property: fitted coefficients recover the generating polynomial when the
// data is noise-free and the system is well posed.
func TestPolynomialRecoveryProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		degrees := []int{2, 1, 0}
		want := []float64{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
		n := 4 + rng.Intn(10)
		xs := make([]float64, n)
		ys := make([]float64, n)
		for i := range xs {
			xs[i] = float64(i + 1)
			ys[i] = EvalPolynomial(want, degrees, xs[i])
		}
		fit, err := FitPolynomial(xs, ys, degrees)
		if err != nil {
			return false
		}
		for j := range want {
			if math.Abs(fit.Coeff[j]-want[j]) > 1e-6*(1+math.Abs(want[j])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: residuals of the LS solution are orthogonal to the column space
// (chi-squared never exceeds that of the zero model plus tolerance).
func TestLeastSquaresOptimalityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows := 5 + rng.Intn(15)
		cols := 1 + rng.Intn(4)
		x := linalg.NewMatrix(rows, cols)
		y := make([]float64, rows)
		for i := 0; i < rows; i++ {
			for j := 0; j < cols; j++ {
				x.Set(i, j, rng.NormFloat64())
			}
			y[i] = rng.NormFloat64()
		}
		fit, err := MultifitLinear(x, y)
		if err != nil {
			return true // rank-deficient draw
		}
		// Perturbing any coefficient must not reduce chi-squared.
		for j := range fit.Coeff {
			for _, d := range []float64{1e-3, -1e-3} {
				c := append([]float64(nil), fit.Coeff...)
				c[j] += d
				var chisq float64
				for i := 0; i < rows; i++ {
					pred := 0.0
					for k := 0; k < cols; k++ {
						pred += x.At(i, k) * c[k]
					}
					r := y[i] - pred
					chisq += r * r
				}
				if chisq < fit.ChiSq-1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestCovarianceKnown(t *testing.T) {
	// Straight-line fit with unit-variance-scale residuals: compare the
	// covariance against the closed form Var(slope) = sigma^2 / S_xx.
	xs := []float64{0, 1, 2, 3, 4, 5}
	ys := []float64{0.1, 0.9, 2.2, 2.8, 4.1, 4.9}
	fit, err := FitPolynomial(xs, ys, []int{1, 0})
	if err != nil {
		t.Fatal(err)
	}
	if fit.Cov == nil {
		t.Fatal("no covariance computed")
	}
	sigma2 := fit.ChiSq / float64(fit.DoF)
	mean := 2.5
	var sxx float64
	for _, x := range xs {
		sxx += (x - mean) * (x - mean)
	}
	wantVarSlope := sigma2 / sxx
	if math.Abs(fit.Cov.At(0, 0)-wantVarSlope) > 1e-12 {
		t.Fatalf("Var(slope) = %v, want %v", fit.Cov.At(0, 0), wantVarSlope)
	}
	if se := fit.StdErr(0); math.Abs(se-math.Sqrt(wantVarSlope)) > 1e-12 {
		t.Fatalf("StdErr = %v", se)
	}
	// Out-of-range StdErr is 0.
	if fit.StdErr(9) != 0 || fit.StdErr(-1) != 0 {
		t.Fatal("out-of-range StdErr should be 0")
	}
}

func TestCovarianceNilForZeroDoF(t *testing.T) {
	// Two points, two coefficients: exact interpolation, no variance info
	// — the NS-model pathology at the statistics level.
	fit, err := FitPolynomial([]float64{1, 2}, []float64{3, 5}, []int{1, 0})
	if err != nil {
		t.Fatal(err)
	}
	if fit.Cov != nil {
		t.Fatal("zero-DoF fit should have nil covariance")
	}
	if fit.StdErr(0) != 0 {
		t.Fatal("zero-DoF StdErr should be 0")
	}
}
