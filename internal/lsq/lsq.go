// Package lsq provides linear least-squares fitting in the style of GSL's
// gsl_multifit_linear, which the paper uses to extract the k0–k11 model
// coefficients. Fits are computed with Householder QR from internal/linalg
// (numerically safer than normal equations); a normal-equations path is kept
// for the ablation benchmarks.
package lsq

import (
	"errors"
	"fmt"
	"math"

	"hetmodel/internal/linalg"
)

// ErrBadInput reports inconsistent observation/design dimensions.
var ErrBadInput = errors.New("lsq: inconsistent input dimensions")

// Fit is the result of a linear least-squares fit y ≈ X·c.
type Fit struct {
	// Coeff holds the fitted coefficients c.
	Coeff []float64
	// ChiSq is the sum of squared residuals ||y - X·c||².
	ChiSq float64
	// RSquared is the coefficient of determination (1 when the model
	// explains all variance; can be negative for models worse than the
	// mean). Zero-variance observations yield RSquared = 1 if the fit is
	// exact, else 0.
	RSquared float64
	// DoF is the number of degrees of freedom (observations - parameters).
	DoF int
	// Cov is the coefficient covariance matrix σ²·(XᵀX)⁻¹ with
	// σ² = ChiSq/DoF (GSL's gsl_multifit_linear also reports it). It is
	// nil when DoF = 0 — exactly interpolating fits carry no variance
	// information, the pathology behind the paper's NS model.
	Cov *linalg.Matrix
}

// StdErr returns the standard error of coefficient j (0 when no covariance
// is available).
func (f *Fit) StdErr(j int) float64 {
	if f.Cov == nil || j < 0 || j >= f.Cov.Rows {
		return 0
	}
	v := f.Cov.At(j, j)
	if v <= 0 {
		return 0
	}
	return math.Sqrt(v)
}

// Predict evaluates the fitted model on a design row x.
func (f *Fit) Predict(x []float64) (float64, error) {
	if len(x) != len(f.Coeff) {
		return 0, fmt.Errorf("%w: row has %d terms, fit has %d", ErrBadInput, len(x), len(f.Coeff))
	}
	var s float64
	for i, v := range x {
		s += v * f.Coeff[i]
	}
	return s, nil
}

// MultifitLinear fits y ≈ X·c by unweighted linear least squares, mirroring
// gsl_multifit_linear. X is the design matrix (one row per observation, one
// column per coefficient); len(y) must equal X.Rows, and X.Rows >= X.Cols.
func MultifitLinear(x *linalg.Matrix, y []float64) (*Fit, error) {
	if len(y) != x.Rows {
		return nil, fmt.Errorf("%w: %d observations vs %d design rows", ErrBadInput, len(y), x.Rows)
	}
	if x.Rows < x.Cols {
		return nil, fmt.Errorf("%w: %d observations for %d parameters", ErrBadInput, x.Rows, x.Cols)
	}
	qr, err := linalg.FactorizeQR(x)
	if err != nil {
		return nil, err
	}
	c, err := qr.SolveLS(y)
	if err != nil {
		return nil, err
	}
	fit := summarize(x, y, c)
	fit.Cov = covariance(x, fit.ChiSq, fit.DoF)
	return fit, nil
}

// covariance computes σ²·(XᵀX)⁻¹, or nil when dof <= 0 or XᵀX is singular.
func covariance(x *linalg.Matrix, chisq float64, dof int) *linalg.Matrix {
	if dof <= 0 {
		return nil
	}
	xt := x.Transpose()
	xtx, err := linalg.Mul(xt, x)
	if err != nil {
		return nil
	}
	f, err := linalg.Factorize(xtx)
	if err != nil {
		return nil
	}
	p := x.Cols
	cov := linalg.NewMatrix(p, p)
	e := make([]float64, p)
	sigma2 := chisq / float64(dof)
	for j := 0; j < p; j++ {
		for i := range e {
			e[i] = 0
		}
		e[j] = 1
		col, err := f.Solve(e)
		if err != nil {
			return nil
		}
		for i := 0; i < p; i++ {
			cov.Set(i, j, col[i]*sigma2)
		}
	}
	return cov
}

// MultifitWeighted fits y ≈ X·c minimizing sum w_i (y_i - X_i·c)², mirroring
// gsl_multifit_wlinear. All weights must be nonnegative.
func MultifitWeighted(x *linalg.Matrix, w, y []float64) (*Fit, error) {
	if len(y) != x.Rows || len(w) != x.Rows {
		return nil, fmt.Errorf("%w: %d obs, %d weights, %d rows", ErrBadInput, len(y), len(w), x.Rows)
	}
	xs := x.Clone()
	ys := make([]float64, len(y))
	for i := 0; i < xs.Rows; i++ {
		if w[i] < 0 {
			return nil, fmt.Errorf("%w: negative weight at %d", ErrBadInput, i)
		}
		s := math.Sqrt(w[i])
		row := xs.RowView(i)
		for j := range row {
			row[j] *= s
		}
		ys[i] = y[i] * s
	}
	if xs.Rows < xs.Cols {
		return nil, fmt.Errorf("%w: %d observations for %d parameters", ErrBadInput, xs.Rows, xs.Cols)
	}
	qr, err := linalg.FactorizeQR(xs)
	if err != nil {
		return nil, err
	}
	c, err := qr.SolveLS(ys)
	if err != nil {
		return nil, err
	}
	// Report chi-squared and R² in the weighted metric.
	return summarizeWeighted(x, w, y, c), nil
}

// MultifitNormalEquations solves the same problem via the normal equations
// X^T X c = X^T y. It is faster for tall-skinny systems but numerically less
// robust; retained for the DESIGN.md ablation.
func MultifitNormalEquations(x *linalg.Matrix, y []float64) (*Fit, error) {
	if len(y) != x.Rows {
		return nil, fmt.Errorf("%w: %d observations vs %d design rows", ErrBadInput, len(y), x.Rows)
	}
	if x.Rows < x.Cols {
		return nil, fmt.Errorf("%w: %d observations for %d parameters", ErrBadInput, x.Rows, x.Cols)
	}
	xt := x.Transpose()
	xtx, err := linalg.Mul(xt, x)
	if err != nil {
		return nil, err
	}
	xty, err := linalg.MulVec(xt, y)
	if err != nil {
		return nil, err
	}
	c, err := linalg.SolveLinear(xtx, xty)
	if err != nil {
		return nil, err
	}
	return summarize(x, y, c), nil
}

func summarize(x *linalg.Matrix, y, c []float64) *Fit {
	w := make([]float64, len(y))
	for i := range w {
		w[i] = 1
	}
	return summarizeWeighted(x, w, y, c)
}

func summarizeWeighted(x *linalg.Matrix, w, y, c []float64) *Fit {
	var chisq, wsum, wmean float64
	for i := range y {
		wsum += w[i]
		wmean += w[i] * y[i]
	}
	if wsum > 0 {
		wmean /= wsum
	}
	var tss float64
	for i := range y {
		pred := 0.0
		row := x.RowView(i)
		for j, v := range row {
			pred += v * c[j]
		}
		d := y[i] - pred
		chisq += w[i] * d * d
		dm := y[i] - wmean
		tss += w[i] * dm * dm
	}
	r2 := 0.0
	switch {
	case tss > 0:
		r2 = 1 - chisq/tss
	case chisq == 0:
		r2 = 1
	}
	return &Fit{
		Coeff:    c,
		ChiSq:    chisq,
		RSquared: r2,
		DoF:      x.Rows - x.Cols,
	}
}

// PolynomialDesign builds a design matrix whose row i is
// [xs[i]^degrees[0], xs[i]^degrees[1], ...]. Degree 0 yields the intercept
// column. This is the basis builder used for the paper's N-T models
// (degrees 3,2,1,0 for Ta and 2,1,0 for Tc).
func PolynomialDesign(xs []float64, degrees []int) *linalg.Matrix {
	m := linalg.NewMatrix(len(xs), len(degrees))
	for i, x := range xs {
		row := m.RowView(i)
		for j, d := range degrees {
			row[j] = math.Pow(x, float64(d))
		}
	}
	return m
}

// FitPolynomial fits y ≈ sum_j c_j x^degrees[j] and returns the fit.
func FitPolynomial(xs, ys []float64, degrees []int) (*Fit, error) {
	if len(xs) != len(ys) {
		return nil, fmt.Errorf("%w: %d xs vs %d ys", ErrBadInput, len(xs), len(ys))
	}
	return MultifitLinear(PolynomialDesign(xs, degrees), ys)
}

// EvalPolynomial evaluates a polynomial fit (same degrees) at x.
//
// Deliberately the power-sum form, term by term via math.Pow: a Horner
// rewrite is one multiply-add per coefficient but rounds differently at
// the last ULP, and the committed figures assert byte-identical
// regeneration (full-precision coordinates) across releases. The float64
// conversion rounds each term before the add, which forbids FMA fusion on
// platforms that would otherwise fuse it — the same byte-stability, held
// across architectures.
//
//het:bitexact
func EvalPolynomial(coeff []float64, degrees []int, x float64) float64 {
	var s float64
	for j, d := range degrees {
		s += float64(coeff[j] * math.Pow(x, float64(d)))
	}
	return s
}
