// Package fleet is the scatter-gather front end over a set of hetserve
// members: one Router owns the compiled configuration grid, partitions its
// index space into one contiguous range per healthy member, fans a query out
// as shard-restricted member queries, and merges the member top-K lists with
// the same deterministic (τ, index) total order the single-planner search
// uses. The merged answer is bit-identical to one planner searching the
// whole grid — sharding only moves work, never changes ranking (DESIGN.md
// §14).
//
// Beyond the scatter path the router carries the fleet-operations surface a
// single planner cannot: health-checked membership with grid-compatibility
// probes, hash affinity pinning small cached queries to one member,
// re-scattering a dead member's range across survivors, and coordinated
// two-phase reload/refit that moves every member to the new model version or
// none of them.
package fleet

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"hetmodel/internal/cluster"
)

// Options configures a Router. Members is required; everything else has a
// serviceable default.
type Options struct {
	// Members are the base URLs of the hetserve planners to scatter over
	// (e.g. "http://10.0.0.1:8080"). Order is the scatter order: member i
	// owns the i-th contiguous slice of the grid-index space.
	Members []string
	// ShardMin is the smallest grid size worth scattering. Below it the
	// whole-grid search is cheaper than the fan-out, so queries route to a
	// single member chosen by hashing the problem size — repeats of a size
	// land on the same member and hit its warm evaluator cache. Default
	// 4096; 0 keeps the default, negative always scatters.
	ShardMin int64
	// MaxInFlight bounds concurrent member requests across all scatters
	// (default: 4x member count).
	MaxInFlight int
	// Timeout bounds each member request (default 15s).
	Timeout time.Duration
	// RefitAuth is the members' shared refit secret, forwarded on the
	// coordinated refit path. Empty disables fleet refit, exactly like an
	// unset -refit-auth disables a member's.
	RefitAuth string
	// Client overrides the pooled HTTP client (tests).
	Client *http.Client
}

// ErrNoMembers is returned when no healthy member is available to serve.
var ErrNoMembers = errors.New("fleet: no healthy members")

// member is one hetserve planner in the fleet. healthy flips false when a
// health probe or a scattered request fails, and back true on the next
// successful probe; the scatter path reads it, the health path writes it.
type member struct {
	url     string
	healthy atomic.Bool
	version atomic.Int64

	mu      sync.Mutex
	lastErr string
}

func (m *member) fail(err error) {
	m.healthy.Store(false)
	m.mu.Lock()
	m.lastErr = err.Error()
	m.mu.Unlock()
}

func (m *member) ok(version int64) {
	m.version.Store(version)
	m.healthy.Store(true)
	m.mu.Lock()
	m.lastErr = ""
	m.mu.Unlock()
}

func (m *member) lastError() string {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.lastErr
}

// Router is the scatter-gather front end. It is safe for concurrent use.
type Router struct {
	grid    *cluster.Grid
	opts    Options
	members []*member
	client  *http.Client
	sem     chan struct{}

	scatters   atomic.Int64 // queries answered by fan-out + merge
	affinity   atomic.Int64 // queries routed whole to one member by size hash
	rescatters atomic.Int64 // dead-member ranges re-scattered to survivors
	retries    atomic.Int64 // full scatter retries (version races)
}

// New compiles the search space — the same compilation every member performs
// — and returns a Router over opts.Members. Members start healthy; call
// CheckHealth (or run HealthLoop) to probe them for real.
func New(space cluster.Space, opts Options) (*Router, error) {
	if len(opts.Members) == 0 {
		return nil, errors.New("fleet: no members configured")
	}
	grid, err := space.Compile()
	if err != nil {
		return nil, err
	}
	if opts.ShardMin == 0 {
		opts.ShardMin = 4096
	}
	if opts.MaxInFlight <= 0 {
		opts.MaxInFlight = 4 * len(opts.Members)
	}
	if opts.Timeout <= 0 {
		opts.Timeout = 15 * time.Second
	}
	client := opts.Client
	if client == nil {
		// One pooled client; net/http keeps a per-host (so per-member) idle
		// connection pool under it, sized to survive full-fleet fan-out.
		client = &http.Client{
			Timeout: opts.Timeout,
			Transport: &http.Transport{
				MaxIdleConns:        4 * opts.MaxInFlight,
				MaxIdleConnsPerHost: opts.MaxInFlight,
				IdleConnTimeout:     90 * time.Second,
			},
		}
	}
	r := &Router{
		grid:    grid,
		opts:    opts,
		client:  client,
		sem:     make(chan struct{}, opts.MaxInFlight),
		members: make([]*member, len(opts.Members)),
	}
	for i, u := range opts.Members {
		r.members[i] = &member{url: u}
		r.members[i].healthy.Store(true)
	}
	return r, nil
}

// Grid exposes the router's compiled grid (tests, handlers).
func (r *Router) Grid() *cluster.Grid { return r.grid }

// healthyMembers returns the healthy members in configured order. The order
// is load-bearing: scatter assigns range i to the i-th healthy member, so a
// stable order keeps range ownership stable while membership is stable.
func (r *Router) healthyMembers() []*member {
	out := make([]*member, 0, len(r.members))
	for _, m := range r.members {
		if m.healthy.Load() {
			out = append(out, m)
		}
	}
	return out
}

// affinityMember hashes a problem size onto the healthy member list: the
// whole-query route for grids too small to scatter. Same size, same healthy
// set, same member — repeated sizes reuse one member's evaluator cache
// instead of compiling on all of them.
func affinityMember(healthy []*member, n int) *member {
	h := fnv.New64a()
	var buf [8]byte
	for i := 0; i < 8; i++ {
		buf[i] = byte(n >> (8 * i))
	}
	h.Write(buf[:])
	return healthy[h.Sum64()%uint64(len(healthy))]
}

// CheckHealth probes every member's /v1/healthz concurrently and updates the
// membership: a member is healthy when it answers and its grid size matches
// the router's compilation — a member searching a different space would
// silently return ranks from another index universe, so it is excluded
// outright. Returns the number of healthy members.
func (r *Router) CheckHealth(ctx context.Context) int {
	var wg sync.WaitGroup
	for _, m := range r.members {
		wg.Add(1)
		go func(m *member) {
			defer wg.Done()
			var hz struct {
				Status   string `json:"status"`
				Version  int64  `json:"version"`
				GridSize int64  `json:"gridSize"`
			}
			if err := r.getJSON(ctx, m.url+"/v1/healthz", &hz); err != nil {
				m.fail(err)
				return
			}
			if hz.GridSize != r.grid.Size() {
				m.fail(fmt.Errorf("grid size %d, router compiled %d: incompatible space", hz.GridSize, r.grid.Size()))
				return
			}
			m.ok(hz.Version)
		}(m)
	}
	wg.Wait()
	return len(r.healthyMembers())
}

// HealthLoop runs CheckHealth every interval until ctx ends. Run it in a
// goroutine next to the HTTP server.
func (r *Router) HealthLoop(ctx context.Context, interval time.Duration) {
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			r.CheckHealth(ctx)
		}
	}
}
