package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"

	"hetmodel/internal/core"
	"hetmodel/internal/parallel"
	"hetmodel/internal/serve"
)

// This file is the query path: partition, fan out, gather, merge, retry.
//
// Correctness rests on two facts. First, SearchOptions.Range restriction is
// exact: a member searching [lo, hi) scores precisely the candidates with
// those global grid indices, so a partition of [0, size) covers every
// candidate once. Second, parallel.MergeTopK ranks on the same (τ, index)
// total order the unsharded search uses, and a total order makes the merged
// K-best independent of how candidates were distributed over members. The
// router therefore returns candidates bit-identical to a single planner —
// including ties, which the strict-compare order breaks by grid index on
// both paths.

// QueryResponse is the router's answer: the member QueryResponse shape plus
// fleet bookkeeping. Size/Scored/Pruned sum over members; CacheHit is true
// only when every member answered from cache; Batched sums member batch
// sizes.
type QueryResponse struct {
	serve.QueryResponse
	// Members is the number of member answers merged (1 on the affinity
	// path); Rescattered counts ranges re-assigned after a member failure
	// while answering this query.
	Members     int `json:"members"`
	Rescattered int `json:"rescattered,omitempty"`
}

// memberAnswer pairs one member's response with the shard it covered.
type memberAnswer struct {
	shard core.IndexRange
	resp  serve.QueryResponse
}

// Query answers a planning query over the fleet. Large grids scatter over
// the healthy members and merge; grids below ShardMin route whole to the
// size-affine member.
func (r *Router) Query(ctx context.Context, req serve.QueryRequest) (*QueryResponse, error) {
	if req.ShardLo != 0 || req.ShardHi != 0 {
		return nil, fmt.Errorf("fleet: shard parameters are owned by the router; query members directly to restrict ranges")
	}
	healthy := r.healthyMembers()
	if len(healthy) == 0 {
		// Membership may just be stale (e.g. every member restarted since
		// the last probe): re-probe once before giving up.
		if r.CheckHealth(ctx) == 0 {
			return nil, ErrNoMembers
		}
		healthy = r.healthyMembers()
	}
	if r.grid.Size() < r.opts.ShardMin {
		return r.queryAffine(ctx, req, healthy)
	}
	res, err := r.queryScatter(ctx, req, healthy)
	if err == nil || !isVersionRace(err) {
		return res, err
	}
	// Version mismatch across members: a reload/refit landed mid-scatter.
	// The fleet converges (coordinated swaps move everyone), so one full
	// retry against fresh membership resolves the race.
	r.retries.Add(1)
	return r.queryScatter(ctx, req, r.healthyMembers())
}

// queryAffine forwards the whole query to the size-affine member.
func (r *Router) queryAffine(ctx context.Context, req serve.QueryRequest, healthy []*member) (*QueryResponse, error) {
	m := affinityMember(healthy, req.N)
	var resp serve.QueryResponse
	if err := r.postJSON(ctx, m.url+"/v1/query", req, &resp); err != nil {
		m.fail(err)
		return nil, fmt.Errorf("fleet: affine member %s: %w", m.url, err)
	}
	r.affinity.Add(1)
	return &QueryResponse{QueryResponse: resp, Members: 1}, nil
}

// queryScatter fans req out shard-by-shard over members and merges. A failed
// member drops out of the membership and its range re-scatters across the
// survivors (one level deep — a failure during re-scatter fails the query).
func (r *Router) queryScatter(ctx context.Context, req serve.QueryRequest, healthy []*member) (*QueryResponse, error) {
	if len(healthy) == 0 {
		return nil, ErrNoMembers
	}
	full := core.IndexRange{Lo: 0, Hi: r.grid.Size()}
	answers, failed := r.fanOut(ctx, req, healthy, partition(full, len(healthy)))
	rescattered := 0
	if len(failed) > 0 {
		survivors := r.healthyMembers()
		if len(survivors) == 0 {
			return nil, fmt.Errorf("fleet: all members failed (first: %w)", failed[0].err)
		}
		for _, f := range failed {
			r.rescatters.Add(1)
			rescattered++
			sub, subFailed := r.fanOut(ctx, req, survivors, partition(f.shard, len(survivors)))
			if len(subFailed) > 0 {
				return nil, fmt.Errorf("fleet: re-scatter of [%d, %d) failed: %w",
					f.shard.Lo, f.shard.Hi, subFailed[0].err)
			}
			answers = append(answers, sub...)
		}
	}
	res, err := mergeAnswers(req, answers)
	if err != nil {
		return nil, err
	}
	res.Rescattered = rescattered
	r.scatters.Add(1)
	return res, nil
}

// failedShard is one member request that did not produce an answer.
type failedShard struct {
	shard core.IndexRange
	err   error
}

// fanOut sends req restricted to shards[i] to members[i] (lists are the same
// length), bounded by the router's in-flight semaphore, and splits the
// outcomes. Members that fail are marked unhealthy here; barren shards
// (zero-length after partitioning fewer candidates than members) are skipped
// outright.
func (r *Router) fanOut(ctx context.Context, req serve.QueryRequest, members []*member, shards []core.IndexRange) ([]memberAnswer, []failedShard) {
	var (
		mu      sync.Mutex
		answers []memberAnswer
		failed  []failedShard
		wg      sync.WaitGroup
	)
	for i := range members {
		if shards[i].Lo >= shards[i].Hi {
			continue
		}
		wg.Add(1)
		go func(m *member, shard core.IndexRange) {
			defer wg.Done()
			sub := req
			sub.ShardLo, sub.ShardHi = shard.Lo, shard.Hi
			var resp serve.QueryResponse
			err := r.postJSON(ctx, m.url+"/v1/query", sub, &resp)
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				m.fail(err)
				failed = append(failed, failedShard{shard: shard, err: fmt.Errorf("%s: %w", m.url, err)})
				return
			}
			m.version.Store(resp.Version)
			answers = append(answers, memberAnswer{shard: shard, resp: resp})
		}(members[i], shards[i])
	}
	wg.Wait()
	return answers, failed
}

// versionRaceError marks a scatter whose members answered from different
// model versions; Query retries these once.
type versionRaceError struct{ low, high int64 }

func (e *versionRaceError) Error() string {
	return fmt.Sprintf("fleet: members answered from versions %d..%d; fleet not converged", e.low, e.high)
}

func isVersionRace(err error) bool {
	var v *versionRaceError
	return errors.As(err, &v)
}

// mergeAnswers folds member answers into the fleet response: counters sum,
// candidate lists merge under the global (τ, index) order. Member candidate
// objects are re-emitted as received — encoding/json prints float64 in
// shortest-round-trip form, so decode + re-encode preserves every byte the
// member produced.
func mergeAnswers(req serve.QueryRequest, answers []memberAnswer) (*QueryResponse, error) {
	if len(answers) == 0 {
		return nil, ErrNoMembers
	}
	// Deterministic fold order regardless of arrival order.
	sort.Slice(answers, func(i, j int) bool { return answers[i].shard.Lo < answers[j].shard.Lo })
	k := req.TopK
	if k <= 0 {
		k = 1
	}
	out := &QueryResponse{Members: len(answers)}
	out.CacheHit = true
	minV, maxV := answers[0].resp.Version, answers[0].resp.Version
	lists := make([][]parallel.Candidate, len(answers))
	byIndex := make(map[int64]serve.CandidateJSON)
	for i, a := range answers {
		if a.resp.Version < minV {
			minV = a.resp.Version
		}
		if a.resp.Version > maxV {
			maxV = a.resp.Version
		}
		out.N = a.resp.N
		out.Size += a.resp.Size
		out.Scored += a.resp.Scored
		out.Pruned += a.resp.Pruned
		out.Batched += a.resp.Batched
		out.CacheHit = out.CacheHit && a.resp.CacheHit
		lists[i] = make([]parallel.Candidate, len(a.resp.Best))
		for j, c := range a.resp.Best {
			if c.Index < a.shard.Lo || c.Index >= a.shard.Hi {
				return nil, fmt.Errorf("fleet: member returned index %d outside its shard [%d, %d)",
					c.Index, a.shard.Lo, a.shard.Hi)
			}
			lists[i][j] = parallel.Candidate{Index: c.Index, Score: c.Tau}
			byIndex[c.Index] = c
		}
	}
	if minV != maxV {
		return nil, &versionRaceError{low: minV, high: maxV}
	}
	out.Version = minV
	merged := parallel.MergeTopK(k, lists)
	out.Best = make([]serve.CandidateJSON, len(merged))
	for i, c := range merged {
		out.Best[i] = byIndex[c.Index]
	}
	return out, nil
}

// partition splits [r.Lo, r.Hi) into parts contiguous ranges of near-equal
// length, in order. Ranges may be empty when parts exceeds the span.
func partition(r core.IndexRange, parts int) []core.IndexRange {
	span := r.Hi - r.Lo
	out := make([]core.IndexRange, parts)
	for i := range out {
		out[i] = core.IndexRange{
			Lo: r.Lo + span*int64(i)/int64(parts),
			Hi: r.Lo + span*int64(i+1)/int64(parts),
		}
	}
	return out
}

// getJSON / postJSON are the member client: bounded by the in-flight
// semaphore, JSON in and out, member error bodies surfaced as errors.

func (r *Router) getJSON(ctx context.Context, url string, out any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	return r.do(req, out)
}

func (r *Router) postJSON(ctx context.Context, url string, body, out any) error {
	buf, err := json.Marshal(body)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(buf))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	if r.opts.RefitAuth != "" && strings.Contains(url, "/v1/refit") {
		req.Header.Set(serve.RefitAuthHeader, r.opts.RefitAuth)
	}
	return r.do(req, out)
}

func (r *Router) do(req *http.Request, out any) error {
	select {
	case r.sem <- struct{}{}:
		defer func() { <-r.sem }()
	case <-req.Context().Done():
		return req.Context().Err()
	}
	resp, err := r.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		var e struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(raw, &e) == nil && e.Error != "" {
			return fmt.Errorf("status %d: %s", resp.StatusCode, e.Error)
		}
		return fmt.Errorf("status %d", resp.StatusCode)
	}
	if out == nil {
		return nil
	}
	return json.Unmarshal(raw, out)
}
