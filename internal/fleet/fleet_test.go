package fleet

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"hetmodel/internal/cluster"
	"hetmodel/internal/core"
	"hetmodel/internal/serve"
)

// fleetModel fits the same deterministic two-class fixture the serve tests
// use, with sample bins attached so refit works: class c runs at speed
// factor 1/(1 + c/4), measured at M = 1..3 on 1, 2 and 4 PEs over five
// sizes, covering every fleetSpace candidate.
func fleetModel(tb testing.TB, classes int) *core.ModelSet {
	tb.Helper()
	var samples []core.Sample
	for class := 0; class < classes; class++ {
		speed := 1 + float64(class)/4
		for m := 1; m <= 3; m++ {
			for _, pe := range []int{1, 2, 4} {
				p := pe * m
				for _, n := range []int{400, 800, 1600, 2400, 3200} {
					nf := float64(n)
					ta := 6e-10*nf*nf*nf/float64(p)*speed + 0.2
					tc := 1e-9 * nf * nf
					if pe > 1 {
						tc = 2e-9*nf*nf*float64(p) + 1e-8*nf*nf/float64(p) + 0.05
					}
					samples = append(samples, core.Sample{
						N: n, P: p, Class: class, M: m, Ta: ta, Tc: tc,
					})
				}
			}
		}
	}
	ms, err := core.Build(classes, samples)
	if err != nil {
		tb.Fatal(err)
	}
	ms.Bins = core.NewBinStore(samples, nil)
	return ms
}

// fleetSpace is the members' (and router's) search space: 10 canonical
// (PE, procs) pairs per class, 100 grid candidates for 2 classes.
func fleetSpace(classes int) cluster.Space {
	s := cluster.Space{PEChoices: make([][]int, classes), ProcChoices: make([][]int, classes)}
	for ci := range s.PEChoices {
		s.PEChoices[ci] = []int{0, 1, 2, 4}
		s.ProcChoices[ci] = []int{1, 2, 3}
	}
	return s
}

// testFleet is a router over n in-process members plus one standalone
// reference planner that never sees fleet traffic.
type testFleet struct {
	router   *Router
	planners []*serve.Planner
	servers  []*httptest.Server
	ref      *serve.Planner
}

func newTestFleet(t *testing.T, n int, opts Options) *testFleet {
	t.Helper()
	f := &testFleet{}
	for i := 0; i < n; i++ {
		p, err := serve.New(fleetModel(t, 2), fleetSpace(2), serve.Options{RefitAuth: opts.RefitAuth})
		if err != nil {
			t.Fatal(err)
		}
		srv := httptest.NewServer(p.Handler())
		t.Cleanup(srv.Close)
		f.planners = append(f.planners, p)
		f.servers = append(f.servers, srv)
		opts.Members = append(opts.Members, srv.URL)
	}
	ref, err := serve.New(fleetModel(t, 2), fleetSpace(2), serve.Options{})
	if err != nil {
		t.Fatal(err)
	}
	f.ref = ref
	r, err := New(fleetSpace(2), opts)
	if err != nil {
		t.Fatal(err)
	}
	f.router = r
	return f
}

// bestJSON renders a candidate list the way the HTTP layer does — the byte
// string the parity tests compare.
func bestJSON(t *testing.T, best []serve.CandidateJSON) string {
	t.Helper()
	b, err := json.Marshal(best)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// refBest asks the reference planner directly and renders its answer in the
// member JSON shape.
func refBest(t *testing.T, p *serve.Planner, req serve.QueryRequest) string {
	t.Helper()
	res, err := p.Query(context.Background(), serve.Query{
		N:    req.N,
		TopK: req.TopK,
		Constraints: serve.Constraints{
			Classes:       req.Classes,
			MaxTotalProcs: req.MaxTotalProcs,
			MaxBytesPerPE: req.MaxBytesPerPE,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	best := make([]serve.CandidateJSON, len(res.Best))
	for i, e := range res.Best {
		best[i] = serve.CandidateJSON{Config: e.Config.String(), Use: e.Config.Use, Tau: e.Tau, Index: res.BestIndex[i]}
	}
	return bestJSON(t, best)
}

// TestScatterParity is the fleet invariant: at every member count, the
// router's merged answer is byte-identical (as JSON) to a single planner
// searching the whole grid, constraints included.
func TestScatterParity(t *testing.T) {
	reqs := []serve.QueryRequest{
		{N: 1600, TopK: 1},
		{N: 2400, TopK: 7},
		{N: 3200, TopK: 200}, // K beyond the candidate count: full ranking
		{N: 2400, TopK: 5, Classes: []int{1}},
		{N: 3200, TopK: 4, MaxTotalProcs: 4},
		{N: 1600, TopK: 3, MaxBytesPerPE: 80e6},
	}
	for _, members := range []int{1, 2, 3, 4} {
		f := newTestFleet(t, members, Options{ShardMin: -1})
		for _, req := range reqs {
			t.Run(fmt.Sprintf("m%d/n%d/k%d", members, req.N, req.TopK), func(t *testing.T) {
				res, err := f.router.Query(context.Background(), req)
				if err != nil {
					t.Fatal(err)
				}
				if res.Members != members {
					t.Errorf("merged %d member answers, want %d", res.Members, members)
				}
				got, want := bestJSON(t, res.Best), refBest(t, f.ref, req)
				if got != want {
					t.Errorf("fleet answer diverges from single planner:\n got %s\nwant %s", got, want)
				}
				if wantSize := f.router.Grid().Size() - 1; res.Size != wantSize && req.Classes == nil {
					// -1: the all-unused configuration is not a candidate.
					t.Errorf("aggregate size %d, want %d", res.Size, wantSize)
				}
			})
		}
	}
}

// TestKillMemberRescatter: a member dying mid-fleet re-scatters its range
// over the survivors and the answer stays bit-identical.
func TestKillMemberRescatter(t *testing.T) {
	f := newTestFleet(t, 3, Options{ShardMin: -1})
	req := serve.QueryRequest{N: 2400, TopK: 7}
	want := refBest(t, f.ref, req)

	res, err := f.router.Query(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if got := bestJSON(t, res.Best); got != want {
		t.Fatalf("pre-kill parity broken:\n got %s\nwant %s", got, want)
	}

	f.servers[1].Close()
	res, err = f.router.Query(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if got := bestJSON(t, res.Best); got != want {
		t.Errorf("post-kill answer diverges:\n got %s\nwant %s", got, want)
	}
	if res.Rescattered == 0 {
		t.Error("no range was re-scattered after a member death")
	}
	if res.Members != 3 {
		// 2 surviving first-round answers + the dead range re-split in 2,
		// minus empty shards — at minimum 3 non-empty answers for 100/3.
		t.Logf("merged %d answers after re-scatter", res.Members)
	}
	if f.router.members[1].healthy.Load() {
		t.Error("dead member still marked healthy")
	}

	// With everyone dead, the query fails with ErrNoMembers semantics.
	f.servers[0].Close()
	f.servers[2].Close()
	if _, err := f.router.Query(context.Background(), req); err == nil {
		t.Error("query succeeded with every member dead")
	}
}

// TestAffinityRouting: grids below ShardMin route whole queries to the
// size-affine member, and repeats of a size reuse that member's cache.
func TestAffinityRouting(t *testing.T) {
	f := newTestFleet(t, 3, Options{ShardMin: 1 << 40})
	req := serve.QueryRequest{N: 2400, TopK: 3}
	want := refBest(t, f.ref, req)
	for i := 0; i < 4; i++ {
		res, err := f.router.Query(context.Background(), req)
		if err != nil {
			t.Fatal(err)
		}
		if res.Members != 1 {
			t.Fatalf("affinity answer merged %d members, want 1", res.Members)
		}
		if got := bestJSON(t, res.Best); got != want {
			t.Fatalf("affinity answer diverges:\n got %s\nwant %s", got, want)
		}
	}
	served := 0
	for _, p := range f.planners {
		if q := p.Stats().Queries; q > 0 {
			served++
			if q != 4 {
				t.Errorf("affine member served %d queries, want all 4", q)
			}
		}
	}
	if served != 1 {
		t.Errorf("%d members served traffic, want exactly 1 (stable affinity)", served)
	}
}

// TestCoordinatedReload: the fleet-wide two-phase reload moves every member
// or none. A dead member fails the stage phase and the survivors keep their
// version; after the member list is healthy again the reload lands
// everywhere.
func TestCoordinatedReload(t *testing.T) {
	f := newTestFleet(t, 3, Options{ShardMin: -1})
	path := filepath.Join(t.TempDir(), "model.json")
	buf, err := json.Marshal(fleetModel(t, 2))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}

	res, err := f.router.Reload(context.Background(), path)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Members) != 3 {
		t.Fatalf("reload committed on %d members, want 3", len(res.Members))
	}
	for i, p := range f.planners {
		if v := p.Version(); v != 2 {
			t.Errorf("member %d at version %d after fleet reload, want 2", i, v)
		}
	}

	// All-or-none: with one member dead the stage phase fails and nobody
	// moves — including members staged before the failure.
	f.servers[1].Close()
	if _, err := f.router.Reload(context.Background(), path); err == nil {
		t.Fatal("fleet reload succeeded with a dead member")
	}
	for _, i := range []int{0, 2} {
		if v := f.planners[i].Version(); v != 2 {
			t.Errorf("survivor %d moved to version %d during failed reload, want 2", i, v)
		}
	}

	// The aborted stages freed the members' stage slots: a later healthy
	// reload (dead member dropped from config is not supported — restart
	// it instead) still works on a fresh fleet.
	f2 := newTestFleet(t, 2, Options{ShardMin: -1})
	if _, err := f2.router.Reload(context.Background(), path); err != nil {
		t.Fatalf("reload on healthy fleet after aborted attempt: %v", err)
	}

	// A bad path fails at stage on the first member; nobody moves.
	if _, err := f2.router.Reload(context.Background(), filepath.Join(t.TempDir(), "absent.json")); err == nil {
		t.Fatal("reload of a missing file succeeded")
	}
	for i, p := range f2.planners {
		if v := p.Version(); v != 2 {
			t.Errorf("member %d at version %d after failed reload, want 2", i, v)
		}
	}
}

// TestCoordinatedRefit: the fleet refit folds the same delta into every
// member; versions move together and scatter answers keep matching a
// reference planner given the same delta.
func TestCoordinatedRefit(t *testing.T) {
	const auth = "fleet-secret"
	f := newTestFleet(t, 3, Options{ShardMin: -1, RefitAuth: auth})
	// Jitter one stored sample, as a client would re-measure it.
	src := fleetModel(t, 2)
	s := src.Bins.Samples(core.PTKey{Class: 0, M: 2})[0]
	s.Ta *= 1.25
	stored := core.StoredSample{Class: s.Class, P: s.P, M: s.M, N: s.N, Ta: s.Ta, Tc: s.Tc}

	res, err := f.router.Refit(context.Background(), serve.RefitRequest{Samples: []core.StoredSample{stored}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Members) != 3 {
		t.Fatalf("refit committed on %d members, want 3", len(res.Members))
	}
	for i, p := range f.planners {
		if v := p.Version(); v != 2 {
			t.Errorf("member %d at version %d after fleet refit, want 2", i, v)
		}
	}

	// Reference planner takes the same delta directly.
	if _, err := f.ref.Refit(core.SampleDelta{Samples: []core.Sample{s}}); err != nil {
		t.Fatal(err)
	}
	req := serve.QueryRequest{N: 2400, TopK: 7}
	out, err := f.router.Query(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := bestJSON(t, out.Best), refBest(t, f.ref, req); got != want {
		t.Errorf("post-refit fleet answer diverges:\n got %s\nwant %s", got, want)
	}
}

// TestMergeVersionRace: answers from mixed model versions refuse to merge
// (the scatter path retries once on this signal).
func TestMergeVersionRace(t *testing.T) {
	mk := func(version int64) serve.QueryResponse {
		return serve.QueryResponse{Version: version, N: 100}
	}
	_, err := mergeAnswers(serve.QueryRequest{TopK: 1}, []memberAnswer{
		{shard: core.IndexRange{Lo: 0, Hi: 50}, resp: mk(1)},
		{shard: core.IndexRange{Lo: 50, Hi: 100}, resp: mk(2)},
	})
	if !isVersionRace(err) {
		t.Fatalf("mixed versions merged: %v", err)
	}
	if _, err := mergeAnswers(serve.QueryRequest{TopK: 1}, nil); err == nil {
		t.Fatal("empty answer set merged")
	}
}

// TestPartition: contiguous, disjoint, covering, ordered — for spans both
// above and below the part count.
func TestPartition(t *testing.T) {
	for _, tc := range []struct {
		lo, hi int64
		parts  int
	}{
		{0, 100, 3}, {0, 100, 1}, {0, 7, 16}, {40, 53, 4}, {0, 0, 2},
	} {
		got := partition(core.IndexRange{Lo: tc.lo, Hi: tc.hi}, tc.parts)
		if len(got) != tc.parts {
			t.Fatalf("partition(%d..%d, %d): %d parts", tc.lo, tc.hi, tc.parts, len(got))
		}
		cursor := tc.lo
		for _, r := range got {
			if r.Lo != cursor || r.Hi < r.Lo {
				t.Fatalf("partition(%d..%d, %d): bad range [%d, %d) at cursor %d",
					tc.lo, tc.hi, tc.parts, r.Lo, r.Hi, cursor)
			}
			cursor = r.Hi
		}
		if cursor != tc.hi {
			t.Fatalf("partition(%d..%d, %d): covers to %d", tc.lo, tc.hi, tc.parts, cursor)
		}
	}
}

// TestFleetStats: the aggregate view carries the router counters and one
// stats row per member, dead members flagged unhealthy.
func TestFleetStats(t *testing.T) {
	f := newTestFleet(t, 3, Options{ShardMin: -1})
	if _, err := f.router.Query(context.Background(), serve.QueryRequest{N: 2400, TopK: 3}); err != nil {
		t.Fatal(err)
	}
	st := f.router.Stats(context.Background())
	if st.Scatters != 1 {
		t.Errorf("scatters %d, want 1", st.Scatters)
	}
	if len(st.Members) != 3 || st.HealthySize != 3 {
		t.Fatalf("stats rows %d (healthy %d), want 3/3", len(st.Members), st.HealthySize)
	}
	var queries, scored, pruned int64
	for _, m := range st.Members {
		if m.Stats == nil {
			t.Fatalf("member %s has no stats", m.URL)
		}
		queries += m.Stats.Queries
		scored += m.Stats.Scored
		pruned += m.Stats.Pruned
	}
	if queries == 0 {
		t.Error("no member reported served queries")
	}
	if st.Scored != scored || st.Pruned != pruned {
		t.Errorf("aggregate (%d, %d) does not sum member rows (%d, %d)",
			st.Scored, st.Pruned, scored, pruned)
	}
	if scored+pruned == 0 {
		t.Error("scattered query left no search accounting")
	}
	if want := float64(pruned) / float64(scored+pruned); st.PruneRatio != want {
		t.Errorf("PruneRatio = %v, want %v", st.PruneRatio, want)
	}

	f.servers[2].Close()
	st = f.router.Stats(context.Background())
	if st.HealthySize != 2 || st.Members[2].Healthy || st.Members[2].Error == "" {
		t.Errorf("dead member not reflected: healthy=%d row=%+v", st.HealthySize, st.Members[2])
	}
}

// TestHealthGridMismatch: a member compiled over a different space is
// excluded from membership even though it answers health probes.
func TestHealthGridMismatch(t *testing.T) {
	p, err := serve.New(fleetModel(t, 2), fleetSpace(2), serve.Options{})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(p.Handler())
	t.Cleanup(srv.Close)
	bigger := fleetSpace(2)
	bigger.ProcChoices[0] = []int{1, 2, 3, 4}
	r, err := New(bigger, Options{Members: []string{srv.URL}, ShardMin: -1})
	if err != nil {
		t.Fatal(err)
	}
	if n := r.CheckHealth(context.Background()); n != 0 {
		t.Fatalf("incompatible member counted healthy (%d)", n)
	}
	if _, err := r.Query(context.Background(), serve.QueryRequest{N: 2400}); err == nil {
		t.Fatal("query over an incompatible fleet succeeded")
	}
}
