package fleet

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"hetmodel/internal/serve"
)

// The router speaks the same HTTP/JSON dialect as its members, so clients
// (hetload included) point at a router or a single planner without caring
// which: /v1/query and /v1/topk answer identically (the router adds
// fleet-bookkeeping fields), /v1/reload and /v1/refit become coordinated
// fleet-wide swaps, /v1/stats nests per-member snapshots.

// Handler returns the router's HTTP API:
//
//	POST|GET /v1/query   scatter (or affinity-route) a query over the fleet
//	POST|GET /v1/topk    ranked K best, merged across members
//	POST     /v1/reload  coordinated two-phase reload on every member
//	POST     /v1/refit   coordinated two-phase refit on every member
//	GET      /v1/healthz router liveness + per-member health
//	GET      /v1/stats   router counters + per-member stats snapshots
func (r *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/query", func(w http.ResponseWriter, req *http.Request) {
		r.handleQuery(w, req, 1)
	})
	mux.HandleFunc("/v1/topk", func(w http.ResponseWriter, req *http.Request) {
		r.handleQuery(w, req, 5)
	})
	mux.HandleFunc("/v1/reload", r.handleReload)
	mux.HandleFunc("/v1/refit", r.handleRefit)
	mux.HandleFunc("/v1/healthz", r.handleHealthz)
	mux.HandleFunc("/v1/stats", r.handleStats)
	return mux
}

func (r *Router) handleQuery(w http.ResponseWriter, req *http.Request, defaultK int) {
	var q serve.QueryRequest
	if err := decodeInto(req, &q); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if q.TopK <= 0 {
		q.TopK = defaultK
	}
	ctx := req.Context()
	if q.TimeoutMs > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(q.TimeoutMs)*time.Millisecond)
		defer cancel()
	}
	res, err := r.Query(ctx, q)
	if err != nil {
		writeError(w, fleetStatus(err), err)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

func (r *Router) handleReload(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, errors.New("reload requires POST"))
		return
	}
	var body serve.ReloadRequest
	if err := json.NewDecoder(req.Body).Decode(&body); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad reload request: %v", err))
		return
	}
	if body.Path == "" {
		writeError(w, http.StatusBadRequest, errors.New("reload request needs a path"))
		return
	}
	res, err := r.Reload(req.Context(), body.Path)
	if err != nil {
		writeError(w, http.StatusConflict, err)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

func (r *Router) handleRefit(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, errors.New("refit requires POST"))
		return
	}
	if r.opts.RefitAuth == "" {
		writeError(w, http.StatusForbidden, errors.New("fleet refit disabled: start hetrouter with -refit-auth"))
		return
	}
	var body serve.RefitRequest
	if err := json.NewDecoder(req.Body).Decode(&body); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad refit request: %v", err))
		return
	}
	res, err := r.Refit(req.Context(), body)
	if err != nil {
		writeError(w, http.StatusConflict, err)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

func (r *Router) handleHealthz(w http.ResponseWriter, req *http.Request) {
	n := r.CheckHealth(req.Context())
	members := make([]map[string]any, len(r.members))
	for i, m := range r.members {
		row := map[string]any{
			"url":     m.url,
			"healthy": m.healthy.Load(),
			"version": m.version.Load(),
		}
		if e := m.lastError(); e != "" {
			row["error"] = e
		}
		members[i] = row
	}
	status := "ok"
	code := http.StatusOK
	if n == 0 {
		status = "no healthy members"
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, map[string]any{
		"status":   status,
		"gridSize": r.grid.Size(),
		"healthy":  n,
		"members":  members,
	})
}

func (r *Router) handleStats(w http.ResponseWriter, req *http.Request) {
	writeJSON(w, http.StatusOK, r.Stats(req.Context()))
}

// decodeInto accepts the member query encodings: JSON body on POST, URL
// parameters on GET (delegated to a synthetic request so the router and the
// members cannot drift apart on parameter names).
func decodeInto(req *http.Request, q *serve.QueryRequest) error {
	switch req.Method {
	case http.MethodPost:
		if err := json.NewDecoder(req.Body).Decode(q); err != nil {
			return fmt.Errorf("bad query request: %v", err)
		}
		if q.N <= 0 {
			return fmt.Errorf("problem size n=%d, want > 0", q.N)
		}
		return nil
	case http.MethodGet:
		parsed, err := serve.DecodeQueryParams(req)
		if err != nil {
			return err
		}
		*q = parsed
		return nil
	default:
		return fmt.Errorf("method %s not allowed", req.Method)
	}
}

// fleetStatus maps fleet errors onto HTTP statuses: no members is an
// upstream outage, context expiry is a timeout, anything else from the
// member side arrives pre-classified in the error string (the router does
// not re-classify member 4xx).
func fleetStatus(err error) int {
	switch {
	case errors.Is(err, ErrNoMembers):
		return http.StatusServiceUnavailable
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		return http.StatusGatewayTimeout
	default:
		return http.StatusBadGateway
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // the connection is gone, nothing to do
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}
