package fleet

import (
	"context"
	"fmt"

	"hetmodel/internal/serve"
)

// This file is the control plane: coordinated model swaps and fleet stats.
//
// A scatter query is only correct when every member answers from the same
// model version, so a fleet swap must be all-or-none. The router drives the
// members' two-phase endpoints: phase one stages the swap on every
// configured member (each member validates its copy and parks it — every
// fallible step happens here); phase two commits, which on the member side
// is a guarded version bump with nothing left to fail. Any stage failure
// aborts the already-staged members and the fleet keeps its current version
// on every member. Coordinated swaps target ALL configured members, healthy
// or not: a swap that skipped an unreachable member would split the fleet's
// version the moment it came back.

// MemberSwap is one member's outcome in a coordinated swap.
type MemberSwap struct {
	URL     string `json:"url"`
	Version int64  `json:"version"`
	// CacheKept/CacheDropped mirror the member's commit answer (refit
	// surgical invalidation vs reload-style drop).
	CacheKept    int `json:"cacheKept"`
	CacheDropped int `json:"cacheDropped"`
}

// SwapResult is the outcome of a fleet-wide coordinated swap.
type SwapResult struct {
	Members []MemberSwap `json:"members"`
}

// Reload performs a coordinated two-phase reload: every configured member
// stages the model file at path, and only when every stage succeeded do the
// members commit. On any stage failure the staged members abort and no
// member moves.
func (r *Router) Reload(ctx context.Context, path string) (*SwapResult, error) {
	return r.coordinate(ctx, serve.StageReload, func(m *member) (string, error) {
		var resp serve.ReloadResponse
		err := r.postJSON(ctx, m.url+"/v1/reload", serve.ReloadRequest{Path: path, Stage: true}, &resp)
		return resp.Staged, err
	})
}

// Refit performs a coordinated two-phase refit: every member folds the same
// sample delta into its model and stages the result; all stages succeed or
// no member moves. Members fit deterministically, so identical deltas on
// identical models yield identical staged models — the fleet stays
// bit-converged without shipping fitted coefficients around.
func (r *Router) Refit(ctx context.Context, req serve.RefitRequest) (*SwapResult, error) {
	req.Stage = true
	return r.coordinate(ctx, serve.StageRefit, func(m *member) (string, error) {
		var resp serve.RefitStageResponse
		err := r.postJSON(ctx, m.url+"/v1/refit", req, &resp)
		return resp.Staged, err
	})
}

// coordinate drives one two-phase swap: stage on all members via stage,
// then commit all (or abort all on any stage failure).
func (r *Router) coordinate(ctx context.Context, kind string, stage func(*member) (string, error)) (*SwapResult, error) {
	type staged struct {
		m     *member
		token string
	}
	var parked []staged
	abort := func() {
		for _, s := range parked {
			// Best effort: an abort that fails leaves a parked stage the
			// member will reject at its next direct swap anyway.
			r.postJSON(ctx, s.m.url+"/v1/"+kind+"/abort", serve.StageRequest{Token: s.token}, nil) //nolint:errcheck
		}
	}
	for _, m := range r.members {
		token, err := stage(m)
		if err != nil {
			abort()
			return nil, fmt.Errorf("fleet: stage %s on %s failed (no member moved): %w", kind, m.url, err)
		}
		parked = append(parked, staged{m: m, token: token})
	}
	res := &SwapResult{Members: make([]MemberSwap, 0, len(parked))}
	for _, s := range parked {
		var commit serve.StagedCommit
		if err := r.postJSON(ctx, s.m.url+"/v1/"+kind+"/commit", serve.StageRequest{Token: s.token}, &commit); err != nil {
			// Commit is a guarded version bump; failing here means the
			// member died or swapped behind our back mid-protocol. Report
			// loudly — the fleet may be split until the member is probed
			// and reloaded.
			s.m.fail(err)
			return res, fmt.Errorf("fleet: commit %s on %s failed after %d commits; fleet may be version-split: %w",
				kind, s.m.url, len(res.Members), err)
		}
		s.m.version.Store(commit.Version)
		res.Members = append(res.Members, MemberSwap{
			URL:          s.m.url,
			Version:      commit.Version,
			CacheKept:    commit.CacheKept,
			CacheDropped: commit.CacheDropped,
		})
	}
	return res, nil
}

// MemberStats is one member's row in the fleet stats answer.
type MemberStats struct {
	URL     string `json:"url"`
	Healthy bool   `json:"healthy"`
	Error   string `json:"error,omitempty"`
	// Stats is the member's /v1/stats snapshot (absent when unreachable).
	Stats *serve.Stats `json:"stats,omitempty"`
}

// Stats is the fleet stats answer: router counters plus a per-member stats
// snapshot — what hetload reads to report per-member goodput.
type Stats struct {
	GridSize   int64 `json:"gridSize"`
	Scatters   int64 `json:"scatters"`
	Affinity   int64 `json:"affinity"`
	Rescatters int64 `json:"rescatters"`
	Retries    int64 `json:"retries"`
	// Scored and Pruned sum the reachable members' search-kernel counters;
	// PruneRatio is Pruned over their sum — the fleet-wide view of how much
	// of the scattered search space the kernel's bounds elided.
	Scored      int64         `json:"scored"`
	Pruned      int64         `json:"pruned"`
	PruneRatio  float64       `json:"pruneRatio"`
	Members     []MemberStats `json:"members"`
	HealthySize int           `json:"healthyMembers"`
}

// Stats polls every member's /v1/stats and returns the aggregate view.
// Unreachable members report healthy=false with their error; the router's
// own counters are always present.
func (r *Router) Stats(ctx context.Context) Stats {
	out := Stats{
		GridSize:   r.grid.Size(),
		Scatters:   r.scatters.Load(),
		Affinity:   r.affinity.Load(),
		Rescatters: r.rescatters.Load(),
		Retries:    r.retries.Load(),
		Members:    make([]MemberStats, len(r.members)),
	}
	for i, m := range r.members {
		row := MemberStats{URL: m.url, Healthy: m.healthy.Load(), Error: m.lastError()}
		var st serve.Stats
		if err := r.getJSON(ctx, m.url+"/v1/stats", &st); err != nil {
			row.Healthy = false
			row.Error = err.Error()
		} else {
			row.Stats = &st
			out.Scored += st.Scored
			out.Pruned += st.Pruned
		}
		out.Members[i] = row
		if row.Healthy {
			out.HealthySize++
		}
	}
	if total := out.Scored + out.Pruned; total > 0 {
		out.PruneRatio = float64(out.Pruned) / float64(total)
	}
	return out
}
