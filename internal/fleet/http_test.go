package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"hetmodel/internal/serve"
)

// rawBest fetches url and returns the raw bytes of the response's "best"
// field — no re-encoding on the comparison path.
func rawBest(t *testing.T, url string, wantStatus int) []byte {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != wantStatus {
		t.Fatalf("GET %s: status %d, want %d: %s", url, resp.StatusCode, wantStatus, body)
	}
	var out struct {
		Best json.RawMessage `json:"best"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	return out.Best
}

// TestHTTPByteParity: the router's /v1/topk "best" array is byte-identical
// to a lone member's — the serialized form, not just the decoded values.
func TestHTTPByteParity(t *testing.T) {
	f := newTestFleet(t, 3, Options{ShardMin: -1})
	router := httptest.NewServer(f.router.Handler())
	t.Cleanup(router.Close)
	single := httptest.NewServer(f.ref.Handler())
	t.Cleanup(single.Close)

	for _, q := range []string{"n=2400&topk=7", "n=1600", "n=3200&topk=62", "n=2400&topk=4&classes=1"} {
		got := rawBest(t, router.URL+"/v1/topk?"+q, http.StatusOK)
		want := rawBest(t, single.URL+"/v1/topk?"+q, http.StatusOK)
		if !bytes.Equal(got, want) {
			t.Errorf("?%s: router bytes diverge from single planner\n got %s\nwant %s", q, got, want)
		}
	}
}

// TestHTTPRouterSurface covers the non-query routes: healthz reflects
// membership, stats nests member rows, reload coordinates, refit is
// auth-gated, shard parameters are refused.
func TestHTTPRouterSurface(t *testing.T) {
	f := newTestFleet(t, 2, Options{ShardMin: -1})
	router := httptest.NewServer(f.router.Handler())
	t.Cleanup(router.Close)

	var hz struct {
		Status   string `json:"status"`
		GridSize int64  `json:"gridSize"`
		Healthy  int    `json:"healthy"`
	}
	getInto(t, router.URL+"/v1/healthz", http.StatusOK, &hz)
	if hz.Status != "ok" || hz.Healthy != 2 || hz.GridSize != f.router.Grid().Size() {
		t.Errorf("healthz = %+v", hz)
	}

	var st Stats
	getInto(t, router.URL+"/v1/stats", http.StatusOK, &st)
	if len(st.Members) != 2 {
		t.Errorf("stats rows %d, want 2", len(st.Members))
	}

	// Shard parameters belong to the router's own member traffic.
	resp, err := http.Get(router.URL + "/v1/query?n=2400&shardLo=0&shardHi=10")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		t.Error("router accepted an externally sharded query")
	}

	// Refit without -refit-auth is closed.
	resp, err = http.Post(router.URL+"/v1/refit", "application/json", strings.NewReader(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusForbidden {
		t.Errorf("refit without auth: status %d, want 403", resp.StatusCode)
	}

	// Dead members flip healthz away from ok.
	f.servers[0].Close()
	f.servers[1].Close()
	respHz, err := http.Get(router.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	respHz.Body.Close()
	if respHz.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("healthz with dead fleet: status %d, want 503", respHz.StatusCode)
	}
}

func getInto(t *testing.T, url string, wantStatus int, out any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != wantStatus {
		t.Fatalf("GET %s: status %d, want %d: %s", url, resp.StatusCode, wantStatus, body)
	}
	if err := json.Unmarshal(body, out); err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
}

// TestQueryContext: a cancelled context surfaces as a timeout-class error
// instead of hanging the fan-out.
func TestQueryContext(t *testing.T) {
	f := newTestFleet(t, 2, Options{ShardMin: -1})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := f.router.Query(ctx, serve.QueryRequest{N: 2400}); err == nil {
		t.Fatal("query with cancelled context succeeded")
	}
}
