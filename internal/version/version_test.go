package version

import (
	"strings"
	"testing"
)

func TestStringNonEmpty(t *testing.T) {
	s := String()
	if s == "" {
		t.Fatal("empty version string")
	}
	// Under `go test` the build info is always present, so the go toolchain
	// version must appear.
	if !strings.Contains(s, "go1") {
		t.Errorf("version %q does not name the go toolchain", s)
	}
}
