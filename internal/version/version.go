// Package version gives every hetmodel binary the same -version output.
//
// All the binaries are built from one module, so the interesting facts —
// module version, VCS revision, go toolchain — come from the build info the
// linker already embeds. Commands call AddFlag before flag.Parse and
// MaybePrint right after it:
//
//	version.AddFlag()
//	flag.Parse()
//	version.MaybePrint("hetopt")
package version

import (
	"flag"
	"fmt"
	"os"
	"runtime/debug"
)

var flagSet *bool

// AddFlag registers the standard -version flag on the default flag set.
func AddFlag() {
	flagSet = flag.Bool("version", false, "print version information and exit")
}

// MaybePrint prints "<name> <version info>" and exits 0 when -version was
// given. It must run after flag.Parse.
func MaybePrint(name string) {
	if flagSet == nil || !*flagSet {
		return
	}
	fmt.Printf("%s %s\n", name, String())
	os.Exit(0)
}

// readBuildInfo is debug.ReadBuildInfo, a variable so tests can exercise
// the no-build-info path (binaries built without module support).
var readBuildInfo = debug.ReadBuildInfo

// String describes the build: module version (or VCS revision when built
// from a checkout) plus the go toolchain, e.g.
// "(devel) rev 76e937c (modified) go1.24.0".
func String() string {
	info, ok := readBuildInfo()
	if !ok {
		return "unknown (built without module support)"
	}
	s := info.Main.Version
	if s == "" {
		s = "(devel)"
	}
	var rev, modified string
	for _, kv := range info.Settings {
		switch kv.Key {
		case "vcs.revision":
			rev = kv.Value
		case "vcs.modified":
			modified = kv.Value
		}
	}
	if rev != "" {
		if len(rev) > 12 {
			rev = rev[:12]
		}
		s += " rev " + rev
		if modified == "true" {
			s += " (modified)"
		}
	}
	return s + " " + info.GoVersion
}
