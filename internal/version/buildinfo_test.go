package version

import (
	"runtime/debug"
	"testing"
)

// TestStringWithoutBuildInfo pins the fallback for binaries built without
// module support, where debug.ReadBuildInfo reports ok == false.
func TestStringWithoutBuildInfo(t *testing.T) {
	orig := readBuildInfo
	defer func() { readBuildInfo = orig }()
	readBuildInfo = func() (*debug.BuildInfo, bool) { return nil, false }

	if got, want := String(), "unknown (built without module support)"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

// TestStringFromSyntheticBuildInfo pins the formatting of every branch —
// module version fallback, revision truncation, the modified marker — using
// injected build info so the assertions don't depend on how the test binary
// itself was built.
func TestStringFromSyntheticBuildInfo(t *testing.T) {
	orig := readBuildInfo
	defer func() { readBuildInfo = orig }()

	cases := []struct {
		name string
		info debug.BuildInfo
		want string
	}{
		{
			name: "tagged module, no vcs",
			info: debug.BuildInfo{
				GoVersion: "go1.24.0",
				Main:      debug.Module{Version: "v1.2.3"},
			},
			want: "v1.2.3 go1.24.0",
		},
		{
			name: "devel build with long revision, modified tree",
			info: debug.BuildInfo{
				GoVersion: "go1.24.0",
				Settings: []debug.BuildSetting{
					{Key: "vcs.revision", Value: "0123456789abcdef0123"},
					{Key: "vcs.modified", Value: "true"},
				},
			},
			want: "(devel) rev 0123456789ab (modified) go1.24.0",
		},
		{
			name: "clean short revision",
			info: debug.BuildInfo{
				GoVersion: "go1.24.0",
				Main:      debug.Module{Version: "v0.9.0"},
				Settings: []debug.BuildSetting{
					{Key: "vcs.revision", Value: "cafe12"},
					{Key: "vcs.modified", Value: "false"},
				},
			},
			want: "v0.9.0 rev cafe12 go1.24.0",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			info := tc.info
			readBuildInfo = func() (*debug.BuildInfo, bool) { return &info, true }
			if got := String(); got != tc.want {
				t.Errorf("String() = %q, want %q", got, tc.want)
			}
		})
	}
}
