// Package cluster assembles the simulated heterogeneous cluster (machine
// nodes + communication fabric) and defines the configuration space the
// paper optimizes over: which PEs to use and how many processes to run on
// each (the paper's P1, M1, P2, M2 — generalized to any number of PE
// classes).
package cluster

import (
	"errors"
	"fmt"
	"math"
	"strconv"
	"strings"

	"hetmodel/internal/machine"
	"hetmodel/internal/simnet"
)

// ErrBadCluster reports an invalid cluster description.
var ErrBadCluster = errors.New("cluster: invalid cluster")

// ErrBadConfig reports a configuration incompatible with the cluster.
var ErrBadConfig = errors.New("cluster: invalid configuration")

// Class groups identical nodes (same CPU model) into one PE class, the unit
// over which the paper's models are built.
type Class struct {
	// Name identifies the class (e.g. "Athlon").
	Name string
	// Nodes are the physical machines of this class.
	Nodes []*machine.Node
}

// PEs returns the total number of processors in the class.
func (c *Class) PEs() int {
	total := 0
	for _, n := range c.Nodes {
		total += n.CPUs
	}
	return total
}

// Type returns the PE model of the class (all nodes share it).
func (c *Class) Type() *machine.PEType {
	if len(c.Nodes) == 0 {
		return nil
	}
	return c.Nodes[0].Type
}

// Cluster is the complete simulated machine.
type Cluster struct {
	Classes []Class
	Fabric  *simnet.Fabric
}

// New validates and assembles a cluster.
func New(classes []Class, fabric *simnet.Fabric) (*Cluster, error) {
	if len(classes) == 0 {
		return nil, fmt.Errorf("%w: no classes", ErrBadCluster)
	}
	if fabric == nil {
		return nil, fmt.Errorf("%w: nil fabric", ErrBadCluster)
	}
	for i := range classes {
		c := &classes[i]
		if len(c.Nodes) == 0 {
			return nil, fmt.Errorf("%w: class %s has no nodes", ErrBadCluster, c.Name)
		}
		for _, n := range c.Nodes {
			if err := n.Validate(); err != nil {
				return nil, fmt.Errorf("%w: class %s: %v", ErrBadCluster, c.Name, err)
			}
			if n.Type.Name != c.Nodes[0].Type.Name {
				return nil, fmt.Errorf("%w: class %s mixes PE types", ErrBadCluster, c.Name)
			}
		}
	}
	return &Cluster{Classes: classes, Fabric: fabric}, nil
}

// NewPaper builds the paper's Table 1 testbed: one Athlon 1.33 GHz node and
// four dual-Pentium-II 400 MHz nodes on a 100base-TX network, using the
// given messaging library (the paper's measurements use MPICH-1.2.5, whose
// intra-node behaviour matches the 1.2.2-like preset).
func NewPaper(lib *simnet.CommLibrary) (*Cluster, error) {
	fabric, err := simnet.NewFabric(lib, simnet.NewFast100TX())
	if err != nil {
		return nil, err
	}
	athlon := Class{Name: "Athlon", Nodes: []*machine.Node{machine.NewAthlonNode("node1")}}
	pii := Class{Name: "PentiumII"}
	for i := 2; i <= 5; i++ {
		pii.Nodes = append(pii.Nodes, machine.NewPentiumIINode(fmt.Sprintf("node%d", i)))
	}
	return New([]Class{athlon, pii}, fabric)
}

// ClassUse is the per-class part of a configuration: the paper's (Pi, Mi).
type ClassUse struct {
	// PEs is the number of processors of the class to use (Pi).
	PEs int
	// Procs is the number of processes per used PE (Mi).
	Procs int
}

// Configuration selects PEs and process counts for every class; it is the
// decision variable of the paper's optimization.
type Configuration struct {
	Use []ClassUse
}

// TotalProcs returns P = Σ Pi·Mi, the total process count.
func (c Configuration) TotalProcs() int {
	total := 0
	for _, u := range c.Use {
		total += u.PEs * u.Procs
	}
	return total
}

// Normalize returns a copy with Procs zeroed wherever PEs is zero (and vice
// versa), so equivalent configurations compare equal.
func (c Configuration) Normalize() Configuration {
	out := Configuration{Use: make([]ClassUse, len(c.Use))}
	copy(out.Use, c.Use)
	for i := range out.Use {
		if out.Use[i].PEs <= 0 || out.Use[i].Procs <= 0 {
			out.Use[i] = ClassUse{}
		}
	}
	return out
}

// Key returns a canonical string identity (after normalization), usable as
// a map key. It normalizes inline and builds the string with strconv, so
// the only allocation is the returned string — it is called once per
// simulated rank and per cache probe in the sweep loops.
func (c Configuration) Key() string {
	var buf [64]byte
	b := buf[:0]
	for i, u := range c.Use {
		if i > 0 {
			b = append(b, ';')
		}
		pes, procs := u.PEs, u.Procs
		if pes <= 0 || procs <= 0 {
			pes, procs = 0, 0
		}
		b = strconv.AppendInt(b, int64(pes), 10)
		b = append(b, ',')
		b = strconv.AppendInt(b, int64(procs), 10)
	}
	return string(b)
}

// String renders the paper's (P1, M1, P2, M2, ...) notation.
func (c Configuration) String() string {
	var parts []string
	for _, u := range c.Use {
		parts = append(parts, fmt.Sprintf("%d,%d", u.PEs, u.Procs))
	}
	return "(" + strings.Join(parts, ",") + ")"
}

// RankPlace records where one process (rank) runs.
type RankPlace struct {
	// Class is the index of the PE class in the cluster.
	Class int
	// NodeID is the cluster-global node index.
	NodeID int
	// CPU is the processor index within the node.
	CPU int
	// Resident is the number of ranks sharing that CPU (the class's Mi).
	Resident int
	// Type is the PE model executing this rank.
	Type *machine.PEType
	// Node is the physical machine hosting this rank.
	Node *machine.Node
}

// Placement is a concrete assignment of ranks to CPUs.
type Placement struct {
	Config  Configuration
	Ranks   []RankPlace
	cluster *Cluster
}

// Place assigns ranks for cfg on the cluster: for each class,
// cfg.Use[i].PEs processors are chosen round-robin across the class's nodes
// (first CPU of every node, then second, ...) so partial selections spread
// over nodes — balancing memory and network load, as a machinefile listing
// hosts before repeating them does. Each chosen CPU runs cfg.Use[i].Procs
// ranks. Ranks are numbered class-major, then CPU-major, then process
// index, so a PE's processes are contiguous.
func (cl *Cluster) Place(cfg Configuration) (*Placement, error) {
	if len(cfg.Use) != len(cl.Classes) {
		return nil, fmt.Errorf("%w: %d class uses for %d classes", ErrBadConfig, len(cfg.Use), len(cl.Classes))
	}
	cfg = cfg.Normalize()
	if cfg.TotalProcs() == 0 {
		return nil, fmt.Errorf("%w: no processes", ErrBadConfig)
	}
	pl := &Placement{Config: cfg, cluster: cl}
	nodeBase := 0
	for ci := range cl.Classes {
		class := &cl.Classes[ci]
		use := cfg.Use[ci]
		if use.PEs > class.PEs() {
			return nil, fmt.Errorf("%w: class %s has %d PEs, requested %d",
				ErrBadConfig, class.Name, class.PEs(), use.PEs)
		}
		// Enumerate the class's CPUs round-robin across nodes (CPU 0 of
		// each node first, then CPU 1, ...) and take the first PEs.
		maxCPUs := 0
		for _, node := range class.Nodes {
			if node.CPUs > maxCPUs {
				maxCPUs = node.CPUs
			}
		}
		taken := 0
		for cpu := 0; cpu < maxCPUs && taken < use.PEs; cpu++ {
			for ni, node := range class.Nodes {
				if cpu >= node.CPUs || taken >= use.PEs {
					continue
				}
				for m := 0; m < use.Procs; m++ {
					pl.Ranks = append(pl.Ranks, RankPlace{
						Class:    ci,
						NodeID:   nodeBase + ni,
						CPU:      cpu,
						Resident: use.Procs,
						Type:     node.Type,
						Node:     node,
					})
				}
				taken++
			}
		}
		nodeBase += len(class.Nodes)
	}
	return pl, nil
}

// P returns the total number of ranks.
func (pl *Placement) P() int { return len(pl.Ranks) }

// SameNode reports whether two ranks share a physical node.
func (pl *Placement) SameNode(a, b int) bool {
	return pl.Ranks[a].NodeID == pl.Ranks[b].NodeID
}

// TransferTime implements the vmpi transfer model for this placement.
//
// Beyond the fabric's path model it accounts for multiprocessing effects of
// a busy-waiting MPI library: intra-node transfers whose endpoints share a
// crowded CPU are slowed by the spin contention of the co-resident
// processes (both memcpy endpoints need the CPU), and every message touching
// a crowded CPU pays a scheduling delay (full for same-CPU exchanges, half
// when only one endpoint's CPU is crowded).
func (pl *Placement) TransferTime(bytes float64, src, dst int) float64 {
	rs, rd := &pl.Ranks[src], &pl.Ranks[dst]
	lib := pl.cluster.Fabric.Library
	sameNode := rs.NodeID == rd.NodeID
	t := pl.cluster.Fabric.TransferTime(bytes, sameNode)
	maxRes, typ := rs.Resident, rs.Type
	if rd.Resident > maxRes {
		maxRes, typ = rd.Resident, rd.Type
	}
	if maxRes > 1 {
		if sameNode {
			t *= typ.SoloFactor(maxRes)
		}
		sched := lib.CoResidentDelay * float64(maxRes-1)
		if sameNode && rs.CPU == rd.CPU {
			t += sched
		} else {
			t += 0.5 * sched
		}
	}
	return t
}

// Rendezvous implements the vmpi protocol predicate: messages above the
// library's eager threshold for their path block the sender until the
// receiver posts.
func (pl *Placement) Rendezvous(bytes float64, src, dst int) bool {
	return pl.cluster.Fabric.NeedsRendezvous(bytes, pl.SameNode(src, dst))
}

// ClassRanks returns the rank indices belonging to class ci.
func (pl *Placement) ClassRanks(ci int) []int {
	var out []int
	for r, rp := range pl.Ranks {
		if rp.Class == ci {
			out = append(out, r)
		}
	}
	return out
}

// NodeResidentBytes sums perRankBytes over the ranks of each node, returning
// a map from NodeID to resident bytes. Used for the memory-pressure model.
func (pl *Placement) NodeResidentBytes(perRankBytes func(rank int) float64) map[int]float64 {
	out := make(map[int]float64)
	for r, rp := range pl.Ranks {
		out[rp.NodeID] += perRankBytes(r)
	}
	return out
}

// MemoryGuard returns a predicate for the paper's §3.4 memory binning:
// given a configuration and problem size it predicts whether every node's
// resident set fits its physical memory, using the predetermined per-rank
// requirement 8·N²/P bytes of matrix share plus perRankExtra(N) bytes
// (workspace, buffers). It returns 1 when everything fits and +Inf
// otherwise, matching the core.MemoryGuard contract. Unplaceable
// configurations are also excluded.
func (cl *Cluster) MemoryGuard(perRankExtra func(n float64) float64) func(cfg Configuration, n float64) float64 {
	return func(cfg Configuration, n float64) float64 {
		pl, err := cl.Place(cfg)
		if err != nil {
			return math.Inf(1)
		}
		p := float64(pl.P())
		extra := 0.0
		if perRankExtra != nil {
			extra = perRankExtra(n)
		}
		bytes := pl.NodeResidentBytes(func(rank int) float64 {
			return 8*n*n/p + extra
		})
		for nodeID, resident := range bytes {
			node := pl.nodeByID(nodeID)
			if node == nil || resident > node.MemoryBytes {
				return math.Inf(1)
			}
		}
		return 1
	}
}

// nodeByID resolves a cluster-global node index.
func (pl *Placement) nodeByID(id int) *machine.Node {
	for _, rp := range pl.Ranks {
		if rp.NodeID == id {
			return rp.Node
		}
	}
	return nil
}
