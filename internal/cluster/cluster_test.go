package cluster

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"hetmodel/internal/machine"
	"hetmodel/internal/simnet"
)

func paperCluster(t *testing.T) *Cluster {
	t.Helper()
	cl, err := NewPaper(simnet.NewMPICH122())
	if err != nil {
		t.Fatal(err)
	}
	return cl
}

func TestNewPaperShape(t *testing.T) {
	cl := paperCluster(t)
	if len(cl.Classes) != 2 {
		t.Fatalf("classes = %d", len(cl.Classes))
	}
	if got := cl.Classes[0].PEs(); got != 1 {
		t.Fatalf("Athlon PEs = %d", got)
	}
	if got := cl.Classes[1].PEs(); got != 8 {
		t.Fatalf("P-II PEs = %d", got)
	}
	if cl.Classes[0].Type().Name != "Athlon-1333" {
		t.Fatalf("class 0 type = %s", cl.Classes[0].Type().Name)
	}
}

func TestNewValidation(t *testing.T) {
	fabric, _ := simnet.NewFabric(simnet.NewMPICH122(), simnet.NewFast100TX())
	if _, err := New(nil, fabric); !errors.Is(err, ErrBadCluster) {
		t.Fatal("empty classes accepted")
	}
	if _, err := New([]Class{{Name: "x"}}, fabric); !errors.Is(err, ErrBadCluster) {
		t.Fatal("class without nodes accepted")
	}
	good := []Class{{Name: "a", Nodes: []*machine.Node{machine.NewAthlonNode("n")}}}
	if _, err := New(good, nil); !errors.Is(err, ErrBadCluster) {
		t.Fatal("nil fabric accepted")
	}
	// Mixed types within a class must be rejected.
	mixed := []Class{{Name: "m", Nodes: []*machine.Node{
		machine.NewAthlonNode("n1"), machine.NewPentiumIINode("n2"),
	}}}
	if _, err := New(mixed, fabric); !errors.Is(err, ErrBadCluster) {
		t.Fatal("mixed class accepted")
	}
	bad := machine.NewAthlonNode("n")
	bad.CPUs = 0
	if _, err := New([]Class{{Name: "b", Nodes: []*machine.Node{bad}}}, fabric); !errors.Is(err, ErrBadCluster) {
		t.Fatal("invalid node accepted")
	}
}

func TestConfigurationTotalsAndString(t *testing.T) {
	cfg := Configuration{Use: []ClassUse{{1, 2}, {8, 1}}}
	if cfg.TotalProcs() != 10 {
		t.Fatalf("P = %d", cfg.TotalProcs())
	}
	if cfg.String() != "(1,2,8,1)" {
		t.Fatalf("string = %s", cfg.String())
	}
}

func TestNormalizeCollapsesUnused(t *testing.T) {
	a := Configuration{Use: []ClassUse{{0, 3}, {8, 1}}}
	b := Configuration{Use: []ClassUse{{0, 5}, {8, 1}}}
	if a.Key() != b.Key() {
		t.Fatalf("keys differ: %s vs %s", a.Key(), b.Key())
	}
	c := Configuration{Use: []ClassUse{{2, 0}, {8, 1}}}
	if c.Normalize().Use[0] != (ClassUse{}) {
		t.Fatal("zero-proc use not collapsed")
	}
}

func TestPlacePaperHeteroConfig(t *testing.T) {
	cl := paperCluster(t)
	// (P1=1, M1=2, P2=8, M2=1): 10 ranks.
	pl, err := cl.Place(Configuration{Use: []ClassUse{{1, 2}, {8, 1}}})
	if err != nil {
		t.Fatal(err)
	}
	if pl.P() != 10 {
		t.Fatalf("P = %d", pl.P())
	}
	// First two ranks share the single Athlon CPU.
	if pl.Ranks[0].Class != 0 || pl.Ranks[1].Class != 0 {
		t.Fatal("Athlon ranks not first")
	}
	if !pl.SameNode(0, 1) || pl.Ranks[0].CPU != pl.Ranks[1].CPU {
		t.Fatal("Athlon multiprocess ranks must share the CPU")
	}
	if pl.Ranks[0].Resident != 2 {
		t.Fatalf("Athlon resident = %d", pl.Ranks[0].Resident)
	}
	// P-II ranks: 8 ranks on 4 dual nodes, selected round-robin across
	// nodes (CPU 0 of each node first): ranks 2..5 are CPU 0 of nodes
	// 1..4, ranks 6..9 are CPU 1 of the same nodes. So ranks 2 and 6
	// share the first P-II node while 2 and 3 do not.
	if pl.SameNode(2, 3) {
		t.Fatal("ranks 2,3 should be on different nodes (round-robin)")
	}
	if !pl.SameNode(2, 6) {
		t.Fatal("ranks 2,6 should share the first P-II node")
	}
	if pl.Ranks[2].CPU != 0 || pl.Ranks[6].CPU != 1 {
		t.Fatalf("CPU indices: rank2=%d rank6=%d", pl.Ranks[2].CPU, pl.Ranks[6].CPU)
	}
	if pl.Ranks[2].Resident != 1 {
		t.Fatalf("P-II resident = %d", pl.Ranks[2].Resident)
	}
	// Class rank listing.
	if got := pl.ClassRanks(0); len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Fatalf("class 0 ranks = %v", got)
	}
	if got := pl.ClassRanks(1); len(got) != 8 {
		t.Fatalf("class 1 ranks = %v", got)
	}
}

func TestPlaceValidation(t *testing.T) {
	cl := paperCluster(t)
	if _, err := cl.Place(Configuration{Use: []ClassUse{{1, 1}}}); !errors.Is(err, ErrBadConfig) {
		t.Fatal("wrong class count accepted")
	}
	if _, err := cl.Place(Configuration{Use: []ClassUse{{2, 1}, {0, 0}}}); !errors.Is(err, ErrBadConfig) {
		t.Fatal("over-allocation accepted")
	}
	if _, err := cl.Place(Configuration{Use: []ClassUse{{0, 0}, {0, 0}}}); !errors.Is(err, ErrBadConfig) {
		t.Fatal("empty config accepted")
	}
}

func TestPlacementTransferTime(t *testing.T) {
	cl := paperCluster(t)
	pl, err := cl.Place(Configuration{Use: []ClassUse{{1, 2}, {8, 1}}})
	if err != nil {
		t.Fatal(err)
	}
	intra := pl.TransferTime(64*1024, 0, 1) // same node (Athlon pair)
	inter := pl.TransferTime(64*1024, 0, 2) // Athlon → P-II node
	if intra >= inter {
		t.Fatalf("intra-node (%v) should beat inter-node (%v)", intra, inter)
	}
}

func TestNodeResidentBytes(t *testing.T) {
	cl := paperCluster(t)
	pl, _ := cl.Place(Configuration{Use: []ClassUse{{1, 2}, {2, 1}}})
	bytes := pl.NodeResidentBytes(func(rank int) float64 { return 100 })
	// Node 0 (Athlon) hosts 2 ranks; the two P-II PEs spread round-robin
	// over nodes 1 and 2, one rank each.
	if bytes[0] != 200 {
		t.Fatalf("node0 bytes = %v", bytes[0])
	}
	if bytes[1] != 100 || bytes[2] != 100 {
		t.Fatalf("P-II node bytes = %v / %v", bytes[1], bytes[2])
	}
}

func TestEnumeratePaperEvaluationSpace(t *testing.T) {
	cfgs, err := PaperEvaluationSpace().Enumerate()
	if err != nil {
		t.Fatal(err)
	}
	// The paper counts 62 evaluation configurations.
	if len(cfgs) != 62 {
		t.Fatalf("evaluation configs = %d, want 62", len(cfgs))
	}
	// All distinct keys, all with at least one process.
	seen := map[string]bool{}
	for _, c := range cfgs {
		if c.TotalProcs() < 1 {
			t.Fatalf("empty config %s", c)
		}
		if seen[c.Key()] {
			t.Fatalf("duplicate config %s", c)
		}
		seen[c.Key()] = true
	}
}

func TestEnumeratePaperConstructionSpaces(t *testing.T) {
	athlon, pii := PaperConstructionSpace([]int{1, 2, 3, 4, 5, 6, 7, 8})
	a, err := athlon.Enumerate()
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != 6 { // M1 = 1..6
		t.Fatalf("athlon construction configs = %d, want 6", len(a))
	}
	p, err := pii.Enumerate()
	if err != nil {
		t.Fatal(err)
	}
	if len(p) != 48 { // P2 = 1..8 × M2 = 1..6
		t.Fatalf("P-II construction configs = %d, want 48", len(p))
	}
	// NL/NS spaces use P2 ∈ {1,2,4,8}: 24 configs.
	_, piiNL := PaperConstructionSpace([]int{1, 2, 4, 8})
	pnl, _ := piiNL.Enumerate()
	if len(pnl) != 24 {
		t.Fatalf("NL P-II construction configs = %d, want 24", len(pnl))
	}
}

func TestEnumerateBadSpace(t *testing.T) {
	if _, err := (Space{}).Enumerate(); !errors.Is(err, ErrBadConfig) {
		t.Fatal("empty space accepted")
	}
	s := Space{PEChoices: [][]int{{1}}, ProcChoices: [][]int{{1}, {2}}}
	if _, err := s.Enumerate(); !errors.Is(err, ErrBadConfig) {
		t.Fatal("mismatched space accepted")
	}
}

func TestEnumerateDeterministicOrder(t *testing.T) {
	a, _ := PaperEvaluationSpace().Enumerate()
	b, _ := PaperEvaluationSpace().Enumerate()
	for i := range a {
		if a[i].Key() != b[i].Key() {
			t.Fatal("enumeration order not deterministic")
		}
	}
}

// Property: every valid configuration places exactly P ranks with
// consistent resident counts and in-bounds node/CPU assignments.
func TestPlacementInvariantsProperty(t *testing.T) {
	cl := paperCluster(t)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cfg := Configuration{Use: []ClassUse{
			{PEs: rng.Intn(2), Procs: 1 + rng.Intn(6)},
			{PEs: rng.Intn(9), Procs: 1 + rng.Intn(6)},
		}}
		if cfg.TotalProcs() == 0 {
			return true
		}
		pl, err := cl.Place(cfg)
		if err != nil {
			return false
		}
		if pl.P() != cfg.TotalProcs() {
			return false
		}
		// Count ranks per (node, cpu) and check Resident consistency.
		perCPU := map[[2]int]int{}
		for _, rp := range pl.Ranks {
			if rp.Node == nil || rp.Type == nil {
				return false
			}
			if rp.CPU < 0 || rp.CPU >= rp.Node.CPUs {
				return false
			}
			perCPU[[2]int{rp.NodeID, rp.CPU}]++
		}
		for _, rp := range pl.Ranks {
			if perCPU[[2]int{rp.NodeID, rp.CPU}] != rp.Resident {
				return false
			}
		}
		// Per class, the number of distinct CPUs equals the requested PEs.
		for ci, use := range cfg.Normalize().Use {
			cpus := map[[2]int]bool{}
			for _, r := range pl.ClassRanks(ci) {
				rp := pl.Ranks[r]
				cpus[[2]int{rp.NodeID, rp.CPU}] = true
			}
			if len(cpus) != use.PEs {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: transfer time is symmetric between rank pairs and positive.
func TestTransferSymmetryProperty(t *testing.T) {
	cl := paperCluster(t)
	pl, err := cl.Place(Configuration{Use: []ClassUse{{PEs: 1, Procs: 3}, {PEs: 8, Procs: 2}}})
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, b := rng.Intn(pl.P()), rng.Intn(pl.P())
		if a == b {
			return true
		}
		bytes := float64(1 + rng.Intn(1<<20))
		tab := pl.TransferTime(bytes, a, b)
		tba := pl.TransferTime(bytes, b, a)
		return tab > 0 && math.Abs(tab-tba) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
