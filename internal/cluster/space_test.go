package cluster

import (
	"errors"
	"testing"
)

// Edge cases of Space.Enumerate beyond the paper grids: mismatched choice
// list lengths, empty inner lists, and duplicate-configuration collapse.

func TestEnumerateMismatchedChoiceLengths(t *testing.T) {
	s := Space{
		PEChoices:   [][]int{{1}, {2}},
		ProcChoices: [][]int{{1}},
	}
	if _, err := s.Enumerate(); !errors.Is(err, ErrBadConfig) {
		t.Errorf("mismatched lengths: got %v, want ErrBadConfig", err)
	}
	s = Space{
		PEChoices:   [][]int{{1}},
		ProcChoices: [][]int{{1}, {2}},
	}
	if _, err := s.Enumerate(); !errors.Is(err, ErrBadConfig) {
		t.Errorf("mismatched lengths (proc longer): got %v, want ErrBadConfig", err)
	}
}

func TestEnumerateEmptyInnerChoices(t *testing.T) {
	// An empty inner list means no value for that coordinate: the grid
	// product is empty, yielding zero configurations rather than an error.
	s := Space{
		PEChoices:   [][]int{{}, {1, 2}},
		ProcChoices: [][]int{{1}, {1}},
	}
	cfgs, err := s.Enumerate()
	if err != nil {
		t.Fatal(err)
	}
	if len(cfgs) != 0 {
		t.Errorf("empty PE choices produced %d configurations, want 0", len(cfgs))
	}
	s = Space{
		PEChoices:   [][]int{{1}},
		ProcChoices: [][]int{{}},
	}
	cfgs, err = s.Enumerate()
	if err != nil {
		t.Fatal(err)
	}
	if len(cfgs) != 0 {
		t.Errorf("empty proc choices produced %d configurations, want 0", len(cfgs))
	}
}

func TestEnumerateAllZeroSpace(t *testing.T) {
	// Every grid point normalizes to the empty configuration; all are
	// dropped (TotalProcs == 0), not an error.
	s := Space{
		PEChoices:   [][]int{{0}},
		ProcChoices: [][]int{{1, 2, 3}},
	}
	cfgs, err := s.Enumerate()
	if err != nil {
		t.Fatal(err)
	}
	if len(cfgs) != 0 {
		t.Errorf("all-zero space produced %d configurations, want 0", len(cfgs))
	}
}

func TestEnumerateCollapsesDuplicates(t *testing.T) {
	// Class 0 is unused (PEs = 0), so its three proc choices normalize to
	// the same configuration; class 1 has duplicate values in its choice
	// lists. Distinct survivors: class 1 with PEs in {1, 2}.
	s := Space{
		PEChoices:   [][]int{{0}, {1, 2, 1}},
		ProcChoices: [][]int{{1, 2, 3}, {1, 1}},
	}
	cfgs, err := s.Enumerate()
	if err != nil {
		t.Fatal(err)
	}
	if len(cfgs) != 2 {
		t.Fatalf("got %d configurations, want 2: %v", len(cfgs), cfgs)
	}
	for _, cfg := range cfgs {
		if cfg.Use[0].PEs != 0 || cfg.Use[0].Procs != 0 {
			t.Errorf("unused class not normalized: %s", cfg)
		}
	}
	if cfgs[0].Use[1].PEs != 1 || cfgs[1].Use[1].PEs != 2 {
		t.Errorf("unexpected order or values: %v", cfgs)
	}
}

// TestVisitMatchesEnumerate: the streaming walk yields exactly the
// enumerated configurations, in the same order, and the early-stop works.
func TestVisitMatchesEnumerate(t *testing.T) {
	spaces := []Space{
		PaperEvaluationSpace(),
		{PEChoices: [][]int{{0, 1, 1}, {0, 2, 4}}, ProcChoices: [][]int{{1, 2}, {3, 1, 1}}},
		{PEChoices: [][]int{{0}}, ProcChoices: [][]int{{1, 2}}}, // all-zero
	}
	for si, s := range spaces {
		want, err := s.Enumerate()
		if err != nil {
			t.Fatal(err)
		}
		var got []Configuration
		err = s.Visit(func(cfg Configuration) bool {
			got = append(got, Configuration{Use: append([]ClassUse(nil), cfg.Use...)})
			return true
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("space %d: visited %d, enumerated %d", si, len(got), len(want))
		}
		for i := range want {
			if got[i].Key() != want[i].Key() {
				t.Fatalf("space %d position %d: visited %s, enumerated %s", si, i, got[i], want[i])
			}
		}
		if len(want) > 1 {
			seen := 0
			if err := s.Visit(func(Configuration) bool { seen++; return seen < 2 }); err != nil {
				t.Fatal(err)
			}
			if seen != 2 {
				t.Fatalf("space %d: early stop visited %d", si, seen)
			}
		}
	}
}

// TestGridRandomAccess: At(idx) decodes exactly the configuration Visit
// yields at that index, and Size matches the walk length.
func TestGridRandomAccess(t *testing.T) {
	s := Space{
		PEChoices:   [][]int{{0, 1}, {0, 1, 2, 4}, {1, 3}},
		ProcChoices: [][]int{{1, 2, 3}, {1, 2}, {1, 0}},
	}
	g, err := s.Compile()
	if err != nil {
		t.Fatal(err)
	}
	var walked int64
	buf := make([]ClassUse, g.Classes())
	g.Visit(func(idx int64, cfg Configuration) bool {
		if idx != walked {
			t.Fatalf("walk index %d, expected %d", idx, walked)
		}
		g.At(idx, buf)
		for ci := range buf {
			if buf[ci] != cfg.Use[ci] {
				t.Fatalf("At(%d) class %d = %+v, Visit saw %+v", idx, ci, buf[ci], cfg.Use[ci])
			}
		}
		walked++
		return true
	})
	if walked != g.Size() {
		t.Fatalf("walked %d grid points, Size() = %d", walked, g.Size())
	}
	// Strides are consistent with the pair-list lengths.
	total := int64(1)
	for ci := g.Classes() - 1; ci >= 0; ci-- {
		if g.Stride(ci) != total {
			t.Fatalf("Stride(%d) = %d, want %d", ci, g.Stride(ci), total)
		}
		total *= int64(len(g.Pairs(ci)))
	}
}

// TestCompileOverflow: a grid with more than 2^63 points is rejected
// instead of silently wrapping.
func TestCompileOverflow(t *testing.T) {
	classes := 41 // 3^41 > 2^63
	s := Space{PEChoices: make([][]int, classes), ProcChoices: make([][]int, classes)}
	for i := range s.PEChoices {
		s.PEChoices[i] = []int{1, 2, 3}
		s.ProcChoices[i] = []int{1}
	}
	if _, err := s.Compile(); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("2^63 overflow not rejected: %v", err)
	}
}
