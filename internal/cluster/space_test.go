package cluster

import (
	"errors"
	"testing"
)

// Edge cases of Space.Enumerate beyond the paper grids: mismatched choice
// list lengths, empty inner lists, and duplicate-configuration collapse.

func TestEnumerateMismatchedChoiceLengths(t *testing.T) {
	s := Space{
		PEChoices:   [][]int{{1}, {2}},
		ProcChoices: [][]int{{1}},
	}
	if _, err := s.Enumerate(); !errors.Is(err, ErrBadConfig) {
		t.Errorf("mismatched lengths: got %v, want ErrBadConfig", err)
	}
	s = Space{
		PEChoices:   [][]int{{1}},
		ProcChoices: [][]int{{1}, {2}},
	}
	if _, err := s.Enumerate(); !errors.Is(err, ErrBadConfig) {
		t.Errorf("mismatched lengths (proc longer): got %v, want ErrBadConfig", err)
	}
}

func TestEnumerateEmptyInnerChoices(t *testing.T) {
	// An empty inner list means no value for that coordinate: the grid
	// product is empty, yielding zero configurations rather than an error.
	s := Space{
		PEChoices:   [][]int{{}, {1, 2}},
		ProcChoices: [][]int{{1}, {1}},
	}
	cfgs, err := s.Enumerate()
	if err != nil {
		t.Fatal(err)
	}
	if len(cfgs) != 0 {
		t.Errorf("empty PE choices produced %d configurations, want 0", len(cfgs))
	}
	s = Space{
		PEChoices:   [][]int{{1}},
		ProcChoices: [][]int{{}},
	}
	cfgs, err = s.Enumerate()
	if err != nil {
		t.Fatal(err)
	}
	if len(cfgs) != 0 {
		t.Errorf("empty proc choices produced %d configurations, want 0", len(cfgs))
	}
}

func TestEnumerateAllZeroSpace(t *testing.T) {
	// Every grid point normalizes to the empty configuration; all are
	// dropped (TotalProcs == 0), not an error.
	s := Space{
		PEChoices:   [][]int{{0}},
		ProcChoices: [][]int{{1, 2, 3}},
	}
	cfgs, err := s.Enumerate()
	if err != nil {
		t.Fatal(err)
	}
	if len(cfgs) != 0 {
		t.Errorf("all-zero space produced %d configurations, want 0", len(cfgs))
	}
}

func TestEnumerateCollapsesDuplicates(t *testing.T) {
	// Class 0 is unused (PEs = 0), so its three proc choices normalize to
	// the same configuration; class 1 has duplicate values in its choice
	// lists. Distinct survivors: class 1 with PEs in {1, 2}.
	s := Space{
		PEChoices:   [][]int{{0}, {1, 2, 1}},
		ProcChoices: [][]int{{1, 2, 3}, {1, 1}},
	}
	cfgs, err := s.Enumerate()
	if err != nil {
		t.Fatal(err)
	}
	if len(cfgs) != 2 {
		t.Fatalf("got %d configurations, want 2: %v", len(cfgs), cfgs)
	}
	for _, cfg := range cfgs {
		if cfg.Use[0].PEs != 0 || cfg.Use[0].Procs != 0 {
			t.Errorf("unused class not normalized: %s", cfg)
		}
	}
	if cfgs[0].Use[1].PEs != 1 || cfgs[1].Use[1].PEs != 2 {
		t.Errorf("unexpected order or values: %v", cfgs)
	}
}
