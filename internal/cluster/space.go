package cluster

import (
	"fmt"
	"sort"
)

// Space is a grid of candidate configurations: per class, the allowed PE
// counts and per-PE process counts. It encodes the paper's Table 2/5/8
// "Model Construction" and "Model Evaluation" parameter grids.
type Space struct {
	// PEChoices[i] lists allowed Pi values for class i.
	PEChoices [][]int
	// ProcChoices[i] lists allowed Mi values for class i.
	ProcChoices [][]int
}

// Enumerate expands the grid into distinct, normalized configurations with
// at least one process. Configurations that differ only in the process count
// of an unused class collapse to one.
func (s Space) Enumerate() ([]Configuration, error) {
	if len(s.PEChoices) == 0 || len(s.PEChoices) != len(s.ProcChoices) {
		return nil, fmt.Errorf("%w: space has %d PE and %d proc choice lists",
			ErrBadConfig, len(s.PEChoices), len(s.ProcChoices))
	}
	classes := len(s.PEChoices)
	seen := make(map[string]bool)
	var out []Configuration
	var rec func(ci int, cur []ClassUse)
	rec = func(ci int, cur []ClassUse) {
		if ci == classes {
			cfg := Configuration{Use: append([]ClassUse(nil), cur...)}.Normalize()
			if cfg.TotalProcs() == 0 {
				return
			}
			if k := cfg.Key(); !seen[k] {
				seen[k] = true
				out = append(out, cfg)
			}
			return
		}
		for _, pe := range s.PEChoices[ci] {
			for _, m := range s.ProcChoices[ci] {
				rec(ci+1, append(cur, ClassUse{PEs: pe, Procs: m}))
			}
		}
	}
	rec(0, nil)
	sortConfigurations(out)
	return out, nil
}

// sortConfigurations orders configurations lexicographically by class use,
// keeping enumeration deterministic for tests and reports.
func sortConfigurations(cfgs []Configuration) {
	sort.Slice(cfgs, func(i, j int) bool {
		a, b := cfgs[i].Use, cfgs[j].Use
		for k := range a {
			if a[k].PEs != b[k].PEs {
				return a[k].PEs < b[k].PEs
			}
			if a[k].Procs != b[k].Procs {
				return a[k].Procs < b[k].Procs
			}
		}
		return false
	})
}

// PaperConstructionSpace returns the "Model Construction" grid of the given
// paper table for the two-class paper cluster:
//
//	Athlon:    P1 = 1,      M1 = 1..6
//	PentiumII: P2 = peList, M2 = 1..6
//
// The Athlon and Pentium-II configurations are measured separately
// (homogeneous sub-clusters, §3.5), so this returns two spaces.
func PaperConstructionSpace(peList []int) (athlon, pentium Space) {
	athlon = Space{
		PEChoices:   [][]int{{1}, {0}},
		ProcChoices: [][]int{{1, 2, 3, 4, 5, 6}, {0}},
	}
	pentium = Space{
		PEChoices:   [][]int{{0}, peList},
		ProcChoices: [][]int{{0}, {1, 2, 3, 4, 5, 6}},
	}
	return athlon, pentium
}

// PaperEvaluationSpace returns the paper's "Model Evaluation" grid
// (Tables 2, 5, 8): Athlon P1 ∈ {0,1}, M1 ∈ 1..6; Pentium-II P2 ∈ 0..8,
// M2 = 1 — 62 distinct configurations.
func PaperEvaluationSpace() Space {
	return Space{
		PEChoices:   [][]int{{0, 1}, {0, 1, 2, 3, 4, 5, 6, 7, 8}},
		ProcChoices: [][]int{{1, 2, 3, 4, 5, 6}, {1}},
	}
}
