package cluster

import (
	"fmt"
	"math"
	"sort"
)

// Space is a grid of candidate configurations: per class, the allowed PE
// counts and per-PE process counts. It encodes the paper's Table 2/5/8
// "Model Construction" and "Model Evaluation" parameter grids.
type Space struct {
	// PEChoices[i] lists allowed Pi values for class i.
	PEChoices [][]int
	// ProcChoices[i] lists allowed Mi values for class i.
	ProcChoices [][]int
}

// Grid is a compiled configuration space: per class, the distinct canonical
// (PEs, Procs) pairs in ascending (PEs, Procs) order. The cross product of
// the pair lists indexes every distinct normalized configuration of the
// space exactly once — the map-keyed dedup of the old enumeration happens
// structurally, because pairs with a nonpositive PE or process count all
// canonicalize to the single unused pair before deduplication. Indices run
// class-major (class 0 is the most significant digit), so ascending index
// order is exactly the lexicographic order Enumerate returns.
type Grid struct {
	pairs  [][]ClassUse
	stride []int64 // stride[i] = Π len(pairs[j]) for j > i
	size   int64
}

// Compile canonicalizes the space into an indexable Grid. The grid is the
// streaming counterpart of Enumerate: it supports random access by index
// (for sharded searches) without materializing a configuration slice.
func (s Space) Compile() (*Grid, error) {
	if len(s.PEChoices) == 0 || len(s.PEChoices) != len(s.ProcChoices) {
		return nil, fmt.Errorf("%w: space has %d PE and %d proc choice lists",
			ErrBadConfig, len(s.PEChoices), len(s.ProcChoices))
	}
	classes := len(s.PEChoices)
	g := &Grid{pairs: make([][]ClassUse, classes), stride: make([]int64, classes)}
	for ci := range s.PEChoices {
		pairs := make([]ClassUse, 0, len(s.PEChoices[ci])*len(s.ProcChoices[ci]))
		for _, pe := range s.PEChoices[ci] {
			for _, m := range s.ProcChoices[ci] {
				u := ClassUse{PEs: pe, Procs: m}
				if u.PEs <= 0 || u.Procs <= 0 {
					u = ClassUse{}
				}
				pairs = append(pairs, u)
			}
		}
		sort.Slice(pairs, func(i, j int) bool {
			if pairs[i].PEs != pairs[j].PEs {
				return pairs[i].PEs < pairs[j].PEs
			}
			return pairs[i].Procs < pairs[j].Procs
		})
		uniq := pairs[:0]
		for i, u := range pairs {
			if i == 0 || u != pairs[i-1] {
				uniq = append(uniq, u)
			}
		}
		g.pairs[ci] = uniq
	}
	size := int64(1)
	for ci := classes - 1; ci >= 0; ci-- {
		g.stride[ci] = size
		n := int64(len(g.pairs[ci]))
		if n > 0 && size > math.MaxInt64/n {
			return nil, fmt.Errorf("%w: configuration space exceeds 2^63 candidates", ErrBadConfig)
		}
		size *= n
	}
	g.size = size
	return g, nil
}

// Classes returns the number of PE classes of the grid.
func (g *Grid) Classes() int { return len(g.pairs) }

// Size returns the number of grid points, counting the all-unused
// configuration when every class's choices admit one.
func (g *Grid) Size() int64 { return g.size }

// Pairs returns the canonical (PEs, Procs) choices of one class, in index
// order. The returned slice is the grid's own storage; do not modify it.
func (g *Grid) Pairs(class int) []ClassUse { return g.pairs[class] }

// Stride returns the index stride of one class digit: advancing a class's
// pair choice by one moves the grid index by Stride(class).
func (g *Grid) Stride(class int) int64 { return g.stride[class] }

// At decodes a grid index into the caller's per-class buffer, which must
// have Classes() entries. The decoded configuration is already canonical.
func (g *Grid) At(idx int64, use []ClassUse) {
	for ci, pairs := range g.pairs {
		q := idx / g.stride[ci]
		idx -= q * g.stride[ci]
		use[ci] = pairs[q]
	}
}

// Visit walks every grid point in ascending index order, reusing one
// configuration buffer across calls: the callback must copy cfg.Use before
// retaining it. Returning false stops the walk.
func (g *Grid) Visit(fn func(idx int64, cfg Configuration) bool) {
	if g.size == 0 {
		return
	}
	classes := len(g.pairs)
	use := make([]ClassUse, classes)
	digits := make([]int, classes)
	for ci := range use {
		use[ci] = g.pairs[ci][0]
	}
	cfg := Configuration{Use: use}
	for idx := int64(0); ; idx++ {
		if !fn(idx, cfg) {
			return
		}
		// Odometer increment, least-significant (last) class first.
		ci := classes - 1
		for ; ci >= 0; ci-- {
			digits[ci]++
			if digits[ci] < len(g.pairs[ci]) {
				use[ci] = g.pairs[ci][digits[ci]]
				break
			}
			digits[ci] = 0
			use[ci] = g.pairs[ci][0]
		}
		if ci < 0 {
			return
		}
	}
}

// Visit streams the distinct normalized configurations of the space in
// Enumerate order without materializing the slice or the dedup map. The
// configuration passed to the callback shares one backing array across
// calls — copy cfg.Use before retaining it. Returning false stops the walk.
func (s Space) Visit(fn func(cfg Configuration) bool) error {
	g, err := s.Compile()
	if err != nil {
		return err
	}
	g.Visit(func(_ int64, cfg Configuration) bool {
		if cfg.TotalProcs() == 0 {
			return true
		}
		return fn(cfg)
	})
	return nil
}

// Enumerate expands the grid into distinct, normalized configurations with
// at least one process. Configurations that differ only in the process count
// of an unused class collapse to one.
func (s Space) Enumerate() ([]Configuration, error) {
	g, err := s.Compile()
	if err != nil {
		return nil, err
	}
	var out []Configuration
	g.Visit(func(_ int64, cfg Configuration) bool {
		if cfg.TotalProcs() == 0 {
			return true
		}
		out = append(out, Configuration{Use: append([]ClassUse(nil), cfg.Use...)})
		return true
	})
	return out, nil
}

// PaperConstructionSpace returns the "Model Construction" grid of the given
// paper table for the two-class paper cluster:
//
//	Athlon:    P1 = 1,      M1 = 1..6
//	PentiumII: P2 = peList, M2 = 1..6
//
// The Athlon and Pentium-II configurations are measured separately
// (homogeneous sub-clusters, §3.5), so this returns two spaces.
func PaperConstructionSpace(peList []int) (athlon, pentium Space) {
	athlon = Space{
		PEChoices:   [][]int{{1}, {0}},
		ProcChoices: [][]int{{1, 2, 3, 4, 5, 6}, {0}},
	}
	pentium = Space{
		PEChoices:   [][]int{{0}, peList},
		ProcChoices: [][]int{{0}, {1, 2, 3, 4, 5, 6}},
	}
	return athlon, pentium
}

// PaperEvaluationSpace returns the paper's "Model Evaluation" grid
// (Tables 2, 5, 8): Athlon P1 ∈ {0,1}, M1 ∈ 1..6; Pentium-II P2 ∈ 0..8,
// M2 = 1 — 62 distinct configurations.
func PaperEvaluationSpace() Space {
	return Space{
		PEChoices:   [][]int{{0, 1}, {0, 1, 2, 3, 4, 5, 6, 7, 8}},
		ProcChoices: [][]int{{1, 2, 3, 4, 5, 6}, {1}},
	}
}
