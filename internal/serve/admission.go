package serve

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
)

// ErrOverloaded reports a query rejected because the admission queue was
// full: the planner sheds load immediately instead of letting latency grow
// without bound. Callers should retry with backoff.
var ErrOverloaded = errors.New("serve: overloaded, admission queue full")

// admission bounds the number of concurrently executing grid passes and the
// number of queries allowed to wait for a slot. Beyond both bounds queries
// are rejected immediately; queued queries are rejected when their deadline
// expires before a slot frees up. Either way, overload degrades into fast
// bounded rejection instead of unbounded queueing.
type admission struct {
	slots    chan struct{}
	maxQueue int64

	queued           atomic.Int64
	rejectedQueue    atomic.Int64
	rejectedDeadline atomic.Int64
}

func newAdmission(maxInFlight, maxQueue int) *admission {
	if maxInFlight < 1 {
		maxInFlight = 1
	}
	if maxQueue < 0 {
		maxQueue = 0
	}
	return &admission{
		slots:    make(chan struct{}, maxInFlight),
		maxQueue: int64(maxQueue),
	}
}

// acquire claims an execution slot, queueing up to the queue bound while
// none is free. It returns ErrOverloaded when the queue is full and a
// wrapped ctx.Err() when the context ends first. A nil return must be paired
// with exactly one release.
func (a *admission) acquire(ctx context.Context) error {
	select {
	case a.slots <- struct{}{}:
		return nil
	default:
	}
	if a.queued.Add(1) > a.maxQueue {
		a.queued.Add(-1)
		a.rejectedQueue.Add(1)
		return ErrOverloaded
	}
	defer a.queued.Add(-1)
	select {
	case a.slots <- struct{}{}:
		return nil
	case <-ctx.Done():
		a.rejectedDeadline.Add(1)
		return fmt.Errorf("serve: admission: %w", ctx.Err())
	}
}

func (a *admission) release() { <-a.slots }

// inFlight returns the number of currently held slots.
func (a *admission) inFlight() int { return len(a.slots) }
