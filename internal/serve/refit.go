package serve

import (
	"hetmodel/internal/cluster"
	"hetmodel/internal/core"
)

// This file is the serving side of incremental refit: Planner.Refit applies
// a sample delta to the current model through core.ModelSet.Refit, publishes
// the result as a new version, and uses the changed-bin report to decide
// what the evaluator cache has to give up.
//
// The surgical part rests on one static fact computed at construction: the
// grid read set. A compiled search probes the per-class τ tables only at the
// (class, M) pairs the grid enumerates, so an evaluator's answers over this
// planner's grid depend on exactly those model bins — independent of the
// problem size it was compiled for. A refit whose changed bins all fall
// outside the read set (and whose adjustment changes touch no class at a
// grid-reachable M ≥ AdjustMinM) therefore leaves every cached evaluator's
// answers bit-identical, and the cache is re-keyed to the new version
// wholesale instead of recompiled. Any overlap with the read set invalidates
// everything, exactly like a full reload: the read set does not vary with N,
// so there is no per-size middle ground to exploit today. The cache API
// (evalCache.Rekey's per-size drop predicate) already supports finer
// policies should a size-dependent read set ever exist.

// readSet is the set of (class, M) model bins a compiled search over the
// planner's grid can read, plus the largest grid-reachable M per class (for
// the §4.1 adjustment, which applies only at M ≥ AdjustMinM).
type readSet struct {
	bins map[core.PTKey]bool
	maxM []int
}

// newReadSet derives the read set from the compiled grid: every (class, M)
// with at least one grid pair using PEs of that class at that M.
func newReadSet(grid *cluster.Grid) readSet {
	rs := readSet{
		bins: make(map[core.PTKey]bool),
		maxM: make([]int, grid.Classes()),
	}
	for ci := 0; ci < grid.Classes(); ci++ {
		for _, u := range grid.Pairs(ci) {
			if u.PEs <= 0 || u.Procs <= 0 {
				continue
			}
			rs.bins[core.PTKey{Class: ci, M: u.Procs}] = true
			if u.Procs > rs.maxM[ci] {
				rs.maxM[ci] = u.Procs
			}
		}
	}
	return rs
}

// RefitResult reports one applied refit: the published version, the
// changed-bin report, and the cache outcome (entries re-keyed to the new
// version without recompilation vs entries dropped).
type RefitResult struct {
	Version      int64             `json:"version"`
	Report       *core.RefitReport `json:"report"`
	CacheKept    int               `json:"cacheKept"`
	CacheDropped int               `json:"cacheDropped"`
}

// Refit applies a sample delta to the served model and publishes the result
// as the next version without downtime, exactly like Reload — but driven by
// the changed-bin report: when no changed bin is grid-reachable, the whole
// evaluator cache is re-keyed to the new version (kept warm); otherwise it
// is invalidated like a reload. Queries already running finish against their
// snapshot either way.
func (p *Planner) Refit(delta core.SampleDelta) (*RefitResult, error) {
	p.swapMu.Lock()
	defer p.swapMu.Unlock()
	oldVersion, models := p.store.Current()
	next, report, err := models.Refit(delta)
	if err != nil {
		return nil, err
	}
	version, err := p.store.Swap(next)
	if err != nil {
		return nil, err
	}
	return p.finishRefitSwapLocked(oldVersion, version, next, report), nil
}

// finishRefitSwapLocked is the post-swap half of a refit (counters plus the
// report-driven cache maintenance), shared by Refit and CommitStaged.
// Callers hold swapMu and have already published next as version.
func (p *Planner) finishRefitSwapLocked(oldVersion, version int64, next *core.ModelSet, report *core.RefitReport) *RefitResult {
	p.refits.Add(1)
	res := &RefitResult{Version: version, Report: report}
	if p.refitReachesGrid(report, next) {
		res.CacheDropped = p.cache.InvalidateExcept(version)
		return res
	}
	res.CacheKept, res.CacheDropped = p.cache.Rekey(oldVersion, version, nil)
	p.cacheRekeyed.Add(int64(res.CacheKept))
	return res
}

// refitReachesGrid reports whether any change in the report is visible to a
// search over the planner's grid: a changed (class, M) bin the grid reads,
// or an adjustment change for a class whose grid-reachable M reaches the
// adjustment threshold.
func (p *Planner) refitReachesGrid(rep *core.RefitReport, next *core.ModelSet) bool {
	for _, k := range rep.Changed {
		if p.reads.bins[k] {
			return true
		}
	}
	for _, class := range rep.AdjustChanged {
		if class < len(p.reads.maxM) && p.reads.maxM[class] >= next.AdjustMinM {
			return true
		}
	}
	return false
}
