package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"

	"hetmodel/internal/core"
)

// binnedTestModel is testModel extended with its sample bins attached and —
// when maxM exceeds testSpace's largest process count (3) — model bins no
// grid candidate can read. Those unreachable bins are what surgical
// invalidation retains the cache across.
func binnedTestModel(tb testing.TB, classes, maxM int) *core.ModelSet {
	tb.Helper()
	var samples []core.Sample
	for class := 0; class < classes; class++ {
		speed := 1 + float64(class)/4
		for m := 1; m <= maxM; m++ {
			for _, pe := range []int{1, 2, 4} {
				p := pe * m
				for _, n := range []int{400, 800, 1600, 2400, 3200} {
					nf := float64(n)
					ta := 6e-10*nf*nf*nf/float64(p)*speed + 0.2
					tc := 1e-9 * nf * nf
					if pe > 1 {
						tc = 2e-9*nf*nf*float64(p) + 1e-8*nf*nf/float64(p) + 0.05
					}
					samples = append(samples, core.Sample{
						N: n, P: p, Class: class, M: m, Ta: ta, Tc: tc,
					})
				}
			}
		}
	}
	ms, err := core.Build(classes, samples)
	if err != nil {
		tb.Fatal(err)
	}
	ms.Bins = core.NewBinStore(samples, nil)
	return ms
}

// jitterDelta returns a delta replacing one stored sample of bin with a
// re-measured value scaled by factor, drawn from p's current model.
func jitterDelta(tb testing.TB, p *Planner, bin core.PTKey, factor float64) core.SampleDelta {
	tb.Helper()
	_, ms := p.store.Current()
	samples := ms.Bins.Samples(bin)
	if len(samples) == 0 {
		tb.Fatalf("fixture has no samples in %v", bin)
	}
	s := samples[0]
	s.Ta *= factor
	return core.SampleDelta{Samples: []core.Sample{s}}
}

func warmCache(t *testing.T, p *Planner, sizes []int) {
	t.Helper()
	for _, n := range sizes {
		if _, err := p.Query(context.Background(), Query{N: n}); err != nil {
			t.Fatal(err)
		}
	}
	if p.cache.Len() != len(sizes) {
		t.Fatalf("cache holds %d entries after warming %d sizes", p.cache.Len(), len(sizes))
	}
}

// TestRefitRetainsCacheForUnreachableBin: a refit whose changed bins are
// outside the grid read set keeps every cached evaluator — re-keyed to the
// new version, zero recompiles — and the retained evaluators answer
// bit-identically to a fresh search against the refit model.
func TestRefitRetainsCacheForUnreachableBin(t *testing.T) {
	ms := binnedTestModel(t, 2, 5)
	p, err := New(ms, testSpace(2), Options{})
	if err != nil {
		t.Fatal(err)
	}
	sizes := []int{800, 1600, 2400}
	warmCache(t, p, sizes)
	compilesBefore := p.cache.compiles.Load()

	res, err := p.Refit(jitterDelta(t, p, core.PTKey{Class: 0, M: 5}, 1.5))
	if err != nil {
		t.Fatal(err)
	}
	if res.Version != 2 {
		t.Fatalf("version %d, want 2", res.Version)
	}
	if res.CacheKept != len(sizes) || res.CacheDropped != 0 {
		t.Fatalf("kept %d dropped %d, want %d/0", res.CacheKept, res.CacheDropped, len(sizes))
	}
	if len(res.Report.Changed) == 0 {
		t.Fatal("report claims nothing changed")
	}
	for _, k := range res.Report.Changed {
		if k.M <= 3 {
			t.Fatalf("grid-reachable bin %v changed by an M=5 delta", k)
		}
	}
	_, next := p.store.Current()
	for _, n := range sizes {
		got, err := p.Query(context.Background(), Query{N: n})
		if err != nil {
			t.Fatal(err)
		}
		if !got.CacheHit {
			t.Fatalf("N=%d recompiled after a retained refit", n)
		}
		if got.Version != 2 {
			t.Fatalf("N=%d answered by version %d, want 2", n, got.Version)
		}
		want, err := next.OptimizeSpace(p.Space(), n, core.SearchOptions{TopK: 1})
		if err != nil {
			t.Fatal(err)
		}
		sameBest(t, got.Best, want.Best)
	}
	if c := p.cache.compiles.Load(); c != compilesBefore {
		t.Fatalf("%d compiles after refit, want 0", c-compilesBefore)
	}
	st := p.Stats()
	if st.Refits != 1 || st.CacheRekeyed != int64(len(sizes)) {
		t.Fatalf("stats refits=%d cacheRekeyed=%d, want 1/%d", st.Refits, st.CacheRekeyed, len(sizes))
	}
}

// TestRefitInvalidatesForReachableBin: a refit that changes a bin the grid
// reads drops the whole cache — retained evaluators would answer from stale
// tables — and the next queries recompile against the new model, answering
// bit-identically to a direct search.
func TestRefitInvalidatesForReachableBin(t *testing.T) {
	ms := binnedTestModel(t, 2, 5)
	p, err := New(ms, testSpace(2), Options{})
	if err != nil {
		t.Fatal(err)
	}
	sizes := []int{800, 1600}
	warmCache(t, p, sizes)

	res, err := p.Refit(jitterDelta(t, p, core.PTKey{Class: 1, M: 2}, 1.25))
	if err != nil {
		t.Fatal(err)
	}
	if res.CacheKept != 0 || res.CacheDropped != len(sizes) {
		t.Fatalf("kept %d dropped %d, want 0/%d", res.CacheKept, res.CacheDropped, len(sizes))
	}
	_, next := p.store.Current()
	for _, n := range sizes {
		got, err := p.Query(context.Background(), Query{N: n})
		if err != nil {
			t.Fatal(err)
		}
		if got.CacheHit {
			t.Fatalf("N=%d served from a cache the refit should have dropped", n)
		}
		want, err := next.OptimizeSpace(p.Space(), n, core.SearchOptions{TopK: 1})
		if err != nil {
			t.Fatal(err)
		}
		sameBest(t, got.Best, want.Best)
	}
}

// TestRefitMatchesRebuildReload: serving determinism across refit — after a
// chain of refits, the planner answers exactly like a second planner that
// full-rebuilt the same concatenated samples and reloaded.
func TestRefitMatchesRebuildReload(t *testing.T) {
	ms := binnedTestModel(t, 2, 4)
	p, err := New(ms, testSpace(2), Options{})
	if err != nil {
		t.Fatal(err)
	}
	deltas := []core.SampleDelta{
		jitterDelta(t, p, core.PTKey{Class: 0, M: 1}, 1.3),
		jitterDelta(t, p, core.PTKey{Class: 1, M: 3}, 0.8),
		jitterDelta(t, p, core.PTKey{Class: 0, M: 4}, 2.0),
	}
	for _, d := range deltas {
		if _, err := p.Refit(d); err != nil {
			t.Fatal(err)
		}
	}
	_, refit := p.store.Current()
	rebuilt, err := refit.RebuildFromBins()
	if err != nil {
		t.Fatal(err)
	}
	q, err := New(rebuilt, testSpace(2), Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{400, 800, 1600, 2400, 3200} {
		got, err := p.Query(context.Background(), Query{N: n, TopK: 5})
		if err != nil {
			t.Fatal(err)
		}
		want, err := q.Query(context.Background(), Query{N: n, TopK: 5})
		if err != nil {
			t.Fatal(err)
		}
		sameBest(t, got.Best, want.Best)
	}
}

// TestRefitErrorsLeaveServingUntouched: a rejected delta neither bumps the
// version nor disturbs the cache, and a model without bins cannot refit.
func TestRefitErrorsLeaveServingUntouched(t *testing.T) {
	ms := binnedTestModel(t, 2, 3)
	p, err := New(ms, testSpace(2), Options{})
	if err != nil {
		t.Fatal(err)
	}
	warmCache(t, p, []int{1600})
	if _, err := p.Refit(core.SampleDelta{}); !errors.Is(err, core.ErrBadSamples) {
		t.Fatalf("empty delta: %v, want ErrBadSamples", err)
	}
	if _, err := p.Refit(core.SampleDelta{Samples: []core.Sample{{Class: 9, M: 1, P: 1, N: 400, Ta: 1, Tc: 1}}}); !errors.Is(err, core.ErrBadSamples) {
		t.Fatalf("bad sample: %v, want ErrBadSamples", err)
	}
	if v := p.Version(); v != 1 {
		t.Fatalf("version %d after rejected refits, want 1", v)
	}
	if p.cache.Len() != 1 {
		t.Fatalf("cache disturbed by rejected refits: %d entries", p.cache.Len())
	}

	binless, _ := newTestPlanner(t, Options{})
	if _, err := binless.Refit(jitterDelta(t, p, core.PTKey{Class: 0, M: 1}, 1.1)); !errors.Is(err, core.ErrNoModel) {
		t.Fatalf("binless refit: %v, want ErrNoModel", err)
	}
}

// TestHTTPRefitAuth (satellite): the refit endpoint is closed by default,
// rejects wrong secrets with 403, and only a POST carrying the exact
// X-Refit-Auth secret reaches the model.
func TestHTTPRefitAuth(t *testing.T) {
	const secret = "calibration-rig-7"
	ms := binnedTestModel(t, 2, 5)
	p, err := New(ms, testSpace(2), Options{RefitAuth: secret})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(p.Handler())
	t.Cleanup(srv.Close)

	s := ms.Bins.Samples(core.PTKey{Class: 0, M: 5})[0]
	body, err := json.Marshal(RefitRequest{Samples: []core.StoredSample{
		{Class: s.Class, P: s.P, M: s.M, N: s.N, Ta: s.Ta * 1.5, Tc: s.Tc},
	}})
	if err != nil {
		t.Fatal(err)
	}
	post := func(auth string, withHeader bool) *http.Response {
		t.Helper()
		req, err := http.NewRequest(http.MethodPost, srv.URL+"/v1/refit", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		if withHeader {
			req.Header.Set(RefitAuthHeader, auth)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}

	for _, tc := range []struct {
		name       string
		auth       string
		withHeader bool
	}{
		{"no header", "", false},
		{"empty header", "", true},
		{"wrong secret", "guess", true},
	} {
		resp := post(tc.auth, tc.withHeader)
		resp.Body.Close()
		if resp.StatusCode != http.StatusForbidden {
			t.Errorf("%s: status %d, want 403", tc.name, resp.StatusCode)
		}
	}
	if v := p.Version(); v != 1 {
		t.Fatalf("unauthorized requests refit the model: version %d", v)
	}

	resp := post(secret, true)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("authorized refit: status %d, want 200", resp.StatusCode)
	}
	var res RefitResult
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		t.Fatal(err)
	}
	if res.Version != 2 || res.Report == nil || res.Report.Replaced != 1 {
		t.Fatalf("refit response %+v, want version 2 with one replacement", res)
	}

	// Method gate: GET never reaches auth.
	getResp, err := http.Get(srv.URL + "/v1/refit")
	if err != nil {
		t.Fatal(err)
	}
	getResp.Body.Close()
	if getResp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/refit: status %d, want 405", getResp.StatusCode)
	}
}

// TestHTTPRefitDisabledByDefault (satellite): without -refit-auth the
// endpoint answers 403 even to requests that guess the empty string.
func TestHTTPRefitDisabledByDefault(t *testing.T) {
	ms := binnedTestModel(t, 2, 3)
	p, err := New(ms, testSpace(2), Options{})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(p.Handler())
	t.Cleanup(srv.Close)
	req, err := http.NewRequest(http.MethodPost, srv.URL+"/v1/refit", bytes.NewReader([]byte(`{"samples":[]}`)))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(RefitAuthHeader, "")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusForbidden {
		t.Fatalf("status %d, want 403 (endpoint disabled)", resp.StatusCode)
	}
	var e errorResponse
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
		t.Fatal(err)
	}
	if e.Error == "" {
		t.Fatal("403 carries no explanation")
	}
}
