package serve

import (
	"errors"
	"fmt"

	"hetmodel/internal/core"
)

// This file is the two-phase-commit primitive behind coordinated fleet
// reload and refit. A fleet router must never let a scatter query observe
// mixed model versions across members, so a swap is split in two: Stage
// validates the replacement and parks it (everything that can fail, fails
// here), Commit publishes it (a version bump plus cache maintenance —
// nothing left to fail short of the process dying). The router stages on
// every member first and commits only when every stage succeeded; any stage
// failure aborts the staged members and no member moves.
//
// One stage may be pending per planner at a time. A commit whose base model
// changed since the stage (a direct Reload/Refit slipped in between) is
// rejected and the stage is dropped — the staged model was derived from a
// snapshot that is no longer current.

// Stage kinds, doubling as the HTTP route family that may commit the stage
// (reload commits are open like /v1/reload; refit commits require the same
// shared secret as /v1/refit).
const (
	StageReload = "reload"
	StageRefit  = "refit"
)

// ErrStagePending is returned by Stage* while another stage is pending.
var ErrStagePending = errors.New("serve: a staged swap is already pending; commit or abort it first")

// ErrNoStage is returned by Commit/Abort when no stage matches the token.
var ErrNoStage = errors.New("serve: no staged swap matches the token")

// stagedOp is one parked swap. Guarded by swapMu, like every store write.
type stagedOp struct {
	kind        string
	token       string
	baseVersion int64
	next        *core.ModelSet
	report      *core.RefitReport // refit only
}

// StagedCommit is the outcome of CommitStaged: the published version and
// the cache maintenance that followed, plus the refit report for refit
// stages (nil for reloads).
type StagedCommit struct {
	Version      int64             `json:"version"`
	Report       *core.RefitReport `json:"report,omitempty"`
	CacheKept    int               `json:"cacheKept"`
	CacheDropped int               `json:"cacheDropped"`
}

// StageReload validates a replacement model and parks it for a later
// CommitStaged. The returned token names the stage; nothing is published
// and queries keep seeing the current model.
func (p *Planner) StageReload(ms *core.ModelSet) (string, error) {
	p.swapMu.Lock()
	defer p.swapMu.Unlock()
	if p.pending != nil {
		return "", ErrStagePending
	}
	version, cur := p.store.Current()
	if err := ms.Validate(); err != nil {
		return "", fmt.Errorf("serve: rejected model: %w", err)
	}
	if ms.Classes != cur.Classes {
		return "", fmt.Errorf("serve: rejected model: %d classes, serving %d", ms.Classes, cur.Classes)
	}
	p.stageSeq++
	p.pending = &stagedOp{
		kind:        StageReload,
		token:       fmt.Sprintf("reload-%d-%d", version, p.stageSeq),
		baseVersion: version,
		next:        ms,
	}
	return p.pending.token, nil
}

// StageRefit applies a sample delta to the current model and parks the
// result for a later CommitStaged, returning the stage token and the
// changed-bin report the commit will act on.
func (p *Planner) StageRefit(delta core.SampleDelta) (string, *core.RefitReport, error) {
	p.swapMu.Lock()
	defer p.swapMu.Unlock()
	if p.pending != nil {
		return "", nil, ErrStagePending
	}
	version, models := p.store.Current()
	next, report, err := models.Refit(delta)
	if err != nil {
		return "", nil, err
	}
	if err := next.Validate(); err != nil {
		return "", nil, fmt.Errorf("serve: refit produced an invalid model: %w", err)
	}
	p.stageSeq++
	p.pending = &stagedOp{
		kind:        StageRefit,
		token:       fmt.Sprintf("refit-%d-%d", version, p.stageSeq),
		baseVersion: version,
		next:        next,
		report:      report,
	}
	return p.pending.token, report, nil
}

// CommitStaged publishes the pending stage named by (kind, token): the
// model swaps in atomically and the evaluator cache is maintained exactly
// as the direct Reload/Refit would have (invalidation for reloads and
// grid-reachable refits, re-keying for unreachable refits). The stage is
// consumed either way.
func (p *Planner) CommitStaged(kind, token string) (*StagedCommit, error) {
	p.swapMu.Lock()
	defer p.swapMu.Unlock()
	st := p.pending
	if st == nil || st.kind != kind || st.token != token {
		return nil, ErrNoStage
	}
	p.pending = nil
	oldVersion := p.store.Version()
	if oldVersion != st.baseVersion {
		return nil, fmt.Errorf("serve: model moved to version %d since stage %s (staged at %d); stage dropped",
			oldVersion, token, st.baseVersion)
	}
	version, err := p.store.Swap(st.next)
	if err != nil {
		return nil, err
	}
	out := &StagedCommit{Version: version, Report: st.report}
	if st.kind == StageRefit {
		rr := p.finishRefitSwapLocked(oldVersion, version, st.next, st.report)
		out.CacheKept, out.CacheDropped = rr.CacheKept, rr.CacheDropped
	} else {
		p.reloads.Add(1)
		out.CacheDropped = p.cache.InvalidateExcept(version)
	}
	return out, nil
}

// AbortStaged drops the pending stage named by (kind, token). Nothing was
// published, so there is nothing else to undo.
func (p *Planner) AbortStaged(kind, token string) error {
	p.swapMu.Lock()
	defer p.swapMu.Unlock()
	if p.pending == nil || p.pending.kind != kind || p.pending.token != token {
		return ErrNoStage
	}
	p.pending = nil
	return nil
}
