package serve

import (
	"sync"
	"sync/atomic"
	"testing"

	"hetmodel/internal/core"
)

// TestCacheSingleflight proves the compile-once guarantee under real
// concurrency: K goroutines released by a barrier all ask for the same cold
// key, the leader's compile blocks until every goroutine has arrived, and
// exactly one compile runs.
func TestCacheSingleflight(t *testing.T) {
	ms := testModel(t, 2)
	c := newEvalCache(4)
	const k = 16

	var compiles atomic.Int64
	arrived := make(chan struct{}, k)
	proceed := make(chan struct{})
	compile := func() *core.Evaluator {
		compiles.Add(1)
		<-proceed // hold the compile until every goroutine has asked
		return ms.Compile(2400)
	}

	var wg sync.WaitGroup
	evs := make([]*core.Evaluator, k)
	for i := 0; i < k; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			arrived <- struct{}{}
			ev, _ := c.Get(evalKey{version: 1, n: 2400}, compile)
			evs[i] = ev
		}(i)
	}
	for i := 0; i < k; i++ {
		<-arrived
	}
	close(proceed)
	wg.Wait()

	if got := compiles.Load(); got != 1 {
		t.Fatalf("%d compiles for %d concurrent first requests, want 1", got, k)
	}
	for i := 1; i < k; i++ {
		if evs[i] != evs[0] {
			t.Fatalf("goroutine %d got a different evaluator", i)
		}
	}
	if c.Len() != 1 {
		t.Errorf("cache holds %d entries, want 1", c.Len())
	}
}

// TestCacheLRUBound: the cache never exceeds its capacity, evicts least
// recently used first, and recompiles evicted keys.
func TestCacheLRUBound(t *testing.T) {
	ms := testModel(t, 2)
	c := newEvalCache(2)
	compileN := func(n int) func() *core.Evaluator {
		return func() *core.Evaluator { return ms.Compile(float64(n)) }
	}
	get := func(n int) bool {
		_, hit := c.Get(evalKey{version: 1, n: n}, compileN(n))
		return hit
	}

	get(100) // {100}
	get(200) // {200, 100}
	if !get(100) {
		t.Error("resident key missed") // {100, 200}
	}
	get(300) // {300, 100} — 200 is the LRU entry and must go
	if c.Len() != 2 {
		t.Fatalf("cache holds %d entries, cap 2", c.Len())
	}
	if get(200) {
		t.Error("evicted key hit without recompiling")
	}
	if !get(300) {
		t.Error("recently used key was evicted instead of the LRU one")
	}
	if got := c.compiles.Load(); got != 4 {
		t.Errorf("%d compiles, want 4 (100, 200, 300, 200 again)", got)
	}
	if got := c.evictions.Load(); got != 2 {
		t.Errorf("%d evictions, want 2", got)
	}
}

// TestCacheInvalidateExcept drops exactly the stale versions.
func TestCacheInvalidateExcept(t *testing.T) {
	ms := testModel(t, 2)
	c := newEvalCache(8)
	for _, key := range []evalKey{{1, 100}, {1, 200}, {2, 100}, {2, 300}} {
		c.Get(key, func() *core.Evaluator { return ms.Compile(float64(key.n)) })
	}
	if dropped := c.InvalidateExcept(2); dropped != 2 {
		t.Fatalf("dropped %d entries, want 2", dropped)
	}
	if c.Len() != 2 {
		t.Fatalf("%d entries left, want 2", c.Len())
	}
	if _, hit := c.Get(evalKey{2, 100}, func() *core.Evaluator { return ms.Compile(100) }); !hit {
		t.Error("current-version entry was invalidated")
	}
	if _, hit := c.Get(evalKey{1, 100}, func() *core.Evaluator { return ms.Compile(100) }); hit {
		t.Error("stale-version entry survived invalidation")
	}
}

// TestCacheRekey: entries at the source version migrate to the target
// version in place (no recompilation), dropped sizes and stragglers at other
// versions are evicted, and entries already at the target version — a query
// racing ahead of the swap — survive untouched and win key collisions.
func TestCacheRekey(t *testing.T) {
	ms := testModel(t, 2)
	c := newEvalCache(8)
	for _, key := range []evalKey{{1, 100}, {1, 200}, {1, 300}, {0, 100}, {2, 400}, {2, 200}} {
		c.Get(key, func() *core.Evaluator { return ms.Compile(float64(key.n)) })
	}
	compiles := c.compiles.Load()
	// v1 n=100 rekeys; v1 n=200 collides with the racing v2 n=200 and drops;
	// v1 n=300 fails the drop predicate; v0 n=100 is a straggler.
	kept, dropped := c.Rekey(1, 2, func(n int) bool { return n == 300 })
	if kept != 1 || dropped != 3 {
		t.Fatalf("kept %d dropped %d, want 1/3", kept, dropped)
	}
	if c.Len() != 3 {
		t.Fatalf("%d entries left, want 3 (rekeyed 100 + racing 400, 200)", c.Len())
	}
	for _, key := range []evalKey{{2, 100}, {2, 200}, {2, 400}} {
		if _, hit := c.Get(key, func() *core.Evaluator { return ms.Compile(float64(key.n)) }); !hit {
			t.Errorf("entry %v missing after rekey", key)
		}
	}
	if got := c.compiles.Load(); got != compiles {
		t.Errorf("rekey verification compiled %d evaluators, want 0", got-compiles)
	}
	if _, hit := c.Get(evalKey{1, 100}, func() *core.Evaluator { return ms.Compile(100) }); hit {
		t.Error("source-version key still resolves after rekey")
	}
}

// TestStoreSwap: versions are unique and monotonic under concurrent swaps,
// and Current never tears (the model always matches its version).
func TestStoreSwap(t *testing.T) {
	s, err := NewStore(testModel(t, 2))
	if err != nil {
		t.Fatal(err)
	}
	if v := s.Version(); v != 1 {
		t.Fatalf("initial version %d, want 1", v)
	}
	if _, err := NewStore(&core.ModelSet{}); err == nil {
		t.Fatal("NewStore accepted an invalid model")
	}

	const swappers, swaps = 4, 8
	var wg sync.WaitGroup
	for g := 0; g < swappers; g++ {
		ms := testModel(t, 2)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < swaps; i++ {
				if _, err := s.Swap(ms); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	for {
		v, ms := s.Current()
		if v < 1 || ms == nil {
			t.Fatalf("torn snapshot: version %d, model %v", v, ms)
		}
		select {
		case <-done:
			if final := s.Version(); final != 1+swappers*swaps {
				t.Fatalf("final version %d, want %d", final, 1+swappers*swaps)
			}
			return
		default:
		}
	}
}
