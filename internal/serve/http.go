package serve

import (
	"context"
	"crypto/subtle"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"hetmodel/internal/cluster"
	"hetmodel/internal/core"
)

// This file is the HTTP/JSON surface of the planner, kept inside the
// package so cmd/hetserve stays a thin flag-parsing shell and the handlers
// are testable with httptest against an in-process Planner.

// QueryRequest is the JSON body of /v1/query and /v1/topk. Every field but N
// is optional. GET requests carry the same fields as URL parameters
// (classes as a comma-separated list).
type QueryRequest struct {
	N             int     `json:"n"`
	TopK          int     `json:"topk,omitempty"`
	Classes       []int   `json:"classes,omitempty"`
	MaxTotalProcs int     `json:"maxTotalProcs,omitempty"`
	MaxBytesPerPE float64 `json:"maxBytesPerPE,omitempty"`
	// TimeoutMs bounds this query's admission wait, overriding the server
	// default (0 keeps the default).
	TimeoutMs int `json:"timeoutMs,omitempty"`
	// ShardLo/ShardHi restrict the search to grid indices [ShardLo,
	// ShardHi) — the fleet router's scatter unit (see Query.Shard). Both
	// zero means the whole grid.
	ShardLo int64 `json:"shardLo,omitempty"`
	ShardHi int64 `json:"shardHi,omitempty"`
}

// CandidateJSON is one ranked configuration of a query response.
type CandidateJSON struct {
	// Config is the paper's (P1,M1,P2,M2,...) rendering.
	Config string `json:"config"`
	// Use is the structured form, one (PEs, Procs) per class.
	Use []cluster.ClassUse `json:"use"`
	// Tau is the estimated execution time in seconds.
	Tau float64 `json:"tau"`
	// Index is the candidate's global grid index — with Tau, the total
	// order a fleet router merges shard answers on.
	Index int64 `json:"index"`
}

// QueryResponse is the JSON answer of /v1/query and /v1/topk.
type QueryResponse struct {
	Version  int64           `json:"version"`
	N        int             `json:"n"`
	Best     []CandidateJSON `json:"best"`
	Size     int64           `json:"size"`
	Scored   int64           `json:"scored"`
	Pruned   int64           `json:"pruned"`
	CacheHit bool            `json:"cacheHit"`
	Batched  int             `json:"batched"`
}

// RefitRequest is the JSON body of /v1/refit: new measurements to fold into
// the served model, as (class, p, m, n, ta, tc) records. A record matching a
// stored measurement's (class, m, p, n) replaces it (latest wins).
type RefitRequest struct {
	// Samples are model-training measurements.
	Samples []core.StoredSample `json:"samples,omitempty"`
	// Calibration are §4.1 adjustment measurements.
	Calibration []core.StoredSample `json:"calibration,omitempty"`
	// Stage parks the refitted model instead of publishing it: the
	// response carries a stage token for /v1/refit/commit (or abort).
	Stage bool `json:"stage,omitempty"`
}

// RefitStageResponse is the JSON answer of a stage:true refit.
type RefitStageResponse struct {
	// Staged is the stage token; Version the version it was taken against.
	Staged  string            `json:"staged"`
	Version int64             `json:"version"`
	Report  *core.RefitReport `json:"report"`
}

// ReloadRequest is the JSON body of /v1/reload.
type ReloadRequest struct {
	// Path names a model file (modelfit JSON) on the server's filesystem.
	Path string `json:"path"`
	// Stage parks the validated model instead of publishing it: the
	// response carries a stage token for /v1/reload/commit (or abort) —
	// the member half of the fleet's coordinated reload (DESIGN.md §14).
	Stage bool `json:"stage,omitempty"`
}

// ReloadResponse is the JSON answer of /v1/reload and /v1/reload/commit.
type ReloadResponse struct {
	Version int64 `json:"version"`
	// Invalidated counts evaluator-cache entries dropped by the swap.
	Invalidated int `json:"invalidated"`
	// Staged is the stage token of a stage:true request (nothing was
	// published yet; Version is the version the stage was taken against).
	Staged string `json:"staged,omitempty"`
}

// StageRequest is the JSON body of the stage commit/abort endpoints.
type StageRequest struct {
	Token string `json:"token"`
}

type errorResponse struct {
	Error string `json:"error"`
}

// Handler returns the planner's HTTP API:
//
//	POST|GET /v1/query          best configuration for a size under constraints
//	POST|GET /v1/topk           ranked K best (default 5)
//	POST     /v1/reload         load a model file and swap it in without downtime
//	POST     /v1/reload/commit  publish a staged reload (two-phase swap)
//	POST     /v1/reload/abort   drop a staged reload
//	POST     /v1/refit          fold new measurements into the served model
//	POST     /v1/refit/commit   publish a staged refit
//	POST     /v1/refit/abort    drop a staged refit
//	GET      /v1/healthz        liveness + model version + grid size
//	GET      /v1/stats          cache/batch/admission counters
//
// The reload endpoint reads files on the server's host; hetserve is an
// internal planning service and its API assumes a trusted network, like a
// metrics or pprof endpoint. The refit endpoint additionally requires the
// shared secret of Options.RefitAuth in its X-Refit-Auth header and answers
// 403 until one is configured: it is the only endpoint that mutates the
// served model from request bodies, so it stays closed by default even on a
// trusted network.
func (p *Planner) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/query", func(w http.ResponseWriter, r *http.Request) {
		p.handleQuery(w, r, 1)
	})
	mux.HandleFunc("/v1/topk", func(w http.ResponseWriter, r *http.Request) {
		p.handleQuery(w, r, 5)
	})
	mux.HandleFunc("/v1/reload", p.handleReload)
	mux.HandleFunc("/v1/reload/commit", p.handleReloadCommit)
	mux.HandleFunc("/v1/reload/abort", p.handleStageAbort(StageReload))
	mux.HandleFunc("/v1/refit", p.handleRefit)
	mux.HandleFunc("/v1/refit/commit", p.handleRefitCommit)
	mux.HandleFunc("/v1/refit/abort", p.handleRefitAbort)
	mux.HandleFunc("/v1/healthz", p.handleHealthz)
	mux.HandleFunc("/v1/stats", p.handleStats)
	return mux
}

func (p *Planner) handleQuery(w http.ResponseWriter, r *http.Request, defaultK int) {
	req, err := decodeQueryRequest(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if req.TopK <= 0 {
		req.TopK = defaultK
	}
	ctx := r.Context()
	if req.TimeoutMs > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(req.TimeoutMs)*time.Millisecond)
		defer cancel()
	}
	var shard *core.IndexRange
	if req.ShardLo != 0 || req.ShardHi != 0 {
		shard = &core.IndexRange{Lo: req.ShardLo, Hi: req.ShardHi}
	}
	res, err := p.Query(ctx, Query{
		N:    req.N,
		TopK: req.TopK,
		Constraints: Constraints{
			Classes:       req.Classes,
			MaxTotalProcs: req.MaxTotalProcs,
			MaxBytesPerPE: req.MaxBytesPerPE,
		},
		Shard: shard,
	})
	if err != nil {
		writeError(w, queryStatus(err), err)
		return
	}
	resp := QueryResponse{
		Version:  res.Version,
		N:        res.N,
		Best:     make([]CandidateJSON, len(res.Best)),
		Size:     res.Size,
		Scored:   res.Scored,
		Pruned:   res.Pruned,
		CacheHit: res.CacheHit,
		Batched:  res.Batched,
	}
	for i, e := range res.Best {
		resp.Best[i] = CandidateJSON{Config: e.Config.String(), Use: e.Config.Use, Tau: e.Tau, Index: res.BestIndex[i]}
	}
	writeJSON(w, http.StatusOK, resp)
}

func (p *Planner) handleReload(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, errors.New("reload requires POST"))
		return
	}
	var req ReloadRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad reload request: %v", err))
		return
	}
	if req.Path == "" {
		writeError(w, http.StatusBadRequest, errors.New("reload request needs a path"))
		return
	}
	ms, err := core.LoadModelSetFile(req.Path)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if req.Stage {
		token, err := p.StageReload(ms)
		if err != nil {
			writeError(w, stageStatus(err), err)
			return
		}
		writeJSON(w, http.StatusOK, ReloadResponse{Version: p.Version(), Staged: token})
		return
	}
	before := p.cache.Len()
	version, err := p.Reload(ms)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, ReloadResponse{Version: version, Invalidated: before - p.cache.Len()})
}

func (p *Planner) handleReloadCommit(w http.ResponseWriter, r *http.Request) {
	token, ok := decodeStageRequest(w, r)
	if !ok {
		return
	}
	res, err := p.CommitStaged(StageReload, token)
	if err != nil {
		writeError(w, stageStatus(err), err)
		return
	}
	writeJSON(w, http.StatusOK, ReloadResponse{Version: res.Version, Invalidated: res.CacheDropped})
}

// handleStageAbort serves the abort endpoint of one stage kind. Aborting is
// idempotent in effect (nothing was published) but not in answer: a second
// abort of the same token reports 404.
func (p *Planner) handleStageAbort(kind string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		token, ok := decodeStageRequest(w, r)
		if !ok {
			return
		}
		if err := p.AbortStaged(kind, token); err != nil {
			writeError(w, stageStatus(err), err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"aborted": true})
	}
}

// decodeStageRequest parses the POST body of a commit/abort endpoint,
// answering the error itself when the request is unusable.
func decodeStageRequest(w http.ResponseWriter, r *http.Request) (string, bool) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, errors.New("stage commit/abort requires POST"))
		return "", false
	}
	var req StageRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad stage request: %v", err))
		return "", false
	}
	if req.Token == "" {
		writeError(w, http.StatusBadRequest, errors.New("stage request needs a token"))
		return "", false
	}
	return req.Token, true
}

// stageStatus maps stage-protocol errors onto HTTP statuses: a pending stage
// blocks new stages (409), a missing or consumed token is 404, a base-version
// conflict at commit time is 409 (the stage is gone; re-stage and retry).
func stageStatus(err error) int {
	switch {
	case errors.Is(err, ErrStagePending):
		return http.StatusConflict
	case errors.Is(err, ErrNoStage):
		return http.StatusNotFound
	default:
		return http.StatusConflict
	}
}

// RefitAuthHeader carries the /v1/refit shared secret.
const RefitAuthHeader = "X-Refit-Auth"

func (p *Planner) handleRefit(w http.ResponseWriter, r *http.Request) {
	if !p.refitAuthorized(w, r) {
		return
	}
	var req RefitRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad refit request: %v", err))
		return
	}
	var delta core.SampleDelta
	for _, s := range req.Samples {
		delta.Samples = append(delta.Samples, s.Sample())
	}
	for _, s := range req.Calibration {
		delta.Calibration = append(delta.Calibration, s.Sample())
	}
	if req.Stage {
		token, report, err := p.StageRefit(delta)
		if err != nil {
			writeError(w, stageStatus(err), err)
			return
		}
		writeJSON(w, http.StatusOK, RefitStageResponse{Staged: token, Version: p.Version(), Report: report})
		return
	}
	res, err := p.Refit(delta)
	if err != nil {
		writeError(w, queryStatus(err), err)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

func (p *Planner) handleRefitCommit(w http.ResponseWriter, r *http.Request) {
	if !p.refitAuthorized(w, r) {
		return
	}
	token, ok := decodeStageRequest(w, r)
	if !ok {
		return
	}
	res, err := p.CommitStaged(StageRefit, token)
	if err != nil {
		writeError(w, stageStatus(err), err)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

func (p *Planner) handleRefitAbort(w http.ResponseWriter, r *http.Request) {
	if !p.refitAuthorized(w, r) {
		return
	}
	p.handleStageAbort(StageRefit)(w, r)
}

// refitAuthorized enforces the refit endpoints' shared-secret gate, writing
// the refusal itself. The stage commit/abort routes sit behind the same gate
// as /v1/refit: committing a staged refit mutates the served model just as
// the direct call would.
func (p *Planner) refitAuthorized(w http.ResponseWriter, r *http.Request) bool {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, errors.New("refit requires POST"))
		return false
	}
	if p.refitAuth == "" {
		writeError(w, http.StatusForbidden, errors.New("refit disabled: start hetserve with -refit-auth"))
		return false
	}
	if subtle.ConstantTimeCompare([]byte(r.Header.Get(RefitAuthHeader)), []byte(p.refitAuth)) != 1 {
		writeError(w, http.StatusForbidden, fmt.Errorf("bad or missing %s header", RefitAuthHeader))
		return false
	}
	return true
}

func (p *Planner) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status":   "ok",
		"version":  p.Version(),
		"gridSize": p.grid.Size(),
	})
}

func (p *Planner) handleStats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, p.Stats())
}

// DecodeQueryParams parses the GET URL-parameter query encoding — exported
// so the fleet router accepts the exact member dialect without duplicating
// the parameter names.
func DecodeQueryParams(r *http.Request) (QueryRequest, error) {
	return decodeQueryRequest(r)
}

// decodeQueryRequest accepts a JSON body (POST) or URL parameters (GET):
// n, topk, classes=0,1, maxTotalProcs, maxBytesPerPE, timeoutMs.
func decodeQueryRequest(r *http.Request) (QueryRequest, error) {
	var req QueryRequest
	switch r.Method {
	case http.MethodPost:
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			return req, fmt.Errorf("bad query request: %v", err)
		}
	case http.MethodGet:
		q := r.URL.Query()
		var err error
		if req.N, err = intParam(q.Get("n"), 0); err != nil {
			return req, fmt.Errorf("bad n: %v", err)
		}
		if req.TopK, err = intParam(q.Get("topk"), 0); err != nil {
			return req, fmt.Errorf("bad topk: %v", err)
		}
		if req.MaxTotalProcs, err = intParam(q.Get("maxTotalProcs"), 0); err != nil {
			return req, fmt.Errorf("bad maxTotalProcs: %v", err)
		}
		if req.TimeoutMs, err = intParam(q.Get("timeoutMs"), 0); err != nil {
			return req, fmt.Errorf("bad timeoutMs: %v", err)
		}
		if req.ShardLo, err = int64Param(q.Get("shardLo")); err != nil {
			return req, fmt.Errorf("bad shardLo: %v", err)
		}
		if req.ShardHi, err = int64Param(q.Get("shardHi")); err != nil {
			return req, fmt.Errorf("bad shardHi: %v", err)
		}
		if s := q.Get("maxBytesPerPE"); s != "" {
			if req.MaxBytesPerPE, err = strconv.ParseFloat(s, 64); err != nil {
				return req, fmt.Errorf("bad maxBytesPerPE: %v", err)
			}
		}
		if s := q.Get("classes"); s != "" {
			for _, part := range strings.Split(s, ",") {
				v, err := strconv.Atoi(strings.TrimSpace(part))
				if err != nil {
					return req, fmt.Errorf("bad classes: %v", err)
				}
				req.Classes = append(req.Classes, v)
			}
		}
	default:
		return req, fmt.Errorf("method %s not allowed", r.Method)
	}
	if req.N <= 0 {
		return req, fmt.Errorf("problem size n=%d, want > 0", req.N)
	}
	return req, nil
}

// queryStatus maps planner errors onto HTTP statuses: overload and expired
// deadlines are the retryable outcomes admission control is designed to
// produce, an unsatisfiable query (no scorable candidate) is the client's.
func queryStatus(err error) int {
	switch {
	case errors.Is(err, ErrOverloaded):
		return http.StatusTooManyRequests
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		return http.StatusGatewayTimeout
	case errors.Is(err, core.ErrNoModel):
		return http.StatusUnprocessableEntity
	default:
		return http.StatusBadRequest
	}
}

func intParam(s string, def int) (int, error) {
	if s == "" {
		return def, nil
	}
	return strconv.Atoi(s)
}

func int64Param(s string) (int64, error) {
	if s == "" {
		return 0, nil
	}
	return strconv.ParseInt(s, 10, 64)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // the connection is gone, nothing to do
}

func writeError(w http.ResponseWriter, status int, err error) {
	if status == http.StatusTooManyRequests {
		w.Header().Set("Retry-After", "1")
	}
	writeJSON(w, status, errorResponse{Error: err.Error()})
}
