package serve

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"hetmodel/internal/cluster"
	"hetmodel/internal/core"
)

// Options configures a Planner. The zero value of every field selects a
// sensible default.
type Options struct {
	// CacheSize bounds the evaluator cache in entries (<= 0 selects 64).
	CacheSize int
	// MaxInFlight bounds concurrently executing grid passes (<= 0 selects
	// GOMAXPROCS).
	MaxInFlight int
	// MaxQueue bounds queries waiting for an execution slot (< 0 selects
	// 4x MaxInFlight; 0 disables queueing — a query that cannot start
	// immediately is rejected).
	MaxQueue int
	// DefaultTimeout is applied to queries whose context carries no
	// deadline (<= 0 leaves them unbounded).
	DefaultTimeout time.Duration
	// Workers is the per-search worker count, as core.SearchOptions.Workers
	// (<= 0 selects GOMAXPROCS, 1 forces sequential). The answers are
	// identical at any setting.
	Workers int
	// Now is the clock behind the served-latency counters (nil selects
	// time.Now). Virtual-time tests inject a deterministic clock so the
	// latency accounting itself can be asserted exactly.
	Now func() time.Time
	// Grind is a load-testing knob: a minimum service time imposed on every
	// grid pass while it holds an execution slot (0 = off, the default).
	// Saturation sweeps use it to pull the admission-control knee inside
	// the offered-load range a single-host driver can generate; production
	// deployments leave it zero.
	Grind time.Duration
	// RefitAuth is the shared secret the /v1/refit endpoint requires in its
	// X-Refit-Auth header. Empty (the default) disables the HTTP endpoint
	// entirely — refit mutates the served model, so unlike the read-only
	// endpoints it is off until explicitly armed. Planner.Refit, the in-
	// process API, is not affected.
	RefitAuth string
}

// Planner is the long-lived query engine: a versioned model store, an
// evaluator cache, a batcher and admission control around the compiled
// streaming search. One Planner serves any number of concurrent clients.
type Planner struct {
	space   cluster.Space
	grid    *cluster.Grid
	workers int
	timeout time.Duration
	grind   time.Duration

	store   *Store
	cache   *evalCache
	adm     *admission
	batcher *batcher
	now     func() time.Time

	// reads is the static grid read set driving surgical cache invalidation
	// on refit (see refit.go); refitAuth arms the /v1/refit HTTP endpoint.
	reads     readSet
	refitAuth string
	// swapMu serializes model publication with the cache maintenance that
	// follows it (Reload's invalidation, Refit's re-keying), so two
	// concurrent swaps cannot interleave their cache updates. It also
	// guards the staged two-phase swap state below (see stage.go).
	swapMu   sync.Mutex
	pending  *stagedOp
	stageSeq int64

	queries      atomic.Int64
	completed    atomic.Int64
	servedNs     atomic.Int64
	scored       atomic.Int64
	pruned       atomic.Int64
	reloads      atomic.Int64
	refits       atomic.Int64
	cacheRekeyed atomic.Int64
}

// New validates the model, compiles the planner's configuration space, and
// publishes the model as version 1.
func New(ms *core.ModelSet, space cluster.Space, opts Options) (*Planner, error) {
	store, err := NewStore(ms)
	if err != nil {
		return nil, err
	}
	grid, err := space.Compile()
	if err != nil {
		return nil, fmt.Errorf("serve: %w", err)
	}
	if grid.Classes() != ms.Classes {
		return nil, fmt.Errorf("serve: space has %d classes, model has %d", grid.Classes(), ms.Classes)
	}
	cacheSize := opts.CacheSize
	if cacheSize <= 0 {
		cacheSize = 64
	}
	maxInFlight := opts.MaxInFlight
	if maxInFlight <= 0 {
		maxInFlight = runtime.GOMAXPROCS(0)
	}
	maxQueue := opts.MaxQueue
	if maxQueue < 0 {
		maxQueue = 4 * maxInFlight
	}
	now := opts.Now
	if now == nil {
		now = time.Now
	}
	return &Planner{
		space:     space,
		grid:      grid,
		workers:   opts.Workers,
		timeout:   opts.DefaultTimeout,
		grind:     opts.Grind,
		store:     store,
		cache:     newEvalCache(cacheSize),
		adm:       newAdmission(maxInFlight, maxQueue),
		batcher:   newBatcher(),
		now:       now,
		reads:     newReadSet(grid),
		refitAuth: opts.RefitAuth,
	}, nil
}

// Space returns the configuration space the planner searches.
func (p *Planner) Space() cluster.Space { return p.space }

// Version returns the version of the currently served model.
func (p *Planner) Version() int64 { return p.store.Version() }

// Current returns the currently served (version, model) snapshot.
func (p *Planner) Current() (int64, *core.ModelSet) { return p.store.Current() }

// Reload validates and publishes a replacement model without downtime:
// queries already running finish against their snapshot, new queries see the
// new version, and evaluators compiled from older versions are evicted
// eagerly (see evalCache.InvalidateExcept). Returns the new version.
func (p *Planner) Reload(ms *core.ModelSet) (int64, error) {
	p.swapMu.Lock()
	defer p.swapMu.Unlock()
	version, err := p.store.Swap(ms)
	if err != nil {
		return 0, err
	}
	p.reloads.Add(1)
	p.cache.InvalidateExcept(version)
	return version, nil
}

// Constraints restrict a query's candidate set. All constraints are pure
// functions of the candidate configuration, so a constrained query stays a
// deterministic filter over the same grid — never a different grid.
type Constraints struct {
	// Classes lists the PE classes a candidate may use (nil or empty allows
	// all). A configuration using any PE of another class is excluded.
	Classes []int `json:"classes,omitempty"`
	// MaxTotalProcs caps the total process count P = Σ Pi·Mi (0 = no cap).
	MaxTotalProcs int `json:"maxTotalProcs,omitempty"`
	// MaxBytesPerPE caps the predetermined per-PE resident set of the
	// paper's §3.4 memory model, Mi·8·N²/P bytes (0 = no cap).
	MaxBytesPerPE float64 `json:"maxBytesPerPE,omitempty"`
}

// canonical validates the constraints against the class count and returns a
// normalized copy: Classes sorted and deduplicated, so equal constraint sets
// share one batch signature.
func (c Constraints) canonical(classes int) (Constraints, error) {
	if c.MaxTotalProcs < 0 {
		return c, fmt.Errorf("serve: negative maxTotalProcs %d", c.MaxTotalProcs)
	}
	if c.MaxBytesPerPE < 0 {
		return c, fmt.Errorf("serve: negative maxBytesPerPE %g", c.MaxBytesPerPE)
	}
	if len(c.Classes) == 0 {
		c.Classes = nil
		return c, nil
	}
	sorted := append([]int(nil), c.Classes...)
	sort.Ints(sorted)
	uniq := sorted[:0]
	for i, v := range sorted {
		if v < 0 || v >= classes {
			return c, fmt.Errorf("serve: class %d outside %d classes", v, classes)
		}
		if i == 0 || v != sorted[i-1] {
			uniq = append(uniq, v)
		}
	}
	c.Classes = uniq
	return c, nil
}

// signature renders canonical constraints as the batch-key string.
func (c Constraints) signature() string {
	if len(c.Classes) == 0 && c.MaxTotalProcs == 0 && c.MaxBytesPerPE == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteString("c=")
	for i, v := range c.Classes {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Itoa(v))
	}
	b.WriteString(";p=")
	b.WriteString(strconv.Itoa(c.MaxTotalProcs))
	b.WriteString(";b=")
	b.WriteString(strconv.FormatFloat(c.MaxBytesPerPE, 'g', -1, 64))
	return b.String()
}

// Core converts the constraints into the search kernel's structured form
// (nil when unconstrained), which the kernel prunes natively — class subsets
// zero whole subtrees, the P cap cuts via prefix/suffix bounds, the memory
// cap compiles to per-pair exclusions — instead of decoding and rejecting
// every candidate through a closure.
func (c Constraints) Core() *core.Constraints {
	if len(c.Classes) == 0 && c.MaxTotalProcs == 0 && c.MaxBytesPerPE == 0 {
		return nil
	}
	return &core.Constraints{
		Classes:       c.Classes,
		MaxTotalProcs: c.MaxTotalProcs,
		MaxBytesPerPE: c.MaxBytesPerPE,
	}
}

// Filter compiles canonical constraints into the candidate predicate the
// structured form is defined against (nil when unconstrained), for problem
// size n over the given class count. Exported so equivalence tests — and any
// caller wanting the direct path — can hand the identical filter to
// ModelSet.OptimizeSpace.
func (c Constraints) Filter(n float64, classes int) func(cfg cluster.Configuration) bool {
	return c.Core().FilterFunc(n, classes)
}

// Query is one planning request.
type Query struct {
	// N is the problem size (required, > 0).
	N int
	// TopK selects how many ranked candidates to return (<= 0 means 1).
	TopK int
	// Constraints restrict the candidate set; the zero value allows every
	// candidate of the planner's space.
	Constraints Constraints
	// Shard, when non-nil, restricts the search to the grid indices in
	// [Lo, Hi) — the fleet router's scatter unit. Candidates keep their
	// global grid indices and the (τ, index) ranking, so merging disjoint
	// shard answers with parallel.MergeTopK reproduces the unsharded
	// answer bit for bit. A shard holding no scorable candidate returns an
	// empty Best, not an error.
	Shard *core.IndexRange
}

// Result is the answer to a Query. Best, Size, Version and N are
// deterministic: bit-identical to a direct ModelSet.OptimizeSpace call with
// the same model, size and constraints. Scored, Pruned, CacheHit and Batched
// are observability fields whose values depend on scheduling and cache
// state.
type Result struct {
	// Version is the model version that answered the query.
	Version int64
	// N echoes the problem size.
	N int
	// Best holds the TopK best candidates, best first (core's (τ, index)
	// total order).
	Best []core.Estimate
	// BestIndex holds the global grid index of each Best entry — what a
	// fleet router merges shard answers on.
	BestIndex []int64
	// Size, Scored and Pruned mirror core.SearchResult.
	Size, Scored, Pruned int64
	// CacheHit reports whether the evaluator came from the cache (or an
	// in-flight compile was joined) rather than compiled for this pass.
	CacheHit bool
	// Batched is the number of queries this grid pass answered (>= 1).
	Batched int
}

// Query answers one planning request. Identical concurrent queries coalesce
// into one grid pass; execution is bounded by the planner's admission
// limits. The context deadline (or the planner's default timeout) bounds the
// wait for admission — an admitted search runs to completion, which is
// microseconds to milliseconds on realistic grids.
func (p *Planner) Query(ctx context.Context, q Query) (*Result, error) {
	if q.N <= 0 {
		return nil, fmt.Errorf("serve: problem size %d, want > 0", q.N)
	}
	k := q.TopK
	if k <= 0 {
		k = 1
	}
	version, models := p.store.Current()
	cons, err := q.Constraints.canonical(models.Classes)
	if err != nil {
		return nil, err
	}
	key := batchKey{version: version, n: q.N, sig: cons.signature()}
	if q.Shard != nil {
		if q.Shard.Lo < 0 || q.Shard.Hi < q.Shard.Lo || q.Shard.Hi > p.grid.Size() {
			return nil, fmt.Errorf("serve: shard [%d, %d) outside grid of %d candidates",
				q.Shard.Lo, q.Shard.Hi, p.grid.Size())
		}
		key.shard, key.sharded = *q.Shard, true
	}
	if p.timeout > 0 {
		if _, ok := ctx.Deadline(); !ok {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, p.timeout)
			defer cancel()
		}
	}
	p.queries.Add(1)
	start := p.now()

	b, leader := p.batcher.join(key, k)
	if !leader {
		select {
		case <-b.done:
			return p.finish(b, k, start)
		case <-ctx.Done():
			return nil, fmt.Errorf("serve: waiting for batch: %w", ctx.Err())
		}
	}

	if err := p.adm.acquire(ctx); err != nil {
		p.batcher.close(b)
		b.err = err
		close(b.done)
		return nil, err
	}
	p.batcher.close(b) // freezes maxK and members: later queries batch anew
	if p.grind > 0 {
		// Load-testing knob: burn the execution slot for the configured
		// minimum service time so saturation sweeps can reach the
		// admission-control knee (see Options.Grind).
		time.Sleep(p.grind)
	}
	b.res, b.err = p.execute(version, models, q.N, cons, q.Shard, b.maxK, b.members)
	close(b.done)
	p.adm.release()
	return p.finish(b, k, start)
}

// finish projects the batch result for one member and, on success, credits
// the completed/servedNs counters the saturation knee detector reads over
// /v1/stats.
func (p *Planner) finish(b *batch, k int, start time.Time) (*Result, error) {
	res, err := sliceResult(b, k)
	if err == nil {
		p.completed.Add(1)
		p.servedNs.Add(int64(p.now().Sub(start)))
	}
	return res, err
}

// execute runs one grid pass: evaluator from the cache (singleflight
// compile), then the pruned streaming search with the constraints handed to
// the kernel structurally, so constrained passes prune instead of filter.
func (p *Planner) execute(version int64, models *core.ModelSet, n int, cons Constraints, shard *core.IndexRange, k, members int) (*Result, error) {
	ev, hit := p.cache.Get(evalKey{version: version, n: n}, func() *core.Evaluator {
		return models.Compile(float64(n))
	})
	p.batcher.passes.Add(1)
	res, err := ev.Search(p.grid, core.SearchOptions{
		Workers:     p.workers,
		TopK:        k,
		Constraints: cons.Core(),
		Range:       shard,
	})
	if err != nil {
		return nil, err
	}
	p.scored.Add(res.Scored)
	p.pruned.Add(res.Pruned)
	return &Result{
		Version:   version,
		N:         n,
		Best:      res.Best,
		BestIndex: res.BestIndex,
		Size:      res.Size,
		Scored:    res.Scored,
		Pruned:    res.Pruned,
		CacheHit:  hit,
		Batched:   members,
	}, nil
}

// pruneRatio is the pruned share of visited-plus-pruned candidates, 0 when
// nothing has been searched yet.
func pruneRatio(scored, pruned int64) float64 {
	if total := scored + pruned; total > 0 {
		return float64(pruned) / float64(total)
	}
	return 0
}

// sliceResult projects a batch result onto one member's requested K: the
// (τ, index) ranking is a total order, so the member's top-k is exactly the
// first k entries of the batch's top-maxK.
func sliceResult(b *batch, k int) (*Result, error) {
	if b.err != nil {
		return nil, b.err
	}
	r := *b.res
	if k < len(r.Best) {
		r.Best = r.Best[:k:k]
		r.BestIndex = r.BestIndex[:k:k]
	}
	return &r, nil
}

// Stats is a point-in-time snapshot of the planner's counters.
type Stats struct {
	Version int64 `json:"version"`
	Queries int64 `json:"queries"`
	// Completed counts queries answered successfully; ServedNs is the total
	// clock time they spent in Query (admission wait included). Together
	// with the rejection counters they let an external load driver locate
	// the admission-control knee (see internal/workload).
	Completed int64 `json:"completed"`
	ServedNs  int64 `json:"servedNs"`
	// Scored and Pruned total the candidates the grid passes visited versus
	// skipped wholesale (bound or structural-constraint pruning); PruneRatio
	// is Pruned over their sum. Together they expose how much of the search
	// space the kernel's bounds are eliding under the live query mix.
	Scored           int64   `json:"scored"`
	Pruned           int64   `json:"pruned"`
	PruneRatio       float64 `json:"pruneRatio"`
	GridPasses       int64   `json:"gridPasses"`
	Coalesced        int64   `json:"coalesced"`
	CacheHits        int64   `json:"cacheHits"`
	CacheMisses      int64   `json:"cacheMisses"`
	Compiles         int64   `json:"compiles"`
	CacheEntries     int     `json:"cacheEntries"`
	Evictions        int64   `json:"evictions"`
	InFlight         int     `json:"inFlight"`
	Queued           int64   `json:"queued"`
	RejectedQueue    int64   `json:"rejectedQueue"`
	RejectedDeadline int64   `json:"rejectedDeadline"`
	Reloads          int64   `json:"reloads"`
	Refits           int64   `json:"refits"`
	// CacheRekeyed counts evaluators carried across refits without
	// recompilation — the surgical-invalidation win, visible as cache hits
	// that a reload would have turned into compiles.
	CacheRekeyed int64 `json:"cacheRekeyed"`
}

// Stats snapshots the planner counters. Counters are read individually (not
// under one lock), so a snapshot taken under load is approximate.
func (p *Planner) Stats() Stats {
	scored, pruned := p.scored.Load(), p.pruned.Load()
	return Stats{
		Version:          p.store.Version(),
		Queries:          p.queries.Load(),
		Completed:        p.completed.Load(),
		ServedNs:         p.servedNs.Load(),
		Scored:           scored,
		Pruned:           pruned,
		PruneRatio:       pruneRatio(scored, pruned),
		GridPasses:       p.batcher.passes.Load(),
		Coalesced:        p.batcher.coalesced.Load(),
		CacheHits:        p.cache.hits.Load(),
		CacheMisses:      p.cache.misses.Load(),
		Compiles:         p.cache.compiles.Load(),
		CacheEntries:     p.cache.Len(),
		Evictions:        p.cache.evictions.Load(),
		InFlight:         p.adm.inFlight(),
		Queued:           p.adm.queued.Load(),
		RejectedQueue:    p.adm.rejectedQueue.Load(),
		RejectedDeadline: p.adm.rejectedDeadline.Load(),
		Reloads:          p.reloads.Load(),
		Refits:           p.refits.Load(),
		CacheRekeyed:     p.cacheRekeyed.Load(),
	}
}
