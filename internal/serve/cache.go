package serve

import (
	"container/list"
	"sync"
	"sync/atomic"

	"hetmodel/internal/core"
)

// evalKey identifies one compiled evaluator: a model version and the problem
// size it was compiled for. Everything else an evaluator depends on is
// derived from the versioned model, so the pair is a complete cache key.
type evalKey struct {
	version int64
	n       int
}

// evalEntry is one cache slot. ready is closed once ev is populated; waiters
// hold the entry pointer directly, so an entry evicted while its compile is
// still in flight completes normally for everyone already waiting on it.
type evalEntry struct {
	key   evalKey
	elem  *list.Element
	ready chan struct{}
	ev    *core.Evaluator
}

// evalCache is the LRU-bounded evaluator cache with singleflight
// compilation: concurrent first requests for the same (version, N) compile
// exactly once — the first arrival becomes the compile leader, later
// arrivals wait on the entry's ready channel.
type evalCache struct {
	mu      sync.Mutex
	cap     int
	entries map[evalKey]*evalEntry
	lru     *list.List // front = most recently used, values *evalEntry

	compiles  atomic.Int64
	hits      atomic.Int64
	misses    atomic.Int64
	evictions atomic.Int64
}

func newEvalCache(capacity int) *evalCache {
	if capacity < 1 {
		capacity = 1
	}
	return &evalCache{
		cap:     capacity,
		entries: make(map[evalKey]*evalEntry),
		lru:     list.New(),
	}
}

// Get returns the evaluator for key, compiling it through compile when
// absent. hit reports whether the call avoided a compile of its own (a
// resident evaluator, or one whose in-flight compile it joined). compile
// runs outside the cache lock, so a slow compile never blocks hits on other
// keys. The hit path runs once per served query and is annotated
// accordingly; the miss path's entry allocation is the compile's job.
//
//het:hotpath
func (c *evalCache) Get(key evalKey, compile func() *core.Evaluator) (ev *core.Evaluator, hit bool) {
	c.mu.Lock()
	if e, ok := c.entries[key]; ok {
		c.lru.MoveToFront(e.elem)
		c.mu.Unlock()
		c.hits.Add(1)
		<-e.ready
		return e.ev, true
	}
	e := &evalEntry{key: key, ready: make(chan struct{})}
	e.elem = c.lru.PushFront(e)
	c.entries[key] = e
	for c.lru.Len() > c.cap {
		c.evictLocked(c.lru.Back())
	}
	c.mu.Unlock()

	c.misses.Add(1)
	c.compiles.Add(1)
	e.ev = compile()
	close(e.ready)
	return e.ev, false
}

// evictLocked removes one entry from the map and the LRU list. Waiters that
// already hold the entry pointer are unaffected: an in-flight compile still
// completes and wakes them, the entry is just no longer findable.
func (c *evalCache) evictLocked(elem *list.Element) {
	if elem == nil {
		return
	}
	e := c.lru.Remove(elem).(*evalEntry)
	delete(c.entries, e.key)
	c.evictions.Add(1)
}

// InvalidateExcept drops every cached evaluator compiled from a model
// version other than keep, returning how many were dropped. It is the cache
// side of a model swap — stale versions are unreachable by construction
// (keys carry the version), but evicting them eagerly returns their tables
// to the allocator instead of waiting for LRU pressure. An incremental
// refit that recompiles only changed sizes would call this per (version, N)
// instead; the key granularity already supports that.
func (c *evalCache) InvalidateExcept(keep int64) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	dropped := 0
	for elem := c.lru.Front(); elem != nil; {
		next := elem.Next()
		if e := elem.Value.(*evalEntry); e.key.version != keep {
			c.evictLocked(elem)
			dropped++
		}
		elem = next
	}
	return dropped
}

// Rekey migrates cached evaluators across a model swap whose visible tables
// did not change: every entry at version from whose size survives drop (nil
// keeps all sizes) is re-keyed to version to in place — no recompilation, no
// eviction, LRU position preserved. Entries that fail drop, and stragglers
// at any other version, are evicted. An in-flight compile re-keys like a
// resident entry: its waiters hold the entry pointer, and the evaluator it
// is building answers identically under either version (the caller's
// contract for re-keying at all). If a query at the new version already
// started its own compile for a size, that entry wins and the old one is
// dropped — two resident entries may not share a key.
func (c *evalCache) Rekey(from, to int64, drop func(n int) bool) (kept, dropped int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for elem := c.lru.Front(); elem != nil; {
		next := elem.Next()
		e := elem.Value.(*evalEntry)
		if e.key.version == to {
			// A query racing ahead of the swap already compiled this size at
			// the new version; it is current, leave it be.
			elem = next
			continue
		}
		newKey := evalKey{version: to, n: e.key.n}
		_, collision := c.entries[newKey]
		if e.key.version != from || (drop != nil && drop(e.key.n)) || collision {
			c.evictLocked(elem)
			dropped++
		} else {
			delete(c.entries, e.key)
			e.key = newKey
			c.entries[newKey] = e
			kept++
		}
		elem = next
	}
	return kept, dropped
}

// Len returns the number of resident entries (including in-flight compiles).
func (c *evalCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}
