package serve

import (
	"context"
	"errors"
	"testing"

	"hetmodel/internal/core"
	"hetmodel/internal/parallel"
)

// TestQueryShardedParity is the serving half of the fleet invariant: queries
// restricted to a contiguous partition of the grid-index space, merged with
// parallel.MergeTopK, reproduce the unsharded answer bit-for-bit, and the
// per-shard Size fields sum to the full candidate count.
func TestQueryShardedParity(t *testing.T) {
	p, _ := newTestPlanner(t, Options{})
	ctx := context.Background()
	const n, k = 2400, 7
	full, err := p.Query(ctx, Query{N: n, TopK: k})
	if err != nil {
		t.Fatal(err)
	}
	size := p.grid.Size()
	for _, parts := range []int{1, 2, 3, 5} {
		lists := make([][]parallel.Candidate, 0, parts)
		var sizeSum int64
		for s := 0; s < parts; s++ {
			lo := size * int64(s) / int64(parts)
			hi := size * int64(s+1) / int64(parts)
			res, err := p.Query(ctx, Query{N: n, TopK: k, Shard: &core.IndexRange{Lo: lo, Hi: hi}})
			if err != nil {
				t.Fatalf("parts=%d shard [%d,%d): %v", parts, lo, hi, err)
			}
			list := make([]parallel.Candidate, len(res.Best))
			for i := range res.Best {
				if idx := res.BestIndex[i]; idx < lo || idx >= hi {
					t.Fatalf("parts=%d shard [%d,%d) returned index %d outside its range", parts, lo, hi, idx)
				}
				list[i] = parallel.Candidate{Index: res.BestIndex[i], Score: res.Best[i].Tau}
			}
			lists = append(lists, list)
			sizeSum += res.Size
		}
		merged := parallel.MergeTopK(k, lists)
		if len(merged) != len(full.Best) {
			t.Fatalf("parts=%d: merged %d candidates, want %d", parts, len(merged), len(full.Best))
		}
		for i, c := range merged {
			if c.Index != full.BestIndex[i] || c.Score != full.Best[i].Tau {
				t.Fatalf("parts=%d rank %d: merged (%d, %v), unsharded (%d, %v)",
					parts, i, c.Index, c.Score, full.BestIndex[i], full.Best[i].Tau)
			}
		}
		if sizeSum != full.Size {
			t.Errorf("parts=%d: shard sizes sum to %d, unsharded Size %d", parts, sizeSum, full.Size)
		}
	}
}

// TestQueryShardValidation: malformed shards are rejected before any search
// runs; an empty in-bounds shard answers cleanly with no candidates.
func TestQueryShardValidation(t *testing.T) {
	p, _ := newTestPlanner(t, Options{})
	ctx := context.Background()
	size := p.grid.Size()
	for _, bad := range []core.IndexRange{{Lo: -1, Hi: 3}, {Lo: 5, Hi: 2}, {Lo: 0, Hi: size + 1}} {
		if _, err := p.Query(ctx, Query{N: 2400, Shard: &bad}); err == nil {
			t.Errorf("shard [%d,%d) accepted, want error", bad.Lo, bad.Hi)
		}
	}
	res, err := p.Query(ctx, Query{N: 2400, TopK: 3, Shard: &core.IndexRange{Lo: 3, Hi: 3}})
	if err != nil {
		t.Fatalf("empty shard: %v", err)
	}
	if len(res.Best) != 0 || res.Size != 0 {
		t.Errorf("empty shard returned %d candidates (size %d), want none", len(res.Best), res.Size)
	}
}

// TestStagedReloadLifecycle drives the two-phase swap end to end: staging
// publishes nothing, commit bumps the version and invalidates the cache, and
// a consumed token is gone.
func TestStagedReloadLifecycle(t *testing.T) {
	p, _ := newTestPlanner(t, Options{})
	ctx := context.Background()
	if _, err := p.Query(ctx, Query{N: 2400}); err != nil {
		t.Fatal(err)
	}

	token, err := p.StageReload(testModel(t, 2))
	if err != nil {
		t.Fatal(err)
	}
	if v := p.Version(); v != 1 {
		t.Fatalf("staging moved the version to %d", v)
	}
	if got := p.Stats().CacheEntries; got != 1 {
		t.Fatalf("staging touched the cache (%d entries, want 1)", got)
	}

	// A second stage is refused while one is pending; aborting the wrong
	// kind or token leaves the stage alone.
	if _, err := p.StageReload(testModel(t, 2)); !errors.Is(err, ErrStagePending) {
		t.Fatalf("second stage: %v, want ErrStagePending", err)
	}
	if err := p.AbortStaged(StageRefit, token); !errors.Is(err, ErrNoStage) {
		t.Fatalf("abort with wrong kind: %v, want ErrNoStage", err)
	}
	if err := p.AbortStaged(StageReload, "reload-bogus"); !errors.Is(err, ErrNoStage) {
		t.Fatalf("abort with wrong token: %v, want ErrNoStage", err)
	}

	res, err := p.CommitStaged(StageReload, token)
	if err != nil {
		t.Fatal(err)
	}
	if res.Version != 2 || p.Version() != 2 {
		t.Fatalf("commit published version %d (planner %d), want 2", res.Version, p.Version())
	}
	if res.CacheDropped != 1 || p.Stats().CacheEntries != 0 {
		t.Errorf("commit dropped %d cache entries (%d left), want 1 dropped and 0 left",
			res.CacheDropped, p.Stats().CacheEntries)
	}
	if _, err := p.CommitStaged(StageReload, token); !errors.Is(err, ErrNoStage) {
		t.Fatalf("double commit: %v, want ErrNoStage", err)
	}
}

// TestStagedReloadValidation: stage-time rejection mirrors Reload's, and an
// aborted stage publishes nothing.
func TestStagedReloadValidation(t *testing.T) {
	p, _ := newTestPlanner(t, Options{})
	if _, err := p.StageReload(&core.ModelSet{Classes: 2}); err == nil {
		t.Fatal("invalid model staged")
	}
	if _, err := p.StageReload(testModel(t, 3)); err == nil {
		t.Fatal("model with mismatched class count staged")
	}
	token, err := p.StageReload(testModel(t, 2))
	if err != nil {
		t.Fatal(err)
	}
	if err := p.AbortStaged(StageReload, token); err != nil {
		t.Fatal(err)
	}
	if v := p.Version(); v != 1 {
		t.Fatalf("aborted stage left version %d, want 1", v)
	}
	// The slot is free again after the abort.
	if _, err := p.StageReload(testModel(t, 2)); err != nil {
		t.Fatalf("stage after abort: %v", err)
	}
}

// TestStagedCommitBaseVersionConflict: a direct swap landing between stage
// and commit drops the stage — the staged model was derived from a snapshot
// that is no longer current.
func TestStagedCommitBaseVersionConflict(t *testing.T) {
	p, _ := newTestPlanner(t, Options{})
	token, err := p.StageReload(testModel(t, 2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Reload(testModel(t, 2)); err != nil {
		t.Fatal(err)
	}
	if _, err := p.CommitStaged(StageReload, token); err == nil {
		t.Fatal("commit succeeded over a moved base version")
	}
	if v := p.Version(); v != 2 {
		t.Fatalf("version %d after rejected commit, want 2", v)
	}
	// The conflicting commit consumed the stage.
	if _, err := p.CommitStaged(StageReload, token); !errors.Is(err, ErrNoStage) {
		t.Fatalf("retry after conflict: %v, want ErrNoStage", err)
	}
}

// TestStagedRefit: the staged path lands exactly where the direct Refit
// would — including the surgical cache outcome driven by the changed-bin
// report (grid-unreachable delta keeps the cache, reachable drops it).
func TestStagedRefit(t *testing.T) {
	p, err := New(binnedTestModel(t, 2, 5), testSpace(2), Options{})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	before, err := p.Query(ctx, Query{N: 2400, TopK: 3})
	if err != nil {
		t.Fatal(err)
	}

	// Grid-unreachable delta: M=5 is beyond every grid pair's Procs (max 3).
	unreachable := jitterDelta(t, p, core.PTKey{Class: 0, M: 5}, 1.5)
	token, report, err := p.StageRefit(unreachable)
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Changed) == 0 {
		t.Fatal("refit report shows no changed bins")
	}
	if v := p.Version(); v != 1 {
		t.Fatalf("staging a refit moved the version to %d", v)
	}
	res, err := p.CommitStaged(StageRefit, token)
	if err != nil {
		t.Fatal(err)
	}
	if res.Version != 2 || res.CacheKept != 1 || res.CacheDropped != 0 {
		t.Fatalf("unreachable refit commit: version %d, kept %d, dropped %d; want 2, 1, 0",
			res.Version, res.CacheKept, res.CacheDropped)
	}
	after, err := p.Query(ctx, Query{N: 2400, TopK: 3})
	if err != nil {
		t.Fatal(err)
	}
	sameBest(t, after.Best, before.Best)
	if s := p.Stats(); s.Compiles != 1 {
		t.Errorf("%d compiles after re-keyed commit, want 1 (cache stayed warm)", s.Compiles)
	}
}
