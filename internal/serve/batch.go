package serve

import (
	"sync"
	"sync/atomic"

	"hetmodel/internal/core"
)

// batchKey identifies queries that one grid pass can answer: same model
// version, same problem size, same canonical constraint signature, same
// grid-index shard (zero-valued with sharded=false for whole-grid queries).
// TopK is deliberately absent — the top-K ranking is a total order on
// (τ, index), so the K-best list of any member is a prefix of the batch's
// max-K list.
type batchKey struct {
	version int64
	n       int
	sig     string
	shard   core.IndexRange
	sharded bool
}

// batch collects queries for one grid pass. A batch is open from creation
// until its leader is admitted: joiners arriving while it is open raise maxK
// and wait; once the leader closes it (just before executing, or on
// admission failure) later arrivals start a fresh batch. members, res and
// err are written before done is closed and only read after.
type batch struct {
	key     batchKey
	maxK    int
	members int
	done    chan struct{}
	res     *Result
	err     error
}

// batcher coalesces same-key queries: while a batch leader waits for an
// admission slot, identical queries pile into its batch instead of the
// queue, so a burst of same-(version, N) load costs one grid pass.
type batcher struct {
	mu   sync.Mutex
	open map[batchKey]*batch

	passes    atomic.Int64 // batches executed (grid passes)
	coalesced atomic.Int64 // queries served by another member's pass
}

func newBatcher() *batcher {
	return &batcher{open: make(map[batchKey]*batch)}
}

// join returns the open batch for key, creating one when absent. leader
// reports whether the caller created the batch and must run it; joiners wait
// on batch.done.
func (bt *batcher) join(key batchKey, k int) (b *batch, leader bool) {
	bt.mu.Lock()
	defer bt.mu.Unlock()
	if b, ok := bt.open[key]; ok {
		b.members++
		if k > b.maxK {
			b.maxK = k
		}
		bt.coalesced.Add(1)
		return b, false
	}
	b = &batch{key: key, maxK: k, members: 1, done: make(chan struct{})}
	bt.open[key] = b
	return b, true
}

// close removes the batch from the open set, freezing maxK and members: no
// later query can join. The leader calls it once admitted (before searching)
// or on admission failure (before broadcasting the error).
func (bt *batcher) close(b *batch) {
	bt.mu.Lock()
	delete(bt.open, b.key)
	bt.mu.Unlock()
}
