// Package serve is the long-lived planner core behind cmd/hetserve: it owns
// a versioned ModelSet store (load/swap without downtime), an LRU-bounded
// evaluator cache with singleflight compilation keyed by (model version,
// problem size), a query engine that answers best-configuration/top-K
// queries under constraints by delegating to the compiled streaming search,
// request batching that coalesces identical concurrent queries into one grid
// pass, and admission control so overload degrades into bounded rejection
// instead of thrashing.
//
// The serving layer adds no arithmetic of its own: every query is answered
// by core.Evaluator.Search over the planner's compiled grid, so responses
// are bit-identical to a direct ModelSet.OptimizeSpace call with the same
// model, size and constraints, at any concurrency (the tests assert it).
package serve

import (
	"fmt"
	"sync"
	"sync/atomic"

	"hetmodel/internal/core"
)

// modelVersion pairs an immutable fitted model with its store version.
// Readers obtain both with one atomic load, so a concurrent swap can never
// tear the pair.
type modelVersion struct {
	version int64
	models  *core.ModelSet
}

// Store holds the current fitted model behind an atomic pointer: queries
// snapshot (version, model) lock-free, swaps publish a validated replacement
// without blocking readers, and every in-flight query finishes against the
// snapshot it started with.
type Store struct {
	mu  sync.Mutex // serializes writers; readers never take it
	cur atomic.Pointer[modelVersion]
}

// NewStore validates the initial model and publishes it as version 1.
func NewStore(ms *core.ModelSet) (*Store, error) {
	s := &Store{}
	if _, err := s.Swap(ms); err != nil {
		return nil, err
	}
	return s, nil
}

// Swap validates the replacement model and publishes it under the next
// version. The swap is atomic: readers see either the old snapshot or the
// new one, never a mix, and rejected models leave the store untouched.
func (s *Store) Swap(ms *core.ModelSet) (int64, error) {
	if err := ms.Validate(); err != nil {
		return 0, fmt.Errorf("serve: rejected model: %w", err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	version := int64(1)
	if old := s.cur.Load(); old != nil {
		if ms.Classes != old.models.Classes {
			return 0, fmt.Errorf("serve: rejected model: %d classes, serving %d", ms.Classes, old.models.Classes)
		}
		version = old.version + 1
	}
	s.cur.Store(&modelVersion{version: version, models: ms})
	return version, nil
}

// Current returns the current (version, model) snapshot.
func (s *Store) Current() (int64, *core.ModelSet) {
	mv := s.cur.Load()
	return mv.version, mv.models
}

// Version returns the current model version.
func (s *Store) Version() int64 { return s.cur.Load().version }
