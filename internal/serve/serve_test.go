package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"hetmodel/internal/cluster"
	"hetmodel/internal/core"
)

// testModel fits a deterministic two-class model covering testSpace: each
// class is measured at M = 1..3 on 1, 2 and 4 PEs over five sizes, so every
// grid candidate is scorable. Class c runs at speed factor 1/(1 + c/4).
func testModel(tb testing.TB, classes int) *core.ModelSet {
	tb.Helper()
	var samples []core.Sample
	for class := 0; class < classes; class++ {
		speed := 1 + float64(class)/4
		for m := 1; m <= 3; m++ {
			for _, pe := range []int{1, 2, 4} {
				p := pe * m
				for _, n := range []int{400, 800, 1600, 2400, 3200} {
					nf := float64(n)
					ta := 6e-10*nf*nf*nf/float64(p)*speed + 0.2
					tc := 1e-9 * nf * nf
					if pe > 1 {
						tc = 2e-9*nf*nf*float64(p) + 1e-8*nf*nf/float64(p) + 0.05
					}
					use := make([]cluster.ClassUse, classes)
					use[class] = cluster.ClassUse{PEs: pe, Procs: m}
					samples = append(samples, core.Sample{
						Config: cluster.Configuration{Use: use},
						N:      n, P: p, Class: class, M: m,
						Ta: ta, Tc: tc, Wall: ta + tc,
					})
				}
			}
		}
	}
	ms, err := core.Build(classes, samples)
	if err != nil {
		tb.Fatal(err)
	}
	return ms
}

// testSpace is the grid the test planner searches: per class PE counts
// {0, 1, 2, 4} x process counts {1, 2, 3}, 10 canonical pairs per class.
func testSpace(classes int) cluster.Space {
	s := cluster.Space{PEChoices: make([][]int, classes), ProcChoices: make([][]int, classes)}
	for ci := range s.PEChoices {
		s.PEChoices[ci] = []int{0, 1, 2, 4}
		s.ProcChoices[ci] = []int{1, 2, 3}
	}
	return s
}

func newTestPlanner(tb testing.TB, opts Options) (*Planner, *core.ModelSet) {
	tb.Helper()
	ms := testModel(tb, 2)
	p, err := New(ms, testSpace(2), opts)
	if err != nil {
		tb.Fatal(err)
	}
	return p, ms
}

func sameBest(tb testing.TB, got, want []core.Estimate) {
	tb.Helper()
	if len(got) != len(want) {
		tb.Fatalf("got %d candidates, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i].Tau != want[i].Tau { // bit-identical, no tolerance
			tb.Fatalf("candidate %d: tau %v, want %v", i, got[i].Tau, want[i].Tau)
		}
		if got[i].Config.String() != want[i].Config.String() {
			tb.Fatalf("candidate %d: config %s, want %s", i, got[i].Config, want[i].Config)
		}
	}
}

// TestQueryMatchesOptimizeSpace is the serving determinism contract: for any
// size, constraints, top-K and worker count, the planner's answer is
// bit-identical to a direct ModelSet.OptimizeSpace call with the same
// parameters.
func TestQueryMatchesOptimizeSpace(t *testing.T) {
	queries := []Query{
		{N: 1600},
		{N: 3200, TopK: 5},
		{N: 2400, TopK: 3, Constraints: Constraints{Classes: []int{1}}},
		{N: 2400, TopK: 8, Constraints: Constraints{MaxTotalProcs: 4}},
		{N: 3200, TopK: 4, Constraints: Constraints{MaxBytesPerPE: 40e6}},
		{N: 1600, TopK: 2, Constraints: Constraints{Classes: []int{0}, MaxTotalProcs: 6, MaxBytesPerPE: 80e6}},
	}
	for _, workers := range []int{1, 0} {
		p, ms := newTestPlanner(t, Options{Workers: workers})
		for _, q := range queries {
			t.Run(fmt.Sprintf("w%d/n%d/k%d/%s", workers, q.N, q.TopK, q.Constraints.signature()), func(t *testing.T) {
				got, err := p.Query(context.Background(), q)
				if err != nil {
					t.Fatal(err)
				}
				k := q.TopK
				if k <= 0 {
					k = 1
				}
				want, err := ms.OptimizeSpace(p.Space(), q.N, core.SearchOptions{
					Workers: workers,
					TopK:    k,
					Filter:  q.Constraints.Filter(float64(q.N), ms.Classes),
				})
				if err != nil {
					t.Fatal(err)
				}
				sameBest(t, got.Best, want.Best)
				if got.Size != want.Size {
					t.Errorf("size %d, want %d", got.Size, want.Size)
				}
			})
		}
	}
}

// TestQueryConstraintsSemantics spot-checks that constraints mean what they
// say on the returned winners (parity with the direct path is covered
// above; this guards the filter itself).
func TestQueryConstraintsSemantics(t *testing.T) {
	p, _ := newTestPlanner(t, Options{})
	res, err := p.Query(context.Background(), Query{
		N: 2400, TopK: 10, Constraints: Constraints{Classes: []int{0}, MaxTotalProcs: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Best) == 0 {
		t.Fatal("no candidates")
	}
	for _, e := range res.Best {
		if e.Config.Use[1].PEs != 0 {
			t.Errorf("%s uses class 1, constrained to class 0", e.Config)
		}
		if tp := e.Config.TotalProcs(); tp > 4 {
			t.Errorf("%s has P=%d > 4", e.Config, tp)
		}
	}
	// An unsatisfiable constraint set is an error, not a silent empty list.
	if _, err := p.Query(context.Background(), Query{
		N: 2400, Constraints: Constraints{MaxTotalProcs: 0, MaxBytesPerPE: 1},
	}); !errors.Is(err, core.ErrNoModel) {
		t.Errorf("unsatisfiable query returned %v, want ErrNoModel", err)
	}
	// Constraint validation.
	if _, err := p.Query(context.Background(), Query{N: 2400, Constraints: Constraints{Classes: []int{7}}}); err == nil {
		t.Error("out-of-range class accepted")
	}
	if _, err := p.Query(context.Background(), Query{N: 0}); err == nil {
		t.Error("nonpositive N accepted")
	}
}

// TestQueryConcurrentParity answers the "under concurrent load" half of the
// determinism criterion: many goroutines issuing a mix of queries all see
// exactly the answers of the sequential direct path.
func TestQueryConcurrentParity(t *testing.T) {
	p, ms := newTestPlanner(t, Options{MaxInFlight: 2, MaxQueue: 1024})
	queries := []Query{
		{N: 1600, TopK: 3},
		{N: 2400, TopK: 5, Constraints: Constraints{MaxTotalProcs: 8}},
		{N: 3200, TopK: 1},
		{N: 3200, TopK: 4, Constraints: Constraints{Classes: []int{1}}},
	}
	want := make([]*core.SearchResult, len(queries))
	for i, q := range queries {
		k := q.TopK
		if k <= 0 {
			k = 1
		}
		res, err := ms.OptimizeSpace(p.Space(), q.N, core.SearchOptions{
			Workers: 1, TopK: k, Filter: q.Constraints.Filter(float64(q.N), ms.Classes),
		})
		if err != nil {
			t.Fatal(err)
		}
		want[i] = res
	}
	const goroutines = 16
	const rounds = 25
	var wg sync.WaitGroup
	errc := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				i := (g + r) % len(queries)
				res, err := p.Query(context.Background(), queries[i])
				if err != nil {
					errc <- fmt.Errorf("query %d: %w", i, err)
					return
				}
				w := want[i].Best
				if len(res.Best) != len(w) {
					errc <- fmt.Errorf("query %d: %d candidates, want %d", i, len(res.Best), len(w))
					return
				}
				for j := range w {
					if res.Best[j].Tau != w[j].Tau || res.Best[j].Config.String() != w[j].Config.String() {
						errc <- fmt.Errorf("query %d candidate %d: %s tau=%v, want %s tau=%v",
							i, j, res.Best[j].Config, res.Best[j].Tau, w[j].Config, w[j].Tau)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
	if s := p.Stats(); s.Queries != goroutines*rounds {
		t.Errorf("stats counted %d queries, want %d", s.Queries, goroutines*rounds)
	}
}

// TestPlannerSingleflight: concurrent first queries for the same
// (version, N) — with distinct constraint signatures so batching cannot
// collapse them — still compile exactly one evaluator.
func TestPlannerSingleflight(t *testing.T) {
	p, _ := newTestPlanner(t, Options{MaxInFlight: 8, MaxQueue: 64})
	const k = 8
	var wg sync.WaitGroup
	errc := make(chan error, k)
	for i := 0; i < k; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Different MaxTotalProcs per goroutine: distinct batch keys,
			// identical evaluator key.
			_, err := p.Query(context.Background(), Query{
				N: 2400, Constraints: Constraints{MaxTotalProcs: 4 + i},
			})
			errc <- err
		}(i)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		if err != nil {
			t.Fatal(err)
		}
	}
	s := p.Stats()
	if s.Compiles != 1 {
		t.Errorf("%d compiles for one (version, N), want 1", s.Compiles)
	}
	if s.GridPasses != k {
		t.Errorf("%d grid passes, want %d (distinct constraints must not batch)", s.GridPasses, k)
	}
}

// TestReloadSwapsWithoutDowntime: a reload bumps the version, evicts stale
// evaluators, and changes answers exactly when the model changed.
func TestReloadSwapsWithoutDowntime(t *testing.T) {
	p, ms := newTestPlanner(t, Options{})
	r1, err := p.Query(context.Background(), Query{N: 2400, TopK: 3})
	if err != nil {
		t.Fatal(err)
	}
	if r1.Version != 1 {
		t.Fatalf("version %d, want 1", r1.Version)
	}

	// Reload an equivalent refit: same samples, new version.
	v, err := p.Reload(testModel(t, 2))
	if err != nil {
		t.Fatal(err)
	}
	if v != 2 || p.Version() != 2 {
		t.Fatalf("reload returned version %d (planner %d), want 2", v, p.Version())
	}
	if got := p.Stats().CacheEntries; got != 0 {
		t.Errorf("%d cache entries survived the reload, want 0", got)
	}
	r2, err := p.Query(context.Background(), Query{N: 2400, TopK: 3})
	if err != nil {
		t.Fatal(err)
	}
	if r2.Version != 2 {
		t.Fatalf("post-reload version %d, want 2", r2.Version)
	}
	sameBest(t, r2.Best, r1.Best) // same fit, same answers
	if s := p.Stats(); s.Compiles != 2 {
		t.Errorf("%d compiles, want 2 (reload must invalidate the cached evaluator)", s.Compiles)
	}

	// A rejected reload leaves the store serving the old version.
	if _, err := p.Reload(&core.ModelSet{Classes: 2}); err == nil {
		t.Fatal("invalid model accepted")
	}
	if _, err := p.Reload(testModel(t, 3)); err == nil {
		t.Fatal("model with mismatched class count accepted")
	}
	if p.Version() != 2 {
		t.Errorf("failed reload moved the version to %d", p.Version())
	}
	_ = ms
}

// TestBatchCoalesce: identical queries queued behind a saturated planner
// share one grid pass, and members with different K each get the exact
// prefix of the shared ranking.
func TestBatchCoalesce(t *testing.T) {
	p, ms := newTestPlanner(t, Options{MaxInFlight: 1, MaxQueue: 8})
	// Saturate the single execution slot so the batch stays open.
	if err := p.adm.acquire(context.Background()); err != nil {
		t.Fatal(err)
	}

	const members = 6
	type answer struct {
		res *Result
		err error
		k   int
	}
	results := make(chan answer, members)
	for i := 0; i < members; i++ {
		go func(k int) {
			res, err := p.Query(context.Background(), Query{N: 1600, TopK: k})
			results <- answer{res, err, k}
		}(1 + i%3) // K in {1, 2, 3}
	}
	// Wait until every member joined the one open batch, then unblock.
	deadline := time.After(5 * time.Second)
	for {
		p.batcher.mu.Lock()
		joined := 0
		for _, b := range p.batcher.open {
			joined = b.members
		}
		p.batcher.mu.Unlock()
		if joined == members {
			break
		}
		select {
		case <-deadline:
			t.Fatalf("only %d of %d queries joined the batch", joined, members)
		case <-time.After(time.Millisecond):
		}
	}
	p.adm.release()

	want, err := ms.OptimizeSpace(p.Space(), 1600, core.SearchOptions{Workers: 1, TopK: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < members; i++ {
		a := <-results
		if a.err != nil {
			t.Fatal(a.err)
		}
		if a.res.Batched != members {
			t.Errorf("batched=%d, want %d", a.res.Batched, members)
		}
		sameBest(t, a.res.Best, want.Best[:a.k])
	}
	s := p.Stats()
	if s.GridPasses != 1 {
		t.Errorf("%d grid passes for %d identical queries, want 1", s.GridPasses, members)
	}
	if s.Coalesced != members-1 {
		t.Errorf("coalesced=%d, want %d", s.Coalesced, members-1)
	}
}

// TestAdmissionOverload: a full queue rejects immediately with
// ErrOverloaded; a queued query whose deadline passes is rejected with the
// context error. Distinct sizes keep the queries out of each other's batch.
func TestAdmissionOverload(t *testing.T) {
	p, _ := newTestPlanner(t, Options{MaxInFlight: 1, MaxQueue: 1})
	if err := p.adm.acquire(context.Background()); err != nil {
		t.Fatal(err)
	}

	// Occupy the single queue slot with a query that will time out.
	queued := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 500*time.Millisecond)
		defer cancel()
		_, err := p.Query(ctx, Query{N: 1600})
		queued <- err
	}()
	// Wait for it to be counted as queued.
	for i := 0; p.adm.queued.Load() == 0; i++ {
		if i > 5000 {
			t.Fatal("query never queued")
		}
		time.Sleep(time.Millisecond)
	}

	// Queue full: the next distinct query is rejected immediately. Its own
	// deadline only matters if scheduling noise drains the queue first — it
	// keeps the test from hanging rather than from failing.
	ctxB, cancelB := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancelB()
	if _, err := p.Query(ctxB, Query{N: 2400}); !errors.Is(err, ErrOverloaded) {
		t.Errorf("overloaded planner returned %v, want ErrOverloaded", err)
	}

	// The queued query's deadline expires while the slot stays held.
	if err := <-queued; !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("queued query returned %v, want DeadlineExceeded", err)
	}
	p.adm.release()

	s := p.Stats()
	if s.RejectedQueue != 1 || s.RejectedDeadline != 1 {
		t.Errorf("rejected queue=%d deadline=%d, want 1 and 1", s.RejectedQueue, s.RejectedDeadline)
	}
	// The planner still serves once the slot frees up.
	if _, err := p.Query(context.Background(), Query{N: 1600}); err != nil {
		t.Errorf("planner did not recover after overload: %v", err)
	}
}

// TestDefaultTimeout: queries without a deadline inherit the planner's.
func TestDefaultTimeout(t *testing.T) {
	p, _ := newTestPlanner(t, Options{MaxInFlight: 1, MaxQueue: 4, DefaultTimeout: 30 * time.Millisecond})
	if err := p.adm.acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer p.adm.release()
	start := time.Now()
	_, err := p.Query(context.Background(), Query{N: 1600})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("got %v, want DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("default timeout took %v", elapsed)
	}
}

// TestInjectedClockCounters: with a stepping fake clock, the completed and
// servedNs counters are exact — the accounting the workload knee detector
// reads is itself deterministic.
func TestInjectedClockCounters(t *testing.T) {
	var fake struct {
		mu sync.Mutex
		ns int64
	}
	now := func() time.Time {
		fake.mu.Lock()
		defer fake.mu.Unlock()
		fake.ns += 5e6 // every clock read advances 5ms
		return time.Unix(0, fake.ns)
	}
	ms := testModel(t, 2)
	p, err := New(ms, testSpace(2), Options{Now: now})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := p.Query(context.Background(), Query{N: 1600}); err != nil {
			t.Fatal(err)
		}
	}
	st := p.Stats()
	if st.Completed != 3 {
		t.Errorf("Completed = %d, want 3", st.Completed)
	}
	// Each query reads the clock exactly twice (start, finish), so each
	// contributes exactly one 5ms step of served time.
	if st.ServedNs != 3*5e6 {
		t.Errorf("ServedNs = %d, want %d", st.ServedNs, int64(3*5e6))
	}

	// A failed query (unsatisfiable constraints) must not count as served.
	if _, err := p.Query(context.Background(), Query{N: 1600, Constraints: Constraints{MaxTotalProcs: -1}}); err == nil {
		t.Fatal("expected constraint failure")
	}
	if st = p.Stats(); st.Completed != 3 {
		t.Errorf("failed query bumped Completed to %d", st.Completed)
	}
}

// TestStatsPruneCounters: the planner's scored/pruned counters aggregate the
// kernel accounting of every grid pass — their sum is the candidate total
// each pass covered — and a structurally constrained query shows up as
// pruned work, not scored work.
func TestStatsPruneCounters(t *testing.T) {
	ms := testModel(t, 2)
	p, err := New(ms, testSpace(2), Options{})
	if err != nil {
		t.Fatal(err)
	}
	gridSize := int64(10*10 - 1) // testSpace(2) minus the all-unused config
	r1, err := p.Query(context.Background(), Query{N: 1600})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := p.Query(context.Background(), Query{N: 1600, Constraints: Constraints{Classes: []int{1}, MaxTotalProcs: 6}})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range []*Result{r1, r2} {
		if r.Size != gridSize || r.Scored+r.Pruned != r.Size {
			t.Fatalf("query %d: accounting %d scored + %d pruned vs size %d (grid %d)",
				i, r.Scored, r.Pruned, r.Size, gridSize)
		}
	}
	if r2.Pruned == 0 {
		t.Fatal("structural constraints pruned nothing")
	}
	st := p.Stats()
	if st.Scored != r1.Scored+r2.Scored || st.Pruned != r1.Pruned+r2.Pruned {
		t.Fatalf("stats (%d, %d) do not aggregate the passes (%d+%d, %d+%d)",
			st.Scored, st.Pruned, r1.Scored, r2.Scored, r1.Pruned, r2.Pruned)
	}
	want := float64(st.Pruned) / float64(st.Scored+st.Pruned)
	if st.PruneRatio != want {
		t.Fatalf("PruneRatio = %v, want %v", st.PruneRatio, want)
	}
}
