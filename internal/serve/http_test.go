package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"hetmodel/internal/core"
)

func newTestServer(t *testing.T) (*httptest.Server, *Planner, *core.ModelSet) {
	t.Helper()
	p, ms := newTestPlanner(t, Options{})
	srv := httptest.NewServer(p.Handler())
	t.Cleanup(srv.Close)
	return srv, p, ms
}

func getJSON(t *testing.T, url string, wantStatus int, out any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		t.Fatalf("GET %s: status %d, want %d", url, resp.StatusCode, wantStatus)
	}
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("GET %s: %v", url, err)
		}
	}
}

func postJSON(t *testing.T, url string, body any, wantStatus int, out any) {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		t.Fatalf("POST %s: status %d, want %d", url, resp.StatusCode, wantStatus)
	}
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("POST %s: %v", url, err)
		}
	}
}

// TestHTTPQueryParity: both verbs and both endpoints answer exactly what the
// direct search does.
func TestHTTPQueryParity(t *testing.T) {
	srv, p, ms := newTestServer(t)
	want, err := ms.OptimizeSpace(p.Space(), 2400, core.SearchOptions{Workers: 1, TopK: 3})
	if err != nil {
		t.Fatal(err)
	}

	var got QueryResponse
	postJSON(t, srv.URL+"/v1/topk", QueryRequest{N: 2400, TopK: 3}, http.StatusOK, &got)
	if got.Version != 1 || got.N != 2400 || len(got.Best) != 3 {
		t.Fatalf("response header wrong: %+v", got)
	}
	for i, c := range got.Best {
		if c.Tau != want.Best[i].Tau || c.Config != want.Best[i].Config.String() {
			t.Errorf("candidate %d: %s tau=%v, want %s tau=%v",
				i, c.Config, c.Tau, want.Best[i].Config, want.Best[i].Tau)
		}
	}

	var viaGet QueryResponse
	getJSON(t, srv.URL+"/v1/query?n=2400", http.StatusOK, &viaGet)
	if len(viaGet.Best) != 1 || viaGet.Best[0].Tau != want.Best[0].Tau {
		t.Errorf("GET query answered %+v, want tau %v", viaGet.Best, want.Best[0].Tau)
	}
	if !viaGet.CacheHit {
		t.Error("second query at the same size did not hit the evaluator cache")
	}

	// Constrained GET matches the direct filtered search.
	cons := Constraints{Classes: []int{0}, MaxTotalProcs: 6}
	wantCons, err := ms.OptimizeSpace(p.Space(), 1600, core.SearchOptions{
		Workers: 1, TopK: 2, Filter: cons.Filter(1600, ms.Classes),
	})
	if err != nil {
		t.Fatal(err)
	}
	var gotCons QueryResponse
	getJSON(t, srv.URL+"/v1/topk?n=1600&topk=2&classes=0&maxTotalProcs=6", http.StatusOK, &gotCons)
	for i, c := range gotCons.Best {
		if c.Tau != wantCons.Best[i].Tau || c.Config != wantCons.Best[i].Config.String() {
			t.Errorf("constrained candidate %d: %s tau=%v, want %s tau=%v",
				i, c.Config, c.Tau, wantCons.Best[i].Config, wantCons.Best[i].Tau)
		}
	}
}

func TestHTTPBadRequests(t *testing.T) {
	srv, _, _ := newTestServer(t)
	var errResp errorResponse
	getJSON(t, srv.URL+"/v1/query", http.StatusBadRequest, &errResp)
	if errResp.Error == "" {
		t.Error("missing n: empty error message")
	}
	getJSON(t, srv.URL+"/v1/query?n=abc", http.StatusBadRequest, nil)
	getJSON(t, srv.URL+"/v1/query?n=2400&classes=x", http.StatusBadRequest, nil)
	postJSON(t, srv.URL+"/v1/query", QueryRequest{N: 2400, Classes: []int{9}}, http.StatusBadRequest, nil)
	// Unsatisfiable constraints: well-formed but no scorable candidate.
	postJSON(t, srv.URL+"/v1/query", QueryRequest{N: 2400, MaxBytesPerPE: 1}, http.StatusUnprocessableEntity, nil)
	// Reload needs POST and a path.
	resp, err := http.Get(srv.URL + "/v1/reload")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET reload: status %d, want 405", resp.StatusCode)
	}
	postJSON(t, srv.URL+"/v1/reload", ReloadRequest{}, http.StatusBadRequest, nil)
}

// TestHTTPReload exercises the zero-downtime swap end to end: write a model
// file, reload it, verify the version bump, cache invalidation accounting,
// and that a bad file leaves the old model serving.
func TestHTTPReload(t *testing.T) {
	srv, p, ms := newTestServer(t)

	// Warm the cache so the reload has something to invalidate.
	getJSON(t, srv.URL+"/v1/query?n=2400", http.StatusOK, nil)
	getJSON(t, srv.URL+"/v1/query?n=1600", http.StatusOK, nil)

	dir := t.TempDir()
	path := filepath.Join(dir, "models.json")
	data, err := json.Marshal(ms)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	var rel ReloadResponse
	postJSON(t, srv.URL+"/v1/reload", ReloadRequest{Path: path}, http.StatusOK, &rel)
	if rel.Version != 2 {
		t.Errorf("reload produced version %d, want 2", rel.Version)
	}
	if rel.Invalidated != 2 {
		t.Errorf("reload invalidated %d entries, want 2", rel.Invalidated)
	}

	var health struct {
		Status  string `json:"status"`
		Version int64  `json:"version"`
	}
	getJSON(t, srv.URL+"/v1/healthz", http.StatusOK, &health)
	if health.Status != "ok" || health.Version != 2 {
		t.Errorf("healthz %+v, want ok/2", health)
	}

	// Corrupt file: rejected, still serving version 2.
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte(`{"version":1,"classes":2}`), 0o644); err != nil {
		t.Fatal(err)
	}
	postJSON(t, srv.URL+"/v1/reload", ReloadRequest{Path: bad}, http.StatusBadRequest, nil)
	if p.Version() != 2 {
		t.Errorf("failed reload moved version to %d", p.Version())
	}
	var after QueryResponse
	getJSON(t, srv.URL+"/v1/query?n=2400", http.StatusOK, &after)
	if after.Version != 2 {
		t.Errorf("query answered by version %d after failed reload, want 2", after.Version)
	}
}

func TestHTTPStats(t *testing.T) {
	srv, _, _ := newTestServer(t)
	for i := 0; i < 3; i++ {
		getJSON(t, fmt.Sprintf("%s/v1/query?n=%d", srv.URL, 1600), http.StatusOK, nil)
	}
	var s Stats
	getJSON(t, srv.URL+"/v1/stats", http.StatusOK, &s)
	if s.Queries != 3 || s.Compiles != 1 || s.CacheHits != 2 || s.Version != 1 {
		t.Errorf("stats %+v, want 3 queries, 1 compile, 2 hits, version 1", s)
	}
}

// TestHTTPTimeout: a request-level timeout on a saturated planner is
// rejected with 504 rather than queueing forever.
func TestHTTPTimeout(t *testing.T) {
	p, _ := newTestPlanner(t, Options{MaxInFlight: 1, MaxQueue: 4})
	srv := httptest.NewServer(p.Handler())
	t.Cleanup(srv.Close)
	if err := p.adm.acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer p.adm.release()
	postJSON(t, srv.URL+"/v1/query", QueryRequest{N: 1600, TimeoutMs: 30}, http.StatusGatewayTimeout, nil)
}
