package core

import (
	"encoding/json"
	"errors"
	"math"
	"testing"

	"hetmodel/internal/cluster"
	"hetmodel/internal/stats"
)

// twoClassWorld builds a consistent two-class training set:
// class 1 (the "Pentium-II") measured at many P, class 0 (the "Athlon")
// only single-PE.
func twoClassWorld() []Sample {
	var samples []Sample
	// Class 1 homogeneous runs, M = 1..2.
	for _, m := range []int{1, 2} {
		for _, pe := range []int{1, 2, 4, 8} {
			p := pe * m
			for _, n := range paperNs {
				nf := float64(n)
				ta := 6e-10*nf*nf*nf/float64(p) + 0.2
				tc := 0.0
				if pe > 1 {
					tc = 2e-9*nf*nf*float64(p) + 1e-8*nf*nf/float64(p) + 0.05
				} else {
					tc = 1e-9 * nf * nf // laswp-only
				}
				samples = append(samples, Sample{
					Config: cluster.Configuration{Use: []cluster.ClassUse{{}, {PEs: pe, Procs: m}}},
					N:      n, P: p, Class: 1, M: m, Ta: ta, Tc: tc, Wall: ta + tc,
				})
			}
		}
	}
	// Class 0 single-PE runs, M = 1..2 (4x faster than class 1).
	for _, m := range []int{1, 2} {
		for _, n := range paperNs {
			nf := float64(n)
			ta := 6e-10*nf*nf*nf/float64(m)/4 + 0.1
			tc := 0.25e-9 * nf * nf
			samples = append(samples, Sample{
				Config: cluster.Configuration{Use: []cluster.ClassUse{{PEs: 1, Procs: m}, {}}},
				N:      n, P: m, Class: 0, M: m, Ta: ta, Tc: tc, Wall: ta + tc,
			})
		}
	}
	return samples
}

func TestBuildModelSet(t *testing.T) {
	ms, err := Build(2, twoClassWorld())
	if err != nil {
		t.Fatal(err)
	}
	// N-T: class1 has 2 M × 4 P = 8 bins; class0 has 2 bins.
	if len(ms.NT) != 10 {
		t.Fatalf("NT bins = %d, want 10", len(ms.NT))
	}
	// P-T: class1 M=1 and M=2 fittable.
	if len(ms.PT) != 2 {
		t.Fatalf("PT bins = %d, want 2", len(ms.PT))
	}
	if len(ms.Keys()) != 10 || len(ms.PTKeys()) != 2 {
		t.Fatal("ordered key listings wrong")
	}
}

func TestBuildRejectsBadInput(t *testing.T) {
	if _, err := Build(0, twoClassWorld()); !errors.Is(err, ErrBadSamples) {
		t.Fatal("0 classes accepted")
	}
	if _, err := Build(2, nil); !errors.Is(err, ErrBadSamples) {
		t.Fatal("no samples accepted")
	}
}

func TestComposeClass(t *testing.T) {
	ms, _ := Build(2, twoClassWorld())
	if err := ms.ComposeClass(0, 1, 0.25, 0.85); err != nil {
		t.Fatal(err)
	}
	if len(ms.PT) != 4 {
		t.Fatalf("PT bins after composition = %d, want 4", len(ms.PT))
	}
	src := ms.PT[PTKey{Class: 1, M: 1}]
	dst := ms.PT[PTKey{Class: 0, M: 1}]
	if math.Abs(dst.Ta(3200, 8)-0.25*src.Ta(3200, 8)) > 1e-12 {
		t.Fatal("composed Ta wrong")
	}
	// Composing again must not overwrite existing models.
	if err := ms.ComposeClass(0, 1, 0.5, 0.5); err == nil {
		t.Fatal("recompose with nothing to do should error")
	}
	if ms.PT[PTKey{Class: 0, M: 1}] != dst {
		t.Fatal("existing composed model overwritten")
	}
}

func TestComposeClassValidation(t *testing.T) {
	ms, _ := Build(2, twoClassWorld())
	if err := ms.ComposeClass(0, 1, 0, 1); !errors.Is(err, ErrBadSamples) {
		t.Fatal("zero scale accepted")
	}
	if err := ms.ComposeClass(1, 0, 1, 1); !errors.Is(err, ErrNoModel) {
		t.Fatal("composing from class without PT models accepted")
	}
}

func TestFitCompositionScale(t *testing.T) {
	ms, _ := Build(2, twoClassWorld())
	scale, err := ms.FitCompositionScale(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Class 0 is 4x faster: per-N ratio approaches 0.25 for large N where
	// the constant offsets vanish.
	if scale < 0.2 || scale > 0.4 {
		t.Fatalf("composition scale = %v, want ≈ 0.25-0.35", scale)
	}
	// Self-composition is trivially the identity scale.
	if self, err := ms.FitCompositionScale(0, 0); err != nil || math.Abs(self-1) > 1e-12 {
		t.Fatalf("self scale = %v, %v", self, err)
	}
	// A class with no single-PE bins cannot anchor a composition.
	if _, err := ms.FitCompositionScale(5, 1); !errors.Is(err, ErrNoModel) {
		t.Fatal("nonexistent class accepted")
	}
}

func TestEstimateBinning(t *testing.T) {
	ms, _ := Build(2, twoClassWorld())
	ms.ComposeClass(0, 1, 0.25, 0.85)

	// Single-PE config → N-T bin (exact match with the generating law).
	single := cluster.Configuration{Use: []cluster.ClassUse{{}, {PEs: 1, Procs: 2}}}
	est, err := ms.Estimate(single, 3200)
	if err != nil {
		t.Fatal(err)
	}
	nf := 3200.0
	want := 6e-10*nf*nf*nf/2 + 0.2 + 1e-9*nf*nf
	if rel := math.Abs(est-want) / want; rel > 0.01 {
		t.Fatalf("single-PE estimate rel err %v", rel)
	}

	// Multi-PE config → P-T bin.
	multi := cluster.Configuration{Use: []cluster.ClassUse{{}, {PEs: 8, Procs: 1}}}
	est, err = ms.Estimate(multi, 3200)
	if err != nil {
		t.Fatal(err)
	}
	wantTa := 6e-10*nf*nf*nf/8 + 0.2
	wantTc := 2e-9*nf*nf*8 + 1e-8*nf*nf/8 + 0.05
	if rel := math.Abs(est-(wantTa+wantTc)) / (wantTa + wantTc); rel > 0.05 {
		t.Fatalf("multi-PE estimate rel err %v", rel)
	}

	// Heterogeneous config: max over classes.
	hetero := cluster.Configuration{Use: []cluster.ClassUse{{PEs: 1, Procs: 1}, {PEs: 8, Procs: 1}}}
	est, err = ms.Estimate(hetero, 3200)
	if err != nil {
		t.Fatal(err)
	}
	c0, err := ms.EstimateClass(hetero, 0, 3200)
	if err != nil {
		t.Fatal(err)
	}
	c1, err := ms.EstimateClass(hetero, 1, 3200)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(est-math.Max(c0, c1)) > 1e-12 {
		t.Fatalf("estimate %v != max(%v, %v)", est, c0, c1)
	}
}

func TestEstimateErrors(t *testing.T) {
	ms, _ := Build(2, twoClassWorld())
	// Missing N-T bin (M=5 never measured).
	bad := cluster.Configuration{Use: []cluster.ClassUse{{}, {PEs: 1, Procs: 5}}}
	if _, err := ms.Estimate(bad, 3200); !errors.Is(err, ErrNoModel) {
		t.Fatal("missing NT bin accepted")
	}
	// Missing P-T bin.
	bad = cluster.Configuration{Use: []cluster.ClassUse{{}, {PEs: 4, Procs: 5}}}
	if _, err := ms.Estimate(bad, 3200); !errors.Is(err, ErrNoModel) {
		t.Fatal("missing PT bin accepted")
	}
	// Wrong class count.
	if _, err := ms.Estimate(cluster.Configuration{Use: []cluster.ClassUse{{PEs: 1, Procs: 1}}}, 3200); !errors.Is(err, ErrNoModel) {
		t.Fatal("wrong class count accepted")
	}
	// Empty configuration.
	if _, err := ms.Estimate(cluster.Configuration{Use: []cluster.ClassUse{{}, {}}}, 3200); !errors.Is(err, ErrNoModel) {
		t.Fatal("empty config accepted")
	}
	// EstimateClass on unused class.
	if _, err := ms.EstimateClass(cluster.Configuration{Use: []cluster.ClassUse{{}, {PEs: 1, Procs: 1}}}, 0, 3200); !errors.Is(err, ErrNoModel) {
		t.Fatal("unused class accepted")
	}
}

func TestAdjustmentAppliesInExtrapolationRegion(t *testing.T) {
	ms, _ := Build(2, twoClassWorld())
	ms.AdjustMinM = 1
	lt := stats.LinearTransform{A: 0.5, B: 0}
	ms.Adjust = map[int]*stats.LinearTransform{1: &lt}

	// In-range P (the M=1 bin was fit on P = 1,2,4,8): unadjusted.
	cfg1 := cluster.Configuration{Use: []cluster.ClassUse{{}, {PEs: 8, Procs: 1}}}
	pt1 := ms.PT[PTKey{Class: 1, M: 1}]
	est1, _ := ms.Estimate(cfg1, 3200)
	if math.Abs(est1-pt1.Estimate(3200, 8)) > 1e-9 {
		t.Fatal("in-range P should be unadjusted")
	}
	// P beyond the fitted range: Tc halved.
	cfg2 := cluster.Configuration{Use: []cluster.ClassUse{{}, {PEs: 16, Procs: 1}}}
	est2, err := ms.Estimate(cfg2, 3200)
	if err != nil {
		t.Fatal(err)
	}
	want := pt1.Ta(3200, 16) + 0.5*pt1.Tc(3200, 16)
	if math.Abs(est2-want) > 1e-9 {
		t.Fatalf("adjusted estimate %v, want %v", est2, want)
	}
	// Below the MinM threshold: unadjusted even when extrapolating.
	ms.AdjustMinM = 2
	est3, _ := ms.Estimate(cfg2, 3200)
	if math.Abs(est3-pt1.Estimate(3200, 16)) > 1e-9 {
		t.Fatal("below-threshold M should be unadjusted")
	}
}

func TestAdjustmentAppliesToComposedModels(t *testing.T) {
	ms, _ := Build(2, twoClassWorld())
	ms.ComposeClass(0, 1, 0.25, 0.85)
	ms.AdjustMinM = 1
	lt := stats.LinearTransform{A: 0.5, B: 0}
	ms.Adjust = map[int]*stats.LinearTransform{0: &lt}
	// Composed models are corrected at any P (their class was never
	// measured multi-PE).
	cfg := cluster.Configuration{Use: []cluster.ClassUse{{PEs: 1, Procs: 1}, {PEs: 3, Procs: 1}}}
	got, err := ms.EstimateClass(cfg, 0, 3200)
	if err != nil {
		t.Fatal(err)
	}
	pt := ms.PT[PTKey{Class: 0, M: 1}]
	want := pt.Ta(3200, 4) + 0.5*pt.Tc(3200, 4)
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("composed-class estimate %v, want %v", got, want)
	}
}

func TestAdjustmentClampsNegativeTc(t *testing.T) {
	ms, _ := Build(2, twoClassWorld())
	ms.AdjustMinM = 1
	lt := stats.LinearTransform{A: -10, B: 0}
	ms.Adjust = map[int]*stats.LinearTransform{1: &lt}
	cfg := cluster.Configuration{Use: []cluster.ClassUse{{}, {PEs: 16, Procs: 1}}}
	est, err := ms.Estimate(cfg, 3200)
	if err != nil {
		t.Fatal(err)
	}
	pt := ms.PT[PTKey{Class: 1, M: 1}]
	if math.Abs(est-pt.Ta(3200, 16)) > 1e-9 {
		t.Fatalf("negative Tc not clamped: est %v, Ta %v", est, pt.Ta(3200, 16))
	}
}

func TestFitAdjustment(t *testing.T) {
	samples := twoClassWorld()
	ms, _ := Build(2, samples)
	ms.AdjustMinM = 1
	// Calibrate on extrapolation-region samples (P = 16, beyond the
	// fitted 1..8) whose measured Tc is half the model's prediction.
	pt := ms.PT[PTKey{Class: 1, M: 1}]
	var calib []Sample
	for _, n := range []int{4800, 6400} {
		calib = append(calib, Sample{
			Class: 1, M: 1, P: 16, N: n,
			Tc: pt.Tc(float64(n), 16) / 2,
		})
	}
	if err := ms.FitAdjustment(calib); err != nil {
		t.Fatal(err)
	}
	lt := ms.Adjust[1]
	if lt == nil {
		t.Fatal("no transform fitted")
	}
	if math.Abs(lt.A-0.5) > 0.05 || lt.B != 0 {
		t.Fatalf("transform = %+v, want ≈ 0.5·x", lt)
	}
	// Single-PE and below-threshold samples are ignored; none → no-op.
	ms2, _ := Build(2, samples)
	ms2.AdjustMinM = 5
	if err := ms2.FitAdjustment(calib); err != nil {
		t.Fatal(err)
	}
	if ms2.Adjust != nil {
		t.Fatal("adjustment fitted from no qualifying samples")
	}
}

func TestFitAdjustmentMissingModel(t *testing.T) {
	ms, _ := Build(2, twoClassWorld())
	ms.AdjustMinM = 1
	calib := []Sample{{Class: 1, M: 5, P: 10, N: 6400, Tc: 1}}
	if err := ms.FitAdjustment(calib); !errors.Is(err, ErrNoModel) {
		t.Fatal("missing PT bin accepted in adjustment")
	}
}

func TestSerializationRoundTrip(t *testing.T) {
	ms, _ := Build(2, twoClassWorld())
	ms.ComposeClass(0, 1, 0.25, 0.85)
	lt := stats.LinearTransform{A: 0.9, B: 0}
	ms.Adjust = map[int]*stats.LinearTransform{1: &lt}
	data, err := json.Marshal(ms)
	if err != nil {
		t.Fatal(err)
	}
	var back ModelSet
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Classes != ms.Classes || len(back.NT) != len(ms.NT) || len(back.PT) != len(ms.PT) {
		t.Fatalf("round trip lost models: %d/%d NT, %d/%d PT",
			len(back.NT), len(ms.NT), len(back.PT), len(ms.PT))
	}
	cfg := cluster.Configuration{Use: []cluster.ClassUse{{PEs: 1, Procs: 1}, {PEs: 8, Procs: 1}}}
	a, err := ms.Estimate(cfg, 4800)
	if err != nil {
		t.Fatal(err)
	}
	b, err := back.Estimate(cfg, 4800)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a-b) > 1e-9 {
		t.Fatalf("estimates differ after round trip: %v vs %v", a, b)
	}
}

func TestSerializationRejectsBadData(t *testing.T) {
	var ms ModelSet
	if err := json.Unmarshal([]byte(`{"version":99}`), &ms); err == nil {
		t.Fatal("bad version accepted")
	}
	if err := json.Unmarshal([]byte(`{"version":1,"classes":0}`), &ms); err == nil {
		t.Fatal("zero classes accepted")
	}
	if err := json.Unmarshal([]byte(`{"version":1,"classes":2,"nt":[{"Key":{"Class":0,"P":1,"M":1},"TaCoeff":[1],"TcCoeff":[1,2,3]}]}`), &ms); err == nil {
		t.Fatal("malformed NT accepted")
	}
	if err := json.Unmarshal([]byte(`not json`), &ms); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestValidateAcceptsBuiltModelSet(t *testing.T) {
	ms, err := Build(2, twoClassWorld())
	if err != nil {
		t.Fatal(err)
	}
	if err := ms.Validate(); err != nil {
		t.Fatalf("fitted model set rejected: %v", err)
	}
	// Survives a serialization round trip too.
	data, err := json.Marshal(ms)
	if err != nil {
		t.Fatal(err)
	}
	loaded := &ModelSet{}
	if err := json.Unmarshal(data, loaded); err != nil {
		t.Fatal(err)
	}
	if err := loaded.Validate(); err != nil {
		t.Fatalf("round-tripped model set rejected: %v", err)
	}
}

func TestValidateRejectsBrokenModelSets(t *testing.T) {
	fresh := func() *ModelSet {
		ms, err := Build(2, twoClassWorld())
		if err != nil {
			t.Fatal(err)
		}
		return ms
	}
	cases := []struct {
		name  string
		wreck func(*ModelSet)
	}{
		{"nil set", nil},
		{"zero classes", func(ms *ModelSet) { ms.Classes = 0 }},
		{"no NT models", func(ms *ModelSet) { ms.NT = nil }},
		{"NT class out of range", func(ms *ModelSet) {
			for k, m := range ms.NT {
				bad := Key{Class: 99, P: k.P, M: k.M}
				mm := *m
				mm.Key = bad
				ms.NT[bad] = &mm
				break
			}
		}},
		{"NT key mismatch", func(ms *ModelSet) {
			for k, m := range ms.NT {
				mm := *m
				mm.Key.P++
				ms.NT[k] = &mm
				break
			}
		}},
		{"NT truncated coefficients", func(ms *ModelSet) {
			for k, m := range ms.NT {
				mm := *m
				mm.TaCoeff = mm.TaCoeff[:2]
				ms.NT[k] = &mm
				break
			}
		}},
		{"PT truncated coefficients", func(ms *ModelSet) {
			for k, m := range ms.PT {
				mm := *m
				mm.KcCoeff = nil
				ms.PT[k] = &mm
				break
			}
		}},
		{"adjust class out of range", func(ms *ModelSet) {
			ms.Adjust = map[int]*stats.LinearTransform{7: {A: 1}}
		}},
	}
	for _, tc := range cases {
		var ms *ModelSet
		if tc.wreck != nil {
			ms = fresh()
			tc.wreck(ms)
		}
		if err := ms.Validate(); !errors.Is(err, ErrNoModel) {
			t.Errorf("%s: got %v, want ErrNoModel", tc.name, err)
		}
	}
}

// TestEstimateClassNormalizesInput pins the public contract after the
// single-normalize refactor: EstimateClass still canonicalizes its input
// itself, and Estimate (which now normalizes once and fans out through the
// internal path) returns exactly what per-class public calls compose to.
func TestEstimateClassNormalizesInput(t *testing.T) {
	ms, err := Build(2, twoClassWorld())
	if err != nil {
		t.Fatal(err)
	}
	raw := cluster.Configuration{Use: []cluster.ClassUse{{PEs: -2, Procs: 5}, {PEs: 8, Procs: 1}}}
	norm := raw.Normalize()
	gotRaw, err := ms.EstimateClass(raw, 1, 3200)
	if err != nil {
		t.Fatal(err)
	}
	gotNorm, err := ms.EstimateClass(norm, 1, 3200)
	if err != nil {
		t.Fatal(err)
	}
	if gotRaw != gotNorm {
		t.Fatalf("EstimateClass(raw) = %v, EstimateClass(normalized) = %v", gotRaw, gotNorm)
	}
	total, err := ms.Estimate(raw, 3200)
	if err != nil {
		t.Fatal(err)
	}
	if total != gotNorm {
		t.Fatalf("Estimate = %v, single used class estimates to %v", total, gotNorm)
	}
	// The unused class still errors through the public entry point.
	if _, err := ms.EstimateClass(raw, 0, 3200); !errors.Is(err, ErrNoModel) {
		t.Fatalf("unused class: %v", err)
	}
}
