package core

import (
	"strings"
	"testing"
)

func TestDiagnostics(t *testing.T) {
	ms, err := Build(2, twoClassWorld())
	if err != nil {
		t.Fatal(err)
	}
	diags := ms.Diagnostics()
	if len(diags) != len(ms.NT) {
		t.Fatalf("diagnostics = %d, want %d", len(diags), len(ms.NT))
	}
	for _, d := range diags {
		// twoClassWorld is noise-free with 9 sizes: perfect, non-0-DoF fits.
		if d.Sizes != 9 || d.Interpolating {
			t.Fatalf("unexpected shape: %+v", d)
		}
		if d.TaR2 < 0.999999 {
			t.Fatalf("Ta R2 = %v for %v", d.TaR2, d.Key)
		}
		if d.K0 <= 0 {
			t.Fatalf("k0 = %v for %v", d.K0, d.Key)
		}
	}
	if len(ms.SuspectBins()) != 0 {
		t.Fatalf("clean world flagged: %v", ms.SuspectBins())
	}
	out := ms.RenderDiagnostics()
	if !strings.Contains(out, "no suspect bins") {
		t.Fatalf("render:\n%s", out)
	}
}

func TestSuspectBinsFlagNegativeK0(t *testing.T) {
	// Four points from a polynomial with negative cubic term: an exact
	// zero-DoF fit the diagnostics must flag.
	var samples []Sample
	for _, n := range []int{400, 800, 1200, 1600} {
		nf := float64(n)
		ta := -1e-10*nf*nf*nf + 1e-5*nf*nf + 0.3
		samples = append(samples, synthSample(0, 1, 1, n, ta, 1e-7*nf*nf))
	}
	ms, err := Build(1, samples)
	if err != nil {
		t.Fatal(err)
	}
	suspects := ms.SuspectBins()
	if len(suspects) != 1 {
		t.Fatalf("suspects = %v", suspects)
	}
	if !suspects[0].Interpolating {
		t.Fatal("zero-DoF fit not marked as interpolating")
	}
	if !strings.Contains(ms.RenderDiagnostics(), "suspect bin") {
		t.Fatal("render missing suspects")
	}
}
