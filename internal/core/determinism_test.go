package core

import (
	"testing"

	"hetmodel/internal/cluster"
)

// tieWorldN generalizes tieWorld to any class count with every class
// identical, so a grid over it is saturated with exact τ ties across classes
// and across symmetric configurations — the adversarial input for the shared
// top-K threshold, where a sloppy non-strict prune would drop tied
// candidates on some schedules and not others.
func tieWorldN(t *testing.T, classes int) *ModelSet {
	t.Helper()
	var samples []Sample
	for class := 0; class < classes; class++ {
		for m := 1; m <= 3; m++ {
			for _, pe := range []int{1, 2, 4} {
				p := pe * m
				for _, n := range []int{400, 800, 1600, 2400, 3200} {
					nf := float64(n)
					ta := 6e-10*nf*nf*nf/float64(p) + 0.2
					tc := 1e-9 * nf * nf
					if pe > 1 {
						tc = 2e-9*nf*nf*float64(p) + 1e-8*nf*nf/float64(p) + 0.05
					}
					use := make([]cluster.ClassUse, classes)
					use[class] = cluster.ClassUse{PEs: pe, Procs: m}
					samples = append(samples, Sample{
						Config: cluster.Configuration{Use: use},
						N:      n, P: p, Class: class, M: m, Ta: ta, Tc: tc, Wall: ta + tc,
					})
				}
			}
		}
	}
	ms, err := Build(classes, samples)
	if err != nil {
		t.Fatal(err)
	}
	return ms
}

// TestSharedThresholdDeterminism is the shared-bound property test: on a
// tie-heavy four-class grid (10⁴ candidates, so worker chunking is real),
// ranked answers for k > 1 are byte-identical across 1, 2, 8 and 32 workers
// and across repeated runs — the cross-worker threshold publishes in a
// schedule-dependent order, but strict-compare pruning keeps every tie, so
// no schedule can change the (τ, index) ranking. Constraints ride along to
// exercise structural pruning under the shared bound.
func TestSharedThresholdDeterminism(t *testing.T) {
	const classes = 4
	ms := tieWorldN(t, classes)
	ev := ms.Compile(2400)
	grid, err := multiClassSpace(classes).Compile()
	if err != nil {
		t.Fatal(err)
	}
	for _, cons := range []*Constraints{nil, {MaxTotalProcs: 12}} {
		for _, k := range []int{2, 8} {
			base, err := ev.Search(grid, SearchOptions{Workers: 1, TopK: k, Constraints: cons})
			if err != nil {
				t.Fatal(err)
			}
			if len(base.Best) != k {
				t.Fatalf("k=%d: baseline returned %d candidates", k, len(base.Best))
			}
			want := rankedJSON(t, base.Best, base.BestIndex)
			for _, workers := range []int{2, 8, 32} {
				for run := 0; run < 3; run++ {
					res, err := ev.Search(grid, SearchOptions{Workers: workers, TopK: k, Constraints: cons})
					if err != nil {
						t.Fatal(err)
					}
					if got := rankedJSON(t, res.Best, res.BestIndex); got != want {
						t.Fatalf("cons=%+v k=%d workers=%d run=%d: ranking diverged\n got %s\nwant %s",
							cons, k, workers, run, got, want)
					}
					if res.Size != base.Size || res.Scored+res.Pruned != res.Size {
						t.Fatalf("cons=%+v k=%d workers=%d: accounting %d+%d vs size %d",
							cons, k, workers, res.Scored, res.Pruned, res.Size)
					}
				}
			}
		}
	}
}
