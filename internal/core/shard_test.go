package core

import (
	"encoding/json"
	"math/rand"
	"sort"
	"testing"

	"hetmodel/internal/cluster"
	"hetmodel/internal/parallel"
)

// This file pins the fleet layer's shard/merge invariant at its source:
// searching disjoint grid-index ranges independently and merging the
// per-range top-K lists with parallel.MergeTopK reproduces the unsharded
// search byte for byte — for any partition, any worker count, and on
// tie-heavy grids where the (tau, index) tie-break does all the work.

// tieWorld builds a two-class model whose classes are measured identically,
// so every configuration ties with its mirror image: (a, b) and (b, a) have
// bit-equal tau, and only the grid-index tie-break orders them.
func tieWorld(t *testing.T) *ModelSet {
	t.Helper()
	var samples []Sample
	for class := 0; class < 2; class++ {
		for m := 1; m <= 4; m++ {
			for _, pe := range []int{1, 2, 4, 8} {
				p := pe * m
				for _, n := range paperNs {
					nf := float64(n)
					ta := 6e-10*nf*nf*nf/float64(p) + 0.2
					tc := 1e-9 * nf * nf
					if pe > 1 {
						tc = 2e-9*nf*nf*float64(p) + 1e-8*nf*nf/float64(p) + 0.05
					}
					use := make([]cluster.ClassUse, 2)
					use[class] = cluster.ClassUse{PEs: pe, Procs: m}
					samples = append(samples, Sample{
						Config: cluster.Configuration{Use: use},
						N:      n, P: p, Class: class, M: m, Ta: ta, Tc: tc, Wall: ta + tc,
					})
				}
			}
		}
	}
	ms, err := Build(2, samples)
	if err != nil {
		t.Fatal(err)
	}
	return ms
}

// rankedJSON renders a result's ranked candidates — global index, bit-exact
// tau, and configuration — as JSON, so byte equality is bit identity.
func rankedJSON(t *testing.T, best []Estimate, idx []int64) string {
	t.Helper()
	type row struct {
		Index  int64              `json:"index"`
		Tau    float64            `json:"tau"`
		Config []cluster.ClassUse `json:"config"`
	}
	rows := make([]row, len(best))
	for i := range best {
		rows[i] = row{Index: idx[i], Tau: best[i].Tau, Config: best[i].Config.Use}
	}
	b, err := json.Marshal(rows)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// randomPartition cuts [0, n) into parts contiguous ranges (some possibly
// empty), then shuffles their order — the merge must not care.
func randomPartition(rng *rand.Rand, n int64, parts int) []IndexRange {
	cuts := make([]int64, 0, parts+1)
	cuts = append(cuts, 0, n)
	for i := 1; i < parts; i++ {
		cuts = append(cuts, rng.Int63n(n+1))
	}
	sort.Slice(cuts, func(i, j int) bool { return cuts[i] < cuts[j] })
	ranges := make([]IndexRange, 0, parts)
	for i := 0; i+1 < len(cuts); i++ {
		ranges = append(ranges, IndexRange{Lo: cuts[i], Hi: cuts[i+1]})
	}
	rng.Shuffle(len(ranges), func(i, j int) { ranges[i], ranges[j] = ranges[j], ranges[i] })
	return ranges
}

// searchShards runs one ranged search per partition element and merges the
// per-shard (tau, index) lists exactly as the fleet router does, also
// checking the per-shard Size bookkeeping sums to the whole.
func searchShards(t *testing.T, ev *Evaluator, grid *cluster.Grid, ranges []IndexRange,
	k, workers int) (string, int64) {
	t.Helper()
	lists := make([][]parallel.Candidate, 0, len(ranges))
	var size int64
	for _, r := range ranges {
		r := r
		res, err := ev.Search(grid, SearchOptions{TopK: k, Workers: workers, Range: &r})
		if err != nil {
			t.Fatalf("shard [%d,%d): %v", r.Lo, r.Hi, err)
		}
		size += res.Size
		list := make([]parallel.Candidate, len(res.Best))
		for i := range res.Best {
			list[i] = parallel.Candidate{Index: res.BestIndex[i], Score: res.Best[i].Tau}
		}
		lists = append(lists, list)
	}
	merged := parallel.MergeTopK(k, lists)
	best := make([]Estimate, len(merged))
	idx := make([]int64, len(merged))
	for i, c := range merged {
		use := make([]cluster.ClassUse, grid.Classes())
		grid.At(c.Index, use)
		best[i] = Estimate{Config: cluster.Configuration{Use: use}, Tau: c.Score}
		idx[i] = c.Index
	}
	return rankedJSON(t, best, idx), size
}

// TestShardedSearchMatchesUnsharded is the property test: over the paper
// grid, randomized grids, and the tie-heavy symmetric grid, any contiguous
// partition of the index range merges to the unsharded answer byte for byte.
func TestShardedSearchMatchesUnsharded(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	type world struct {
		name string
		ms   *ModelSet
	}
	worlds := []world{{"rich", richWorld(t, nil)}, {"ties", tieWorld(t)}}
	for _, w := range worlds {
		for si, space := range evalSpaces() {
			grid, err := space.Compile()
			if err != nil {
				t.Fatal(err)
			}
			if grid.Size() < 2 {
				continue
			}
			for _, n := range []int{2400, 6400} {
				ev := w.ms.Compile(float64(n))
				for _, k := range []int{1, 3, 7} {
					full, err := ev.Search(grid, SearchOptions{TopK: k, Workers: 1})
					if err != nil {
						continue // nothing scorable: every shard must agree below
					}
					wantJSON := rankedJSON(t, full.Best, full.BestIndex)
					for _, parts := range []int{1, 2, 3, 5} {
						ranges := randomPartition(rng, grid.Size(), parts)
						workers := 1 + rng.Intn(3)
						gotJSON, size := searchShards(t, ev, grid, ranges, k, workers)
						if gotJSON != wantJSON {
							t.Fatalf("%s space %d n=%d k=%d parts=%d: sharded merge differs\n got %s\nwant %s",
								w.name, si, n, k, parts, gotJSON, wantJSON)
						}
						if size != full.Size {
							t.Fatalf("%s space %d n=%d parts=%d: shard sizes sum to %d, full search saw %d",
								w.name, si, n, parts, size, full.Size)
						}
					}
				}
			}
		}
	}
}

// TestSearchRangeEdges pins the range-specific contract: empty and barren
// ranges answer without error, out-of-bounds ranges are rejected, and a
// full-cover range equals the unranged search exactly.
func TestSearchRangeEdges(t *testing.T) {
	ms := richWorld(t, nil)
	space := cluster.PaperEvaluationSpace()
	grid, err := space.Compile()
	if err != nil {
		t.Fatal(err)
	}
	ev := ms.Compile(6400)
	full, err := ev.Search(grid, SearchOptions{TopK: 3, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}

	cover := IndexRange{Lo: 0, Hi: grid.Size()}
	got, err := ev.Search(grid, SearchOptions{TopK: 3, Workers: 1, Range: &cover})
	if err != nil {
		t.Fatal(err)
	}
	if rankedJSON(t, got.Best, got.BestIndex) != rankedJSON(t, full.Best, full.BestIndex) || got.Size != full.Size {
		t.Fatalf("full-cover range differs from unranged search")
	}

	empty := IndexRange{Lo: 5, Hi: 5}
	res, err := ev.Search(grid, SearchOptions{Workers: 1, Range: &empty})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Best) != 0 || res.Size != 0 {
		t.Fatalf("empty range returned %d candidates, size %d", len(res.Best), res.Size)
	}

	for _, bad := range []IndexRange{{Lo: -1, Hi: 2}, {Lo: 4, Hi: 2}, {Lo: 0, Hi: grid.Size() + 1}} {
		bad := bad
		if _, err := ev.Search(grid, SearchOptions{Workers: 1, Range: &bad}); err == nil {
			t.Fatalf("range [%d,%d) accepted on a grid of %d", bad.Lo, bad.Hi, grid.Size())
		}
	}
}
